// Densityviz demonstrates the §V density embedding: a plain VAS sample
// flattens density (every region looks equally populated), so the second
// pass attaches per-point counts that restore density for visual
// estimation — rendered here as dot areas.
//
//	go run ./examples/densityviz
//	# writes vas_plain.png and vas_density.png, and prints how well each
//	# encoding preserves the dataset's density ranking
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/strtree"

	vas "repro"
)

func main() {
	// Two Gaussian clusters with very different populations: 85% vs 15%.
	d := dataset.Clusters("unbalanced", 60_000, 9, []dataset.ClusterSpec{
		{Center: geom.Pt(-3, 0), SigmaX: 1, SigmaY: 1, Weight: 0.85},
		{Center: geom.Pt(3, 0), SigmaX: 1, SigmaY: 1, Weight: 0.15},
	})

	sample, err := vas.Build(d.Points, vas.Options{K: 400})
	if err != nil {
		log.Fatal(err)
	}
	ws, err := sample.DensityEmbed(d.Points)
	if err != nil {
		log.Fatal(err)
	}

	writePNG("vas_plain.png", func(f *os.File) error {
		return vas.RenderPNG(f, sample.Points, vas.Rect{}, 640, 480)
	})
	writePNG("vas_density.png", func(f *os.File) error {
		return vas.RenderWeightedPNG(f, ws, vas.Rect{}, 640, 480)
	})

	// Quantify: how much sample mass lands on each cluster under each
	// encoding? The dataset ratio is 85:15; plain VAS shows ~50:50.
	left := func(p vas.Point) bool { return p.X < 0 }
	var plainL, plainN float64
	var weightedL, weightedN float64
	for i, p := range ws.Points {
		plainN++
		weightedN += float64(ws.Counts[i])
		if left(p) {
			plainL++
			weightedL += float64(ws.Counts[i])
		}
	}
	fmt.Printf("dataset mass on left cluster:        85.0%% (by construction)\n")
	fmt.Printf("plain VAS points on left cluster:    %.1f%% (density flattened)\n", 100*plainL/plainN)
	fmt.Printf("density-embedded mass on left:       %.1f%% (restored by §V counts)\n", 100*weightedL/weightedN)

	// The counts also answer "which regions are densest" correctly:
	// rank sample points by count and check the top decile sits in the
	// heavy cluster.
	type pc struct {
		p vas.Point
		c int64
	}
	ranked := make([]pc, len(ws.Points))
	for i := range ws.Points {
		ranked[i] = pc{ws.Points[i], ws.Counts[i]}
	}
	sort.Slice(ranked, func(a, b int) bool { return ranked[a].c > ranked[b].c })
	top := ranked[:len(ranked)/10]
	inHeavy := 0
	for _, r := range top {
		if left(r.p) {
			inHeavy++
		}
	}
	fmt.Printf("top-decile count points in heavy cluster: %d/%d\n", inHeavy, len(top))

	// Sanity: counts must sum to the dataset size (every point routed to
	// exactly one nearest sample point).
	tree := strtree.Build(ws.Points, nil)
	_ = tree
	fmt.Printf("counts sum=%d, dataset size=%d\n", ws.TotalCount(), d.Len())
}

func writePNG(name string, render func(*os.File) error) {
	f, err := os.Create(name)
	if err != nil {
		log.Fatal(err)
	}
	if err := render(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", name)
}
