// Quickstart: build a VAS sample of a skewed dataset and compare its
// visualization loss against uniform and stratified samples of the same
// size — the headline claim of the paper in ~40 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"

	vas "repro"
)

func main() {
	// A skewed GPS-like dataset (substitute for the paper's Geolife).
	data := dataset.GeolifeLike(dataset.GeolifeOptions{N: 50_000, Seed: 1}).Points
	const k = 500

	// VAS: two streaming passes of the Interchange algorithm.
	sample, err := vas.Build(data, vas.Options{K: k})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built VAS sample: %d of %d points, objective %.4g, %d pass(es)\n",
		len(sample.Points), len(data), sample.Objective, sample.Passes)

	// Baselines of the same size.
	uni, _, err := vas.Uniform(data, k, 1)
	if err != nil {
		log.Fatal(err)
	}
	strat, _, err := vas.Stratified(data, k, 10, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Score all three with the paper's Monte Carlo loss (Eq. 1);
	// log-loss-ratio 0 = indistinguishable from plotting everything.
	for _, c := range []struct {
		name string
		pts  []vas.Point
	}{
		{"vas", sample.Points},
		{"uniform", uni},
		{"stratified", strat},
	} {
		rep, err := vas.EvaluateLoss(data, c.pts, 0, 1000, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s log-loss-ratio=%6.3f  probe coverage=%.1f%%\n",
			c.name, rep.LogLossRatio, 100*rep.Covered)
	}
	fmt.Println("\nlower log-loss-ratio = higher visual fidelity at the same point budget")
}
