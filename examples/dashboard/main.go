// Dashboard demonstrates the Fig. 3 serving architecture: a visualization
// front end issues queries with latency budgets; the catalog answers each
// from the largest pre-built VAS sample that fits the budget, so every
// interaction stays interactive regardless of base-table size.
//
//	go run ./examples/dashboard
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/dataset"

	vas "repro"
)

func main() {
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 150_000, Seed: 11})

	cat := vas.NewCatalog()
	if err := cat.LoadTable("trips", d.Points); err != nil {
		log.Fatal(err)
	}
	// Offline: one sample per latency class.
	sizes := []int{200, 2_000, 8_000}
	fmt.Printf("prebuilding VAS samples %v with density embedding...\n", sizes)
	if err := cat.BuildSamples("trips", d.Points, sizes, true, vas.Options{Passes: 1}); err != nil {
		log.Fatal(err)
	}

	// A simulated user session: overview, zoom, pan, tighten the budget.
	bounds := d.Bounds()
	zoom8, err := vas.Zoom(bounds, bounds.Center(), 8)
	if err != nil {
		log.Fatal(err)
	}
	zoom32, err := vas.Zoom(bounds, vas.Pt(116.4, 39.9), 32)
	if err != nil {
		log.Fatal(err)
	}
	session := []struct {
		action   string
		viewport vas.Rect
		budget   time.Duration
	}{
		{"open dashboard (default 2s budget)", vas.Rect{}, 0},
		{"zoom 8x into the city", zoom8, 0},
		{"zoom 32x onto downtown", zoom32, 0},
		{"scrub timeline (600ms budget)", zoom8, 600 * time.Millisecond},
		{"export view (60s budget)", vas.Rect{}, time.Minute},
	}
	for _, step := range session {
		res, err := cat.Query("trips", step.viewport, step.budget)
		if err != nil {
			fmt.Printf("%-38s -> %v\n", step.action, err)
			continue
		}
		densityNote := ""
		if res.Counts != nil {
			densityNote = " (+density counts)"
		}
		fmt.Printf("%-38s -> sample K=%-6d  %6d pts in view  est. viz %8s%s\n",
			step.action, res.SampleSize, len(res.Points),
			res.PredictedTime.Round(time.Millisecond), densityNote)
	}

	exact, err := cat.QueryExact("trips", vas.Rect{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwithout sampling, the same overview needs %d points ≈ %s of viz time\n",
		len(exact.Points), exact.PredictedTime.Round(time.Second))
}
