// Mapplot reproduces the Fig. 1 panels: overview and zoomed map plots of
// a GPS dataset under stratified sampling vs VAS, written as four PNGs.
// Zoomed in, the stratified sample loses the road/trajectory structure
// that VAS retains.
//
//	go run ./examples/mapplot
//	# writes stratified_overview.png, stratified_zoom.png,
//	#        vas_overview.png, vas_zoom.png
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"

	vas "repro"
)

func main() {
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 100_000, Seed: 3})
	const k = 2000

	// Fig. 1 uses a fine-grained 316x316 stratification.
	stratPts, stratIDs, err := vas.Stratified(d.Points, k, 316, 3)
	if err != nil {
		log.Fatal(err)
	}
	sample, err := vas.Build(d.Points, vas.Options{K: k})
	if err != nil {
		log.Fatal(err)
	}

	bounds := d.Bounds()
	// Zoom where the data is dense (central Beijing in the generator).
	zoomVP, err := vas.Zoom(bounds, vas.Pt(116.4, 39.9), 12)
	if err != nil {
		log.Fatal(err)
	}

	panels := []struct {
		file     string
		pts      []vas.Point
		ids      []int
		viewport vas.Rect
	}{
		{"stratified_overview.png", stratPts, stratIDs, bounds},
		{"stratified_zoom.png", stratPts, stratIDs, zoomVP},
		{"vas_overview.png", sample.Points, sample.IDs, bounds},
		{"vas_zoom.png", sample.Points, sample.IDs, zoomVP},
	}
	for _, p := range panels {
		// Color-encode altitude like the paper's map plots.
		values := make([]float64, len(p.ids))
		for i, id := range p.ids {
			values[i] = d.Values[id]
		}
		f, err := os.Create(p.file)
		if err != nil {
			log.Fatal(err)
		}
		if err := vas.RenderMapPNG(f, p.pts, values, p.viewport, 640, 480); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", p.file)
	}
	fmt.Println("\ncompare the *_zoom.png panels: VAS retains structure, stratified goes sparse")
}
