package vas_test

// End-to-end tests of the HTTP serving layer (ISSUE 1 acceptance): load a
// table, build VAS samples, then exercise the full network path with an
// httptest server — budget-bound queries, PNG tiles, cache hits, health
// and metrics — and hammer the catalog from many goroutines while samples
// are being registered (run with -race).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"image/png"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"

	vas "repro"
)

// newServedCatalog loads a small geolife-like table and builds two VAS
// samples, returning the catalog, its data, and a live httptest server.
func newServedCatalog(t *testing.T) (*vas.Catalog, *dataset.Dataset, *httptest.Server) {
	t.Helper()
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: 4000, Seed: 7})
	cat := vas.NewCatalog()
	if err := cat.LoadTable("gps", d.Points); err != nil {
		t.Fatal(err)
	}
	if err := cat.BuildSamples("gps", d.Points, []int{50, 200}, true, vas.Options{Passes: 1}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(cat.Handler())
	t.Cleanup(ts.Close)
	return cat, d, ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
	}
	return resp
}

func TestServeEndToEnd(t *testing.T) {
	_, _, ts := newServedCatalog(t)

	// Health.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	// Catalog listing shows the base table and both samples.
	var tables struct {
		Tables []struct {
			Name    string `json:"name"`
			Rows    int    `json:"rows"`
			Samples []struct {
				Table string `json:"table"`
				Size  int    `json:"size"`
			} `json:"samples"`
		} `json:"tables"`
	}
	getJSON(t, ts.URL+"/v1/tables", &tables)
	if len(tables.Tables) != 1 || tables.Tables[0].Name != "gps" || tables.Tables[0].Rows != 4000 {
		t.Fatalf("tables = %+v", tables)
	}
	if len(tables.Tables[0].Samples) != 2 {
		t.Fatalf("samples = %+v", tables.Tables[0].Samples)
	}

	// A budget-bound query returns points from a registered VAS sample.
	var q struct {
		Points     [][2]float64 `json:"points"`
		Sample     string       `json:"sample"`
		SampleSize int          `json:"sampleSize"`
	}
	r := getJSON(t, ts.URL+"/v1/query?table=gps&budget=1600ms", &q)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", r.StatusCode)
	}
	if q.SampleSize != 200 || !strings.HasPrefix(q.Sample, "gps_vas_") {
		t.Errorf("served %q size %d, want a 200-point VAS sample", q.Sample, q.SampleSize)
	}
	if len(q.Points) == 0 || len(q.Points) > 200 {
		t.Errorf("query returned %d points", len(q.Points))
	}

	// Tile: first fetch renders (MISS) and is a valid PNG.
	tileURL := ts.URL + "/v1/tile/gps/1/0/0.png?budget=1600ms&size=128"
	resp, err = http.Get(tileURL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "image/png" {
		t.Fatalf("tile status %d content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Errorf("first tile X-Cache = %q, want MISS", got)
	}
	img, err := png.Decode(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("tile is not a valid PNG: %v", err)
	}
	if img.Bounds().Dx() != 128 {
		t.Errorf("tile width = %d, want 128", img.Bounds().Dx())
	}

	// Second fetch is served from the cache: HIT header, hit counter up,
	// and no second render (miss counter unchanged).
	resp, err = http.Get(tileURL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("second tile X-Cache = %q, want HIT", got)
	}

	// Metrics expose the cache hit and request counters.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		"vasserve_tile_cache_hits_total 1",
		"vasserve_tile_cache_misses_total 1",
		`vasserve_requests_total{route="tile"} 2`,
		`vasserve_requests_total{route="query"} 1`,
		"vasserve_request_latency_p50_seconds",
		// The base table and both samples carry (x, y) grid indexes, and
		// the tile render above probed one.
		"vasserve_store_indexed_tables 3",
		"vasserve_store_spatial_indexes 3",
		"vasserve_store_index_probes_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q in:\n%s", want, metrics)
		}
	}
}

// TestLoadTableReloadInvalidatesTiles locks down the reload path:
// re-loading a base table must drop its cached tiles (and cached data
// extent), so exact renders never serve pixels from the previous
// contents. Before the fix only BuildSamples invalidated.
func TestLoadTableReloadInvalidatesTiles(t *testing.T) {
	diag := make([]vas.Point, 200)
	anti := make([]vas.Point, 200)
	for i := range diag {
		f := float64(i)
		diag[i] = vas.Pt(f, f)     // main diagonal
		anti[i] = vas.Pt(f, 199-f) // anti-diagonal: visibly different tile
	}
	cat := vas.NewCatalog()
	if err := cat.LoadTable("gps", diag); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(cat.Handler())
	t.Cleanup(ts.Close)

	fetch := func() (string, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/tile/gps/0/0/0.png?exact=true")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tile status %d: %s", resp.StatusCode, body)
		}
		return resp.Header.Get("X-Cache"), body
	}

	cache, before := fetch()
	if cache != "MISS" {
		t.Fatalf("first fetch X-Cache = %q, want MISS", cache)
	}
	if cache, _ = fetch(); cache != "HIT" {
		t.Fatalf("second fetch X-Cache = %q, want HIT", cache)
	}

	if err := cat.LoadTable("gps", anti); err != nil {
		t.Fatal(err)
	}
	cache, after := fetch()
	if cache != "MISS" {
		t.Errorf("post-reload fetch X-Cache = %q, want MISS (stale tile served)", cache)
	}
	if bytes.Equal(before, after) {
		t.Error("post-reload tile is pixel-identical to the pre-reload render")
	}
}

// TestServeConcurrentWithSampleRegistration hammers queries and tile
// fetches from many goroutines while new samples are being registered,
// locking down the store/planner/cache hardening. Run with -race.
func TestServeConcurrentWithSampleRegistration(t *testing.T) {
	cat, d, ts := newServedCatalog(t)
	client := ts.Client()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	fetch := func(url string) {
		resp, err := client.Get(url)
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", url, resp.StatusCode)
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				fetch(fmt.Sprintf("%s/v1/query?table=gps&budget=1600ms", ts.URL))
				fetch(fmt.Sprintf("%s/v1/tile/gps/2/%d/%d.png?budget=1600ms&size=64", ts.URL, i%4, g%4))
			}
		}(g)
	}
	// Register two more sample sizes while traffic is in flight; each
	// registration invalidates the table's cached tiles.
	for _, k := range []int{100, 400} {
		if err := cat.BuildSamples("gps", d.Points, []int{k}, false, vas.Options{Passes: 1}); err != nil {
			t.Error(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	// After the dust settles, the planner serves the largest new sample.
	res, err := cat.Query("gps", vas.Rect{}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleSize != 400 {
		t.Errorf("largest sample after concurrent registration = %d, want 400", res.SampleSize)
	}
}
