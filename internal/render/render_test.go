package render

import (
	"bytes"
	"image/png"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func unitViewport() geom.Rect { return geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1} }

func TestPlotCountsAndClipping(t *testing.T) {
	r := NewRaster(unitViewport(), 10, 10)
	pts := []geom.Point{
		geom.Pt(0.05, 0.05), // inside
		geom.Pt(0.05, 0.05), // duplicate accumulates
		geom.Pt(0.95, 0.95),
		geom.Pt(2, 2),    // outside
		geom.Pt(-1, 0.5), // outside
	}
	n := r.Plot(pts)
	if n != 3 {
		t.Errorf("plotted %d points, want 3", n)
	}
	if got := r.TotalMass(); got != 3 {
		t.Errorf("total mass %v", got)
	}
	if r.OccupiedCells() != 2 {
		t.Errorf("occupied cells %d, want 2", r.OccupiedCells())
	}
	// (0.05, 0.05) is bottom-left in data space -> bottom row in image
	// coordinates (y grows downward).
	if r.At(0, 9) != 2 {
		t.Errorf("bottom-left cell = %v, want 2", r.At(0, 9))
	}
	if r.At(9, 0) != 1 {
		t.Errorf("top-right cell = %v, want 1", r.At(9, 0))
	}
}

func TestViewportBoundaryMapping(t *testing.T) {
	r := NewRaster(unitViewport(), 4, 4)
	// Max-edge points land in the last cells, not out of range.
	r.Plot([]geom.Point{geom.Pt(1, 1), geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)})
	if r.TotalMass() != 4 {
		t.Errorf("mass = %v, want 4 (corner points clipped?)", r.TotalMass())
	}
	if r.At(3, 0) != 1 || r.At(0, 3) != 1 || r.At(3, 3) != 1 || r.At(0, 0) != 1 {
		t.Error("corner points not in corner cells")
	}
}

func TestMassIn(t *testing.T) {
	r := NewRaster(unitViewport(), 20, 20)
	rng := rand.New(rand.NewSource(1))
	var inQuad int
	for i := 0; i < 500; i++ {
		p := geom.Pt(rng.Float64(), rng.Float64())
		r.Plot([]geom.Point{p})
		if p.X < 0.5 && p.Y < 0.5 {
			inQuad++
		}
	}
	got := r.MassIn(geom.Rect{MinX: 0, MinY: 0, MaxX: 0.5, MaxY: 0.5})
	// Cell-granularity makes the count approximate; allow a band.
	if math.Abs(got-float64(inQuad)) > 30 {
		t.Errorf("MassIn = %v, direct count = %d", got, inQuad)
	}
}

func TestPlotWeightedConservesMass(t *testing.T) {
	r := NewRaster(unitViewport(), 50, 50)
	pts := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.2, 0.8), geom.Pt(0.9, 0.1)}
	weights := []int64{100, 10, 1}
	n, err := r.PlotWeighted(pts, weights, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("plotted %d", n)
	}
	// Total mass is conserved up to disc clipping at borders.
	if got := r.TotalMass(); math.Abs(got-111) > 111*0.05 {
		t.Errorf("total mass %v, want ≈111", got)
	}
	// The heavy point spreads over more cells than the light one.
	if r.OccupiedCells() < 5 {
		t.Errorf("weighted plot occupied only %d cells", r.OccupiedCells())
	}
}

func TestPlotWeightedErrors(t *testing.T) {
	r := NewRaster(unitViewport(), 10, 10)
	if _, err := r.PlotWeighted([]geom.Point{geom.Pt(0, 0)}, []int64{1, 2}, 0); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestImageAndPNG(t *testing.T) {
	r := NewRaster(unitViewport(), 32, 32)
	rng := rand.New(rand.NewSource(2))
	pts := make([]geom.Point, 200)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	r.Plot(pts)
	img := r.Image()
	if img.Bounds().Dx() != 32 || img.Bounds().Dy() != 32 {
		t.Fatalf("image bounds %v", img.Bounds())
	}
	var buf bytes.Buffer
	if err := r.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("PNG round trip: %v", err)
	}
	if decoded.Bounds().Dx() != 32 {
		t.Error("decoded bounds mismatch")
	}
}

func TestEmptyRasterRendersWhite(t *testing.T) {
	r := NewRaster(unitViewport(), 8, 8)
	img := r.Image()
	c := img.NRGBAAt(3, 3)
	if c.R != 255 || c.G != 255 || c.B != 255 {
		t.Errorf("empty cell color %v, want white", c)
	}
}

func TestMapPlot(t *testing.T) {
	m := NewMapPlot(unitViewport(), 16, 16)
	pts := []geom.Point{geom.Pt(0.1, 0.1), geom.Pt(0.9, 0.9), geom.Pt(0.9, 0.9)}
	vals := []float64{0, 100, 200}
	if err := m.Plot(pts, vals); err != nil {
		t.Fatal(err)
	}
	img := m.Image()
	// Low-value corner must differ in color from high-value corner.
	lo := img.NRGBAAt(1, 14)
	hi := img.NRGBAAt(14, 1)
	if lo == hi {
		t.Error("value encoding produced identical colors for min and max")
	}
	var buf bytes.Buffer
	if err := m.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	if err := m.Plot(pts, vals[:2]); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestZoomViewport(t *testing.T) {
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 50}
	vp, err := ZoomViewport(bounds, geom.Pt(50, 25), 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vp.Width()-25) > 1e-9 || math.Abs(vp.Height()-12.5) > 1e-9 {
		t.Errorf("viewport %v, want 25x12.5", vp)
	}
	if vp.Center() != geom.Pt(50, 25) {
		t.Errorf("center %v", vp.Center())
	}
	// Near-edge zoom clamps inside bounds.
	edge, err := ZoomViewport(bounds, geom.Pt(1, 1), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bounds.ContainsRect(edge) {
		t.Errorf("edge viewport %v escapes bounds", edge)
	}
	if math.Abs(edge.Width()-25) > 1e-9 {
		t.Errorf("clamped viewport width %v", edge.Width())
	}
	if _, err := ZoomViewport(bounds, geom.Pt(50, 25), 0.5); err == nil {
		t.Error("zoom < 1: want error")
	}
}

func TestNewRasterPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewRaster(unitViewport(), 0, 10) },
		func() { NewRaster(geom.EmptyRect(), 10, 10) },
		func() { NewMapPlot(unitViewport(), 10, -1) },
		func() { NewMapPlot(geom.EmptyRect(), 10, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			f()
		}()
	}
}
