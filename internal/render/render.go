// Package render implements the visualization layer of the Fig. 3
// architecture: it turns point sets (full datasets or samples) into scatter
// and map plots. Plots are rasterized into a count grid first — which is
// also what the simulated user study "sees" — and can be encoded to PNG via
// the standard library. Zoom viewports, per-point dot sizes from density
// counts (§V), and a value-colored map-plot mode are supported.
package render

import (
	"errors"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"

	"repro/internal/geom"
)

// Raster is a W×H grid of accumulated point mass. Cell (0,0) is the top
// left; y grows downward as in image coordinates, so the viewport's MaxY
// maps to row 0.
type Raster struct {
	W, H     int
	Viewport geom.Rect
	cells    []float64
}

// NewRaster returns an empty raster over the viewport. It panics when the
// resolution is not positive or the viewport is empty.
func NewRaster(viewport geom.Rect, w, h int) *Raster {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("render: raster size must be positive, got %dx%d", w, h))
	}
	if viewport.IsEmpty() {
		panic("render: empty viewport")
	}
	return &Raster{W: w, H: h, Viewport: viewport, cells: make([]float64, w*h)}
}

// cellAt maps a data-space point to raster coordinates; ok is false when
// the point is outside the viewport.
func (r *Raster) cellAt(p geom.Point) (int, int, bool) {
	if !r.Viewport.Contains(p) {
		return 0, 0, false
	}
	fx := (p.X - r.Viewport.MinX) / r.Viewport.Width()
	fy := (p.Y - r.Viewport.MinY) / r.Viewport.Height()
	x := int(fx * float64(r.W))
	y := int((1 - fy) * float64(r.H))
	if x >= r.W {
		x = r.W - 1
	}
	if y >= r.H {
		y = r.H - 1
	}
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	return x, y, true
}

// Plot accumulates unit mass for every point inside the viewport and
// returns the number of points plotted.
func (r *Raster) Plot(pts []geom.Point) int {
	n := 0
	for _, p := range pts {
		if x, y, ok := r.cellAt(p); ok {
			r.cells[y*r.W+x]++
			n++
		}
	}
	return n
}

// PlotWeighted accumulates weights[i] of mass for each point, spread over a
// disc whose radius grows with the weight — the §V density encoding where
// "points drawn from a dense area can be plotted with a larger legend
// size". maxWeight normalizes the radius; pass 0 to use the max of weights.
func (r *Raster) PlotWeighted(pts []geom.Point, weights []int64, maxWeight int64) (int, error) {
	if len(pts) != len(weights) {
		return 0, fmt.Errorf("render: %d points vs %d weights", len(pts), len(weights))
	}
	if maxWeight <= 0 {
		for _, w := range weights {
			if w > maxWeight {
				maxWeight = w
			}
		}
	}
	if maxWeight <= 0 {
		maxWeight = 1
	}
	n := 0
	maxRadius := float64(minInt(r.W, r.H)) / 40
	for i, p := range pts {
		x, y, ok := r.cellAt(p)
		if !ok {
			continue
		}
		n++
		// Radius ∝ sqrt(weight): disc area tracks density linearly.
		frac := math.Sqrt(float64(weights[i])) / math.Sqrt(float64(maxWeight))
		radius := frac * maxRadius
		if radius < 0.5 {
			r.cells[y*r.W+x] += float64(weights[i])
			continue
		}
		ir := int(radius + 0.5)
		mass := float64(weights[i])
		cellsInDisc := 0
		for dy := -ir; dy <= ir; dy++ {
			for dx := -ir; dx <= ir; dx++ {
				if dx*dx+dy*dy <= ir*ir {
					cellsInDisc++
				}
			}
		}
		per := mass / float64(cellsInDisc)
		for dy := -ir; dy <= ir; dy++ {
			for dx := -ir; dx <= ir; dx++ {
				if dx*dx+dy*dy > ir*ir {
					continue
				}
				cx, cy := x+dx, y+dy
				if cx < 0 || cx >= r.W || cy < 0 || cy >= r.H {
					continue
				}
				r.cells[cy*r.W+cx] += per
			}
		}
	}
	return n, nil
}

// At returns the accumulated mass in raster cell (x, y).
func (r *Raster) At(x, y int) float64 { return r.cells[y*r.W+x] }

// OccupiedCells returns how many cells hold positive mass — the quantity
// behind the "perceptual coverage" diagnostics in the experiment harness.
func (r *Raster) OccupiedCells() int {
	n := 0
	for _, c := range r.cells {
		if c > 0 {
			n++
		}
	}
	return n
}

// TotalMass returns the sum of all cell masses.
func (r *Raster) TotalMass() float64 {
	var t float64
	for _, c := range r.cells {
		t += c
	}
	return t
}

// MassIn returns the mass accumulated inside the data-space rectangle q
// (clipped to the viewport). The simulated density-estimation user reads
// marker densities through this.
func (r *Raster) MassIn(q geom.Rect) float64 {
	var t float64
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			if r.cells[y*r.W+x] == 0 {
				continue
			}
			if q.Contains(r.cellCenter(x, y)) {
				t += r.cells[y*r.W+x]
			}
		}
	}
	return t
}

// cellCenter maps raster cell (x, y) back to its data-space centre.
func (r *Raster) cellCenter(x, y int) geom.Point {
	fx := (float64(x) + 0.5) / float64(r.W)
	fy := 1 - (float64(y)+0.5)/float64(r.H)
	return geom.Pt(
		r.Viewport.MinX+fx*r.Viewport.Width(),
		r.Viewport.MinY+fy*r.Viewport.Height(),
	)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Image renders the raster to a grayscale-on-white image with log-scaled
// intensity (count grids are heavy-tailed; linear scaling blacks out dense
// plots).
func (r *Raster) Image() *image.NRGBA {
	img := image.NewNRGBA(image.Rect(0, 0, r.W, r.H))
	var maxMass float64
	for _, c := range r.cells {
		if c > maxMass {
			maxMass = c
		}
	}
	logMax := math.Log1p(maxMass)
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			c := r.cells[y*r.W+x]
			if c == 0 {
				img.SetNRGBA(x, y, color.NRGBA{255, 255, 255, 255})
				continue
			}
			v := 1.0
			if logMax > 0 {
				v = math.Log1p(c) / logMax
			}
			g := uint8(225 - 225*v)
			img.SetNRGBA(x, y, color.NRGBA{g, g, uint8(float64(g)/2 + 64), 255})
		}
	}
	return img
}

// WritePNG encodes the raster image as PNG.
func (r *Raster) WritePNG(w io.Writer) error {
	return png.Encode(w, r.Image())
}

// MapPlot renders a value-colored map plot (Fig. 1 style): each point
// carries a scalar (altitude) encoded as color. Points are binned; each
// bin shows the mean value of its points.
type MapPlot struct {
	W, H     int
	Viewport geom.Rect
	sum      []float64
	count    []int
}

// NewMapPlot returns an empty map plot canvas.
func NewMapPlot(viewport geom.Rect, w, h int) *MapPlot {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("render: map plot size must be positive, got %dx%d", w, h))
	}
	if viewport.IsEmpty() {
		panic("render: empty viewport")
	}
	return &MapPlot{W: w, H: h, Viewport: viewport, sum: make([]float64, w*h), count: make([]int, w*h)}
}

// Plot accumulates points with values; pts and values must be parallel.
func (m *MapPlot) Plot(pts []geom.Point, values []float64) error {
	if len(pts) != len(values) {
		return fmt.Errorf("render: %d points vs %d values", len(pts), len(values))
	}
	r := Raster{W: m.W, H: m.H, Viewport: m.Viewport}
	for i, p := range pts {
		x, y, ok := r.cellAt(p)
		if !ok {
			continue
		}
		m.sum[y*m.W+x] += values[i]
		m.count[y*m.W+x]++
	}
	return nil
}

// Image renders with a blue→green→red value ramp on white.
func (m *MapPlot) Image() *image.NRGBA {
	img := image.NewNRGBA(image.Rect(0, 0, m.W, m.H))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, c := range m.count {
		if c == 0 {
			continue
		}
		v := m.sum[i] / float64(c)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			i := y*m.W + x
			if m.count[i] == 0 {
				img.SetNRGBA(x, y, color.NRGBA{255, 255, 255, 255})
				continue
			}
			t := ((m.sum[i] / float64(m.count[i])) - lo) / span
			img.SetNRGBA(x, y, ramp(t))
		}
	}
	return img
}

// ramp maps t∈[0,1] to a blue→green→red color.
func ramp(t float64) color.NRGBA {
	t = geom.Clamp(t, 0, 1)
	switch {
	case t < 0.5:
		u := t * 2
		return color.NRGBA{uint8(40 * u), uint8(90 + 130*u), uint8(200 * (1 - u)), 255}
	default:
		u := (t - 0.5) * 2
		return color.NRGBA{uint8(40 + 215*u), uint8(220 * (1 - u)), 20, 255}
	}
}

// WritePNG encodes the map plot as PNG.
func (m *MapPlot) WritePNG(w io.Writer) error {
	return png.Encode(w, m.Image())
}

// ZoomViewport returns a viewport covering the sub-rectangle of bounds at
// the given zoom factor centred on c: a factor of 4 shows 1/4 of each axis.
// It returns an error for factors < 1, rather than silently zooming out.
func ZoomViewport(bounds geom.Rect, c geom.Point, factor float64) (geom.Rect, error) {
	if factor < 1 {
		return geom.Rect{}, errors.New("render: zoom factor must be >= 1")
	}
	w := bounds.Width() / factor
	h := bounds.Height() / factor
	v := geom.Rect{
		MinX: c.X - w/2, MaxX: c.X + w/2,
		MinY: c.Y - h/2, MaxY: c.Y + h/2,
	}
	// Clamp inside bounds so a zoom near the edge stays on-data.
	if v.MinX < bounds.MinX {
		v.MinX, v.MaxX = bounds.MinX, bounds.MinX+w
	}
	if v.MaxX > bounds.MaxX {
		v.MinX, v.MaxX = bounds.MaxX-w, bounds.MaxX
	}
	if v.MinY < bounds.MinY {
		v.MinY, v.MaxY = bounds.MinY, bounds.MinY+h
	}
	if v.MaxY > bounds.MaxY {
		v.MinY, v.MaxY = bounds.MaxY-h, bounds.MaxY
	}
	return v, nil
}
