package server

import (
	"bytes"
	"encoding/json"
	"image/png"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/tilecache"
)

// fixedModel makes latency exactly n microseconds per tuple with zero
// startup, so tests can pick budgets that admit exact tuple counts.
type fixedModel struct{}

func (fixedModel) Name() string             { return "fixed" }
func (fixedModel) Time(n int) time.Duration { return time.Duration(n) * time.Microsecond }

// newTestServer builds a store with one 400-point base table on a diagonal
// plus samples of sizes 20 and 100.
func newTestServer(t *testing.T) *Server {
	t.Helper()
	st := store.New()
	base, err := st.CreateTable("base", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, 400)
	ys := make([]float64, 400)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i)
	}
	if err := base.BulkLoad(xs, ys); err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{20, 100} {
		pts := make([]geom.Point, size)
		for i := range pts {
			pts[i] = geom.Pt(float64(i*400/size), float64(i*400/size))
		}
		name := "base_vas_" + map[int]string{20: "20", 100: "100"}[size]
		if err := query.LoadSample(st, name, store.SampleMeta{
			Source: "base", Method: "vas", XCol: "x", YCol: "y",
		}, pts, nil); err != nil {
			t.Fatal(err)
		}
	}
	return New(st, query.NewPlanner(st, fixedModel{}), Config{})
}

func get(t *testing.T, s *Server, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec
}

func TestTablesListing(t *testing.T) {
	s := newTestServer(t)
	rec := get(t, s, "/v1/tables")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var out struct {
		Tables []TableInfo `json:"tables"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) != 1 {
		t.Fatalf("tables = %+v, want exactly the base table", out.Tables)
	}
	ti := out.Tables[0]
	if ti.Name != "base" || ti.Rows != 400 || len(ti.Samples) != 2 {
		t.Errorf("table info = %+v", ti)
	}
	if ti.Bounds == nil || ti.Bounds.MaxX != 399 {
		t.Errorf("bounds = %+v", ti.Bounds)
	}
	// Sample tables are nested under their source, not listed as tables.
	if ti.Samples[0].Size != 20 || ti.Samples[1].Size != 100 {
		t.Errorf("samples = %+v", ti.Samples)
	}
}

func TestQueryEndpoint(t *testing.T) {
	s := newTestServer(t)
	// Budget admits 150 tuples -> the 100-point sample.
	rec := get(t, s, "/v1/query?table=base&budget=150us")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var out QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.SampleSize != 100 || len(out.Points) != 100 || out.Exact {
		t.Errorf("query response = size %d, %d points, exact %v", out.SampleSize, len(out.Points), out.Exact)
	}
	// Viewport restricts the answer.
	rec = get(t, s, "/v1/query?table=base&budget=150us&minx=0&miny=0&maxx=100&maxy=100")
	if rec.Code != http.StatusOK {
		t.Fatalf("viewport status = %d, body %s", rec.Code, rec.Body)
	}
	out = QueryResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Points) == 0 || len(out.Points) >= 100 {
		t.Errorf("viewport points = %d, want a strict subset", len(out.Points))
	}
	for _, p := range out.Points {
		if p[0] < 0 || p[0] > 100 {
			t.Fatalf("point %v outside viewport", p)
		}
	}
	// Exact scan returns every base row.
	rec = get(t, s, "/v1/query?table=base&exact=true")
	out = QueryResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !out.Exact || len(out.Points) != 400 {
		t.Errorf("exact = %v with %d points", out.Exact, len(out.Points))
	}
}

func TestQueryErrors(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		url  string
		code int
	}{
		{"/v1/query", http.StatusBadRequest},                                // missing table
		{"/v1/query?table=base&budget=nope", http.StatusBadRequest},         // bad budget
		{"/v1/query?table=base&minx=1", http.StatusBadRequest},              // partial viewport
		{"/v1/query?table=base&budget=5us", http.StatusUnprocessableEntity}, // no sample fits
		{"/v1/query?table=ghost&exact=true", http.StatusNotFound},           // unknown table, exact path
		{"/v1/query?table=ghost", http.StatusNotFound},                      // unknown table, sampled path
	}
	for _, c := range cases {
		if rec := get(t, s, c.url); rec.Code != c.code {
			t.Errorf("GET %s = %d, want %d (body %s)", c.url, rec.Code, c.code, rec.Body)
		}
	}
}

func TestTileEndpointAndCache(t *testing.T) {
	s := newTestServer(t)
	rec := get(t, s, "/v1/tile/base/1/0/1.png?budget=150us&size=64")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/png" {
		t.Errorf("content type = %q", ct)
	}
	if h := rec.Header().Get("X-Cache"); h != "MISS" {
		t.Errorf("first fetch X-Cache = %q, want MISS", h)
	}
	img, err := png.Decode(rec.Body)
	if err != nil {
		t.Fatalf("invalid PNG: %v", err)
	}
	if img.Bounds().Dx() != 64 || img.Bounds().Dy() != 64 {
		t.Errorf("tile dims = %v, want 64x64", img.Bounds())
	}

	before := s.CacheStats()
	rec = get(t, s, "/v1/tile/base/1/0/1.png?budget=150us&size=64")
	if h := rec.Header().Get("X-Cache"); h != "HIT" {
		t.Errorf("second fetch X-Cache = %q, want HIT", h)
	}
	after := s.CacheStats()
	if after.Hits != before.Hits+1 || after.Misses != before.Misses {
		t.Errorf("cache stats before %+v after %+v: want one more hit, no more misses", before, after)
	}

	// A different budget resolves to a different sample -> distinct key.
	rec = get(t, s, "/v1/tile/base/1/0/1.png?budget=30us&size=64")
	if h := rec.Header().Get("X-Cache"); h != "MISS" {
		t.Errorf("different-sample fetch X-Cache = %q, want MISS", h)
	}
	if got := rec.Header().Get("X-Sample"); got != "base_vas_20" {
		t.Errorf("X-Sample = %q, want base_vas_20", got)
	}

	// Invalidation empties the table's tiles: next fetch misses again.
	s.InvalidateTable("base")
	rec = get(t, s, "/v1/tile/base/1/0/1.png?budget=150us&size=64")
	if h := rec.Header().Get("X-Cache"); h != "MISS" {
		t.Errorf("post-invalidation fetch X-Cache = %q, want MISS", h)
	}
}

// TestQueryFilters: filter=col:lo:hi predicates are parsed, pushed into
// the scan, and reflected in the pruning stats of the JSON answer.
func TestQueryFilters(t *testing.T) {
	s := newTestServer(t)
	rec := get(t, s, "/v1/query?table=base&budget=150us&filter=x:100:199")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var out QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Points) == 0 || len(out.Points) >= 100 {
		t.Fatalf("filtered query returned %d of the 100 sample points", len(out.Points))
	}
	for _, p := range out.Points {
		if p[0] < 100 || p[0] > 199 {
			t.Errorf("point %v escapes filter x:100:199", p)
		}
	}
	if !out.Scan.IndexProbe {
		t.Error("scan stats should report an index probe")
	}

	// Open-ended bounds: empty lo/hi are unbounded.
	rec = get(t, s, "/v1/query?table=base&budget=150us&filter=x:300:")
	if rec.Code != http.StatusOK {
		t.Fatalf("open-ended filter status = %d, body %s", rec.Code, rec.Body)
	}
	out = QueryResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range out.Points {
		if p[0] < 300 {
			t.Errorf("point %v escapes filter x:300:", p)
		}
	}

	// Multiple filters are conjunctive.
	rec = get(t, s, "/v1/query?table=base&budget=150us&filter=x:100:&filter=y::150")
	out = QueryResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range out.Points {
		if p[0] < 100 || p[1] > 150 {
			t.Errorf("point %v escapes the conjunction", p)
		}
	}

	// Malformed filters are 400s. (Only the LAST two ":"-fields are
	// bounds, so "x:1:2:3" is a well-formed filter on column "x:1" —
	// an unknown column, covered below — not a syntax error.)
	for _, bad := range []string{"x:1", "x:a:2", ":1:2", "x:1:2:z"} {
		if rec := get(t, s, "/v1/query?table=base&filter="+bad); rec.Code != http.StatusBadRequest {
			t.Errorf("filter=%q status = %d, want 400", bad, rec.Code)
		}
	}
	// A filter on an unknown column is a 404 (store lookup error) —
	// including the colon-bearing column name "x:1".
	for _, ghost := range []string{"ghost:1:2", "x:1:2:3"} {
		if rec := get(t, s, "/v1/query?table=base&budget=150us&filter="+ghost); rec.Code != http.StatusNotFound {
			t.Errorf("filter=%q status = %d, want 404", ghost, rec.Code)
		}
	}
}

// TestTileFilterCacheKeys: filters are part of the tile cache identity —
// different filter sets never share pixels, equivalent spellings do.
func TestTileFilterCacheKeys(t *testing.T) {
	s := newTestServer(t)
	base := "/v1/tile/base/0/0/0.png?budget=150us&size=32"
	if rec := get(t, s, base+"&filter=x:0:200"); rec.Header().Get("X-Cache") != "MISS" {
		t.Error("first filtered fetch should MISS")
	}
	if rec := get(t, s, base+"&filter=x:0:200"); rec.Header().Get("X-Cache") != "HIT" {
		t.Error("same filter should HIT")
	}
	// An equivalent spelling (trailing zeros) canonicalizes to the same key.
	if rec := get(t, s, base+"&filter=x:0.0:200.00"); rec.Header().Get("X-Cache") != "HIT" {
		t.Error("equivalent filter spelling should HIT the same entry")
	}
	// -0 and 0 compare identically and must share a key too.
	if rec := get(t, s, base+"&filter=x:-0:200"); rec.Header().Get("X-Cache") != "HIT" {
		t.Error("-0 bound should canonicalize to the 0 entry")
	}
	// A NaN bound means unbounded, like an empty bound.
	if rec := get(t, s, base+"&filter=y::300"); rec.Header().Get("X-Cache") != "MISS" {
		t.Error("open-lo filter should be its own entry")
	}
	if rec := get(t, s, base+"&filter=y:NaN:300"); rec.Header().Get("X-Cache") != "HIT" {
		t.Error("NaN lo should canonicalize to the open-lo entry")
	}
	// A different filter, and the unfiltered tile, are distinct entries.
	if rec := get(t, s, base+"&filter=x:0:100"); rec.Header().Get("X-Cache") != "MISS" {
		t.Error("different filter should MISS")
	}
	rec := get(t, s, base)
	if rec.Header().Get("X-Cache") != "MISS" {
		t.Error("unfiltered tile should be its own entry")
	}
	unfiltered := rec.Body.Bytes()
	// The filtered tile really is different pixels.
	rec = get(t, s, base+"&filter=x:0:100")
	if bytes.Equal(unfiltered, rec.Body.Bytes()) {
		t.Error("filtered and unfiltered tiles rendered identical bytes")
	}
	// Filter order does not fragment the cache.
	if rec := get(t, s, base+"&filter=x:0:100&filter=y:0:300"); rec.Header().Get("X-Cache") != "MISS" {
		t.Error("two-filter tile should MISS first")
	}
	if rec := get(t, s, base+"&filter=y:0:300&filter=x:0:100"); rec.Header().Get("X-Cache") != "HIT" {
		t.Error("reordered filters should HIT the same entry")
	}
}

// TestInvalidationEpochBlocksInFlightStaleTile simulates the race where
// a tile render in flight across an InvalidateTable completes after the
// invalidation: its deferred cache insert lands under the
// pre-invalidation epoch key, which no later request asks for, so the
// stale pixels can never surface as a hit.
func TestInvalidationEpochBlocksInFlightStaleTile(t *testing.T) {
	s := newTestServer(t)
	staleKey := tilecache.Key{
		Table: "base", Sample: "__exact__", Epoch: s.tableEpoch("base"),
		Z: 0, X: 0, Y: 0, Size: s.cfg.DefaultTileSize,
	}
	s.InvalidateTable("base")
	// The in-flight render finishes now and caches pre-invalidation
	// pixels under the old epoch (what GetOrRender's deferred insert
	// does after the renderer returns).
	stale := []byte("stale-png-bytes")
	s.cache.Put(staleKey, stale)

	rec := get(t, s, "/v1/tile/base/0/0/0.png?exact=true")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if h := rec.Header().Get("X-Cache"); h != "MISS" {
		t.Errorf("post-invalidation fetch X-Cache = %q, want MISS (stale in-flight tile served)", h)
	}
	if bytes.Equal(rec.Body.Bytes(), stale) {
		t.Error("response is the stale pre-invalidation render")
	}
}

func TestTileErrors(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		url  string
		code int
	}{
		{"/v1/tile/base/1/0/1", http.StatusBadRequest},            // no .png
		{"/v1/tile/base/1/0/zz.png", http.StatusBadRequest},       // bad y
		{"/v1/tile/base/1/5/0.png", http.StatusBadRequest},        // out of range
		{"/v1/tile/base/1/0/0.png?size=4", http.StatusBadRequest}, // size too small
		{"/v1/tile/ghost/1/0/0.png", http.StatusNotFound},         // unknown table
		{"/v1/tile/base/1/0/0.png?budget=5us", http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		if rec := get(t, s, c.url); rec.Code != c.code {
			t.Errorf("GET %s = %d, want %d (body %s)", c.url, rec.Code, c.code, rec.Body)
		}
	}
}

func postJSON(t *testing.T, s *Server, url, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", url, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	s.ServeHTTP(rec, req)
	return rec
}

func TestAppendEndpoint(t *testing.T) {
	s := newTestServer(t)
	// Index the base table (as the catalog façade does at load time) so
	// appended rows land in a delta and the ingest gauges are live.
	tb, err := s.st.Table("base")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	// Warm a tile and the bounds cache so the invalidation is observable.
	if rec := get(t, s, "/v1/tile/base/0/0/0.png?budget=150us&size=64"); rec.Code != http.StatusOK {
		t.Fatalf("warm tile = %d", rec.Code)
	}
	epochBefore := s.tableEpoch("base")

	rec := postJSON(t, s, "/v1/append/base", `{"points": [[500, 500], [501, 501], [502, 502]]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("append = %d, body %s", rec.Code, rec.Body)
	}
	var out AppendResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Appended != 3 || out.Rows != 403 {
		t.Fatalf("append response = %+v, want 3 appended / 403 rows", out)
	}
	// Appends invalidate the table's tiles: the epoch must have moved so
	// no pre-append pixels can be served again.
	if got := s.tableEpoch("base"); got == epochBefore {
		t.Fatal("append did not bump the tile-cache epoch")
	}
	// The appended rows are immediately visible to exact queries.
	rec = get(t, s, "/v1/query?table=base&exact=true&minx=450&miny=450&maxx=550&maxy=550")
	if rec.Code != http.StatusOK {
		t.Fatalf("exact query = %d, body %s", rec.Code, rec.Body)
	}
	var q QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if len(q.Points) != 3 || q.ServedRows != 403 {
		t.Fatalf("exact query after append: %d points, servedRows %d", len(q.Points), q.ServedRows)
	}

	// The row-major shape works too.
	rec = postJSON(t, s, "/v1/append/base", `{"rows": [[600, 600]]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("rows append = %d, body %s", rec.Code, rec.Body)
	}

	// Error cases.
	for _, c := range []struct {
		url, body string
		code      int
	}{
		{"/v1/append/ghost", `{"points": [[1, 2]]}`, http.StatusNotFound},
		{"/v1/append/ghost", `{}`, http.StatusNotFound},                        // empty no-op still checks the table
		{"/v1/append/base", `{"points": [[5]]}`, http.StatusBadRequest},        // missing y
		{"/v1/append/base", `{"points": [[1, 2, 99]]}`, http.StatusBadRequest}, // stray value
		{"/v1/append/base", `{"points": [[1,2]], "rows": [[1,2]]}`, http.StatusBadRequest},
		{"/v1/append/base", `{"rows": [[1, 2, 3]]}`, http.StatusBadRequest}, // width != schema
		{"/v1/append/base", `{"rows": [[1, 2], [3]]}`, http.StatusBadRequest},
		{"/v1/append/base", `not json`, http.StatusBadRequest},
	} {
		if rec := postJSON(t, s, c.url, c.body); rec.Code != c.code {
			t.Errorf("POST %s %s = %d, want %d (body %s)", c.url, c.body, rec.Code, c.code, rec.Body)
		}
	}

	// Ingest counters on /metrics.
	body := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		"vasserve_ingest_batches_total 2",
		"vasserve_ingest_rows_total 4",
		`vasserve_store_table_tail_rows{table="base"} 4`,
		`vasserve_store_table_delta_rows{table="base"} 4`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestAppendHookRoutesBatches verifies a configured AppendHook receives
// the parsed batch instead of the store being written directly.
func TestAppendHookRoutesBatches(t *testing.T) {
	st := store.New()
	if _, err := st.CreateTable("base", "x", "y"); err != nil {
		t.Fatal(err)
	}
	var gotTable string
	var gotCols [][]float64
	s := New(st, query.NewPlanner(st, fixedModel{}), Config{
		AppendHook: func(table string, cols [][]float64) (int, error) {
			gotTable, gotCols = table, cols
			return len(cols[0]), nil
		},
	})
	rec := postJSON(t, s, "/v1/append/base", `{"points": [[1, 2], [3, 4]]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("append = %d, body %s", rec.Code, rec.Body)
	}
	if gotTable != "base" || len(gotCols) != 2 || gotCols[0][1] != 3 || gotCols[1][1] != 4 {
		t.Fatalf("hook saw table %q cols %v", gotTable, gotCols)
	}
	// The hook owns the store write; the table itself must be untouched.
	tb, _ := st.Table("base")
	if tb.NumRows() != 0 {
		t.Fatalf("server wrote the store despite the hook: %d rows", tb.NumRows())
	}
}

func TestHealthAndMetrics(t *testing.T) {
	s := newTestServer(t)
	if rec := get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	// Generate some traffic so counters are non-zero.
	get(t, s, "/v1/query?table=base&budget=150us")
	get(t, s, "/v1/tile/base/0/0/0.png?budget=150us&size=64")
	get(t, s, "/v1/tile/base/0/0/0.png?budget=150us&size=64")
	get(t, s, "/v1/query?table=ghost&exact=true") // one error
	// One filtered probe so the zone-map counters move.
	get(t, s, "/v1/query?table=base&budget=150us&filter=x:100:199&minx=0&miny=0&maxx=399&maxy=399")

	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`vasserve_requests_total{route="query"} 3`,
		`vasserve_requests_total{route="tile"} 2`,
		`vasserve_request_errors_total 1`,
		`vasserve_tile_cache_hits_total 1`,
		`vasserve_tile_cache_misses_total 1`,
		`vasserve_tile_cache_hit_ratio 0.5`,
		`vasserve_request_latency_p50_seconds`,
		`vasserve_request_latency_p99_seconds`,
		`vasserve_store_filtered_probes_total 1`,
		`vasserve_store_zone_cells_touched_total`,
		`vasserve_store_zone_cells_pruned_total`,
		`vasserve_store_batched_rows_total`,
		`vasserve_store_probe_shards_total`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
	// The filtered probe touched at least one cell.
	if strings.Contains(body, "vasserve_store_zone_cells_touched_total 0\n") {
		t.Error("filtered probe recorded zero touched cells")
	}
}

// TestFilterCacheKeyCollision pins the canonical-key fix: column names
// may contain ":" and "|" (the key's own separators), so without
// length-prefixing, the ONE-filter set on column "a:1:2|b" and the
// TWO-filter set on "a" and "b" would produce the same key and serve
// each other's cached tiles.
func TestFilterCacheKeyCollision(t *testing.T) {
	canonOf := func(query string) string {
		t.Helper()
		_, canon, err := parseFilters(httptest.NewRequest("GET", "/v1/query?"+query, nil))
		if err != nil {
			t.Fatalf("%s: %v", query, err)
		}
		return canon
	}
	one := canonOf("filter=a:1:2%7Cb:3:4") // column "a:1:2|b", bounds 3..4
	two := canonOf("filter=a:1:2&filter=b:3:4")
	if one == two {
		t.Fatalf("collision: %q and the a+b pair share cache key %q", "a:1:2|b:3:4", one)
	}
	// Equivalent spellings of the same set still share one key...
	if canonOf("filter=a:1:2") != canonOf("filter=a:1.0:2.00") {
		t.Error("equivalent bound spellings got different keys")
	}
	// ...including across ordering.
	if canonOf("filter=a:1:2&filter=b:3:4") != canonOf("filter=b:3:4&filter=a:1:2") {
		t.Error("filter order fragmented the key")
	}
	// A colon-bearing column is parsed from the right.
	preds, _, err := parseFilters(httptest.NewRequest("GET", "/v1/query?filter=t:s:1:2", nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 1 || preds[0].Column != "t:s" || preds[0].Min != 1 || preds[0].Max != 2 {
		t.Fatalf("parsed %+v, want column \"t:s\" in [1,2]", preds)
	}
}

// TestQueryMultiRect: repeatable rect= parameters answer the union of
// the viewports, pinned against the two single-rect answers.
func TestQueryMultiRect(t *testing.T) {
	s := newTestServer(t)
	fetch := func(url string) QueryResponse {
		t.Helper()
		rec := get(t, s, url)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d, body %s", url, rec.Code, rec.Body)
		}
		var out QueryResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	// The base table is 400 points on the diagonal.
	a := fetch("/v1/query?table=base&exact=true&rect=0:0:50:50")
	b := fetch("/v1/query?table=base&exact=true&rect=300:300:399:399")
	u := fetch("/v1/query?table=base&exact=true&rect=0:0:50:50&rect=300:300:399:399")
	if len(a.Points) != 51 || len(b.Points) != 100 {
		t.Fatalf("single rects returned %d and %d points", len(a.Points), len(b.Points))
	}
	if len(u.Points) != len(a.Points)+len(b.Points) {
		t.Fatalf("disjoint union = %d points, want %d", len(u.Points), len(a.Points)+len(b.Points))
	}
	want := append(append([][2]float64{}, a.Points...), b.Points...)
	for i, p := range u.Points {
		if p != want[i] {
			t.Fatalf("union point %d = %v, differs from the single-rect answers' union %v", i, p, want[i])
		}
	}
	if u.ServedRows != 400 {
		t.Errorf("union servedRows = %d, want 400", u.ServedRows)
	}
	// Overlapping rectangles return each row once.
	o := fetch("/v1/query?table=base&exact=true&rect=0:0:100:100&rect=50:50:150:150")
	if len(o.Points) != 151 {
		t.Fatalf("overlapping union = %d points, want 151 distinct", len(o.Points))
	}
	// Filters still push down into every rectangle.
	f := fetch("/v1/query?table=base&exact=true&rect=0:0:100:100&rect=200:200:300:300&filter=x:90:210")
	for _, p := range f.Points {
		if p[0] < 90 || p[0] > 210 {
			t.Errorf("point %v escapes the filter", p)
		}
	}
	// Budgeted (sampled) union works too: strict subset of the sample.
	if s := fetch("/v1/query?table=base&budget=150us&rect=0:0:100:100"); len(s.Points) == 0 || len(s.Points) >= 100 {
		t.Errorf("sampled rect query = %d points, want a strict subset", len(s.Points))
	}

	// rect= and minx/... are two spellings of the same thing: reject the mix.
	for _, bad := range []string{
		"/v1/query?table=base&exact=true&rect=0:0:50:50&minx=0&miny=0&maxx=9&maxy=9",
		"/v1/query?table=base&exact=true&rect=0:0:50",      // 3 fields
		"/v1/query?table=base&exact=true&rect=0:0:50:zz",   // not a number
		"/v1/query?table=base&exact=true&rect=50:50:10:10", // empty
	} {
		if rec := get(t, s, bad); rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400 (body %s)", bad, rec.Code, rec.Body)
		}
	}
}

// TestDeleteEndpoint drives POST /v1/delete/{table} end to end:
// tombstoning, live-row accounting in every surface that reports rows,
// cache invalidation, and the delete metrics.
func TestDeleteEndpoint(t *testing.T) {
	s := newTestServer(t)
	// Index the base table (as the catalog façade does at load time): the
	// per-table live/dead gauges report indexed tables.
	tb, err := s.st.Table("base")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	// Warm a tile so the epoch bump is observable.
	if rec := get(t, s, "/v1/tile/base/0/0/0.png?budget=150us&size=64"); rec.Code != http.StatusOK {
		t.Fatalf("warm tile = %d", rec.Code)
	}
	epochBefore := s.tableEpoch("base")

	rec := postJSON(t, s, "/v1/delete/base", `{"filters": [{"column": "x", "min": 100, "max": 199}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete = %d, body %s", rec.Code, rec.Body)
	}
	var out DeleteResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Deleted != 100 || out.Rows != 300 {
		t.Fatalf("delete response = %+v, want 100 deleted / 300 live rows", out)
	}
	if s.tableEpoch("base") == epochBefore {
		t.Fatal("delete did not bump the tile-cache epoch")
	}

	// Every rows surface now reports LIVE rows: the query response...
	qrec := get(t, s, "/v1/query?table=base&exact=true")
	var q QueryResponse
	if err := json.Unmarshal(qrec.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if q.ServedRows != 300 || len(q.Points) != 300 {
		t.Fatalf("exact query after delete: servedRows %d, %d points; want 300/300", q.ServedRows, len(q.Points))
	}
	for _, p := range q.Points {
		if p[0] >= 100 && p[0] <= 199 {
			t.Errorf("deleted point %v served", p)
		}
	}
	// ...the tile header...
	trec := get(t, s, "/v1/tile/base/0/0/0.png?exact=true&size=64")
	if trec.Code != http.StatusOK {
		t.Fatalf("tile after delete = %d", trec.Code)
	}
	if got := trec.Header().Get("X-Vas-Served-Rows"); got != "300" {
		t.Errorf("X-Vas-Served-Rows = %q, want 300", got)
	}
	// ...and the tables listing (Rows stays physical, LiveRows drops).
	lrec := get(t, s, "/v1/tables")
	var listing struct {
		Tables []TableInfo `json:"tables"`
	}
	if err := json.Unmarshal(lrec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if listing.Tables[0].Rows != 400 || listing.Tables[0].LiveRows != 300 {
		t.Errorf("listing rows = %d/%d live, want 400/300", listing.Tables[0].Rows, listing.Tables[0].LiveRows)
	}

	// Deleting the same slice again is a no-op and must NOT bump the epoch.
	epochBefore = s.tableEpoch("base")
	rec = postJSON(t, s, "/v1/delete/base", `{"filters": [{"column": "x", "min": 100, "max": 199}]}`)
	out = DeleteResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Deleted != 0 || s.tableEpoch("base") != epochBefore {
		t.Errorf("no-op delete: deleted %d, epoch moved %t", out.Deleted, s.tableEpoch("base") != epochBefore)
	}

	// Rect deletes use the configured x/y columns; open-sided filters work.
	rec = postJSON(t, s, "/v1/delete/base", `{"rect": {"minX": 0, "minY": 0, "maxX": 49, "maxY": 49}}`)
	out = DeleteResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Deleted != 50 || out.Rows != 250 {
		t.Errorf("rect delete = %+v, want 50 deleted / 250 rows", out)
	}
	rec = postJSON(t, s, "/v1/delete/base", `{"filters": [{"column": "x", "min": 350}]}`)
	out = DeleteResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Deleted != 50 || out.Rows != 200 {
		t.Errorf("open-sided delete = %+v, want 50 deleted / 200 rows", out)
	}

	// Error cases: an empty body is a refused foot-gun, all:true is the
	// explicit spelling; unknown tables and columns are 404s.
	for _, c := range []struct {
		url, body string
		code      int
	}{
		{"/v1/delete/base", `{}`, http.StatusBadRequest},
		{"/v1/delete/base", `{"filters": []}`, http.StatusBadRequest},
		{"/v1/delete/base", `{"filters": [{"min": 1}]}`, http.StatusBadRequest},
		{"/v1/delete/base", `not json`, http.StatusBadRequest},
		{"/v1/delete/ghost", `{"all": true}`, http.StatusNotFound},
		{"/v1/delete/base", `{"filters": [{"column": "ghost"}]}`, http.StatusNotFound},
	} {
		if rec := postJSON(t, s, c.url, c.body); rec.Code != c.code {
			t.Errorf("POST %s %s = %d, want %d (body %s)", c.url, c.body, rec.Code, c.code, rec.Body)
		}
	}

	// all:true takes the remaining 200 rows.
	rec = postJSON(t, s, "/v1/delete/base", `{"all": true}`)
	out = DeleteResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Deleted != 200 || out.Rows != 0 {
		t.Errorf("delete-all = %+v, want 200 deleted / 0 rows", out)
	}

	// Delete metrics and tombstone gauges.
	body := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		"vasserve_delete_requests_total 4",
		"vasserve_delete_rows_total 400",
		"vasserve_store_tombstoned_rows 400",
		"vasserve_store_deleted_rows_total 400",
		`vasserve_store_table_live_rows{table="base"} 0`,
		`vasserve_store_table_dead_rows{table="base"} 400`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestDeleteHookRoutesPredicates mirrors the append hook test: a
// configured DeleteHook owns the delete, the store is untouched.
func TestDeleteHookRoutesPredicates(t *testing.T) {
	st := store.New()
	tb, err := st.CreateTable("base", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.BulkLoad([]float64{1, 2, 3}, []float64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	var gotTable string
	var gotPreds []store.Pred
	s := New(st, query.NewPlanner(st, fixedModel{}), Config{
		DeleteHook: func(table string, preds []store.Pred) (int, error) {
			gotTable, gotPreds = table, preds
			return 2, nil
		},
	})
	rec := postJSON(t, s, "/v1/delete/base", `{"filters": [{"column": "x", "max": 2}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete = %d, body %s", rec.Code, rec.Body)
	}
	if gotTable != "base" || len(gotPreds) != 1 || gotPreds[0].Column != "x" || gotPreds[0].Max != 2 {
		t.Fatalf("hook saw table %q preds %+v", gotTable, gotPreds)
	}
	if tb.LiveRows() != 3 {
		t.Fatalf("server deleted from the store despite the hook: %d live", tb.LiveRows())
	}
}

// TestEmptyAppendIsNoOp: a `{}` (or explicitly empty) append batch
// returns 200 with appended=0 and leaves every cache epoch alone — the
// retry-with-empty-tail client pattern must not wipe warm tiles.
func TestEmptyAppendIsNoOp(t *testing.T) {
	s := newTestServer(t)
	if rec := get(t, s, "/v1/tile/base/0/0/0.png?budget=150us&size=64"); rec.Code != http.StatusOK {
		t.Fatalf("warm tile = %d", rec.Code)
	}
	epochBefore := s.tableEpoch("base")
	for _, body := range []string{`{}`, `{"points": []}`, `{"rows": []}`} {
		rec := postJSON(t, s, "/v1/append/base", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("append %s = %d, body %s", body, rec.Code, rec.Body)
		}
		var out AppendResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		if out.Appended != 0 || out.Rows != 400 {
			t.Errorf("append %s = %+v, want 0 appended / 400 rows", body, out)
		}
	}
	if s.tableEpoch("base") != epochBefore {
		t.Fatal("empty append bumped the tile-cache epoch")
	}
	// The warm tile is still a HIT.
	if rec := get(t, s, "/v1/tile/base/0/0/0.png?budget=150us&size=64"); rec.Header().Get("X-Cache") != "HIT" {
		t.Error("empty append evicted the warm tile")
	}
	// Specifying BOTH shapes stays a 400 even when both are empty-ish.
	if rec := postJSON(t, s, "/v1/append/base", `{"points": [[1,2]], "rows": [[3,4]]}`); rec.Code != http.StatusBadRequest {
		t.Errorf("both-shapes append = %d, want 400", rec.Code)
	}
}

func TestNearestEndpoint(t *testing.T) {
	s := newTestServer(t)
	// The base table is a diagonal (i, i); from (10.2, 10.2) the nearest
	// three rows are 10, 11, 9 in that order.
	rec := get(t, s, "/v1/nearest?table=base&x=10.2&y=10.2&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var out NearestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Table != "base" || out.K != 3 || out.ServedRows != 400 {
		t.Errorf("response envelope = %+v", out)
	}
	if len(out.Neighbors) != 3 {
		t.Fatalf("neighbors = %+v, want 3", out.Neighbors)
	}
	for i, want := range []int{10, 11, 9} {
		if out.Neighbors[i].Row != want {
			t.Errorf("neighbor %d = row %d, want %d", i, out.Neighbors[i].Row, want)
		}
	}
	for i := 1; i < len(out.Neighbors); i++ {
		if out.Neighbors[i].Dist < out.Neighbors[i-1].Dist {
			t.Errorf("neighbors not ascending by distance: %+v", out.Neighbors)
		}
	}
	// A pushdown filter excludes rows below x=11.
	rec = get(t, s, "/v1/nearest?table=base&x=10.2&y=10.2&k=2&filter=x:11:")
	if rec.Code != http.StatusOK {
		t.Fatalf("filtered status = %d, body %s", rec.Code, rec.Body)
	}
	out = NearestResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Neighbors) != 2 || out.Neighbors[0].Row != 11 || out.Neighbors[1].Row != 12 {
		t.Errorf("filtered neighbors = %+v, want rows 11, 12", out.Neighbors)
	}
	// k defaults to 1.
	rec = get(t, s, "/v1/nearest?table=base&x=42&y=42")
	out = NearestResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Neighbors) != 1 || out.Neighbors[0].Row != 42 || out.Neighbors[0].Dist != 0 {
		t.Errorf("default-k neighbors = %+v, want row 42 at distance 0", out.Neighbors)
	}

	// Error surface.
	for url, want := range map[string]int{
		"/v1/nearest?x=1&y=1":                     http.StatusBadRequest, // no table
		"/v1/nearest?table=base&y=1":              http.StatusBadRequest, // no x
		"/v1/nearest?table=base&x=zap&y=1":        http.StatusBadRequest,
		"/v1/nearest?table=base&x=1&y=1&k=0":      http.StatusBadRequest,
		"/v1/nearest?table=base&x=1&y=1&k=-3":     http.StatusBadRequest,
		"/v1/nearest?table=base&x=1&y=1&filter=x": http.StatusBadRequest,
		"/v1/nearest?table=nope&x=1&y=1":          http.StatusNotFound,
	} {
		if rec := get(t, s, url); rec.Code != want {
			t.Errorf("GET %s = %d, want %d (body %s)", url, rec.Code, want, rec.Body)
		}
	}

	// The kNN counter and backend gauges surface on /metrics.
	mrec := get(t, s, "/metrics")
	body := mrec.Body.String()
	for _, want := range []string{
		"vasserve_nearest_requests_total 3",
		`vasserve_requests_total{route="nearest"}`,
		"vasserve_store_index_backend{table=",
		"vasserve_store_index_skew_ratio{table=",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
