package server

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

func TestHistogramQuantiles(t *testing.T) {
	m := newMetrics("q")
	// 90 fast requests, 10 slow: p50 resolves to the fast bucket bound,
	// p99 (nearest-rank) to the slow one's.
	for i := 0; i < 90; i++ {
		m.latency.observe(80 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		m.latency.observe(40 * time.Millisecond)
	}
	if got := m.latency.quantileSeconds(0.50); got != 0.0001 {
		t.Errorf("p50 = %g, want 0.0001 (100µs bucket bound)", got)
	}
	if got := m.latency.quantileSeconds(0.99); got != 0.05 {
		t.Errorf("p99 = %g, want 0.05 (50ms bucket bound)", got)
	}
}

func TestHistogramOverflowReportsInf(t *testing.T) {
	m := newMetrics("q")
	// Every observation beyond the last tracked bound: the quantile has
	// no upper bound and must say so, not silently cap at 2.5s.
	for i := 0; i < 10; i++ {
		m.latency.observe(30 * time.Second)
	}
	if got := m.latency.quantileSeconds(0.99); !math.IsInf(got, 1) {
		t.Errorf("saturated p99 = %g, want +Inf", got)
	}
	var sb strings.Builder
	m.write(&sb, cacheStats{}, store.IndexStats{}, "", 0)
	if !strings.Contains(sb.String(), "vasserve_request_latency_p99_seconds +Inf") {
		t.Errorf("metrics output hides tail saturation:\n%s", sb.String())
	}
}

func TestHistogramEmpty(t *testing.T) {
	m := newMetrics("q")
	if got := m.latency.quantileSeconds(0.99); got != 0 {
		t.Errorf("empty histogram p99 = %g, want 0", got)
	}
}
