package server

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

func writeMetrics(m *metrics) string {
	var sb strings.Builder
	m.write(&sb, cacheStats{}, store.IndexStats{}, "", 0, nil, nil)
	return sb.String()
}

func TestRecordUnknownRouteBucketsUnderOther(t *testing.T) {
	m := newMetrics("query")
	m.record("query", 200, time.Millisecond)
	m.record("no-such-route", 200, time.Millisecond)
	m.record("another-stranger", 500, time.Millisecond)
	out := writeMetrics(m)
	for _, want := range []string{
		`vasserve_requests_total{route="query"} 1`,
		`vasserve_requests_total{route="other"} 2`,
		`vasserve_request_latency_seconds_count{route="other"} 2`,
		"vasserve_request_errors_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, grepLines(out, "requests_total"))
		}
	}
}

func TestWriteReportsQuantilesFromHistograms(t *testing.T) {
	m := newMetrics("query")
	// 90 fast requests, 10 slow: p50 resolves to the fast bucket bound,
	// p99 (nearest-rank) to the slow one's.
	for i := 0; i < 90; i++ {
		m.record("query", 200, 80*time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		m.record("query", 200, 40*time.Millisecond)
	}
	out := writeMetrics(m)
	if !strings.Contains(out, "vasserve_request_latency_p50_seconds 0.0001") {
		t.Errorf("p50 line missing or wrong:\n%s", grepLines(out, "p50"))
	}
	if !strings.Contains(out, "vasserve_request_latency_p99_seconds 0.05") {
		t.Errorf("p99 line missing or wrong:\n%s", grepLines(out, "p99"))
	}
	if !strings.Contains(out, `vasserve_request_latency_seconds_bucket{route="query",le="+Inf"} 100`) {
		t.Errorf("+Inf bucket missing:\n%s", grepLines(out, `route="query"`))
	}
}

func TestWriteOverflowReportsInf(t *testing.T) {
	m := newMetrics("query")
	// Every observation beyond the last tracked bound: the quantile has
	// no upper bound and must say so, not silently cap at 2.5s.
	m.record("query", 200, 30*time.Second)
	out := writeMetrics(m)
	if !strings.Contains(out, "vasserve_request_latency_p99_seconds +Inf") {
		t.Errorf("metrics output hides tail saturation:\n%s", grepLines(out, "p99"))
	}
}

func TestWriteEmptyHistogramQuantilesZero(t *testing.T) {
	out := writeMetrics(newMetrics("query"))
	if !strings.Contains(out, "vasserve_request_latency_p50_seconds 0\n") {
		t.Errorf("empty p50 should be 0:\n%s", grepLines(out, "p50"))
	}
}

func TestWriteTailStatusAndJobs(t *testing.T) {
	m := newMetrics("query")
	jobs := obs.NewJobSet()
	jobs.Start("compaction").End()
	var sb strings.Builder
	m.write(&sb, cacheStats{}, store.IndexStats{}, "snapshot", 1.5,
		[]TailStatus{{Table: "gps", Degraded: true}, {Table: "taxi"}}, jobs.Snapshot())
	out := sb.String()
	for _, want := range []string{
		`vasserve_tail_log_degraded{table="gps"} 1`,
		`vasserve_tail_log_degraded{table="taxi"} 0`,
		`vasserve_job_duration_seconds_count{job="compaction"} 1`,
		`vasserve_job_inflight{job="compaction"} 0`,
		`vasserve_coldstart_seconds{source="snapshot"} 1.5`,
		"go_goroutines ",
		"go_gc_pause_seconds_total ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	checkExposition(t, out)
}

func TestExpositionWellFormed(t *testing.T) {
	m := newMetrics("tables", "query", "tile", "append", "healthz", "metrics", "debug")
	m.record("query", 200, time.Millisecond)
	m.record("tile", 404, 3*time.Second)
	m.record("stranger", 200, time.Microsecond)
	tr := obs.NewTrace("query")
	sp := tr.StartSpan(obs.StageProbe)
	sp.End()
	tr.Finish()
	m.recordStages(tr)
	var sb strings.Builder
	m.write(&sb, cacheStats{Hits: 3, Misses: 1}, store.IndexStats{
		IndexedTables: 2, Indexes: 2,
		PerTable: []store.TableIngestStats{{Table: "gps", Rows: 10}},
	}, "rebuild", 0.25, []TailStatus{{Table: "gps"}}, nil)
	checkExposition(t, sb.String())
}

// grepLines returns the lines of out containing substr, for focused
// test failure messages.
func grepLines(out, substr string) string {
	var hits []string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, substr) {
			hits = append(hits, line)
		}
	}
	return strings.Join(hits, "\n")
}

// ---- strict exposition-format checker ----

var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$`)

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseLabels parses `k="v",k2="v2"` with exposition escaping,
// rejecting malformed quoting, bad escapes, and duplicate names.
func parseLabels(s string) (map[string]string, error) {
	labels := make(map[string]string)
	i := 0
	for i < len(s) {
		j := strings.IndexByte(s[i:], '=')
		if j < 0 {
			return nil, fmt.Errorf("label pair without '=' in %q", s[i:])
		}
		name := s[i : i+j]
		if name == "" || strings.ContainsAny(name, `{}", `) {
			return nil, fmt.Errorf("bad label name %q", name)
		}
		i += j + 1
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", name)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("label %q: trailing backslash", name)
				}
				switch s[i+1] {
				case '\\', '"':
					val.WriteByte(s[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %q: bad escape \\%c", name, s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("label %q: unterminated value", name)
		}
		if _, dup := labels[name]; dup {
			return nil, fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = val.String()
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Errorf("expected ',' after label %q, got %q", name, s[i:])
			}
			i++
		}
	}
	return labels, nil
}

// labelKey canonicalizes a label set (minus one dropped label) into a
// sorted, comparable string.
func labelKey(labels map[string]string, drop string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == drop {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%q,", k, labels[k])
	}
	return sb.String()
}

// checkExposition parses a full Prometheus text-format body and
// enforces: every line parses, series are unique (name + sorted
// labels), label quoting is valid, and for each histogram family the
// cumulative buckets are monotone, end in +Inf, agree with the _count
// series, and come with a _sum.
func checkExposition(t *testing.T, body string) {
	t.Helper()
	types := make(map[string]string)
	seen := make(map[string]bool)
	var samples []promSample
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || parts[3] == "" {
				t.Errorf("line %d: malformed comment %q", ln+1, line)
				continue
			}
			if parts[1] == "TYPE" {
				if prev, ok := types[parts[2]]; ok {
					t.Errorf("line %d: duplicate TYPE for %s (was %s)", ln+1, parts[2], prev)
				}
				types[parts[2]] = parts[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("line %d: unknown comment %q", ln+1, line)
			continue
		}
		mt := sampleRe.FindStringSubmatch(line)
		if mt == nil {
			t.Errorf("line %d: unparsable sample %q", ln+1, line)
			continue
		}
		labels := map[string]string{}
		if mt[2] != "" {
			var err error
			labels, err = parseLabels(mt[2])
			if err != nil {
				t.Errorf("line %d: %v", ln+1, err)
				continue
			}
		}
		v, err := strconv.ParseFloat(mt[3], 64)
		if err != nil && mt[3] != "+Inf" && mt[3] != "-Inf" && mt[3] != "NaN" {
			t.Errorf("line %d: bad value %q", ln+1, mt[3])
			continue
		}
		id := mt[1] + "{" + labelKey(labels, "") + "}"
		if seen[id] {
			t.Errorf("line %d: duplicate series %s", ln+1, id)
		}
		seen[id] = true
		samples = append(samples, promSample{name: mt[1], labels: labels, value: v})
	}

	// Histogram invariants per (family, labels-minus-le) group.
	type histGroup struct {
		les    []float64
		counts map[float64]float64
		count  *float64
		sum    bool
	}
	groups := make(map[string]map[string]*histGroup) // family -> label key -> group
	for fam, typ := range types {
		if typ == "histogram" {
			groups[fam] = make(map[string]*histGroup)
		}
	}
	getGroup := func(fam string, labels map[string]string) *histGroup {
		key := labelKey(labels, "le")
		g := groups[fam][key]
		if g == nil {
			g = &histGroup{counts: make(map[float64]float64)}
			groups[fam][key] = g
		}
		return g
	}
	for _, s := range samples {
		for fam := range groups {
			switch s.name {
			case fam + "_bucket":
				le, ok := s.labels["le"]
				if !ok {
					t.Errorf("%s_bucket without le label", fam)
					continue
				}
				lv := math.Inf(1)
				if le != "+Inf" {
					var err error
					lv, err = strconv.ParseFloat(le, 64)
					if err != nil {
						t.Errorf("%s_bucket: bad le %q", fam, le)
						continue
					}
				}
				g := getGroup(fam, s.labels)
				g.les = append(g.les, lv)
				g.counts[lv] = s.value
			case fam + "_count":
				v := s.value
				getGroup(fam, s.labels).count = &v
			case fam + "_sum":
				getGroup(fam, s.labels).sum = true
			}
		}
	}
	for fam, byLabels := range groups {
		if len(byLabels) == 0 {
			t.Errorf("histogram family %s declared but has no series", fam)
		}
		for key, g := range byLabels {
			if len(g.les) == 0 {
				t.Errorf("histogram %s{%s}: no buckets", fam, key)
				continue
			}
			sort.Float64s(g.les)
			if !math.IsInf(g.les[len(g.les)-1], 1) {
				t.Errorf("histogram %s{%s}: buckets do not end in +Inf", fam, key)
			}
			prev := math.Inf(-1)
			last := 0.0
			for _, le := range g.les {
				if le == prev {
					t.Errorf("histogram %s{%s}: duplicate bucket le=%g", fam, key, le)
				}
				if g.counts[le] < last {
					t.Errorf("histogram %s{%s}: bucket le=%g count %g < previous %g", fam, key, le, g.counts[le], last)
				}
				last = g.counts[le]
				prev = le
			}
			if g.count == nil {
				t.Errorf("histogram %s{%s}: missing _count", fam, key)
			} else if *g.count != last {
				t.Errorf("histogram %s{%s}: _count %g != +Inf bucket %g", fam, key, *g.count, last)
			}
			if !g.sum {
				t.Errorf("histogram %s{%s}: missing _sum", fam, key)
			}
		}
	}
}
