package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/store"
)

// newResilienceServer is newTestServer with a caller-chosen Config: the
// same 400-point diagonal table and one 20-point sample, so every heavy
// route works.
func newResilienceServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	st := store.New()
	base, err := st.CreateTable("base", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, 400)
	ys := make([]float64, 400)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i)
	}
	if err := base.BulkLoad(xs, ys); err != nil {
		t.Fatal(err)
	}
	pts := make([]geom.Point, 20)
	for i := range pts {
		pts[i] = geom.Pt(float64(i*20), float64(i*20))
	}
	if err := query.LoadSample(st, "base_vas_20", store.SampleMeta{
		Source: "base", Method: "vas", XCol: "x", YCol: "y",
	}, pts, nil); err != nil {
		t.Fatal(err)
	}
	return New(st, query.NewPlanner(st, fixedModel{}), cfg)
}

// postAppend fires one append request and reports its recorder.
func postAppend(s *Server) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/append/base", strings.NewReader(`{"points":[[1,2]]}`))
	req.Header.Set("Content-Type", "application/json")
	s.ServeHTTP(rec, req)
	return rec
}

// TestAdmissionShedCapacity pins the overflow half of admission
// control: with one in-flight slot and no queue, a second concurrent
// request on the same route is shed immediately with 503 + Retry-After
// and counted in vasserve_requests_shed_total — while exempt routes
// (healthz, metrics) keep answering.
func TestAdmissionShedCapacity(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	s := newResilienceServer(t, Config{
		MaxInFlight: 1,
		AppendHook: func(table string, cols [][]float64) (int, error) {
			close(entered)
			<-release
			return len(cols[0]), nil
		},
	})
	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { firstDone <- postAppend(s) }()
	<-entered

	// The slot is held: the next append on the route is shed, not queued.
	rec := postAppend(s)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated append = %d, want 503; body %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if !strings.Contains(rec.Body.String(), shedReasonCapacity) {
		t.Fatalf("shed body lacks the reason: %s", rec.Body)
	}
	// Exempt routes are untouched by a saturated heavy route.
	if rec := get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz under saturation = %d", rec.Code)
	}

	close(release)
	if first := <-firstDone; first.Code != http.StatusOK {
		t.Fatalf("held request = %d, want 200; body %s", first.Code, first.Body)
	}
	// Exactly one rejection on the append route, none elsewhere.
	metrics := get(t, s, "/metrics").Body.String()
	if !strings.Contains(metrics, `vasserve_requests_shed_total{route="append",reason="capacity"} 1`) {
		t.Fatalf("metrics lack the shed counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, `vasserve_requests_shed_total{route="query",reason="capacity"} 0`) {
		t.Fatalf("unsaturated route counted a shed:\n%s", metrics)
	}
}

// TestAdmissionQueueTimeout pins the bounded-wait half: a request that
// fits the queue but never gets a slot within QueueTimeout is shed with
// 429 + Retry-After and its own shed reason.
func TestAdmissionQueueTimeout(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	s := newResilienceServer(t, Config{
		MaxInFlight:  1,
		QueueDepth:   1,
		QueueTimeout: 25 * time.Millisecond,
		AppendHook: func(table string, cols [][]float64) (int, error) {
			close(entered)
			<-release
			return len(cols[0]), nil
		},
	})
	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { firstDone <- postAppend(s) }()
	<-entered
	defer func() {
		close(release)
		<-firstDone
	}()

	rec := postAppend(s)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("queue-timeout append = %d, want 429; body %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("queue-timeout response missing Retry-After")
	}
	if !strings.Contains(rec.Body.String(), shedReasonQueueTimeout) {
		t.Fatalf("shed body lacks the reason: %s", rec.Body)
	}
	metrics := get(t, s, "/metrics").Body.String()
	if !strings.Contains(metrics, `vasserve_requests_shed_total{route="append",reason="queue_timeout"} 1`) {
		t.Fatalf("metrics lack the queue-timeout counter:\n%s", metrics)
	}
}

// TestRequestTimeoutTaxonomy: with RequestTimeout armed, a heavy-route
// request whose deadline expires answers 503 + Retry-After (the
// deadline propagated through the scan kernels, not a hung handler)
// and increments vasserve_request_timeouts_total for the route.
func TestRequestTimeoutTaxonomy(t *testing.T) {
	s := newResilienceServer(t, Config{RequestTimeout: time.Nanosecond})
	rec := get(t, s, "/v1/query?table=base&minx=1&miny=1&maxx=399&maxy=399")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("expired query = %d, want 503; body %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("deadline response missing Retry-After")
	}
	metrics := get(t, s, "/metrics").Body.String()
	if !strings.Contains(metrics, `vasserve_request_timeouts_total{route="query"} 1`) {
		t.Fatalf("metrics lack the timeout counter:\n%s", metrics)
	}
}

// TestHTTPErrorTaxonomy pins the error → status mapping the resilience
// layer depends on: deadline exhaustion is the server's fault (503,
// retryable), client disconnect is nobody's (499, non-standard but
// conventional), degraded-mode writes are 503 with Retry-After.
func TestHTTPErrorTaxonomy(t *testing.T) {
	cases := []struct {
		err        error
		status     int
		retryAfter bool
	}{
		{context.DeadlineExceeded, http.StatusServiceUnavailable, true},
		{fmt.Errorf("scan: %w", context.DeadlineExceeded), http.StatusServiceUnavailable, true},
		{context.Canceled, statusClientClosedRequest, false},
		{fmt.Errorf("append rejected (%w)", ErrDegraded), http.StatusServiceUnavailable, true},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		httpError(rec, tc.err)
		if rec.Code != tc.status {
			t.Fatalf("httpError(%v) = %d, want %d", tc.err, rec.Code, tc.status)
		}
		if got := rec.Header().Get("Retry-After") != ""; got != tc.retryAfter {
			t.Fatalf("httpError(%v) Retry-After present = %t, want %t", tc.err, got, tc.retryAfter)
		}
	}
}
