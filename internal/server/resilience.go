package server

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// ErrDegraded marks a mutation rejected because the serving process is
// in read-only degraded mode: snapshot persistence is failing and the
// operator chose (vas.Catalog.SetReadOnlyOnDegrade / vasserve
// -read-only-on-degrade) to refuse writes it cannot make durable rather
// than accept them into memory only. The HTTP layer maps it to 503 with
// a Retry-After hint; clients should back off and retry — the mode
// clears itself the moment a background re-save succeeds.
//
// The sentinel lives here, not in the root vas package, because the
// catalog layer imports this package (never the reverse) and both sides
// need to agree on the error identity.
var ErrDegraded = errors.New("server: read-only (snapshot persistence degraded)")

// statusClientClosedRequest is the de-facto standard status (nginx's
// 499) for requests abandoned by the client before the response was
// written. The client never sees it; it exists so metrics and logs can
// tell "we were too slow" (503 deadline) from "they hung up".
const statusClientClosedRequest = 499

// Shed reasons, the reason label values of
// vasserve_requests_shed_total.
const (
	shedReasonCapacity     = "capacity"      // in-flight cap reached and wait queue full
	shedReasonQueueTimeout = "queue_timeout" // queued, but no slot freed within QueueTimeout
)

// heavyRoutes are the routes admission control and the per-request
// deadline apply to: the ones that touch table data and can be slow or
// pile up. Probes (healthz), scrapes (metrics), and diagnostics stay
// exempt — shedding a liveness check under load turns an overload into
// a restart loop.
var heavyRoutes = map[string]bool{
	"query":   true,
	"nearest": true,
	"tile":    true,
	"append":  true,
	"delete":  true,
	"tables":  true,
}

// limiter is one route's admission gate: a fixed pool of in-flight
// tokens plus a bounded wait queue. Requests beyond the cap wait up to
// a deadline for a token; requests beyond cap+queue are shed
// immediately. All methods are safe for concurrent use.
type limiter struct {
	tokens  chan struct{}
	queued  atomic.Int64
	depth   int64
	timeout time.Duration
}

func newLimiter(inflight, depth int, timeout time.Duration) *limiter {
	if inflight <= 0 {
		return nil
	}
	if depth < 0 {
		depth = 0
	}
	return &limiter{
		tokens:  make(chan struct{}, inflight),
		depth:   int64(depth),
		timeout: timeout,
	}
}

// acquire admits the request (returning "") or sheds it (returning the
// reason). Admitted requests must release(). A context already canceled
// while queued sheds as a queue timeout — the slot it freed goes to a
// client still listening.
func (l *limiter) acquire(ctx context.Context) string {
	select {
	case l.tokens <- struct{}{}:
		return ""
	default:
	}
	// The pool is full. Join the bounded queue or shed on the spot.
	if l.queued.Add(1) > l.depth {
		l.queued.Add(-1)
		return shedReasonCapacity
	}
	defer l.queued.Add(-1)
	timer := time.NewTimer(l.timeout)
	defer timer.Stop()
	select {
	case l.tokens <- struct{}{}:
		return ""
	case <-timer.C:
		return shedReasonQueueTimeout
	case <-ctx.Done():
		return shedReasonQueueTimeout
	}
}

func (l *limiter) release() { <-l.tokens }

// retryAfterSeconds is the Retry-After hint sent with every shed or
// degraded response: long enough for a load spike to drain, short
// enough that clients re-probe a recovered server quickly.
func (s *Server) retryAfterSeconds() int {
	secs := int((s.cfg.QueueTimeout + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// shed writes the rejection response for an admission-control shed:
// 503 for a full queue (the server is saturated — try another replica),
// 429 for a queue-wait timeout (it is merely busy — retry here after
// backing off). Both carry Retry-After.
func (s *Server) shed(w http.ResponseWriter, route, reason string) {
	s.metrics.recordShed(route, reason)
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	status := http.StatusServiceUnavailable
	if reason == shedReasonQueueTimeout {
		status = http.StatusTooManyRequests
	}
	writeJSON(w, status, map[string]string{
		"error":  "overloaded: request shed (" + reason + ")",
		"reason": reason,
	})
}
