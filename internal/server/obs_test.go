package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// scanHeaders are the per-request scan-statistics headers /v1/tile
// mirrors from the /v1/query JSON scan fields.
var scanHeaders = []string{
	"X-Vas-Scan-Index-Probe",
	"X-Vas-Scan-Cells-Touched",
	"X-Vas-Scan-Cells-Pruned",
	"X-Vas-Scan-Cells-Bulk",
	"X-Vas-Scan-Rows-Examined",
	"X-Vas-Scan-Delta-Rows",
	"X-Vas-Scan-Zones-Skipped",
	"X-Vas-Served-Rows",
}

func TestTileScanHeaders(t *testing.T) {
	s := newTestServer(t)
	const url = "/v1/tile/base/0/0/0.png?budget=150us&size=64&filter=x:100:199"
	miss := get(t, s, url)
	if miss.Code != http.StatusOK {
		t.Fatalf("tile miss = %d: %s", miss.Code, miss.Body.String())
	}
	if got := miss.Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("first fetch X-Cache = %q, want MISS", got)
	}
	for _, h := range scanHeaders {
		if miss.Header().Get(h) == "" {
			t.Errorf("tile miss lacks %s header", h)
		}
	}
	if got := miss.Header().Get("X-Vas-Scan-Index-Probe"); got != "true" {
		t.Errorf("X-Vas-Scan-Index-Probe = %q, want true (samples are indexed)", got)
	}
	// A cache hit replays the sidecar of the render that produced the
	// pixels: identical stats, no re-scan.
	hit := get(t, s, url)
	if got := hit.Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("second fetch X-Cache = %q, want HIT", got)
	}
	for _, h := range scanHeaders {
		if m, g := miss.Header().Get(h), hit.Header().Get(h); g != m {
			t.Errorf("%s: hit %q != miss %q", h, g, m)
		}
	}
}

// TestUnknownPathCountedAsOther pins the catch-all route: a request
// for a path nobody registered still flows through the middleware and
// lands under route="other" — the mux's default NotFound never answers
// uncounted.
func TestUnknownPathCountedAsOther(t *testing.T) {
	s := newTestServer(t)
	rec := get(t, s, "/definitely/not/registered")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", rec.Code)
	}
	metrics := get(t, s, "/metrics").Body.String()
	for _, want := range []string{
		`vasserve_requests_total{route="other"} 1`,
		`vasserve_request_latency_seconds_count{route="other"} 1`,
		`vasserve_request_errors_total 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestQueryScanFieldsMatchTileHeaders(t *testing.T) {
	s := newTestServer(t)
	rec := get(t, s, "/v1/query?table=base&budget=150us&filter=x:100:199&minx=0&miny=0&maxx=399&maxy=399")
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d", rec.Code)
	}
	var out QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !out.Scan.IndexProbe {
		t.Error("filtered query did not report an index probe")
	}
	if out.Scan.RowsExamined == 0 {
		t.Error("filtered query reported zero rows examined")
	}
}

func TestSlowLogEndpoint(t *testing.T) {
	s := newTestServerWithConfig(t, Config{SlowThreshold: -1}) // keep every trace
	get(t, s, "/v1/query?table=base&budget=150us&filter=x:100:199&minx=0&miny=0&maxx=399&maxy=399")
	get(t, s, "/v1/tile/base/0/0/0.png?budget=150us&size=64")
	rec := get(t, s, "/debug/slow")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/slow = %d", rec.Code)
	}
	var report obs.SlowReport
	if err := json.Unmarshal(rec.Body.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Traces) < 2 {
		t.Fatalf("slow log kept %d traces, want >= 2", len(report.Traces))
	}
	var query, tile *obs.TraceReport
	for i := range report.Traces {
		switch report.Traces[i].Route {
		case "query":
			query = &report.Traces[i]
		case "tile":
			tile = &report.Traces[i]
		}
	}
	if query == nil || tile == nil {
		t.Fatalf("missing query or tile trace in %+v", report.Traces)
	}
	for _, tr := range []*obs.TraceReport{query, tile} {
		if tr.Table != "base" {
			t.Errorf("%s trace table = %q, want base", tr.Route, tr.Table)
		}
		if tr.Scan == nil {
			t.Errorf("%s trace has no scan stats", tr.Route)
		}
		if len(tr.Stages) == 0 {
			t.Errorf("%s trace has no stage timings", tr.Route)
		}
		if tr.StagesMillis <= 0 || tr.StagesMillis > tr.TotalMillis {
			t.Errorf("%s trace stage sum %.3fms outside (0, total=%.3fms]",
				tr.Route, tr.StagesMillis, tr.TotalMillis)
		}
	}
	// The tile render recorded its cache interaction as its own stage.
	found := false
	for _, st := range tile.Stages {
		if st.Stage == "cache" {
			found = true
		}
	}
	if !found {
		t.Errorf("tile trace lacks a cache stage: %+v", tile.Stages)
	}
	if len(report.Tables) == 0 || report.Tables[0].Table != "base" {
		t.Errorf("per-table summary missing: %+v", report.Tables)
	}
}

// newTestServerWithConfig is newTestServer with a caller-chosen Config.
func newTestServerWithConfig(t *testing.T, cfg Config) *Server {
	t.Helper()
	base := newTestServer(t)
	return New(base.st, base.planner, cfg)
}

// TestMetricsStrictUnderConcurrentTraffic scrapes /metrics while query,
// tile, and append traffic is in flight and runs every scrape through
// the strict exposition checker: unique series, valid label quoting,
// monotone cumulative buckets ending in +Inf, and _count agreeing with
// the +Inf bucket. Run with -race this also exercises the
// snapshot-once histogram read path against concurrent observations.
func TestMetricsStrictUnderConcurrentTraffic(t *testing.T) {
	s := newTestServerWithConfig(t, Config{SlowThreshold: -1})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					get(t, s, "/v1/query?table=base&budget=150us")
				case 1:
					get(t, s, fmt.Sprintf("/v1/tile/base/0/0/0.png?budget=150us&size=64&filter=x:%d:399", i%200))
				case 2:
					postJSON(t, s, "/v1/append/base", fmt.Sprintf(`{"points": [[%d, %d]]}`, i, g))
				}
			}
		}(g)
	}
	for i := 0; i < 5; i++ {
		rec := get(t, s, "/metrics")
		if rec.Code != http.StatusOK {
			t.Fatalf("metrics = %d", rec.Code)
		}
		checkExposition(t, rec.Body.String())
	}
	close(stop)
	wg.Wait()
	// A final quiescent scrape must expose the full per-route histogram
	// surface.
	body := get(t, s, "/metrics").Body.String()
	for _, route := range []string{"query", "tile", "append"} {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			want := fmt.Sprintf("vasserve_request_latency_seconds%s{route=%q", suffix, route)
			if !strings.Contains(body, want) {
				t.Errorf("metrics missing %s series for route %s", suffix, route)
			}
		}
	}
	if !strings.Contains(body, `vasserve_stage_duration_seconds_count{stage="probe"}`) {
		t.Error("metrics missing per-stage duration histogram")
	}
	checkExposition(t, body)
}
