package server

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// routeOther is the catch-all label for requests on routes that were
// not pre-registered: they get a real counter and histogram of their
// own instead of being silently folded into nothing, so per-route
// counts and latency observations always reconcile.
const routeOther = "other"

// routeMetrics is one route's request counter and latency histogram,
// plus its resilience counters: requests shed by admission control
// (split by reason) and requests that failed at the per-request
// deadline.
type routeMetrics struct {
	count   atomic.Int64
	latency *obs.Histogram

	shedCapacity     atomic.Int64
	shedQueueTimeout atomic.Int64
	timeouts         atomic.Int64
}

// TailStatus is one base table's snapshot-tail durability state, fed by
// the catalog layer for the vasserve_tail_log_degraded gauge.
type TailStatus struct {
	Table    string
	Degraded bool
}

// metrics aggregates per-route request counters and latency histograms,
// per-stage duration histograms, and ingest counters for /metrics.
type metrics struct {
	routes   []string // sorted; includes routeOther
	requests map[string]*routeMetrics
	errors   atomic.Int64 // responses with status >= 400
	stages   [obs.NumStages]*obs.Histogram

	// Ingest counters for the /v1/append endpoint.
	ingestBatches atomic.Int64
	ingestRows    atomic.Int64

	// Retention counters for the /v1/delete endpoint.
	deleteRequests atomic.Int64
	deleteRows     atomic.Int64
}

func newMetrics(routes ...string) *metrics {
	m := &metrics{requests: make(map[string]*routeMetrics, len(routes)+1)}
	for _, r := range append(routes, routeOther) {
		if _, ok := m.requests[r]; ok {
			continue
		}
		m.requests[r] = &routeMetrics{latency: obs.NewHistogram(obs.DefaultLatencyBuckets)}
		m.routes = append(m.routes, r)
	}
	sort.Strings(m.routes)
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		m.stages[s] = obs.NewHistogram(obs.DefaultStageBuckets)
	}
	return m
}

func (m *metrics) record(route string, status int, d time.Duration) {
	rm, ok := m.requests[route]
	if !ok {
		rm = m.requests[routeOther]
	}
	rm.count.Add(1)
	rm.latency.ObserveDuration(d)
	if status >= 400 {
		m.errors.Add(1)
	}
}

// recordShed counts one request rejected by admission control.
func (m *metrics) recordShed(route, reason string) {
	rm, ok := m.requests[route]
	if !ok {
		rm = m.requests[routeOther]
	}
	switch reason {
	case shedReasonQueueTimeout:
		rm.shedQueueTimeout.Add(1)
	default:
		rm.shedCapacity.Add(1)
	}
}

// recordTimeout counts one request that failed at the per-request
// deadline.
func (m *metrics) recordTimeout(route string) {
	rm, ok := m.requests[route]
	if !ok {
		rm = m.requests[routeOther]
	}
	rm.timeouts.Add(1)
}

// recordStages folds a finished trace into the per-stage histograms:
// one observation per stage the request actually touched, of that
// stage's accumulated duration within the request.
func (m *metrics) recordStages(tr *obs.Trace) {
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		if tr.StageCount(s) > 0 {
			m.stages[s].ObserveDuration(tr.StageDuration(s))
		}
	}
}

// write emits the metrics in Prometheus text exposition format.
// coldSource/coldSeconds describe how the catalog was populated at
// startup (snapshot load vs full rebuild); empty means not recorded.
// tails carries per-table snapshot-tail durability, jobs the
// background-job stats (both may be nil).
func (m *metrics) write(w io.Writer, cache cacheStats, idx store.IndexStats, coldSource string, coldSeconds float64, tails []TailStatus, jobs []obs.JobStats) {
	ew := obs.NewExpoWriter(w)

	ew.Head("vasserve_requests_total", "counter", "Requests served, by route.")
	for _, r := range m.routes {
		fmt.Fprintf(w, "vasserve_requests_total{route=%q} %d\n", r, m.requests[r].count.Load())
	}
	ew.Head("vasserve_request_errors_total", "counter", "Responses with status >= 400.")
	fmt.Fprintf(w, "vasserve_request_errors_total %d\n", m.errors.Load())

	ew.Head("vasserve_requests_shed_total", "counter", "Requests rejected by admission control before reaching a handler, by route and reason (capacity = in-flight cap and wait queue both full; queue_timeout = queued but no slot freed in time).")
	for _, r := range m.routes {
		rm := m.requests[r]
		fmt.Fprintf(w, "vasserve_requests_shed_total{route=%q,reason=%q} %d\n", r, shedReasonCapacity, rm.shedCapacity.Load())
		fmt.Fprintf(w, "vasserve_requests_shed_total{route=%q,reason=%q} %d\n", r, shedReasonQueueTimeout, rm.shedQueueTimeout.Load())
	}
	ew.Head("vasserve_request_timeouts_total", "counter", "Requests that failed at the per-request deadline (503 to the client), by route.")
	for _, r := range m.routes {
		fmt.Fprintf(w, "vasserve_request_timeouts_total{route=%q} %d\n", r, m.requests[r].timeouts.Load())
	}

	// Per-route latency histograms, plus process-wide p50/p99 derived
	// from their merged buckets (kept for dashboards that predate the
	// histograms; an overflow-bucket quantile reports +Inf).
	var merged obs.HistSnapshot
	for _, r := range m.routes {
		snap := m.requests[r].latency.Snapshot()
		merged.Merge(snap)
		ew.Histogram("vasserve_request_latency_seconds", "Request latency by route.", "route="+obs.QuoteLabel(r), snap)
	}
	ew.Head("vasserve_request_latency_p50_seconds", "gauge", "Upper bound of the median request latency across all routes.")
	fmt.Fprintf(w, "vasserve_request_latency_p50_seconds %g\n", merged.Quantile(0.50))
	ew.Head("vasserve_request_latency_p99_seconds", "gauge", "Upper bound of the 99th-percentile request latency across all routes.")
	fmt.Fprintf(w, "vasserve_request_latency_p99_seconds %g\n", merged.Quantile(0.99))

	for s := obs.Stage(0); s < obs.NumStages; s++ {
		ew.Histogram("vasserve_stage_duration_seconds", "Per-request accumulated stage duration, by stage.", "stage="+obs.QuoteLabel(s.String()), m.stages[s].Snapshot())
	}

	for _, j := range jobs {
		ew.Histogram("vasserve_job_duration_seconds", "Background job duration, by job.", "job="+obs.QuoteLabel(j.Name), j.Hist)
	}
	if len(jobs) > 0 {
		ew.Head("vasserve_job_inflight", "gauge", "Background job executions currently running, by job.")
		for _, j := range jobs {
			fmt.Fprintf(w, "vasserve_job_inflight{job=%q} %d\n", j.Name, j.Inflight)
		}
	}

	if len(tails) > 0 {
		ew.Head("vasserve_tail_log_degraded", "gauge", "1 when the table's snapshot tail log is failing writes: appends keep serving but are not durable until the next snapshot save.")
		for _, ts := range tails {
			v := 0
			if ts.Degraded {
				v = 1
			}
			fmt.Fprintf(w, "vasserve_tail_log_degraded{table=%q} %d\n", ts.Table, v)
		}
	}

	ew.Head("vasserve_tile_cache_hits_total", "counter", "Tile cache hits.")
	fmt.Fprintf(w, "vasserve_tile_cache_hits_total %d\n", cache.Hits)
	ew.Head("vasserve_tile_cache_misses_total", "counter", "Tile cache misses (renders).")
	fmt.Fprintf(w, "vasserve_tile_cache_misses_total %d\n", cache.Misses)
	ew.Head("vasserve_tile_cache_waits_total", "counter", "Tile lookups that piggybacked on an in-flight render.")
	fmt.Fprintf(w, "vasserve_tile_cache_waits_total %d\n", cache.Waits)
	ew.Head("vasserve_tile_cache_evictions_total", "counter", "Tiles evicted to stay within the byte budget.")
	fmt.Fprintf(w, "vasserve_tile_cache_evictions_total %d\n", cache.Evictions)
	ew.Head("vasserve_tile_cache_bytes", "gauge", "Encoded tile bytes currently cached.")
	fmt.Fprintf(w, "vasserve_tile_cache_bytes %d\n", cache.Bytes)
	ew.Head("vasserve_tile_cache_entries", "gauge", "Tiles currently cached.")
	fmt.Fprintf(w, "vasserve_tile_cache_entries %d\n", cache.Entries)
	ew.Head("vasserve_tile_cache_hit_ratio", "gauge", "Hits / (hits + misses).")
	fmt.Fprintf(w, "vasserve_tile_cache_hit_ratio %g\n", cache.HitRatio())

	ew.Head("vasserve_store_indexed_tables", "gauge", "Tables carrying at least one spatial index.")
	fmt.Fprintf(w, "vasserve_store_indexed_tables %d\n", idx.IndexedTables)
	ew.Head("vasserve_store_spatial_indexes", "gauge", "Spatial indexes across all tables.")
	fmt.Fprintf(w, "vasserve_store_spatial_indexes %d\n", idx.Indexes)
	ew.Head("vasserve_store_indexed_rows", "gauge", "Rows covered by spatial indexes.")
	fmt.Fprintf(w, "vasserve_store_indexed_rows %d\n", idx.IndexedRows)
	ew.Head("vasserve_store_index_cells", "gauge", "Grid cells across all spatial indexes.")
	fmt.Fprintf(w, "vasserve_store_index_cells %d\n", idx.Cells)
	ew.Head("vasserve_store_index_probes_total", "counter", "Viewport scans answered by an index probe.")
	fmt.Fprintf(w, "vasserve_store_index_probes_total %d\n", idx.Probes)
	ew.Head("vasserve_nearest_requests_total", "counter", "k-nearest-neighbour queries answered.")
	fmt.Fprintf(w, "vasserve_nearest_requests_total %d\n", idx.NearestQueries)
	ew.Head("vasserve_store_scan_fallbacks_total", "counter", "Viewport scans answered by the linear fallback.")
	fmt.Fprintf(w, "vasserve_store_scan_fallbacks_total %d\n", idx.Fallbacks)
	ew.Head("vasserve_store_filtered_probes_total", "counter", "Index probes carrying residual predicates.")
	fmt.Fprintf(w, "vasserve_store_filtered_probes_total %d\n", idx.FilteredProbes)
	ew.Head("vasserve_store_zone_cells_touched_total", "counter", "Cells consulted by zone maps during filtered probes.")
	fmt.Fprintf(w, "vasserve_store_zone_cells_touched_total %d\n", idx.ZoneCellsTouched)
	ew.Head("vasserve_store_zone_cells_pruned_total", "counter", "Cells discarded wholesale by zone maps.")
	fmt.Fprintf(w, "vasserve_store_zone_cells_pruned_total %d\n", idx.ZoneCellsPruned)
	ew.Head("vasserve_store_zone_skips_total", "counter", "Zone checks skipped by the adaptive planner.")
	fmt.Fprintf(w, "vasserve_store_zone_skips_total %d\n", idx.ZoneSkips)
	ew.Head("vasserve_store_batched_rows_total", "counter", "Rows evaluated by the selection-vector batch kernels.")
	fmt.Fprintf(w, "vasserve_store_batched_rows_total %d\n", idx.BatchedRows)
	ew.Head("vasserve_store_probe_shards_total", "counter", "Index-probe shards executed (one per serial probe, more when sharded across CPUs).")
	fmt.Fprintf(w, "vasserve_store_probe_shards_total %d\n", idx.ProbeShards)
	ew.Head("vasserve_store_delta_rows", "gauge", "Appended rows absorbed into delta indexes.")
	fmt.Fprintf(w, "vasserve_store_delta_rows %d\n", idx.DeltaRows)
	ew.Head("vasserve_store_tail_rows", "gauge", "Appended rows outside the base indexes.")
	fmt.Fprintf(w, "vasserve_store_tail_rows %d\n", idx.TailRows)
	ew.Head("vasserve_store_compactions_total", "counter", "Background index compactions completed.")
	fmt.Fprintf(w, "vasserve_store_compactions_total %d\n", idx.Compactions)
	ew.Head("vasserve_store_compaction_seconds_total", "counter", "Total time spent compacting indexes.")
	fmt.Fprintf(w, "vasserve_store_compaction_seconds_total %g\n", idx.CompactionSeconds)
	// Retention pressure: rows tombstoned but not yet physically
	// reclaimed (gauge — drops to zero after a reclaiming compaction),
	// plus the lifetime delete and reclaim totals.
	ew.Head("vasserve_store_tombstoned_rows", "gauge", "Rows tombstoned by deletes or TTL but not yet reclaimed by compaction.")
	fmt.Fprintf(w, "vasserve_store_tombstoned_rows %d\n", idx.TombstonedRows)
	ew.Head("vasserve_store_deleted_rows_total", "counter", "Rows tombstoned by deletes and TTL sweeps.")
	fmt.Fprintf(w, "vasserve_store_deleted_rows_total %d\n", idx.DeletedRows)
	ew.Head("vasserve_store_reclaimed_rows_total", "counter", "Tombstoned rows physically dropped by compactions.")
	fmt.Fprintf(w, "vasserve_store_reclaimed_rows_total %d\n", idx.ReclaimedRows)
	// Per-table ingest pressure: how many appended rows sit outside the
	// base index (tail) and how many of those the delta has absorbed —
	// visible before it ever shows up as latency. Live vs dead splits
	// the physical rows by tombstone state.
	ew.Head("vasserve_store_table_rows", "gauge", "Physical rows per table (tombstoned included).")
	ew.Head("vasserve_store_table_live_rows", "gauge", "Live (non-tombstoned) rows per table.")
	ew.Head("vasserve_store_table_dead_rows", "gauge", "Tombstoned rows awaiting reclaim, per table.")
	ew.Head("vasserve_store_table_tail_rows", "gauge", "Appended rows outside the base index, per table.")
	ew.Head("vasserve_store_table_delta_rows", "gauge", "Appended rows absorbed into delta indexes, per table.")
	for _, ti := range idx.PerTable {
		fmt.Fprintf(w, "vasserve_store_table_rows{table=%q} %d\n", ti.Table, ti.Rows)
		fmt.Fprintf(w, "vasserve_store_table_live_rows{table=%q} %d\n", ti.Table, ti.LiveRows)
		fmt.Fprintf(w, "vasserve_store_table_dead_rows{table=%q} %d\n", ti.Table, ti.DeadRows)
		fmt.Fprintf(w, "vasserve_store_table_tail_rows{table=%q} %d\n", ti.Table, ti.TailRows)
		fmt.Fprintf(w, "vasserve_store_table_delta_rows{table=%q} %d\n", ti.Table, ti.DeltaRows)
	}
	// Index-backend identity and the grid-occupancy evidence behind it:
	// the backend gauge is 1 for the backend the table's primary index
	// actually uses (grid or rtree), the occupancy pair is what auto mode
	// decided from (row-weighted p99 cell population and its ratio to the
	// mean; skew >= 8 flips a build to the R-tree).
	if len(idx.PerTable) > 0 {
		ew.Head("vasserve_store_index_backend", "gauge", "1 for the spatial-index backend serving the table (grid or rtree).")
		for _, ti := range idx.PerTable {
			if ti.Backend != "" {
				fmt.Fprintf(w, "vasserve_store_index_backend{table=%q,backend=%q} 1\n", ti.Table, ti.Backend)
			}
		}
		ew.Head("vasserve_store_index_occupancy_p99", "gauge", "Row-weighted 99th-percentile grid-cell population, per table.")
		for _, ti := range idx.PerTable {
			if ti.Backend != "" {
				fmt.Fprintf(w, "vasserve_store_index_occupancy_p99{table=%q} %g\n", ti.Table, ti.CellOccupancyP99)
			}
		}
		ew.Head("vasserve_store_index_skew_ratio", "gauge", "Occupancy p99 over mean cell population, per table (>=8 selects the R-tree in auto mode).")
		for _, ti := range idx.PerTable {
			if ti.Backend != "" {
				fmt.Fprintf(w, "vasserve_store_index_skew_ratio{table=%q} %g\n", ti.Table, ti.SkewRatio)
			}
		}
	}
	ew.Head("vasserve_ingest_batches_total", "counter", "Append batches accepted.")
	fmt.Fprintf(w, "vasserve_ingest_batches_total %d\n", m.ingestBatches.Load())
	ew.Head("vasserve_ingest_rows_total", "counter", "Rows appended.")
	fmt.Fprintf(w, "vasserve_ingest_rows_total %d\n", m.ingestRows.Load())
	ew.Head("vasserve_delete_requests_total", "counter", "Delete requests that tombstoned at least one row.")
	fmt.Fprintf(w, "vasserve_delete_requests_total %d\n", m.deleteRequests.Load())
	ew.Head("vasserve_delete_rows_total", "counter", "Rows tombstoned via /v1/delete.")
	fmt.Fprintf(w, "vasserve_delete_rows_total %d\n", m.deleteRows.Load())
	if coldSource != "" {
		ew.Head("vasserve_coldstart_seconds", "gauge", "Catalog population time at startup, by source (snapshot or rebuild).")
		fmt.Fprintf(w, "vasserve_coldstart_seconds{source=%q} %g\n", coldSource, coldSeconds)
	}

	writeRuntimeMetrics(ew, w)
}

// writeRuntimeMetrics emits Go runtime health: goroutines, heap, and
// GC pressure, under the conventional go_* names.
func writeRuntimeMetrics(ew *obs.ExpoWriter, w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	ew.Head("go_goroutines", "gauge", "Number of goroutines.")
	fmt.Fprintf(w, "go_goroutines %d\n", runtime.NumGoroutine())
	ew.Head("go_memstats_heap_alloc_bytes", "gauge", "Heap bytes allocated and in use.")
	fmt.Fprintf(w, "go_memstats_heap_alloc_bytes %d\n", ms.HeapAlloc)
	ew.Head("go_memstats_heap_sys_bytes", "gauge", "Heap bytes obtained from the OS.")
	fmt.Fprintf(w, "go_memstats_heap_sys_bytes %d\n", ms.HeapSys)
	ew.Head("go_memstats_heap_objects", "gauge", "Allocated heap objects.")
	fmt.Fprintf(w, "go_memstats_heap_objects %d\n", ms.HeapObjects)
	ew.Head("go_memstats_sys_bytes", "gauge", "Total bytes obtained from the OS.")
	fmt.Fprintf(w, "go_memstats_sys_bytes %d\n", ms.Sys)
	ew.Head("go_gc_cycles_total", "counter", "Completed GC cycles.")
	fmt.Fprintf(w, "go_gc_cycles_total %d\n", ms.NumGC)
	ew.Head("go_gc_pause_seconds_total", "counter", "Cumulative GC stop-the-world pause time.")
	fmt.Fprintf(w, "go_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/1e9)
}
