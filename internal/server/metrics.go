package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// latencyBuckets are the upper bounds of the request-latency histogram.
// They span 50µs–2.5s in roughly 1-2.5-5 steps: the left end resolves
// cache-hit tile serves, the right end resolves budget-bound renders.
var latencyBuckets = []time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
}

// histogram is a fixed-bucket latency histogram with lock-free recording.
// The final counter holds observations above the last bucket bound.
type histogram struct {
	counts []atomic.Int64 // len(latencyBuckets)+1
}

func (h *histogram) observe(d time.Duration) {
	i := sort.Search(len(latencyBuckets), func(i int) bool { return d <= latencyBuckets[i] })
	h.counts[i].Add(1)
}

// quantileSeconds returns an upper-bound estimate of the p-quantile (p
// in [0,1]) in seconds: the bound of the bucket where the cumulative
// count crosses p·total. A quantile landing in the overflow bucket has
// no upper bound and reports +Inf (the Prometheus convention), so tail
// saturation is visible instead of silently capped at the largest
// tracked bound. With no observations it returns 0.
func (h *histogram) quantileSeconds(p float64) float64 {
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	if total == 0 {
		return 0
	}
	rank := int64(p * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range latencyBuckets {
		cum += h.counts[i].Load()
		if cum >= rank {
			return latencyBuckets[i].Seconds()
		}
	}
	return math.Inf(1)
}

// metrics aggregates per-route request counters and a shared latency
// histogram for the /metrics endpoint.
type metrics struct {
	requests map[string]*atomic.Int64 // route -> count; fixed at construction
	errors   atomic.Int64             // responses with status >= 400
	latency  histogram

	// Ingest counters for the /v1/append endpoint.
	ingestBatches atomic.Int64
	ingestRows    atomic.Int64
}

func newMetrics(routes ...string) *metrics {
	m := &metrics{
		requests: make(map[string]*atomic.Int64, len(routes)),
		latency:  histogram{counts: make([]atomic.Int64, len(latencyBuckets)+1)},
	}
	for _, r := range routes {
		m.requests[r] = &atomic.Int64{}
	}
	return m
}

func (m *metrics) record(route string, status int, d time.Duration) {
	if c, ok := m.requests[route]; ok {
		c.Add(1)
	}
	if status >= 400 {
		m.errors.Add(1)
	}
	m.latency.observe(d)
}

// write emits the metrics in Prometheus text exposition format.
// coldSource/coldSeconds describe how the catalog was populated at
// startup (snapshot load vs full rebuild); empty means not recorded.
func (m *metrics) write(w io.Writer, cache cacheStats, idx store.IndexStats, coldSource string, coldSeconds float64) {
	routes := make([]string, 0, len(m.requests))
	for r := range m.requests {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		fmt.Fprintf(w, "vasserve_requests_total{route=%q} %d\n", r, m.requests[r].Load())
	}
	fmt.Fprintf(w, "vasserve_request_errors_total %d\n", m.errors.Load())
	fmt.Fprintf(w, "vasserve_request_latency_p50_seconds %g\n", m.latency.quantileSeconds(0.50))
	fmt.Fprintf(w, "vasserve_request_latency_p99_seconds %g\n", m.latency.quantileSeconds(0.99))
	fmt.Fprintf(w, "vasserve_tile_cache_hits_total %d\n", cache.Hits)
	fmt.Fprintf(w, "vasserve_tile_cache_misses_total %d\n", cache.Misses)
	fmt.Fprintf(w, "vasserve_tile_cache_waits_total %d\n", cache.Waits)
	fmt.Fprintf(w, "vasserve_tile_cache_evictions_total %d\n", cache.Evictions)
	fmt.Fprintf(w, "vasserve_tile_cache_bytes %d\n", cache.Bytes)
	fmt.Fprintf(w, "vasserve_tile_cache_entries %d\n", cache.Entries)
	fmt.Fprintf(w, "vasserve_tile_cache_hit_ratio %g\n", cache.HitRatio())
	fmt.Fprintf(w, "vasserve_store_indexed_tables %d\n", idx.IndexedTables)
	fmt.Fprintf(w, "vasserve_store_spatial_indexes %d\n", idx.Indexes)
	fmt.Fprintf(w, "vasserve_store_indexed_rows %d\n", idx.IndexedRows)
	fmt.Fprintf(w, "vasserve_store_index_cells %d\n", idx.Cells)
	fmt.Fprintf(w, "vasserve_store_index_probes_total %d\n", idx.Probes)
	fmt.Fprintf(w, "vasserve_store_scan_fallbacks_total %d\n", idx.Fallbacks)
	fmt.Fprintf(w, "vasserve_store_filtered_probes_total %d\n", idx.FilteredProbes)
	fmt.Fprintf(w, "vasserve_store_zone_cells_touched_total %d\n", idx.ZoneCellsTouched)
	fmt.Fprintf(w, "vasserve_store_zone_cells_pruned_total %d\n", idx.ZoneCellsPruned)
	fmt.Fprintf(w, "vasserve_store_zone_skips_total %d\n", idx.ZoneSkips)
	fmt.Fprintf(w, "vasserve_store_delta_rows %d\n", idx.DeltaRows)
	fmt.Fprintf(w, "vasserve_store_tail_rows %d\n", idx.TailRows)
	fmt.Fprintf(w, "vasserve_store_compactions_total %d\n", idx.Compactions)
	fmt.Fprintf(w, "vasserve_store_compaction_seconds_total %g\n", idx.CompactionSeconds)
	// Per-table ingest pressure: how many appended rows sit outside the
	// base index (tail) and how many of those the delta has absorbed —
	// visible before it ever shows up as latency.
	for _, ti := range idx.PerTable {
		fmt.Fprintf(w, "vasserve_store_table_rows{table=%q} %d\n", ti.Table, ti.Rows)
		fmt.Fprintf(w, "vasserve_store_table_tail_rows{table=%q} %d\n", ti.Table, ti.TailRows)
		fmt.Fprintf(w, "vasserve_store_table_delta_rows{table=%q} %d\n", ti.Table, ti.DeltaRows)
	}
	fmt.Fprintf(w, "vasserve_ingest_batches_total %d\n", m.ingestBatches.Load())
	fmt.Fprintf(w, "vasserve_ingest_rows_total %d\n", m.ingestRows.Load())
	if coldSource != "" {
		fmt.Fprintf(w, "vasserve_coldstart_seconds{source=%q} %g\n", coldSource, coldSeconds)
	}
}
