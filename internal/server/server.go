// Package server is the network-facing layer of the Fig. 3 architecture:
// it exposes the store + planner pair (the middleware role ScalaR plays in
// the paper's related work) over HTTP so visualization clients can ask
// for budget-bound point sets and pre-rendered map tiles.
//
// Routes:
//
//	GET /v1/tables                      catalog listing (tables + samples)
//	GET /v1/query                       budget-bound point query (JSON)
//	GET /v1/nearest                     k-nearest-neighbour query (JSON)
//	GET /v1/tile/{table}/{z}/{x}/{y}.png  rendered PNG tile
//	POST /v1/append/{table}             live row ingest (JSON batch)
//	POST /v1/delete/{table}             tombstone delete (rect and/or predicates)
//	GET /healthz                        liveness probe
//	GET /metrics                        Prometheus-style counters
//
// Tile serving is backed by a sharded LRU cache over encoded PNG bytes
// (internal/tilecache) with single-flight render deduplication; the cache
// key includes the sample table the latency budget resolves to, so the
// same tile address served under different budgets caches independently
// and never mixes samples.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/render"
	"repro/internal/store"
	"repro/internal/tilecache"
)

type cacheStats = tilecache.Stats

// Config tunes a Server. The zero value picks production defaults.
type Config struct {
	// TileCacheBytes bounds the encoded-PNG tile cache; 0 means
	// tilecache.DefaultMaxBytes.
	TileCacheBytes int64
	// DefaultTileSize is the tile edge in pixels when the request does
	// not specify one; 0 means 256.
	DefaultTileSize int
	// MaxTileSize caps the per-request tile edge; 0 means 1024.
	MaxTileSize int
	// XCol, YCol name the plotted column pair; empty means "x", "y" (the
	// pair the vas.Catalog façade loads).
	XCol, YCol string
	// AppendHook, when set, handles POST /v1/append/{table} batches
	// instead of the server appending straight into the store table —
	// the catalog layer uses it to also patch the rows into its
	// snapshot tail log. It receives the batch as parallel column
	// slices in schema order and returns the number of rows appended.
	AppendHook func(table string, cols [][]float64) (int, error)
	// DeleteHook, when set, handles POST /v1/delete/{table} requests
	// instead of the server tombstoning straight in the store table —
	// the catalog layer uses it to also record the delete predicate in
	// its snapshot tail log. It returns the number of rows newly
	// deleted.
	DeleteHook func(table string, preds []store.Pred) (int, error)
	// MaxAppendBytes caps the /v1/append request body; 0 means 64 MiB.
	MaxAppendBytes int64
	// SlowThreshold is the minimum total duration a request trace must
	// reach to enter the slow-query log at /debug/slow; 0 means 250ms,
	// negative means keep every trace.
	SlowThreshold time.Duration
	// SlowLogSize is how many slow traces the log retains; 0 means 64.
	SlowLogSize int
	// TailStatus, when set, reports per-table snapshot-tail durability
	// for the vasserve_tail_log_degraded gauge — the catalog layer wires
	// its sticky SnapshotErr through here.
	TailStatus func() []TailStatus
	// RequestTimeout, when positive, bounds the handling of every
	// data-touching request (query, nearest, tile, append, delete,
	// tables): the request context is canceled at the deadline, the
	// engine's cooperative cancellation checks unwind the scan, and the
	// client gets 503 with Retry-After. Probe routes (healthz, metrics,
	// debug) are exempt. Zero means no deadline.
	RequestTimeout time.Duration
	// MaxInFlight, when positive, caps concurrently executing requests
	// PER data-touching route; excess requests join a bounded wait
	// queue of QueueDepth slots for up to QueueTimeout before being
	// shed (503 reason=capacity when the queue itself is full, 429
	// reason=queue_timeout when no slot freed in time; both carry
	// Retry-After and count in vasserve_requests_shed_total). Zero
	// admits everything.
	MaxInFlight int
	// QueueDepth is the wait-queue length behind MaxInFlight; 0 means
	// no queue (immediate shed once the cap is reached).
	QueueDepth int
	// QueueTimeout is how long a queued request waits for an in-flight
	// slot; 0 means 250ms.
	QueueTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.DefaultTileSize <= 0 {
		c.DefaultTileSize = 256
	}
	if c.MaxTileSize <= 0 {
		c.MaxTileSize = 1024
	}
	if c.XCol == "" {
		c.XCol = "x"
	}
	if c.YCol == "" {
		c.YCol = "y"
	}
	if c.MaxAppendBytes <= 0 {
		c.MaxAppendBytes = 64 << 20
	}
	switch {
	case c.SlowThreshold == 0:
		c.SlowThreshold = 250 * time.Millisecond
	case c.SlowThreshold < 0:
		c.SlowThreshold = 0
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 250 * time.Millisecond
	}
	return c
}

// Server serves visualization queries and tiles over HTTP. Safe for
// concurrent use; create with New.
type Server struct {
	cfg     Config
	st      *store.Store
	planner *query.Planner
	cache   *tilecache.Cache
	mux     *http.ServeMux
	metrics *metrics
	slow    *obs.SlowLog
	// limiters holds the per-route admission gates (nil entries / nil
	// map = unlimited); built once in New from Config.MaxInFlight.
	limiters map[string]*limiter

	// boundsMu guards boundsCache — the lazily computed per-table data
	// extents tile addresses are resolved against — and epochs, the
	// per-table invalidation generation baked into tile cache keys. Both
	// are updated together with the tile cache.
	boundsMu    sync.RWMutex
	boundsCache map[string]geom.Rect
	epochs      map[string]uint64

	// coldMu guards the cold-start record (how the catalog behind this
	// server was populated, and how long it took), set once at startup.
	coldMu      sync.Mutex
	coldSource  string
	coldSeconds float64
}

// SetColdStart records how the serving catalog was populated
// ("snapshot" or "rebuild") and the time it took, for /metrics.
func (s *Server) SetColdStart(source string, d time.Duration) {
	s.coldMu.Lock()
	s.coldSource, s.coldSeconds = source, d.Seconds()
	s.coldMu.Unlock()
}

// coldStart returns the recorded cold-start mode and duration.
func (s *Server) coldStart() (string, float64) {
	s.coldMu.Lock()
	defer s.coldMu.Unlock()
	return s.coldSource, s.coldSeconds
}

// New returns a server over the given store and planner.
func New(st *store.Store, planner *query.Planner, cfg Config) *Server {
	s := &Server{
		cfg:         cfg.withDefaults(),
		st:          st,
		planner:     planner,
		cache:       tilecache.New(cfg.TileCacheBytes),
		metrics:     newMetrics("tables", "query", "nearest", "tile", "append", "delete", "healthz", "metrics", "debug"),
		boundsCache: make(map[string]geom.Rect),
		epochs:      make(map[string]uint64),
	}
	s.slow = obs.NewSlowLog(s.cfg.SlowLogSize, s.cfg.SlowThreshold)
	if s.cfg.MaxInFlight > 0 {
		s.limiters = make(map[string]*limiter, len(heavyRoutes))
		for route := range heavyRoutes {
			s.limiters[route] = newLimiter(s.cfg.MaxInFlight, s.cfg.QueueDepth, s.cfg.QueueTimeout)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/tables", s.instrument("tables", s.handleTables))
	mux.HandleFunc("GET /v1/query", s.instrument("query", s.handleQuery))
	mux.HandleFunc("GET /v1/nearest", s.instrument("nearest", s.handleNearest))
	mux.HandleFunc("GET /v1/tile/{table}/{z}/{x}/{y}", s.instrument("tile", s.handleTile))
	mux.HandleFunc("POST /v1/append/{table}", s.instrument("append", s.handleAppend))
	mux.HandleFunc("POST /v1/delete/{table}", s.instrument("delete", s.handleDelete))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealth))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("GET /debug/slow", s.instrument("debug", s.handleSlow))
	// Catch-all: unregistered paths still pass through the middleware,
	// so every response the server sends is counted (route="other")
	// rather than silently answered by the mux's default NotFound.
	mux.HandleFunc("/", s.instrument(routeOther, func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	s.mux = mux
	return s
}

// SlowLog exposes the slow-query log, so the binary can retune the
// threshold from flags after construction.
func (s *Server) SlowLog() *obs.SlowLog { return s.slow }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// CacheStats exposes tile-cache counters (for tests and diagnostics).
func (s *Server) CacheStats() tilecache.Stats { return s.cache.Stats() }

// InvalidateTable drops every cached tile and the cached extent of the
// given base table. Call it after (re)registering a sample or reloading
// the table, so later tile requests re-render from current data. The
// table's cache-key epoch is bumped first: a render already in flight
// across the invalidation completes under the old epoch's key, which no
// later request asks for, so it can never resurface stale pixels as a
// cache hit.
func (s *Server) InvalidateTable(table string) {
	s.boundsMu.Lock()
	s.epochs[table]++
	delete(s.boundsCache, table)
	s.boundsMu.Unlock()
	s.cache.InvalidateTable(table)
}

// tableEpoch returns the current invalidation generation of a table.
func (s *Server) tableEpoch(table string) uint64 {
	s.boundsMu.RLock()
	defer s.boundsMu.RUnlock()
	return s.epochs[table]
}

// ---- instrumentation ----

// statusWriter records the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the resilience + observability
// middleware. In order: admission control (the per-route in-flight cap
// with its bounded wait queue — shed requests are answered and counted
// without ever reaching the handler), the per-request deadline (the
// context is canceled at Config.RequestTimeout and the engine's
// cooperative cancellation checks unwind the scan), then tracing —
// every request gets a fresh trace carried in its context, and on
// completion the trace feeds the per-route latency histogram, the
// per-stage duration histograms, and the slow-query log.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace(route)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if lim := s.limiters[route]; lim != nil {
			if reason := lim.acquire(r.Context()); reason != "" {
				s.shed(sw, route, reason)
				tr.Status = sw.status
				s.metrics.record(route, sw.status, tr.Finish())
				return
			}
			defer lim.release()
		}
		ctx := obs.WithTrace(r.Context(), tr)
		if s.cfg.RequestTimeout > 0 && heavyRoutes[route] {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		r = r.WithContext(ctx)
		h(sw, r)
		if ctx.Err() == context.DeadlineExceeded && sw.status >= 400 {
			// The deadline fired AND the request failed: the handler
			// unwound through the cancellation path, not a race where
			// the response won by a hair.
			s.metrics.recordTimeout(route)
		}
		tr.Status = sw.status
		total := tr.Finish()
		s.metrics.record(route, sw.status, total)
		s.metrics.recordStages(tr)
		s.slow.Record(tr)
	}
}

// httpError maps engine errors onto HTTP statuses and writes a JSON
// body. The resilience taxonomy is explicit: a deadline that fired
// server-side is 503 + Retry-After (the server was too slow — back off
// and retry), a canceled context is 499 (the client hung up — nobody is
// reading), and a degraded-mode write rejection is 503 + Retry-After
// (the mode clears when persistence heals).
func httpError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, store.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, query.ErrNoSampleFits):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, store.ErrBadNearest):
		status = http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, context.Canceled):
		status = statusClientClosedRequest
	case errors.Is(err, ErrDegraded):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func badRequest(w http.ResponseWriter, format string, args ...any) {
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// ---- /v1/tables ----

// SampleInfo describes one registered sample in the tables listing.
type SampleInfo struct {
	Table      string `json:"table"`
	Method     string `json:"method"`
	Size       int    `json:"size"`
	HasDensity bool   `json:"hasDensity"`
}

// TableInfo describes one base table in the tables listing.
type TableInfo struct {
	Name string `json:"name"`
	// Rows is the physical row count; LiveRows excludes rows tombstoned
	// by deletes or TTL but not yet reclaimed by compaction. The two
	// converge after every compaction.
	Rows     int          `json:"rows"`
	LiveRows int          `json:"liveRows"`
	Bounds   *RectJSON    `json:"bounds,omitempty"`
	Samples  []SampleInfo `json:"samples"`
}

// RectJSON is the wire form of a geom.Rect.
type RectJSON struct {
	MinX float64 `json:"minX"`
	MinY float64 `json:"minY"`
	MaxX float64 `json:"maxX"`
	MaxY float64 `json:"maxY"`
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	names := s.st.TableNames()
	isSample := make(map[string]bool)
	samplesOf := make(map[string][]store.SampleMeta)
	for _, n := range names {
		metas := s.st.SamplesOf(n)
		samplesOf[n] = metas
		for _, m := range metas {
			isSample[m.Table] = true
		}
	}
	out := make([]TableInfo, 0, len(names))
	for _, n := range names {
		if isSample[n] {
			continue
		}
		t, err := s.st.Table(n)
		if err != nil {
			continue // dropped concurrently
		}
		info := TableInfo{Name: n, Rows: t.NumRows(), LiveRows: t.LiveRows(), Samples: []SampleInfo{}}
		if b, err := s.tableBounds(n); err == nil && !b.IsEmpty() {
			info.Bounds = &RectJSON{MinX: b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY}
		}
		for _, m := range samplesOf[n] {
			info.Samples = append(info.Samples, SampleInfo{
				Table: m.Table, Method: m.Method, Size: m.Size, HasDensity: m.HasDensity,
			})
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"tables": out})
}

// tableBounds returns the cached data extent of a base table, computing
// it on first use.
func (s *Server) tableBounds(table string) (geom.Rect, error) {
	s.boundsMu.RLock()
	b, ok := s.boundsCache[table]
	epoch := s.epochs[table]
	s.boundsMu.RUnlock()
	if ok {
		return b, nil
	}
	t, err := s.st.Table(table)
	if err != nil {
		return geom.Rect{}, err
	}
	b, err = t.Bounds(s.cfg.XCol, s.cfg.YCol)
	if err != nil {
		return geom.Rect{}, err
	}
	// Never cache an empty extent: a tile request can land between table
	// creation and its bulk load, and caching the empty result would 404
	// that table's tiles until the next invalidation. And never cache
	// across an invalidation: if the table was reloaded while we computed,
	// this extent belongs to the dead generation — inserting it would
	// poison tile addressing for the whole new epoch.
	if !b.IsEmpty() {
		s.boundsMu.Lock()
		if s.epochs[table] == epoch {
			s.boundsCache[table] = b
		}
		s.boundsMu.Unlock()
	}
	return b, nil
}

// ---- /v1/query ----

// QueryResponse is the JSON answer to /v1/query.
type QueryResponse struct {
	Table string `json:"table"`
	// Points are [x, y] pairs.
	Points [][2]float64 `json:"points"`
	// Counts carries density weights when the served sample has them.
	Counts []float64 `json:"counts,omitempty"`
	// Sample names the served sample table; empty for an exact scan.
	Sample string `json:"sample,omitempty"`
	// SampleSize is the size of the served sample (0 for an exact scan).
	SampleSize int  `json:"sampleSize"`
	Exact      bool `json:"exact"`
	// ServedRows is the live row count of the table the answer was
	// scanned from — under live ingest, how current the served data is.
	// Tombstoned (deleted but not yet reclaimed) rows are excluded.
	ServedRows int `json:"servedRows"`
	// PredictedMillis is the latency-model estimate for rendering Points.
	PredictedMillis float64 `json:"predictedMillis"`
	// PlanMillis is the engine-side planning+scan time.
	PlanMillis float64 `json:"planMillis"`
	// Scan reports how the rows were selected — index probe vs linear
	// fallback, and the zone-map pruning achieved for filtered queries.
	Scan ScanStatsJSON `json:"scan"`
}

// ScanStatsJSON is the wire form of store.ScanStats.
type ScanStatsJSON struct {
	IndexProbe   bool `json:"indexProbe"`
	CellsTouched int  `json:"cellsTouched"`
	CellsPruned  int  `json:"cellsPruned"`
	CellsBulk    int  `json:"cellsBulk"`
	RowsExamined int  `json:"rowsExamined"`
	DeltaRows    int  `json:"deltaRows"`
	ZonesSkipped int  `json:"zonesSkipped"`
	BatchedRows  int  `json:"batchedRows"`
	ProbeShards  int  `json:"probeShards"`
}

func scanStatsJSON(st store.ScanStats) ScanStatsJSON {
	// A direct conversion: the structs are field-for-field identical, and
	// this breaks the build (instead of silently dropping data) if one
	// side grows a field the other lacks.
	return ScanStatsJSON(st)
}

// parseViewport reads minx/miny/maxx/maxy; absent parameters yield the
// zero Rect ("full extent"). Partial viewports are rejected.
func parseViewport(r *http.Request) (geom.Rect, error) {
	keys := [4]string{"minx", "miny", "maxx", "maxy"}
	var vals [4]float64
	present := 0
	for i, k := range keys {
		raw := r.URL.Query().Get(k)
		if raw == "" {
			continue
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return geom.Rect{}, fmt.Errorf("bad %s %q", k, raw)
		}
		vals[i] = v
		present++
	}
	if present == 0 {
		return geom.Rect{}, nil
	}
	if present != 4 {
		return geom.Rect{}, errors.New("viewport needs all of minx, miny, maxx, maxy")
	}
	vp := geom.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
	if vp.IsEmpty() {
		return geom.Rect{}, fmt.Errorf("empty viewport %v", vp)
	}
	return vp, nil
}

// parseFilters reads repeated filter=col:lo:hi parameters into pushdown
// predicates. The LAST two ":"-separated fields are the bounds, so
// column names may themselves contain ":" (or "|"); an empty lo or hi
// means unbounded on that side. The second return value is the
// canonical cache-key encoding of the filter set: bounds reformatted
// through the float parser, column names length-prefixed, and entries
// sorted, so two spellings of the same predicate set share cached tiles
// and any differing set gets its own key.
func parseFilters(r *http.Request) ([]store.Pred, string, error) {
	raws := r.URL.Query()["filter"]
	if len(raws) == 0 {
		return nil, "", nil
	}
	preds := make([]store.Pred, 0, len(raws))
	canon := make([]string, 0, len(raws))
	for _, raw := range raws {
		hiSep := strings.LastIndexByte(raw, ':')
		loSep := -1
		if hiSep > 0 {
			loSep = strings.LastIndexByte(raw[:hiSep], ':')
		}
		if loSep <= 0 {
			return nil, "", fmt.Errorf("bad filter %q (want col:lo:hi, empty bound = unbounded)", raw)
		}
		col, loRaw, hiRaw := raw[:loSep], raw[loSep+1:hiSep], raw[hiSep+1:]
		p := store.Pred{Column: col, Min: math.Inf(-1), Max: math.Inf(1)}
		var err error
		if loRaw != "" {
			if p.Min, err = strconv.ParseFloat(loRaw, 64); err != nil {
				return nil, "", fmt.Errorf("bad filter %q: lo %q is not a number", raw, loRaw)
			}
		}
		if hiRaw != "" {
			if p.Max, err = strconv.ParseFloat(hiRaw, 64); err != nil {
				return nil, "", fmt.Errorf("bad filter %q: hi %q is not a number", raw, hiRaw)
			}
		}
		// Canonicalize the equivalent spellings of each bound before the
		// key is formatted: a NaN bound means unbounded (exactly what the
		// store folds it to), and -0 compares identically to 0 — neither
		// may fragment the tile cache.
		if math.IsNaN(p.Min) {
			p.Min = math.Inf(-1)
		}
		if math.IsNaN(p.Max) {
			p.Max = math.Inf(1)
		}
		if p.Min == 0 {
			p.Min = 0
		}
		if p.Max == 0 {
			p.Max = 0
		}
		preds = append(preds, p)
		// The column name is length-prefixed: entries are joined with
		// "|" and fields with ":" below, and column names may contain
		// both characters — without the prefix, the one-filter set on
		// column "a:1:2|b" and the two-filter set on "a" and "b" would
		// canonicalize to the same cache key and serve each other's
		// tiles.
		canon = append(canon, fmt.Sprintf("%d:%s:%s:%s",
			len(p.Column), p.Column,
			strconv.FormatFloat(p.Min, 'g', -1, 64),
			strconv.FormatFloat(p.Max, 'g', -1, 64)))
	}
	sort.Strings(canon)
	return preds, strings.Join(canon, "|"), nil
}

// parseRects reads repeated rect=minx:miny:maxx:maxy parameters — the
// multi-viewport query shape, answered as the union of the rectangles.
func parseRects(r *http.Request) ([]geom.Rect, error) {
	raws := r.URL.Query()["rect"]
	if len(raws) == 0 {
		return nil, nil
	}
	rects := make([]geom.Rect, 0, len(raws))
	for _, raw := range raws {
		parts := strings.Split(raw, ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("bad rect %q (want minx:miny:maxx:maxy)", raw)
		}
		var vals [4]float64
		for i, part := range parts {
			v, err := strconv.ParseFloat(part, 64)
			if err != nil {
				return nil, fmt.Errorf("bad rect %q: %q is not a number", raw, part)
			}
			vals[i] = v
		}
		rc := geom.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
		if rc.IsEmpty() {
			return nil, fmt.Errorf("empty rect %q", raw)
		}
		rects = append(rects, rc)
	}
	return rects, nil
}

func parseBudget(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("budget")
	if raw == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("bad budget %q (want a Go duration like 500ms)", raw)
	}
	if d < 0 {
		return 0, fmt.Errorf("negative budget %q", raw)
	}
	return d, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	table := r.URL.Query().Get("table")
	if table == "" {
		badRequest(w, "missing table parameter")
		return
	}
	vp, err := parseViewport(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	rects, err := parseRects(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	if len(rects) > 0 && vp != (geom.Rect{}) {
		// One viewport spelling per request: combining them would have
		// to guess union vs intersection intent.
		badRequest(w, "rect and minx/miny/maxx/maxy are mutually exclusive")
		return
	}
	budget, err := parseBudget(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	filters, _, err := parseFilters(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	exact := r.URL.Query().Get("exact") == "true"
	resp, err := s.planner.PlanCtx(r.Context(), query.Request{
		Table: table, XCol: s.cfg.XCol, YCol: s.cfg.YCol,
		Viewport: vp, Rects: rects, Budget: budget, Exact: exact, Filters: filters,
	})
	if err != nil {
		httpError(w, err)
		return
	}
	out := QueryResponse{
		Table:           table,
		Points:          make([][2]float64, len(resp.Points)),
		Counts:          resp.Values,
		Sample:          resp.Sample.Table,
		SampleSize:      resp.Sample.Size,
		Exact:           resp.ExactScan,
		ServedRows:      resp.ServedRows,
		PredictedMillis: float64(resp.PredictedTime) / float64(time.Millisecond),
		PlanMillis:      float64(resp.PlanTime) / float64(time.Millisecond),
		Scan:            scanStatsJSON(resp.Scan),
	}
	for i, p := range resp.Points {
		out.Points[i] = [2]float64{p.X, p.Y}
	}
	tr := obs.FromContext(r.Context())
	tr.SetScan(out.Scan)
	sp := tr.StartSpan(obs.StageEncode)
	writeJSON(w, http.StatusOK, out)
	sp.End()
}

// ---- /v1/nearest ----

// NeighborJSON is one result row of /v1/nearest, nearest-first.
type NeighborJSON struct {
	Row  int     `json:"row"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	Dist float64 `json:"dist"`
}

// NearestResponse is the JSON answer to /v1/nearest.
type NearestResponse struct {
	Table     string         `json:"table"`
	K         int            `json:"k"`
	Neighbors []NeighborJSON `json:"neighbors"`
	// ServedRows is the live row count of the base table at query time.
	ServedRows int `json:"servedRows"`
	// PlanMillis is the engine-side plan+search time.
	PlanMillis float64 `json:"planMillis"`
	// Scan reports how the search ran — best-first tree descent (index
	// probe) vs brute-force sweep, and the leaf pruning achieved.
	Scan ScanStatsJSON `json:"scan"`
}

// handleNearest serves GET /v1/nearest?table=&x=&y=&k=&filter=col:lo:hi —
// the k nearest live rows to (x, y) by Euclidean distance, filtered by
// the optional predicates. Always exact against the base table: a kNN
// answer is k specific rows, so there is no sample/budget tradeoff to
// make. Tree-backed tables answer with a best-first branch-and-bound
// descent; grid-backed and unindexed tables fall back to a brute-force
// sweep (both report their work in scan).
func (s *Server) handleNearest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	table := q.Get("table")
	if table == "" {
		badRequest(w, "missing table parameter")
		return
	}
	xRaw, yRaw := q.Get("x"), q.Get("y")
	if xRaw == "" || yRaw == "" {
		badRequest(w, "missing x or y parameter")
		return
	}
	x, errX := strconv.ParseFloat(xRaw, 64)
	y, errY := strconv.ParseFloat(yRaw, 64)
	if errX != nil || errY != nil {
		badRequest(w, "x and y must be numbers")
		return
	}
	k := 1
	if raw := q.Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			badRequest(w, "k must be a positive integer")
			return
		}
		k = v
	}
	filters, _, err := parseFilters(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	resp, err := s.planner.NearestCtx(r.Context(), query.NearestRequest{
		Table: table, XCol: s.cfg.XCol, YCol: s.cfg.YCol,
		X: x, Y: y, K: k, Filters: filters,
	})
	if err != nil {
		httpError(w, err)
		return
	}
	out := NearestResponse{
		Table:      table,
		K:          k,
		Neighbors:  make([]NeighborJSON, len(resp.Neighbors)),
		ServedRows: resp.ServedRows,
		PlanMillis: float64(resp.PlanTime) / float64(time.Millisecond),
		Scan:       scanStatsJSON(resp.Scan),
	}
	for i, n := range resp.Neighbors {
		out.Neighbors[i] = NeighborJSON{Row: n.Row, X: n.X, Y: n.Y, Dist: n.Dist}
	}
	tr := obs.FromContext(r.Context())
	tr.SetTable(table)
	tr.SetScan(out.Scan)
	sp := tr.StartSpan(obs.StageEncode)
	writeJSON(w, http.StatusOK, out)
	sp.End()
}

// ---- /v1/append ----

// AppendRequest is the JSON body of POST /v1/append/{table}. Exactly
// one of Points and Rows must be non-empty: Points is the [x, y]
// convenience shape for two-column tables, Rows the general row-major
// shape (each inner slice one row, in schema column order). Points is
// deliberately [][]float64, not [][2]float64: encoding/json silently
// zero-fills and truncates fixed-size arrays, and a malformed point
// must be rejected, not ingested as (x, 0).
type AppendRequest struct {
	Points [][]float64 `json:"points,omitempty"`
	Rows   [][]float64 `json:"rows,omitempty"`
}

// AppendResponse is the JSON answer to /v1/append.
type AppendResponse struct {
	// Appended is the number of rows this batch added.
	Appended int `json:"appended"`
	// Rows is the table's live row count after the batch (tombstoned
	// rows excluded).
	Rows int `json:"rows"`
}

// handleAppend serves POST /v1/append/{table}: a batch of rows lands in
// the table (absorbed into the spatial indexes' deltas, so scans keep
// answering at indexed speed), the table's tile-cache epoch is bumped —
// tiles rendered from the pre-append contents can never be served again
// — and the ingest counters on /metrics advance.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	table := r.PathValue("table")
	var req AppendRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxAppendBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			// Distinguish "split the batch and retry" from "payload is
			// broken".
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{
				"error": fmt.Sprintf("append body exceeds %d bytes; split the batch", s.cfg.MaxAppendBytes),
			})
			return
		}
		badRequest(w, "bad append body: %v", err)
		return
	}
	if len(req.Points) == 0 && len(req.Rows) == 0 {
		// An empty batch is a legitimate no-op, not a client error —
		// batching producers naturally emit one at a quiet flush
		// interval. Nothing changed, so neither the tile epoch nor the
		// tail log moves; the table must still exist for the row count.
		t, err := s.st.Table(table)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, AppendResponse{Appended: 0, Rows: t.LiveRows()})
		return
	}
	if len(req.Points) > 0 && len(req.Rows) > 0 {
		badRequest(w, "append body needs exactly one of points, rows")
		return
	}
	var cols [][]float64
	if len(req.Points) > 0 {
		xs := make([]float64, len(req.Points))
		ys := make([]float64, len(req.Points))
		for i, p := range req.Points {
			if len(p) != 2 {
				badRequest(w, "append point %d has %d values, want [x, y]", i, len(p))
				return
			}
			xs[i], ys[i] = p[0], p[1]
		}
		cols = [][]float64{xs, ys}
	} else {
		width := len(req.Rows[0])
		if width == 0 {
			badRequest(w, "append rows must not be empty")
			return
		}
		cols = make([][]float64, width)
		for i := range cols {
			cols[i] = make([]float64, len(req.Rows))
		}
		for ri, row := range req.Rows {
			if len(row) != width {
				badRequest(w, "append row %d has %d values, row 0 has %d", ri, len(row), width)
				return
			}
			for ci, v := range row {
				cols[ci][ri] = v
			}
		}
	}
	n, err := s.appendCols(table, cols)
	if n > 0 {
		// Rows became visible — even when a durability step failed
		// afterwards — so the epoch must move: no tile rendered from
		// the pre-append generation may survive as a cache hit, and the
		// cached extent is recomputed.
		s.InvalidateTable(table)
		s.metrics.ingestBatches.Add(1)
		s.metrics.ingestRows.Add(int64(n))
	}
	if err != nil {
		switch {
		case errors.Is(err, store.ErrNotFound), errors.Is(err, ErrDegraded):
			httpError(w, err)
		case n > 0:
			// The batch is live but a server-side step (the snapshot
			// tail log) failed: that is our fault, not the payload's —
			// and the client must know a blind retry would duplicate
			// the now-visible rows.
			writeJSON(w, http.StatusInternalServerError, map[string]string{
				"error": fmt.Sprintf("rows appended and serving, but not durable: %v", err),
			})
		default:
			// Everything else an append can fail on before any row
			// lands is a payload/schema mismatch (wrong column count
			// for the table).
			badRequest(w, "%v", err)
		}
		return
	}
	rows := 0
	if t, err := s.st.Table(table); err == nil {
		rows = t.LiveRows()
	}
	writeJSON(w, http.StatusOK, AppendResponse{Appended: n, Rows: rows})
}

// appendCols routes one parsed batch to the configured AppendHook or
// straight into the store table.
func (s *Server) appendCols(table string, cols [][]float64) (int, error) {
	if s.cfg.AppendHook != nil {
		return s.cfg.AppendHook(table, cols)
	}
	t, err := s.st.Table(table)
	if err != nil {
		return 0, err
	}
	if err := t.AppendRows(cols...); err != nil {
		return 0, err
	}
	return len(cols[0]), nil
}

// ---- /v1/delete ----

// PredJSON is one conjunctive range predicate in a delete request; a
// nil bound means unbounded on that side.
type PredJSON struct {
	Column string   `json:"column"`
	Min    *float64 `json:"min,omitempty"`
	Max    *float64 `json:"max,omitempty"`
}

// DeleteRequest is the JSON body of POST /v1/delete/{table}. Rect and
// Filters compose conjunctively (a row must be inside the rect AND
// match every filter). A request with neither must set All — deleting a
// whole table by accidentally empty body is too cheap a mistake.
type DeleteRequest struct {
	Rect    *RectJSON  `json:"rect,omitempty"`
	Filters []PredJSON `json:"filters,omitempty"`
	All     bool       `json:"all,omitempty"`
}

// DeleteResponse is the JSON answer to /v1/delete.
type DeleteResponse struct {
	// Deleted is the number of rows this request newly tombstoned.
	Deleted int `json:"deleted"`
	// Rows is the table's live row count after the delete.
	Rows int `json:"rows"`
}

// handleDelete serves POST /v1/delete/{table}: the matching rows are
// tombstoned — atomically invisible to every later query and tile,
// physically reclaimed by the table's next background compaction — and
// the tile-cache epoch is bumped so no tile rendered from the
// pre-delete contents survives as a cache hit.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	table := r.PathValue("table")
	var req DeleteRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxAppendBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		badRequest(w, "bad delete body: %v", err)
		return
	}
	if req.Rect == nil && len(req.Filters) == 0 && !req.All {
		badRequest(w, `delete body needs a rect or filters (or "all": true to delete every row)`)
		return
	}
	var preds []store.Pred
	if req.Rect != nil {
		preds = append(preds,
			store.Pred{Column: s.cfg.XCol, Min: req.Rect.MinX, Max: req.Rect.MaxX},
			store.Pred{Column: s.cfg.YCol, Min: req.Rect.MinY, Max: req.Rect.MaxY})
	}
	for _, f := range req.Filters {
		if f.Column == "" {
			badRequest(w, "delete filter needs a column")
			return
		}
		p := store.Pred{Column: f.Column, Min: math.Inf(-1), Max: math.Inf(1)}
		if f.Min != nil {
			p.Min = *f.Min
		}
		if f.Max != nil {
			p.Max = *f.Max
		}
		preds = append(preds, p)
	}
	n, err := s.deletePreds(table, preds)
	if n > 0 {
		// Rows became invisible — even when a durability step failed
		// afterwards — so the epoch must move, exactly as for appends.
		s.InvalidateTable(table)
		s.metrics.deleteRequests.Add(1)
		s.metrics.deleteRows.Add(int64(n))
	}
	if err != nil {
		switch {
		case errors.Is(err, store.ErrNotFound):
			httpError(w, err)
		case n > 0:
			writeJSON(w, http.StatusInternalServerError, map[string]string{
				"error": fmt.Sprintf("rows deleted from serving, but not durable: %v", err),
			})
		default:
			httpError(w, err)
		}
		return
	}
	rows := 0
	if t, err := s.st.Table(table); err == nil {
		rows = t.LiveRows()
	}
	writeJSON(w, http.StatusOK, DeleteResponse{Deleted: n, Rows: rows})
}

// deletePreds routes one parsed delete to the configured DeleteHook or
// straight into the store table.
func (s *Server) deletePreds(table string, preds []store.Pred) (int, error) {
	if s.cfg.DeleteHook != nil {
		return s.cfg.DeleteHook(table, preds)
	}
	t, err := s.st.Table(table)
	if err != nil {
		return 0, err
	}
	return t.DeleteWhere(preds)
}

// ---- /v1/tile ----

// handleTile serves GET /v1/tile/{table}/{z}/{x}/{y}.png. Optional query
// parameters: size (tile edge in pixels), budget (latency budget for
// sample selection), exact=true (render the base table), and repeated
// filter=col:lo:hi predicates pushed down into the tile's index probe.
// Filters are part of the cache identity (canonicalized, alongside the
// table's invalidation epoch), so the same address under different
// filters caches independently.
func (s *Server) handleTile(w http.ResponseWriter, r *http.Request) {
	table := r.PathValue("table")
	yRaw, ok := strings.CutSuffix(r.PathValue("y"), ".png")
	if !ok {
		badRequest(w, "tile path must end in .png")
		return
	}
	z, errZ := strconv.Atoi(r.PathValue("z"))
	x, errX := strconv.Atoi(r.PathValue("x"))
	y, errY := strconv.Atoi(yRaw)
	if errZ != nil || errX != nil || errY != nil {
		badRequest(w, "tile address must be integers: /v1/tile/{table}/{z}/{x}/{y}.png")
		return
	}
	size := s.cfg.DefaultTileSize
	if raw := r.URL.Query().Get("size"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 16 || v > s.cfg.MaxTileSize {
			badRequest(w, "size must be an integer in [16,%d]", s.cfg.MaxTileSize)
			return
		}
		size = v
	}
	budget, err := parseBudget(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	filters, filterKey, err := parseFilters(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	exact := r.URL.Query().Get("exact") == "true"

	// The epoch must be read before the bounds (and before the render):
	// an invalidation landing after this point leaves us rendering
	// against stale geometry or data, and the stale epoch quarantines
	// that result under a key no post-invalidation request asks for.
	epoch := s.tableEpoch(table)
	bounds, err := s.tableBounds(table)
	if err != nil {
		httpError(w, err)
		return
	}
	if bounds.IsEmpty() {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("table %q has no data", table)})
		return
	}
	tileRect, err := geom.TileRect(bounds, z, x, y)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}

	// Resolve the sample first (metadata only): it is part of the cache
	// identity, and a cache hit must not touch the data at all. The
	// render below scans exactly this sample — never re-resolving — so a
	// concurrent sample registration cannot cache one sample's pixels
	// under another sample's key. A sample replacement (LoadSample
	// drop-and-recreate) can make the chosen sample table vanish between
	// Choose and the render; one re-resolve absorbs it.
	ctx := r.Context()
	tr := obs.FromContext(ctx)
	tr.SetTable(table)
	var (
		png        []byte
		metaAny    any
		hit        bool
		sampleName string
	)
	for attempt := 0; ; attempt++ {
		var meta store.SampleMeta
		sampleName = "__exact__"
		if !exact {
			sp := tr.StartSpan(obs.StagePlan)
			meta, err = s.planner.Choose(query.Request{
				Table: table, XCol: s.cfg.XCol, YCol: s.cfg.YCol, Budget: budget,
			})
			sp.End()
			if err != nil {
				httpError(w, err)
				return
			}
			sampleName = meta.Table
		}
		key := tilecache.Key{
			Table: table, Sample: sampleName, Epoch: epoch,
			Z: z, X: x, Y: y, Size: size, Filters: filterKey,
		}
		// The cache span covers lookup, single-flight waiting, and the
		// insert — everything but the render itself, whose time lands in
		// its own stages (probe/residual/gather/render/encode). The span
		// is closed across the render callback so the stages stay
		// disjoint and a trace's stage sum still approximates its total.
		csp := tr.StartSpan(obs.StageCache)
		png, metaAny, hit, err = s.cache.GetOrRender(key, func() ([]byte, any, error) {
			csp.End()
			b, tm, err := s.renderTile(ctx, table, meta, tileRect, size, exact, filters)
			csp = tr.StartSpan(obs.StageCache)
			return b, tm, err
		})
		csp.End()
		if err == nil {
			break
		}
		if exact || attempt > 0 || !errors.Is(err, store.ErrNotFound) {
			httpError(w, err)
			return
		}
	}
	w.Header().Set("Content-Type", "image/png")
	w.Header().Set("X-Sample", sampleName)
	if hit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	// PNG bytes have no stats channel, so the scan identity of the tile
	// rides in response headers, mirroring the JSON fields on /v1/query.
	// The sidecar is cached with the tile: hits answer with the stats of
	// the render that produced the pixels. (Entries inserted without a
	// render — tests using Put — have none.)
	if tm, ok := metaAny.(tileMeta); ok {
		tm.setHeaders(w.Header())
		tr.SetScan(scanStatsJSON(tm.Scan))
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(png)))
	_, _ = w.Write(png)
}

// tileMeta is the sidecar cached alongside each rendered tile: the
// scan statistics and serving currency of the render, replayed as
// X-Vas-* headers on every later cache hit.
type tileMeta struct {
	Scan       store.ScanStats
	ServedRows int
}

func (tm tileMeta) setHeaders(h http.Header) {
	h.Set("X-Vas-Scan-Index-Probe", strconv.FormatBool(tm.Scan.IndexProbe))
	h.Set("X-Vas-Scan-Cells-Touched", strconv.Itoa(tm.Scan.CellsTouched))
	h.Set("X-Vas-Scan-Cells-Pruned", strconv.Itoa(tm.Scan.CellsPruned))
	h.Set("X-Vas-Scan-Cells-Bulk", strconv.Itoa(tm.Scan.CellsBulk))
	h.Set("X-Vas-Scan-Rows-Examined", strconv.Itoa(tm.Scan.RowsExamined))
	h.Set("X-Vas-Scan-Delta-Rows", strconv.Itoa(tm.Scan.DeltaRows))
	h.Set("X-Vas-Scan-Zones-Skipped", strconv.Itoa(tm.Scan.ZonesSkipped))
	h.Set("X-Vas-Served-Rows", strconv.Itoa(tm.ServedRows))
}

// renderTile scans exactly the given sample table (or the base table for
// exact) within the tile rectangle, pushing any filters into the same
// probe, and encodes the raster as PNG. It deliberately does not re-run
// sample selection: the caller already resolved the sample into the
// cache key, and re-planning here could pick a different (newly
// registered) sample and poison the cache. Density-embedded samples
// render with the §V weighted-dot encoding.
func (s *Server) renderTile(ctx context.Context, table string, meta store.SampleMeta, tileRect geom.Rect, size int, exact bool, filters []store.Pred) ([]byte, tileMeta, error) {
	var tm tileMeta
	name, xCol, yCol := meta.Table, meta.XCol, meta.YCol
	if exact {
		name, xCol, yCol = table, s.cfg.XCol, s.cfg.YCol
	}
	t, err := s.st.Table(name)
	if err != nil {
		return nil, tm, err
	}
	// Before the scan, like /v1/query: a count taken after could exceed
	// the scanned snapshot under concurrent appends. Live rows, not
	// physical: tombstoned rows are invisible to the scan below.
	tm.ServedRows = t.LiveRows()
	// Index probe: sample and base tables published through the catalog
	// carry a grid index over their (x, y) pair, so a tile-cache miss
	// reads only the cells its rectangle overlaps instead of scanning
	// the table — and zone maps prune cells the filters rule out.
	rows, st, err := t.ScanRectWhereCtx(ctx, xCol, yCol, tileRect, filters)
	if err != nil {
		return nil, tm, err
	}
	tm.Scan = st
	sp := obs.StartSpan(ctx, obs.StageGather)
	pts, err := t.Points(xCol, yCol, rows)
	sp.End()
	if err != nil {
		return nil, tm, err
	}
	ras := render.NewRaster(tileRect, size, size)
	if meta.HasDensity && !exact {
		// A density sample whose density column cannot be gathered is
		// broken data; surface it rather than silently rendering (and
		// caching) an unweighted tile.
		sp = obs.StartSpan(ctx, obs.StageGather)
		vals, err := t.Gather("density", rows)
		sp.End()
		if err != nil {
			return nil, tm, fmt.Errorf("sample %q density gather: %w", name, err)
		}
		weights := make([]int64, len(vals))
		for i, v := range vals {
			weights[i] = int64(v)
		}
		sp = obs.StartSpan(ctx, obs.StageRender)
		_, err = ras.PlotWeighted(pts, weights, 0)
		sp.End()
		if err != nil {
			return nil, tm, err
		}
	} else {
		sp = obs.StartSpan(ctx, obs.StageRender)
		ras.Plot(pts)
		sp.End()
	}
	sp = obs.StartSpan(ctx, obs.StageEncode)
	var buf bytes.Buffer
	err = ras.WritePNG(&buf)
	sp.End()
	if err != nil {
		return nil, tm, err
	}
	return buf.Bytes(), tm, nil
}

// ---- /healthz, /metrics and /debug/slow ----

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "tables": len(s.st.TableNames())})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	source, seconds := s.coldStart()
	var tails []TailStatus
	if s.cfg.TailStatus != nil {
		tails = s.cfg.TailStatus()
	}
	s.metrics.write(w, s.cache.Stats(), s.st.IndexStats(), source, seconds, tails, obs.DefaultJobs.Snapshot())
}

// handleSlow serves the slow-query log: the retained traces
// (newest-first), the slowest request seen, and per-table latency
// summaries.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.slow.Report())
}
