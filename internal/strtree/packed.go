// Package strtree is the repo's one home for standalone point trees
// (the store's serving-path spatial indexes live in internal/store and
// share the STR bulk-load algorithm used here).
//
// Two shapes:
//
//   - Tree: an immutable packed R-tree over 2D points, bulk-loaded with
//     Sort-Tile-Recursive (Leutenegger 1997). Built once, read forever —
//     the density-embedding second pass (§V), the loss evaluator, and the
//     user simulation build it over a sample or dataset and issue
//     nearest/kNN/range queries. Safe for concurrent reads.
//   - Dynamic: a mutable quadratic-split R-tree (Guttman 1984) supporting
//     insert and delete-by-(point,id), used by the VAS Interchange ESLoc
//     variant whose working set churns one point at a time.
package strtree

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/geom"
)

const (
	// packedLeafSize is the leaf capacity of the packed tree; 16 points
	// per leaf keeps the leaf scan within two cache lines of coordinates.
	packedLeafSize = 16
	// packedFanout is the internal-node fanout of the packed tree.
	packedFanout = 16
)

// Tree is an immutable packed STR-bulk-loaded R-tree over 2D points.
// Construct with Build.
type Tree struct {
	pts []geom.Point
	ids []int
	// ord permutes [0,len(pts)) into leaf order: leaf i holds
	// ord[leafOff[i]:leafOff[i+1]].
	ord     []int32
	leafOff []int32
	leafMBR []geom.Rect
	// nodes is the packed hierarchy, built bottom-up with the root LAST;
	// a node's children (other nodes, or leaves at the lowest level) sit
	// at strictly lower indices, so iterative descent terminates.
	nodes []pnode
}

// pnode is one packed internal node. When leafKids is true, [lo,hi)
// indexes into leafMBR/leafOff; otherwise into nodes.
type pnode struct {
	mbr      geom.Rect
	lo, hi   int32
	leafKids bool
}

// Neighbor is one kNN or range result.
type Neighbor struct {
	ID   int
	P    geom.Point
	Dist float64
}

// Build constructs a packed STR tree over pts. The returned tree keeps
// its own copy of the points. ids[i] is the payload returned for pts[i];
// pass nil to use the index itself.
func Build(pts []geom.Point, ids []int) *Tree {
	n := len(pts)
	t := &Tree{
		pts: make([]geom.Point, n),
		ids: make([]int, n),
	}
	copy(t.pts, pts)
	if ids != nil {
		if len(ids) != n {
			panic("strtree: ids length must match pts length")
		}
		copy(t.ids, ids)
	} else {
		for i := range t.ids {
			t.ids[i] = i
		}
	}
	if n == 0 {
		return t
	}
	t.ord = strOrder(t.pts, packedLeafSize)
	t.packLeaves()
	t.packNodes()
	return t
}

// strOrder returns the Sort-Tile-Recursive permutation: sort by x (ties
// y), slice into ceil(sqrt(P)) vertical strips of whole leaves, sort
// each strip by y (ties x). Chunking the result into runs of leafSize
// yields spatially tight leaves for any distribution.
func strOrder(pts []geom.Point, leafSize int) []int32 {
	n := len(pts)
	ord := make([]int32, n)
	for i := range ord {
		ord[i] = int32(i)
	}
	sort.Slice(ord, func(a, b int) bool {
		pa, pb := pts[ord[a]], pts[ord[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	numLeaves := (n + leafSize - 1) / leafSize
	strips := int(math.Ceil(math.Sqrt(float64(numLeaves))))
	if strips < 1 {
		strips = 1
	}
	// Each strip takes a whole number of leaves' worth of points.
	leavesPerStrip := (numLeaves + strips - 1) / strips
	stripPts := leavesPerStrip * leafSize
	for lo := 0; lo < n; lo += stripPts {
		hi := lo + stripPts
		if hi > n {
			hi = n
		}
		strip := ord[lo:hi]
		sort.Slice(strip, func(a, b int) bool {
			pa, pb := pts[strip[a]], pts[strip[b]]
			if pa.Y != pb.Y {
				return pa.Y < pb.Y
			}
			return pa.X < pb.X
		})
	}
	return ord
}

// packLeaves chunks the STR order into leaves and computes their MBRs.
func (t *Tree) packLeaves() {
	n := len(t.ord)
	numLeaves := (n + packedLeafSize - 1) / packedLeafSize
	t.leafOff = make([]int32, numLeaves+1)
	t.leafMBR = make([]geom.Rect, numLeaves)
	for l := 0; l < numLeaves; l++ {
		lo := l * packedLeafSize
		hi := lo + packedLeafSize
		if hi > n {
			hi = n
		}
		t.leafOff[l] = int32(lo)
		mbr := geom.EmptyRect()
		for _, id := range t.ord[lo:hi] {
			mbr = mbr.UnionPoint(t.pts[id])
		}
		t.leafMBR[l] = mbr
	}
	t.leafOff[numLeaves] = int32(n)
}

// packNodes builds the internal hierarchy bottom-up: level 0 groups
// runs of packedFanout leaves, each later level groups runs of the
// previous level's nodes, until one root remains (stored last).
func (t *Tree) packNodes() {
	numLeaves := len(t.leafMBR)
	// Level 0 over leaves.
	levelLo := 0
	for l := 0; l < numLeaves; l += packedFanout {
		hi := l + packedFanout
		if hi > numLeaves {
			hi = numLeaves
		}
		mbr := geom.EmptyRect()
		for _, m := range t.leafMBR[l:hi] {
			mbr = mbr.Union(m)
		}
		t.nodes = append(t.nodes, pnode{mbr: mbr, lo: int32(l), hi: int32(hi), leafKids: true})
	}
	// Later levels over the previous level's node range.
	for len(t.nodes)-levelLo > 1 {
		levelHi := len(t.nodes)
		for l := levelLo; l < levelHi; l += packedFanout {
			hi := l + packedFanout
			if hi > levelHi {
				hi = levelHi
			}
			mbr := geom.EmptyRect()
			for _, c := range t.nodes[l:hi] {
				mbr = mbr.Union(c.mbr)
			}
			t.nodes = append(t.nodes, pnode{mbr: mbr, lo: int32(l), hi: int32(hi)})
		}
		levelLo = levelHi
	}
}

// Len returns the number of stored points.
func (t *Tree) Len() int { return len(t.pts) }

// Nearest returns the payload id and point of the stored point nearest
// to q, along with the distance. ok is false for an empty tree.
func (t *Tree) Nearest(q geom.Point) (id int, p geom.Point, dist float64, ok bool) {
	nbs := t.KNearest(q, 1)
	if len(nbs) == 0 {
		return 0, geom.Point{}, 0, false
	}
	return nbs[0].ID, nbs[0].P, nbs[0].Dist, true
}

// knnEntry is a best-first queue element: an internal node, a leaf, or
// a single point, ordered by (squared) distance lower bound.
type knnEntry struct {
	dist float64
	idx  int32
	kind int8 // 0 node, 1 leaf, 2 point
}

type knnQueue []knnEntry

func (q knnQueue) Len() int           { return len(q) }
func (q knnQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q knnQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *knnQueue) Push(x any)        { *q = append(*q, x.(knnEntry)) }
func (q *knnQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// KNearest returns up to k stored items nearest to q in increasing
// distance order, by best-first search over the packed hierarchy.
func (t *Tree) KNearest(q geom.Point, k int) []Neighbor {
	if k <= 0 || len(t.pts) == 0 {
		return nil
	}
	pq := &knnQueue{}
	root := int32(len(t.nodes) - 1)
	if root < 0 {
		// Single leaf, no internal nodes.
		heap.Push(pq, knnEntry{dist: t.leafMBR[0].DistToPoint(q), idx: 0, kind: 1})
	} else {
		heap.Push(pq, knnEntry{dist: t.nodes[root].mbr.DistToPoint(q), idx: root, kind: 0})
	}
	out := make([]Neighbor, 0, k)
	for pq.Len() > 0 && len(out) < k {
		e := heap.Pop(pq).(knnEntry)
		switch e.kind {
		case 2:
			id := t.ord[e.idx]
			out = append(out, Neighbor{ID: t.ids[id], P: t.pts[id], Dist: e.dist})
		case 1:
			lo, hi := t.leafOff[e.idx], t.leafOff[e.idx+1]
			for i := lo; i < hi; i++ {
				heap.Push(pq, knnEntry{dist: t.pts[t.ord[i]].Dist(q), idx: i, kind: 2})
			}
		default:
			n := t.nodes[e.idx]
			kind := int8(0)
			if n.leafKids {
				kind = 1
			}
			for c := n.lo; c < n.hi; c++ {
				var d float64
				if n.leafKids {
					d = t.leafMBR[c].DistToPoint(q)
				} else {
					d = t.nodes[c].mbr.DistToPoint(q)
				}
				heap.Push(pq, knnEntry{dist: d, idx: c, kind: kind})
			}
		}
	}
	return out
}

// InRange appends to dst the items whose points fall inside r and
// returns the extended slice.
func (t *Tree) InRange(r geom.Rect, dst []Neighbor) []Neighbor {
	if len(t.pts) == 0 {
		return dst
	}
	var stack []int32
	appendLeaf := func(l int32) {
		if !t.leafMBR[l].Intersects(r) {
			return
		}
		for i := t.leafOff[l]; i < t.leafOff[l+1]; i++ {
			id := t.ord[i]
			if p := t.pts[id]; r.Contains(p) {
				dst = append(dst, Neighbor{ID: t.ids[id], P: p})
			}
		}
	}
	if len(t.nodes) == 0 {
		appendLeaf(0)
		return dst
	}
	stack = append(stack, int32(len(t.nodes)-1))
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := t.nodes[ni]
		if !n.mbr.Intersects(r) {
			continue
		}
		for c := n.lo; c < n.hi; c++ {
			if n.leafKids {
				appendLeaf(c)
			} else {
				stack = append(stack, c)
			}
		}
	}
	return dst
}
