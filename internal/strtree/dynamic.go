package strtree

// The mutable tree: a quadratic-split R-tree (Guttman 1984) over 2D
// points, folded in from the former internal/rtree package. The VAS
// Interchange algorithm uses it to exploit the locality of the proximity
// function (paper §IV-B): when a new data point arrives, only sample
// points within the kernel's support radius contribute non-negligibly to
// the responsibility updates, and the tree finds exactly those points.
//
// It stores points with an opaque integer payload (the sample-slot id),
// supports insertion, deletion by (point, id), axis-aligned range
// search, radius search, and k-nearest-neighbour search.

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/geom"
)

const (
	// MaxEntries is the node capacity M. 16 keeps nodes cache-friendly
	// for the sample sizes the paper uses (100 .. 1M).
	MaxEntries = 16
	// MinEntries is the minimum fill m = M/4 per Guttman's guidance.
	MinEntries = MaxEntries / 4
)

// Item is a stored point with its payload id.
type Item struct {
	P  geom.Point
	ID int
}

type dnode struct {
	bounds   geom.Rect
	leaf     bool
	items    []Item   // populated when leaf
	children []*dnode // populated when !leaf
}

func newDNode(leaf bool) *dnode {
	n := &dnode{bounds: geom.EmptyRect(), leaf: leaf}
	if leaf {
		n.items = make([]Item, 0, MaxEntries+1)
	} else {
		n.children = make([]*dnode, 0, MaxEntries+1)
	}
	return n
}

func (n *dnode) entryCount() int {
	if n.leaf {
		return len(n.items)
	}
	return len(n.children)
}

func (n *dnode) recomputeBounds() {
	b := geom.EmptyRect()
	if n.leaf {
		for _, it := range n.items {
			b = b.UnionPoint(it.P)
		}
	} else {
		for _, c := range n.children {
			b = b.Union(c.bounds)
		}
	}
	n.bounds = b
}

// Dynamic is a mutable R-tree over 2D points. The zero value is not
// usable; construct with NewDynamic. Not safe for concurrent mutation.
type Dynamic struct {
	root *dnode
	size int
}

// NewDynamic returns an empty mutable R-tree.
func NewDynamic() *Dynamic {
	return &Dynamic{root: newDNode(true)}
}

// Len returns the number of stored items.
func (t *Dynamic) Len() int { return t.size }

// Bounds returns the bounding rectangle of all stored points.
func (t *Dynamic) Bounds() geom.Rect { return t.root.bounds }

// Insert adds the point p with payload id. Duplicates (same point and id)
// are stored independently.
func (t *Dynamic) Insert(p geom.Point, id int) {
	it := Item{P: p, ID: id}
	path := t.pathToLeaf(t.root, p)
	leaf := path[len(path)-1]
	leaf.items = append(leaf.items, it)
	leaf.bounds = leaf.bounds.UnionPoint(p)
	t.size++
	t.splitUpward(path)
}

// pathToLeaf returns the root..leaf path chosen for inserting p, adjusting
// bounds along the way.
func (t *Dynamic) pathToLeaf(n *dnode, p geom.Point) []*dnode {
	path := []*dnode{n}
	cur := n
	for !cur.leaf {
		cur.bounds = cur.bounds.UnionPoint(p)
		var best *dnode
		bestEnl := math.Inf(1)
		bestArea := math.Inf(1)
		target := geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
		for _, c := range cur.children {
			enl := c.bounds.Enlargement(target)
			area := c.bounds.Area()
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = c, enl, area
			}
		}
		cur = best
		path = append(path, cur)
	}
	cur.bounds = cur.bounds.UnionPoint(p)
	return path
}

// splitUpward splits overflowing nodes from the end of the insert path
// toward the root. The path carries the parents, so no searching is needed.
func (t *Dynamic) splitUpward(path []*dnode) {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if n.entryCount() <= MaxEntries {
			return
		}
		left, right := splitNode(n)
		if i == 0 {
			// n is the root: grow the tree.
			newRoot := newDNode(false)
			newRoot.children = append(newRoot.children, left, right)
			newRoot.recomputeBounds()
			t.root = newRoot
			return
		}
		parent := path[i-1]
		for j, c := range parent.children {
			if c == n {
				parent.children[j] = left
				break
			}
		}
		parent.children = append(parent.children, right)
		parent.recomputeBounds()
	}
}

// splitNode partitions an overflowing node into two using Guttman's
// quadratic split: pick the pair of entries wasting the most area as seeds,
// then assign each remaining entry to the group needing least enlargement.
func splitNode(n *dnode) (*dnode, *dnode) {
	if n.leaf {
		a, b := quadraticSplitItems(n.items)
		left, right := newDNode(true), newDNode(true)
		left.items, right.items = a, b
		left.recomputeBounds()
		right.recomputeBounds()
		return left, right
	}
	a, b := quadraticSplitChildren(n.children)
	left, right := newDNode(false), newDNode(false)
	left.children, right.children = a, b
	left.recomputeBounds()
	right.recomputeBounds()
	return left, right
}

func itemRect(it Item) geom.Rect {
	return geom.Rect{MinX: it.P.X, MinY: it.P.Y, MaxX: it.P.X, MaxY: it.P.Y}
}

func quadraticSplitItems(items []Item) ([]Item, []Item) {
	seedA, seedB := pickSeeds(len(items), func(i int) geom.Rect { return itemRect(items[i]) })
	ga := []Item{items[seedA]}
	gb := []Item{items[seedB]}
	ra, rb := itemRect(items[seedA]), itemRect(items[seedB])
	for i, it := range items {
		if i == seedA || i == seedB {
			continue
		}
		switch {
		case len(ga) >= MaxEntries-MinEntries+1:
			gb = append(gb, it)
			rb = rb.UnionPoint(it.P)
		case len(gb) >= MaxEntries-MinEntries+1:
			ga = append(ga, it)
			ra = ra.UnionPoint(it.P)
		default:
			da := ra.Enlargement(itemRect(it))
			db := rb.Enlargement(itemRect(it))
			if da < db || (da == db && ra.Area() <= rb.Area()) {
				ga = append(ga, it)
				ra = ra.UnionPoint(it.P)
			} else {
				gb = append(gb, it)
				rb = rb.UnionPoint(it.P)
			}
		}
	}
	return ga, gb
}

func quadraticSplitChildren(children []*dnode) ([]*dnode, []*dnode) {
	seedA, seedB := pickSeeds(len(children), func(i int) geom.Rect { return children[i].bounds })
	ga := []*dnode{children[seedA]}
	gb := []*dnode{children[seedB]}
	ra, rb := children[seedA].bounds, children[seedB].bounds
	for i, c := range children {
		if i == seedA || i == seedB {
			continue
		}
		switch {
		case len(ga) >= MaxEntries-MinEntries+1:
			gb = append(gb, c)
			rb = rb.Union(c.bounds)
		case len(gb) >= MaxEntries-MinEntries+1:
			ga = append(ga, c)
			ra = ra.Union(c.bounds)
		default:
			da := ra.Enlargement(c.bounds)
			db := rb.Enlargement(c.bounds)
			if da < db || (da == db && ra.Area() <= rb.Area()) {
				ga = append(ga, c)
				ra = ra.Union(c.bounds)
			} else {
				gb = append(gb, c)
				rb = rb.Union(c.bounds)
			}
		}
	}
	return ga, gb
}

// pickSeeds returns the indices of the two rectangles that waste the most
// area when paired.
func pickSeeds(n int, rect func(int) geom.Rect) (int, int) {
	bestWaste := math.Inf(-1)
	a, b := 0, 1
	for i := 0; i < n; i++ {
		ri := rect(i)
		for j := i + 1; j < n; j++ {
			rj := rect(j)
			waste := ri.Union(rj).Area() - ri.Area() - rj.Area()
			if waste > bestWaste {
				bestWaste, a, b = waste, i, j
			}
		}
	}
	return a, b
}

// Delete removes one item equal to (p, id). It reports whether an item was
// found and removed. Underflowing nodes are handled by re-inserting their
// remaining entries (the standard condense-tree approach). Only the
// root-to-leaf deletion path is touched, so a delete costs O(depth·M) plus
// any orphan re-insertions.
func (t *Dynamic) Delete(p geom.Point, id int) bool {
	path := make([]*dnode, 0, 8)
	leaf, idx := t.findLeafPath(t.root, p, id, &path)
	if leaf == nil {
		return false
	}
	leaf.items = append(leaf.items[:idx], leaf.items[idx+1:]...)
	t.size--
	t.condense(path)
	return true
}

// findLeafPath locates the leaf holding (p, id) and records the root..leaf
// path into *path.
func (t *Dynamic) findLeafPath(n *dnode, p geom.Point, id int, path *[]*dnode) (*dnode, int) {
	if !n.bounds.Contains(p) {
		return nil, -1
	}
	*path = append(*path, n)
	if n.leaf {
		for i, it := range n.items {
			if it.ID == id && it.P.Equal(p) {
				return n, i
			}
		}
		*path = (*path)[:len(*path)-1]
		return nil, -1
	}
	for _, c := range n.children {
		if leaf, i := t.findLeafPath(c, p, id, path); leaf != nil {
			return leaf, i
		}
	}
	*path = (*path)[:len(*path)-1]
	return nil, -1
}

// condense rebalances after a deletion along the recorded path: non-root
// nodes that underflow are detached and their entries re-inserted; the
// bounds of the surviving ancestors are refreshed bottom-up.
func (t *Dynamic) condense(path []*dnode) {
	var orphans []Item
	for i := len(path) - 1; i >= 1; i-- {
		n := path[i]
		if n.entryCount() < MinEntries {
			parent := path[i-1]
			for j, c := range parent.children {
				if c == n {
					parent.children = append(parent.children[:j], parent.children[j+1:]...)
					break
				}
			}
			orphans = append(orphans, collectItems(n)...)
			continue
		}
		n.recomputeBounds()
	}
	t.root.recomputeBounds()
	// Root with a single internal child shrinks the tree.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if t.root.entryCount() == 0 && !t.root.leaf {
		t.root = newDNode(true)
	}
	t.size -= len(orphans)
	for _, it := range orphans {
		t.Insert(it.P, it.ID)
	}
}

func collectItems(n *dnode) []Item {
	if n.leaf {
		out := make([]Item, len(n.items))
		copy(out, n.items)
		return out
	}
	var out []Item
	for _, c := range n.children {
		out = append(out, collectItems(c)...)
	}
	return out
}

// Search appends to dst every stored item whose point lies inside r and
// returns the extended slice.
func (t *Dynamic) Search(r geom.Rect, dst []Item) []Item {
	return searchNode(t.root, r, dst)
}

func searchNode(n *dnode, r geom.Rect, dst []Item) []Item {
	if !n.bounds.Intersects(r) {
		return dst
	}
	if n.leaf {
		for _, it := range n.items {
			if r.Contains(it.P) {
				dst = append(dst, it)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = searchNode(c, r, dst)
	}
	return dst
}

// Within appends every item within Euclidean distance radius of p to dst.
// This is the query Interchange ES+Loc issues per scanned data point.
func (t *Dynamic) Within(p geom.Point, radius float64, dst []Item) []Item {
	box := geom.RectAround(p, radius)
	r2 := radius * radius
	return withinNode(t.root, p, box, r2, dst)
}

func withinNode(n *dnode, p geom.Point, box geom.Rect, r2 float64, dst []Item) []Item {
	if !n.bounds.Intersects(box) {
		return dst
	}
	if n.leaf {
		for _, it := range n.items {
			if it.P.Dist2(p) <= r2 {
				dst = append(dst, it)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = withinNode(c, p, box, r2, dst)
	}
	return dst
}

// nnEntry is a priority-queue element for best-first kNN search.
type nnEntry struct {
	dist float64
	node *dnode
	item Item
	leaf bool
}

type nnQueue []nnEntry

func (q nnQueue) Len() int           { return len(q) }
func (q nnQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q nnQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x any)        { *q = append(*q, x.(nnEntry)) }
func (q *nnQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Nearest returns the k items nearest to p in increasing distance order
// using best-first search. It returns fewer than k items when the tree
// holds fewer.
func (t *Dynamic) Nearest(p geom.Point, k int) []Item {
	if k <= 0 || t.size == 0 {
		return nil
	}
	q := &nnQueue{}
	heap.Push(q, nnEntry{dist: t.root.bounds.DistToPoint(p), node: t.root})
	out := make([]Item, 0, k)
	for q.Len() > 0 && len(out) < k {
		e := heap.Pop(q).(nnEntry)
		if e.leaf {
			out = append(out, e.item)
			continue
		}
		n := e.node
		if n.leaf {
			for _, it := range n.items {
				heap.Push(q, nnEntry{dist: it.P.Dist(p), item: it, leaf: true})
			}
			continue
		}
		for _, c := range n.children {
			heap.Push(q, nnEntry{dist: c.bounds.DistToPoint(p), node: c})
		}
	}
	return out
}

// Validate checks the structural invariants of the tree and returns an
// error describing the first violation found. It is used by tests and
// property checks.
func (t *Dynamic) Validate() error {
	count, err := validateNode(t.root, t.root)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("strtree: size mismatch: counted %d, recorded %d", count, t.size)
	}
	return nil
}

func validateNode(n, root *dnode) (int, error) {
	if n != root && n.entryCount() < MinEntries {
		return 0, fmt.Errorf("strtree: node underflow: %d < %d", n.entryCount(), MinEntries)
	}
	if n.entryCount() > MaxEntries {
		return 0, fmt.Errorf("strtree: node overflow: %d > %d", n.entryCount(), MaxEntries)
	}
	if n.leaf {
		for _, it := range n.items {
			if !n.bounds.Contains(it.P) {
				return 0, fmt.Errorf("strtree: item %v outside leaf bounds %v", it.P, n.bounds)
			}
		}
		return len(n.items), nil
	}
	total := 0
	for _, c := range n.children {
		if !n.bounds.ContainsRect(c.bounds) {
			return 0, fmt.Errorf("strtree: child bounds %v outside parent %v", c.bounds, n.bounds)
		}
		sub, err := validateNode(c, root)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	return total, nil
}

// Depth returns the height of the tree (1 for a single leaf).
func (t *Dynamic) Depth() int {
	d := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		d++
	}
	return d
}
