package strtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func normPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.NormFloat64()*10, rng.NormFloat64()*10)
	}
	return pts
}

func TestPackedNearestMatchesBruteForce(t *testing.T) {
	pts := normPoints(700, 1)
	tr := Build(pts, nil)
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 200; q++ {
		probe := geom.Pt(rng.NormFloat64()*12, rng.NormFloat64()*12)
		id, p, d, ok := tr.Nearest(probe)
		if !ok {
			t.Fatal("Nearest not ok on non-empty tree")
		}
		// Brute force.
		bestD := probe.Dist(pts[0])
		for _, cand := range pts[1:] {
			if dd := probe.Dist(cand); dd < bestD {
				bestD = dd
			}
		}
		if d > bestD+1e-9 {
			t.Fatalf("Nearest dist %v, brute force %v", d, bestD)
		}
		if !pts[id].Equal(p) {
			t.Fatal("returned point does not match returned id")
		}
	}
}

func TestPackedNearestEmpty(t *testing.T) {
	tr := Build(nil, nil)
	if _, _, _, ok := tr.Nearest(geom.Pt(0, 0)); ok {
		t.Error("empty tree Nearest should report !ok")
	}
	if tr.Len() != 0 {
		t.Error("empty tree Len != 0")
	}
}

func TestPackedNearestSinglePoint(t *testing.T) {
	tr := Build([]geom.Point{geom.Pt(3, 4)}, []int{99})
	id, p, d, ok := tr.Nearest(geom.Pt(0, 0))
	if !ok || id != 99 || !p.Equal(geom.Pt(3, 4)) || d != 5 {
		t.Errorf("got id=%d p=%v d=%v ok=%v", id, p, d, ok)
	}
}

func TestPackedKNearestOrderAndCompleteness(t *testing.T) {
	pts := normPoints(400, 3)
	tr := Build(pts, nil)
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 60; q++ {
		probe := geom.Pt(rng.NormFloat64()*12, rng.NormFloat64()*12)
		k := 1 + rng.Intn(12)
		got := tr.KNearest(probe, k)
		if len(got) != k {
			t.Fatalf("KNearest returned %d, want %d", len(got), k)
		}
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist-1e-12 {
				t.Fatal("KNearest out of order")
			}
		}
		dists := make([]float64, len(pts))
		for i, p := range pts {
			dists[i] = probe.Dist(p)
		}
		sort.Float64s(dists)
		for i := 0; i < k; i++ {
			if got[i].Dist > dists[i]+1e-9 {
				t.Fatalf("rank %d dist %v, brute force %v", i, got[i].Dist, dists[i])
			}
		}
	}
}

func TestPackedKNearestMoreThanSize(t *testing.T) {
	pts := normPoints(5, 5)
	tr := Build(pts, nil)
	got := tr.KNearest(geom.Pt(0, 0), 50)
	if len(got) != 5 {
		t.Errorf("got %d results, want all 5", len(got))
	}
	if tr.KNearest(geom.Pt(0, 0), 0) != nil {
		t.Error("k=0 should return nil")
	}
}

func TestPackedInRangeMatchesBruteForce(t *testing.T) {
	pts := normPoints(500, 6)
	tr := Build(pts, nil)
	rng := rand.New(rand.NewSource(7))
	for q := 0; q < 60; q++ {
		r := geom.NewRect(
			geom.Pt(rng.NormFloat64()*10, rng.NormFloat64()*10),
			geom.Pt(rng.NormFloat64()*10, rng.NormFloat64()*10),
		)
		got := tr.InRange(r, nil)
		var want int
		for _, p := range pts {
			if r.Contains(p) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("InRange(%v) = %d, want %d", r, len(got), want)
		}
		for _, nb := range got {
			if !r.Contains(nb.P) {
				t.Fatalf("InRange returned outside point %v", nb.P)
			}
		}
	}
}

func TestPackedCustomIDs(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}
	tr := Build(pts, []int{42, 77})
	id, _, _, _ := tr.Nearest(geom.Pt(9, 0))
	if id != 77 {
		t.Errorf("id = %d, want 77", id)
	}
}

func TestPackedBuildPanicsOnIDMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on ids/pts length mismatch")
		}
	}()
	Build(normPoints(3, 8), []int{1, 2})
}

func TestPackedDuplicateCoordinates(t *testing.T) {
	// Many identical points must not break construction or search.
	pts := make([]geom.Point, 64)
	for i := range pts {
		pts[i] = geom.Pt(1, 1)
	}
	pts = append(pts, geom.Pt(2, 2))
	tr := Build(pts, nil)
	id, _, d, ok := tr.Nearest(geom.Pt(2.1, 2.1))
	if !ok || id != 64 || d > 0.2 {
		t.Errorf("nearest among duplicates: id=%d d=%v", id, d)
	}
	got := tr.InRange(geom.RectAround(geom.Pt(1, 1), 0.1), nil)
	if len(got) != 64 {
		t.Errorf("InRange found %d duplicates, want 64", len(got))
	}
}

func TestPackedTreeIsImmutableCopy(t *testing.T) {
	pts := normPoints(10, 9)
	tr := Build(pts, nil)
	// Mutating the caller's slice must not affect the tree.
	orig := pts[0]
	pts[0] = geom.Pt(9999, 9999)
	id, p, _, _ := tr.Nearest(orig)
	if !p.Equal(orig) && id == 0 {
		t.Error("tree shares storage with caller slice")
	}
}

// TestPackedScalesAcrossLeafBoundaries drives sizes around the leaf and
// fanout boundaries so single-leaf, single-node, and multi-level trees
// all get the brute-force treatment.
func TestPackedScalesAcrossLeafBoundaries(t *testing.T) {
	sizes := []int{1, 2, packedLeafSize - 1, packedLeafSize, packedLeafSize + 1,
		packedLeafSize * packedFanout, packedLeafSize*packedFanout + 1, 5000}
	for _, n := range sizes {
		pts := normPoints(n, int64(n))
		tr := Build(pts, nil)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
		probe := geom.Pt(1, -2)
		_, _, d, ok := tr.Nearest(probe)
		if !ok {
			t.Fatalf("n=%d: Nearest !ok", n)
		}
		bestD := probe.Dist(pts[0])
		for _, p := range pts[1:] {
			if dd := probe.Dist(p); dd < bestD {
				bestD = dd
			}
		}
		if d > bestD+1e-9 {
			t.Fatalf("n=%d: Nearest %v, brute %v", n, d, bestD)
		}
		all := tr.InRange(geom.Rect{MinX: -1e9, MinY: -1e9, MaxX: 1e9, MaxY: 1e9}, nil)
		if len(all) != n {
			t.Fatalf("n=%d: full-extent InRange found %d", n, len(all))
		}
	}
}
