package strtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func uniformPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	return pts
}

func TestDynamicInsertAndLen(t *testing.T) {
	tr := NewDynamic()
	pts := uniformPoints(500, 1)
	for i, p := range pts {
		tr.Insert(p, i)
		if tr.Len() != i+1 {
			t.Fatalf("Len = %d after %d inserts", tr.Len(), i+1)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() < 2 {
		t.Errorf("500 points should split the root; depth = %d", tr.Depth())
	}
}

func TestDynamicSearchMatchesBruteForce(t *testing.T) {
	tr := NewDynamic()
	pts := uniformPoints(1000, 2)
	for i, p := range pts {
		tr.Insert(p, i)
	}
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 50; q++ {
		r := geom.NewRect(
			geom.Pt(rng.Float64()*100, rng.Float64()*100),
			geom.Pt(rng.Float64()*100, rng.Float64()*100),
		)
		got := idsOf(tr.Search(r, nil))
		var want []int
		for i, p := range pts {
			if r.Contains(p) {
				want = append(want, i)
			}
		}
		sort.Ints(want)
		if !equalInts(got, want) {
			t.Fatalf("query %v: got %d ids, want %d", r, len(got), len(want))
		}
	}
}

func TestDynamicWithinMatchesBruteForce(t *testing.T) {
	tr := NewDynamic()
	pts := uniformPoints(800, 4)
	for i, p := range pts {
		tr.Insert(p, i)
	}
	rng := rand.New(rand.NewSource(5))
	for q := 0; q < 50; q++ {
		c := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		radius := rng.Float64() * 20
		got := idsOf(tr.Within(c, radius, nil))
		var want []int
		for i, p := range pts {
			if p.Dist(c) <= radius {
				want = append(want, i)
			}
		}
		sort.Ints(want)
		if !equalInts(got, want) {
			t.Fatalf("within(%v, %v): got %v, want %v", c, radius, got, want)
		}
	}
}

func TestDynamicNearestMatchesBruteForce(t *testing.T) {
	tr := NewDynamic()
	pts := uniformPoints(600, 6)
	for i, p := range pts {
		tr.Insert(p, i)
	}
	rng := rand.New(rand.NewSource(7))
	for q := 0; q < 50; q++ {
		c := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		k := 1 + rng.Intn(10)
		got := tr.Nearest(c, k)
		if len(got) != k {
			t.Fatalf("Nearest returned %d, want %d", len(got), k)
		}
		// Distances must be non-decreasing.
		for i := 1; i < len(got); i++ {
			if got[i].P.Dist(c) < got[i-1].P.Dist(c)-1e-12 {
				t.Fatal("kNN results out of order")
			}
		}
		// k-th distance must equal brute-force k-th distance.
		dists := make([]float64, len(pts))
		for i, p := range pts {
			dists[i] = p.Dist(c)
		}
		sort.Float64s(dists)
		if gd := got[k-1].P.Dist(c); gd > dists[k-1]+1e-9 {
			t.Fatalf("kth nearest dist %v, brute force %v", gd, dists[k-1])
		}
	}
}

func TestDynamicNearestEdgeCases(t *testing.T) {
	tr := NewDynamic()
	if res := tr.Nearest(geom.Pt(0, 0), 3); res != nil {
		t.Error("empty tree should return nil")
	}
	tr.Insert(geom.Pt(1, 1), 7)
	if res := tr.Nearest(geom.Pt(0, 0), 5); len(res) != 1 || res[0].ID != 7 {
		t.Errorf("k>size: got %v", res)
	}
	if res := tr.Nearest(geom.Pt(0, 0), 0); res != nil {
		t.Error("k=0 should return nil")
	}
}

func TestDynamicDelete(t *testing.T) {
	tr := NewDynamic()
	pts := uniformPoints(400, 8)
	for i, p := range pts {
		tr.Insert(p, i)
	}
	// Delete every third point.
	deleted := map[int]bool{}
	for i := 0; i < len(pts); i += 3 {
		if !tr.Delete(pts[i], i) {
			t.Fatalf("Delete(%v, %d) failed", pts[i], i)
		}
		deleted[i] = true
		if err := tr.Validate(); err != nil {
			t.Fatalf("after deleting %d: %v", i, err)
		}
	}
	if tr.Len() != len(pts)-len(deleted) {
		t.Errorf("Len = %d, want %d", tr.Len(), len(pts)-len(deleted))
	}
	// Deleted items are gone; the rest remain findable.
	all := idsOf(tr.Search(tr.Bounds(), nil))
	for _, id := range all {
		if deleted[id] {
			t.Fatalf("deleted id %d still present", id)
		}
	}
	if len(all) != tr.Len() {
		t.Errorf("search found %d, Len says %d", len(all), tr.Len())
	}
	// Deleting a missing item reports false.
	if tr.Delete(geom.Pt(-999, -999), 12345) {
		t.Error("deleting a missing item returned true")
	}
}

func TestDynamicDeleteAllThenReuse(t *testing.T) {
	tr := NewDynamic()
	pts := uniformPoints(150, 9)
	for i, p := range pts {
		tr.Insert(p, i)
	}
	for i, p := range pts {
		if !tr.Delete(p, i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	// The tree must be reusable.
	tr.Insert(geom.Pt(1, 2), 0)
	if got := tr.Nearest(geom.Pt(0, 0), 1); len(got) != 1 {
		t.Fatal("reuse after emptying failed")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicDuplicatePoints(t *testing.T) {
	tr := NewDynamic()
	p := geom.Pt(5, 5)
	for i := 0; i < 40; i++ {
		tr.Insert(p, i)
	}
	if tr.Len() != 40 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	got := tr.Within(p, 0.001, nil)
	if len(got) != 40 {
		t.Errorf("Within found %d duplicates, want 40", len(got))
	}
	// Delete one specific id among duplicates.
	if !tr.Delete(p, 17) {
		t.Fatal("delete duplicate id 17 failed")
	}
	for _, it := range tr.Within(p, 0.001, nil) {
		if it.ID == 17 {
			t.Fatal("id 17 still present")
		}
	}
}

func TestDynamicRandomizedInsertDeleteInvariant(t *testing.T) {
	// Fuzz-style: random interleaving of inserts and deletes, validating
	// structure throughout and checking contents against a reference map.
	rng := rand.New(rand.NewSource(10))
	tr := NewDynamic()
	type item struct {
		p  geom.Point
		id int
	}
	var live []item
	nextID := 0
	for op := 0; op < 3000; op++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			p := geom.Pt(rng.Float64()*50, rng.Float64()*50)
			tr.Insert(p, nextID)
			live = append(live, item{p, nextID})
			nextID++
		} else {
			j := rng.Intn(len(live))
			it := live[j]
			if !tr.Delete(it.p, it.id) {
				t.Fatalf("op %d: delete of live item failed", op)
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if op%250 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if tr.Len() != len(live) {
				t.Fatalf("op %d: Len=%d, live=%d", op, tr.Len(), len(live))
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	got := idsOf(tr.Search(geom.Rect{MinX: -1, MinY: -1, MaxX: 51, MaxY: 51}, nil))
	want := make([]int, len(live))
	for i, it := range live {
		want[i] = it.id
	}
	sort.Ints(want)
	if !equalInts(got, want) {
		t.Fatalf("final contents mismatch: %d vs %d items", len(got), len(want))
	}
}

func TestDynamicBoundsTracking(t *testing.T) {
	tr := NewDynamic()
	if !tr.Bounds().IsEmpty() {
		t.Error("empty tree should have empty bounds")
	}
	tr.Insert(geom.Pt(1, 2), 0)
	tr.Insert(geom.Pt(-3, 8), 1)
	b := tr.Bounds()
	want := geom.Rect{MinX: -3, MinY: 2, MaxX: 1, MaxY: 8}
	if b != want {
		t.Errorf("Bounds = %v, want %v", b, want)
	}
}

func idsOf(items []Item) []int {
	ids := make([]int, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	sort.Ints(ids)
	return ids
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
