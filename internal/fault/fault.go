// Package fault is the filesystem seam under the durability layer
// (internal/snapshot): an interface mirroring the handful of os calls
// snapshot saves and tail-log appends perform, a zero-overhead
// passthrough used in production, and a scriptable Injector used by the
// crash-recovery torture suite and the durability-degradation fault
// matrix.
//
// The Injector supports three failure shapes:
//
//   - scripted errors — a matching op (sync, rename, write, ...) fails
//     with a chosen error (ENOSPC, EIO, ...), once or persistently;
//   - torn writes — a write lands its first N bytes and then fails,
//     the on-disk shape of a partial page flush;
//   - crash points — from the k-th mutating op on, EVERY operation
//     fails with ErrCrashed, simulating process death mid-operation:
//     cleanup code that would roll back a partial write never runs,
//     exactly as after a real crash, so whatever bytes made it to disk
//     are what recovery must cope with.
//
// The Injector also counts and logs mutating ops, so a recording run
// of a workload enumerates every crash site for exhaustive replay.
package fault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// ErrInjected is the default error returned by scripted fault rules.
var ErrInjected = errors.New("fault: injected error")

// ErrCrashed is returned by every operation after a crash point fires:
// the simulated process is dead and nothing else reaches the disk.
var ErrCrashed = errors.New("fault: crashed")

// File is the subset of *os.File the durability layer uses.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Closer
	Sync() error
	Stat() (os.FileInfo, error)
	Truncate(size int64) error
	Name() string
}

// FS is the filesystem seam: every file operation the snapshot and
// tail-log code performs, and nothing more.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(name string) ([]byte, error)
	MkdirAll(path string, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Chmod(name string, mode os.FileMode) error
}

// OS is the production FS: direct passthrough to the os package. The
// zero value is ready to use.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (OS) Open(name string) (File, error)               { return os.Open(name) }
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (OS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) Chmod(name string, mode os.FileMode) error    { return os.Chmod(name, mode) }

// Op names one filesystem operation kind, for rule matching and the
// crash-site log.
type Op string

const (
	OpOpen     Op = "open"     // OpenFile / Open
	OpCreate   Op = "create"   // CreateTemp
	OpRead     Op = "read"     // ReadFile / File.Read / File.ReadAt
	OpWrite    Op = "write"    // File.Write
	OpSync     Op = "sync"     // File.Sync
	OpClose    Op = "close"    // File.Close
	OpTruncate Op = "truncate" // File.Truncate
	OpRename   Op = "rename"   // Rename
	OpRemove   Op = "remove"   // Remove
	OpChmod    Op = "chmod"    // Chmod
	OpMkdir    Op = "mkdir"    // MkdirAll
)

// mutating reports whether the op can change on-disk state — these are
// the crash sites the torture suite enumerates. Opening with O_CREATE
// counts (it can create the file); plain Open and reads do not.
func mutating(op Op) bool {
	switch op {
	case OpWrite, OpSync, OpTruncate, OpRename, OpRemove, OpChmod, OpMkdir, OpCreate, OpOpen:
		return true
	}
	return false
}

// OpRecord is one mutating operation seen by an Injector.
type OpRecord struct {
	Op   Op
	Path string
}

// rule is one scripted fault. Matching is by op kind and a path
// substring ("" matches every path).
type rule struct {
	op    Op
	path  string
	err   error
	torn  int  // for OpWrite: land this many bytes before failing
	once  bool // disarm after the first hit
	fired bool
}

// Injector wraps a base FS and injects scripted faults, torn writes,
// and crash points. All methods are safe for concurrent use.
type Injector struct {
	base FS

	mu      sync.Mutex
	rules   []*rule
	log     []OpRecord
	crashAt int  // mutating-op index that triggers the crash; -1 = disarmed
	tornCr  bool // crash mid-write: land half the buffer first
	crashed bool
}

// NewInjector returns an Injector over base (fault.OS{} when nil) with
// no faults armed: it is a transparent, counting passthrough.
func NewInjector(base FS) *Injector {
	if base == nil {
		base = OS{}
	}
	return &Injector{base: base, crashAt: -1}
}

// FailOp arms a persistent fault: every op of the given kind whose path
// contains pathSubstr fails with err (ErrInjected when err is nil).
func (i *Injector) FailOp(op Op, pathSubstr string, err error) {
	i.addRule(&rule{op: op, path: pathSubstr, err: err})
}

// FailOnce is FailOp for the first matching op only.
func (i *Injector) FailOnce(op Op, pathSubstr string, err error) {
	i.addRule(&rule{op: op, path: pathSubstr, err: err, once: true})
}

// TornWrite arms a one-shot torn write: the first write whose path
// contains pathSubstr lands its first n bytes and then fails with err
// (ErrInjected when err is nil).
func (i *Injector) TornWrite(pathSubstr string, n int, err error) {
	i.addRule(&rule{op: OpWrite, path: pathSubstr, err: err, torn: n, once: true})
}

func (i *Injector) addRule(r *rule) {
	if r.err == nil {
		r.err = ErrInjected
	}
	i.mu.Lock()
	i.rules = append(i.rules, r)
	i.mu.Unlock()
}

// CrashAt arms a crash point: the n-th mutating op (0-based, counted
// across the Injector's lifetime) fails with ErrCrashed before touching
// the disk, and every operation after it — reads included — fails too.
// With torn set and the op a write, half the buffer lands first: the
// torn-page shape of a crash mid-flush.
func (i *Injector) CrashAt(n int, torn bool) {
	i.mu.Lock()
	i.crashAt = n
	i.tornCr = torn
	i.mu.Unlock()
}

// Crashed reports whether the armed crash point has fired.
func (i *Injector) Crashed() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

// Ops returns how many mutating ops the Injector has seen.
func (i *Injector) Ops() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return len(i.log)
}

// Log returns a copy of the mutating-op record, in order: the crash-site
// enumeration a recording run hands to the torture loop.
func (i *Injector) Log() []OpRecord {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]OpRecord, len(i.log))
	copy(out, i.log)
	return out
}

// Reset disarms every rule and crash point and clears the op log; the
// Injector becomes a transparent passthrough again.
func (i *Injector) Reset() {
	i.mu.Lock()
	i.rules = nil
	i.log = nil
	i.crashAt = -1
	i.crashed = false
	i.tornCr = false
	i.mu.Unlock()
}

// enter gates one operation. It returns (tornBytes, err): err non-nil
// fails the op; tornBytes >= 0 on a write means "land that many bytes,
// then fail with err".
func (i *Injector) enter(op Op, path string, writeLen int) (int, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return -1, ErrCrashed
	}
	if mutating(op) {
		n := len(i.log)
		i.log = append(i.log, OpRecord{Op: op, Path: path})
		if n == i.crashAt {
			i.crashed = true
			if i.tornCr && op == OpWrite && writeLen > 1 {
				return writeLen / 2, ErrCrashed
			}
			return -1, ErrCrashed
		}
	}
	for _, r := range i.rules {
		if r.fired && r.once {
			continue
		}
		if r.op != op {
			continue
		}
		if r.path != "" && !contains(path, r.path) {
			continue
		}
		r.fired = true
		if op == OpWrite && r.torn > 0 && r.torn < writeLen {
			return r.torn, r.err
		}
		return -1, r.err
	}
	return -1, nil
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func (i *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if _, err := i.enter(OpOpen, name, 0); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	f, err := i.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, inj: i, path: name}, nil
}

func (i *Injector) Open(name string) (File, error) {
	// Plain Open is read-only: not a crash site, but dead after a crash.
	if _, err := i.enter(OpRead, name, 0); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	f, err := i.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, inj: i, path: name}, nil
}

func (i *Injector) CreateTemp(dir, pattern string) (File, error) {
	if _, err := i.enter(OpCreate, dir+"/"+pattern, 0); err != nil {
		return nil, &os.PathError{Op: "createtemp", Path: dir, Err: err}
	}
	f, err := i.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, inj: i, path: f.Name()}, nil
}

func (i *Injector) ReadFile(name string) ([]byte, error) {
	if _, err := i.enter(OpRead, name, 0); err != nil {
		return nil, &os.PathError{Op: "read", Path: name, Err: err}
	}
	return i.base.ReadFile(name)
}

func (i *Injector) MkdirAll(path string, perm os.FileMode) error {
	if _, err := i.enter(OpMkdir, path, 0); err != nil {
		return &os.PathError{Op: "mkdir", Path: path, Err: err}
	}
	return i.base.MkdirAll(path, perm)
}

func (i *Injector) Rename(oldpath, newpath string) error {
	if _, err := i.enter(OpRename, newpath, 0); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return i.base.Rename(oldpath, newpath)
}

func (i *Injector) Remove(name string) error {
	if _, err := i.enter(OpRemove, name, 0); err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	return i.base.Remove(name)
}

func (i *Injector) Chmod(name string, mode os.FileMode) error {
	if _, err := i.enter(OpChmod, name, 0); err != nil {
		return &os.PathError{Op: "chmod", Path: name, Err: err}
	}
	return i.base.Chmod(name, mode)
}

// injFile routes file-level ops back through the Injector's gate.
type injFile struct {
	f    File
	inj  *Injector
	path string
}

func (f *injFile) Read(p []byte) (int, error) {
	if _, err := f.inj.enter(OpRead, f.path, 0); err != nil {
		return 0, err
	}
	return f.f.Read(p)
}

func (f *injFile) ReadAt(p []byte, off int64) (int, error) {
	if _, err := f.inj.enter(OpRead, f.path, 0); err != nil {
		return 0, err
	}
	return f.f.ReadAt(p, off)
}

func (f *injFile) Write(p []byte) (int, error) {
	torn, err := f.inj.enter(OpWrite, f.path, len(p))
	if err != nil {
		if torn > 0 {
			n, werr := f.f.Write(p[:torn])
			if werr != nil {
				return n, werr
			}
			return n, fmt.Errorf("torn write after %d of %d bytes: %w", n, len(p), err)
		}
		return 0, err
	}
	return f.f.Write(p)
}

func (f *injFile) Sync() error {
	if _, err := f.inj.enter(OpSync, f.path, 0); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *injFile) Close() error {
	// Close after a crash is allowed to reach the OS: real kernels close
	// descriptors of dead processes, and leaking them would wedge the
	// test harness. Scripted close faults still apply.
	f.inj.mu.Lock()
	crashed := f.inj.crashed
	f.inj.mu.Unlock()
	if !crashed {
		if _, err := f.inj.enter(OpClose, f.path, 0); err != nil {
			f.f.Close()
			return err
		}
	}
	return f.f.Close()
}

func (f *injFile) Truncate(size int64) error {
	if _, err := f.inj.enter(OpTruncate, f.path, 0); err != nil {
		return err
	}
	return f.f.Truncate(size)
}

func (f *injFile) Stat() (os.FileInfo, error) {
	if _, err := f.inj.enter(OpRead, f.path, 0); err != nil {
		return nil, err
	}
	return f.f.Stat()
}

func (f *injFile) Name() string { return f.f.Name() }
