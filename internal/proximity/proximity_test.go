package proximity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestGaussianValues(t *testing.T) {
	k := NewGaussian(1)
	if v := k.Eval(geom.Pt(0, 0), geom.Pt(0, 0)); v != 1 {
		t.Errorf("kernel at zero distance = %v, want 1", v)
	}
	// exp(-d²/2) at d=1: e^-0.5.
	want := math.Exp(-0.5)
	if v := k.Eval(geom.Pt(0, 0), geom.Pt(1, 0)); math.Abs(v-want) > 1e-15 {
		t.Errorf("kernel at d=1 = %v, want %v", v, want)
	}
	// The paper's negligibility observation (value 1.12e-7 "at distance
	// 4") is exp(-16) in its normalization; in ours that value occurs at
	// d = √32·ε ≈ 5.66ε.
	v := k.Eval(geom.Pt(0, 0), geom.Pt(math.Sqrt(32), 0))
	if math.Abs(v-1.125e-7)/1.125e-7 > 0.01 {
		t.Errorf("kernel at d=√32 = %g, want ≈1.125e-7", v)
	}
}

func TestKernelsDecreasing(t *testing.T) {
	for _, kind := range []Kind{Gaussian, Epanechnikov, Tricube} {
		k := New(kind, 1)
		prev := math.Inf(1)
		for d := 0.0; d <= 8; d += 0.05 {
			v := k.EvalDist2(d * d)
			if v > prev+1e-15 {
				t.Fatalf("%v: kernel increases at d=%v (%v > %v)", kind, d, v, prev)
			}
			if v < 0 {
				t.Fatalf("%v: negative kernel value %v at d=%v", kind, v, d)
			}
			prev = v
		}
	}
}

func TestCompactSupportExact(t *testing.T) {
	for _, kind := range []Kind{Epanechnikov, Tricube} {
		k := New(kind, 1)
		s := k.Support()
		if v := k.EvalDist2(s * s * 1.0001); v != 0 {
			t.Errorf("%v: non-zero value %v beyond support", kind, v)
		}
		if v := k.EvalDist2(s * s * 0.25); v <= 0 {
			t.Errorf("%v: zero value inside support", kind)
		}
	}
}

func TestGaussianSupportNegligible(t *testing.T) {
	k := NewGaussian(2.5)
	s := k.Support()
	if v := k.EvalDist2(s * s); v > 2e-8 {
		t.Errorf("value at support radius = %g, want negligible", v)
	}
	// Pair kernel at its pruning radius: exp(-9) ≈ 1.2e-4, negligible
	// relative to the responsibility magnitudes Interchange compares.
	ps := k.PairSupport()
	if v := k.PairDist2(ps * ps); v > 1.3e-4 {
		t.Errorf("pair value at pair support = %g, want <= exp(-9)", v)
	}
}

func TestPairIsWiderGaussian(t *testing.T) {
	// κ̃ is the Gaussian with bandwidth √2·ε: Pair(d) == Eval(d/√2).
	k := NewGaussian(3)
	for _, d := range []float64{0, 1, 2, 5, 10} {
		got := k.PairDist2(d * d)
		want := k.EvalDist2(d * d / 2)
		if math.Abs(got-want) > 1e-15 {
			t.Errorf("Pair(d=%v) = %v, want Eval(d/√2) = %v", d, got, want)
		}
	}
	// For compact kernels Pair falls back to the kernel itself.
	e := New(Epanechnikov, 3)
	if e.PairDist2(4) != e.EvalDist2(4) {
		t.Error("compact kernel Pair != Eval")
	}
	if e.PairSupport() != e.Support() {
		t.Error("compact kernel PairSupport != Support")
	}
}

func TestPairSymmetricProperty(t *testing.T) {
	k := NewGaussian(1.7)
	f := func(ax, ay, bx, by float64) bool {
		if anyBad(ax, ay, bx, by) {
			return true
		}
		a := geom.Pt(math.Mod(ax, 100), math.Mod(ay, 100))
		b := geom.Pt(math.Mod(bx, 100), math.Mod(by, 100))
		return k.Pair(a, b) == k.Pair(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromData(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(30, 40)} // diagonal 50
	k, err := FromData(Gaussian, pts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := k.Bandwidth(), 0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("bandwidth = %v, want %v (diag/100)", got, want)
	}
	if _, err := FromData(Gaussian, []geom.Point{geom.Pt(1, 1), geom.Pt(1, 1)}); err == nil {
		t.Error("coincident points: want error")
	}
	if _, err := FromData(Gaussian, nil); err == nil {
		t.Error("empty points: want error")
	}
}

func TestNewPanicsOnBadBandwidth(t *testing.T) {
	for _, eps := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v): want panic", eps)
				}
			}()
			New(Gaussian, eps)
		}()
	}
}

func TestParseKind(t *testing.T) {
	for _, name := range []string{"gaussian", "epanechnikov", "tricube"} {
		k, err := ParseKind(name)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", name, err)
		}
		if k.String() != name {
			t.Errorf("round trip %q -> %q", name, k.String())
		}
	}
	if _, err := ParseKind("cosine"); err == nil {
		t.Error("unknown kind: want error")
	}
}

func TestEvalMatchesEvalDist2(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, kind := range []Kind{Gaussian, Epanechnikov, Tricube} {
		k := New(kind, 2)
		for i := 0; i < 100; i++ {
			a := geom.Pt(rng.NormFloat64()*5, rng.NormFloat64()*5)
			b := geom.Pt(rng.NormFloat64()*5, rng.NormFloat64()*5)
			if got, want := k.Eval(a, b), k.EvalDist2(a.Dist2(b)); got != want {
				t.Fatalf("%v: Eval=%v EvalDist2=%v", kind, got, want)
			}
		}
	}
}

func TestStringer(t *testing.T) {
	k := New(Gaussian, 0.25)
	if s := k.String(); s != "gaussian(eps=0.25)" {
		t.Errorf("String = %q", s)
	}
}

func anyBad(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}
