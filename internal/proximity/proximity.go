// Package kernel implements the proximity functions κ used by the VAS loss
// and the derived pairwise objective κ̃ (paper §III).
//
// The paper uses the Gaussian kernel κ(x, s) = exp(-‖x-s‖²/2ε²) and shows
// that after the second-order Taylor expansion the pairwise term κ̃(si, sj)
// collapses to the same functional form with bandwidth √2·ε; since constant
// factors do not change the argmin, any decreasing convex function of the
// distance is admissible, and the paper states it is "sufficient to use any
// proximity function directly in place of κ̃". This package therefore exposes
// a small family of admissible kernels plus the bandwidth heuristic from
// footnote 2 (ε ≈ maxPairwiseDist/100).
package proximity

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Kind enumerates the supported proximity kernels.
type Kind int

const (
	// Gaussian is exp(-d²/2ε²), the kernel used throughout the paper.
	Gaussian Kind = iota
	// Epanechnikov is max(0, 1-(d/ε')²) with ε' = 4ε, a compactly
	// supported convex-on-support alternative used in the kernel ablation.
	Epanechnikov
	// Tricube is max(0, (1-(d/ε')³)³) with ε' = 4ε, another compactly
	// supported alternative.
	Tricube
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Gaussian:
		return "gaussian"
	case Epanechnikov:
		return "epanechnikov"
	case Tricube:
		return "tricube"
	default:
		return fmt.Sprintf("proximity.Kind(%d)", int(k))
	}
}

// ParseKind converts a kernel name to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "gaussian":
		return Gaussian, nil
	case "epanechnikov":
		return Epanechnikov, nil
	case "tricube":
		return Tricube, nil
	}
	return 0, fmt.Errorf("kernel: unknown kind %q", s)
}

// DefaultBandwidthDivisor is the divisor in the paper's bandwidth heuristic:
// ε ≈ max pairwise distance / 100 (§III footnote 2).
const DefaultBandwidthDivisor = 100

// Func is a proximity function over the 2D visualization space with a fixed
// bandwidth. The zero value is not usable; construct with New.
type Func struct {
	kind    Kind
	eps     float64 // bandwidth ε
	inv2e2  float64 // 1/(2ε²), precomputed for the Gaussian
	support float64 // distance beyond which the kernel is negligible/zero
}

// New returns a proximity function of the given kind and bandwidth eps.
// It panics if eps is not a positive finite number, since a non-positive
// bandwidth silently degenerates every downstream computation.
func New(kind Kind, eps float64) Func {
	if !(eps > 0) || math.IsInf(eps, 1) {
		panic(fmt.Sprintf("kernel: bandwidth must be positive and finite, got %v", eps))
	}
	f := Func{kind: kind, eps: eps, inv2e2: 1 / (2 * eps * eps)}
	switch kind {
	case Gaussian:
		// exp(-d²/2ε²) < 1.2e-7 when d > 8ε/√2 ≈ 5.66ε; the paper notes
		// the value is 1.12e-7 at distance 4 (with ε=1), i.e. ~5.66σ of
		// the implied √2·ε std-dev. Use 6ε as the negligibility radius.
		f.support = 6 * eps
	case Epanechnikov, Tricube:
		f.support = 4 * eps
	default:
		panic(fmt.Sprintf("kernel: unknown kind %d", int(kind)))
	}
	return f
}

// NewGaussian returns the paper's kernel with bandwidth eps.
func NewGaussian(eps float64) Func { return New(Gaussian, eps) }

// FromData returns a kernel of the given kind with bandwidth chosen by the
// paper's heuristic: ε = maxPairwiseDist(pts)/DefaultBandwidthDivisor.
// It returns an error when the points are all coincident (zero extent),
// because no bandwidth can be inferred.
func FromData(kind Kind, pts []geom.Point) (Func, error) {
	d := geom.MaxPairwiseDist(pts)
	if d <= 0 {
		return Func{}, fmt.Errorf("kernel: cannot infer bandwidth from %d coincident or empty points", len(pts))
	}
	return New(kind, d/DefaultBandwidthDivisor), nil
}

// Kind returns the kernel family.
func (f Func) Kind() Kind { return f.kind }

// Bandwidth returns ε.
func (f Func) Bandwidth() float64 { return f.eps }

// Support returns the radius beyond which Eval is negligible (Gaussian) or
// exactly zero (compact kernels). The ES+Loc variant of Interchange prunes
// pairs farther apart than this radius (§IV-B "Speed-Up using the Locality
// of Proximity function").
func (f Func) Support() float64 { return f.support }

// Eval returns κ(p, q).
func (f Func) Eval(p, q geom.Point) float64 { return f.EvalDist2(p.Dist2(q)) }

// EvalDist2 returns the kernel value for a squared distance d2. Splitting
// this out lets hot loops reuse an already-computed squared distance.
func (f Func) EvalDist2(d2 float64) float64 {
	switch f.kind {
	case Gaussian:
		return math.Exp(-d2 * f.inv2e2)
	case Epanechnikov:
		u2 := d2 / (f.support * f.support)
		if u2 >= 1 {
			return 0
		}
		return 1 - u2
	case Tricube:
		u := math.Sqrt(d2) / f.support
		if u >= 1 {
			return 0
		}
		c := 1 - u*u*u
		return c * c * c
	default:
		panic("kernel: invalid Func (use proximity.New)")
	}
}

// Pair returns κ̃(si, sj), the pairwise objective term. For the Gaussian the
// paper derives κ̃(si,sj) = exp(-‖si-sj‖²/(2·(√2ε)²)) up to constants; since
// constants do not affect the minimizer, and the paper notes any proximity
// function may stand in for κ̃, Pair evaluates the kernel with bandwidth
// √2·ε for the Gaussian and the kernel itself for compact kernels.
func (f Func) Pair(p, q geom.Point) float64 { return f.PairDist2(p.Dist2(q)) }

// PairDist2 is Pair for an already-computed squared distance.
func (f Func) PairDist2(d2 float64) float64 {
	if f.kind == Gaussian {
		// Bandwidth √2ε doubles ε², i.e. halves the exponent scale.
		return math.Exp(-d2 * f.inv2e2 / 2)
	}
	return f.EvalDist2(d2)
}

// PairSupport returns the pruning radius appropriate for Pair. For the
// Gaussian the pair kernel κ̃ at distance 6ε is exp(-9) ≈ 1.2e-4 — below
// the paper's own negligibility threshold relative to the responsibility
// magnitudes the Interchange algorithm compares — so the plain support
// radius is used; widening it to the κ̃ underflow radius (≈8.5ε) doubles
// the neighbour count for no measurable quality gain (see the fig10
// bench).
func (f Func) PairSupport() float64 {
	return f.support
}

// String implements fmt.Stringer.
func (f Func) String() string {
	return fmt.Sprintf("%s(eps=%g)", f.kind, f.eps)
}
