package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", v, 32.0/7)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of one sample should be NaN")
	}
}

func TestMedianQuantile(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
	xs := []float64{10, 20, 30, 40, 50}
	if q := Quantile(xs, 0); q != 10 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 50 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 20 {
		t.Errorf("q25 = %v", q)
	}
	if !math.IsNaN(Quantile(xs, 1.5)) || !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("invalid quantile inputs should yield NaN")
	}
	// Quantile must not mutate its input.
	orig := []float64{9, 1, 5}
	Quantile(orig, 0.5)
	if orig[0] != 9 || orig[1] != 1 || orig[2] != 5 {
		t.Error("Quantile mutated input")
	}
}

func TestMedianWithinRangeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Median(clean)
		return m >= Min(clean)-1e-9 && m <= Max(clean)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if m := Min(xs); m != -1 {
		t.Errorf("Min = %v", m)
	}
	if m := Max(xs); m != 7 {
		t.Errorf("Max = %v", m)
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty Min/Max should be NaN")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single pair: want error")
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("zero variance: want error")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone transform has |ρ| = 1.
	xs := []float64{1, 5, 2, 9, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x) // monotone but very non-linear
	}
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Errorf("Spearman of monotone transform = %v, want 1", rho)
	}
}

func TestSpearmanTies(t *testing.T) {
	// Tied values get averaged ranks; verify against a hand computation.
	xs := []float64{1, 2, 2, 3}
	ys := []float64{10, 20, 20, 30}
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Errorf("Spearman with aligned ties = %v, want 1", rho)
	}
}

func TestSpearmanAntitone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 30)
	ys := make([]float64, 30)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = -xs[i]*3 + 7 // strictly decreasing transform
	}
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho+1) > 1e-12 {
		t.Errorf("Spearman antitone = %v, want -1", rho)
	}
}

func TestSpearmanPValue(t *testing.T) {
	// Strong correlation with decent n: tiny p.
	if p := SpearmanPValue(-0.85, 12); p > 0.001 {
		t.Errorf("p(-0.85, n=12) = %v, want < 0.001", p)
	}
	// Weak correlation: large p.
	if p := SpearmanPValue(0.1, 12); p < 0.5 {
		t.Errorf("p(0.1, n=12) = %v, want > 0.5", p)
	}
	// Degenerate inputs.
	if p := SpearmanPValue(0.5, 2); p != 1 {
		t.Errorf("p with n=2 = %v, want 1", p)
	}
	if p := SpearmanPValue(1, 10); p != 0 {
		t.Errorf("p with rho=1 = %v, want 0", p)
	}
}

func TestRegIncBetaAgainstKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	if got := regIncBeta(2, 3, 0.4) + regIncBeta(3, 2, 0.6); math.Abs(got-1) > 1e-10 {
		t.Errorf("symmetry violated: %v", got)
	}
}

func TestStudentTSF(t *testing.T) {
	// For large df, t approaches the normal: P(T > 1.96) ≈ 0.025.
	if p := studentTSF(1.96, 1000); math.Abs(p-0.025) > 0.002 {
		t.Errorf("P(T>1.96, df=1000) = %v, want ≈0.025", p)
	}
	// P(T > 0) = 0.5 for any df.
	if p := studentTSF(0, 7); math.Abs(p-0.5) > 1e-10 {
		t.Errorf("P(T>0) = %v", p)
	}
}

func TestSummaryMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xs := make([]float64, 1000)
	var s Summary
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 1
		s.Add(xs[i])
	}
	if s.N() != len(xs) {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-Mean(xs)) > 1e-10 {
		t.Errorf("online mean %v vs batch %v", s.Mean(), Mean(xs))
	}
	if math.Abs(s.Variance()-Variance(xs)) > 1e-9 {
		t.Errorf("online variance %v vs batch %v", s.Variance(), Variance(xs))
	}
	if s.Min() != Min(xs) || s.Max() != Max(xs) {
		t.Errorf("extrema: (%v,%v) vs (%v,%v)", s.Min(), s.Max(), Min(xs), Max(xs))
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) || !math.IsNaN(s.Variance()) {
		t.Error("empty summary should be all NaN")
	}
}

func TestRanksAveragesTies(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestRanksPermutationProperty(t *testing.T) {
	// Without ties, ranks are a permutation of 1..n consistent with sort
	// order.
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	r := ranks(xs)
	sorted := append([]float64(nil), r...)
	sort.Float64s(sorted)
	for i := range sorted {
		if sorted[i] != float64(i+1) {
			t.Fatalf("ranks are not 1..n: %v", sorted)
		}
	}
}
