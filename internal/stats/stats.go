// Package stats provides the small statistical toolkit the evaluation
// harness needs: summary statistics, medians, Spearman rank correlation
// (Fig. 7 reports ρ = −0.85 between log-loss-ratio and user success), and
// simple online accumulators.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a statistic needs more observations
// than were supplied.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs, or NaN when fewer
// than two observations are supplied.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs without modifying it, or NaN for an empty
// slice. The paper's loss evaluation (§VI-B2) uses the median of per-point
// losses because the mean overflows double precision on bad samples.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th quantile of xs (0 <= q <= 1) using linear
// interpolation between closest ranks. It copies xs, leaving it unmodified.
// Returns NaN for empty input or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if len(cp) == 1 {
		return cp[0]
	}
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Min returns the smallest element of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ranks assigns fractional ranks (1-based, ties get the average rank), the
// convention required for Spearman correlation with ties.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := (float64(i) + float64(j)) / 2.0 // 0-based
		for k := i; k <= j; k++ {
			r[idx[k]] = avg + 1 // 1-based
		}
		i = j + 1
	}
	return r
}

// Pearson returns the Pearson correlation coefficient of the paired samples
// xs and ys. It returns an error when the lengths differ, fewer than two
// pairs are supplied, or either sample has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns Spearman's rank correlation coefficient ρ of the paired
// samples. ρ is the Pearson correlation of the rank vectors, which handles
// ties correctly. Fig. 7 of the paper reports ρ = −0.85 between a sample's
// log-loss-ratio and the user success ratio.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	return Pearson(ranks(xs), ranks(ys))
}

// SpearmanPValue returns an approximate two-sided p-value for the hypothesis
// ρ=0 using the t-distribution approximation t = ρ·√((n−2)/(1−ρ²)), valid
// for n ≳ 10. It returns 1 when the statistic is undefined.
func SpearmanPValue(rho float64, n int) float64 {
	if n < 3 || math.Abs(rho) >= 1 {
		if math.Abs(rho) >= 1 && n >= 3 {
			return 0
		}
		return 1
	}
	t := rho * math.Sqrt(float64(n-2)/(1-rho*rho))
	return 2 * studentTSF(math.Abs(t), float64(n-2))
}

// studentTSF returns P(T > t) for Student's t with v degrees of freedom,
// via the regularized incomplete beta function.
func studentTSF(t, v float64) float64 {
	x := v / (v + t*t)
	return 0.5 * regIncBeta(v/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a,b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

func betacf(a, b, x float64) float64 {
	const maxIter = 300
	const eps = 3e-14
	const fpmin = 1e-300
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Summary holds one-pass summary statistics of a stream of observations.
// The zero value is ready to use.
type Summary struct {
	n          int
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Add incorporates x using Welford's online algorithm.
func (s *Summary) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if !s.hasExtrema {
		s.min, s.max, s.hasExtrema = x, x, true
		return
	}
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the running mean, or NaN before any observation.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Variance returns the running unbiased variance, or NaN with <2 points.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the running standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or NaN before any observation.
func (s *Summary) Min() float64 {
	if !s.hasExtrema {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation, or NaN before any observation.
func (s *Summary) Max() float64 {
	if !s.hasExtrema {
		return math.NaN()
	}
	return s.max
}
