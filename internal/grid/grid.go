// Package grid implements a uniform spatial grid over a bounding rectangle.
// It serves two roles in the reproduction:
//
//  1. the stratification bins of the stratified-sampling baseline (the paper
//     uses a 316×316 grid for Fig. 1 and 100 bins for the user study), and
//  2. an alternative locality index for the Interchange ES+Loc variant,
//     used in the index ablation bench (DESIGN.md §4).
package grid

import (
	"fmt"

	"repro/internal/geom"
)

// Grid divides a bounding rectangle into Cols × Rows equal cells and stores
// point/id pairs per cell. Points outside the bounds are clamped into the
// border cells, which matches how stratified sampling treats boundary
// tuples.
type Grid struct {
	bounds     geom.Rect
	cols, rows int
	cellW      float64
	cellH      float64
	cells      [][]Item
	size       int
}

// Item is a stored point with payload id.
type Item struct {
	P  geom.Point
	ID int
}

// New returns an empty grid with the given bounds and resolution. It panics
// when cols or rows is not positive or when bounds is empty, since a
// degenerate grid would silently put every point in one cell.
func New(bounds geom.Rect, cols, rows int) *Grid {
	if cols <= 0 || rows <= 0 {
		panic(fmt.Sprintf("grid: resolution must be positive, got %dx%d", cols, rows))
	}
	if bounds.IsEmpty() {
		panic("grid: empty bounds")
	}
	g := &Grid{
		bounds: bounds,
		cols:   cols,
		rows:   rows,
		cells:  make([][]Item, cols*rows),
	}
	g.cellW = bounds.Width() / float64(cols)
	g.cellH = bounds.Height() / float64(rows)
	// Degenerate axes (all points on a line) still need a positive step so
	// CellOf stays well-defined.
	if g.cellW == 0 {
		g.cellW = 1
	}
	if g.cellH == 0 {
		g.cellH = 1
	}
	return g
}

// Cols returns the number of columns.
func (g *Grid) Cols() int { return g.cols }

// Rows returns the number of rows.
func (g *Grid) Rows() int { return g.rows }

// Len returns the number of stored items.
func (g *Grid) Len() int { return g.size }

// Bounds returns the grid extent.
func (g *Grid) Bounds() geom.Rect { return g.bounds }

// CellOf returns the (col, row) cell indices for p, clamped to the grid.
func (g *Grid) CellOf(p geom.Point) (int, int) {
	c := int((p.X - g.bounds.MinX) / g.cellW)
	r := int((p.Y - g.bounds.MinY) / g.cellH)
	if c < 0 {
		c = 0
	}
	if c >= g.cols {
		c = g.cols - 1
	}
	if r < 0 {
		r = 0
	}
	if r >= g.rows {
		r = g.rows - 1
	}
	return c, r
}

// CellIndex returns the flat index of the cell containing p.
func (g *Grid) CellIndex(p geom.Point) int {
	c, r := g.CellOf(p)
	return r*g.cols + c
}

// CellRect returns the rectangle covered by cell (col, row).
func (g *Grid) CellRect(col, row int) geom.Rect {
	return geom.Rect{
		MinX: g.bounds.MinX + float64(col)*g.cellW,
		MinY: g.bounds.MinY + float64(row)*g.cellH,
		MaxX: g.bounds.MinX + float64(col+1)*g.cellW,
		MaxY: g.bounds.MinY + float64(row+1)*g.cellH,
	}
}

// Insert stores (p, id) in the cell containing p.
func (g *Grid) Insert(p geom.Point, id int) {
	i := g.CellIndex(p)
	g.cells[i] = append(g.cells[i], Item{P: p, ID: id})
	g.size++
}

// Delete removes one item equal to (p, id); it reports whether an item was
// removed.
func (g *Grid) Delete(p geom.Point, id int) bool {
	i := g.CellIndex(p)
	cell := g.cells[i]
	for j, it := range cell {
		if it.ID == id && it.P.Equal(p) {
			cell[j] = cell[len(cell)-1]
			g.cells[i] = cell[:len(cell)-1]
			g.size--
			return true
		}
	}
	return false
}

// Cell returns the items stored in cell (col, row). The returned slice is
// owned by the grid and must not be modified.
func (g *Grid) Cell(col, row int) []Item {
	return g.cells[row*g.cols+col]
}

// Within appends every item within Euclidean distance radius of p to dst.
// Only the cells overlapping the query disc's bounding box are scanned.
func (g *Grid) Within(p geom.Point, radius float64, dst []Item) []Item {
	r2 := radius * radius
	c0, r0 := g.CellOf(geom.Pt(p.X-radius, p.Y-radius))
	c1, r1 := g.CellOf(geom.Pt(p.X+radius, p.Y+radius))
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			for _, it := range g.cells[row*g.cols+col] {
				if it.P.Dist2(p) <= r2 {
					dst = append(dst, it)
				}
			}
		}
	}
	return dst
}

// Counts returns the per-cell item counts in row-major order. The
// stratified baseline uses these to compute the most-balanced allocation.
func (g *Grid) Counts() []int {
	out := make([]int, len(g.cells))
	for i, c := range g.cells {
		out[i] = len(c)
	}
	return out
}

// NonEmptyCells returns the flat indices of cells holding at least one item.
func (g *Grid) NonEmptyCells() []int {
	var out []int
	for i, c := range g.cells {
		if len(c) > 0 {
			out = append(out, i)
		}
	}
	return out
}
