package grid

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func bounds10() geom.Rect { return geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10} }

func TestCellOfClamping(t *testing.T) {
	g := New(bounds10(), 5, 5)
	cases := []struct {
		p    geom.Point
		c, r int
	}{
		{geom.Pt(0, 0), 0, 0},
		{geom.Pt(9.99, 9.99), 4, 4},
		{geom.Pt(10, 10), 4, 4}, // max boundary clamps into last cell
		{geom.Pt(-5, 3), 0, 1},  // outside left clamps
		{geom.Pt(15, 20), 4, 4}, // outside top-right clamps
		{geom.Pt(4.999, 5.0), 2, 2},
	}
	for _, tc := range cases {
		c, r := g.CellOf(tc.p)
		if c != tc.c || r != tc.r {
			t.Errorf("CellOf(%v) = (%d,%d), want (%d,%d)", tc.p, c, r, tc.c, tc.r)
		}
	}
}

func TestCellRectTilesBounds(t *testing.T) {
	g := New(bounds10(), 4, 3)
	// Every cell rect's centre maps back to that cell.
	for row := 0; row < 3; row++ {
		for col := 0; col < 4; col++ {
			c := g.CellRect(col, row).Center()
			gc, gr := g.CellOf(c)
			if gc != col || gr != row {
				t.Errorf("cell (%d,%d) centre %v maps to (%d,%d)", col, row, c, gc, gr)
			}
		}
	}
}

func TestInsertDeleteLen(t *testing.T) {
	g := New(bounds10(), 8, 8)
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 200)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
		g.Insert(pts[i], i)
	}
	if g.Len() != 200 {
		t.Fatalf("Len = %d", g.Len())
	}
	if !g.Delete(pts[7], 7) {
		t.Fatal("delete failed")
	}
	if g.Delete(pts[7], 7) {
		t.Fatal("double delete succeeded")
	}
	if g.Len() != 199 {
		t.Errorf("Len = %d after delete", g.Len())
	}
	if g.Delete(geom.Pt(5, 5), 99999) {
		t.Error("deleting a missing id succeeded")
	}
}

func TestWithinMatchesBruteForce(t *testing.T) {
	g := New(bounds10(), 7, 7)
	rng := rand.New(rand.NewSource(2))
	pts := make([]geom.Point, 400)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
		g.Insert(pts[i], i)
	}
	for q := 0; q < 50; q++ {
		c := geom.Pt(rng.Float64()*12-1, rng.Float64()*12-1)
		radius := rng.Float64() * 4
		var got []int
		for _, it := range g.Within(c, radius, nil) {
			got = append(got, it.ID)
		}
		sort.Ints(got)
		var want []int
		for i, p := range pts {
			if p.Dist(c) <= radius {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Within(%v, %v): got %d, want %d", c, radius, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Within mismatch at %d", i)
			}
		}
	}
}

func TestCountsAndNonEmpty(t *testing.T) {
	g := New(bounds10(), 2, 2)
	g.Insert(geom.Pt(1, 1), 0)   // cell (0,0) -> idx 0
	g.Insert(geom.Pt(9, 1), 1)   // cell (1,0) -> idx 1
	g.Insert(geom.Pt(9, 9), 2)   // cell (1,1) -> idx 3
	g.Insert(geom.Pt(9.5, 9), 3) // cell (1,1)
	counts := g.Counts()
	want := []int{1, 1, 0, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("Counts = %v, want %v", counts, want)
		}
	}
	ne := g.NonEmptyCells()
	if len(ne) != 3 || ne[0] != 0 || ne[1] != 1 || ne[2] != 3 {
		t.Errorf("NonEmptyCells = %v", ne)
	}
}

func TestDegenerateBounds(t *testing.T) {
	// All points on a vertical line: grid must still work.
	b := geom.Rect{MinX: 5, MinY: 0, MaxX: 5, MaxY: 10}
	g := New(b, 4, 4)
	g.Insert(geom.Pt(5, 2), 0)
	g.Insert(geom.Pt(5, 9), 1)
	if g.Len() != 2 {
		t.Fatal("insert on degenerate bounds failed")
	}
	got := g.Within(geom.Pt(5, 2), 0.5, nil)
	if len(got) != 1 || got[0].ID != 0 {
		t.Errorf("Within on degenerate bounds = %v", got)
	}
}

func TestNewPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"zero cols", func() { New(bounds10(), 0, 5) }},
		{"negative rows", func() { New(bounds10(), 5, -1) }},
		{"empty bounds", func() { New(geom.EmptyRect(), 5, 5) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}
