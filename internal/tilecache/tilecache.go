// Package tilecache caches rendered PNG tiles for the serving layer. The
// hot path of a tile server is dominated by re-rendering the same tiles —
// map clients fan out over a small working set of (z, x, y) addresses — so
// the cache keeps encoded PNG bytes keyed by the full render identity
// (base table, sample table, tile address, pixel size) behind a sharded
// LRU with byte-size-bounded eviction.
//
// Two production concerns are handled beyond plain LRU:
//
//   - single-flight: concurrent requests for the same missing tile are
//     deduplicated; one goroutine renders while the rest wait for its
//     result, so a popular cold tile costs one render, not N.
//
//   - invalidation: when a sample is (re)registered for a table, every
//     cached tile of that table is dropped, so clients never see tiles
//     rendered from stale samples.
package tilecache

import (
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// ErrRenderPanic is returned to single-flight waiters whose leader's
// render function panicked instead of returning.
var ErrRenderPanic = errors.New("tilecache: render panicked")

// Key identifies one rendered tile.
type Key struct {
	// Table is the base table the tile visualizes.
	Table string
	// Sample is the sample table actually rendered (budget-dependent).
	Sample string
	// Epoch is the caller's invalidation generation for Table. Callers
	// that replace table contents in place (reload, sample re-publish)
	// must bump it with every invalidation: a render in flight across an
	// invalidation then completes under the old epoch's key, which no
	// post-invalidation request ever asks for, so stale pixels can never
	// surface as a hit.
	Epoch uint64
	// Z, X, Y address the tile in the table's extent (geom.TileRect).
	Z, X, Y int
	// Size is the tile edge in pixels.
	Size int
	// Filters is the canonical encoding of the request's pushed-down
	// predicates (sorted, normalized by the server), empty for an
	// unfiltered tile. Two requests with the same predicate set in
	// different spellings must canonicalize to the same string, and any
	// differing predicate set must differ here — otherwise one filter's
	// pixels would surface under another's key.
	Filters string
}

const numShards = 16

// entry is a cached tile on a shard's intrusive LRU list. meta carries
// the render's caller-defined sidecar (scan statistics for response
// headers); it rides along with the bytes so a cache hit can answer
// with the same metadata the original render produced.
type entry struct {
	key        Key
	val        []byte
	meta       any
	prev, next *entry
}

// call is an in-flight render other goroutines can wait on.
type call struct {
	done chan struct{}
	val  []byte
	meta any
	err  error
}

// shard is one lock domain: a map plus an intrusive LRU list bounded by
// bytes. head is most recently used, tail is the eviction candidate.
type shard struct {
	mu       sync.Mutex
	entries  map[Key]*entry
	flight   map[Key]*call
	head     *entry
	tail     *entry
	bytes    int64
	maxBytes int64
}

// Cache is a sharded LRU over rendered tile bytes. Safe for concurrent
// use.
type Cache struct {
	shards [numShards]shard

	hits      atomic.Int64
	misses    atomic.Int64
	waits     atomic.Int64
	evictions atomic.Int64
}

// DefaultMaxBytes is the cache capacity used when New is given a
// non-positive budget: 64 MiB, roughly 16k small PNG tiles.
const DefaultMaxBytes = 64 << 20

// New returns a cache bounded to maxBytes of encoded tile data (split
// evenly across shards). Non-positive maxBytes means DefaultMaxBytes.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	c := &Cache{}
	per := maxBytes / numShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*entry)
		c.shards[i].flight = make(map[Key]*call)
		c.shards[i].maxBytes = per
	}
	return c
}

// shardOf hashes the key onto a shard.
func (c *Cache) shardOf(k Key) *shard {
	h := fnv.New32a()
	h.Write([]byte(k.Table))
	h.Write([]byte{0})
	h.Write([]byte(k.Sample))
	h.Write([]byte{0})
	h.Write([]byte(k.Filters))
	var b [20]byte
	for i, v := range [5]int{k.Z, k.X, k.Y, k.Size, int(uint32(k.Epoch))} {
		b[4*i] = byte(v)
		b[4*i+1] = byte(v >> 8)
		b[4*i+2] = byte(v >> 16)
		b[4*i+3] = byte(v >> 24)
	}
	h.Write(b[:])
	return &c.shards[h.Sum32()%numShards]
}

// Get returns the cached tile bytes, or nil when absent. The returned
// slice must not be modified.
func (c *Cache) Get(k Key) []byte {
	s := c.shardOf(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[k]; ok {
		s.moveToFront(e)
		c.hits.Add(1)
		return e.val
	}
	return nil
}

// GetOrRender returns the cached tile, or renders and caches it. When
// several goroutines miss on the same key at once, exactly one runs
// render; the rest wait for its result (a render error is propagated to
// all waiters and nothing is cached). hit reports whether the bytes came
// straight from the cache without waiting on a render. meta is the
// sidecar render returned, cached alongside the bytes and served back
// on every hit (nil for entries inserted via Put). The returned bytes
// must not be modified.
func (c *Cache) GetOrRender(k Key, render func() ([]byte, any, error)) (val []byte, meta any, hit bool, err error) {
	s := c.shardOf(k)
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		s.moveToFront(e)
		s.mu.Unlock()
		c.hits.Add(1)
		return e.val, e.meta, true, nil
	}
	if fl, ok := s.flight[k]; ok {
		s.mu.Unlock()
		c.waits.Add(1)
		<-fl.done
		return fl.val, fl.meta, false, fl.err
	}
	fl := &call{done: make(chan struct{})}
	s.flight[k] = fl
	s.mu.Unlock()
	c.misses.Add(1)

	// The flight entry MUST be cleared and its done channel closed even
	// when render panics — otherwise every later request for this key
	// blocks forever on a dead flight. The panic itself propagates to the
	// caller (net/http recovers per-connection); waiters get ErrRenderPanic.
	completed := false
	defer func() {
		if !completed && fl.err == nil {
			fl.err = ErrRenderPanic
		}
		s.mu.Lock()
		delete(s.flight, k)
		if fl.err == nil {
			c.evictions.Add(s.insert(k, fl.val, fl.meta))
		}
		s.mu.Unlock()
		close(fl.done)
	}()
	fl.val, fl.meta, fl.err = render()
	completed = true
	return fl.val, fl.meta, false, fl.err
}

// Put inserts (or replaces) a tile.
func (c *Cache) Put(k Key, val []byte) {
	s := c.shardOf(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[k]; ok {
		s.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		e.meta = nil
		s.moveToFront(e)
		c.evictions.Add(s.evict())
		return
	}
	c.evictions.Add(s.insert(k, val, nil))
}

// InvalidateTable drops every cached tile (and nothing else) whose key
// references the given base table, across all epochs. In-flight renders
// are not cancelled; their results land in the cache after the
// invalidation under the epoch they started with — harmless as long as
// the caller bumps Key.Epoch with every invalidation (the stale entry is
// unreachable and ages out of the LRU).
func (c *Cache) InvalidateTable(table string) int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, e := range s.entries {
			if k.Table == table {
				s.remove(e)
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// InvalidateAll empties the cache.
func (c *Cache) InvalidateAll() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, e := range s.entries {
			s.remove(e)
		}
		s.mu.Unlock()
	}
}

// Stats is a point-in-time cache counter snapshot.
type Stats struct {
	// Hits counts lookups served from the cache.
	Hits int64
	// Misses counts lookups that triggered a render.
	Misses int64
	// Waits counts lookups that piggybacked on an in-flight render.
	Waits int64
	// Evictions counts entries dropped to stay within the byte budget.
	Evictions int64
	// Bytes and Entries describe current occupancy.
	Bytes   int64
	Entries int
}

// HitRatio returns Hits / (Hits + Misses), or 0 before any traffic.
// Single-flight waiters are excluded: they neither hit the cache nor paid
// for a render.
func (st Stats) HitRatio() float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// Stats returns current counters.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Waits:     c.waits.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Bytes += s.bytes
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	return st
}

// ---- shard internals (caller holds s.mu) ----

// insert adds a new entry at the front and evicts from the tail; it
// returns the number of evictions. A value larger than the whole shard
// budget is not cached at all (it would only evict everything else and
// then be evicted itself on the next insert).
func (s *shard) insert(k Key, val []byte, meta any) int64 {
	if int64(len(val)) > s.maxBytes {
		return 0
	}
	e := &entry{key: k, val: val, meta: meta}
	s.entries[k] = e
	s.pushFront(e)
	s.bytes += int64(len(val))
	return s.evict()
}

// evict drops tail entries until the shard fits its byte budget.
func (s *shard) evict() int64 {
	var n int64
	for s.bytes > s.maxBytes && s.tail != nil {
		s.remove(s.tail)
		n++
	}
	return n
}

func (s *shard) remove(e *entry) {
	delete(s.entries, e.key)
	s.bytes -= int64(len(e.val))
	s.unlink(e)
}

func (s *shard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.head == e {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
