package tilecache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func key(table string, z, x, y int) Key {
	return Key{Table: table, Sample: table + "_vas_100", Z: z, X: x, Y: y, Size: 256}
}

func TestGetOrRenderCachesAndHits(t *testing.T) {
	c := New(1 << 20)
	renders := 0
	render := func() ([]byte, any, error) {
		renders++
		return []byte("tile-bytes"), "sidecar", nil
	}
	v, meta, hit, err := c.GetOrRender(key("t", 1, 0, 0), render)
	if err != nil || hit || !bytes.Equal(v, []byte("tile-bytes")) {
		t.Fatalf("first fetch: v=%q hit=%v err=%v", v, hit, err)
	}
	if meta != "sidecar" {
		t.Fatalf("first fetch meta = %v, want sidecar", meta)
	}
	v, meta, hit, err = c.GetOrRender(key("t", 1, 0, 0), render)
	if err != nil || !hit || !bytes.Equal(v, []byte("tile-bytes")) {
		t.Fatalf("second fetch: v=%q hit=%v err=%v", v, hit, err)
	}
	if meta != "sidecar" {
		t.Fatalf("cache hit lost the render meta: got %v", meta)
	}
	if renders != 1 {
		t.Errorf("renders = %d, want 1", renders)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if got := st.HitRatio(); got != 0.5 {
		t.Errorf("hit ratio = %g, want 0.5", got)
	}
}

func TestRenderErrorNotCached(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("render failed")
	if _, _, _, err := c.GetOrRender(key("t", 0, 0, 0), func() ([]byte, any, error) { return nil, nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// The failure is not cached: the next call renders again.
	v, _, hit, err := c.GetOrRender(key("t", 0, 0, 0), func() ([]byte, any, error) { return []byte("ok"), nil, nil })
	if err != nil || hit || string(v) != "ok" {
		t.Fatalf("retry after error: v=%q hit=%v err=%v", v, hit, err)
	}
}

func TestByteBoundedEviction(t *testing.T) {
	// Shard budget = 4 KiB per shard; 1 KiB tiles -> at most 4 per shard.
	c := New(4096 * numShards)
	tile := make([]byte, 1024)
	for i := 0; i < 200; i++ {
		c.Put(key("t", 10, i, 0), tile)
	}
	st := c.Stats()
	if st.Bytes > 4096*numShards {
		t.Errorf("cache bytes %d exceed budget %d", st.Bytes, 4096*numShards)
	}
	if st.Evictions == 0 {
		t.Error("expected evictions under byte pressure")
	}
	if st.Entries == 0 {
		t.Error("cache should retain recent entries")
	}
}

func TestLRUOrder(t *testing.T) {
	// One key per distinct address; keep a shard small enough for 2
	// one-byte... use sizes: budget lets ~3 small entries per shard. To
	// make the test deterministic, use keys that land on the same shard
	// by construction: identical fields except Z, filtered by probing.
	c := New(64 * numShards) // 64 bytes per shard
	var sameShard []Key
	target := c.shardOf(key("t", 0, 0, 0))
	for z := 0; len(sameShard) < 3 && z < 10_000; z++ {
		k := key("t", z, 0, 0)
		if c.shardOf(k) == target {
			sameShard = append(sameShard, k)
		}
	}
	if len(sameShard) < 3 {
		t.Fatal("could not find colliding keys")
	}
	val := make([]byte, 30) // 2 fit, 3rd evicts the LRU
	c.Put(sameShard[0], val)
	c.Put(sameShard[1], val)
	// Touch [0] so [1] becomes LRU.
	if got := c.Get(sameShard[0]); got == nil {
		t.Fatal("entry 0 missing before eviction")
	}
	c.Put(sameShard[2], val)
	if got := c.Get(sameShard[0]); got == nil {
		t.Error("recently used entry was evicted")
	}
	if got := c.Get(sameShard[1]); got != nil {
		t.Error("LRU entry survived eviction")
	}
}

func TestOversizedValueNotCached(t *testing.T) {
	c := New(128 * numShards)
	huge := make([]byte, 4096)
	v, _, hit, err := c.GetOrRender(key("t", 0, 0, 0), func() ([]byte, any, error) { return huge, nil, nil })
	if err != nil || hit || len(v) != len(huge) {
		t.Fatalf("oversized render: len=%d hit=%v err=%v", len(v), hit, err)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("oversized value was cached: %+v", st)
	}
}

func TestSingleFlight(t *testing.T) {
	c := New(1 << 20)
	var renders atomic.Int32
	gate := make(chan struct{})
	const goroutines = 32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, _, _, err := c.GetOrRender(key("t", 3, 1, 2), func() ([]byte, any, error) {
				renders.Add(1)
				<-gate // hold the render so the others pile up
				return []byte("once"), nil, nil
			})
			if err != nil || string(v) != "once" {
				t.Errorf("v=%q err=%v", v, err)
			}
		}()
	}
	close(start)
	close(gate)
	wg.Wait()
	if got := renders.Load(); got != 1 {
		t.Errorf("renders = %d, want 1 (single-flight)", got)
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Waits != goroutines-1 {
		t.Errorf("hits+waits = %d, want %d", st.Hits+st.Waits, goroutines-1)
	}
}

func TestRenderPanicDoesNotWedgeKey(t *testing.T) {
	c := New(1 << 20)
	k := key("t", 4, 4, 4)
	// Leader panics mid-render with waiters queued behind it.
	var waiters sync.WaitGroup
	leaderIn := make(chan struct{})
	for i := 0; i < 4; i++ {
		waiters.Add(1)
		go func() {
			defer waiters.Done()
			<-leaderIn
			// A waiter piggybacking on the doomed flight sees
			// ErrRenderPanic; one arriving after cleanup renders fresh.
			// Both are acceptable — blocking forever is not.
			_, _, _, err := c.GetOrRender(k, func() ([]byte, any, error) { return []byte("recovered"), nil, nil })
			if err != nil && !errors.Is(err, ErrRenderPanic) {
				t.Errorf("waiter err = %v", err)
			}
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		c.GetOrRender(k, func() ([]byte, any, error) {
			close(leaderIn)
			panic("render exploded")
		})
	}()
	waiters.Wait()
	// The key is usable again.
	v, _, _, err := c.GetOrRender(k, func() ([]byte, any, error) { return []byte("recovered"), nil, nil })
	if err != nil || string(v) != "recovered" {
		t.Fatalf("post-panic fetch: v=%q err=%v", v, err)
	}
}

func TestInvalidateTable(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < 50; i++ {
		c.Put(key("keep", 6, i, i), []byte("k"))
		c.Put(key("drop", 6, i, i), []byte("d"))
	}
	if n := c.InvalidateTable("drop"); n != 50 {
		t.Errorf("invalidated %d, want 50", n)
	}
	for i := 0; i < 50; i++ {
		if c.Get(key("drop", 6, i, i)) != nil {
			t.Fatalf("dropped table tile %d still cached", i)
		}
		if c.Get(key("keep", 6, i, i)) == nil {
			t.Fatalf("unrelated tile %d was invalidated", i)
		}
	}
	c.InvalidateAll()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("InvalidateAll left %+v", st)
	}
}

func TestConcurrentMixedUse(t *testing.T) {
	c := New(32 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(fmt.Sprintf("t%d", i%3), i%5, i%7, g)
				switch i % 4 {
				case 0:
					c.Get(k)
				case 1:
					c.Put(k, []byte("abcdefgh"))
				case 2:
					_, _, _, _ = c.GetOrRender(k, func() ([]byte, any, error) { return []byte("r"), nil, nil })
				case 3:
					c.InvalidateTable("t1")
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes < 0 {
		t.Errorf("negative byte accounting: %+v", st)
	}
}
