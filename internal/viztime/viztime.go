// Package viztime models visualization production latency, regenerating
// Fig. 2 and Fig. 4 of the paper.
//
// The paper times two closed/unavailable systems — Tableau (commercial,
// Windows-only) and MathGL (C++ plotting library) — so this package
// substitutes calibrated cost models (DESIGN.md §3, substitution 3): the
// paper's own measurements show latency is linear in the number of
// visualized tuples ("visualization time grew linearly with sample size"),
// composed of a fixed startup cost, a per-tuple fetch cost, and a per-tuple
// render cost. The model constants are fitted to the published curves
// (Tableau: >4 min at 50M in-memory tuples; both systems >2s at 1M; MathGL
// several times faster than Tableau at equal size).
//
// A Measured implementation that times this repository's real renderer is
// also provided so the linear-latency premise can be checked against an
// actual code path rather than only asserted.
package viztime

import (
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/render"
)

// Model predicts visualization production time for a tuple count.
type Model interface {
	// Name identifies the modeled system.
	Name() string
	// Time returns the predicted latency to fetch and render n tuples.
	Time(n int) time.Duration
}

// LinearModel is startup + n·(fetch + render).
type LinearModel struct {
	System   string
	Startup  time.Duration
	PerFetch time.Duration // per-tuple transfer/deserialize cost
	PerDraw  time.Duration // per-tuple rasterize cost
}

// Name implements Model.
func (m LinearModel) Name() string { return m.System }

// Time implements Model.
func (m LinearModel) Time(n int) time.Duration {
	if n < 0 {
		n = 0
	}
	return m.Startup + time.Duration(n)*(m.PerFetch+m.PerDraw)
}

// Tableau returns the model fitted to the paper's Tableau measurements:
// ≈250s for a 50M-tuple in-memory scatter plot (Fig. 2 reports "over 4
// minutes"), ≈5s at 1M, ≈1.5s startup.
func Tableau() LinearModel {
	return LinearModel{
		System:   "tableau",
		Startup:  1500 * time.Millisecond,
		PerFetch: 3 * time.Microsecond,
		PerDraw:  2 * time.Microsecond,
	}
}

// MathGL returns the model fitted to the paper's MathGL measurements:
// linear like Tableau but a small constant factor faster, with SSD load
// dominating the per-tuple cost.
func MathGL() LinearModel {
	return LinearModel{
		System:   "mathgl",
		Startup:  200 * time.Millisecond,
		PerFetch: 800 * time.Nanosecond,
		PerDraw:  700 * time.Nanosecond,
	}
}

// InteractiveLimit is the upper bound of the HCI interactivity window the
// paper cites (500ms–2s); visualizations slower than this break the user's
// flow.
const InteractiveLimit = 2 * time.Second

// MaxInteractiveTuples returns the largest tuple count m can visualize
// within the interactive limit.
func MaxInteractiveTuples(m Model) int {
	if m.Time(0) > InteractiveLimit {
		return 0
	}
	// Latency is monotone in n; binary search the crossover.
	lo, hi := 0, 1
	for m.Time(hi) <= InteractiveLimit {
		hi *= 2
		if hi >= 1<<40 {
			return hi
		}
	}
	for lo < hi-1 {
		mid := lo + (hi-lo)/2
		if m.Time(mid) <= InteractiveLimit {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// TuplesWithin returns the largest tuple count renderable within budget,
// the conversion VAS performs when a query arrives with a time bound
// ("VAS chooses an appropriate sample size by converting the specified
// time bound into the number of tuples", §I).
func TuplesWithin(m Model, budget time.Duration) int {
	if m.Time(0) > budget {
		return 0
	}
	lo, hi := 0, 1
	for m.Time(hi) <= budget {
		hi *= 2
		if hi >= 1<<40 {
			return hi
		}
	}
	for lo < hi-1 {
		mid := lo + (hi-lo)/2
		if m.Time(mid) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Measured times this repository's real renderer on synthetic points and
// satisfies Model by interpolating measurements. It exists to validate the
// linearity premise with a live code path.
type Measured struct {
	W, H int
}

// Name implements Model.
func (m Measured) Name() string { return "internal-renderer" }

// Time implements Model by actually rasterizing n synthetic points.
func (m Measured) Time(n int) time.Duration {
	w, h := m.W, m.H
	if w <= 0 {
		w = 512
	}
	if h <= 0 {
		h = 512
	}
	pts := make([]geom.Point, n)
	// Deterministic low-discrepancy fill; generation cost is part of the
	// "fetch" phase just as the paper's load-from-memory is.
	var x, y float64
	for i := range pts {
		x += 0.754877666
		y += 0.569840296
		if x >= 1 {
			x--
		}
		if y >= 1 {
			y--
		}
		pts[i] = geom.Pt(x, y)
	}
	start := time.Now()
	r := render.NewRaster(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, w, h)
	r.Plot(pts)
	_ = r.Image()
	return time.Since(start)
}

// Series is one latency curve: tuple counts and the predicted times.
type Series struct {
	System string
	Sizes  []int
	Times  []time.Duration
}

// Sweep evaluates m across sizes and returns the curve.
func Sweep(m Model, sizes []int) Series {
	s := Series{System: m.Name(), Sizes: sizes, Times: make([]time.Duration, len(sizes))}
	for i, n := range sizes {
		s.Times[i] = m.Time(n)
	}
	return s
}

// String renders the series as aligned rows for harness output.
func (s Series) String() string {
	out := fmt.Sprintf("%s:", s.System)
	for i := range s.Sizes {
		out += fmt.Sprintf(" %d=%s", s.Sizes[i], s.Times[i].Round(time.Millisecond))
	}
	return out
}
