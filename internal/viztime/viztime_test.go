package viztime

import (
	"testing"
	"time"
)

func TestLinearModel(t *testing.T) {
	m := LinearModel{System: "x", Startup: time.Second, PerFetch: time.Microsecond, PerDraw: time.Microsecond}
	if got := m.Time(0); got != time.Second {
		t.Errorf("Time(0) = %v", got)
	}
	if got := m.Time(1_000_000); got != time.Second+2*time.Second {
		t.Errorf("Time(1M) = %v, want 3s", got)
	}
	if got := m.Time(-5); got != time.Second {
		t.Errorf("negative n: %v", got)
	}
	if m.Name() != "x" {
		t.Error("Name mismatch")
	}
}

func TestPaperShapeTableau(t *testing.T) {
	tab := Tableau()
	// Fig. 2 anchor: >4 minutes at 50M in-memory tuples.
	if got := tab.Time(50_000_000); got < 4*time.Minute {
		t.Errorf("Tableau at 50M = %v, paper reports > 4 minutes", got)
	}
	// Fig. 4 anchor: already beyond the interactive limit at 1M.
	if got := tab.Time(1_000_000); got <= InteractiveLimit {
		t.Errorf("Tableau at 1M = %v, should exceed the 2s interactive limit", got)
	}
}

func TestPaperShapeMathGL(t *testing.T) {
	mgl := MathGL()
	tab := Tableau()
	// MathGL is faster than Tableau at every size but still misses the
	// interactive limit at 2M+.
	for _, n := range []int{1_000_000, 10_000_000, 100_000_000} {
		if mgl.Time(n) >= tab.Time(n) {
			t.Errorf("MathGL slower than Tableau at %d", n)
		}
	}
	if mgl.Time(2_000_000) <= InteractiveLimit {
		t.Errorf("MathGL at 2M = %v, should exceed 2s", mgl.Time(2_000_000))
	}
}

func TestMaxInteractiveTuplesInvertsTime(t *testing.T) {
	for _, m := range []Model{Tableau(), MathGL()} {
		n := MaxInteractiveTuples(m)
		if n <= 0 {
			t.Fatalf("%s: no interactive tuple count", m.Name())
		}
		if m.Time(n) > InteractiveLimit {
			t.Errorf("%s: Time(%d) = %v exceeds the limit", m.Name(), n, m.Time(n))
		}
		if m.Time(n+1) <= InteractiveLimit {
			t.Errorf("%s: %d is not maximal", m.Name(), n)
		}
	}
}

func TestTuplesWithin(t *testing.T) {
	m := Tableau()
	for _, budget := range []time.Duration{3 * time.Second, 10 * time.Second, time.Minute} {
		n := TuplesWithin(m, budget)
		if m.Time(n) > budget {
			t.Errorf("budget %v: Time(%d) = %v over budget", budget, n, m.Time(n))
		}
		if m.Time(n+1) <= budget {
			t.Errorf("budget %v: %d not maximal", budget, n)
		}
	}
	// Budget below startup: zero tuples.
	if n := TuplesWithin(m, time.Millisecond); n != 0 {
		t.Errorf("sub-startup budget admits %d tuples", n)
	}
}

func TestMonotoneBudgetProperty(t *testing.T) {
	m := MathGL()
	prev := -1
	for _, budget := range []time.Duration{
		500 * time.Millisecond, time.Second, 2 * time.Second,
		5 * time.Second, 30 * time.Second,
	} {
		n := TuplesWithin(m, budget)
		if n < prev {
			t.Fatalf("tuple budget decreased: %d after %d", n, prev)
		}
		prev = n
	}
}

func TestMeasuredRendererRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("real rendering timing")
	}
	meas := Measured{W: 64, H: 64}
	d := meas.Time(10_000)
	if d <= 0 {
		t.Errorf("measured time %v", d)
	}
	if meas.Name() == "" {
		t.Error("empty name")
	}
}

func TestSweep(t *testing.T) {
	s := Sweep(Tableau(), []int{10, 20})
	if len(s.Times) != 2 || s.Times[1] <= s.Times[0] {
		t.Errorf("sweep = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty string rendering")
	}
}
