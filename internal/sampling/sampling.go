// Package sampling implements the two baseline data-reduction methods the
// paper compares VAS against (§VI-B1):
//
//   - uniform random sampling via the single-pass reservoir method, and
//   - stratified sampling over a spatial grid with the "most balanced"
//     per-bin allocation the paper describes.
//
// Both consume points as a stream through the Sampler interface so that the
// same driver code feeds VAS and the baselines identically.
package sampling

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/grid"
)

// Sampler consumes a stream of points and can produce the current sample.
// Implementations: Reservoir, Stratified, and vas.Interchange.
type Sampler interface {
	// Add offers one data point (with its dataset index) to the sampler.
	Add(p geom.Point, id int)
	// Sample returns the selected points. The returned slice is a copy.
	Sample() []geom.Point
	// SampleIDs returns the dataset indices of the selected points, in the
	// same order as Sample.
	SampleIDs() []int
}

// Run streams all of pts through s in index order and returns the sample.
func Run(s Sampler, pts []geom.Point) []geom.Point {
	for i, p := range pts {
		s.Add(p, i)
	}
	return s.Sample()
}

// Reservoir implements uniform random sampling with Vitter's Algorithm R:
// a single pass, O(1) work per element, and a uniformly random K-subset at
// every prefix of the stream.
type Reservoir struct {
	k    int
	rng  *rand.Rand
	seen int
	pts  []geom.Point
	ids  []int
}

// NewReservoir returns a reservoir sampler of size k seeded with seed. It
// panics when k is not positive.
func NewReservoir(k int, seed int64) *Reservoir {
	if k <= 0 {
		panic(fmt.Sprintf("sampling: reservoir size must be positive, got %d", k))
	}
	return &Reservoir{
		k:   k,
		rng: rand.New(rand.NewSource(seed)),
		pts: make([]geom.Point, 0, k),
		ids: make([]int, 0, k),
	}
}

// Add implements Sampler.
func (r *Reservoir) Add(p geom.Point, id int) {
	r.seen++
	if len(r.pts) < r.k {
		r.pts = append(r.pts, p)
		r.ids = append(r.ids, id)
		return
	}
	if j := r.rng.Intn(r.seen); j < r.k {
		r.pts[j] = p
		r.ids[j] = id
	}
}

// Seen returns how many points have been offered.
func (r *Reservoir) Seen() int { return r.seen }

// Sample implements Sampler.
func (r *Reservoir) Sample() []geom.Point {
	out := make([]geom.Point, len(r.pts))
	copy(out, r.pts)
	return out
}

// SampleIDs implements Sampler.
func (r *Reservoir) SampleIDs() []int {
	out := make([]int, len(r.ids))
	copy(out, r.ids)
	return out
}

// Stratified implements grid-stratified sampling: the domain is divided
// into Cols×Rows non-overlapping bins and an independent reservoir runs in
// each bin. When sampling finishes, the per-bin reservoirs are combined
// using the most-balanced allocation (§VI-B1): every bin contributes
// ⌊K/bins⌋..⌈K/bins⌉ points when it can; bins with fewer points contribute
// everything they have and the shortfall is redistributed to the others.
//
// Stratified must know the data bounds up front (to define the bins); this
// matches the paper's offline setting where samples are built from a stored
// table whose extent is known.
type Stratified struct {
	k       int
	rng     *rand.Rand
	g       *grid.Grid
	bins    []*binReservoir
	seen    int
	binning string
}

type binReservoir struct {
	pts  []geom.Point
	ids  []int
	seen int
}

// NewStratified returns a stratified sampler of total size k over bounds
// divided into cols×rows bins.
func NewStratified(k int, bounds geom.Rect, cols, rows int, seed int64) *Stratified {
	if k <= 0 {
		panic(fmt.Sprintf("sampling: stratified size must be positive, got %d", k))
	}
	g := grid.New(bounds, cols, rows)
	return &Stratified{
		k:       k,
		rng:     rand.New(rand.NewSource(seed)),
		g:       g,
		bins:    make([]*binReservoir, cols*rows),
		binning: fmt.Sprintf("%dx%d", cols, rows),
	}
}

// NewStratifiedSquare returns a stratified sampler with bins^2 cells, the
// shape used for the paper's map plots (316×316) and user study (10×10 for
// "100 exclusive bins").
func NewStratifiedSquare(k int, bounds geom.Rect, bins int, seed int64) *Stratified {
	return NewStratified(k, bounds, bins, bins, seed)
}

// perBinCap is how many points each bin's reservoir retains. Keeping k
// per bin guarantees the final allocation can always be satisfied exactly
// as if every bin had run an unbounded reservoir, at bounded memory.
func (s *Stratified) perBinCap() int { return s.k }

// Add implements Sampler.
func (s *Stratified) Add(p geom.Point, id int) {
	s.seen++
	i := s.g.CellIndex(p)
	b := s.bins[i]
	if b == nil {
		b = &binReservoir{}
		s.bins[i] = b
	}
	b.seen++
	if len(b.pts) < s.perBinCap() {
		b.pts = append(b.pts, p)
		b.ids = append(b.ids, id)
		return
	}
	if j := s.rng.Intn(b.seen); j < s.perBinCap() {
		b.pts[j] = p
		b.ids[j] = id
	}
}

// allocation computes per-bin draw counts using the most-balanced rule.
// Bins are filled greedily one point at a time in rounds, which reproduces
// the paper's example: with 2 bins and K=100, a bin holding only 10 points
// contributes all 10 and the other contributes 90.
func (s *Stratified) allocation() []int {
	avail := make([]int, len(s.bins))
	nonEmpty := 0
	total := 0
	for i, b := range s.bins {
		if b != nil {
			avail[i] = len(b.pts)
			if avail[i] > 0 {
				nonEmpty++
			}
			total += avail[i]
		}
	}
	alloc := make([]int, len(s.bins))
	if nonEmpty == 0 {
		return alloc
	}
	want := s.k
	if want > total {
		want = total
	}
	// Round-robin allocation: repeatedly give one slot to every bin that
	// still has unused points, in index order, until the budget is spent.
	for want > 0 {
		progressed := false
		for i := range s.bins {
			if want == 0 {
				break
			}
			if alloc[i] < avail[i] {
				alloc[i]++
				want--
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return alloc
}

// Sample implements Sampler.
func (s *Stratified) Sample() []geom.Point {
	pts, _ := s.sampleWithIDs()
	return pts
}

// SampleIDs implements Sampler.
func (s *Stratified) SampleIDs() []int {
	_, ids := s.sampleWithIDs()
	return ids
}

func (s *Stratified) sampleWithIDs() ([]geom.Point, []int) {
	alloc := s.allocation()
	var pts []geom.Point
	var ids []int
	for i, b := range s.bins {
		if b == nil || alloc[i] == 0 {
			continue
		}
		// The reservoir already holds a uniform subset; take the first
		// alloc[i] after a deterministic shuffle keyed on bin index so
		// repeated calls agree.
		order := make([]int, len(b.pts))
		for j := range order {
			order[j] = j
		}
		shuffleRNG := rand.New(rand.NewSource(int64(i)*2654435761 + 12345))
		shuffleRNG.Shuffle(len(order), func(a, c int) { order[a], order[c] = order[c], order[a] })
		for _, j := range order[:alloc[i]] {
			pts = append(pts, b.pts[j])
			ids = append(ids, b.ids[j])
		}
	}
	return pts, ids
}

// Seen returns how many points have been offered.
func (s *Stratified) Seen() int { return s.seen }

// BinStats returns the number of retained points per non-empty bin, sorted
// descending; useful for diagnosing skew.
func (s *Stratified) BinStats() []int {
	var out []int
	for _, b := range s.bins {
		if b != nil && len(b.pts) > 0 {
			out = append(out, len(b.pts))
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// Method identifies a sampling strategy by name; used by the CLI tools and
// experiment harness tables.
type Method string

// Method names as they appear in the paper's tables.
const (
	MethodUniform    Method = "uniform"
	MethodStratified Method = "stratified"
	MethodVAS        Method = "vas"
	MethodVASDensity Method = "vas+density"
)

// ParseMethod validates a method name.
func ParseMethod(s string) (Method, error) {
	switch Method(s) {
	case MethodUniform, MethodStratified, MethodVAS, MethodVASDensity:
		return Method(s), nil
	}
	return "", fmt.Errorf("sampling: unknown method %q", s)
}
