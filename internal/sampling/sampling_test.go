package sampling

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func linePoints(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(float64(i), 0)
	}
	return pts
}

func TestReservoirSize(t *testing.T) {
	r := NewReservoir(10, 1)
	sampleSmall := Run(NewReservoir(10, 1), linePoints(5))
	if len(sampleSmall) != 5 {
		t.Errorf("fewer points than k: sample size %d, want 5", len(sampleSmall))
	}
	s := Run(r, linePoints(1000))
	if len(s) != 10 {
		t.Errorf("sample size %d, want 10", len(s))
	}
	if r.Seen() != 1000 {
		t.Errorf("Seen = %d", r.Seen())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Inclusion probability must be k/n for every position, including the
	// stream tail (the classic reservoir bug is biasing against late
	// items).
	const n, k, trials = 200, 20, 3000
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(k, int64(trial))
		for i, p := range linePoints(n) {
			r.Add(p, i)
		}
		for _, id := range r.SampleIDs() {
			counts[id]++
		}
	}
	want := float64(k) / float64(n)
	for i, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-want) > 0.03 {
			t.Errorf("position %d included with frequency %.3f, want %.3f±0.03", i, frac, want)
		}
	}
}

func TestReservoirDeterministicBySeed(t *testing.T) {
	a := Run(NewReservoir(15, 7), linePoints(500))
	b := Run(NewReservoir(15, 7), linePoints(500))
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("same seed produced different samples")
		}
	}
	c := Run(NewReservoir(15, 8), linePoints(500))
	same := true
	for i := range a {
		if !a[i].Equal(c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical samples (suspicious)")
	}
}

func TestReservoirPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for k=0")
		}
	}()
	NewReservoir(0, 1)
}

func TestReservoirIDsMatchPoints(t *testing.T) {
	pts := linePoints(300)
	r := NewReservoir(12, 2)
	Run(r, pts)
	s := r.Sample()
	ids := r.SampleIDs()
	for i := range s {
		if !pts[ids[i]].Equal(s[i]) {
			t.Fatalf("sample[%d] does not match its id", i)
		}
	}
}

// TestStratifiedPaperExample reproduces the allocation example from
// §VI-B1: two bins, K=100; if the second bin has only 10 points, the
// first contributes 90 and the second 10.
func TestStratifiedPaperExample(t *testing.T) {
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 1}
	s := NewStratified(100, bounds, 2, 1, 3)
	rng := rand.New(rand.NewSource(4))
	id := 0
	// Bin 1 (x in [0,1)): 500 points. Bin 2 (x in [1,2]): 10 points.
	for i := 0; i < 500; i++ {
		s.Add(geom.Pt(rng.Float64()*0.99, rng.Float64()), id)
		id++
	}
	for i := 0; i < 10; i++ {
		s.Add(geom.Pt(1.01+rng.Float64()*0.98, rng.Float64()), id)
		id++
	}
	sample := s.Sample()
	if len(sample) != 100 {
		t.Fatalf("sample size %d, want 100", len(sample))
	}
	var bin1, bin2 int
	for _, p := range sample {
		if p.X < 1 {
			bin1++
		} else {
			bin2++
		}
	}
	if bin1 != 90 || bin2 != 10 {
		t.Errorf("allocation = (%d, %d), want (90, 10)", bin1, bin2)
	}
}

func TestStratifiedBalancedWhenAbundant(t *testing.T) {
	// With plentiful points everywhere, each bin contributes K/bins.
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4}
	s := NewStratifiedSquare(64, bounds, 4, 5) // 16 bins, 4 each
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 8000; i++ {
		s.Add(geom.Pt(rng.Float64()*4, rng.Float64()*4), i)
	}
	sample := s.Sample()
	if len(sample) != 64 {
		t.Fatalf("sample size %d", len(sample))
	}
	counts := map[int]int{}
	for _, p := range sample {
		cx := int(p.X)
		cy := int(p.Y)
		if cx > 3 {
			cx = 3
		}
		if cy > 3 {
			cy = 3
		}
		counts[cy*4+cx]++
	}
	for bin, c := range counts {
		if c != 4 {
			t.Errorf("bin %d contributed %d points, want 4", bin, c)
		}
	}
}

func TestStratifiedFewerPointsThanK(t *testing.T) {
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	s := NewStratifiedSquare(100, bounds, 3, 7)
	for i := 0; i < 30; i++ {
		s.Add(geom.Pt(float64(i%10)/10, float64(i/10)/3), i)
	}
	if got := len(s.Sample()); got != 30 {
		t.Errorf("sample size %d, want all 30", got)
	}
}

func TestStratifiedSampleIsStable(t *testing.T) {
	// Repeated Sample() calls must agree (the shuffle is keyed, not
	// stateful).
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	s := NewStratifiedSquare(20, bounds, 2, 8)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		s.Add(geom.Pt(rng.Float64(), rng.Float64()), i)
	}
	a := s.Sample()
	b := s.Sample()
	if len(a) != len(b) {
		t.Fatal("unstable sample size")
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("Sample() is not repeatable")
		}
	}
	// IDs and points stay parallel across the two accessors.
	ids := s.SampleIDs()
	if len(ids) != len(a) {
		t.Fatal("ids length mismatch")
	}
}

func TestStratifiedIDsMatchPoints(t *testing.T) {
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 1}
	pts := linePoints(1000)
	s := NewStratifiedSquare(50, bounds, 5, 10)
	Run(s, pts)
	sample := s.Sample()
	ids := s.SampleIDs()
	for i := range sample {
		if !pts[ids[i]].Equal(sample[i]) {
			t.Fatalf("sample[%d] does not match pts[ids[%d]]", i, i)
		}
	}
}

func TestStratifiedBinStats(t *testing.T) {
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 1}
	s := NewStratified(10, bounds, 2, 1, 11)
	for i := 0; i < 7; i++ {
		s.Add(geom.Pt(0.5, 0.5), i)
	}
	for i := 0; i < 3; i++ {
		s.Add(geom.Pt(1.5, 0.5), 100+i)
	}
	stats := s.BinStats()
	if len(stats) != 2 || stats[0] != 7 || stats[1] != 3 {
		t.Errorf("BinStats = %v, want [7 3]", stats)
	}
}

func TestParseMethod(t *testing.T) {
	for _, ok := range []string{"uniform", "stratified", "vas", "vas+density"} {
		if _, err := ParseMethod(ok); err != nil {
			t.Errorf("ParseMethod(%q): %v", ok, err)
		}
	}
	if _, err := ParseMethod("systematic"); err == nil {
		t.Error("unknown method: want error")
	}
}
