package experiments

import (
	"strings"
	"testing"
)

func TestAblationEps(t *testing.T) {
	rep, err := Run("ablation-eps", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 multipliers", len(rep.Rows))
	}
	// The heuristic (1x) must not be beaten by the 4x extreme: structure
	// below the bandwidth becomes invisible as epsilon grows.
	var at1, at4 float64
	for _, row := range rep.Rows {
		switch row[0] {
		case "1":
			at1 = parseF(t, row[3])
		case "4":
			at4 = parseF(t, row[3])
		}
	}
	if at4 < at1 {
		t.Errorf("4x heuristic bandwidth (%v) beat the heuristic (%v)", at4, at1)
	}
}

func TestAblationKernel(t *testing.T) {
	rep, err := Run("ablation-kernel", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 kernels", len(rep.Rows))
	}
	// All admissible kernels must land within a factor-of-2 loss band of
	// the Gaussian (§III: any convex decreasing proximity function works).
	var gaussian float64
	for _, row := range rep.Rows {
		if row[0] == "gaussian" {
			gaussian = parseF(t, row[2])
		}
	}
	if gaussian == 0 {
		t.Fatal("gaussian row missing")
	}
	for _, row := range rep.Rows {
		ratio := parseF(t, row[2])
		if ratio > gaussian*2 {
			t.Errorf("%s loss %v far above gaussian %v", row[0], ratio, gaussian)
		}
	}
}

func TestAblationPasses(t *testing.T) {
	rep, err := Run("ablation-passes", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 pass counts", len(rep.Rows))
	}
	// The objective is non-increasing in passes, and the last-pass swap
	// count shrinks toward the fixed point.
	prevObj := parseF(t, rep.Rows[0][1])
	prevSwaps := parseF(t, rep.Rows[0][2])
	for _, row := range rep.Rows[1:] {
		obj := parseF(t, row[1])
		swaps := parseF(t, row[2])
		if obj > prevObj*(1+1e-9) {
			t.Errorf("objective rose with more passes: %v -> %v (row %v)", prevObj, obj, row[0])
		}
		if swaps > prevSwaps {
			t.Errorf("last-pass swaps rose with more passes: %v -> %v", prevSwaps, swaps)
		}
		prevObj, prevSwaps = obj, swaps
		if !strings.Contains(row[0], "ran") {
			t.Errorf("passes label %q missing ran count", row[0])
		}
	}
}
