package experiments

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/render"
	"repro/internal/sampling"
	"repro/internal/vas"
)

// This file regenerates the Fig. 1 comparison quantitatively: overview and
// zoomed views of stratified vs VAS samples of the same size, measured by
// raster cell coverage relative to the full dataset's rendering. The
// paper's qualitative claim — both look alike zoomed out, but only VAS
// retains structure when zooming in — becomes a coverage-recall number.
// (cmd/vasviz produces the actual PNGs.)

func init() {
	register("fig1", runFig1)
}

func runFig1(sc Scale) (*Report, error) {
	d := geolife(sc)
	kern, err := dataKernel(d.Points)
	if err != nil {
		return nil, err
	}
	k := sc.SampleSizes[len(sc.SampleSizes)-1]
	if k >= len(d.Points) {
		k = len(d.Points) / 10
	}

	// Fig. 1 uses a fine 316x316 stratification for the map plot.
	strat := sampling.NewStratifiedSquare(k, d.Bounds(), 316, sc.Seed)
	sampling.Run(strat, d.Points)
	stratPts := strat.Sample()

	ic := vas.NewInterchange(vas.Options{K: k, Kernel: kern, Variant: vas.ES})
	vas.Converge(ic, d.Points, 2)
	vasPts := ic.Sample()

	r := &Report{
		ID:      "fig1",
		Caption: "Overview vs zoom coverage, stratified vs VAS (paper Fig. 1), coverage = sample-occupied raster cells / dataset-occupied cells",
		Columns: []string{"view", "zoom", "stratified coverage", "vas coverage"},
	}
	bounds := d.Bounds()
	views := []struct {
		name string
		zoom float64
	}{
		{"overview", 1},
		{"zoom-in", 8},
		{"deep zoom", 32},
	}
	const res = 128
	for _, v := range views {
		// Zoom onto the densest raster cell of the full data so the view
		// contains real structure, as the paper's screenshots do.
		center := densestCell(d.Points, bounds, 64)
		vp, err := render.ZoomViewport(bounds, center, v.zoom)
		if err != nil {
			return nil, err
		}
		full := render.NewRaster(vp, res, res)
		full.Plot(d.Points)
		fullCells := full.OccupiedCells()
		if fullCells == 0 {
			continue
		}
		cov := func(pts []geom.Point) float64 {
			ra := render.NewRaster(vp, res, res)
			ra.Plot(pts)
			return float64(coveredCells(full, ra, res)) / float64(fullCells)
		}
		r.AddRow(v.name, fmt.Sprintf("%gx", v.zoom), cov(stratPts), cov(vasPts))
	}
	r.Notes = append(r.Notes,
		"paper shape: coverage is comparable at overview zoom; when zooming in, VAS retains far more of the dataset's occupied cells than stratified",
	)
	return r, nil
}

// densestCell returns the centre of the most-populated cell of a coarse
// raster over the full data.
func densestCell(pts []geom.Point, bounds geom.Rect, res int) geom.Point {
	ra := render.NewRaster(bounds, res, res)
	ra.Plot(pts)
	bx, by := 0, 0
	var best float64
	for y := 0; y < res; y++ {
		for x := 0; x < res; x++ {
			if m := ra.At(x, y); m > best {
				best, bx, by = m, x, y
			}
		}
	}
	// Map raster cell back to data space (centre).
	fx := (float64(bx) + 0.5) / float64(res)
	fy := 1 - (float64(by)+0.5)/float64(res)
	return geom.Pt(bounds.MinX+fx*bounds.Width(), bounds.MinY+fy*bounds.Height())
}

// coveredCells counts cells occupied in full that are also occupied in
// sample — the recall of the sample's rendering.
func coveredCells(full, sample *render.Raster, res int) int {
	n := 0
	for y := 0; y < res; y++ {
		for x := 0; x < res; x++ {
			if full.At(x, y) > 0 && sample.At(x, y) > 0 {
				n++
			}
		}
	}
	return n
}
