package experiments

import (
	"fmt"
	"time"

	"repro/internal/vas"
)

// This file regenerates Fig. 9 (Interchange objective vs processing time,
// showing fast early improvement) and Fig. 10 (offline runtime of the
// three optimization levels NoES / ES / ES+Loc at a small and a large
// sample size).

func init() {
	register("fig9", runFig9)
	register("fig10", runFig10)
}

func runFig9(sc Scale) (*Report, error) {
	d := geolife(sc)
	kern, err := dataKernel(d.Points)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "fig9",
		Caption: "Processing time vs objective (paper Fig. 9): Interchange improves quality quickly, then plateaus",
		Columns: []string{"sample size", "progress(points seen)", "elapsed", "objective (normalized to start)"},
	}
	// Two sample sizes as in the paper (100K and 1M there; scaled here).
	ks := []int{sc.SampleSizes[0], sc.SampleSizes[len(sc.SampleSizes)-1]}
	const checkpoints = 8
	for _, k := range ks {
		if k >= len(d.Points) {
			continue
		}
		ic := vas.NewInterchange(vas.Options{K: k, Kernel: kern, Variant: vas.ES})
		start := time.Now()
		var baseline float64
		step := len(d.Points) / checkpoints
		if step == 0 {
			step = 1
		}
		for i, p := range d.Points {
			ic.Add(p, i)
			if (i+1)%step == 0 || i == len(d.Points)-1 {
				obj := ic.RecomputeObjective()
				if baseline == 0 {
					baseline = obj
					if baseline == 0 {
						baseline = 1
					}
				}
				r.AddRow(k, i+1, time.Since(start), obj/baseline)
			}
		}
	}
	r.Notes = append(r.Notes,
		"paper shape: the objective falls steeply in the first checkpoints and then improves slowly toward convergence",
	)
	return r, nil
}

func runFig10(sc Scale) (*Report, error) {
	d := geolife(sc)
	kern, err := dataKernel(d.Points)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "fig10",
		Caption: "Offline runtime of optimization levels (paper Fig. 10): NoES vs ES vs ES+Loc at small and large K",
		Columns: []string{"sample size", "variant", "runtime", "objective"},
	}
	// The paper uses K=100 (small) and K=5000 (large); NoES is only run at
	// the small size there too, because it is quadratically slow.
	type cfg struct {
		k        int
		variants []vas.Variant
	}
	small := sc.SampleSizes[0]
	large := 5000
	if large >= len(d.Points) {
		large = len(d.Points) / 4
	}
	cfgs := []cfg{
		{k: small, variants: []vas.Variant{vas.NoES, vas.ES, vas.ESLoc}},
		{k: large, variants: []vas.Variant{vas.ES, vas.ESLoc}},
	}
	// NoES at large K would dominate the harness runtime; cap its input.
	for _, c := range cfgs {
		for _, v := range c.variants {
			pts := d.Points
			if v == vas.NoES && len(pts) > 60_000 {
				pts = pts[:60_000]
			}
			ic := vas.NewInterchange(vas.Options{K: c.k, Kernel: kern, Variant: v})
			start := time.Now()
			for i, p := range pts {
				ic.Add(p, i)
			}
			elapsed := time.Since(start)
			label := v.String()
			if len(pts) != len(d.Points) {
				label += fmt.Sprintf(" (first %d pts)", len(pts))
			}
			r.AddRow(c.k, label, elapsed, ic.RecomputeObjective())
		}
	}
	r.Notes = append(r.Notes,
		"paper shape: NoES is far slower everywhere; at K=100 plain ES beats ES+Loc (index upkeep not amortized); the paper reports ES+Loc overtaking ES at K=5000",
		"reproduction finding: on this substrate ES stays competitive at K=5000 because glibc's exp() underflows far-pair kernel values through a fast path, making the very evaluations the R-tree prunes nearly free; ES+Loc's pruning wins only when proximity evaluation is uniformly expensive (see EXPERIMENTS.md)",
	)
	return r, nil
}
