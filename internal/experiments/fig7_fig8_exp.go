package experiments

import (
	"fmt"
	"time"

	"repro/internal/loss"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/usersim"
	"repro/internal/viztime"
)

// This file regenerates Fig. 7 (correlation between the VAS loss and user
// success on the regression task; the paper reports Spearman ρ = −0.85,
// p = 5.2e-4) and Fig. 8 (error given time / time given error for the
// three sampling methods).

func init() {
	register("fig7", runFig7)
	register("fig8", runFig8)
}

func runFig7(sc Scale) (*Report, error) {
	d := geolife(sc)
	kern, err := dataKernel(d.Points)
	if err != nil {
		return nil, err
	}
	ev, err := loss.NewEvaluator(d.Points, loss.Options{Kernel: kern, Probes: sc.Probes, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	datasetLoss, err := ev.Evaluate(d.Points)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "fig7",
		Caption: "Loss vs user success on regression (paper Fig. 7): one point per (method, size)",
		Columns: []string{"method", "sample size", "log-loss-ratio", "user success"},
	}
	var ratios, successes []float64
	for _, m := range table1Methods {
		for _, k := range sc.SampleSizes {
			pts, ids, err := buildSample(m, d.Points, k, kern, sc.Seed)
			if err != nil {
				return nil, err
			}
			sLoss, err := ev.Evaluate(pts)
			if err != nil {
				return nil, err
			}
			ratio := loss.LogLossRatio(sLoss, datasetLoss)
			res, err := usersim.Regression(d.Points, d.Values, pts, gatherValues(d.Values, ids),
				usersim.Config{Trials: sc.Trials, Seed: sc.Seed + int64(k)})
			if err != nil {
				return nil, err
			}
			ratios = append(ratios, ratio)
			successes = append(successes, res.Success)
			r.AddRow(string(m), k, ratio, res.Success)
		}
	}
	rho, err := stats.Spearman(ratios, successes)
	if err != nil {
		return nil, err
	}
	p := stats.SpearmanPValue(rho, len(ratios))
	r.Notes = append(r.Notes,
		fmt.Sprintf("Spearman rho = %.3f (p = %.2g); paper reports rho = -0.85 (p = 5.2e-4)", rho, p),
		"paper shape: strong negative correlation — minimizing the loss maximizes user success",
	)
	return r, nil
}

func runFig8(sc Scale) (*Report, error) {
	d := geolife(sc)
	kern, err := dataKernel(d.Points)
	if err != nil {
		return nil, err
	}
	ev, err := loss.NewEvaluator(d.Points, loss.Options{Kernel: kern, Probes: sc.Probes, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	datasetLoss, err := ev.Evaluate(d.Points)
	if err != nil {
		return nil, err
	}
	model := viztime.MathGL()
	r := &Report{
		ID:      "fig8",
		Caption: "Error vs visualization time (paper Fig. 8): per method, error at each sample size and the viz time the size implies",
		Columns: []string{"method", "sample size", "viz time", "log-loss-ratio"},
	}
	// error at matched viz time, and time to reach matched error.
	type pt struct {
		k     int
		t     time.Duration
		ratio float64
	}
	curves := map[sampling.Method][]pt{}
	for _, m := range table1Methods {
		for _, k := range sc.SampleSizes {
			pts, _, err := buildSample(m, d.Points, k, kern, sc.Seed)
			if err != nil {
				return nil, err
			}
			sLoss, err := ev.Evaluate(pts)
			if err != nil {
				return nil, err
			}
			ratio := loss.LogLossRatio(sLoss, datasetLoss)
			t := model.Time(k)
			curves[m] = append(curves[m], pt{k: k, t: t, ratio: ratio})
			r.AddRow(string(m), k, t, ratio)
		}
	}
	// Shape note: the speedup factor at matched quality — for VAS's error
	// at its smallest size, how many tuples do the baselines need?
	vasCurve := curves[sampling.MethodVAS]
	if len(vasCurve) > 0 {
		target := vasCurve[0].ratio
		for _, m := range []sampling.Method{sampling.MethodUniform, sampling.MethodStratified} {
			needed := -1
			for _, p := range curves[m] {
				if p.ratio <= target {
					needed = p.k
					break
				}
			}
			if needed < 0 {
				r.Notes = append(r.Notes, fmt.Sprintf(
					"%s never reaches VAS@K=%d quality (ratio %.3g) within the sweep — speedup > %dx",
					m, vasCurve[0].k, target, sc.SampleSizes[len(sc.SampleSizes)-1]/vasCurve[0].k))
			} else {
				r.Notes = append(r.Notes, fmt.Sprintf(
					"%s needs K=%d for VAS@K=%d quality — %.0fx more tuples",
					m, needed, vasCurve[0].k, float64(needed)/float64(vasCurve[0].k)))
			}
		}
	}
	r.Notes = append(r.Notes,
		"paper shape: VAS reaches a given loss with up to 400x fewer tuples; at equal time its loss is far lower",
	)
	return r, nil
}
