package experiments

import (
	"fmt"
	"time"

	"repro/internal/viztime"
)

// This file regenerates Fig. 2 (visualization latency vs dataset size for
// Tableau and MathGL) and Fig. 4 (latency vs sample size on Geolife and
// SPLOM). Both figures exist to establish the premise that full-data
// plotting is far beyond the interactive limit and that latency is linear
// in the tuple count; the models are the DESIGN.md §3 substitution for the
// two closed systems, and the fig2 report also includes this repository's
// real renderer to verify the linearity premise on a live code path.

func init() {
	register("fig2", runFig2)
	register("fig4", runFig4)
}

func runFig2(sc Scale) (*Report, error) {
	r := &Report{
		ID:      "fig2",
		Caption: "Viz time vs dataset size (paper Fig. 2): Tableau & MathGL models, plus the real internal renderer",
		Columns: []string{"rows", "tableau", "mathgl", "internal-renderer(measured)", "interactive(<=2s)?"},
	}
	sizes := []int{1_000_000, 10_000_000, 100_000_000, 500_000_000}
	tab, mgl := viztime.Tableau(), viztime.MathGL()
	meas := viztime.Measured{W: 256, H: 256}
	for _, n := range sizes {
		// Measure the real renderer at a scaled-down size (n/100) to keep
		// the experiment fast, then report the linear extrapolation; the
		// linearity check below validates the extrapolation.
		mn := n / 100
		measured := meas.Time(mn) * 100
		r.AddRow(n, tab.Time(n), mgl.Time(n),
			fmt.Sprintf("%v (extrapolated x100)", measured.Round(time.Millisecond)),
			tab.Time(n) <= viztime.InteractiveLimit && mgl.Time(n) <= viztime.InteractiveLimit)
	}
	// Linearity check on the real renderer: the marginal per-tuple cost
	// must be flat (the total includes a constant image-encode term, so
	// total ratios understate the slope).
	t1 := meas.Time(200_000)
	t2 := meas.Time(400_000)
	t3 := meas.Time(800_000)
	m1 := float64(t2-t1) / 200_000
	m2 := float64(t3-t2) / 400_000
	r.Notes = append(r.Notes,
		fmt.Sprintf("real renderer linearity: marginal ns/tuple %.1f vs %.1f (ratio %.2f; ~1 = linear)", m1, m2, m2/m1),
		fmt.Sprintf("max interactive tuples: tableau=%d mathgl=%d", viztime.MaxInteractiveTuples(tab), viztime.MaxInteractiveTuples(mgl)),
		"paper shape: both systems exceed the 2s interactive limit at 1M rows and grow linearly to minutes at 50M+",
	)
	return r, nil
}

func runFig4(sc Scale) (*Report, error) {
	r := &Report{
		ID:      "fig4",
		Caption: "Time to plot vs sample size (paper Fig. 4): Geolife & SPLOM under both system models",
		Columns: []string{"sample", "tableau/geolife", "tableau/splom", "mathgl/geolife", "mathgl/splom"},
	}
	tab, mgl := viztime.Tableau(), viztime.MathGL()
	sizes := []int{1_000_000, 5_000_000, 10_000_000, 50_000_000}
	// The dataset does not change the per-tuple cost in either the paper's
	// measurements or the linear model (both curves in Fig. 4 nearly
	// coincide per system); a small constant-factor difference reflects
	// SPLOM's five columns vs Geolife's three.
	splomFetchFactor := 5.0 / 3.0
	for _, n := range sizes {
		tabSplom := tab.Startup + time.Duration(float64(n)*(float64(tab.PerFetch)*splomFetchFactor+float64(tab.PerDraw)))
		mglSplom := mgl.Startup + time.Duration(float64(n)*(float64(mgl.PerFetch)*splomFetchFactor+float64(mgl.PerDraw)))
		r.AddRow(n, tab.Time(n), tabSplom, mgl.Time(n), mglSplom)
	}
	r.Notes = append(r.Notes,
		"paper shape: even 1M-tuple samples exceed the 2s interactive limit; growth is linear in sample size",
	)
	return r, nil
}
