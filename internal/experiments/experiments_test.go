package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sampling"
)

// tinyScale keeps every experiment fast enough for unit tests. DataN must
// stay well above the largest sample size: the user-study dynamics (Table
// I) only appear when K ≪ N, as in the paper's 24.4M-row corpus.
func tinyScale() Scale {
	return Scale{
		DataN:       60_000,
		SampleSizes: []int{100, 400},
		Trials:      60,
		Probes:      150,
		Seed:        42,
	}
}

func TestIDsRegistered(t *testing.T) {
	want := []string{
		"ablation-eps", "ablation-kernel", "ablation-passes",
		"fig1", "fig2", "fig4", "fig7", "fig8", "fig9", "fig10",
		"table1a", "table1b", "table1c", "table2",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for _, id := range want {
		found := false
		for _, g := range got {
			if g == id {
				found = true
			}
		}
		if !found {
			t.Errorf("missing experiment %q", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("table9", tinyScale()); err == nil {
		t.Error("unknown id: want error")
	}
}

func TestReportWriting(t *testing.T) {
	r := &Report{ID: "x", Caption: "c", Columns: []string{"a", "bb"}}
	r.AddRow(1, 2.5)
	r.Notes = append(r.Notes, "note text")
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: c ==", "a", "bb", "2.5", "note: note text"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	rep, err := Run("fig2", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("fig2 rows = %d", len(rep.Rows))
	}
	// No row may be interactive: the premise of the paper.
	for _, row := range rep.Rows {
		if row[len(row)-1] != "false" {
			t.Errorf("row %v claims interactive full-data plotting", row)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	rep, err := Run("fig4", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("fig4 rows = %d", len(rep.Rows))
	}
}

func TestTable1aShape(t *testing.T) {
	sc := tinyScale()
	rep, err := Run("table1a", sc)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: one per size plus the average row.
	if len(rep.Rows) != len(sc.SampleSizes)+1 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	avg := rep.Rows[len(rep.Rows)-1]
	uniform := parseF(t, avg[1])
	vas := parseF(t, avg[3])
	// The headline: VAS average beats uniform average.
	if vas <= uniform {
		t.Errorf("table1a average: vas %.3f <= uniform %.3f", vas, uniform)
	}
}

func TestTable1bDensityColumnWins(t *testing.T) {
	rep, err := Run("table1b", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	avg := rep.Rows[len(rep.Rows)-1]
	plainVAS := parseF(t, avg[3])
	vasDensity := parseF(t, avg[4])
	if vasDensity <= plainVAS {
		t.Errorf("table1b: vas+density %.3f should beat plain vas %.3f", vasDensity, plainVAS)
	}
}

func TestTable1cShape(t *testing.T) {
	rep, err := Run("table1c", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	avg := rep.Rows[len(rep.Rows)-1]
	vasDensity := parseF(t, avg[4])
	if vasDensity < 0.3 {
		t.Errorf("table1c vas+density average %.3f suspiciously low", vasDensity)
	}
}

func TestFig7NegativeCorrelation(t *testing.T) {
	rep, err := Run("fig7", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Notes) == 0 {
		t.Fatal("fig7 must report Spearman rho")
	}
	// The note starts "Spearman rho = <value>".
	var rho float64
	if _, err := fmtSscanf(rep.Notes[0], &rho); err != nil {
		t.Fatalf("cannot parse rho from %q: %v", rep.Notes[0], err)
	}
	if rho >= 0 {
		t.Errorf("Spearman rho = %v, want negative (paper: -0.85)", rho)
	}
}

func fmtSscanf(note string, rho *float64) (int, error) {
	// Note format: "Spearman rho = -0.xxx (p = ...)..."
	fields := strings.Fields(note)
	for i, f := range fields {
		if f == "=" && i+1 < len(fields) {
			v, err := strconv.ParseFloat(fields[i+1], 64)
			if err != nil {
				return 0, err
			}
			*rho = v
			return 1, nil
		}
	}
	return 0, strconv.ErrSyntax
}

func TestFig8VASWins(t *testing.T) {
	sc := tinyScale()
	rep, err := Run("fig8", sc)
	if err != nil {
		t.Fatal(err)
	}
	// Collect per-method error at the largest sample size.
	losses := map[string]float64{}
	biggest := strconv.Itoa(sc.SampleSizes[len(sc.SampleSizes)-1])
	for _, row := range rep.Rows {
		if row[1] == biggest {
			losses[row[0]] = parseF(t, row[3])
		}
	}
	if len(losses) != 3 {
		t.Fatalf("expected 3 methods at size %s, got %v", biggest, losses)
	}
	if losses[string(sampling.MethodVAS)] > losses[string(sampling.MethodUniform)] {
		t.Errorf("fig8: vas loss %v exceeds uniform %v", losses["vas"], losses["uniform"])
	}
}

func TestFig9ObjectiveImproves(t *testing.T) {
	rep, err := Run("fig9", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 4 {
		t.Fatalf("fig9 rows = %d", len(rep.Rows))
	}
	first := parseF(t, rep.Rows[0][3])
	last := parseF(t, rep.Rows[len(rep.Rows)-1][3])
	if last > first {
		t.Errorf("fig9: normalized objective rose from %v to %v", first, last)
	}
}

func TestFig10VariantsPresent(t *testing.T) {
	rep, err := Run("fig10", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]bool{}
	for _, row := range rep.Rows {
		variants[strings.Fields(row[1])[0]] = true
	}
	for _, want := range []string{"no-es", "es", "es+loc"} {
		if !variants[want] {
			t.Errorf("fig10 missing variant %s (have %v)", want, variants)
		}
	}
}

func TestFig1ZoomCoverageGap(t *testing.T) {
	rep, err := Run("fig1", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// On the deepest zoom row, VAS coverage must beat stratified.
	last := rep.Rows[len(rep.Rows)-1]
	strat := parseF(t, last[2])
	vasCov := parseF(t, last[3])
	if vasCov < strat {
		t.Errorf("fig1 deep zoom: vas coverage %.3f < stratified %.3f", vasCov, strat)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}
