package experiments

import (
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/loss"
	"repro/internal/proximity"
	"repro/internal/vas"
)

// This file implements the ablations DESIGN.md §4 calls out, beyond the
// paper's own artifacts:
//
//   - ablation-eps: sensitivity of sample quality to the bandwidth ε
//     around the paper's maxdist/100 heuristic (§III footnote 2 says a
//     theory exists for choosing ε; the heuristic is what the paper runs).
//   - ablation-kernel: the admissible κ̃ families (§III allows any convex
//     decreasing proximity function).
//   - ablation-passes: single-pass vs multi-pass Interchange vs the
//     converged fixed point (the paper runs "until no replacement").

func init() {
	register("ablation-eps", runAblationEps)
	register("ablation-kernel", runAblationKernel)
	register("ablation-passes", runAblationPasses)
}

func runAblationEps(sc Scale) (*Report, error) {
	d := geolife(sc)
	base := geom.MaxPairwiseDist(d.Points)
	r := &Report{
		ID:      "ablation-eps",
		Caption: "Bandwidth sensitivity: loss of a VAS sample vs epsilon (heuristic = maxdist/100)",
		Columns: []string{"epsilon (x heuristic)", "epsilon", "objective", "log-loss-ratio"},
	}
	k := sc.SampleSizes[0] * 4
	// The loss is always scored with the heuristic kernel so rows are
	// comparable; only the *sampling* bandwidth varies.
	evalKern := proximity.NewGaussian(base / proximity.DefaultBandwidthDivisor)
	ev, err := loss.NewEvaluator(d.Points, loss.Options{Kernel: evalKern, Probes: sc.Probes, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	dLoss, err := ev.Evaluate(d.Points)
	if err != nil {
		return nil, err
	}
	for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
		eps := base / proximity.DefaultBandwidthDivisor * mult
		kern := proximity.NewGaussian(eps)
		ic := vas.NewInterchange(vas.Options{K: k, Kernel: kern, Variant: vas.ES})
		vas.Converge(ic, d.Points, 2)
		sLoss, err := ev.Evaluate(ic.Sample())
		if err != nil {
			return nil, err
		}
		r.AddRow(mult, eps, ic.RecomputeObjective(), loss.LogLossRatio(sLoss, dLoss))
	}
	r.Notes = append(r.Notes,
		"expectation: quality is flat within ~2x of the heuristic and degrades at the extremes (too small = no repulsion signal; too large = structure below bandwidth is invisible)",
	)
	return r, nil
}

func runAblationKernel(sc Scale) (*Report, error) {
	d := geolife(sc)
	base := geom.MaxPairwiseDist(d.Points)
	r := &Report{
		ID:      "ablation-kernel",
		Caption: "Kernel family ablation: Gaussian (paper) vs compact Epanechnikov/tricube",
		Columns: []string{"kernel", "build time", "log-loss-ratio"},
	}
	k := sc.SampleSizes[0] * 4
	evalKern := proximity.NewGaussian(base / proximity.DefaultBandwidthDivisor)
	ev, err := loss.NewEvaluator(d.Points, loss.Options{Kernel: evalKern, Probes: sc.Probes, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	dLoss, err := ev.Evaluate(d.Points)
	if err != nil {
		return nil, err
	}
	for _, kind := range []proximity.Kind{proximity.Gaussian, proximity.Epanechnikov, proximity.Tricube} {
		kern := proximity.New(kind, base/proximity.DefaultBandwidthDivisor)
		start := time.Now()
		ic := vas.NewInterchange(vas.Options{K: k, Kernel: kern, Variant: vas.ES})
		vas.Converge(ic, d.Points, 2)
		elapsed := time.Since(start)
		sLoss, err := ev.Evaluate(ic.Sample())
		if err != nil {
			return nil, err
		}
		r.AddRow(kind.String(), elapsed, loss.LogLossRatio(sLoss, dLoss))
	}
	r.Notes = append(r.Notes,
		"expectation: all admissible kernels land at similar loss (§III: any decreasing convex proximity function); compact kernels skip exp and prune exactly",
	)
	return r, nil
}

func runAblationPasses(sc Scale) (*Report, error) {
	d := geolife(sc)
	kern, err := dataKernel(d.Points)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "ablation-passes",
		Caption: "Passes ablation: Interchange quality vs number of streaming passes",
		Columns: []string{"passes", "objective", "swaps in last pass", "elapsed"},
	}
	k := sc.SampleSizes[0] * 4
	for _, passes := range []int{1, 2, 4, 8} {
		ic := vas.NewInterchange(vas.Options{K: k, Kernel: kern, Variant: vas.ES})
		start := time.Now()
		ran := vas.Converge(ic, d.Points, passes)
		elapsed := time.Since(start)
		r.AddRow(fmt.Sprintf("%d (ran %d)", passes, ran), ic.RecomputeObjective(), ic.PassSwaps(), elapsed)
	}
	r.Notes = append(r.Notes,
		"expectation: the first pass captures most of the improvement (the paper's Fig. 9 observation); later passes polish toward the Theorem 3 fixed point",
	)
	return r, nil
}
