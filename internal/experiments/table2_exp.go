package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/loss"
	"repro/internal/proximity"
	"repro/internal/vas"
)

// This file regenerates Table II: exact solver vs Interchange vs uniform
// random on tiny datasets (N ∈ {50,60,70,80}, K = 10), reporting runtime,
// optimization objective, and Loss(S). The exact MIP+GLPK pipeline is
// substituted by the branch-and-bound solver (DESIGN.md §3).

func init() {
	register("table2", runTable2)
}

// table2K is the sample size the paper fixes for the whole table.
const table2K = 10

func runTable2(sc Scale) (*Report, error) {
	r := &Report{
		ID:      "table2",
		Caption: "Loss and runtime: exact vs approximate vs random (paper Table II), K=10",
		Columns: []string{"N", "metric", "exact(B&B)", "approx. VAS", "random"},
	}
	ns := []int{50, 60, 70, 80}
	for _, n := range ns {
		// Tiny dense dataset: two overlapping Gaussians, so the pairwise
		// κ̃ terms are non-trivial at the heuristic bandwidth (the paper
		// subsamples its dense real data; a country-scale slice of N=80
		// points would have near-zero interactions everywhere and every
		// subset would tie at objective ≈ 0).
		d := dataset.Clusters("table2", n, sc.Seed+int64(n), []dataset.ClusterSpec{
			{Center: geom.Pt(-1, 0), SigmaX: 1, SigmaY: 0.8, Weight: 1.2},
			{Center: geom.Pt(1.2, 0.4), SigmaX: 0.9, SigmaY: 1.1, Weight: 0.8},
		})
		// Bandwidth extent/20, not the extent/100 heuristic: with K=10
		// the optimal spacing is ~extent/3, and at the heuristic
		// bandwidth every pair would sit beyond kernel support — all
		// subsets would tie at objective ≈ 0 and the comparison would be
		// numerically meaningless. extent/20 reproduces the paper's
		// objective magnitudes (best 0.036..0.16, random 2.25..3.72); the
		// paper gets the same effect by subsampling its tiny instances
		// from a dense region of the full corpus while keeping the
		// full-corpus ε.
		kern := proximity.New(proximity.Gaussian, geom.MaxPairwiseDist(d.Points)/20)

		// Exact. Budget exhaustion is an expected outcome at the larger N
		// — the paper's whole point is that exact search explodes (GLPK
		// needed 49 minutes at N=80); the incumbent is still reported.
		start := time.Now()
		exact, err := vas.SolveExact(context.Background(), d.Points, vas.ExactOptions{
			K: table2K, Kernel: kern, MaxNodes: 50_000_000,
		})
		if err != nil && !errors.Is(err, vas.ErrBudgetExhausted) {
			return nil, fmt.Errorf("exact N=%d: %w", n, err)
		}
		exactTime := time.Since(start)
		exactPts := gatherPoints(d.Points, exact.Indices)

		// Approximate (Interchange to convergence).
		start = time.Now()
		ic := vas.NewInterchange(vas.Options{K: table2K, Kernel: kern, Variant: vas.ES})
		vas.Converge(ic, d.Points, 64)
		approxTime := time.Since(start)
		approxPts := ic.Sample()

		// Random.
		rng := rand.New(rand.NewSource(sc.Seed + int64(n)))
		start = time.Now()
		randomPts := vas.RandomSubset(d.Points, table2K, rng.Intn)
		randomTime := time.Since(start)

		ev, err := loss.NewEvaluator(d.Points, loss.Options{Kernel: kern, Probes: sc.Probes, Seed: sc.Seed})
		if err != nil {
			return nil, err
		}
		lossOf := func(pts []geom.Point) float64 {
			res, err := ev.Evaluate(pts)
			if err != nil {
				return -1
			}
			return res.MedianLoss
		}

		r.AddRow(n, "runtime", exactTime, approxTime, randomTime)
		r.AddRow(n, "opt. objective",
			vas.Objective(kern, exactPts),
			vas.Objective(kern, approxPts),
			vas.Objective(kern, randomPts))
		r.AddRow(n, "Loss(S)", lossOf(exactPts), lossOf(approxPts), lossOf(randomPts))
		if !exact.Proven {
			r.Notes = append(r.Notes, fmt.Sprintf("N=%d: exact search hit its node budget; objective is an incumbent bound", n))
		}
	}
	r.Notes = append(r.Notes,
		"paper shape: exact runtime explodes with N (1m -> 49m for 50 -> 80) while Interchange and random stay ~0s; Interchange's objective is near the optimum, random's is ~2 orders worse",
	)
	return r, nil
}

func gatherPoints(pts []geom.Point, idx []int) []geom.Point {
	out := make([]geom.Point, len(idx))
	for i, j := range idx {
		out[i] = pts[j]
	}
	return out
}
