// Package experiments regenerates every table and figure of the paper's
// evaluation section (§VI). Each experiment is a named function producing
// a Report — rows of labeled values mirroring the paper's artifact — so
// cmd/vasexp, the test suite, and the benchmark harness all share one
// implementation per artifact. DESIGN.md §2 maps experiment ids to paper
// artifacts.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/proximity"
	"repro/internal/sampling"
	"repro/internal/vas"
)

// Scale sets the experiment sizes. The paper's headline scales (24.4M
// Geolife rows, 100K samples, 40 workers) are reachable with ScaleFull;
// ScaleSmall keeps the whole suite under a minute for tests and benches.
type Scale struct {
	// DataN is the synthetic dataset row count.
	DataN int
	// SampleSizes is the sweep of K values (the paper uses 100..100K).
	SampleSizes []int
	// Trials is the per-task user-study question count.
	Trials int
	// Probes is the Monte Carlo loss budget (paper: 1000).
	Probes int
	// Seed drives every generator for reproducibility.
	Seed int64
}

// ScaleSmall is sized for quick runs (seconds per experiment). DataN stays
// well above the largest K: the user-study dynamics only appear when
// K ≪ N, as with the paper's 24.4M-row corpus.
func ScaleSmall() Scale {
	return Scale{
		DataN:       60_000,
		SampleSizes: []int{100, 400, 1500},
		Trials:      120,
		Probes:      300,
		Seed:        42,
	}
}

// ScaleMedium is the default for cmd/vasexp: minutes for the full suite.
func ScaleMedium() Scale {
	return Scale{
		DataN:       200_000,
		SampleSizes: []int{100, 1000, 10_000},
		Trials:      240,
		Probes:      1000,
		Seed:        42,
	}
}

// ScaleFull approaches the paper's scales; hours for the full suite.
func ScaleFull() Scale {
	return Scale{
		DataN:       2_000_000,
		SampleSizes: []int{100, 1000, 10_000, 100_000},
		Trials:      960,
		Probes:      1000,
		Seed:        42,
	}
}

// Report is the regenerated artifact: a caption, column headers, and rows.
type Report struct {
	ID      string
	Caption string
	Columns []string
	Rows    [][]string
	// Notes records shape-level observations (who wins, crossovers) that
	// EXPERIMENTS.md quotes.
	Notes []string
}

// AddRow appends a formatted row; values are Sprint'ed with %v except
// float64 (4 significant digits) and time.Duration (rounded).
func (r *Report) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case time.Duration:
			row[i] = x.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(x)
		}
	}
	r.Rows = append(r.Rows, row)
}

// WriteTo renders the report as an aligned text table.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Caption)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Func runs one experiment at a scale.
type Func func(Scale) (*Report, error)

// registry maps experiment ids to implementations; populated by init
// functions in the per-experiment files.
var registry = map[string]Func{}

func register(id string, f Func) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = f
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, sc Scale) (*Report, error) {
	f, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return f(sc)
}

// RunAll executes every registered experiment in id order.
func RunAll(sc Scale) ([]*Report, error) {
	var out []*Report
	for _, id := range IDs() {
		r, err := Run(id, sc)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ---- shared builders ----

// geolife returns the Geolife-like dataset for a scale, memoized per
// (N, seed) because several experiments share it.
var geolifeCache = map[string]*dataset.Dataset{}

func geolife(sc Scale) *dataset.Dataset {
	key := fmt.Sprintf("%d/%d", sc.DataN, sc.Seed)
	if d, ok := geolifeCache[key]; ok {
		return d
	}
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: sc.DataN, Seed: sc.Seed})
	geolifeCache[key] = d
	return d
}

// dataKernel returns the paper's kernel for a dataset (Gaussian, ε from
// the extent heuristic).
func dataKernel(pts []geom.Point) (proximity.Func, error) {
	return proximity.FromData(proximity.Gaussian, pts)
}

// buildSample constructs a sample of size k with the given method.
// For VAS it runs the ES variant for two passes (the paper's offline
// build runs Interchange to near-convergence; two passes are enough for
// the qualitative results at these scales). Returned ids index into pts.
func buildSample(method sampling.Method, pts []geom.Point, k int, kern proximity.Func, seed int64) ([]geom.Point, []int, error) {
	if k >= len(pts) {
		ids := make([]int, len(pts))
		for i := range ids {
			ids[i] = i
		}
		return append([]geom.Point(nil), pts...), ids, nil
	}
	switch method {
	case sampling.MethodUniform:
		r := sampling.NewReservoir(k, seed)
		sampling.Run(r, pts)
		return r.Sample(), r.SampleIDs(), nil
	case sampling.MethodStratified:
		// The user study uses 100 exclusive bins (10×10); keep that.
		s := sampling.NewStratifiedSquare(k, geom.Bounds(pts), 10, seed)
		sampling.Run(s, pts)
		return s.Sample(), s.SampleIDs(), nil
	case sampling.MethodVAS, sampling.MethodVASDensity:
		// Plain ES for small samples; the R-tree locality variant once
		// index upkeep amortizes — the Fig. 10 guidance ("when the user
		// is interested in large samples ... ES+Loc will be the most
		// preferable choice").
		variant := vas.ES
		if k >= 2000 {
			variant = vas.ESLoc
		}
		ic := vas.NewInterchange(vas.Options{K: k, Kernel: kern, Variant: variant})
		vas.Converge(ic, pts, 2)
		return ic.Sample(), ic.SampleIDs(), nil
	}
	return nil, nil, fmt.Errorf("experiments: unknown method %q", method)
}

// gatherValues projects a value column onto sample ids.
func gatherValues(values []float64, ids []int) []float64 {
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = values[id]
	}
	return out
}
