package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/sampling"
	"repro/internal/usersim"
	"repro/internal/vas"
)

// This file regenerates Table I — the user study. Three tasks (regression,
// density estimation, clustering), each a sweep of sampling method ×
// sample size, scored by the simulated users of internal/usersim.

func init() {
	register("table1a", runTable1a)
	register("table1b", runTable1b)
	register("table1c", runTable1c)
}

// table1Methods is the method column order of Table I(a).
var table1Methods = []sampling.Method{
	sampling.MethodUniform,
	sampling.MethodStratified,
	sampling.MethodVAS,
}

// table1MethodsDensity adds the VAS+density column of Tables I(b,c).
var table1MethodsDensity = append(append([]sampling.Method(nil), table1Methods...), sampling.MethodVASDensity)

func runTable1a(sc Scale) (*Report, error) {
	d := geolife(sc)
	kern, err := dataKernel(d.Points)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "table1a",
		Caption: "User success, regression task (paper Table I(a))",
		Columns: []string{"sample size", "uniform", "stratified", "vas"},
	}
	sums := make(map[sampling.Method]float64)
	for _, k := range sc.SampleSizes {
		row := []interface{}{k}
		for _, m := range table1Methods {
			pts, ids, err := buildSample(m, d.Points, k, kern, sc.Seed)
			if err != nil {
				return nil, err
			}
			res, err := usersim.Regression(d.Points, d.Values, pts, gatherValues(d.Values, ids),
				usersim.Config{Trials: sc.Trials, Seed: sc.Seed + int64(k)})
			if err != nil {
				return nil, err
			}
			row = append(row, res.Success)
			sums[m] += res.Success
		}
		r.AddRow(row...)
	}
	avg := []interface{}{"average"}
	for _, m := range table1Methods {
		avg = append(avg, sums[m]/float64(len(sc.SampleSizes)))
	}
	r.AddRow(avg...)
	r.Notes = append(r.Notes,
		"paper shape: VAS dominates at every size (paper averages: uniform 0.319, stratified 0.378, VAS 0.734)",
	)
	return r, nil
}

func runTable1b(sc Scale) (*Report, error) {
	d := geolife(sc)
	kern, err := dataKernel(d.Points)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "table1b",
		Caption: "User success, density-estimation task (paper Table I(b))",
		Columns: []string{"sample size", "uniform", "stratified", "vas", "vas+density"},
	}
	sums := make(map[sampling.Method]float64)
	for _, k := range sc.SampleSizes {
		row := []interface{}{k}
		for _, m := range table1MethodsDensity {
			pts, ids, err := buildSample(m, d.Points, k, kern, sc.Seed)
			if err != nil {
				return nil, err
			}
			var weights []int64
			if m == sampling.MethodVASDensity {
				ws, err := vas.DensityPass(pts, ids, d.Points)
				if err != nil {
					return nil, err
				}
				weights = ws.Counts
			}
			res, err := usersim.Density(d.Points, pts, weights,
				usersim.Config{Trials: sc.Trials, Seed: sc.Seed + int64(k)})
			if err != nil {
				return nil, err
			}
			row = append(row, res.Success)
			sums[m] += res.Success
		}
		r.AddRow(row...)
	}
	avg := []interface{}{"average"}
	for _, m := range table1MethodsDensity {
		avg = append(avg, sums[m]/float64(len(sc.SampleSizes)))
	}
	r.AddRow(avg...)
	r.Notes = append(r.Notes,
		"paper shape: plain VAS is the worst column (it flattens density); VAS+density is the best (paper averages: 0.531/0.637/0.395/0.735)",
	)
	return r, nil
}

func runTable1c(sc Scale) (*Report, error) {
	// The clustering study uses the dedicated Gaussian datasets, not
	// Geolife (§VI-B1).
	dsets := dataset.ClusterStudyDatasets(sc.DataN/2, sc.Seed)
	r := &Report{
		ID:      "table1c",
		Caption: "User success, clustering task (paper Table I(c)); averaged over 4 Gaussian datasets",
		Columns: []string{"sample size", "uniform", "stratified", "vas", "vas+density"},
	}
	sums := make(map[sampling.Method]float64)
	for _, k := range sc.SampleSizes {
		row := []interface{}{k}
		for _, m := range table1MethodsDensity {
			var total float64
			for di, ds := range dsets {
				kern, err := dataKernel(ds.Points)
				if err != nil {
					return nil, err
				}
				pts, ids, err := buildSample(m, ds.Points, k, kern, sc.Seed+int64(di))
				if err != nil {
					return nil, err
				}
				var weights []int64
				if m == sampling.MethodVASDensity {
					ws, err := vas.DensityPass(pts, ids, ds.Points)
					if err != nil {
						return nil, err
					}
					weights = ws.Counts
				}
				res, err := usersim.Clustering(pts, weights, ds.TrueClusters,
					usersim.Config{Trials: sc.Trials / len(dsets), Seed: sc.Seed + int64(k*10+di)})
				if err != nil {
					return nil, err
				}
				total += res.Success
			}
			row = append(row, total/float64(len(dsets)))
			sums[m] += total / float64(len(dsets))
		}
		r.AddRow(row...)
	}
	avg := []interface{}{"average"}
	for _, m := range table1MethodsDensity {
		avg = append(avg, sums[m]/float64(len(sc.SampleSizes)))
	}
	r.AddRow(avg...)
	r.Notes = append(r.Notes,
		"paper shape: VAS+density best, stratified worst (per-bin clumping distorts blob perception); paper averages: 0.821/0.561/0.722/0.887",
		fmt.Sprintf("datasets: %d points each, ground truth 2/2/1/1 clusters", sc.DataN/2),
	)
	return r, nil
}
