package geom

import "fmt"

// Tile addressing follows the slippy-map convention over an arbitrary
// data-space extent instead of Web Mercator: at zoom level z the bounds
// rectangle is divided into a 2^z × 2^z grid of equal tiles. Tile x grows
// with data X (west → east) and tile y grows downward from the top of the
// extent (y = 0 covers MaxY), matching image coordinates so a tile server
// can hand the rectangles straight to the renderer.

// MaxTileZoom bounds the zoom level so 1<<z stays well inside an int and
// tile extents stay representable; 30 gives a 2^30-way split per axis,
// far below float64 resolution limits for any realistic dataset.
const MaxTileZoom = 30

// TileCount returns the number of tiles per axis at zoom z.
func TileCount(z int) int { return 1 << uint(z) }

// checkTile validates a (z, x, y) address.
func checkTile(z, x, y int) error {
	if z < 0 || z > MaxTileZoom {
		return fmt.Errorf("geom: tile zoom %d out of range [0,%d]", z, MaxTileZoom)
	}
	n := TileCount(z)
	if x < 0 || x >= n || y < 0 || y >= n {
		return fmt.Errorf("geom: tile (%d,%d) out of range [0,%d) at zoom %d", x, y, n, z)
	}
	return nil
}

// TileRect returns the sub-rectangle of bounds covered by tile (z, x, y).
// It errors on an empty bounds or an out-of-range address.
func TileRect(bounds Rect, z, x, y int) (Rect, error) {
	if bounds.IsEmpty() {
		return Rect{}, fmt.Errorf("geom: tile over empty bounds")
	}
	if err := checkTile(z, x, y); err != nil {
		return Rect{}, err
	}
	n := float64(TileCount(z))
	w := bounds.Width() / n
	h := bounds.Height() / n
	return Rect{
		MinX: bounds.MinX + float64(x)*w,
		MaxX: bounds.MinX + float64(x+1)*w,
		MinY: bounds.MaxY - float64(y+1)*h,
		MaxY: bounds.MaxY - float64(y)*h,
	}, nil
}

// TileForPoint returns the address of the tile containing p at zoom z.
// Points outside bounds are clamped to the edge tiles.
func TileForPoint(bounds Rect, p Point, z int) (x, y int, err error) {
	if bounds.IsEmpty() {
		return 0, 0, fmt.Errorf("geom: tile over empty bounds")
	}
	if err := checkTile(z, 0, 0); err != nil {
		return 0, 0, err
	}
	n := TileCount(z)
	fx := 0.0
	if bounds.Width() > 0 {
		fx = (p.X - bounds.MinX) / bounds.Width()
	}
	fy := 0.0
	if bounds.Height() > 0 {
		fy = (bounds.MaxY - p.Y) / bounds.Height()
	}
	x = int(Clamp(fx*float64(n), 0, float64(n-1)))
	y = int(Clamp(fy*float64(n), 0, float64(n-1)))
	return x, y, nil
}

// TileRange returns the inclusive tile address range [x0,x1]×[y0,y1] at
// zoom z whose tiles intersect viewport. An empty or zero viewport covers
// the full extent.
func TileRange(bounds, viewport Rect, z int) (x0, y0, x1, y1 int, err error) {
	if viewport == (Rect{}) || viewport.IsEmpty() {
		viewport = bounds
	}
	x0, y0, err = TileForPoint(bounds, Pt(viewport.MinX, viewport.MaxY), z)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	x1, y1, err = TileForPoint(bounds, Pt(viewport.MaxX, viewport.MinY), z)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return x0, y0, x1, y1, nil
}
