// Package geom provides the 2D geometric primitives shared by every other
// package in this repository: points, rectangles, distance metrics, and
// viewport transforms used when rendering scatter and map plots.
//
// All coordinates are float64. A Point is the unit of data throughout the
// system: each database tuple selected for visualization is projected onto
// the two indexed columns and becomes one Point (see DESIGN.md §1).
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the 2D visualization space. For a map plot X is
// longitude and Y is latitude; for a scatter plot they are the two plotted
// columns.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector p-q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p with both coordinates multiplied by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is the form used in the proximity kernels, where only
// ‖x-y‖² appears.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Equal reports whether p and q are exactly equal.
func (p Point) Equal(q Point) bool { return p.X == q.X && p.Y == q.Y }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle, inclusive of its boundary. It is used
// for R-tree bounding boxes, stratification bins, and zoom viewports.
// A Rect is valid when MinX <= MaxX and MinY <= MaxY.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		MinX: math.Min(a.X, b.X),
		MinY: math.Min(a.Y, b.Y),
		MaxX: math.Max(a.X, b.X),
		MaxY: math.Max(a.Y, b.Y),
	}
}

// RectAround returns the square of half-width r centred on p.
func RectAround(p Point, r float64) Rect {
	return Rect{MinX: p.X - r, MinY: p.Y - r, MaxX: p.X + r, MaxY: p.Y + r}
}

// EmptyRect returns the identity element for Union: a rectangle that
// contains nothing and unions with any rectangle to produce that rectangle.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// IsEmpty reports whether r contains no points.
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Width returns the horizontal extent of r, or 0 for an empty rectangle.
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxX - r.MinX
}

// Height returns the vertical extent of r, or 0 for an empty rectangle.
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxY - r.MinY
}

// Area returns the area of r, or 0 for an empty rectangle.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// UnionPoint returns the smallest rectangle containing r and p.
func (r Rect) UnionPoint(p Point) Rect {
	return r.Union(Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y})
}

// Enlargement returns the area increase needed for r to also cover s. It is
// the quantity minimized by the R-tree ChooseLeaf descent.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// DistToPoint returns the minimum Euclidean distance from p to r; zero when
// p is inside r. Used to prune k-nearest-neighbour searches.
func (r Rect) DistToPoint(p Point) float64 {
	if r.IsEmpty() {
		return math.Inf(1)
	}
	dx := math.Max(0, math.Max(r.MinX-p.X, p.X-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-p.Y, p.Y-r.MaxY))
	return math.Sqrt(dx*dx + dy*dy)
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Bounds returns the bounding rectangle of pts, or an empty rectangle when
// pts is empty.
func Bounds(pts []Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.UnionPoint(p)
	}
	return r
}

// MaxPairwiseDist returns an upper bound on the maximum pairwise distance
// among pts: the diagonal of the bounding box. The paper sets the kernel
// bandwidth ε from the maximum pairwise distance (§III footnote 2); the
// bounding-box diagonal is within a factor of √2 of the true value and is
// computable in a single pass.
func MaxPairwiseDist(pts []Point) float64 {
	b := Bounds(pts)
	if b.IsEmpty() {
		return 0
	}
	w, h := b.Width(), b.Height()
	return math.Sqrt(w*w + h*h)
}

// ExactMaxPairwiseDist returns the exact maximum pairwise distance by
// scanning the convex-hull candidates of the bounding box corners. For small
// slices (n <= 2048) it is exact via the O(n²) scan; for larger inputs it
// falls back to the bounding-box diagonal bound.
func ExactMaxPairwiseDist(pts []Point) float64 {
	const cutoff = 2048
	if len(pts) > cutoff {
		return MaxPairwiseDist(pts)
	}
	var best float64
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist2(pts[j]); d > best {
				best = d
			}
		}
	}
	return math.Sqrt(best)
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// Clamp limits v to the interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
