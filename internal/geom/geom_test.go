package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
}

func TestDist(t *testing.T) {
	if d := Pt(0, 0).Dist(Pt(3, 4)); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d2 := Pt(0, 0).Dist2(Pt(3, 4)); d2 != 25 {
		t.Errorf("Dist2 = %v, want 25", d2)
	}
	if d := Pt(1, 1).Dist(Pt(1, 1)); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if anyNaNInf(ax, ay, bx, by) {
			return true
		}
		a, b := Pt(ax, ay), Pt(bx, by)
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDist2ConsistentWithDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if anyNaNInf(ax, ay, bx, by) {
			return true
		}
		// Keep magnitudes sane to avoid overflow in the square.
		a := Pt(math.Mod(ax, 1e6), math.Mod(ay, 1e6))
		b := Pt(math.Mod(bx, 1e6), math.Mod(by, 1e6))
		d := a.Dist(b)
		return math.Abs(d*d-a.Dist2(b)) <= 1e-6*(1+a.Dist2(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewRectNormalizesCorners(t *testing.T) {
	r := NewRect(Pt(5, -1), Pt(-2, 7))
	want := Rect{MinX: -2, MinY: -1, MaxX: 5, MaxY: 7}
	if r != want {
		t.Errorf("NewRect = %v, want %v", r, want)
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect not empty")
	}
	if e.Area() != 0 || e.Width() != 0 || e.Height() != 0 {
		t.Errorf("empty rect has non-zero metrics: area=%v w=%v h=%v", e.Area(), e.Width(), e.Height())
	}
	r := Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 3}
	if got := e.Union(r); got != r {
		t.Errorf("empty ∪ r = %v, want %v", got, r)
	}
	if got := r.Union(e); got != r {
		t.Errorf("r ∪ empty = %v, want %v", got, r)
	}
	if e.Intersects(r) {
		t.Error("empty intersects r")
	}
	if e.Contains(Pt(0, 0)) {
		t.Error("empty contains a point")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 5}
	for _, tc := range []struct {
		p    Point
		want bool
	}{
		{Pt(5, 2), true},
		{Pt(0, 0), true},  // boundary inclusive
		{Pt(10, 5), true}, // far corner inclusive
		{Pt(10.1, 5), false},
		{Pt(-0.1, 2), false},
		{Pt(5, 5.01), false},
	} {
		if got := r.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{MinX: 2, MinY: 2, MaxX: 6, MaxY: 6}, true},
		{Rect{MinX: 4, MinY: 4, MaxX: 8, MaxY: 8}, true}, // corner touch
		{Rect{MinX: 5, MinY: 0, MaxX: 6, MaxY: 4}, false},
		{Rect{MinX: 0, MinY: 5, MaxX: 4, MaxY: 6}, false},
		{Rect{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}, true}, // containment
	}
	for _, tc := range cases {
		if got := a.Intersects(tc.b); got != tc.want {
			t.Errorf("Intersects(%v) = %v, want %v", tc.b, got, tc.want)
		}
		if got := tc.b.Intersects(a); got != tc.want {
			t.Errorf("Intersects symmetric(%v) = %v, want %v", tc.b, got, tc.want)
		}
	}
}

func TestUnionContainsBothProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := randRect(rng)
		b := randRect(rng)
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			t.Fatalf("union %v does not contain %v and %v", u, a, b)
		}
		// Union is the *smallest*: its corners come from a or b.
		if u.MinX != math.Min(a.MinX, b.MinX) || u.MaxY != math.Max(a.MaxY, b.MaxY) {
			t.Fatalf("union %v is not tight for %v, %v", u, a, b)
		}
	}
}

func TestUnionPointAndBounds(t *testing.T) {
	pts := []Point{Pt(1, 1), Pt(-2, 5), Pt(4, -3)}
	b := Bounds(pts)
	want := Rect{MinX: -2, MinY: -3, MaxX: 4, MaxY: 5}
	if b != want {
		t.Errorf("Bounds = %v, want %v", b, want)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("bounds %v missing %v", b, p)
		}
	}
	if !Bounds(nil).IsEmpty() {
		t.Error("Bounds(nil) not empty")
	}
}

func TestEnlargement(t *testing.T) {
	a := Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}
	inside := Rect{MinX: 0.5, MinY: 0.5, MaxX: 1, MaxY: 1}
	if e := a.Enlargement(inside); e != 0 {
		t.Errorf("enlargement for contained rect = %v, want 0", e)
	}
	outside := Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 2}
	if e := a.Enlargement(outside); e != 4 {
		t.Errorf("enlargement = %v, want 4", e)
	}
}

func TestDistToPoint(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}
	if d := r.DistToPoint(Pt(1, 1)); d != 0 {
		t.Errorf("inside dist = %v", d)
	}
	if d := r.DistToPoint(Pt(5, 1)); d != 3 {
		t.Errorf("right dist = %v, want 3", d)
	}
	if d := r.DistToPoint(Pt(5, 6)); math.Abs(d-5) > 1e-12 {
		t.Errorf("corner dist = %v, want 5", d)
	}
	if d := EmptyRect().DistToPoint(Pt(0, 0)); !math.IsInf(d, 1) {
		t.Errorf("empty rect dist = %v, want +Inf", d)
	}
}

func TestRectAround(t *testing.T) {
	r := RectAround(Pt(1, 2), 0.5)
	want := Rect{MinX: 0.5, MinY: 1.5, MaxX: 1.5, MaxY: 2.5}
	if r != want {
		t.Errorf("RectAround = %v, want %v", r, want)
	}
}

func TestMaxPairwiseDist(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(3, 4), Pt(1, 1)}
	// Bounding-box diagonal = dist((0,0),(3,4)) = 5 here.
	if d := MaxPairwiseDist(pts); d != 5 {
		t.Errorf("MaxPairwiseDist = %v, want 5", d)
	}
	if d := ExactMaxPairwiseDist(pts); d != 5 {
		t.Errorf("ExactMaxPairwiseDist = %v, want 5", d)
	}
	if d := MaxPairwiseDist(nil); d != 0 {
		t.Errorf("MaxPairwiseDist(nil) = %v", d)
	}
	// The bound dominates the exact value.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		var ps []Point
		for i := 0; i < 50; i++ {
			ps = append(ps, Pt(rng.NormFloat64(), rng.NormFloat64()))
		}
		if MaxPairwiseDist(ps) < ExactMaxPairwiseDist(ps)-1e-9 {
			t.Fatal("bounding-box diagonal below exact max pairwise distance")
		}
	}
}

func TestLerpClamp(t *testing.T) {
	if v := Lerp(2, 6, 0.25); v != 3 {
		t.Errorf("Lerp = %v", v)
	}
	if v := Clamp(5, 0, 3); v != 3 {
		t.Errorf("Clamp high = %v", v)
	}
	if v := Clamp(-1, 0, 3); v != 0 {
		t.Errorf("Clamp low = %v", v)
	}
	if v := Clamp(2, 0, 3); v != 2 {
		t.Errorf("Clamp mid = %v", v)
	}
}

func TestZeroWidthRectIsNotEmpty(t *testing.T) {
	// A degenerate (line/point) rect still contains its points.
	r := Rect{MinX: 1, MinY: 2, MaxX: 1, MaxY: 5}
	if r.IsEmpty() {
		t.Fatal("degenerate rect reported empty")
	}
	if !r.Contains(Pt(1, 3)) {
		t.Error("degenerate rect missing its own point")
	}
}

func randRect(rng *rand.Rand) Rect {
	a := Pt(rng.NormFloat64()*10, rng.NormFloat64()*10)
	b := Pt(rng.NormFloat64()*10, rng.NormFloat64()*10)
	return NewRect(a, b)
}

func anyNaNInf(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}
