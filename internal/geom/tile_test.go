package geom

import (
	"math"
	"testing"
)

func TestTileRectZoomZero(t *testing.T) {
	b := Rect{MinX: -10, MinY: 0, MaxX: 30, MaxY: 20}
	got, err := TileRect(b, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Errorf("z=0 tile = %v, want full bounds %v", got, b)
	}
}

func TestTileRectQuadrants(t *testing.T) {
	b := Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4}
	// Slippy convention: y=0 is the TOP row (MaxY side).
	topLeft, err := TileRect(b, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := Rect{MinX: 0, MinY: 2, MaxX: 2, MaxY: 4}
	if topLeft != want {
		t.Errorf("tile (1,0,0) = %v, want %v", topLeft, want)
	}
	bottomRight, err := TileRect(b, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want = Rect{MinX: 2, MinY: 0, MaxX: 4, MaxY: 2}
	if bottomRight != want {
		t.Errorf("tile (1,1,1) = %v, want %v", bottomRight, want)
	}
}

func TestTileRectTiling(t *testing.T) {
	// Tiles at any zoom must partition the bounds: union equals bounds,
	// adjacent tiles share edges exactly.
	b := Rect{MinX: -3, MinY: 1, MaxX: 9, MaxY: 11}
	for z := 0; z <= 4; z++ {
		n := TileCount(z)
		u := EmptyRect()
		var area float64
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				r, err := TileRect(b, z, x, y)
				if err != nil {
					t.Fatal(err)
				}
				u = u.Union(r)
				area += r.Area()
			}
		}
		if u != b {
			t.Errorf("z=%d union = %v, want %v", z, u, b)
		}
		if math.Abs(area-b.Area()) > 1e-9*b.Area() {
			t.Errorf("z=%d total area = %g, want %g", z, area, b.Area())
		}
	}
}

func TestTileRectErrors(t *testing.T) {
	b := Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	cases := []struct{ z, x, y int }{
		{-1, 0, 0}, {MaxTileZoom + 1, 0, 0},
		{1, 2, 0}, {1, 0, 2}, {1, -1, 0}, {1, 0, -1},
	}
	for _, c := range cases {
		if _, err := TileRect(b, c.z, c.x, c.y); err == nil {
			t.Errorf("TileRect(z=%d,x=%d,y=%d): want error", c.z, c.x, c.y)
		}
	}
	if _, err := TileRect(EmptyRect(), 0, 0, 0); err == nil {
		t.Error("empty bounds: want error")
	}
}

func TestTileForPointRoundTrip(t *testing.T) {
	b := Rect{MinX: -5, MinY: -5, MaxX: 5, MaxY: 5}
	pts := []Point{Pt(-5, -5), Pt(0, 0), Pt(4.9, -4.9), Pt(5, 5), Pt(-1.3, 2.7)}
	for z := 0; z <= 6; z++ {
		for _, p := range pts {
			x, y, err := TileForPoint(b, p, z)
			if err != nil {
				t.Fatal(err)
			}
			r, err := TileRect(b, z, x, y)
			if err != nil {
				t.Fatalf("TileForPoint(%v, z=%d) = (%d,%d): %v", p, z, x, y, err)
			}
			if !r.Contains(p) {
				t.Errorf("z=%d: point %v not in its tile rect %v", z, p, r)
			}
		}
	}
	// Outside points clamp to edge tiles.
	x, y, err := TileForPoint(b, Pt(100, -100), 2)
	if err != nil {
		t.Fatal(err)
	}
	if x != 3 || y != 3 {
		t.Errorf("clamped tile = (%d,%d), want (3,3)", x, y)
	}
}

func TestTileRange(t *testing.T) {
	b := Rect{MinX: 0, MinY: 0, MaxX: 8, MaxY: 8}
	// Full extent (zero viewport) covers every tile.
	x0, y0, x1, y1, err := TileRange(b, Rect{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if x0 != 0 || y0 != 0 || x1 != 3 || y1 != 3 {
		t.Errorf("full range = (%d,%d)-(%d,%d), want (0,0)-(3,3)", x0, y0, x1, y1)
	}
	// A quadrant viewport touches only its tiles.
	x0, y0, x1, y1, err = TileRange(b, Rect{MinX: 0.1, MinY: 0.1, MaxX: 3.9, MaxY: 3.9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if x0 != 0 || y0 != 1 || x1 != 0 || y1 != 1 {
		t.Errorf("bottom-left quadrant range = (%d,%d)-(%d,%d), want (0,1)-(0,1)", x0, y0, x1, y1)
	}
}
