package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// JobSet tracks named background jobs: an in-flight gauge and a
// duration histogram per job name. Job names are low-cardinality
// ("compaction", "snapshot_save", "tail_write"); the map is built
// lazily and never shrinks.
type JobSet struct {
	mu   sync.Mutex
	jobs map[string]*job
}

type job struct {
	inflight atomic.Int64
	hist     *Histogram
}

// NewJobSet makes an empty job set.
func NewJobSet() *JobSet {
	return &JobSet{jobs: make(map[string]*job)}
}

// DefaultJobs is the process-wide job set. Background work in deep
// layers (store compaction, snapshot persistence) records here so the
// HTTP layer can expose it without plumbing a registry downward.
var DefaultJobs = NewJobSet()

func (s *JobSet) get(name string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[name]
	if j == nil {
		j = &job{hist: NewHistogram(DefaultJobBuckets)}
		s.jobs[name] = j
	}
	return j
}

// Start marks one execution of the named job as in flight and returns
// a timer; call End when the job finishes.
func (s *JobSet) Start(name string) JobTimer {
	j := s.get(name)
	j.inflight.Add(1)
	return JobTimer{j: j, start: time.Now()}
}

// StartJob starts a timer on the process-wide DefaultJobs set.
func StartJob(name string) JobTimer {
	return DefaultJobs.Start(name)
}

// JobTimer is one in-flight job execution. The zero value's End is a
// no-op.
type JobTimer struct {
	j     *job
	start time.Time
}

// End marks the job finished and records its duration.
func (t JobTimer) End() {
	if t.j == nil {
		return
	}
	t.j.inflight.Add(-1)
	t.j.hist.ObserveDuration(time.Since(t.start))
}

// JobStats is one job's exported state.
type JobStats struct {
	Name     string
	Inflight int64
	Hist     HistSnapshot
}

// Snapshot returns per-job stats sorted by name.
func (s *JobSet) Snapshot() []JobStats {
	s.mu.Lock()
	names := make([]string, 0, len(s.jobs))
	for name := range s.jobs {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	out := make([]JobStats, 0, len(names))
	for _, name := range names {
		j := s.get(name)
		out = append(out, JobStats{Name: name, Inflight: j.inflight.Load(), Hist: j.hist.Snapshot()})
	}
	return out
}
