// Package obs is the observability substrate of the serving stack:
// request-scoped traces (per-stage span timing carried through
// context.Context), a lock-cheap slow-query log, minimal Prometheus
// exposition primitives (cumulative histograms, text-format writers),
// and timed background-job instrumentation (compaction, snapshot saves,
// tail-log writes).
//
// The package sits below every serving layer — store, query, server,
// the vas façade — and imports nothing from the repository, so any
// layer can record into it without dependency cycles.
//
// Tracing is strictly pay-for-what-you-use: a Span started from a
// context that carries no Trace is a zero value whose End is a no-op,
// with no allocation and no clock read, so instrumented hot paths cost
// nothing when nobody is watching.
package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Stage identifies one timed phase of a request. Stages are disjoint
// wall-clock intervals: summing a trace's stage durations approximates
// the request total, and the gap is untraced overhead.
type Stage uint8

const (
	// StagePlan is sample selection and table resolution.
	StagePlan Stage = iota
	// StageProbe is the spatial-index probe (base cells + delta buckets).
	StageProbe
	// StageResidual is per-row predicate evaluation outside the probe:
	// the linear fallback scan and the uncovered appended tail.
	StageResidual
	// StageGather is row projection (Points, density Gather).
	StageGather
	// StageRender is rasterizing points into a tile.
	StageRender
	// StageEncode is response encoding (PNG or JSON).
	StageEncode
	// StageCache is tile-cache interaction (lookup, single-flight wait,
	// insert) minus the render itself.
	StageCache
	// NumStages bounds the Stage enum; it is not a stage.
	NumStages
)

var stageNames = [NumStages]string{
	"plan", "probe", "residual", "gather", "render", "encode", "cache",
}

// String returns the stage's exposition label.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// stageAcc accumulates one stage's time within a single trace. Traces
// are single-goroutine until Finish publishes them, so plain fields
// suffice; the slow log's mutex provides the happens-before edge for
// later readers.
type stageAcc struct {
	nanos int64
	count int32
}

// Annot is one key-value annotation on a trace.
type Annot struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Trace is a request-scoped span recorder: per-stage accumulated
// durations, key-value annotations, and the scan statistics of the row
// selection that answered the request. A Trace is built by one
// goroutine and becomes immutable after Finish; it is not safe for
// concurrent mutation.
type Trace struct {
	// ID is a process-unique request id.
	ID uint64
	// Route is the HTTP route label the request arrived on.
	Route string
	// Table is the base table the request addressed, when known.
	Table string
	// Start is when the trace began.
	Start time.Time
	// Total is the request's wall time, set by Finish.
	Total time.Duration
	// Status is the HTTP status the request answered with, when the
	// trace was born in the HTTP layer.
	Status int
	// Scan carries the request's scan statistics in a JSON-marshalable
	// form (the server attaches its wire struct).
	Scan any

	stages [NumStages]stageAcc
	annots []Annot
}

var traceID atomic.Uint64

// NewTrace starts a trace for the given route.
func NewTrace(route string) *Trace {
	return &Trace{ID: traceID.Add(1), Route: route, Start: time.Now()}
}

// Finish stamps the total duration and returns it.
func (t *Trace) Finish() time.Duration {
	t.Total = time.Since(t.Start)
	return t.Total
}

// Annotate attaches a key-value annotation. Nil-safe.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.annots = append(t.annots, Annot{Key: key, Value: value})
}

// SetTable records the base table the request addressed. Nil-safe.
func (t *Trace) SetTable(table string) {
	if t != nil {
		t.Table = table
	}
}

// SetScan attaches the scan statistics of the row selection. Nil-safe.
func (t *Trace) SetScan(scan any) {
	if t != nil {
		t.Scan = scan
	}
}

// StageDuration returns the accumulated duration of one stage.
func (t *Trace) StageDuration(s Stage) time.Duration {
	return time.Duration(t.stages[s].nanos)
}

// StageCount returns how many spans were recorded for one stage.
func (t *Trace) StageCount(s Stage) int {
	return int(t.stages[s].count)
}

// Span is one in-flight stage measurement. The zero Span (no trace
// attached) is valid: End is a no-op. Spans are values — starting and
// ending one never allocates.
type Span struct {
	tr    *Trace
	stage Stage
	start time.Time
}

// StartSpan begins timing a stage on the trace. Nil-safe: a nil trace
// yields the zero Span without reading the clock.
func (t *Trace) StartSpan(stage Stage) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, stage: stage, start: time.Now()}
}

// End stops the span and folds its duration into the trace.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	acc := &s.tr.stages[s.stage]
	acc.nanos += time.Since(s.start).Nanoseconds()
	acc.count++
}

// ctxKey is the context key Trace rides under.
type ctxKey struct{}

// WithTrace returns a context carrying the trace.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil. A nil context
// is treated as traceless.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

// StartSpan begins timing a stage against the context's trace; with no
// trace attached it returns the no-op zero Span without allocating.
func StartSpan(ctx context.Context, stage Stage) Span {
	return FromContext(ctx).StartSpan(stage)
}

// StageTiming is one stage's share of a trace, in wire form.
type StageTiming struct {
	Stage  string  `json:"stage"`
	Millis float64 `json:"millis"`
	Count  int     `json:"count"`
}

// TraceReport is the JSON form of a finished trace.
type TraceReport struct {
	ID          uint64    `json:"id"`
	Route       string    `json:"route"`
	Table       string    `json:"table,omitempty"`
	Status      int       `json:"status,omitempty"`
	Start       time.Time `json:"start"`
	TotalMillis float64   `json:"totalMillis"`
	// StagesMillis sums the per-stage durations; TotalMillis minus it is
	// untraced overhead.
	StagesMillis float64       `json:"stagesMillis"`
	Stages       []StageTiming `json:"stages"`
	Annotations  []Annot       `json:"annotations,omitempty"`
	Scan         any           `json:"scan,omitempty"`
}

// Report converts a finished trace to its wire form. Stages with no
// recorded span are omitted.
func (t *Trace) Report() TraceReport {
	r := TraceReport{
		ID:          t.ID,
		Route:       t.Route,
		Table:       t.Table,
		Status:      t.Status,
		Start:       t.Start,
		TotalMillis: float64(t.Total) / float64(time.Millisecond),
		Annotations: t.annots,
		Scan:        t.Scan,
	}
	for s := Stage(0); s < NumStages; s++ {
		acc := t.stages[s]
		if acc.count == 0 {
			continue
		}
		ms := float64(acc.nanos) / float64(time.Millisecond)
		r.Stages = append(r.Stages, StageTiming{Stage: s.String(), Millis: ms, Count: int(acc.count)})
		r.StagesMillis += ms
	}
	return r
}
