package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceStagesAndReport(t *testing.T) {
	tr := NewTrace("query")
	tr.SetTable("gps")
	sp := tr.StartSpan(StageProbe)
	time.Sleep(time.Millisecond)
	sp.End()
	sp = tr.StartSpan(StageProbe)
	sp.End()
	sp = tr.StartSpan(StageResidual)
	sp.End()
	tr.Annotate("filters", "2")
	tr.SetScan(map[string]int{"rowsExamined": 42})
	total := tr.Finish()
	if total <= 0 {
		t.Fatalf("total = %v", total)
	}
	if got := tr.StageCount(StageProbe); got != 2 {
		t.Fatalf("probe count = %d, want 2", got)
	}
	if tr.StageDuration(StageProbe) < time.Millisecond {
		t.Fatalf("probe duration = %v, want >= 1ms", tr.StageDuration(StageProbe))
	}
	rep := tr.Report()
	if rep.Table != "gps" || rep.Route != "query" {
		t.Fatalf("report identity = %q/%q", rep.Route, rep.Table)
	}
	if len(rep.Stages) != 2 {
		t.Fatalf("report stages = %d, want 2 (gather et al omitted)", len(rep.Stages))
	}
	if rep.StagesMillis <= 0 || rep.StagesMillis > rep.TotalMillis*1.5 {
		t.Fatalf("stagesMillis = %v vs total %v", rep.StagesMillis, rep.TotalMillis)
	}
	if len(rep.Annotations) != 1 || rep.Annotations[0].Key != "filters" {
		t.Fatalf("annotations = %+v", rep.Annotations)
	}
}

func TestSpanWithoutTraceIsAllocationFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		sp := StartSpan(ctx, StageProbe)
		sp.End()
		sp2 := FromContext(ctx).StartSpan(StageResidual)
		sp2.End()
	})
	if allocs != 0 {
		t.Fatalf("no-trace span path allocates %v per run, want 0", allocs)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(nil) != nil {
		t.Fatal("nil context should carry no trace")
	}
	tr := NewTrace("tile")
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost in context")
	}
	sp := StartSpan(ctx, StageRender)
	sp.End()
	if tr.StageCount(StageRender) != 1 {
		t.Fatal("ctx span did not record")
	}
}

func TestSlowLogThresholdAndRing(t *testing.T) {
	l := NewSlowLog(3, 10*time.Millisecond)
	mk := func(id int, d time.Duration) *Trace {
		tr := NewTrace("query")
		tr.ID = uint64(id)
		tr.SetTable("gps")
		tr.Total = d
		return tr
	}
	l.Record(mk(1, 5*time.Millisecond)) // below threshold: dropped
	for i := 2; i <= 6; i++ {
		l.Record(mk(i, time.Duration(i)*10*time.Millisecond))
	}
	rep := l.Report()
	if rep.Kept != 5 {
		t.Fatalf("kept = %d, want 5", rep.Kept)
	}
	if len(rep.Traces) != 3 {
		t.Fatalf("retained = %d, want 3", len(rep.Traces))
	}
	// Newest-first: ids 6, 5, 4.
	for i, want := range []uint64{6, 5, 4} {
		if rep.Traces[i].ID != want {
			t.Fatalf("trace[%d].ID = %d, want %d", i, rep.Traces[i].ID, want)
		}
	}
	if rep.Slowest == nil || rep.Slowest.ID != 6 {
		t.Fatalf("slowest = %+v, want id 6", rep.Slowest)
	}
	if len(rep.Tables) != 1 || rep.Tables[0].Count != 5 {
		t.Fatalf("tables = %+v", rep.Tables)
	}
	if rep.Tables[0].MaxMillis != 60 {
		t.Fatalf("max = %v ms, want 60", rep.Tables[0].MaxMillis)
	}
}

func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(8, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := NewTrace("query")
				tr.SetTable("t")
				tr.Total = time.Duration(i+1) * time.Microsecond
				l.Record(tr)
				if i%50 == 0 {
					_ = l.Report()
				}
			}
		}()
	}
	wg.Wait()
	rep := l.Report()
	if rep.Kept != 1600 {
		t.Fatalf("kept = %d, want 1600", rep.Kept)
	}
	if len(rep.Traces) != 8 {
		t.Fatalf("retained = %d, want 8", len(rep.Traces))
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets)
	for i := 0; i < 99; i++ {
		h.Observe(0.0001)
	}
	h.Observe(0.04)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Quantile(0.5); got != 0.0001 {
		t.Fatalf("p50 = %v, want 0.0001", got)
	}
	if got := s.Quantile(0.999); got != 0.05 {
		t.Fatalf("p99.9 = %v, want bucket bound 0.05", got)
	}
	wantSum := 99*0.0001 + 0.04
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramOverflowQuantileIsInf(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets)
	h.Observe(10) // beyond 2.5s: overflow bucket
	if got := h.Snapshot().Quantile(0.99); !math.IsInf(got, 1) {
		t.Fatalf("p99 = %v, want +Inf", got)
	}
}

func TestHistogramEmptyQuantileZero(t *testing.T) {
	if got := NewHistogram(DefaultLatencyBuckets).Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty p50 = %v, want 0", got)
	}
}

// TestHistogramConcurrentSnapshotConsistent drives concurrent observes
// while snapshotting; the snapshot invariant (count == sum of buckets,
// quantile never above +Inf spuriously) must hold because each bucket
// is loaded exactly once.
func TestHistogramConcurrentSnapshotConsistent(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(0.0005)
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		s := h.Snapshot()
		var total int64
		for _, c := range s.Counts {
			total += c
		}
		if total != s.Count {
			t.Fatalf("snapshot count %d != bucket sum %d", s.Count, total)
		}
		if q := s.Quantile(1.0); s.Count > 0 && q != 0.001 {
			t.Fatalf("quantile = %v under concurrency, want 0.001", q)
		}
	}
	close(stop)
	wg.Wait()
}

func TestExpoWriterHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var sb strings.Builder
	e := NewExpoWriter(&sb)
	e.Histogram("x_seconds", "test", `route="q"`, h.Snapshot())
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE x_seconds histogram",
		`x_seconds_bucket{route="q",le="0.1"} 1`,
		`x_seconds_bucket{route="q",le="1"} 2`,
		`x_seconds_bucket{route="q",le="+Inf"} 3`,
		`x_seconds_sum{route="q"} 5.55`,
		`x_seconds_count{route="q"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestQuoteLabel(t *testing.T) {
	if got := QuoteLabel(`a"b\c` + "\n"); got != `"a\"b\\c\n"` {
		t.Fatalf("QuoteLabel = %s", got)
	}
}

func TestJobSet(t *testing.T) {
	s := NewJobSet()
	jt := s.Start("compaction")
	snap := s.Snapshot()
	if len(snap) != 1 || snap[0].Inflight != 1 {
		t.Fatalf("inflight snapshot = %+v", snap)
	}
	jt.End()
	snap = s.Snapshot()
	if snap[0].Inflight != 0 || snap[0].Hist.Count != 1 {
		t.Fatalf("post-end snapshot = %+v", snap)
	}
	// Zero JobTimer must be a no-op.
	JobTimer{}.End()
}
