package obs

import (
	"math/rand"
	"time"
)

// Backoff defaults, used when the corresponding field is zero. The base
// is deliberately short — the first retry after a transient failure
// (e.g. a momentarily full disk) should come quickly — and the ceiling
// keeps a persistently broken target from being hammered.
const (
	DefaultBackoffBase   = 1 * time.Second
	DefaultBackoffMax    = 60 * time.Second
	DefaultBackoffJitter = 0.5
)

// Backoff computes jittered exponential retry delays for background
// work that keeps failing: each Advance doubles the delay (capped at
// Max) and subtracts a uniform random slice of up to Jitter of it, so a
// fleet of processes that degraded at the same instant spreads its
// retries instead of thundering in lockstep. The zero value is ready to
// use with the defaults above. Not safe for concurrent use; callers
// hold their own lock (vas.Catalog advances it under snapMu).
type Backoff struct {
	// Base is the un-jittered first-retry delay (DefaultBackoffBase if
	// zero).
	Base time.Duration
	// Max caps the un-jittered exponential delay (DefaultBackoffMax if
	// zero).
	Max time.Duration
	// Jitter is the fraction of each delay randomized away: the
	// returned delay is uniform in [d·(1−Jitter), d]. Zero means
	// DefaultBackoffJitter; negative disables jitter entirely
	// (deterministic delays, for tests).
	Jitter float64

	failures int
	cur      time.Duration
	// rnd overrides the jitter source in tests; nil means
	// math/rand.Float64.
	rnd func() float64
}

// Advance records one more consecutive failure and returns the delay to
// wait before the retry after it. The n-th consecutive failure yields
// roughly Base·2^(n−1), jittered downward, never above Max.
func (b *Backoff) Advance() time.Duration {
	base, max, jitter := b.Base, b.Max, b.Jitter
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	if jitter == 0 {
		jitter = DefaultBackoffJitter
	}
	b.failures++
	d := base
	// Shift with an overflow/cap guard: past the ceiling the streak
	// length no longer matters.
	for i := 1; i < b.failures && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if jitter > 0 {
		r := rand.Float64
		if b.rnd != nil {
			r = b.rnd
		}
		d -= time.Duration(jitter * r() * float64(d))
	}
	b.cur = d
	return d
}

// Current returns the delay chosen by the most recent Advance, or zero
// when no failure has been recorded since the last Reset — a healthy
// caller should not wait at all.
func (b *Backoff) Current() time.Duration { return b.cur }

// Failures returns the length of the current consecutive-failure
// streak.
func (b *Backoff) Failures() int { return b.failures }

// Reset clears the failure streak after a success: the next Advance
// starts again from Base, and Current reports zero until then.
func (b *Backoff) Reset() {
	b.failures = 0
	b.cur = 0
}
