package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SlowLog retains the most recent finished traces whose total duration
// met a configurable threshold, plus the single slowest trace seen and
// a per-table latency summary. The threshold check is a single atomic
// load, so traffic below it never contends on the lock.
type SlowLog struct {
	thresholdNanos atomic.Int64

	mu      sync.Mutex
	ring    []*Trace // most recent kept traces; ring[next] is the oldest slot
	next    int
	kept    int64 // traces kept since process start
	slowest *Trace
	byTable map[string]*tableAgg
}

type tableAgg struct {
	count    int64
	sumNanos int64
	maxNanos int64
}

// NewSlowLog makes a slow log keeping at most capacity traces at or
// above threshold. capacity <= 0 defaults to 64.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = 64
	}
	l := &SlowLog{
		ring:    make([]*Trace, 0, capacity),
		byTable: make(map[string]*tableAgg),
	}
	l.thresholdNanos.Store(int64(threshold))
	return l
}

// SetThreshold changes the minimum total duration a trace must reach
// to be retained. Safe to call concurrently with Record.
func (l *SlowLog) SetThreshold(d time.Duration) {
	l.thresholdNanos.Store(int64(d))
}

// Threshold returns the current retention threshold.
func (l *SlowLog) Threshold() time.Duration {
	return time.Duration(l.thresholdNanos.Load())
}

// Record offers a finished trace to the log. Traces under the
// threshold return after one atomic load without locking. Nil-safe on
// both receiver and trace.
func (l *SlowLog) Record(tr *Trace) {
	if l == nil || tr == nil {
		return
	}
	if int64(tr.Total) < l.thresholdNanos.Load() {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, tr)
	} else {
		l.ring[l.next] = tr
		l.next = (l.next + 1) % len(l.ring)
	}
	l.kept++
	if l.slowest == nil || tr.Total > l.slowest.Total {
		l.slowest = tr
	}
	if tr.Table != "" {
		agg := l.byTable[tr.Table]
		if agg == nil {
			agg = &tableAgg{}
			l.byTable[tr.Table] = agg
		}
		agg.count++
		agg.sumNanos += int64(tr.Total)
		if int64(tr.Total) > agg.maxNanos {
			agg.maxNanos = int64(tr.Total)
		}
	}
}

// TableSummary aggregates kept traces for one base table.
type TableSummary struct {
	Table       string  `json:"table"`
	Count       int64   `json:"count"`
	TotalMillis float64 `json:"totalMillis"`
	AvgMillis   float64 `json:"avgMillis"`
	MaxMillis   float64 `json:"maxMillis"`
}

// SlowReport is the JSON body served at /debug/slow.
type SlowReport struct {
	ThresholdMillis float64        `json:"thresholdMillis"`
	Kept            int64          `json:"kept"`
	Traces          []TraceReport  `json:"traces"`
	Slowest         *TraceReport   `json:"slowest,omitempty"`
	Tables          []TableSummary `json:"tables"`
}

// Report snapshots the log: retained traces newest-first, the slowest
// trace overall, and per-table summaries sorted by table name.
func (l *SlowLog) Report() SlowReport {
	l.mu.Lock()
	defer l.mu.Unlock()
	r := SlowReport{
		ThresholdMillis: float64(l.thresholdNanos.Load()) / float64(time.Millisecond),
		Kept:            l.kept,
		Traces:          make([]TraceReport, 0, len(l.ring)),
		Tables:          make([]TableSummary, 0, len(l.byTable)),
	}
	// Walk backwards from the newest slot so the report reads
	// newest-first.
	for i := 0; i < len(l.ring); i++ {
		idx := (l.next - 1 - i + 2*len(l.ring)) % len(l.ring)
		if len(l.ring) < cap(l.ring) {
			// Ring not yet wrapped: slots fill in order, newest is last.
			idx = len(l.ring) - 1 - i
		}
		r.Traces = append(r.Traces, l.ring[idx].Report())
	}
	if l.slowest != nil {
		rep := l.slowest.Report()
		r.Slowest = &rep
	}
	for table, agg := range l.byTable {
		sum := float64(agg.sumNanos) / float64(time.Millisecond)
		r.Tables = append(r.Tables, TableSummary{
			Table:       table,
			Count:       agg.count,
			TotalMillis: sum,
			AvgMillis:   sum / float64(agg.count),
			MaxMillis:   float64(agg.maxNanos) / float64(time.Millisecond),
		})
	}
	sort.Slice(r.Tables, func(i, j int) bool { return r.Tables[i].Table < r.Tables[j].Table })
	return r
}
