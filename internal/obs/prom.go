package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the request-latency bucket upper bounds in
// seconds, 50µs to 2.5s — the same ladder the pre-histogram metrics
// used, so dashboards keep their resolution.
var DefaultLatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25,
	0.5, 1, 2.5,
}

// DefaultStageBuckets extend the latency ladder down to 10µs: single
// stages of a fast query live well under the 50µs request floor.
var DefaultStageBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25,
	0.5, 1, 2.5,
}

// DefaultJobBuckets cover background jobs (compaction, snapshot save,
// tail-log write), which run from sub-millisecond fsyncs to
// multi-second full-catalog saves.
var DefaultJobBuckets = []float64{
	0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram is a concurrency-safe cumulative histogram with Prometheus
// semantics: fixed upper bounds in ascending order plus an implicit
// +Inf overflow bucket, a running sum, and a total count derived from
// the buckets. Observations are lock-free atomic adds.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sumBits atomic.Uint64  // float64 bits, updated by CAS
}

// NewHistogram makes a histogram over the given ascending upper bounds
// (seconds for duration histograms). The bounds slice is not copied.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// HistSnapshot is a consistent point-in-time copy of a histogram: each
// bucket counter is loaded exactly once, so concurrent Observe calls
// can never produce a cumulative count that runs backwards or a
// quantile above the true upper bound.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64 // per-bucket counts; len(Bounds)+1, last is +Inf
	Sum    float64
	Count  int64
}

// Snapshot copies the histogram's state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Merge folds another snapshot of the same bucket layout into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if len(s.Counts) == 0 {
		s.Bounds = o.Bounds
		s.Counts = append([]int64(nil), o.Counts...)
		s.Sum = o.Sum
		s.Count = o.Count
		return
	}
	for i := range o.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Sum += o.Sum
	s.Count += o.Count
}

// Quantile returns an upper bound for the p-quantile (0 < p <= 1): the
// upper bound of the bucket containing the p-th observation, or +Inf
// when it landed in the overflow bucket. Returns 0 for an empty
// histogram.
func (s HistSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// FormatValue renders a sample value in exposition form. Infinities
// become +Inf/-Inf as the text format requires.
func FormatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// QuoteLabel renders a label value with exposition escaping
// (backslash, double quote, newline).
func QuoteLabel(v string) string {
	out := make([]byte, 0, len(v)+2)
	out = append(out, '"')
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, c)
		}
	}
	out = append(out, '"')
	return string(out)
}

// ExpoWriter emits Prometheus text-format (version 0.0.4) families,
// writing each family's # HELP / # TYPE header exactly once.
type ExpoWriter struct {
	w      io.Writer
	headed map[string]bool
	err    error
}

// NewExpoWriter wraps w for exposition output.
func NewExpoWriter(w io.Writer) *ExpoWriter {
	return &ExpoWriter{w: w, headed: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (e *ExpoWriter) Err() error { return e.err }

func (e *ExpoWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// Head writes the # HELP and # TYPE lines for a family if not yet
// written. typ is "counter", "gauge", or "histogram".
func (e *ExpoWriter) Head(name, typ, help string) {
	if e.headed[name] {
		return
	}
	e.headed[name] = true
	e.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Sample writes one sample line. labels is the pre-rendered label set
// without braces (e.g. `route="query"`), or empty for none.
func (e *ExpoWriter) Sample(name, labels string, v float64) {
	if labels == "" {
		e.printf("%s %s\n", name, FormatValue(v))
	} else {
		e.printf("%s{%s} %s\n", name, labels, FormatValue(v))
	}
}

// Histogram writes a full _bucket/_sum/_count series for one labeled
// histogram snapshot. name is the family base name (without suffix);
// labels as in Sample.
func (e *ExpoWriter) Histogram(name, typHelp, labels string, s HistSnapshot) {
	e.Head(name, "histogram", typHelp)
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		e.printf("%s_bucket{%s%sle=%s} %d\n", name, labels, sep, QuoteLabel(FormatValue(b)), cum)
	}
	cum += s.Counts[len(s.Counts)-1]
	e.printf("%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		e.printf("%s_sum %s\n%s_count %d\n", name, FormatValue(s.Sum), name, cum)
	} else {
		e.printf("%s_sum{%s} %s\n%s_count{%s} %d\n", name, labels, FormatValue(s.Sum), name, labels, cum)
	}
}
