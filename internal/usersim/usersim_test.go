package usersim

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func studyData(n int, seed int64) ([]geom.Point, []float64) {
	d := dataset.GeolifeLike(dataset.GeolifeOptions{N: n, Seed: seed})
	return d.Points, d.Values
}

// noiselessCfg removes worker noise so tests probe the mechanism itself.
func noiselessCfg(trials int, seed int64) Config {
	c := DefaultConfig(seed)
	c.Trials = trials
	c.NoiseProb = 0
	return c
}

func TestRegressionFullDataIsNearPerfect(t *testing.T) {
	data, values := studyData(5000, 1)
	res, err := Regression(data, values, data, values, noiselessCfg(100, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Success < 0.9 {
		t.Errorf("full-data regression success %.3f, want >= 0.9", res.Success)
	}
	if res.Abstained > 0.02 {
		t.Errorf("full-data abstain rate %.3f", res.Abstained)
	}
}

func TestRegressionTinyUniformSampleIsPoor(t *testing.T) {
	data, values := studyData(20000, 3)
	// A 20-point uniform sample leaves most zoom regions empty.
	rng := rand.New(rand.NewSource(4))
	var sPts []geom.Point
	var sVals []float64
	for i := 0; i < 20; i++ {
		j := rng.Intn(len(data))
		sPts = append(sPts, data[j])
		sVals = append(sVals, values[j])
	}
	res, err := Regression(data, values, sPts, sVals, noiselessCfg(100, 5))
	if err != nil {
		t.Fatal(err)
	}
	full, err := Regression(data, values, data, values, noiselessCfg(100, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Success >= full.Success {
		t.Errorf("tiny sample (%.3f) should underperform full data (%.3f)", res.Success, full.Success)
	}
	if res.Abstained == 0 {
		t.Error("tiny sample should force abstentions")
	}
}

func TestRegressionDeterministic(t *testing.T) {
	data, values := studyData(3000, 6)
	a, err := Regression(data, values, data[:300], values[:300], noiselessCfg(50, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Regression(data, values, data[:300], values[:300], noiselessCfg(50, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Success != b.Success || a.Abstained != b.Abstained {
		t.Error("same seed produced different study outcomes")
	}
}

func TestRegressionValidation(t *testing.T) {
	data, values := studyData(100, 8)
	if _, err := Regression(nil, nil, data, values, DefaultConfig(1)); err == nil {
		t.Error("empty dataset: want error")
	}
	if _, err := Regression(data, values[:50], data, values, DefaultConfig(1)); err == nil {
		t.Error("values mismatch: want error")
	}
	if _, err := Regression(data, values, data[:10], values[:5], DefaultConfig(1)); err == nil {
		t.Error("sample mismatch: want error")
	}
}

func TestDensityWeightsBeatFlatSample(t *testing.T) {
	// Mechanism check for Table I(b): on a flat (VAS-like) sample, adding
	// the §V counts must improve density-estimation success.
	rng := rand.New(rand.NewSource(9))
	var data []geom.Point
	// Strong density contrast: a hot blob plus thin background.
	for i := 0; i < 18000; i++ {
		data = append(data, geom.Pt(rng.NormFloat64()*0.4, rng.NormFloat64()*0.4))
	}
	for i := 0; i < 2000; i++ {
		data = append(data, geom.Pt(rng.Float64()*16-8, rng.Float64()*16-8))
	}
	// A deliberately flat sample: a uniform grid over the extent — the
	// worst case for density perception, as §V argues. Fine enough that
	// deep-zoom views still hold several grid points per quadrant.
	var sample []geom.Point
	for x := -8.0; x <= 8; x += 0.25 {
		for y := -8.0; y <= 8; y += 0.25 {
			sample = append(sample, geom.Pt(x, y))
		}
	}
	// True counts for the grid sample.
	weights := make([]int64, len(sample))
	for _, p := range data {
		best, bestD := 0, p.Dist2(sample[0])
		for j := 1; j < len(sample); j++ {
			if d := p.Dist2(sample[j]); d < bestD {
				best, bestD = j, d
			}
		}
		weights[best]++
	}
	flat, err := Density(data, sample, nil, noiselessCfg(150, 10))
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := Density(data, sample, weights, noiselessCfg(150, 10))
	if err != nil {
		t.Fatal(err)
	}
	if weighted.Success <= flat.Success {
		t.Errorf("density embedding did not help: flat %.3f, weighted %.3f", flat.Success, weighted.Success)
	}
}

func TestDensityValidation(t *testing.T) {
	data, _ := studyData(100, 11)
	if _, err := Density(nil, data, nil, DefaultConfig(1)); err == nil {
		t.Error("empty data: want error")
	}
	if _, err := Density(data, nil, nil, DefaultConfig(1)); err == nil {
		t.Error("empty sample: want error")
	}
	if _, err := Density(data, data[:10], []int64{1}, DefaultConfig(1)); err == nil {
		t.Error("weights mismatch: want error")
	}
}

func TestCountClustersTwoBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var sample []geom.Point
	for i := 0; i < 300; i++ {
		sample = append(sample, geom.Pt(-5+rng.NormFloat64(), rng.NormFloat64()))
		sample = append(sample, geom.Pt(5+rng.NormFloat64(), rng.NormFloat64()))
	}
	if got := CountClusters(sample, nil, 48, 0.25); got != 2 {
		t.Errorf("CountClusters = %d, want 2", got)
	}
}

func TestCountClustersOneBlob(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var sample []geom.Point
	for i := 0; i < 600; i++ {
		sample = append(sample, geom.Pt(rng.NormFloat64(), rng.NormFloat64()))
	}
	if got := CountClusters(sample, nil, 48, 0.25); got != 1 {
		t.Errorf("CountClusters = %d, want 1", got)
	}
}

func TestCountClustersDegenerate(t *testing.T) {
	if got := CountClusters(nil, nil, 48, 0.25); got != 0 {
		t.Errorf("empty sample clusters = %d", got)
	}
	one := []geom.Point{geom.Pt(1, 1)}
	if got := CountClusters(one, nil, 32, 0.25); got != 1 {
		t.Errorf("single point clusters = %d", got)
	}
}

func TestClusteringStudySeparatedGaussians(t *testing.T) {
	sets := dataset.ClusterStudyDatasets(20000, 14)
	sep := sets[0] // two well-separated Gaussians
	// A healthy uniform sample should let users count 2 clusters.
	rng := rand.New(rand.NewSource(15))
	var sample []geom.Point
	for i := 0; i < 2000; i++ {
		sample = append(sample, sep.Points[rng.Intn(sep.Len())])
	}
	res, err := Clustering(sample, nil, sep.TrueClusters, noiselessCfg(60, 16))
	if err != nil {
		t.Fatal(err)
	}
	if res.Success < 0.7 {
		t.Errorf("separated-Gaussians clustering success %.3f, want >= 0.7", res.Success)
	}
}

func TestClusteringValidation(t *testing.T) {
	if _, err := Clustering(nil, nil, 2, DefaultConfig(1)); err == nil {
		t.Error("empty sample: want error")
	}
	if _, err := Clustering([]geom.Point{{X: 1, Y: 1}}, []int64{1, 2}, 1, DefaultConfig(1)); err == nil {
		t.Error("weights mismatch: want error")
	}
}

func TestNoiseCapsSuccess(t *testing.T) {
	// With 100% noise, regression success collapses to the guess rate.
	data, values := studyData(3000, 17)
	cfg := DefaultConfig(18)
	cfg.Trials = 400
	cfg.NoiseProb = 1
	res, err := Regression(data, values, data, values, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Success > 0.4 {
		t.Errorf("all-noise success %.3f, want ≈0.25", res.Success)
	}
}
