// Package usersim simulates the paper's Mechanical Turk user study
// (§VI-B, Table I, Fig. 7). The real study cannot be rerun offline, so
// this package substitutes programmatic users (DESIGN.md §3, substitution
// 4) that operate on exactly the information a human has: the rendered
// sample inside a zoom viewport. Each task mirrors its questionnaire:
//
//   - Regression: estimate the altitude at a probe location from nearby
//     visible points, then answer a multiple-choice question (correct
//     answer, two distractors, "not sure").
//   - Density estimation: given four markers, pick the densest and the
//     sparsest by the plotted mass around each marker.
//   - Clustering: count the cluster blobs visible in the rendered sample.
//
// The mechanism under test is the paper's: user success depends only on
// what the sample reveals near the question's location. Worker
// imperfection is modeled with answer noise, and every task averages many
// randomized trials.
package usersim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/render"
	"repro/internal/strtree"
)

// Config holds the study-wide knobs. Zero fields take defaults from
// DefaultConfig.
type Config struct {
	// Trials is the number of randomized questions per task evaluation
	// (the paper uses 6 locations × 40 workers; default 240).
	Trials int
	// ZoomFactor is how far questions zoom into the data (default 8; the
	// paper asks questions on "zoomed-in views").
	ZoomFactor float64
	// PerceptionFrac is the radius, as a fraction of the viewport
	// diagonal, within which a user can read off point values around the
	// probe mark. Humans use whatever dots are visible near the X, so
	// the default is generous (0.35); estimation error from far-away
	// dots is what degrades accuracy, not an arbitrary cutoff.
	PerceptionFrac float64
	// NoiseProb is the probability a worker answers randomly regardless
	// of the evidence — the residual error rate visible in the paper's
	// Table I even at 100K samples (default 0.08).
	NoiseProb float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns the defaults documented on Config.
func DefaultConfig(seed int64) Config {
	return Config{
		Trials:         240,
		ZoomFactor:     8,
		PerceptionFrac: 0.35,
		NoiseProb:      0.08,
		Seed:           seed,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig(c.Seed)
	if c.Trials <= 0 {
		c.Trials = d.Trials
	}
	if c.ZoomFactor < 1 {
		c.ZoomFactor = d.ZoomFactor
	}
	if c.PerceptionFrac <= 0 {
		c.PerceptionFrac = d.PerceptionFrac
	}
	if c.NoiseProb < 0 {
		c.NoiseProb = d.NoiseProb
	}
}

// Result is one task evaluation.
type Result struct {
	// Success is the fraction of trials answered correctly.
	Success float64
	// Trials is the number of questions asked.
	Trials int
	// Abstained is the fraction of trials where the user had no evidence
	// (no visible point near the probe) and answered "not sure".
	Abstained float64
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("success=%.3f trials=%d abstain=%.3f", r.Success, r.Trials, r.Abstained)
}

// Regression runs the Table I(a) task. data and values are the full
// dataset with the value column (altitude); sample and sampleValues are
// the visualized subset with its per-point values.
//
// Each trial zooms into a random data region, probes a random location
// inside it, and asks a four-way multiple choice. The user estimates the
// value from the visible sample points within the perception radius; with
// no visible evidence the user abstains (scored as incorrect, matching the
// paper's "I'm not sure" option being a wrong answer for scoring
// purposes).
func Regression(data []geom.Point, values []float64, sample []geom.Point, sampleValues []float64, cfg Config) (Result, error) {
	if len(data) == 0 || len(data) != len(values) {
		return Result{}, fmt.Errorf("usersim: dataset needs parallel points/values, got %d/%d", len(data), len(values))
	}
	if len(sample) == 0 || len(sample) != len(sampleValues) {
		return Result{}, fmt.Errorf("usersim: sample needs parallel points/values, got %d/%d", len(sample), len(sampleValues))
	}
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	dataTree := strtree.Build(data, nil)
	sampleTree := strtree.Build(sample, nil)
	bounds := geom.Bounds(data)

	success, abstain := 0, 0
	attempts := 0
	maxAttempts := cfg.Trials * 16
	for t := 0; t < cfg.Trials && attempts < maxAttempts; attempts++ {
		// Zoom regions are chosen uniformly over the plot area (the paper
		// zooms into "six randomly-chosen regions" of the overview), not
		// weighted by data mass — this is precisely what defeats uniform
		// sampling, whose points all sit in the densest areas.
		center := randomInRect(rng, bounds)
		vp := zoomInto(bounds, center, cfg.ZoomFactor)
		// Regions with almost no data cannot host a question: redraw.
		inView := dataTree.InRange(vp, nil)
		if len(inView) < 5 {
			continue
		}
		// The probed location 'X' is spread over the view area, not over
		// the data mass: pick a random spot in the view and probe the
		// nearest data point, requiring it to be visually at that spot.
		diag := math.Hypot(vp.Width(), vp.Height())
		probe, ok := areaWeightedProbe(rng, dataTree, vp, 0.1*diag)
		if !ok {
			continue
		}
		// Ground truth: mean value of the 5 nearest dataset points.
		truth := meanValue(dataTree.KNearest(probe, 5), values)
		// Distractor spacing: plausible within this view — a fraction of
		// the local value range, as the paper's hand-picked false answers
		// were plausible for the displayed region.
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, nb := range inView {
			v := values[nb.ID]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		localRange := hi - lo
		if localRange <= 0 {
			continue // flat region: no meaningful question
		}
		delta := localRange * 0.35
		t++

		if rng.Float64() < cfg.NoiseProb {
			if rng.Intn(4) == 0 { // one of {correct, false, false, not sure}
				success++
			}
			continue
		}

		// The user's evidence: visible sample points within perception
		// radius of the probe.
		radius := cfg.PerceptionFrac * diag
		visible := visibleWithin(sampleTree, sample, vp, probe, radius, 5)
		if len(visible) == 0 {
			abstain++
			continue
		}
		est := weightedEstimate(probe, visible, sampleValues)

		// Four-way multiple choice: correct, truth±delta. The user picks
		// the choice nearest their estimate.
		choices := []float64{truth, truth + delta*(1+rng.Float64()), truth - delta*(1+rng.Float64())}
		best, bestDist := -1, math.Inf(1)
		for i, c := range choices {
			if d := math.Abs(est - c); d < bestDist {
				best, bestDist = i, d
			}
		}
		if best == 0 {
			success++
		}
	}
	return Result{
		Success:   float64(success) / float64(cfg.Trials),
		Trials:    cfg.Trials,
		Abstained: float64(abstain) / float64(cfg.Trials),
	}, nil
}

// areaWeightedProbe picks a question location spread uniformly over the
// view: a random spot whose nearest data point is close enough to "be"
// that spot on screen. Returns !ok when several tries find no data-backed
// spot (the caller redraws the region).
func areaWeightedProbe(rng *rand.Rand, dataTree *strtree.Tree, vp geom.Rect, maxDist float64) (geom.Point, bool) {
	for try := 0; try < 12; try++ {
		spot := randomInRect(rng, vp)
		_, p, d, ok := dataTree.Nearest(spot)
		if ok && d <= maxDist && vp.Contains(p) {
			return p, true
		}
	}
	return geom.Point{}, false
}

// randomInRect draws a point uniformly over r.
func randomInRect(rng *rand.Rand, r geom.Rect) geom.Point {
	return geom.Pt(r.MinX+rng.Float64()*r.Width(), r.MinY+rng.Float64()*r.Height())
}

// zoomInto returns a viewport of size core/factor centred on c.
func zoomInto(core geom.Rect, c geom.Point, factor float64) geom.Rect {
	w := core.Width() / factor
	h := core.Height() / factor
	return geom.Rect{
		MinX: c.X - w/2, MaxX: c.X + w/2,
		MinY: c.Y - h/2, MaxY: c.Y + h/2,
	}
}

// visibleWithin returns the indices of up to k sample points that are both
// inside the viewport and within radius of the probe.
func visibleWithin(tree *strtree.Tree, sample []geom.Point, vp geom.Rect, probe geom.Point, radius float64, k int) []strtree.Neighbor {
	nbs := tree.KNearest(probe, k*4)
	var out []strtree.Neighbor
	for _, nb := range nbs {
		if nb.Dist <= radius && vp.Contains(sample[nb.ID]) {
			out = append(out, nb)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

func meanValue(nbs []strtree.Neighbor, values []float64) float64 {
	if len(nbs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, nb := range nbs {
		s += values[nb.ID]
	}
	return s / float64(len(nbs))
}

// weightedEstimate is inverse-distance-weighted interpolation from the
// visible points — the visual read-off a human makes from nearby dots.
func weightedEstimate(probe geom.Point, nbs []strtree.Neighbor, values []float64) float64 {
	var num, den float64
	for _, nb := range nbs {
		w := 1 / (nb.Dist + 1e-12)
		num += values[nb.ID] * w
		den += w
	}
	return num / den
}

// Density runs the Table I(b) task: four markers inside a zoomed view; the
// user must identify both the densest and the sparsest marker from the
// plotted mass. weights carries the §V density counts (nil for unweighted
// samples). Score per trial is 0.5 per correct pick, matching the paper's
// two-part question.
func Density(data []geom.Point, sample []geom.Point, weights []int64, cfg Config) (Result, error) {
	if len(data) == 0 {
		return Result{}, fmt.Errorf("usersim: empty dataset")
	}
	if len(sample) == 0 {
		return Result{}, fmt.Errorf("usersim: empty sample")
	}
	if weights != nil && len(weights) != len(sample) {
		return Result{}, fmt.Errorf("usersim: %d weights for %d sample points", len(weights), len(sample))
	}
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	dataTree := strtree.Build(data, nil)
	sampleTree := strtree.Build(sample, nil)
	bounds := geom.Bounds(data)

	var score float64
	abstain := 0
	attempts := 0
	maxAttempts := cfg.Trials * 16
	for t := 0; t < cfg.Trials && attempts < maxAttempts; attempts++ {
		// Density questions live in dense zoomed-in areas (the paper's
		// Fig. 6 shows a data-rich view): the view centres on a random
		// data point and zooms well past the regression task's depth, so
		// every quadrant holds data and the question is about *density
		// contrast*, not presence. This is exactly the regime where a
		// plain VAS sample misleads (it flattens density, §V).
		center := data[rng.Intn(len(data))]
		vp := zoomInto(bounds, center, cfg.ZoomFactor*2)
		if len(dataTree.InRange(vp, nil)) < 20 {
			continue // not a dense area; redraw
		}
		quads := quadrants(vp)

		// Ground truth: dataset mass per quadrant. The four marked
		// locations divide the zoomed view into quadrants, mirroring the
		// paper's markers spread across the image.
		truthMass := make([]float64, len(quads))
		occupied := 0
		for i, q := range quads {
			truthMass[i] = float64(len(dataTree.InRange(q, nil)))
			if truthMass[i] > 0 {
				occupied++
			}
		}
		trueDense := argmax(truthMass)
		trueSparse := argmin(truthMass)
		if occupied < 4 || truthMass[trueDense] == truthMass[trueSparse] {
			continue // the question needs contrast between occupied areas
		}
		t++

		if rng.Float64() < cfg.NoiseProb {
			if rng.Intn(4) == trueDense {
				score += 0.5
			}
			if rng.Intn(4) == trueSparse {
				score += 0.5
			}
			continue
		}

		// The user's evidence: plotted mass per quadrant, weighted by the
		// density encoding when present.
		seen := make([]float64, len(quads))
		anyMass := false
		for i, q := range quads {
			seen[i] = sampleMassIn(sampleTree, q, weights)
			if seen[i] > 0 {
				anyMass = true
			}
		}
		if !anyMass {
			abstain++
			continue
		}
		// Pick, breaking ties randomly — a user facing identical-looking
		// regions guesses.
		if pickExtreme(rng, seen, true) == trueDense {
			score += 0.5
		}
		if pickExtreme(rng, seen, false) == trueSparse {
			score += 0.5
		}
	}
	return Result{
		Success:   score / float64(cfg.Trials),
		Trials:    cfg.Trials,
		Abstained: float64(abstain) / float64(cfg.Trials),
	}, nil
}

// quadrants splits a viewport into its four quadrant rectangles.
func quadrants(vp geom.Rect) []geom.Rect {
	c := vp.Center()
	return []geom.Rect{
		{MinX: vp.MinX, MinY: vp.MinY, MaxX: c.X, MaxY: c.Y},
		{MinX: c.X, MinY: vp.MinY, MaxX: vp.MaxX, MaxY: c.Y},
		{MinX: vp.MinX, MinY: c.Y, MaxX: c.X, MaxY: vp.MaxY},
		{MinX: c.X, MinY: c.Y, MaxX: vp.MaxX, MaxY: vp.MaxY},
	}
}

// sampleMassIn reads the perceived density of rect q from the plot. For an
// unweighted sample the perception is the dot count; for a §V
// density-embedded sample it is the total ink — the sum of dot areas,
// which the encoding makes proportional to the represented data mass.
func sampleMassIn(tree *strtree.Tree, q geom.Rect, weights []int64) float64 {
	var count float64
	var sumW int64
	for _, nb := range tree.InRange(q, nil) {
		count++
		if weights != nil {
			sumW += weights[nb.ID]
		}
	}
	if weights != nil {
		return float64(sumW)
	}
	return count
}

// pickExtreme returns the argmax (or argmin) index, breaking exact ties
// uniformly at random.
func pickExtreme(rng *rand.Rand, xs []float64, wantMax bool) int {
	best := xs[0]
	for _, x := range xs[1:] {
		if (wantMax && x > best) || (!wantMax && x < best) {
			best = x
		}
	}
	var ties []int
	for i, x := range xs {
		if x == best {
			ties = append(ties, i)
		}
	}
	return ties[rng.Intn(len(ties))]
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func argmin(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// Clustering runs the Table I(c) task: the user looks at the rendered
// sample of a Gaussian dataset and reports how many clusters they see.
// The simulated perception pipeline is: rasterize (with density weights
// when present), blur (humans see smoothed blobs, not individual dots),
// threshold, and count distinct modes. trueClusters is the ground truth.
func Clustering(sample []geom.Point, weights []int64, trueClusters int, cfg Config) (Result, error) {
	if len(sample) == 0 {
		return Result{}, fmt.Errorf("usersim: empty sample")
	}
	if weights != nil && len(weights) != len(sample) {
		return Result{}, fmt.Errorf("usersim: %d weights for %d sample points", len(weights), len(sample))
	}
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	success := 0
	for t := 0; t < cfg.Trials; t++ {
		if rng.Float64() < cfg.NoiseProb {
			// A noisy worker reports 1–4 clusters at random.
			if 1+rng.Intn(4) == trueClusters {
				success++
			}
			continue
		}
		// Perceptual parameters jitter per trial: different workers look
		// at different effective resolutions and thresholds.
		res := 40 + rng.Intn(17)               // raster resolution
		threshold := 0.18 + rng.Float64()*0.14 // mode cut, fraction of max
		got := CountClusters(sample, weights, res, threshold)
		if got == trueClusters {
			success++
		}
	}
	return Result{Success: float64(success) / float64(cfg.Trials), Trials: cfg.Trials}, nil
}

// CountClusters is the perceptual mode counter used by the clustering
// task; it is exported so tests and the harness can inspect the perception
// model directly. It rasterizes the (optionally weighted) sample at
// res×res, applies three passes of 3×3 box blur, and counts connected
// components of cells above threshold×maxMass.
func CountClusters(sample []geom.Point, weights []int64, res int, threshold float64) int {
	bounds := geom.Bounds(sample)
	if bounds.IsEmpty() || res <= 0 {
		return 0
	}
	// Pad the viewport slightly so border points do not saturate edges.
	pad := 0.05 * math.Hypot(bounds.Width(), bounds.Height())
	if pad == 0 {
		pad = 1
	}
	vp := geom.Rect{MinX: bounds.MinX - pad, MinY: bounds.MinY - pad, MaxX: bounds.MaxX + pad, MaxY: bounds.MaxY + pad}
	r := render.NewRaster(vp, res, res)
	if weights != nil {
		if _, err := r.PlotWeighted(sample, weights, 0); err != nil {
			return 0
		}
	} else {
		r.Plot(sample)
	}
	// Copy to a mutable grid and blur.
	g := make([]float64, res*res)
	for y := 0; y < res; y++ {
		for x := 0; x < res; x++ {
			g[y*res+x] = r.At(x, y)
		}
	}
	for pass := 0; pass < 3; pass++ {
		g = boxBlur(g, res)
	}
	var maxMass float64
	for _, v := range g {
		if v > maxMass {
			maxMass = v
		}
	}
	if maxMass == 0 {
		return 0
	}
	cut := threshold * maxMass
	// Connected components of super-threshold cells (8-connectivity).
	label := make([]int, res*res)
	comp := 0
	var stack []int
	for i, v := range g {
		if v < cut || label[i] != 0 {
			continue
		}
		comp++
		label[i] = comp
		stack = append(stack[:0], i)
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cx, cy := c%res, c/res
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := cx+dx, cy+dy
					if nx < 0 || nx >= res || ny < 0 || ny >= res {
						continue
					}
					ni := ny*res + nx
					if g[ni] >= cut && label[ni] == 0 {
						label[ni] = comp
						stack = append(stack, ni)
					}
				}
			}
		}
	}
	return comp
}

func boxBlur(g []float64, res int) []float64 {
	out := make([]float64, len(g))
	for y := 0; y < res; y++ {
		for x := 0; x < res; x++ {
			var s float64
			n := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := x+dx, y+dy
					if nx < 0 || nx >= res || ny < 0 || ny >= res {
						continue
					}
					s += g[ny*res+nx]
					n++
				}
			}
			out[y*res+x] = s / float64(n)
		}
	}
	return out
}
