package vas

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/strtree"
)

// This file implements the density-embedding extension of §V: VAS alone
// flattens density (it spreads points out), so for density-estimation and
// clustering tasks the paper attaches a counter to every sampled point and,
// in a second pass over the dataset, increments the counter of the nearest
// sampled point. The counts are then encoded visually (dot size or jitter).

// WeightedSample is a sample whose points carry the density counts of the
// dataset regions they represent. Count[i] is the number of dataset points
// whose nearest sample point is Points[i] (every sample point counts itself
// via the pass, so counts sum to the dataset size).
type WeightedSample struct {
	Points []geom.Point
	IDs    []int
	Counts []int64
}

// Len returns the number of sample points.
func (w *WeightedSample) Len() int { return len(w.Points) }

// TotalCount returns the sum of all counts, which equals the number of
// dataset points streamed through the density pass.
func (w *WeightedSample) TotalCount() int64 {
	var t int64
	for _, c := range w.Counts {
		t += c
	}
	return t
}

// MaxCount returns the largest per-point count, used to normalize visual
// encodings.
func (w *WeightedSample) MaxCount() int64 {
	var m int64
	for _, c := range w.Counts {
		if c > m {
			m = c
		}
	}
	return m
}

// DensityPass performs the §V second pass: for every dataset point it finds
// the nearest sample point with a k-d tree (O(log K) per point, O(N log K)
// total) and increments that sample point's counter.
//
// sample and ids must be parallel slices as returned by Interchange.Sample
// and Interchange.SampleIDs; ids may be nil when the caller does not track
// dataset indices.
func DensityPass(sample []geom.Point, ids []int, data []geom.Point) (*WeightedSample, error) {
	if len(sample) == 0 {
		return nil, errors.New("vas: density pass needs a non-empty sample")
	}
	if ids != nil && len(ids) != len(sample) {
		return nil, fmt.Errorf("vas: ids length %d != sample length %d", len(ids), len(sample))
	}
	t := strtree.Build(sample, nil)
	counts := make([]int64, len(sample))
	for _, p := range data {
		i, _, _, ok := t.Nearest(p)
		if !ok {
			break // unreachable: tree is non-empty
		}
		counts[i]++
	}
	ws := &WeightedSample{
		Points: append([]geom.Point(nil), sample...),
		Counts: counts,
	}
	if ids != nil {
		ws.IDs = append([]int(nil), ids...)
	}
	return ws, nil
}

// DensityPassStream is DensityPass for callers that cannot materialize the
// dataset: it returns an accumulator with an Add method and a Finish method
// producing the WeightedSample. This mirrors how the paper describes the
// pass — "while scanning the dataset once more" — and is what cmd/vasgen
// uses for CSV streams.
type DensityAccumulator struct {
	tree   *strtree.Tree
	sample []geom.Point
	ids    []int
	counts []int64
	n      int64
}

// NewDensityAccumulator prepares a streaming density pass over the sample.
func NewDensityAccumulator(sample []geom.Point, ids []int) (*DensityAccumulator, error) {
	if len(sample) == 0 {
		return nil, errors.New("vas: density pass needs a non-empty sample")
	}
	if ids != nil && len(ids) != len(sample) {
		return nil, fmt.Errorf("vas: ids length %d != sample length %d", len(ids), len(sample))
	}
	return &DensityAccumulator{
		tree:   strtree.Build(sample, nil),
		sample: append([]geom.Point(nil), sample...),
		ids:    append([]int(nil), ids...),
		counts: make([]int64, len(sample)),
	}, nil
}

// Add routes one dataset point to its nearest sample point.
func (d *DensityAccumulator) Add(p geom.Point) {
	i, _, _, _ := d.tree.Nearest(p)
	d.counts[i]++
	d.n++
}

// Seen returns how many dataset points have been added.
func (d *DensityAccumulator) Seen() int64 { return d.n }

// Finish returns the weighted sample. The accumulator remains usable; the
// returned counts are a snapshot.
func (d *DensityAccumulator) Finish() *WeightedSample {
	return &WeightedSample{
		Points: append([]geom.Point(nil), d.sample...),
		IDs:    append([]int(nil), d.ids...),
		Counts: append([]int64(nil), d.counts...),
	}
}
