package vas

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/proximity"
)

func TestWriteMIPWellFormed(t *testing.T) {
	pts := clusteredPoints(8, 1)
	kern := proximity.NewGaussian(0.8)
	var b strings.Builder
	if err := WriteMIP(&b, pts, MIPOptions{K: 3, Kernel: kern}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Minimize", "Subject To", "card:", "Binary", "End", "= 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("LP output missing %q", want)
		}
	}
	// All n(n-1)/2 = 28 pair variables and activation rows present.
	if got := strings.Count(out, "act"); got != 28 {
		t.Errorf("activation constraints = %d, want 28", got)
	}
	// Every x variable declared binary.
	for i := 0; i < 8; i++ {
		if !strings.Contains(out, "x"+string(rune('0'+i))) {
			t.Errorf("missing variable x%d", i)
		}
	}
}

func TestWriteMIPSkipNegligible(t *testing.T) {
	// Two tight pairs far apart: cross-pair terms are negligible.
	pts := clusteredPoints(12, 2)
	kern := proximity.NewGaussian(0.05)
	var full, pruned strings.Builder
	if err := WriteMIP(&full, pts, MIPOptions{K: 4, Kernel: kern}); err != nil {
		t.Fatal(err)
	}
	if err := WriteMIP(&pruned, pts, MIPOptions{K: 4, Kernel: kern, SkipNegligible: true}); err != nil {
		t.Fatal(err)
	}
	if pruned.Len() >= full.Len() {
		t.Errorf("pruned model (%d bytes) not smaller than full (%d)", pruned.Len(), full.Len())
	}
}

func TestWriteMIPValidation(t *testing.T) {
	kern := proximity.NewGaussian(1)
	var b strings.Builder
	if err := WriteMIP(&b, nil, MIPOptions{K: 1, Kernel: kern}); err == nil {
		t.Error("no points: want error")
	}
	pts := clusteredPoints(4, 3)
	if err := WriteMIP(&b, pts, MIPOptions{K: 0, Kernel: kern}); err == nil {
		t.Error("K=0: want error")
	}
	if err := WriteMIP(&b, pts, MIPOptions{K: 9, Kernel: kern}); err == nil {
		t.Error("K>N: want error")
	}
	if err := WriteMIP(&b, pts, MIPOptions{K: 2}); err == nil {
		t.Error("unset kernel: want error")
	}
}

// TestMIPObjectiveAgreesWithSolvers checks the three views of the same
// instance agree: the MIP objective for the exact solver's selection, the
// solver's reported objective, and the reference Objective().
func TestMIPObjectiveAgreesWithSolvers(t *testing.T) {
	pts := clusteredPoints(20, 4)
	kern := proximity.NewGaussian(0.6)
	res, err := SolveExact(context.Background(), pts, ExactOptions{K: 6, Kernel: kern})
	if err != nil {
		t.Fatal(err)
	}
	selected := make([]bool, len(pts))
	for _, i := range res.Indices {
		selected[i] = true
	}
	mipObj, err := MIPObjective(pts, kern, selected)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mipObj-res.Objective) > 1e-9*(1+res.Objective) {
		t.Errorf("MIP objective %v vs solver %v", mipObj, res.Objective)
	}
	refObj := Objective(kern, gatherPts(pts, res.Indices))
	if math.Abs(mipObj-refObj) > 1e-9*(1+refObj) {
		t.Errorf("MIP objective %v vs reference %v", mipObj, refObj)
	}
}

func TestMIPObjectiveValidation(t *testing.T) {
	pts := clusteredPoints(4, 5)
	if _, err := MIPObjective(pts, proximity.NewGaussian(1), []bool{true}); err == nil {
		t.Error("length mismatch: want error")
	}
}
