package vas

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/proximity"
)

// This file implements the exact VAS solver used to regenerate Table II.
//
// The paper obtains exact solutions by converting VAS to a Mixed Integer
// Program and handing it to GLPK, an external closed-box library. As a
// substitution (DESIGN.md §3) we solve the same combinatorial problem —
// choose exactly K of N points minimizing the sum of pairwise κ̃ — with a
// best-first branch-and-bound over subsets. Both approaches share the
// properties Table II depends on: a provably optimal objective and a
// runtime that explodes with N, in contrast to Interchange's near-zero
// runtime with a near-optimal objective.

// ErrBudgetExhausted is returned by SolveExact when the node budget or the
// context deadline is reached before the search space is exhausted. The
// incumbent returned alongside it is the best solution found so far.
var ErrBudgetExhausted = errors.New("vas: exact solver budget exhausted")

// ExactOptions configures SolveExact.
type ExactOptions struct {
	// K is the subset size (required, 0 < K <= len(points)).
	K int
	// Kernel supplies κ̃ (required).
	Kernel proximity.Func
	// MaxNodes bounds the number of search-tree nodes expanded; 0 means
	// unlimited. Table II's point is that exact search is infeasible at
	// scale, so production callers should always set a budget.
	MaxNodes int64
}

// ExactResult reports the outcome of an exact solve.
type ExactResult struct {
	// Indices of the chosen points into the input slice, ascending.
	Indices []int
	// Objective is the pairwise objective of the chosen subset.
	Objective float64
	// Nodes is the number of search-tree nodes expanded.
	Nodes int64
	// Proven is true when the search space was exhausted, i.e. Objective
	// is the global optimum rather than an incumbent.
	Proven bool
}

// SolveExact finds the K-subset of pts minimizing the pairwise objective.
// The search is a depth-first branch-and-bound over the (sorted) candidate
// list with two prunings:
//
//   - partial-sum bound: κ̃ >= 0, so a partial subset's objective only grows
//     as points are added; any partial objective >= the incumbent is cut.
//   - remaining-pair bound: a lower bound on the objective contribution of
//     the cheapest K-r remaining picks, precomputed per suffix.
//
// The incumbent is seeded with Interchange's converged solution, which per
// Theorem 3 is already within 1/4 of optimal on the normalized scale and
// in practice cuts most of the tree immediately.
//
// ctx cancellation and the node budget both stop the search early with
// ErrBudgetExhausted; the best incumbent found so far is still returned.
func SolveExact(ctx context.Context, pts []geom.Point, opt ExactOptions) (ExactResult, error) {
	n := len(pts)
	if opt.K <= 0 || opt.K > n {
		return ExactResult{}, fmt.Errorf("vas: exact solver needs 0 < K <= N, got K=%d N=%d", opt.K, n)
	}
	if opt.Kernel.Bandwidth() <= 0 {
		return ExactResult{}, errors.New("vas: ExactOptions.Kernel is unset")
	}
	if opt.K == n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return ExactResult{Indices: idx, Objective: Objective(opt.Kernel, pts), Nodes: 1, Proven: true}, nil
	}

	// Pairwise matrix. N is small by construction (Table II uses N<=80);
	// the O(N²) memory is the whole point of the experiment's infeasibility
	// at scale.
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := opt.Kernel.PairDist2(pts[i].Dist2(pts[j]))
			w[i][j] = v
			w[j][i] = v
		}
	}

	// Order candidates by total affinity ascending: points in sparse areas
	// first. Good solutions appear early, tightening the incumbent.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	affinity := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			affinity[i] += w[i][j]
		}
	}
	sort.Slice(order, func(a, b int) bool { return affinity[order[a]] < affinity[order[b]] })

	// Seed incumbent from converged Interchange.
	ic := NewInterchange(Options{K: opt.K, Kernel: opt.Kernel, Variant: ES})
	Converge(ic, pts, 64)
	incumbentIdx := append([]int(nil), ic.SampleIDs()...)
	incumbent := Objective(opt.Kernel, ic.Sample())

	s := &exactSearch{
		w:        w,
		order:    order,
		k:        opt.K,
		n:        n,
		maxNodes: opt.MaxNodes,
		ctx:      ctx,
		best:     incumbent,
		bestSet:  incumbentIdx,
		chosen:   make([]int, 0, opt.K),
		// chosenW[c] caches Σ_{j in chosen} w[c][j] for each candidate, so
		// extending a partial solution costs O(1) per candidate instead of
		// O(|chosen|).
		chosenW: make([]float64, n),
	}
	err := s.dfs(0, 0)
	res := ExactResult{
		Indices:   append([]int(nil), s.bestSet...),
		Objective: s.best,
		Nodes:     s.nodes,
		Proven:    err == nil,
	}
	sort.Ints(res.Indices)
	return res, err
}

type exactSearch struct {
	w        [][]float64
	order    []int
	k, n     int
	maxNodes int64
	ctx      context.Context

	nodes   int64
	best    float64
	bestSet []int
	chosen  []int
	chosenW []float64
}

// dfs extends the partial solution with candidates from position pos in the
// affinity order. partial is the objective of the chosen set.
func (s *exactSearch) dfs(pos int, partial float64) error {
	if len(s.chosen) == s.k {
		if partial < s.best {
			s.best = partial
			s.bestSet = append(s.bestSet[:0], s.chosen...)
		}
		return nil
	}
	s.nodes++
	if s.maxNodes > 0 && s.nodes > s.maxNodes {
		return ErrBudgetExhausted
	}
	if s.nodes&0x3ff == 0 {
		select {
		case <-s.ctx.Done():
			return ErrBudgetExhausted
		default:
		}
	}
	need := s.k - len(s.chosen)
	// Not enough candidates left to complete the subset.
	if s.n-pos < need {
		return nil
	}
	for i := pos; i <= s.n-need; i++ {
		c := s.order[i]
		add := s.chosenW[c]
		next := partial + add
		// κ̃ >= 0 ⇒ objective is monotone in set extension: prune when the
		// partial objective alone already matches the incumbent.
		if next >= s.best {
			continue
		}
		s.chosen = append(s.chosen, c)
		for j := 0; j < s.n; j++ {
			s.chosenW[j] += s.w[j][c]
		}
		if err := s.dfs(i+1, next); err != nil {
			return err
		}
		for j := 0; j < s.n; j++ {
			s.chosenW[j] -= s.w[j][c]
		}
		s.chosen = s.chosen[:len(s.chosen)-1]
	}
	return nil
}

// RandomSubset selects a uniformly random K-subset of pts using the
// supplied deterministic permutation seed; it is the "Random" column of
// Table II. intn must behave like rand.Intn.
func RandomSubset(pts []geom.Point, k int, intn func(int) int) []geom.Point {
	n := len(pts)
	if k >= n {
		out := make([]geom.Point, n)
		copy(out, pts)
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Partial Fisher-Yates: the first k entries are a uniform sample.
	for i := 0; i < k; i++ {
		j := i + intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := make([]geom.Point, k)
	for i := 0; i < k; i++ {
		out[i] = pts[idx[i]]
	}
	return out
}

// GapToOptimal reports the Theorem 3 quantities for a candidate sample
// against a known optimum: the normalized objectives and their difference,
// which the theorem bounds by 1/4.
func GapToOptimal(k proximity.Func, candidate, optimal []geom.Point) (candNorm, optNorm, gap float64) {
	candNorm = NormalizedObjective(k, candidate)
	optNorm = NormalizedObjective(k, optimal)
	return candNorm, optNorm, candNorm - optNorm
}

// ensure math is referenced even if future edits drop other uses.
var _ = math.Inf
