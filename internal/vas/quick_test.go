package vas

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/proximity"
)

// This file holds property-based checks (testing/quick plus randomized
// generators) of the core VAS invariants, complementing the example-based
// tests in vas_test.go.

// TestObjectivePermutationInvariant: Σ_{i<j} κ̃ must not depend on point
// order.
func TestObjectivePermutationInvariant(t *testing.T) {
	kern := testKernel()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%12) + 2
		pts := make([]geom.Point, m)
		for i := range pts {
			pts[i] = geom.Pt(rng.NormFloat64()*2, rng.NormFloat64()*2)
		}
		a := Objective(kern, pts)
		perm := rng.Perm(m)
		shuffled := make([]geom.Point, m)
		for i, j := range perm {
			shuffled[i] = pts[j]
		}
		b := Objective(kern, shuffled)
		return math.Abs(a-b) <= 1e-9*(1+a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestNormalizedObjectiveBounds: κ̃ ∈ [0,1] for the Gaussian, so the
// normalized objective (the Theorem 3 scale) lies in [0, 1/2].
func TestNormalizedObjectiveBounds(t *testing.T) {
	kern := testKernel()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%20) + 2
		pts := make([]geom.Point, m)
		for i := range pts {
			pts[i] = geom.Pt(rng.NormFloat64(), rng.NormFloat64())
		}
		v := NormalizedObjective(kern, pts)
		return v >= 0 && v <= 0.5+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestInterchangeSampleIsSubset: whatever the stream, the sample consists
// of distinct stream elements with the right cardinality.
func TestInterchangeSampleIsSubset(t *testing.T) {
	kern := testKernel()
	f := func(seed int64, kRaw, nRaw uint8) bool {
		k := int(kRaw%20) + 1
		n := int(nRaw) + 1
		rng := rand.New(rand.NewSource(seed))
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.NormFloat64()*3, rng.NormFloat64()*3)
		}
		ic := NewInterchange(Options{K: k, Kernel: kern})
		for i, p := range pts {
			ic.Add(p, i)
		}
		ids := ic.SampleIDs()
		sample := ic.Sample()
		want := k
		if n < k {
			want = n
		}
		if len(ids) != want || len(sample) != want {
			return false
		}
		seen := map[int]bool{}
		for i, id := range ids {
			if id < 0 || id >= n || seen[id] {
				return false
			}
			seen[id] = true
			if !pts[id].Equal(sample[i]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestInterchangeNotWorseThanPrefix: after the fill phase, every accepted
// swap strictly improves, so the final objective can never exceed the
// first-K prefix objective.
func TestInterchangeNotWorseThanPrefix(t *testing.T) {
	kern := testKernel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const k, n = 8, 120
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.NormFloat64(), rng.NormFloat64())
		}
		prefix := Objective(kern, pts[:k])
		ic := NewInterchange(Options{K: k, Kernel: kern})
		for i, p := range pts {
			ic.Add(p, i)
		}
		return ic.RecomputeObjective() <= prefix+1e-9
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestDensityCountsConservationProperty: for any sample/data pair, the §V
// counts sum to the data size and are all non-negative.
func TestDensityCountsConservationProperty(t *testing.T) {
	f := func(seed int64, kRaw, nRaw uint8) bool {
		k := int(kRaw%15) + 1
		n := int(nRaw%200) + 1
		rng := rand.New(rand.NewSource(seed))
		sample := make([]geom.Point, k)
		for i := range sample {
			sample[i] = geom.Pt(rng.NormFloat64(), rng.NormFloat64())
		}
		data := make([]geom.Point, n)
		for i := range data {
			data[i] = geom.Pt(rng.NormFloat64()*2, rng.NormFloat64()*2)
		}
		ws, err := DensityPass(sample, nil, data)
		if err != nil {
			return false
		}
		var sum int64
		for _, c := range ws.Counts {
			if c < 0 {
				return false
			}
			sum += c
		}
		return sum == int64(n)
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestExactNeverWorseThanInterchangeProperty: on random tiny instances the
// proven exact optimum lower-bounds the converged heuristic.
func TestExactNeverWorseThanInterchangeProperty(t *testing.T) {
	kern := proximity.NewGaussian(0.6)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(10)
		k := 2 + rng.Intn(4)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.NormFloat64(), rng.NormFloat64())
		}
		exact, err := SolveExact(testCtx(t), pts, ExactOptions{K: k, Kernel: kern})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ic := NewInterchange(Options{K: k, Kernel: kern})
		Converge(ic, pts, 32)
		if approx := Objective(kern, ic.Sample()); approx < exact.Objective-1e-9 {
			t.Fatalf("trial %d: heuristic %v beat proven optimum %v", trial, approx, exact.Objective)
		}
	}
}

// testCtx returns a background context; a helper so property tests read
// cleanly.
func testCtx(t *testing.T) context.Context {
	t.Helper()
	return context.Background()
}
