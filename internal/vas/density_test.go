package vas

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestDensityPassCountsSumToN(t *testing.T) {
	data := clusteredPoints(5000, 1)
	ic := NewInterchange(Options{K: 50, Kernel: testKernel()})
	for i, p := range data {
		ic.Add(p, i)
	}
	ws, err := DensityPass(ic.Sample(), ic.SampleIDs(), data)
	if err != nil {
		t.Fatal(err)
	}
	if got := ws.TotalCount(); got != int64(len(data)) {
		t.Errorf("counts sum to %d, want %d", got, len(data))
	}
	if ws.Len() != 50 {
		t.Errorf("weighted sample has %d points", ws.Len())
	}
	if ws.MaxCount() <= 0 {
		t.Error("max count should be positive")
	}
}

func TestDensityPassNearestAssignment(t *testing.T) {
	// Hand-checkable geometry: two sample points, data on either side.
	sample := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}
	data := []geom.Point{
		geom.Pt(1, 0), geom.Pt(-2, 1), geom.Pt(4, 0), // nearer to (0,0)
		geom.Pt(9, 0), geom.Pt(12, -1), // nearer to (10,0)
	}
	ws, err := DensityPass(sample, []int{100, 200}, data)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Counts[0] != 3 || ws.Counts[1] != 2 {
		t.Errorf("counts = %v, want [3 2]", ws.Counts)
	}
	if ws.IDs[0] != 100 || ws.IDs[1] != 200 {
		t.Errorf("ids = %v", ws.IDs)
	}
}

func TestDensityPassMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sample := make([]geom.Point, 20)
	for i := range sample {
		sample[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	data := make([]geom.Point, 500)
	for i := range data {
		data[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	ws, err := DensityPass(sample, nil, data)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int64, len(sample))
	for _, d := range data {
		best, bestD := 0, math.Inf(1)
		for j, s := range sample {
			if dd := d.Dist2(s); dd < bestD {
				best, bestD = j, dd
			}
		}
		want[best]++
	}
	for i := range want {
		if ws.Counts[i] != want[i] {
			t.Fatalf("counts[%d] = %d, brute force %d", i, ws.Counts[i], want[i])
		}
	}
}

func TestDensityPassErrors(t *testing.T) {
	if _, err := DensityPass(nil, nil, clusteredPoints(5, 3)); err == nil {
		t.Error("empty sample: want error")
	}
	if _, err := DensityPass(clusteredPoints(3, 4), []int{1}, nil); err == nil {
		t.Error("ids length mismatch: want error")
	}
}

func TestDensityAccumulatorMatchesBatch(t *testing.T) {
	data := clusteredPoints(2000, 5)
	sample := clusteredPoints(30, 6)
	batch, err := DensityPass(sample, nil, data)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := NewDensityAccumulator(sample, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range data {
		acc.Add(p)
	}
	if acc.Seen() != int64(len(data)) {
		t.Errorf("Seen = %d", acc.Seen())
	}
	stream := acc.Finish()
	for i := range batch.Counts {
		if batch.Counts[i] != stream.Counts[i] {
			t.Fatalf("counts[%d]: batch %d, stream %d", i, batch.Counts[i], stream.Counts[i])
		}
	}
	// Finish returns a snapshot: further Adds must not mutate it.
	acc.Add(data[0])
	if stream.Counts[0] != batch.Counts[0] {
		t.Error("Finish did not snapshot counts")
	}
}

func TestDensityAccumulatorErrors(t *testing.T) {
	if _, err := NewDensityAccumulator(nil, nil); err == nil {
		t.Error("empty sample: want error")
	}
	if _, err := NewDensityAccumulator(clusteredPoints(3, 7), []int{1, 2}); err == nil {
		t.Error("ids mismatch: want error")
	}
}

func TestDensityPreservesSkew(t *testing.T) {
	// 90% of the data in one cluster: the density counts must reflect it
	// even though VAS flattens the point placement (§V's motivation).
	rng := rand.New(rand.NewSource(8))
	data := make([]geom.Point, 4000)
	for i := range data {
		if i < 3600 {
			data[i] = geom.Pt(rng.NormFloat64()*0.5, rng.NormFloat64()*0.5)
		} else {
			data[i] = geom.Pt(8+rng.NormFloat64()*0.5, rng.NormFloat64()*0.5)
		}
	}
	ic := NewInterchange(Options{K: 40, Kernel: testKernel()})
	for i, p := range data {
		ic.Add(p, i)
	}
	ws, err := DensityPass(ic.Sample(), ic.SampleIDs(), data)
	if err != nil {
		t.Fatal(err)
	}
	var left, total int64
	for i, p := range ws.Points {
		total += ws.Counts[i]
		if p.X < 4 {
			left += ws.Counts[i]
		}
	}
	frac := float64(left) / float64(total)
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("density-embedded left-cluster mass = %.3f, want ≈0.90", frac)
	}
}
