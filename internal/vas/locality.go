package vas

import (
	"math"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/strtree"
)

// locIndex abstracts the spatial index that the ESLoc variant uses to find
// the sample points within the kernel support of an incoming point. Two
// implementations exist: the R-tree the paper prescribes and a uniform grid
// for the index ablation (DESIGN.md §4).
type locIndex interface {
	insert(p geom.Point, slot int)
	remove(p geom.Point, slot int)
	// within appends the slot and squared distance of every indexed point
	// within radius of p.
	within(p geom.Point, radius float64, dst []slotDist) []slotDist
}

// slotDist is one locality-query hit: the sample slot and its squared
// distance to the query point, so the kernel evaluation can reuse the
// distance the index already computed.
type slotDist struct {
	slot int
	d2   float64
}

// rtreeIndex adapts the mutable internal/strtree tree to locIndex.
type rtreeIndex struct {
	t       *strtree.Dynamic
	scratch []strtree.Item
}

func newRTreeIndex() *rtreeIndex { return &rtreeIndex{t: strtree.NewDynamic()} }

func (ix *rtreeIndex) insert(p geom.Point, slot int) { ix.t.Insert(p, slot) }
func (ix *rtreeIndex) remove(p geom.Point, slot int) { ix.t.Delete(p, slot) }

func (ix *rtreeIndex) within(p geom.Point, radius float64, dst []slotDist) []slotDist {
	ix.scratch = ix.scratch[:0]
	ix.scratch = ix.t.Within(p, radius, ix.scratch)
	for _, it := range ix.scratch {
		dst = append(dst, slotDist{slot: it.ID, d2: it.P.Dist2(p)})
	}
	return dst
}

// gridIndex adapts internal/grid to locIndex.
type gridIndex struct {
	g       *grid.Grid
	scratch []grid.Item
}

// newGridIndex sizes the grid so an average cell is on the order of the
// sample density: √K cells per side keeps expected per-cell occupancy O(1).
func newGridIndex(bounds geom.Rect, k int) *gridIndex {
	side := int(math.Sqrt(float64(k)))
	if side < 4 {
		side = 4
	}
	return &gridIndex{g: grid.New(bounds, side, side)}
}

func (ix *gridIndex) insert(p geom.Point, slot int) { ix.g.Insert(p, slot) }
func (ix *gridIndex) remove(p geom.Point, slot int) { ix.g.Delete(p, slot) }

func (ix *gridIndex) within(p geom.Point, radius float64, dst []slotDist) []slotDist {
	ix.scratch = ix.scratch[:0]
	ix.scratch = ix.g.Within(p, radius, ix.scratch)
	for _, it := range ix.scratch {
		dst = append(dst, slotDist{slot: it.ID, d2: it.P.Dist2(p)})
	}
	return dst
}

// slotHeap is an indexed max-heap over slot responsibilities. It supports
// push, remove-by-slot, key update, and max lookup in O(log n), which keeps
// the Shrink step sublinear for the ESLoc variant: without it, finding the
// max-responsibility element would rescan all K slots and erase the benefit
// of locality-pruned updates.
type slotHeap struct {
	slots []int     // heap order -> slot
	pos   []int     // slot -> heap position, -1 when absent
	key   []float64 // slot -> responsibility
}

func newSlotHeap(capSlots int) *slotHeap {
	h := &slotHeap{
		slots: make([]int, 0, capSlots),
		pos:   make([]int, capSlots),
		key:   make([]float64, capSlots),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

func (h *slotHeap) len() int { return len(h.slots) }

func (h *slotHeap) push(slot int, key float64) {
	h.key[slot] = key
	h.pos[slot] = len(h.slots)
	h.slots = append(h.slots, slot)
	h.siftUp(len(h.slots) - 1)
}

// maxSlot returns the slot with the largest key. It panics on an empty
// heap, which would indicate a bookkeeping bug in Interchange.
func (h *slotHeap) maxSlot() int { return h.slots[0] }

func (h *slotHeap) remove(slot int) {
	i := h.pos[slot]
	if i < 0 {
		return
	}
	last := len(h.slots) - 1
	h.swap(i, last)
	h.slots = h.slots[:last]
	h.pos[slot] = -1
	if i < last {
		h.siftDown(i)
		h.siftUp(i)
	}
}

// update changes slot's key and restores heap order. Calling update for a
// slot not in the heap is a no-op, which lets Interchange blindly update
// neighbours that may include the entry being removed.
func (h *slotHeap) update(slot int, key float64) {
	i := h.pos[slot]
	if i < 0 {
		return
	}
	old := h.key[slot]
	h.key[slot] = key
	if key > old {
		h.siftUp(i)
	} else if key < old {
		h.siftDown(i)
	}
}

func (h *slotHeap) swap(i, j int) {
	h.slots[i], h.slots[j] = h.slots[j], h.slots[i]
	h.pos[h.slots[i]] = i
	h.pos[h.slots[j]] = j
}

func (h *slotHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.key[h.slots[parent]] >= h.key[h.slots[i]] {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *slotHeap) siftDown(i int) {
	n := len(h.slots)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.key[h.slots[l]] > h.key[h.slots[largest]] {
			largest = l
		}
		if r < n && h.key[h.slots[r]] > h.key[h.slots[largest]] {
			largest = r
		}
		if largest == i {
			return
		}
		h.swap(i, largest)
		i = largest
	}
}
