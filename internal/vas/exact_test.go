package vas

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/proximity"
)

// bruteForceOptimum enumerates all K-subsets; only usable for tiny inputs.
func bruteForceOptimum(k proximity.Func, pts []geom.Point, size int) ([]int, float64) {
	n := len(pts)
	best := math.Inf(1)
	var bestSet []int
	idx := make([]int, size)
	var rec func(start, depth int)
	sel := make([]geom.Point, size)
	rec = func(start, depth int) {
		if depth == size {
			if obj := Objective(k, sel); obj < best {
				best = obj
				bestSet = append(bestSet[:0], idx...)
			}
			return
		}
		for i := start; i <= n-(size-depth); i++ {
			idx[depth] = i
			sel[depth] = pts[i]
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	out := append([]int(nil), bestSet...)
	sort.Ints(out)
	return out, best
}

func TestSolveExactMatchesEnumeration(t *testing.T) {
	kern := proximity.NewGaussian(0.8)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		n := 8 + rng.Intn(5) // 8..12
		size := 2 + rng.Intn(3)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.NormFloat64(), rng.NormFloat64())
		}
		wantIdx, wantObj := bruteForceOptimum(kern, pts, size)
		got, err := SolveExact(context.Background(), pts, ExactOptions{K: size, Kernel: kern})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !got.Proven {
			t.Fatalf("trial %d: not proven on a tiny input", trial)
		}
		if math.Abs(got.Objective-wantObj) > 1e-9*(1+wantObj) {
			t.Fatalf("trial %d (n=%d k=%d): exact objective %v, enumeration %v (sets %v vs %v)",
				trial, n, size, got.Objective, wantObj, got.Indices, wantIdx)
		}
	}
}

func TestSolveExactIsLowerBoundForInterchange(t *testing.T) {
	kern := proximity.NewGaussian(0.5)
	pts := clusteredPoints(40, 2)
	exact, err := SolveExact(context.Background(), pts, ExactOptions{K: 8, Kernel: kern})
	if err != nil {
		t.Fatal(err)
	}
	ic := NewInterchange(Options{K: 8, Kernel: kern})
	Converge(ic, pts, 64)
	approx := Objective(kern, ic.Sample())
	if approx < exact.Objective-1e-9 {
		t.Fatalf("Interchange %v beat the 'exact' optimum %v — solver bug", approx, exact.Objective)
	}
	// Theorem 3: the normalized gap is at most 1/4.
	candNorm, optNorm, gap := GapToOptimal(kern, ic.Sample(), gatherPts(pts, exact.Indices))
	if gap > 0.25+1e-9 {
		t.Errorf("Theorem 3 violated: normalized gap %v (cand %v, opt %v)", gap, candNorm, optNorm)
	}
}

func gatherPts(pts []geom.Point, idx []int) []geom.Point {
	out := make([]geom.Point, len(idx))
	for i, j := range idx {
		out[i] = pts[j]
	}
	return out
}

func TestSolveExactValidation(t *testing.T) {
	kern := proximity.NewGaussian(1)
	pts := clusteredPoints(5, 3)
	if _, err := SolveExact(context.Background(), pts, ExactOptions{K: 0, Kernel: kern}); err == nil {
		t.Error("K=0: want error")
	}
	if _, err := SolveExact(context.Background(), pts, ExactOptions{K: 6, Kernel: kern}); err == nil {
		t.Error("K>N: want error")
	}
	if _, err := SolveExact(context.Background(), pts, ExactOptions{K: 2}); err == nil {
		t.Error("unset kernel: want error")
	}
}

func TestSolveExactKEqualsN(t *testing.T) {
	kern := proximity.NewGaussian(1)
	pts := clusteredPoints(6, 4)
	res, err := SolveExact(context.Background(), pts, ExactOptions{K: 6, Kernel: kern})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Indices) != 6 || !res.Proven {
		t.Fatalf("K=N: got %v proven=%v", res.Indices, res.Proven)
	}
	if math.Abs(res.Objective-Objective(kern, pts)) > 1e-12 {
		t.Error("K=N objective mismatch")
	}
}

func TestSolveExactBudget(t *testing.T) {
	kern := proximity.NewGaussian(0.05) // tight kernel: weak pruning
	rng := rand.New(rand.NewSource(5))
	pts := make([]geom.Point, 60)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	res, err := SolveExact(context.Background(), pts, ExactOptions{K: 10, Kernel: kern, MaxNodes: 50})
	if err != ErrBudgetExhausted && res.Proven {
		// With such a tiny budget the search cannot finish unless pruning
		// is spectacular; accept either outcome but an incumbent must
		// exist regardless.
		t.Logf("search finished within 50 nodes (ok): err=%v", err)
	}
	if len(res.Indices) != 10 {
		t.Fatalf("incumbent has %d indices, want 10", len(res.Indices))
	}
}

func TestSolveExactContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	kern := proximity.NewGaussian(0.05)
	rng := rand.New(rand.NewSource(6))
	pts := make([]geom.Point, 70)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	res, err := SolveExact(ctx, pts, ExactOptions{K: 12, Kernel: kern})
	// Cancellation is checked every 1024 nodes, so either the search was
	// cut (budget error) or it finished extremely fast; both leave a
	// valid incumbent.
	if err != nil && err != ErrBudgetExhausted {
		t.Fatalf("unexpected error: %v", err)
	}
	if len(res.Indices) != 12 {
		t.Fatalf("incumbent size %d", len(res.Indices))
	}
}

func TestRandomSubset(t *testing.T) {
	pts := clusteredPoints(100, 7)
	rng := rand.New(rand.NewSource(8))
	s := RandomSubset(pts, 10, rng.Intn)
	if len(s) != 10 {
		t.Fatalf("size = %d", len(s))
	}
	// Every member must be from pts; no duplicate positions selected.
	seen := map[geom.Point]int{}
	for _, p := range pts {
		seen[p]++
	}
	for _, p := range s {
		if seen[p] == 0 {
			t.Fatalf("selected point %v not in source (or overdrawn)", p)
		}
		seen[p]--
	}
	// k >= n returns everything.
	all := RandomSubset(pts[:5], 10, rng.Intn)
	if len(all) != 5 {
		t.Errorf("k>n size = %d", len(all))
	}
}

func TestRandomSubsetUniformity(t *testing.T) {
	// Each of 10 points should appear in a size-5 subset with p=0.5.
	pts := make([]geom.Point, 10)
	for i := range pts {
		pts[i] = geom.Pt(float64(i), 0)
	}
	rng := rand.New(rand.NewSource(9))
	counts := make([]int, 10)
	const trials = 4000
	for t := 0; t < trials; t++ {
		for _, p := range RandomSubset(pts, 5, rng.Intn) {
			counts[int(p.X)]++
		}
	}
	for i, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-0.5) > 0.03 {
			t.Errorf("point %d selected with frequency %.3f, want 0.5±0.03", i, frac)
		}
	}
}
