// Package vas implements the paper's primary contribution: the
// Visualization-Aware Sampling problem (Definition 1) and the Interchange
// approximation algorithm (§IV-B) with its three optimization levels —
// the naive replacement test (NoES), the Expand/Shrink procedure (ES,
// Algorithm 1), and Expand/Shrink with a spatial locality index (ES+Loc).
//
// VAS selects a K-subset S of the dataset minimizing the pairwise objective
//
//	Σ_{si,sj ∈ S, i<j} κ̃(si, sj)
//
// which the paper derives from the visualization loss ∫ 1/Σκ(x,si) dx by a
// second-order Taylor expansion. Interchange is a streaming hill-climber: it
// seeds S with the first K points, then for every subsequent data point
// tests whether swapping it into S decreases the objective, which by
// Theorem 2 is exactly what one Expand followed by one Shrink does.
package vas

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/proximity"
)

// Variant selects the Interchange implementation strategy. The three
// variants produce the same sample on the same input stream (ES+Loc up to
// kernel-tail truncation); they differ only in cost per scanned point,
// which is what Fig. 10 measures.
type Variant int

const (
	// NoES tests each candidate replacement independently: for every slot
	// it recomputes the responsibility of the incoming point against the
	// rest of the sample, O(K²) per scanned point.
	NoES Variant = iota
	// ES uses the Expand/Shrink procedure of Algorithm 1: responsibilities
	// are maintained incrementally, O(K) per scanned point.
	ES
	// ESLoc additionally prunes responsibility updates to sample points
	// within the kernel's support radius using a spatial index,
	// O(m log K) per scanned point where m is the local neighbour count.
	ESLoc
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case NoES:
		return "no-es"
	case ES:
		return "es"
	case ESLoc:
		return "es+loc"
	default:
		return fmt.Sprintf("vas.Variant(%d)", int(v))
	}
}

// ParseVariant converts a variant name to its Variant.
func ParseVariant(s string) (Variant, error) {
	switch s {
	case "no-es", "noes":
		return NoES, nil
	case "es":
		return ES, nil
	case "es+loc", "esloc":
		return ESLoc, nil
	}
	return 0, fmt.Errorf("vas: unknown variant %q", s)
}

// IndexKind selects the spatial index backing the ESLoc variant. The paper
// uses an R-tree; the uniform grid is provided for the index ablation.
type IndexKind int

const (
	// IndexRTree uses the quadratic-split R-tree from internal/strtree.
	IndexRTree IndexKind = iota
	// IndexGrid uses a uniform grid sized from the data bounds.
	IndexGrid
)

// Options configures an Interchange sampler.
type Options struct {
	// K is the sample size (required, positive).
	K int
	// Kernel is the proximity function; its Pair form is the κ̃ of
	// Definition 1 (required — use proximity.New or proximity.FromData).
	Kernel proximity.Func
	// Variant selects NoES, ES, or ESLoc. Default ES.
	Variant Variant
	// Index selects the locality index for ESLoc. Default IndexRTree.
	Index IndexKind
	// GridBounds supplies the domain extent when Index == IndexGrid.
	// Ignored otherwise. When empty, the grid index falls back to a
	// bounds-growing R-tree.
	GridBounds geom.Rect
}

// entry is one sample slot. Slots are stable: the locality index stores the
// slot number as payload, so entries never move between slots.
type entry struct {
	p      geom.Point
	id     int
	rsp    float64 // Σ_j κ̃(p, p_j) over active slots ≠ this one
	active bool
}

// Interchange is the streaming VAS sampler. It implements
// sampling.Sampler. Not safe for concurrent use.
type Interchange struct {
	opt     Options
	entries []entry // K+1 slots; at most K active outside Add
	free    []int   // inactive slot indices
	nActive int

	// objective is Σ_{i<j} κ̃ over active slots, maintained incrementally.
	objective float64

	index locIndex  // non-nil only for ESLoc
	heap  *slotHeap // max-heap over responsibilities, ESLoc only

	// inSample tracks the dataset ids currently selected, so re-streamed
	// passes skip points already in the sample (a self-replacement is
	// never a strict improvement, and floating-point drift could
	// otherwise turn it into a perpetual no-op swap).
	inSample map[int]struct{}

	seen         int // points offered
	replacements int // successful swaps since construction
	passSwaps    int // successful swaps since BeginPass

	// scratch buffer reused across Add calls.
	scratchNear []slotDist
}

// NewInterchange returns an Interchange sampler. It panics on K <= 0 or an
// unusable kernel, because a misconfigured sampler would corrupt every
// downstream experiment silently.
func NewInterchange(opt Options) *Interchange {
	if opt.K <= 0 {
		panic(fmt.Sprintf("vas: K must be positive, got %d", opt.K))
	}
	if opt.Kernel.Bandwidth() <= 0 {
		panic("vas: Options.Kernel is unset (use proximity.New or proximity.FromData)")
	}
	ic := &Interchange{
		opt:      opt,
		entries:  make([]entry, opt.K+1),
		free:     make([]int, 0, opt.K+1),
		inSample: make(map[int]struct{}, opt.K),
	}
	for i := opt.K; i >= 0; i-- {
		ic.free = append(ic.free, i)
	}
	if opt.Variant == ESLoc {
		switch opt.Index {
		case IndexGrid:
			if !opt.GridBounds.IsEmpty() {
				ic.index = newGridIndex(opt.GridBounds, opt.K)
			} else {
				ic.index = newRTreeIndex()
			}
		default:
			ic.index = newRTreeIndex()
		}
		ic.heap = newSlotHeap(opt.K + 1)
	}
	return ic
}

// K returns the configured sample size.
func (ic *Interchange) K() int { return ic.opt.K }

// Seen returns the number of points offered so far.
func (ic *Interchange) Seen() int { return ic.seen }

// Replacements returns the number of successful swaps since construction.
func (ic *Interchange) Replacements() int { return ic.replacements }

// BeginPass resets the per-pass swap counter. Drivers that re-stream the
// dataset until convergence call BeginPass before each pass and stop when
// PassSwaps returns 0 (no valid replacement exists — the Interchange
// fixed point of Theorem 3).
func (ic *Interchange) BeginPass() { ic.passSwaps = 0 }

// PassSwaps returns the number of successful swaps since the last BeginPass.
func (ic *Interchange) PassSwaps() int { return ic.passSwaps }

// Objective returns the current optimization objective Σ_{i<j} κ̃(si,sj).
// For the ESLoc variant pairs beyond the kernel support are treated as
// zero, matching the approximation the paper's speed-up makes.
func (ic *Interchange) Objective() float64 { return ic.objective }

// Add implements sampling.Sampler. It offers one data point to the sampler.
func (ic *Interchange) Add(p geom.Point, id int) {
	ic.seen++
	if _, dup := ic.inSample[id]; dup {
		return
	}
	if ic.nActive < ic.opt.K {
		slot := ic.takeSlot()
		ic.activate(slot, p, id)
		return
	}
	switch ic.opt.Variant {
	case NoES:
		ic.addNoES(p, id)
	case ES:
		ic.addES(p, id)
	case ESLoc:
		ic.addESLoc(p, id)
	default:
		panic(fmt.Sprintf("vas: unknown variant %d", int(ic.opt.Variant)))
	}
}

// takeSlot pops a free slot index.
func (ic *Interchange) takeSlot() int {
	n := len(ic.free) - 1
	slot := ic.free[n]
	ic.free = ic.free[:n]
	return slot
}

// activate installs (p, id) into slot, wiring responsibilities, the
// objective, and (for ESLoc) the index and heap. Cost O(K) or O(m log K).
func (ic *Interchange) activate(slot int, p geom.Point, id int) {
	e := &ic.entries[slot]
	e.p, e.id, e.active, e.rsp = p, id, true, 0
	ic.inSample[id] = struct{}{}

	if ic.opt.Variant == ESLoc {
		// Locality: only neighbours within the pair support interact.
		ic.scratchNear = ic.scratchNear[:0]
		ic.scratchNear = ic.index.within(p, ic.opt.Kernel.PairSupport(), ic.scratchNear)
		var rsp float64
		for _, nb := range ic.scratchNear {
			o := &ic.entries[nb.slot]
			l := ic.opt.Kernel.PairDist2(nb.d2)
			o.rsp += l
			rsp += l
			ic.heap.update(nb.slot, o.rsp)
		}
		e.rsp = rsp
		ic.objective += rsp
		ic.index.insert(p, slot)
		ic.heap.push(slot, rsp)
		ic.nActive++
		return
	}

	var rsp float64
	for s := range ic.entries {
		o := &ic.entries[s]
		if !o.active || s == slot {
			continue
		}
		l := ic.opt.Kernel.PairDist2(p.Dist2(o.p))
		o.rsp += l
		rsp += l
	}
	e.rsp = rsp
	ic.objective += rsp
	ic.nActive++
}

// deactivate removes slot from the sample, unwinding what activate did.
func (ic *Interchange) deactivate(slot int) {
	e := &ic.entries[slot]
	if ic.opt.Variant == ESLoc {
		ic.scratchNear = ic.scratchNear[:0]
		ic.scratchNear = ic.index.within(e.p, ic.opt.Kernel.PairSupport(), ic.scratchNear)
		for _, nb := range ic.scratchNear {
			if nb.slot == slot {
				continue
			}
			o := &ic.entries[nb.slot]
			o.rsp -= ic.opt.Kernel.PairDist2(nb.d2)
			ic.heap.update(nb.slot, o.rsp)
		}
		ic.index.remove(e.p, slot)
		ic.heap.remove(slot)
	} else {
		for s := range ic.entries {
			o := &ic.entries[s]
			if !o.active || s == slot {
				continue
			}
			o.rsp -= ic.opt.Kernel.PairDist2(e.p.Dist2(o.p))
		}
	}
	ic.objective -= e.rsp
	delete(ic.inSample, e.id)
	e.active = false
	e.rsp = 0
	ic.nActive--
	ic.free = append(ic.free, slot)
}

// addES is Algorithm 1: Expand by inserting t, then Shrink by evicting the
// max-responsibility element. By Theorem 2 this performs a valid
// replacement whenever one exists for t, and otherwise leaves S unchanged.
func (ic *Interchange) addES(p geom.Point, id int) {
	slot := ic.takeSlot()
	ic.activate(slot, p, id) // Expand
	// Shrink: evict the max-responsibility active slot. Ties go to the
	// newcomer (Theorem 2: replace only on a strict improvement), so an
	// equal-responsibility swap cannot cycle forever.
	worst := slot
	worstRsp := ic.entries[slot].rsp
	for s := range ic.entries {
		e := &ic.entries[s]
		if !e.active || s == slot {
			continue
		}
		if e.rsp > worstRsp {
			worst, worstRsp = s, e.rsp
		}
	}
	ic.deactivate(worst)
	if worst != slot {
		ic.replacements++
		ic.passSwaps++
	}
}

// addESLoc is addES with the index-backed heap doing the argmax.
func (ic *Interchange) addESLoc(p geom.Point, id int) {
	slot := ic.takeSlot()
	ic.activate(slot, p, id) // Expand
	worst := ic.heap.maxSlot()
	// Ties go to the newcomer, as in addES.
	if ic.entries[worst].rsp <= ic.entries[slot].rsp {
		worst = slot
	}
	ic.deactivate(worst) // Shrink
	if worst != slot {
		ic.replacements++
		ic.passSwaps++
	}
}

// addNoES is the unoptimized baseline of Fig. 10: for every candidate slot
// it independently recomputes the incoming point's responsibility against
// S − {slot}, an O(K) computation per slot and O(K²) per scanned point.
// The accepted swap (if any) is against the slot with maximum expanded
// responsibility, so the outcome matches ES exactly.
func (ic *Interchange) addNoES(p geom.Point, id int) {
	// Responsibility of p in the expanded set S+{p}.
	var rspT float64
	for s := range ic.entries {
		e := &ic.entries[s]
		if !e.active {
			continue
		}
		rspT += ic.opt.Kernel.PairDist2(p.Dist2(e.p))
	}
	// For each candidate slot, recompute its expanded responsibility from
	// scratch (this is the deliberate inefficiency: no incremental state).
	worst := -1
	var worstRsp float64
	for s := range ic.entries {
		e := &ic.entries[s]
		if !e.active {
			continue
		}
		var rsp float64
		for s2 := range ic.entries {
			o := &ic.entries[s2]
			if !o.active || s2 == s {
				continue
			}
			rsp += ic.opt.Kernel.PairDist2(e.p.Dist2(o.p))
		}
		rsp += ic.opt.Kernel.PairDist2(e.p.Dist2(p)) // pair with the newcomer
		if worst == -1 || rsp > worstRsp {
			worst, worstRsp = s, rsp
		}
	}
	if worst >= 0 && worstRsp > rspT {
		// Valid replacement: evict worst, admit p.
		ic.deactivate(worst)
		slot := ic.takeSlot()
		ic.activate(slot, p, id)
		ic.replacements++
		ic.passSwaps++
	}
}

// Sample implements sampling.Sampler. The order is slot order, which is
// deterministic for a given input stream.
func (ic *Interchange) Sample() []geom.Point {
	out := make([]geom.Point, 0, ic.nActive)
	for s := range ic.entries {
		if ic.entries[s].active {
			out = append(out, ic.entries[s].p)
		}
	}
	return out
}

// SampleIDs implements sampling.Sampler.
func (ic *Interchange) SampleIDs() []int {
	out := make([]int, 0, ic.nActive)
	for s := range ic.entries {
		if ic.entries[s].active {
			out = append(out, ic.entries[s].id)
		}
	}
	return out
}

// RecomputeObjective recomputes the exact objective and all
// responsibilities from scratch in O(K²), repairing any floating-point
// drift accumulated by incremental updates, and returns the exact value.
// Long-running convergence loops call this between passes.
func (ic *Interchange) RecomputeObjective() float64 {
	active := make([]int, 0, ic.nActive)
	for s := range ic.entries {
		if ic.entries[s].active {
			ic.entries[s].rsp = 0
			active = append(active, s)
		}
	}
	var obj float64
	for i := 0; i < len(active); i++ {
		for j := i + 1; j < len(active); j++ {
			a, b := &ic.entries[active[i]], &ic.entries[active[j]]
			l := ic.opt.Kernel.PairDist2(a.p.Dist2(b.p))
			a.rsp += l
			b.rsp += l
			obj += l
		}
	}
	if ic.opt.Variant == ESLoc {
		for _, s := range active {
			ic.heap.update(s, ic.entries[s].rsp)
		}
	}
	ic.objective = obj
	return obj
}

// Objective computes Σ_{i<j} κ̃ for an arbitrary point set; the exact
// solver, tests, and the experiment harness share this reference
// implementation.
func Objective(k proximity.Func, pts []geom.Point) float64 {
	var obj float64
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			obj += k.PairDist2(pts[i].Dist2(pts[j]))
		}
	}
	return obj
}

// NormalizedObjective is the Theorem 3 quantity: the objective averaged
// over the K(K-1) ordered pairs, the scale on which the approximation
// guarantee (within 1/4 of optimal) is stated.
func NormalizedObjective(k proximity.Func, pts []geom.Point) float64 {
	n := len(pts)
	if n < 2 {
		return 0
	}
	return Objective(k, pts) / (float64(n) * float64(n-1))
}

// Converge streams pts through ic repeatedly until a full pass makes no
// replacement or maxPasses is reached, and returns the number of passes
// run. The paper notes Interchange "should be run until no more valid
// replacements are possible" but that in practice a time-bounded prefix
// already gives high quality; callers wanting the fixed point use this.
func Converge(ic *Interchange, pts []geom.Point, maxPasses int) int {
	passes := 0
	for passes < maxPasses {
		ic.BeginPass()
		for i, p := range pts {
			ic.Add(p, i)
		}
		passes++
		ic.RecomputeObjective()
		if ic.PassSwaps() == 0 {
			break
		}
	}
	return passes
}
