package vas

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"repro/internal/geom"
	"repro/internal/proximity"
)

// This file implements the paper's Mixed Integer Program formulation of
// VAS (referenced in §VI-D and detailed in the technical report) as an
// exporter: WriteMIP emits the instance in CPLEX LP format, the lingua
// franca GLPK and every other MIP solver reads. The in-repo exact solver
// (exact.go) covers Table II offline; the exporter lets anyone hand the
// same instances to an external solver to cross-check.
//
// Formulation. Binary x_i marks point i selected; binary y_ij (i<j) marks
// the pair (i,j) jointly selected:
//
//	min  Σ_{i<j} κ̃(p_i, p_j) · y_ij
//	s.t. Σ_i x_i = K
//	     y_ij ≥ x_i + x_j − 1      (pair activation)
//	     x ∈ {0,1}ⁿ, y ∈ [0,1]     (y relaxes to binary at optimum)
//
// Since κ̃ ≥ 0 and we minimize, each y_ij sits at max(0, x_i+x_j−1) in any
// optimal solution, so the relaxation of y is exact.

// MIPOptions configures WriteMIP.
type MIPOptions struct {
	// K is the sample size (required, 0 < K <= len(points)).
	K int
	// Kernel supplies κ̃ (required).
	Kernel proximity.Func
	// SkipNegligible omits objective terms below NegligibleThreshold,
	// shrinking the model the same way the locality speed-up prunes
	// pairs. Off by default for bit-exact instances.
	SkipNegligible bool
	// NegligibleThreshold is the cutoff when SkipNegligible is set;
	// 0 means 1e-7 (the paper's negligibility scale).
	NegligibleThreshold float64
}

// WriteMIP writes the VAS instance over pts as an LP-format MIP. The
// variable names are x0..x{n-1} and y{i}_{j} with i<j.
func WriteMIP(w io.Writer, pts []geom.Point, opt MIPOptions) error {
	n := len(pts)
	if n == 0 {
		return errors.New("vas: WriteMIP needs points")
	}
	if opt.K <= 0 || opt.K > n {
		return fmt.Errorf("vas: WriteMIP needs 0 < K <= N, got K=%d N=%d", opt.K, n)
	}
	if opt.Kernel.Bandwidth() <= 0 {
		return errors.New("vas: MIPOptions.Kernel is unset")
	}
	threshold := 0.0
	if opt.SkipNegligible {
		threshold = opt.NegligibleThreshold
		if threshold <= 0 {
			threshold = 1e-7
		}
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "\\ VAS instance: N=%d K=%d kernel=%s\n", n, opt.K, opt.Kernel)
	fmt.Fprintln(bw, "Minimize")
	fmt.Fprint(bw, " obj:")
	terms := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := opt.Kernel.Pair(pts[i], pts[j])
			if c <= threshold {
				continue
			}
			if terms > 0 && terms%8 == 0 {
				fmt.Fprint(bw, "\n     ")
			}
			fmt.Fprintf(bw, " + %.12g y%d_%d", c, i, j)
			terms++
		}
	}
	if terms == 0 {
		// All pairs negligible: any K-subset is optimal, but the model
		// still needs a well-formed objective.
		fmt.Fprint(bw, " 0 x0")
	}
	fmt.Fprintln(bw)

	fmt.Fprintln(bw, "Subject To")
	fmt.Fprint(bw, " card:")
	for i := 0; i < n; i++ {
		if i > 0 && i%16 == 0 {
			fmt.Fprint(bw, "\n     ")
		}
		fmt.Fprintf(bw, " + x%d", i)
	}
	fmt.Fprintf(bw, " = %d\n", opt.K)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := opt.Kernel.Pair(pts[i], pts[j])
			if c <= threshold {
				continue
			}
			fmt.Fprintf(bw, " act%d_%d: y%d_%d - x%d - x%d >= -1\n", i, j, i, j, i, j)
		}
	}

	fmt.Fprintln(bw, "Bounds")
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := opt.Kernel.Pair(pts[i], pts[j])
			if c <= threshold {
				continue
			}
			fmt.Fprintf(bw, " 0 <= y%d_%d <= 1\n", i, j)
		}
	}

	fmt.Fprintln(bw, "Binary")
	for i := 0; i < n; i++ {
		if i > 0 && i%16 == 0 {
			fmt.Fprintln(bw)
		}
		fmt.Fprintf(bw, " x%d", i)
	}
	fmt.Fprintln(bw)
	fmt.Fprintln(bw, "End")
	return bw.Flush()
}

// MIPObjective evaluates the MIP objective for a 0/1 selection vector,
// used by tests to confirm the exporter and the in-repo solvers agree on
// the same instance.
func MIPObjective(pts []geom.Point, kern proximity.Func, selected []bool) (float64, error) {
	if len(selected) != len(pts) {
		return 0, fmt.Errorf("vas: selection length %d != %d points", len(selected), len(pts))
	}
	var obj float64
	for i := 0; i < len(pts); i++ {
		if !selected[i] {
			continue
		}
		for j := i + 1; j < len(pts); j++ {
			if selected[j] {
				obj += kern.Pair(pts[i], pts[j])
			}
		}
	}
	return obj, nil
}
