package vas

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/proximity"
)

func testKernel() proximity.Func { return proximity.NewGaussian(0.5) }

func clusteredPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		// Two dense clusters plus a sparse band, so the optimizer has
		// real decisions to make.
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			pts[i] = geom.Pt(rng.NormFloat64()*0.3, rng.NormFloat64()*0.3)
		case 5, 6, 7, 8:
			pts[i] = geom.Pt(5+rng.NormFloat64()*0.3, rng.NormFloat64()*0.3)
		default:
			pts[i] = geom.Pt(rng.Float64()*5, 3+rng.Float64())
		}
	}
	return pts
}

func TestNewInterchangePanics(t *testing.T) {
	if r := catchPanic(func() { NewInterchange(Options{K: 0, Kernel: testKernel()}) }); r == nil {
		t.Error("K=0: want panic")
	}
	if r := catchPanic(func() { NewInterchange(Options{K: 5}) }); r == nil {
		t.Error("unset kernel: want panic")
	}
}

func catchPanic(f func()) (r interface{}) {
	defer func() { r = recover() }()
	f()
	return nil
}

func TestFillPhase(t *testing.T) {
	ic := NewInterchange(Options{K: 5, Kernel: testKernel()})
	pts := clusteredPoints(5, 1)
	for i, p := range pts {
		ic.Add(p, i)
	}
	s := ic.Sample()
	if len(s) != 5 {
		t.Fatalf("sample size = %d", len(s))
	}
	ids := ic.SampleIDs()
	sort.Ints(ids)
	for i, id := range ids {
		if id != i {
			t.Fatalf("fill phase should keep the first K points, ids = %v", ids)
		}
	}
	// With fewer than K points offered, the sample is whatever was seen.
	ic2 := NewInterchange(Options{K: 10, Kernel: testKernel()})
	ic2.Add(geom.Pt(1, 1), 0)
	if len(ic2.Sample()) != 1 {
		t.Error("partial fill should return the points seen so far")
	}
}

// TestObjectiveNeverIncreases is the Theorem 2 consequence: every Add
// either performs a valid replacement (objective strictly decreases) or
// leaves S unchanged.
func TestObjectiveNeverIncreases(t *testing.T) {
	for _, variant := range []Variant{NoES, ES} {
		ic := NewInterchange(Options{K: 12, Kernel: testKernel(), Variant: variant})
		pts := clusteredPoints(400, 2)
		var prev float64
		for i, p := range pts {
			ic.Add(p, i)
			if i < 12 {
				prev = ic.Objective()
				continue
			}
			cur := ic.Objective()
			if cur > prev+1e-9 {
				t.Fatalf("%v: objective increased at point %d: %v -> %v", variant, i, prev, cur)
			}
			prev = cur
		}
	}
}

// TestIncrementalObjectiveMatchesBruteForce verifies the O(1)-maintained
// objective equals the from-scratch pairwise sum.
func TestIncrementalObjectiveMatchesBruteForce(t *testing.T) {
	for _, variant := range []Variant{NoES, ES} {
		ic := NewInterchange(Options{K: 10, Kernel: testKernel(), Variant: variant})
		pts := clusteredPoints(300, 3)
		for i, p := range pts {
			ic.Add(p, i)
			if i%50 == 0 {
				want := Objective(testKernel(), ic.Sample())
				if got := ic.Objective(); math.Abs(got-want) > 1e-6*(1+want) {
					t.Fatalf("%v at %d: incremental %v, brute force %v", variant, i, got, want)
				}
			}
		}
	}
}

// TestVariantsAgree: NoES and ES implement the same replacement rule, so
// on the same stream they must produce identical samples. ESLoc truncates
// kernel tails, so it must produce an objective within a small tolerance.
func TestVariantsAgree(t *testing.T) {
	pts := clusteredPoints(600, 4)
	kern := testKernel()
	samples := map[Variant][]int{}
	for _, v := range []Variant{NoES, ES, ESLoc} {
		ic := NewInterchange(Options{K: 15, Kernel: kern, Variant: v})
		for i, p := range pts {
			ic.Add(p, i)
		}
		ids := ic.SampleIDs()
		sort.Ints(ids)
		samples[v] = ids
	}
	if !equalInts(samples[NoES], samples[ES]) {
		t.Errorf("NoES and ES disagree:\n%v\n%v", samples[NoES], samples[ES])
	}
	// ESLoc: compare objective quality, not exact membership.
	objES := objectiveOfIDs(kern, pts, samples[ES])
	objLoc := objectiveOfIDs(kern, pts, samples[ESLoc])
	if objLoc > objES*1.05+1e-9 {
		t.Errorf("ESLoc objective %v much worse than ES %v", objLoc, objES)
	}
}

func objectiveOfIDs(k proximity.Func, pts []geom.Point, ids []int) float64 {
	sel := make([]geom.Point, len(ids))
	for i, id := range ids {
		sel[i] = pts[id]
	}
	return Objective(k, sel)
}

// TestExpandShrinkEquivalentToBestSwap checks Theorem 2 directly: after an
// Add, the resulting set must match the best single-swap decision computed
// by brute force on the previous set.
func TestExpandShrinkEquivalentToBestSwap(t *testing.T) {
	kern := testKernel()
	rng := rand.New(rand.NewSource(5))
	const k = 6
	ic := NewInterchange(Options{K: k, Kernel: kern})
	var current []geom.Point
	var currentIDs []int
	for i := 0; i < 200; i++ {
		p := geom.Pt(rng.NormFloat64()*2, rng.NormFloat64()*2)
		if i < k {
			ic.Add(p, i)
			current = append(current, p)
			currentIDs = append(currentIDs, i)
			continue
		}
		// Brute force: would swapping p for some member decrease the
		// objective, and if so which swap does Expand/Shrink make?
		// Theorem 2: it evicts the max-responsibility element of S+{p}.
		expanded := append(append([]geom.Point(nil), current...), p)
		expandedIDs := append(append([]int(nil), currentIDs...), i)
		worst, worstRsp := -1, math.Inf(-1)
		for j := range expanded {
			var rsp float64
			for l := range expanded {
				if l != j {
					rsp += kern.Pair(expanded[j], expanded[l])
				}
			}
			if rsp > worstRsp {
				worst, worstRsp = j, rsp
			}
		}
		wantPts := append([]geom.Point(nil), expanded...)
		wantIDs := append([]int(nil), expandedIDs...)
		wantPts = append(wantPts[:worst], wantPts[worst+1:]...)
		wantIDs = append(wantIDs[:worst], wantIDs[worst+1:]...)

		ic.Add(p, i)
		gotIDs := ic.SampleIDs()
		sort.Ints(gotIDs)
		sortedWant := append([]int(nil), wantIDs...)
		sort.Ints(sortedWant)
		if !equalInts(gotIDs, sortedWant) {
			t.Fatalf("point %d: Expand/Shrink produced %v, brute force says %v", i, gotIDs, sortedWant)
		}
		current, currentIDs = wantPts, wantIDs
	}
}

func TestRecomputeObjectiveRepairsDrift(t *testing.T) {
	ic := NewInterchange(Options{K: 20, Kernel: testKernel()})
	pts := clusteredPoints(2000, 6)
	for i, p := range pts {
		ic.Add(p, i)
	}
	want := Objective(testKernel(), ic.Sample())
	got := ic.RecomputeObjective()
	if math.Abs(got-want) > 1e-9*(1+want) {
		t.Errorf("RecomputeObjective = %v, brute force = %v", got, want)
	}
	if math.Abs(ic.Objective()-want) > 1e-9*(1+want) {
		t.Error("Objective() not updated by RecomputeObjective")
	}
}

func TestConvergeReachesFixedPoint(t *testing.T) {
	pts := clusteredPoints(300, 7)
	kern := testKernel()
	ic := NewInterchange(Options{K: 8, Kernel: kern})
	passes := Converge(ic, pts, 50)
	if passes == 50 && ic.PassSwaps() != 0 {
		t.Fatalf("did not converge in 50 passes (last pass swaps: %d)", ic.PassSwaps())
	}
	// At the fixed point, no single swap can improve the objective.
	sample := ic.Sample()
	ids := map[int]bool{}
	for _, id := range ic.SampleIDs() {
		ids[id] = true
	}
	obj := Objective(kern, sample)
	for i, p := range pts {
		if ids[i] {
			continue
		}
		for j := range sample {
			trial := append([]geom.Point(nil), sample...)
			trial[j] = p
			if Objective(kern, trial) < obj-1e-9 {
				t.Fatalf("fixed point violated: swapping in point %d improves %v -> %v",
					i, obj, Objective(kern, trial))
			}
		}
	}
}

func TestVASSpreadsBetterThanRandom(t *testing.T) {
	// The headline behaviour: VAS's objective beats a uniform subset's.
	pts := clusteredPoints(1000, 8)
	kern := testKernel()
	ic := NewInterchange(Options{K: 30, Kernel: kern})
	Converge(ic, pts, 3)
	vasObj := Objective(kern, ic.Sample())
	rng := rand.New(rand.NewSource(9))
	randObj := Objective(kern, RandomSubset(pts, 30, rng.Intn))
	if vasObj >= randObj {
		t.Errorf("VAS objective %v not better than random %v", vasObj, randObj)
	}
}

func TestSampleIDsParallelToSample(t *testing.T) {
	pts := clusteredPoints(200, 10)
	ic := NewInterchange(Options{K: 9, Kernel: testKernel()})
	for i, p := range pts {
		ic.Add(p, i)
	}
	s := ic.Sample()
	ids := ic.SampleIDs()
	if len(s) != len(ids) {
		t.Fatalf("lengths differ: %d vs %d", len(s), len(ids))
	}
	for i := range s {
		if !pts[ids[i]].Equal(s[i]) {
			t.Fatalf("sample[%d]=%v but pts[ids[%d]]=%v", i, s[i], i, pts[ids[i]])
		}
	}
}

func TestNormalizedObjective(t *testing.T) {
	kern := testKernel()
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.1, 0), geom.Pt(0, 0.1)}
	obj := Objective(kern, pts)
	norm := NormalizedObjective(kern, pts)
	if math.Abs(norm-obj/6) > 1e-15 {
		t.Errorf("normalized = %v, want obj/6 = %v", norm, obj/6)
	}
	if NormalizedObjective(kern, pts[:1]) != 0 {
		t.Error("single point should normalize to 0")
	}
}

func TestGridIndexVariant(t *testing.T) {
	pts := clusteredPoints(500, 11)
	kern := testKernel()
	es := NewInterchange(Options{K: 12, Kernel: kern, Variant: ES})
	gridLoc := NewInterchange(Options{
		K: 12, Kernel: kern, Variant: ESLoc,
		Index: IndexGrid, GridBounds: geom.Bounds(pts),
	})
	for i, p := range pts {
		es.Add(p, i)
		gridLoc.Add(p, i)
	}
	objES := Objective(kern, es.Sample())
	objGrid := Objective(kern, gridLoc.Sample())
	if objGrid > objES*1.05+1e-9 {
		t.Errorf("grid-indexed ESLoc objective %v much worse than ES %v", objGrid, objES)
	}
}

func TestSlotHeap(t *testing.T) {
	h := newSlotHeap(8)
	h.push(0, 3)
	h.push(1, 7)
	h.push(2, 5)
	if h.maxSlot() != 1 {
		t.Fatalf("max = %d, want 1", h.maxSlot())
	}
	h.update(2, 10)
	if h.maxSlot() != 2 {
		t.Fatalf("after update max = %d, want 2", h.maxSlot())
	}
	h.remove(2)
	if h.maxSlot() != 1 {
		t.Fatalf("after remove max = %d, want 1", h.maxSlot())
	}
	h.update(5, 100) // absent slot: no-op
	if h.len() != 2 {
		t.Fatalf("len = %d", h.len())
	}
	h.remove(5) // absent: no-op
	h.update(0, 99)
	if h.maxSlot() != 0 {
		t.Fatal("decrease/increase sequencing broken")
	}
}

func TestSlotHeapRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n = 64
	h := newSlotHeap(n)
	keys := make(map[int]float64)
	for op := 0; op < 5000; op++ {
		switch {
		case len(keys) == 0 || (rng.Float64() < 0.4 && len(keys) < n):
			slot := rng.Intn(n)
			if _, in := keys[slot]; in {
				continue
			}
			k := rng.NormFloat64()
			keys[slot] = k
			h.push(slot, k)
		case rng.Float64() < 0.5:
			slot := anyKey(rng, keys)
			k := rng.NormFloat64()
			keys[slot] = k
			h.update(slot, k)
		default:
			slot := anyKey(rng, keys)
			delete(keys, slot)
			h.remove(slot)
		}
		if len(keys) == 0 {
			continue
		}
		// max of heap must match max of map.
		wantSlot, wantKey := -1, math.Inf(-1)
		for s, k := range keys {
			if k > wantKey {
				wantSlot, wantKey = s, k
			}
		}
		if got := h.maxSlot(); keys[got] != wantKey {
			t.Fatalf("op %d: heap max slot %d (key %v), want slot %d (key %v)",
				op, got, keys[got], wantSlot, wantKey)
		}
	}
}

func anyKey(rng *rand.Rand, m map[int]float64) int {
	i := rng.Intn(len(m))
	for k := range m {
		if i == 0 {
			return k
		}
		i--
	}
	panic("unreachable")
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
