// Package loss evaluates the visualization quality loss of a sample
// (paper Eq. 1):
//
//	Loss(S) = ∫ point-loss(x) dx,  point-loss(x) = 1 / Σ_{si∈S} κ(x, si)
//
// The integral is estimated by Monte Carlo over points drawn from the data
// domain, exactly as §VI-B2: draw candidate points uniformly from the
// bounding region, keep those within distance 0.1·scale of some dataset
// point (the paper uses an absolute 0.1 on Geolife's degree scale), and
// average the point losses. Because point losses overflow double precision
// when a sample leaves a probe uncovered, the paper aggregates with the
// median; this package reports both the median and a log-domain mean that
// cannot overflow.
package loss

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/proximity"
	"repro/internal/stats"
	"repro/internal/strtree"
)

// DefaultProbes is the paper's Monte Carlo budget: 1,000 random points.
const DefaultProbes = 1000

// DomainMembershipRadiusFraction scales the membership test: a probe
// belongs to the data domain when some dataset point lies within this
// fraction of the domain diagonal. The paper's absolute 0.1 on the Geolife
// extent (~tens of degrees) corresponds to roughly this fraction.
const DomainMembershipRadiusFraction = 0.005

// Options configures an Evaluator.
type Options struct {
	// Kernel is κ with the bandwidth used for sampling (required).
	Kernel proximity.Func
	// Probes is the Monte Carlo budget; 0 means DefaultProbes.
	Probes int
	// Seed makes probe generation deterministic.
	Seed int64
	// MembershipRadius overrides the domain membership radius; 0 derives
	// it from the dataset extent via DomainMembershipRadiusFraction.
	MembershipRadius float64
}

// Evaluator owns a fixed set of Monte Carlo probes drawn from a dataset's
// domain, so that different samples of the same dataset are scored against
// identical probes (paired comparison, lower variance). Construct with
// NewEvaluator.
type Evaluator struct {
	kern   proximity.Func
	probes []geom.Point
}

// NewEvaluator draws Monte Carlo probes from the domain of data. It returns
// an error when data is empty or no probe lands in the domain (degenerate
// extent), rather than silently scoring against nothing.
func NewEvaluator(data []geom.Point, opt Options) (*Evaluator, error) {
	if len(data) == 0 {
		return nil, errors.New("loss: empty dataset")
	}
	if opt.Kernel.Bandwidth() <= 0 {
		return nil, errors.New("loss: Options.Kernel is unset")
	}
	n := opt.Probes
	if n <= 0 {
		n = DefaultProbes
	}
	bounds := geom.Bounds(data)
	radius := opt.MembershipRadius
	if radius <= 0 {
		diag := geom.MaxPairwiseDist(data)
		radius = diag * DomainMembershipRadiusFraction
		if radius <= 0 {
			radius = 1e-9
		}
	}
	// Nearest-neighbour membership tests against the full dataset.
	tree := strtree.Build(data, nil)
	rng := rand.New(rand.NewSource(opt.Seed))
	probes := make([]geom.Point, 0, n)
	// Cap attempts so a pathological domain cannot loop forever; 1000×
	// oversampling is far beyond anything the experiments need.
	maxAttempts := n * 1000
	for attempts := 0; len(probes) < n && attempts < maxAttempts; attempts++ {
		p := geom.Pt(
			bounds.MinX+rng.Float64()*bounds.Width(),
			bounds.MinY+rng.Float64()*bounds.Height(),
		)
		if _, _, d, ok := tree.Nearest(p); ok && d <= radius {
			probes = append(probes, p)
		}
	}
	if len(probes) == 0 {
		return nil, fmt.Errorf("loss: no probes landed within radius %g of the data", radius)
	}
	return &Evaluator{kern: opt.Kernel, probes: probes}, nil
}

// NumProbes returns how many Monte Carlo probes the evaluator holds.
func (e *Evaluator) NumProbes() int { return len(e.probes) }

// Result holds the loss metrics of one sample.
type Result struct {
	// MedianLoss is the median of per-probe point losses — the paper's
	// reported aggregate (it is robust to the overflow-prone tail).
	MedianLoss float64
	// LogMeanLoss is log10 of the mean point loss computed in the log
	// domain (log-sum-exp), which cannot overflow; reported for analyses
	// that need a mean.
	LogMeanLoss float64
	// Covered is the fraction of probes whose kernel mass was above the
	// smallest positive double (i.e. the probe is "seen" by the sample).
	Covered float64
}

// Evaluate scores a sample against the evaluator's probes.
func (e *Evaluator) Evaluate(sample []geom.Point) (Result, error) {
	if len(sample) == 0 {
		return Result{}, errors.New("loss: empty sample")
	}
	// Index the sample: for each probe we need Σ κ(x, si). With the
	// Gaussian's 6ε support, only neighbours within support contribute
	// above double-precision noise, so query the k-d tree for the ball.
	tree := strtree.Build(sample, nil)
	support := e.kern.Support()
	logLosses := make([]float64, len(e.probes)) // log10 of point-loss
	covered := 0
	var scratch []strtree.Neighbor
	for i, x := range e.probes {
		scratch = scratch[:0]
		scratch = tree.InRange(geom.RectAround(x, support), scratch)
		var mass float64
		for _, nb := range scratch {
			mass += e.kern.Eval(x, nb.P)
		}
		if mass > 0 {
			logLosses[i] = -math.Log10(mass)
			covered++
			continue
		}
		// The probe is unseen by every sampled point at double precision.
		// Reconstruct the loss in the log domain from the single nearest
		// sample point: Σκ ≈ κ(nearest), log10 loss = d²/(2ε²)·log10(e).
		_, p, d, _ := tree.Nearest(x)
		logLosses[i] = d * d / (2 * e.kern.Bandwidth() * e.kern.Bandwidth()) * math.Log10E
		_ = p
	}
	med := stats.Median(logLosses)
	return Result{
		MedianLoss:  math.Pow(10, med),
		LogMeanLoss: logMean(logLosses),
		Covered:     float64(covered) / float64(len(e.probes)),
	}, nil
}

// logMean returns log10( mean(10^x) ) computed stably via log-sum-exp.
func logMean(logs []float64) float64 {
	if len(logs) == 0 {
		return math.NaN()
	}
	m := stats.Max(logs)
	var s float64
	for _, l := range logs {
		s += math.Pow(10, l-m)
	}
	return m + math.Log10(s/float64(len(logs)))
}

// LogLossRatio returns the §VI-B2 comparison metric
//
//	log10( Loss(S) / Loss(D) )
//
// computed from median losses in the log domain. Loss(D) — the loss of the
// full dataset — is the smallest achievable, so the ratio is ≥ 0 up to
// Monte Carlo noise and equals 0 for a perfect sample.
func LogLossRatio(sampleLoss, datasetLoss Result) float64 {
	return math.Log10(sampleLoss.MedianLoss) - math.Log10(datasetLoss.MedianLoss)
}

// EvaluateRatio is a convenience that scores sample and the full dataset
// and returns the log-loss-ratio along with both results.
func (e *Evaluator) EvaluateRatio(sample, dataset []geom.Point) (ratio float64, s, d Result, err error) {
	s, err = e.Evaluate(sample)
	if err != nil {
		return 0, s, d, err
	}
	d, err = e.Evaluate(dataset)
	if err != nil {
		return 0, s, d, err
	}
	return LogLossRatio(s, d), s, d, nil
}
