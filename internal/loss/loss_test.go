package loss

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/proximity"
)

func testData(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		if i%5 == 0 {
			pts[i] = geom.Pt(5+rng.NormFloat64(), 5+rng.NormFloat64())
		} else {
			pts[i] = geom.Pt(rng.NormFloat64()*0.5, rng.NormFloat64()*0.5)
		}
	}
	return pts
}

func evaluator(t *testing.T, data []geom.Point, probes int) *Evaluator {
	t.Helper()
	kern, err := proximity.FromData(proximity.Gaussian, data)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(data, Options{Kernel: kern, Probes: probes, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestDatasetHasLowestLoss(t *testing.T) {
	data := testData(3000, 1)
	ev := evaluator(t, data, 400)
	full, err := ev.Evaluate(data)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	sub := make([]geom.Point, 100)
	for i := range sub {
		sub[i] = data[rng.Intn(len(data))]
	}
	subLoss, err := ev.Evaluate(sub)
	if err != nil {
		t.Fatal(err)
	}
	if subLoss.MedianLoss < full.MedianLoss {
		t.Errorf("subset loss %v below full-data loss %v", subLoss.MedianLoss, full.MedianLoss)
	}
	if ratio := LogLossRatio(subLoss, full); ratio < -1e-9 {
		t.Errorf("log-loss-ratio %v negative", ratio)
	}
	if r0 := LogLossRatio(full, full); math.Abs(r0) > 1e-12 {
		t.Errorf("self ratio = %v, want 0", r0)
	}
}

// TestMonotoneInSampleSize: adding points to a sample can only reduce the
// loss (Σκ grows pointwise).
func TestMonotoneInSampleSize(t *testing.T) {
	data := testData(2000, 3)
	ev := evaluator(t, data, 300)
	rng := rand.New(rand.NewSource(4))
	perm := rng.Perm(len(data))
	var prev float64 = math.Inf(1)
	for _, size := range []int{50, 200, 800, 2000} {
		sub := make([]geom.Point, size)
		for i := 0; i < size; i++ {
			sub[i] = data[perm[i]]
		}
		res, err := ev.Evaluate(sub)
		if err != nil {
			t.Fatal(err)
		}
		// Nested samples: per-probe mass grows, so the median loss cannot
		// rise (up to exact ties).
		if res.MedianLoss > prev*(1+1e-9) {
			t.Errorf("loss rose from %v to %v when growing the sample to %d", prev, res.MedianLoss, size)
		}
		prev = res.MedianLoss
	}
}

func TestDeterministicProbes(t *testing.T) {
	data := testData(1000, 5)
	kern, _ := proximity.FromData(proximity.Gaussian, data)
	ev1, err := NewEvaluator(data, Options{Kernel: kern, Probes: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := NewEvaluator(data, Options{Kernel: kern, Probes: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	sub := data[:100]
	a, _ := ev1.Evaluate(sub)
	b, _ := ev2.Evaluate(sub)
	if a.MedianLoss != b.MedianLoss {
		t.Error("same seed produced different losses")
	}
}

func TestEvaluatorErrors(t *testing.T) {
	data := testData(100, 6)
	kern, _ := proximity.FromData(proximity.Gaussian, data)
	if _, err := NewEvaluator(nil, Options{Kernel: kern}); err == nil {
		t.Error("empty data: want error")
	}
	if _, err := NewEvaluator(data, Options{}); err == nil {
		t.Error("unset kernel: want error")
	}
	ev := evaluator(t, data, 100)
	if _, err := ev.Evaluate(nil); err == nil {
		t.Error("empty sample: want error")
	}
}

func TestUncoveredProbesUseLogDomain(t *testing.T) {
	// A sample far from the data leaves probes with zero double-precision
	// kernel mass; the evaluator must still produce a finite, huge loss
	// rather than +Inf or NaN (the overflow problem §VI-B2 works around).
	data := testData(500, 7)
	ev := evaluator(t, data, 200)
	far := []geom.Point{geom.Pt(1e6, 1e6)}
	res, err := ev.Evaluate(far)
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered != 0 {
		t.Errorf("coverage = %v for a far-away sample", res.Covered)
	}
	if math.IsNaN(res.LogMeanLoss) || math.IsInf(res.LogMeanLoss, 0) {
		t.Errorf("log mean loss not finite: %v", res.LogMeanLoss)
	}
	if res.LogMeanLoss < 10 {
		t.Errorf("log mean loss %v suspiciously small for an empty-looking plot", res.LogMeanLoss)
	}
	near, err := ev.Evaluate(data[:50])
	if err != nil {
		t.Fatal(err)
	}
	if near.MedianLoss >= res.MedianLoss {
		t.Error("on-data sample should have far lower loss than off-data sample")
	}
}

func TestProbesLandInDomain(t *testing.T) {
	// Probes are drawn near actual data points, not uniformly over the
	// bounding box: put all data in two far corners and check no probe
	// lands in the empty middle.
	var data []geom.Point
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		if i%2 == 0 {
			data = append(data, geom.Pt(rng.Float64(), rng.Float64()))
		} else {
			data = append(data, geom.Pt(100+rng.Float64(), 100+rng.Float64()))
		}
	}
	kern, _ := proximity.FromData(proximity.Gaussian, data)
	ev, err := NewEvaluator(data, Options{Kernel: kern, Probes: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if ev.NumProbes() == 0 {
		t.Fatal("no probes")
	}
	for _, p := range ev.probes {
		inLeft := p.X < 5 && p.Y < 5
		inRight := p.X > 95 && p.Y > 95
		if !inLeft && !inRight {
			t.Fatalf("probe %v landed outside the data domain", p)
		}
	}
}

func TestEvaluateRatio(t *testing.T) {
	data := testData(1500, 10)
	ev := evaluator(t, data, 300)
	ratio, s, d, err := ev.EvaluateRatio(data[:75], data)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratio-LogLossRatio(s, d)) > 1e-12 {
		t.Error("EvaluateRatio disagrees with LogLossRatio")
	}
	if ratio < 0 {
		t.Errorf("sample ratio %v negative", ratio)
	}
}

func TestLogMean(t *testing.T) {
	// logMean over equal entries is the entry.
	if got := logMean([]float64{3, 3, 3}); math.Abs(got-3) > 1e-12 {
		t.Errorf("logMean equal entries = %v", got)
	}
	// Dominated by the max: logMean(0, 100) ≈ 100 - log10(2).
	got := logMean([]float64{0, 100})
	want := 100 + math.Log10(0.5)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("logMean = %v, want %v", got, want)
	}
	if !math.IsNaN(logMean(nil)) {
		t.Error("logMean(nil) should be NaN")
	}
}
