package binio

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U32(0xDEADBEEF)
	w.U64(1 << 62)
	w.F64(math.Pi)
	w.F64(math.NaN())
	w.String("hello, snapshot")
	w.String("")
	f64s := make([]float64, 10_000) // exercise the chunked path
	for i := range f64s {
		f64s[i] = float64(i) * 1.5
	}
	f64s[7] = math.Inf(-1)
	w.F64s(f64s)
	i32s := make([]int32, 20_000)
	for i := range i32s {
		i32s[i] = int32(i - 10_000)
	}
	w.I32s(i32s)
	bools := []bool{true, false, true, true}
	w.Bools(bools)
	w.F64s(nil)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if got := r.U32(); got != 0xDEADBEEF {
		t.Fatalf("U32 = %x", got)
	}
	if got := r.U64(); got != 1<<62 {
		t.Fatalf("U64 = %x", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Fatalf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsNaN(got) {
		t.Fatalf("F64 NaN = %v", got)
	}
	if got := r.String(64); got != "hello, snapshot" {
		t.Fatalf("String = %q", got)
	}
	if got := r.String(64); got != "" {
		t.Fatalf("empty String = %q", got)
	}
	gotF := r.F64s()
	if len(gotF) != len(f64s) {
		t.Fatalf("F64s len = %d", len(gotF))
	}
	for i := range f64s {
		if math.Float64bits(gotF[i]) != math.Float64bits(f64s[i]) {
			t.Fatalf("F64s[%d] = %v want %v", i, gotF[i], f64s[i])
		}
	}
	gotI := r.I32s()
	if len(gotI) != len(i32s) {
		t.Fatalf("I32s len = %d", len(gotI))
	}
	for i := range i32s {
		if gotI[i] != i32s[i] {
			t.Fatalf("I32s[%d] = %d want %d", i, gotI[i], i32s[i])
		}
	}
	gotB := r.Bools()
	if len(gotB) != len(bools) {
		t.Fatalf("Bools len = %d", len(gotB))
	}
	for i := range bools {
		if gotB[i] != bools[i] {
			t.Fatalf("Bools[%d] = %v", i, gotB[i])
		}
	}
	if got := r.F64s(); got != nil {
		t.Fatalf("nil F64s = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestBudgetRejectsHostileCounts checks that a length prefix larger than
// the input can supply fails before allocating, not with an OOM or a
// long read loop.
func TestBudgetRejectsHostileCounts(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(1 << 60) // claims 2^60 float64s
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if got := r.F64s(); got != nil {
		t.Fatalf("hostile F64s returned %d elements", len(got))
	}
	if err := r.Err(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestTruncatedMidValue(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.F64s([]float64{1, 2, 3})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < buf.Len(); cut++ {
		data := buf.Bytes()[:cut]
		r := NewReader(bytes.NewReader(data), int64(len(data)))
		r.F64s()
		if err := r.Err(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

// TestStickyError checks that the first error latches and later reads
// are inert.
func TestStickyError(t *testing.T) {
	r := NewReader(bytes.NewReader(nil), 0)
	_ = r.U64()
	first := r.Err()
	if first == nil {
		t.Fatal("expected an error from an empty input")
	}
	_ = r.U32()
	_ = r.F64s()
	_ = r.String(10)
	if r.Err() != first {
		t.Fatalf("error was overwritten: %v -> %v", first, r.Err())
	}
}

func TestStringLimit(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.String("0123456789")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if got := r.String(4); got != "" || r.Err() == nil {
		t.Fatalf("over-limit string: %q, err %v", got, r.Err())
	}
}
