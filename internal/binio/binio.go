// Package binio is the shared little-endian binary codec under every
// on-disk format in this repository (the dataset files of
// internal/dataset and the catalog snapshots of internal/snapshot). It
// replaces scattered encoding/binary boilerplate with two sticky-error
// wrappers:
//
//   - Writer buffers and emits fixed-width primitives and
//     length-prefixed slices; the first error latches and every later
//     call is a no-op, so codecs read as straight-line field lists with
//     one error check at the end.
//   - Reader mirrors Writer and adds an allocation budget: when
//     constructed with the input's size, a length prefix larger than the
//     bytes that could possibly follow is rejected before anything is
//     allocated — a truncated or hostile header can cost at most the
//     bytes actually present, never an OOM.
package binio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrTruncated is wrapped by Reader errors caused by the input ending
// (or claiming more elements than its size allows) mid-value.
var ErrTruncated = errors.New("binio: truncated input")

// Writer emits little-endian primitives to an underlying writer through
// a buffer. The first write error latches: later calls do nothing and
// Flush reports it.
type Writer struct {
	w   *bufio.Writer
	err error
	buf [8]byte
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Err returns the latched error, if any.
func (w *Writer) Err() error { return w.err }

// Flush drains the buffer and returns the first error encountered.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

// Raw writes b verbatim.
func (w *Writer) Raw(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

// U32 writes a uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.Raw(w.buf[:4])
}

// U64 writes a uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.Raw(w.buf[:8])
}

// F64 writes a float64 as its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// String writes a uint32 length prefix followed by the bytes of s.
func (w *Writer) String(s string) {
	if len(s) > math.MaxUint32 {
		w.fail(fmt.Errorf("binio: string of %d bytes exceeds the format's 32-bit length", len(s)))
		return
	}
	w.U32(uint32(len(s)))
	if w.err == nil {
		_, w.err = w.w.WriteString(s)
	}
}

// chunkBytes sizes the scratch buffer the slice codecs convert through:
// large enough that the per-chunk call overhead vanishes, small enough
// to stay cache-resident.
const chunkBytes = 1 << 16

// F64s writes a uint64 count followed by the raw IEEE-754 bits of v,
// converted through a chunk buffer (these slices are the bulk of a
// snapshot; per-element writes would dominate the save).
func (w *Writer) F64s(v []float64) {
	w.U64(uint64(len(v)))
	if w.err != nil {
		return
	}
	var chunk [chunkBytes]byte
	for len(v) > 0 {
		n := min(len(v), chunkBytes/8)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(chunk[i*8:], math.Float64bits(v[i]))
		}
		w.Raw(chunk[:n*8])
		if w.err != nil {
			return
		}
		v = v[n:]
	}
}

// I32s writes a uint64 count followed by the elements of v as uint32
// bit patterns (two's complement survives the round trip).
func (w *Writer) I32s(v []int32) {
	w.U64(uint64(len(v)))
	if w.err != nil {
		return
	}
	var chunk [chunkBytes]byte
	for len(v) > 0 {
		n := min(len(v), chunkBytes/4)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(chunk[i*4:], uint32(v[i]))
		}
		w.Raw(chunk[:n*4])
		if w.err != nil {
			return
		}
		v = v[n:]
	}
}

// Bools writes a uint64 count followed by one byte per element.
func (w *Writer) Bools(v []bool) {
	w.U64(uint64(len(v)))
	for _, b := range v {
		if w.err != nil {
			return
		}
		var by byte
		if b {
			by = 1
		}
		w.err = w.w.WriteByte(by)
	}
}

func (w *Writer) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// Reader consumes little-endian primitives with a byte budget. The
// budget is the number of bytes the input can still supply; every slice
// read checks its claimed size against it before allocating. A negative
// limit disables the budget (for streams of unknown size — callers then
// guard counts themselves).
type Reader struct {
	r         io.Reader
	remaining int64 // bytes the input may still yield; -1 = unbounded
	err       error
	buf       [8]byte
}

// NewReader returns a Reader over r that will refuse to read (or
// allocate for) more than limit bytes. Pass a negative limit for an
// unbounded stream.
func NewReader(r io.Reader, limit int64) *Reader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &Reader{r: br, remaining: limit}
}

// Err returns the latched error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the unread byte budget (-1 when unbounded). Codecs
// use it to reject payloads with trailing garbage.
func (r *Reader) Remaining() int64 { return r.remaining }

// fail latches err (first one wins).
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// take debits n bytes from the budget, latching ErrTruncated when the
// input cannot possibly supply them.
func (r *Reader) take(n int64) bool {
	if r.err != nil {
		return false
	}
	if r.remaining >= 0 {
		if n > r.remaining {
			r.fail(fmt.Errorf("%w: need %d bytes, %d remain", ErrTruncated, n, r.remaining))
			return false
		}
		r.remaining -= n
	}
	return true
}

// Raw reads exactly len(b) bytes into b.
func (r *Reader) Raw(b []byte) {
	if !r.take(int64(len(b))) {
		return
	}
	if _, err := io.ReadFull(r.r, b); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			err = fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		r.fail(err)
	}
}

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	r.Raw(r.buf[:4])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(r.buf[:4])
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	r.Raw(r.buf[:8])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:8])
}

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// String reads a uint32-length-prefixed string of at most maxLen bytes.
func (r *Reader) String(maxLen int) string {
	n := r.U32()
	if r.err != nil {
		return ""
	}
	if int64(n) > int64(maxLen) {
		r.fail(fmt.Errorf("binio: string of %d bytes exceeds limit %d", n, maxLen))
		return ""
	}
	b := make([]byte, n)
	r.Raw(b)
	if r.err != nil {
		return ""
	}
	return string(b)
}

// sliceCount reads a uint64 count for elements of elemSize bytes,
// validating it against the remaining budget before the caller
// allocates anything.
func (r *Reader) sliceCount(elemSize int64) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if n > math.MaxInt64/uint64(elemSize) {
		r.fail(fmt.Errorf("%w: slice count %d overflows", ErrTruncated, n))
		return 0
	}
	if r.remaining >= 0 && int64(n)*elemSize > r.remaining {
		r.fail(fmt.Errorf("%w: slice claims %d elements (%d bytes), %d bytes remain",
			ErrTruncated, n, int64(n)*elemSize, r.remaining))
		return 0
	}
	const maxSliceElems = 1 << 33 // unbounded-stream guard
	if r.remaining < 0 && n > maxSliceElems {
		r.fail(fmt.Errorf("binio: slice claims %d elements, limit %d", n, int64(maxSliceElems)))
		return 0
	}
	return int(n)
}

// F64s reads a count-prefixed float64 slice. Returns nil for count 0.
func (r *Reader) F64s() []float64 {
	n := r.sliceCount(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	var chunk [chunkBytes]byte
	for off := 0; off < n; {
		c := min(n-off, chunkBytes/8)
		r.Raw(chunk[:c*8])
		if r.err != nil {
			return nil
		}
		for i := 0; i < c; i++ {
			out[off+i] = math.Float64frombits(binary.LittleEndian.Uint64(chunk[i*8:]))
		}
		off += c
	}
	return out
}

// I32s reads a count-prefixed int32 slice. Returns nil for count 0.
func (r *Reader) I32s() []int32 {
	n := r.sliceCount(4)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, n)
	var chunk [chunkBytes]byte
	for off := 0; off < n; {
		c := min(n-off, chunkBytes/4)
		r.Raw(chunk[:c*4])
		if r.err != nil {
			return nil
		}
		for i := 0; i < c; i++ {
			out[off+i] = int32(binary.LittleEndian.Uint32(chunk[i*4:]))
		}
		off += c
	}
	return out
}

// Bools reads a count-prefixed bool slice (one byte per element; any
// non-zero byte is true). Returns nil for count 0.
func (r *Reader) Bools() []bool {
	n := r.sliceCount(1)
	if r.err != nil || n == 0 {
		return nil
	}
	raw := make([]byte, n)
	r.Raw(raw)
	if r.err != nil {
		return nil
	}
	out := make([]bool, n)
	for i, b := range raw {
		out[i] = b != 0
	}
	return out
}
