package store

import "sort"

// RowSet is an immutable set of row indices produced by the scan side of
// the read path (Scan, ScanRect, ScanRectWhere) and consumed by the
// projection side (Points, Gather). It has three representations, and
// the scan layer picks the cheapest one per result:
//
//   - a dense range [start, end), the zero-allocation spelling of "every
//     row" (and of any contiguous run): projections walk the column
//     arrays directly and no per-row index is ever materialized;
//   - a compressed bitmap (base-trimmed, one bit per row of the span),
//     for dense-but-not-contiguous results such as selective attribute
//     filters over the whole extent — above 1/64 occupancy it undercuts
//     the id list, and Intersect/Union degrade to word-wise AND/OR;
//   - an explicit list of row indices, sorted ascending, for sparse
//     results such as viewport scans.
//
// Replacing raw []int with RowSet removes the old nil-means-all-rows
// ambiguity: an empty RowSet selects nothing, All selects everything,
// and both say so explicitly.
//
// The zero RowSet is the empty set. RowSet values are immutable and safe
// to share across goroutines.
type RowSet struct {
	// ids holds the explicit sorted row indices. When nil, the set is
	// the bitmap bm (if non-nil) or the dense range [start, end).
	ids        []int
	bm         *rowBitmap
	start, end int
	// all marks the All sentinel: "every row of whatever snapshot the
	// consuming operator reads".
	all bool
}

// All selects every row of whatever table snapshot the consuming
// operator (Points, Gather) reads — the zero-allocation spelling of "no
// restriction". Unlike a dense range built from an earlier NumRows
// call, All stays exact when a reload lands between the calls: each
// operator resolves it against its own snapshot, so a full-extent read
// can never go out of range. All has no standalone extent; Len and
// AsRange report the empty set until a table operator resolves it.
var All = RowSet{all: true}

// IsAll reports whether the set is the All sentinel.
func (s RowSet) IsAll() bool { return s.all }

// bitmapMinRows is the result size below which the bitmap representation
// is never chosen: a handful of ids costs less than any word array.
const bitmapMinRows = 128

// RowRange returns the dense RowSet [start, end). Bounds are normalized:
// a negative start is clamped to 0 and an end below start yields the
// empty set.
func RowRange(start, end int) RowSet {
	if start < 0 {
		start = 0
	}
	if end < start {
		end = start
	}
	return RowSet{start: start, end: end}
}

// RowIndices returns the RowSet holding exactly ids. The slice is
// retained (not copied); callers must not modify it afterwards. Indices
// are sorted ascending if they are not already.
func RowIndices(ids []int) RowSet {
	if len(ids) == 0 {
		return RowSet{}
	}
	if !sort.IntsAreSorted(ids) {
		sort.Ints(ids)
	}
	return RowSet{ids: ids, end: -1}
}

// rowSetFromSorted wraps ids already known to be sorted ascending and
// duplicate-free (the scan paths produce exactly that) in the cheapest
// representation: a contiguous run becomes a dense range (so a probe
// that happens to select everything costs nothing downstream), a result
// denser than 1/64 of its span becomes a bitmap, everything else keeps
// the id list as-is.
func rowSetFromSorted(ids []int) RowSet {
	n := len(ids)
	if n == 0 {
		return RowSet{}
	}
	span := ids[n-1] - ids[0] + 1
	if span == n {
		return RowRange(ids[0], ids[0]+n)
	}
	if n >= bitmapMinRows && span < n*64 {
		return RowSet{bm: bitmapFromSorted(ids), end: -1}
	}
	return RowSet{ids: ids, end: -1}
}

// Len returns the number of rows in the set.
func (s RowSet) Len() int {
	if s.ids != nil {
		return len(s.ids)
	}
	if s.bm != nil {
		return s.bm.count
	}
	return s.end - s.start
}

// IsEmpty reports whether the set selects no rows.
func (s RowSet) IsEmpty() bool { return s.Len() == 0 }

// AsRange reports the dense range [start, end) when the set has the
// dense representation. ok is false for bitmaps and explicit id lists.
func (s RowSet) AsRange() (start, end int, ok bool) {
	if s.ids != nil || s.bm != nil {
		return 0, 0, false
	}
	return s.start, s.end, true
}

// ForEach calls f for every row in ascending order.
func (s RowSet) ForEach(f func(row int)) {
	if s.ids != nil {
		for _, r := range s.ids {
			f(r)
		}
		return
	}
	if s.bm != nil {
		s.bm.forEach(f)
		return
	}
	for r := s.start; r < s.end; r++ {
		f(r)
	}
}

// Indices materializes the set as a sorted slice of row indices. The
// dense and bitmap representations allocate; the explicit representation
// returns a copy so callers cannot alias the set's storage.
func (s RowSet) Indices() []int {
	out := make([]int, 0, s.Len())
	if s.ids != nil {
		return append(out, s.ids...)
	}
	if s.bm != nil {
		s.bm.forEach(func(r int) { out = append(out, r) })
		return out
	}
	for r := s.start; r < s.end; r++ {
		out = append(out, r)
	}
	return out
}

// Contains reports whether row is in the set. O(1) for ranges, bitmaps
// and All; O(log n) for explicit id lists.
func (s RowSet) Contains(row int) bool {
	if s.all {
		return true
	}
	if s.ids != nil {
		i := sort.SearchInts(s.ids, row)
		return i < len(s.ids) && s.ids[i] == row
	}
	if s.bm != nil {
		return s.bm.contains(row)
	}
	return row >= s.start && row < s.end
}

// Min returns the smallest row in the set; ok is false when empty.
func (s RowSet) Min() (row int, ok bool) {
	if s.IsEmpty() {
		return 0, false
	}
	if s.ids != nil {
		return s.ids[0], true
	}
	if s.bm != nil {
		return s.bm.min(), true
	}
	return s.start, true
}

// Max returns the largest row in the set; ok is false when empty.
func (s RowSet) Max() (row int, ok bool) {
	if s.IsEmpty() {
		return 0, false
	}
	if s.ids != nil {
		return s.ids[len(s.ids)-1], true
	}
	if s.bm != nil {
		return s.bm.max(), true
	}
	return s.end - 1, true
}

// Intersect returns the set of rows in both s and t, in the cheapest
// representation for the result. All is the identity: All ∩ t = t. Two
// bitmaps intersect word-wise; otherwise the smaller side is iterated
// and probed against the larger.
func (s RowSet) Intersect(t RowSet) RowSet {
	if s.all {
		return t
	}
	if t.all {
		return s
	}
	if s.IsEmpty() || t.IsEmpty() {
		return RowSet{}
	}
	if as, ae, ok := s.AsRange(); ok {
		if bs, be, ok := t.AsRange(); ok {
			return RowRange(max(as, bs), min(ae, be))
		}
	}
	if s.bm != nil && t.bm != nil {
		return intersectBitmaps(s.bm, t.bm)
	}
	small, big := s, t
	if big.Len() < small.Len() {
		small, big = big, small
	}
	var ids []int
	small.ForEach(func(r int) {
		if big.Contains(r) && (len(ids) == 0 || ids[len(ids)-1] != r) {
			ids = append(ids, r)
		}
	})
	return rowSetFromSorted(ids)
}

// Subtract returns the set of rows in s but not in t — the
// intersect-with-complement the tombstone read path is built on. Two
// word-aligned representations subtract word-wise (AND-NOT); a dense
// range minus a range splits into at most two runs; everything else
// falls back to iterating s and probing t. All absorbs on the right
// (s − All = ∅). All on the left is returned unchanged when t is
// empty; operators resolve All against their own snapshot before any
// subtraction, so a non-empty t never meets an unresolved All here.
func (s RowSet) Subtract(t RowSet) RowSet {
	if t.all {
		return RowSet{}
	}
	if s.all || s.IsEmpty() || t.IsEmpty() {
		return s
	}
	if t.bm != nil {
		return s.subtractBitmap(t.bm)
	}
	if ts, te, ok := t.AsRange(); ok {
		sMin, _ := s.Min()
		sMax, _ := s.Max()
		if te <= sMin || ts > sMax {
			return s
		}
		lo := s.Intersect(RowRange(sMin, ts))
		hi := s.Intersect(RowRange(te, sMax+1))
		return lo.Union(hi)
	}
	// t is an explicit id list. When its span is bitmap-friendly, route
	// through the word-wise path; otherwise probe per row.
	tMin, _ := t.Min()
	tMax, _ := t.Max()
	if tMax-tMin+1 <= len(t.ids)*64 {
		return s.subtractBitmap(bitmapFromSorted(t.ids))
	}
	ids := make([]int, 0, s.Len())
	s.ForEach(func(r int) {
		if !t.Contains(r) {
			ids = append(ids, r)
		}
	})
	return rowSetFromSorted(ids)
}

// subtractBitmap removes the rows set in dead from s. It is the
// tombstone refine pass: dense ranges and bitmaps subtract word-wise,
// id lists compact through filterDeadInts on a copy. A nil or empty
// dead set returns s unchanged with no allocation.
func (s RowSet) subtractBitmap(dead *rowBitmap) RowSet {
	if dead == nil || dead.count == 0 || s.IsEmpty() {
		return s
	}
	if s.all {
		return s
	}
	if s.ids != nil {
		// Copy-on-write: the RowSet is immutable, so compact a copy —
		// but only once a dead row actually intersects the list.
		for i, r := range s.ids {
			if dead.contains(r) {
				out := make([]int, i, len(s.ids))
				copy(out, s.ids[:i])
				for _, r := range s.ids[i:] {
					if !dead.contains(r) {
						out = append(out, r)
					}
				}
				return rowSetFromSorted(out)
			}
		}
		return s
	}
	if s.bm != nil {
		lo := max(s.bm.base, dead.base)
		hi := min(s.bm.base+len(s.bm.words)<<6, dead.base+len(dead.words)<<6)
		if lo >= hi {
			return s
		}
		removed := 0
		so, do := (lo-s.bm.base)>>6, (lo-dead.base)>>6
		nw := (hi - lo) >> 6
		for i := 0; i < nw; i++ {
			removed += popcount64(s.bm.words[so+i] & dead.words[do+i])
		}
		if removed == 0 {
			return s
		}
		words := make([]uint64, len(s.bm.words))
		copy(words, s.bm.words)
		for i := 0; i < nw; i++ {
			words[so+i] &^= dead.words[do+i]
		}
		return normalizeBitmap(&rowBitmap{base: s.bm.base, words: words, count: s.bm.count - removed})
	}
	return rangeMinusBitmap(s.start, s.end, dead)
}

// rangeCovers reports (r, true) when r has the dense-range
// representation and other's rows all fall inside it.
func rangeCovers(r, other RowSet) (RowSet, bool) {
	start, end, ok := r.AsRange()
	if !ok {
		return RowSet{}, false
	}
	lo, _ := other.Min()
	hi, _ := other.Max()
	if lo >= start && hi < end {
		return r, true
	}
	return RowSet{}, false
}

// Union returns the set of rows in either s or t, in the cheapest
// representation for the result. All absorbs: All ∪ t = All. Two
// bitmaps union word-wise; otherwise the sorted id streams are merged
// (duplicates collapse, so the result is a set even if an input carried
// repeated ids).
func (s RowSet) Union(t RowSet) RowSet {
	if s.all || t.all {
		return All
	}
	if s.IsEmpty() {
		return t
	}
	if t.IsEmpty() {
		return s
	}
	if as, ae, ok := s.AsRange(); ok {
		if bs, be, ok := t.AsRange(); ok && as <= be && bs <= ae {
			return RowRange(min(as, bs), max(ae, be))
		}
	}
	// A range that already covers the other operand is the union; check
	// both sides, or a huge covering range on either side would be
	// materialized id by id below.
	if covered, ok := rangeCovers(s, t); ok {
		return covered
	}
	if covered, ok := rangeCovers(t, s); ok {
		return covered
	}
	// A non-covering range operand: OR it into a fresh bitmap word-wise
	// instead of materializing the range id by id (a 10M-row range is
	// ~150 KB of words vs 80 MB of ids).
	if start, end, ok := s.AsRange(); ok {
		if u, ok := unionRangeBitmap(start, end, t); ok {
			return u
		}
	}
	if start, end, ok := t.AsRange(); ok {
		if u, ok := unionRangeBitmap(start, end, s); ok {
			return u
		}
	}
	// Word-wise OR only when the combined span is dense enough to be
	// worth a word array: two locally dense bitmaps far apart would
	// allocate the whole gap only for normalizeBitmap to discard it.
	if s.bm != nil && t.bm != nil {
		lo := min(s.bm.base, t.bm.base)
		hi := max(s.bm.base+len(s.bm.words)<<6, t.bm.base+len(t.bm.words)<<6)
		if hi-lo <= (s.bm.count+t.bm.count)*64 {
			return unionBitmaps(s.bm, t.bm)
		}
	}
	a, b := s.Indices(), t.Indices()
	ids := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var next int
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			next = a[i]
			i++
		case i >= len(a) || b[j] < a[i]:
			next = b[j]
			j++
		default: // equal
			next = a[i]
			i++
			j++
		}
		if len(ids) == 0 || ids[len(ids)-1] != next {
			ids = append(ids, next)
		}
	}
	return rowSetFromSorted(ids)
}
