package store

import "sort"

// RowSet is an immutable set of row indices produced by the scan side of
// the read path (Scan, ScanRect, AllRows) and consumed by the projection
// side (Points, Gather). It has two representations:
//
//   - a dense range [start, end), the zero-allocation spelling of "every
//     row" (and of any contiguous run): projections walk the column
//     arrays directly and no per-row index is ever materialized;
//   - an explicit list of row indices, sorted ascending, for sparse
//     results such as viewport scans.
//
// Replacing raw []int with RowSet removes the old nil-means-all-rows
// ambiguity: an empty RowSet selects nothing, AllRows selects everything,
// and both say so explicitly.
//
// The zero RowSet is the empty set. RowSet values are immutable and safe
// to share across goroutines.
type RowSet struct {
	// ids holds the explicit sorted row indices; nil means the set is
	// the dense range [start, end).
	ids        []int
	start, end int
	// all marks the All sentinel: "every row of whatever snapshot the
	// consuming operator reads".
	all bool
}

// All selects every row of whatever table snapshot the consuming
// operator (Points, Gather) reads — the zero-allocation spelling of "no
// restriction". Unlike a dense range built from an earlier NumRows
// call, All stays exact when a reload lands between the calls: each
// operator resolves it against its own snapshot, so a full-extent read
// can never go out of range. All has no standalone extent; Len and
// AsRange report the empty set until a table operator resolves it.
var All = RowSet{all: true}

// IsAll reports whether the set is the All sentinel.
func (s RowSet) IsAll() bool { return s.all }

// RowRange returns the dense RowSet [start, end). Bounds are normalized:
// a negative start is clamped to 0 and an end below start yields the
// empty set.
func RowRange(start, end int) RowSet {
	if start < 0 {
		start = 0
	}
	if end < start {
		end = start
	}
	return RowSet{start: start, end: end}
}

// RowIndices returns the RowSet holding exactly ids. The slice is
// retained (not copied); callers must not modify it afterwards. Indices
// are sorted ascending if they are not already.
func RowIndices(ids []int) RowSet {
	if len(ids) == 0 {
		return RowSet{}
	}
	if !sort.IntsAreSorted(ids) {
		sort.Ints(ids)
	}
	return RowSet{ids: ids, end: -1}
}

// rowSetFromSorted wraps ids already known to be sorted ascending,
// skipping the defensive check on the scan hot path.
func rowSetFromSorted(ids []int) RowSet {
	if len(ids) == 0 {
		return RowSet{}
	}
	return RowSet{ids: ids, end: -1}
}

// Len returns the number of rows in the set.
func (s RowSet) Len() int {
	if s.ids != nil {
		return len(s.ids)
	}
	return s.end - s.start
}

// IsEmpty reports whether the set selects no rows.
func (s RowSet) IsEmpty() bool { return s.Len() == 0 }

// AsRange reports the dense range [start, end) when the set has the
// dense representation. ok is false for explicit index lists.
func (s RowSet) AsRange() (start, end int, ok bool) {
	if s.ids != nil {
		return 0, 0, false
	}
	return s.start, s.end, true
}

// ForEach calls f for every row in ascending order.
func (s RowSet) ForEach(f func(row int)) {
	if s.ids != nil {
		for _, r := range s.ids {
			f(r)
		}
		return
	}
	for r := s.start; r < s.end; r++ {
		f(r)
	}
}

// Indices materializes the set as a sorted slice of row indices. The
// dense representation allocates; the explicit representation returns a
// copy so callers cannot alias the set's storage.
func (s RowSet) Indices() []int {
	out := make([]int, 0, s.Len())
	if s.ids != nil {
		return append(out, s.ids...)
	}
	for r := s.start; r < s.end; r++ {
		out = append(out, r)
	}
	return out
}

// Min returns the smallest row in the set; ok is false when empty.
func (s RowSet) Min() (row int, ok bool) {
	if s.IsEmpty() {
		return 0, false
	}
	if s.ids != nil {
		return s.ids[0], true
	}
	return s.start, true
}

// Max returns the largest row in the set; ok is false when empty.
func (s RowSet) Max() (row int, ok bool) {
	if s.IsEmpty() {
		return 0, false
	}
	if s.ids != nil {
		return s.ids[len(s.ids)-1], true
	}
	return s.end - 1, true
}
