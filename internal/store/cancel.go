package store

import "context"

// cancelCheckMask gates how often a canceler actually polls its
// context: once per (mask+1) work-unit ticks. A work unit is one
// kernel block (scanBatchRows rows), one touched grid row, one tree
// node/leaf pop, or one delta bucket — so at the default a poll
// happens at most every ~64K rows of scan progress, cheap enough that
// the zero-alloc hot path is unaffected and frequent enough that a
// canceled 1M-row scan unwinds within a few milliseconds.
const cancelCheckMask = 15

// canceler is the cooperative-cancellation handle threaded through the
// scan and kNN internals. A nil *canceler (every context-free entry
// point, and contexts with no Done channel) makes every method a no-op
// compiled to a nil check — the hot path pays nothing. It is NOT safe
// for concurrent use: the tick counter is unsynchronized, so shard
// goroutines must fork() their own.
type canceler struct {
	ctx  context.Context
	n    uint
	seen bool
}

// newCanceler returns a canceler for ctx, or nil when ctx can never be
// canceled (no deadline, no cancel — e.g. context.Background), keeping
// the deadline-free path identical to the context-free one.
func newCanceler(ctx context.Context) *canceler {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return &canceler{ctx: ctx}
}

// stop reports whether the scan should unwind. Call once per work
// unit; most calls cost one increment and one mask test. Once the
// context fires, stop latches true so unwinding code never resumes
// work.
func (c *canceler) stop() bool {
	if c == nil {
		return false
	}
	if c.seen {
		return true
	}
	c.n++
	if c.n&cancelCheckMask != 0 {
		return false
	}
	if c.ctx.Err() != nil {
		c.seen = true
		return true
	}
	return false
}

// cause polls the context directly (no tick gating) and returns its
// error: context.Canceled or context.DeadlineExceeded once canceled,
// nil before. Callers use it at phase boundaries — after a probe,
// between rects — where an unconditional check is cheap, and to turn a
// partially-collected result into the error the caller returns.
func (c *canceler) cause() error {
	if c == nil {
		return nil
	}
	return c.ctx.Err()
}

// fork returns a canceler for a shard goroutine: same context, its own
// tick counter. A nil receiver forks to nil.
func (c *canceler) fork() *canceler {
	if c == nil {
		return nil
	}
	return &canceler{ctx: c.ctx}
}
