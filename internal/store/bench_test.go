package store

// Serving benchmarks for the read-path refactor (ISSUE 2 acceptance):
// viewport queries as index probes vs the pre-index linear baseline, the
// parallel sharded scan the exact path falls back to, and the
// zero-row-id-allocation full-extent projection. `make bench` runs these
// and writes BENCH_PR2.json.

import (
	"math"
	"math/rand"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/geom"
)

const benchRows = 1_000_000

// benchViewport covers 1% of the data extent (10% per axis).
var benchViewport = geom.Rect{MinX: 450, MinY: 450, MaxX: 550, MaxY: 550}

var benchPreds = []Pred{
	{Column: "x", Min: benchViewport.MinX, Max: benchViewport.MaxX},
	{Column: "y", Min: benchViewport.MinY, Max: benchViewport.MaxY},
}

func benchTable(b *testing.B, n int, indexed bool) *Table {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
		ys[i] = rng.Float64() * 1000
	}
	tb, err := NewTable("bench", "x", "y")
	if err != nil {
		b.Fatal(err)
	}
	if err := tb.BulkLoad(xs, ys); err != nil {
		b.Fatal(err)
	}
	if indexed {
		if err := tb.IndexOn("x", "y"); err != nil {
			b.Fatal(err)
		}
	}
	return tb
}

// BenchmarkQueryViewportIndexed is the refactored serving hot path: a 1%
// viewport over a 1M-row table answered as a grid-index probe, then
// projected to points.
func BenchmarkQueryViewportIndexed(b *testing.B) {
	tb := benchTable(b, benchRows, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := tb.ScanRect("x", "y", benchViewport)
		if err != nil {
			b.Fatal(err)
		}
		pts, err := tb.Points("x", "y", rows)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("empty viewport result")
		}
	}
}

// BenchmarkQueryViewportLinear is the pre-refactor baseline: the same
// viewport answered by a sequential full-table predicate scan that
// materializes row ids by appending, exactly what the old
// Table.Scan + Points path did.
func BenchmarkQueryViewportLinear(b *testing.B) {
	tb := benchTable(b, benchRows, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := tb.snapshot()
		cols := [][]float64{d.cols[0], d.cols[1]}
		rows := rowSetFromSorted(scanRange(cols, benchPreds, 0, d.n, nil, nil))
		pts, err := tb.Points("x", "y", rows)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("empty viewport result")
		}
	}
}

// BenchmarkExactScanParallel measures the sharded fallback scan the
// exact path and unindexed column pairs use: Table.Scan fans the
// predicate evaluation out across CPUs and concatenates shard results
// in row order.
func BenchmarkExactScanParallel(b *testing.B) {
	tb := benchTable(b, benchRows, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := tb.Scan(benchPreds)
		if err != nil {
			b.Fatal(err)
		}
		if rows.IsEmpty() {
			b.Fatal("empty scan result")
		}
	}
}

// ---- predicate pushdown (ISSUE 3 acceptance) ----

// benchFilteredTable is 1M rows with three attribute columns: m is
// spatially correlated (the realistic dashboard case — magnitude,
// altitude, timestamps of a moving object all correlate with position),
// t is independent noise (the zone maps' worst case), and c is a
// spatially striped category.
func benchFilteredTable(b *testing.B) *Table {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	n := benchRows
	xs := make([]float64, n)
	ys := make([]float64, n)
	ms := make([]float64, n)
	ts := make([]float64, n)
	cs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
		ys[i] = rng.Float64() * 1000
		ms[i] = (xs[i]+ys[i])/2 + rng.NormFloat64()*5
		ts[i] = rng.Float64() * 1000
		cs[i] = float64(int(xs[i]/100) % 10)
	}
	tb, err := NewTable("benchf", "x", "y", "m", "t", "c")
	if err != nil {
		b.Fatal(err)
	}
	if err := tb.BulkLoad(xs, ys, ms, ts, cs); err != nil {
		b.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		b.Fatal(err)
	}
	return tb
}

// benchFilterSets are the {0, 1, 3} residual predicate sets of the
// acceptance criterion. The single predicate is the selective one: m is
// centered near 500 inside the viewport, so a band at 520..540 keeps
// only a thin diagonal slice and zone maps can prune the rest.
var benchFilterSets = map[string][]Pred{
	"preds=0": nil,
	"preds=1": {{Column: "m", Min: 520, Max: 540}},
	"preds=3": {
		{Column: "m", Min: 520, Max: 540},
		{Column: "t", Min: 0, Max: 800},
		{Column: "c", Min: 4, Max: 5},
	},
}

// BenchmarkScanRectFiltered is the pushdown serving path: the 1%
// viewport of BenchmarkQueryViewportIndexed with residual predicates
// riding down into the index probe, where per-cell zone maps prune.
// prune_ratio reports pruned/touched cells.
func BenchmarkScanRectFiltered(b *testing.B) {
	tb := benchFilteredTable(b)
	for _, name := range []string{"preds=0", "preds=1", "preds=3"} {
		preds := benchFilterSets[name]
		b.Run(name, func(b *testing.B) {
			var touched, pruned int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, st, err := tb.ScanRectWhere("x", "y", benchViewport, preds)
				if err != nil {
					b.Fatal(err)
				}
				if rows.IsEmpty() {
					b.Fatal("empty filtered result")
				}
				touched += st.CellsTouched
				pruned += st.CellsPruned
			}
			if touched > 0 {
				b.ReportMetric(float64(pruned)/float64(touched), "prune_ratio")
			}
		})
	}
	benchResidualShapes(b, benchResidualTable(b))
}

// ---- batch kernels (ISSUE 7 acceptance) ----

// benchResidualTable is the residual-heavy worst case for the zone
// maps and the best case for batch kernels: attribute columns a, c, d
// are uniform noise uncorrelated with position (every cell's zone spans
// nearly the full value range, so zones never prune or settle and every
// predicate is evaluated per row), and positions are skewed — a uniform
// background plus a dense Gaussian cluster — so cell populations vary
// wildly and the probe-shard balancer has real work to do.
func benchResidualTable(b *testing.B) *Table {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	n := benchRows
	xs := make([]float64, n)
	ys := make([]float64, n)
	as := make([]float64, n)
	cs := make([]float64, n)
	ds := make([]float64, n)
	for i := range xs {
		if i%10 < 3 {
			xs[i] = math.Min(math.Max(500+rng.NormFloat64()*80, 0), 999.99)
			ys[i] = math.Min(math.Max(500+rng.NormFloat64()*80, 0), 999.99)
		} else {
			xs[i] = rng.Float64() * 1000
			ys[i] = rng.Float64() * 1000
		}
		as[i] = rng.Float64() * 1000
		cs[i] = rng.Float64() * 1000
		ds[i] = rng.Float64() * 1000
	}
	tb, err := NewTable("benchr", "x", "y", "a", "c", "d")
	if err != nil {
		b.Fatal(err)
	}
	if err := tb.BulkLoad(xs, ys, as, cs, ds); err != nil {
		b.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		b.Fatal(err)
	}
	return tb
}

// benchResidualViewport covers 64% of the extent: most touched cells
// are interior, so the spend is predicate evaluation, not the ring.
var benchResidualViewport = geom.Rect{MinX: 100, MinY: 100, MaxX: 900, MaxY: 900}

// benchResidualPreds sit near 30% selectivity each (a ~2.7% selective
// conjunction, the narrowing-filter dashboard case) — deep inside the
// band where the scalar loops' data-dependent branches mispredict
// constantly, and plain streaming throughput for the branch-free
// kernels.
var benchResidualPreds = []Pred{
	{Column: "a", Min: 200, Max: 500},
	{Column: "c", Min: 100, Max: 400},
	{Column: "d", Min: 300, Max: 600},
}

// benchResidualShapes runs the residual-heavy shapes through the batch
// kernels and the preserved scalar reference (forceScalarKernels), and
// reports kernel_speedup = scalar ns/op ÷ batch ns/op — the PR's
// headline acceptance metric, measured in one process on one table.
//
// Two shapes:
//   - "residual": the 64% viewport probe. Cell runs gather attribute
//     values at spatially-binned (scattered) row ids, so both kernels
//     are partly memory-latency bound and the batch win is modest.
//   - "residual-zoomout": the fully zoomed-out viewport with the same
//     filters. The adaptive planner has proven the zones useless by
//     then and routes it to the sharded linear scan, where the kernels
//     stream columns sequentially — the branch-free win undiluted.
func benchResidualShapes(b *testing.B, tb *Table) {
	shapes := []struct {
		name string
		rect geom.Rect
	}{
		{"residual", benchResidualViewport},
		{"residual-zoomout", geom.Rect{}},
	}
	for _, shape := range shapes {
		for _, kernel := range []string{"batch", "scalar"} {
			b.Run(shape.name+"/kernel="+kernel, func(b *testing.B) {
				forceScalarKernels = kernel == "scalar"
				defer func() { forceScalarKernels = false }()
				// Let the adaptive zone planner converge before timing:
				// the uncorrelated columns earn a zone skip after the
				// first probes, and steady state is what serving sees.
				for i := 0; i < 2; i++ {
					if _, _, err := tb.ScanRectWhere("x", "y", shape.rect, benchResidualPreds); err != nil {
						b.Fatal(err)
					}
				}
				var touched, pruned, examined, batched int
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rows, st, err := tb.ScanRectWhere("x", "y", shape.rect, benchResidualPreds)
					if err != nil {
						b.Fatal(err)
					}
					if rows.IsEmpty() {
						b.Fatal("empty residual result")
					}
					touched += st.CellsTouched
					pruned += st.CellsPruned
					examined += st.RowsExamined
					batched += st.BatchedRows
				}
				b.StopTimer()
				if touched > 0 {
					b.ReportMetric(float64(pruned)/float64(touched), "prune_ratio")
				}
				if examined > 0 {
					b.ReportMetric(float64(batched)/float64(examined), "batched_frac")
				}
				if kernel == "batch" {
					// Same scan through the scalar loops, timed inline,
					// so the ratio lands in the committed bench JSON.
					const iters = 3
					forceScalarKernels = true
					start := time.Now()
					for i := 0; i < iters; i++ {
						if _, _, err := tb.ScanRectWhere("x", "y", shape.rect, benchResidualPreds); err != nil {
							b.Fatal(err)
						}
					}
					scalarPerOp := float64(time.Since(start).Nanoseconds()) / iters
					forceScalarKernels = false
					batchPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
					if batchPerOp > 0 {
						b.ReportMetric(scalarPerOp/batchPerOp, "kernel_speedup")
					}
				}
			})
		}
	}
}

// BenchmarkProbeParallelSweep sweeps GOMAXPROCS over the residual-heavy
// probe: the touched cells bound well past parallelScanMinRows, so
// collectCells fans out when workers allow. probe_shards records the
// average shard count actually run.
func BenchmarkProbeParallelSweep(b *testing.B) {
	tb := benchResidualTable(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(workers)
			defer runtime.GOMAXPROCS(prev)
			var shards int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, st, err := tb.ScanRectWhere("x", "y", benchResidualViewport, benchResidualPreds)
				if err != nil {
					b.Fatal(err)
				}
				if rows.IsEmpty() {
					b.Fatal("empty residual result")
				}
				shards += st.ProbeShards
			}
			b.ReportMetric(float64(shards)/float64(b.N), "probe_shards")
		})
	}
}

// BenchmarkScanLinearFiltered is the baseline the ≥3× acceptance
// criterion compares against: the same viewport+filter conjunctions
// answered by Table.Scan, the (parallel sharded) linear predicate scan.
func BenchmarkScanLinearFiltered(b *testing.B) {
	tb := benchFilteredTable(b)
	for _, name := range []string{"preds=0", "preds=1", "preds=3"} {
		preds := append([]Pred{
			{Column: "x", Min: benchViewport.MinX, Max: benchViewport.MaxX},
			{Column: "y", Min: benchViewport.MinY, Max: benchViewport.MaxY},
		}, benchFilterSets[name]...)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := tb.Scan(preds)
				if err != nil {
					b.Fatal(err)
				}
				if rows.IsEmpty() {
					b.Fatal("empty filtered result")
				}
			}
		})
	}
}

// ---- live ingest (ISSUE 5 acceptance) ----

// benchIngestTable builds the 1M-row filtered table and appends tail
// rows through the delta path. With stripDelta, the deltas are removed
// afterwards, recreating the seed-state behavior where every probe
// linearly re-walks the appended tail — the baseline the ≥10×
// acceptance criterion compares against.
func benchIngestTable(b *testing.B, tail int, stripDelta bool) *Table {
	b.Helper()
	tb := benchFilteredTable(b)
	if tail > 0 {
		rng := rand.New(rand.NewSource(7))
		xs := make([]float64, tail)
		ys := make([]float64, tail)
		ms := make([]float64, tail)
		ts := make([]float64, tail)
		cs := make([]float64, tail)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
			ys[i] = rng.Float64() * 1000
			ms[i] = (xs[i]+ys[i])/2 + rng.NormFloat64()*5
			ts[i] = rng.Float64() * 1000
			cs[i] = float64(int(xs[i]/100) % 10)
		}
		if err := tb.AppendRows(xs, ys, ms, ts, cs); err != nil {
			b.Fatal(err)
		}
	}
	if stripDelta {
		d := tb.snapshot()
		for _, ix := range d.indexes {
			switch cx := ix.(type) {
			case *rectIndex:
				cx.delta = nil
			case *treeIndex:
				cx.delta = nil
			}
		}
	}
	// Drop the garbage of earlier sub-benchmarks' tables before the
	// timed section: these benchmarks run late in the suite, and a GC
	// cycle scanning dead 1M-row tables mid-measurement distorts the
	// delta-vs-linear comparison.
	runtime.GC()
	return tb
}

var benchIngestPred = []Pred{{Column: "m", Min: 520, Max: 540}}

// BenchmarkScanAfterAppend is the live-ingest serving path: the 1%
// filtered viewport of BenchmarkScanRectFiltered with tail appended
// rows served out of delta buckets (binned, zone-pruned) instead of a
// linear tail walk. tail=0 is the fully-compacted reference the
// "within 2×" criterion compares against.
func BenchmarkScanAfterAppend(b *testing.B) {
	for _, tail := range []int{0, 10_000, 100_000} {
		b.Run(benchTailName(tail), func(b *testing.B) {
			tb := benchIngestTable(b, tail, false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, _, err := tb.ScanRectWhere("x", "y", benchViewport, benchIngestPred)
				if err != nil {
					b.Fatal(err)
				}
				if rows.IsEmpty() {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// BenchmarkScanAfterAppendLinearTail is the seed-state baseline: the
// same appended table with its deltas stripped, so every probe pays the
// pre-PR linear tail walk the ≥10× acceptance criterion measures
// against.
func BenchmarkScanAfterAppendLinearTail(b *testing.B) {
	for _, tail := range []int{10_000, 100_000} {
		b.Run(benchTailName(tail), func(b *testing.B) {
			tb := benchIngestTable(b, tail, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, _, err := tb.ScanRectWhere("x", "y", benchViewport, benchIngestPred)
				if err != nil {
					b.Fatal(err)
				}
				if rows.IsEmpty() {
					b.Fatal("empty result")
				}
			}
		})
	}
}

func benchTailName(tail int) string {
	switch {
	case tail == 0:
		return "tail=0"
	case tail%1000 == 0:
		return "tail=" + strconv.Itoa(tail/1000) + "k"
	default:
		return "tail=" + strconv.Itoa(tail)
	}
}

// BenchmarkAppendThroughput measures the ingest write path: per-row
// Append and 1k-row AppendRows batches into a 1M-row indexed table,
// every row absorbed into the delta index (cell binning + running zone
// maps) in the same critical section it becomes visible in.
func BenchmarkAppendThroughput(b *testing.B) {
	b.Run("row", func(b *testing.B) {
		tb := benchIngestTable(b, 0, false)
		rng := rand.New(rand.NewSource(9))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x, y := rng.Float64()*1000, rng.Float64()*1000
			if err := tb.Append(x, y, (x+y)/2, rng.Float64()*1000, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch=1k", func(b *testing.B) {
		tb := benchIngestTable(b, 0, false)
		rng := rand.New(rand.NewSource(9))
		const bn = 1000
		xs := make([]float64, bn)
		ys := make([]float64, bn)
		ms := make([]float64, bn)
		ts := make([]float64, bn)
		cs := make([]float64, bn)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
			ys[i] = rng.Float64() * 1000
			ms[i] = (xs[i] + ys[i]) / 2
			ts[i] = rng.Float64() * 1000
			cs[i] = 3
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tb.AppendRows(xs, ys, ms, ts, cs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(bn), "rows/op")
	})
}

// BenchmarkQueryFullExtentProjection is the allocs benchmark behind the
// "full extent performs zero row-id allocations" acceptance criterion:
// the All sentinel projects the whole table with a single allocation —
// the output slice — and allocs/op stays at 1 regardless of row count.
func BenchmarkQueryFullExtentProjection(b *testing.B) {
	tb := benchTable(b, benchRows, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := tb.Points("x", "y", All)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != benchRows {
			b.Fatalf("projected %d rows", len(pts))
		}
	}
}

// benchDeleteTable builds the retention bench fixture: 1M indexed rows
// with a filter column m and an independent uniform column used to
// tombstone an exact fraction of rows without correlating with either
// the viewport or the filter.
func benchDeleteTable(b *testing.B, deadFrac float64) *Table {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, benchRows)
	ys := make([]float64, benchRows)
	ms := make([]float64, benchRows)
	ds := make([]float64, benchRows)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
		ys[i] = rng.Float64() * 1000
		ms[i] = rng.Float64() * 100
		ds[i] = rng.Float64()
	}
	tb, err := NewTable("bench", "x", "y", "m", "del")
	if err != nil {
		b.Fatal(err)
	}
	if err := tb.BulkLoad(xs, ys, ms, ds); err != nil {
		b.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		b.Fatal(err)
	}
	if deadFrac > 0 {
		if _, err := tb.DeleteWhere([]Pred{{Column: "del", Min: 1 - deadFrac, Max: 2}}); err != nil {
			b.Fatal(err)
		}
	}
	return tb
}

func benchFilteredProbe(b *testing.B, tb *Table) {
	b.Helper()
	preds := []Pred{{Column: "m", Min: 25, Max: 75}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _, err := tb.ScanRectWhere("x", "y", benchViewport, preds)
		if err != nil {
			b.Fatal(err)
		}
		pts, err := tb.Points("x", "y", rows)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("empty probe result")
		}
	}
}

// BenchmarkScanAfterDelete is the ISSUE 8 acceptance benchmark: the
// filtered 1% viewport probe over 1M rows with 10% of the table
// tombstoned must stay within 1.5x of the no-tombstone probe, and after
// the reclaiming compaction the probe must be indistinguishable from a
// fresh build over just the survivors.
func BenchmarkScanAfterDelete(b *testing.B) {
	b.Run("baseline", func(b *testing.B) {
		benchFilteredProbe(b, benchDeleteTable(b, 0))
	})
	b.Run("tombstoned10pct", func(b *testing.B) {
		benchFilteredProbe(b, benchDeleteTable(b, 0.10))
	})
	b.Run("postCompaction", func(b *testing.B) {
		tb := benchDeleteTable(b, 0.10)
		tb.Compact() // physically reclaims the dead 10%
		if tb.NumRows() != tb.LiveRows() {
			b.Fatal("compaction left tombstones behind")
		}
		benchFilteredProbe(b, tb)
	})
}

// BenchmarkScanRectsUnion measures the multi-viewport query shape: two
// disjoint 1% viewports answered as one ScanRects union over the index.
func BenchmarkScanRectsUnion(b *testing.B) {
	tb := benchTable(b, benchRows, true)
	rects := []geom.Rect{
		{MinX: 150, MinY: 150, MaxX: 250, MaxY: 250},
		{MinX: 650, MinY: 650, MaxX: 750, MaxY: 750},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _, err := tb.ScanRects("x", "y", rects, nil)
		if err != nil {
			b.Fatal(err)
		}
		pts, err := tb.Points("x", "y", rows)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("empty union result")
		}
	}
}
