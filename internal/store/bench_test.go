package store

// Serving benchmarks for the read-path refactor (ISSUE 2 acceptance):
// viewport queries as index probes vs the pre-index linear baseline, the
// parallel sharded scan the exact path falls back to, and the
// zero-row-id-allocation full-extent projection. `make bench` runs these
// and writes BENCH_PR2.json.

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

const benchRows = 1_000_000

// benchViewport covers 1% of the data extent (10% per axis).
var benchViewport = geom.Rect{MinX: 450, MinY: 450, MaxX: 550, MaxY: 550}

var benchPreds = []Pred{
	{Column: "x", Min: benchViewport.MinX, Max: benchViewport.MaxX},
	{Column: "y", Min: benchViewport.MinY, Max: benchViewport.MaxY},
}

func benchTable(b *testing.B, n int, indexed bool) *Table {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
		ys[i] = rng.Float64() * 1000
	}
	tb, err := NewTable("bench", "x", "y")
	if err != nil {
		b.Fatal(err)
	}
	if err := tb.BulkLoad(xs, ys); err != nil {
		b.Fatal(err)
	}
	if indexed {
		if err := tb.IndexOn("x", "y"); err != nil {
			b.Fatal(err)
		}
	}
	return tb
}

// BenchmarkQueryViewportIndexed is the refactored serving hot path: a 1%
// viewport over a 1M-row table answered as a grid-index probe, then
// projected to points.
func BenchmarkQueryViewportIndexed(b *testing.B) {
	tb := benchTable(b, benchRows, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := tb.ScanRect("x", "y", benchViewport)
		if err != nil {
			b.Fatal(err)
		}
		pts, err := tb.Points("x", "y", rows)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("empty viewport result")
		}
	}
}

// BenchmarkQueryViewportLinear is the pre-refactor baseline: the same
// viewport answered by a sequential full-table predicate scan that
// materializes row ids by appending, exactly what the old
// Table.Scan + Points path did.
func BenchmarkQueryViewportLinear(b *testing.B) {
	tb := benchTable(b, benchRows, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := tb.snapshot()
		cols := [][]float64{d.cols[0], d.cols[1]}
		rows := rowSetFromSorted(scanRange(cols, benchPreds, 0, d.n, nil))
		pts, err := tb.Points("x", "y", rows)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("empty viewport result")
		}
	}
}

// BenchmarkExactScanParallel measures the sharded fallback scan the
// exact path and unindexed column pairs use: Table.Scan fans the
// predicate evaluation out across CPUs and concatenates shard results
// in row order.
func BenchmarkExactScanParallel(b *testing.B) {
	tb := benchTable(b, benchRows, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := tb.Scan(benchPreds)
		if err != nil {
			b.Fatal(err)
		}
		if rows.IsEmpty() {
			b.Fatal("empty scan result")
		}
	}
}

// BenchmarkQueryFullExtentProjection is the allocs benchmark behind the
// "full extent performs zero row-id allocations" acceptance criterion:
// the All sentinel projects the whole table with a single allocation —
// the output slice — and allocs/op stays at 1 regardless of row count.
func BenchmarkQueryFullExtentProjection(b *testing.B) {
	tb := benchTable(b, benchRows, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := tb.Points("x", "y", All)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != benchRows {
			b.Fatalf("projected %d rows", len(pts))
		}
	}
}
