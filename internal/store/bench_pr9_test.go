package store

// Skew and kNN benchmarks for the pluggable-backend work (ISSUE 9
// acceptance): the same clustered 1M-row table served by the grid and
// the STR R-tree under a 1% filtered viewport that clips the dense
// region — the shape the grid degrades on, because its fixed cells
// force a row-by-row sweep of the cluster — plus kNN latency through
// the tree's best-first descent vs the brute-force sweep grid-backed
// tables fall back to. `make bench` records these in BENCH_PR9.json.

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// benchSkewTable loads 1M rows where 90% form a tight Gaussian cluster
// (sigma 1 around (500, 500), a handful of grid cells — well under 1%
// of the ~15k cells the grid sizes itself to) and 10% scatter uniformly
// over [0, 1000)^2, plus a uniform filter column m in [0, 100).
func benchSkewTable(b *testing.B, backend string) *Table {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	n := benchRows
	xs := make([]float64, n)
	ys := make([]float64, n)
	ms := make([]float64, n)
	for i := range xs {
		if i%10 != 0 {
			xs[i] = 500 + rng.NormFloat64()
			ys[i] = 500 + rng.NormFloat64()
		} else {
			xs[i] = rng.Float64() * 1000
			ys[i] = rng.Float64() * 1000
		}
		ms[i] = rng.Float64() * 100
	}
	tb, err := NewTable("bench", "x", "y", "m")
	if err != nil {
		b.Fatal(err)
	}
	if err := tb.SetIndexBackend(backend); err != nil {
		b.Fatal(err)
	}
	if err := tb.BulkLoad(xs, ys, ms); err != nil {
		b.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		b.Fatal(err)
	}
	if got := tb.snapshot().indexFor(0, 1).backend(); got != backend {
		b.Fatalf("backend = %q, want %q", got, backend)
	}
	return tb
}

// benchSkewViewport is a 1% viewport (10% per axis) whose corner clips
// the dense cluster's grid cell: the grid must sweep the cluster's
// hundreds of thousands of co-celled rows to answer it, while the
// tree's data-adaptive leaves only visit rows near the boundary.
var benchSkewViewport = geom.Rect{MinX: 503, MinY: 503, MaxX: 603, MaxY: 603}

// benchSkewPreds pushes a 50% filter on m down into the same probe.
var benchSkewPreds = []Pred{{Column: "m", Min: 0, Max: 50}}

func benchSkewedViewport(b *testing.B, backend string) {
	tb := benchSkewTable(b, backend)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _, err := tb.ScanRectWhere("x", "y", benchSkewViewport, benchSkewPreds)
		if err != nil {
			b.Fatal(err)
		}
		if rows.Len() == 0 {
			b.Fatal("empty viewport result")
		}
	}
}

func BenchmarkSkewedViewportGrid(b *testing.B)  { benchSkewedViewport(b, BackendGrid) }
func BenchmarkSkewedViewportRTree(b *testing.B) { benchSkewedViewport(b, BackendRTree) }

func benchNearest(b *testing.B, backend string) {
	tb := benchSkewTable(b, backend)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ns, _, err := tb.Nearest("x", "y", 500.3, 500.3, 10, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(ns) != 10 {
			b.Fatalf("got %d neighbors", len(ns))
		}
	}
}

// BenchmarkNearestRTree answers k=10 through the tree's best-first
// branch-and-bound descent; BenchmarkNearestGridFallback is the same
// query on the grid backend, which has no kNN path and sweeps every
// row.
func BenchmarkNearestRTree(b *testing.B)        { benchNearest(b, BackendRTree) }
func BenchmarkNearestGridFallback(b *testing.B) { benchNearest(b, BackendGrid) }
