package store

import "math/bits"

// rowBitmap is the third RowSet representation: one bit per row over the
// base-trimmed span [base, base+64·len(words)). It is the cheap spelling
// of a dense-but-not-contiguous result (an attribute filter that keeps
// every other row, say): above 1/64 occupancy the bitmap undercuts the
// explicit id list by construction, and set algebra over two bitmaps is
// word-wise AND/OR instead of per-row merging. base is 64-aligned so two
// bitmaps always share word boundaries. count caches the popcount;
// representations are immutable after construction, so it never goes
// stale.
type rowBitmap struct {
	base  int
	words []uint64
	count int
}

// bitmapFromSorted packs sorted, duplicate-free ids into a bitmap.
func bitmapFromSorted(ids []int) *rowBitmap {
	if len(ids) == 0 {
		return &rowBitmap{}
	}
	base := ids[0] &^ 63
	span := ids[len(ids)-1] - base + 1
	words := make([]uint64, (span+63)/64)
	for _, id := range ids {
		words[(id-base)>>6] |= 1 << (uint(id-base) & 63)
	}
	return &rowBitmap{base: base, words: words, count: len(ids)}
}

func (b *rowBitmap) contains(row int) bool {
	i := row - b.base
	if i < 0 || i >= len(b.words)<<6 {
		return false
	}
	return b.words[i>>6]>>(uint(i)&63)&1 == 1
}

// forEach visits the set rows in ascending order.
func (b *rowBitmap) forEach(f func(row int)) {
	for wi, w := range b.words {
		for w != 0 {
			f(b.base + wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

func (b *rowBitmap) min() int {
	for wi, w := range b.words {
		if w != 0 {
			return b.base + wi<<6 + bits.TrailingZeros64(w)
		}
	}
	return 0
}

func (b *rowBitmap) max() int {
	for wi := len(b.words) - 1; wi >= 0; wi-- {
		if w := b.words[wi]; w != 0 {
			return b.base + wi<<6 + 63 - bits.LeadingZeros64(w)
		}
	}
	return 0
}

// normalizeBitmap re-wraps an algebra result in the cheapest
// representation: contiguous runs become dense ranges, sparse results
// fall back to explicit ids, and anything else keeps the bitmap (with
// dead leading/trailing words trimmed so the span reflects the content).
func normalizeBitmap(b *rowBitmap) RowSet {
	if b.count == 0 {
		return RowSet{}
	}
	lo, hi := b.min(), b.max()
	if hi-lo+1 == b.count {
		return RowRange(lo, hi+1)
	}
	if b.count < bitmapMinRows || (hi-lo+1) >= b.count*64 {
		ids := make([]int, 0, b.count)
		b.forEach(func(row int) { ids = append(ids, row) })
		return RowSet{ids: ids, end: -1}
	}
	first, last := (lo-b.base)>>6, (hi-b.base)>>6
	if first > 0 || last < len(b.words)-1 {
		b = &rowBitmap{base: b.base + first<<6, words: b.words[first : last+1], count: b.count}
	}
	return RowSet{bm: b, end: -1}
}

// intersectBitmaps ANDs two bitmaps word-wise over their overlapping
// span. Bases are 64-aligned, so the overlap is word-aligned in both.
func intersectBitmaps(a, b *rowBitmap) RowSet {
	lo := max(a.base, b.base)
	hi := min(a.base+len(a.words)<<6, b.base+len(b.words)<<6)
	if lo >= hi {
		return RowSet{}
	}
	words := make([]uint64, (hi-lo)>>6)
	count := 0
	ao, bo := (lo-a.base)>>6, (lo-b.base)>>6
	for i := range words {
		w := a.words[ao+i] & b.words[bo+i]
		words[i] = w
		count += bits.OnesCount64(w)
	}
	return normalizeBitmap(&rowBitmap{base: lo, words: words, count: count})
}

// unionRangeBitmap unions the non-empty dense range [start, end) with
// the non-empty set other by setting both into one word array — O(span)
// bits rather than O(span) ids. ok is false when the combined span is
// too sparse for a bitmap to be the economical intermediate (a faraway
// outlier id next to a small range), in which case the caller falls
// back to the id merge.
func unionRangeBitmap(start, end int, other RowSet) (RowSet, bool) {
	oLo, _ := other.Min()
	oHi, _ := other.Max()
	lo := min(start, oLo) &^ 63
	hi := max(end, oHi+1)
	if hi-lo > (end-start+other.Len())*64 {
		return RowSet{}, false
	}
	words := make([]uint64, (hi-lo+63)>>6)
	w0, b0 := (start-lo)>>6, uint(start-lo)&63
	w1, b1 := (end-1-lo)>>6, uint(end-1-lo)&63
	if w0 == w1 {
		words[w0] = (^uint64(0) >> (63 - b1)) & (^uint64(0) << b0)
	} else {
		words[w0] = ^uint64(0) << b0
		for w := w0 + 1; w < w1; w++ {
			words[w] = ^uint64(0)
		}
		words[w1] = ^uint64(0) >> (63 - b1)
	}
	other.ForEach(func(row int) {
		words[(row-lo)>>6] |= 1 << (uint(row-lo) & 63)
	})
	count := 0
	for _, w := range words {
		count += bits.OnesCount64(w)
	}
	return normalizeBitmap(&rowBitmap{base: lo, words: words, count: count}), true
}

// popcount64 is a local alias so rowset.go's algebra can count bits
// without importing math/bits twice.
func popcount64(w uint64) int { return bits.OnesCount64(w) }

// rangeMinusBitmap subtracts the dead bitmap from the dense range
// [start, end) — the tombstone fast path for "all rows" results. When
// no dead bit falls inside the range it returns the range itself with
// no allocation; otherwise it materializes the surviving bits word-wise
// and normalizes.
func rangeMinusBitmap(start, end int, dead *rowBitmap) RowSet {
	if end <= start {
		return RowSet{}
	}
	if dead == nil || dead.count == 0 {
		return RowRange(start, end)
	}
	lo := max(start, dead.base)
	hi := min(end, dead.base+len(dead.words)<<6)
	overlap := 0
	for r := lo &^ 63; r < hi; r += 64 {
		w := dead.words[(r-dead.base)>>6]
		// Mask the word down to [start, end).
		if r < start {
			w &= ^uint64(0) << (uint(start-r) & 63)
		}
		if r+64 > end {
			w &= ^uint64(0) >> (uint(r+64-end) & 63)
		}
		overlap += bits.OnesCount64(w)
	}
	if overlap == 0 {
		return RowRange(start, end)
	}
	base := start &^ 63
	words := make([]uint64, (end-base+63)>>6)
	w0, b0 := (start-base)>>6, uint(start-base)&63
	w1, b1 := (end-1-base)>>6, uint(end-1-base)&63
	if w0 == w1 {
		words[w0] = (^uint64(0) >> (63 - b1)) & (^uint64(0) << b0)
	} else {
		words[w0] = ^uint64(0) << b0
		for w := w0 + 1; w < w1; w++ {
			words[w] = ^uint64(0)
		}
		words[w1] = ^uint64(0) >> (63 - b1)
	}
	do := (base - dead.base) >> 6
	for i := range words {
		di := do + i
		if di >= 0 && di < len(dead.words) {
			words[i] &^= dead.words[di]
		}
	}
	count := 0
	for _, w := range words {
		count += bits.OnesCount64(w)
	}
	return normalizeBitmap(&rowBitmap{base: base, words: words, count: count})
}

// orBitmapRows returns a copy of old (nil meaning empty) with ids set,
// plus how many of the ids were newly set. It is the tombstone-set
// copy-on-write constructor: bitmaps published in a tableData are
// immutable, so DeleteWhere builds a fresh one per publish. The result
// is always base-0 so the read path can index it by raw row id.
func orBitmapRows(old *rowBitmap, ids []int) (*rowBitmap, int) {
	if len(ids) == 0 {
		return old, 0
	}
	span := ids[len(ids)-1] + 1
	nw := (span + 63) >> 6
	if old != nil && old.base == 0 && len(old.words) > nw {
		nw = len(old.words)
	}
	words := make([]uint64, nw)
	count := 0
	if old != nil {
		// old.base is 0 for every bitmap this constructor ever built;
		// fold a trimmed bitmap back to base 0 just in case.
		o := old.base >> 6
		copy(words[o:], old.words)
		count = old.count
	}
	added := 0
	for _, id := range ids {
		wi, bit := id>>6, uint64(1)<<(uint(id)&63)
		if words[wi]&bit == 0 {
			words[wi] |= bit
			added++
		}
	}
	return &rowBitmap{base: 0, words: words, count: count + added}, added
}

// unionBitmaps ORs two bitmaps word-wise over their combined span.
func unionBitmaps(a, b *rowBitmap) RowSet {
	lo := min(a.base, b.base)
	hi := max(a.base+len(a.words)<<6, b.base+len(b.words)<<6)
	words := make([]uint64, (hi-lo)>>6)
	count := 0
	copyIn := func(m *rowBitmap) {
		o := (m.base - lo) >> 6
		for i, w := range m.words {
			words[o+i] |= w
		}
	}
	copyIn(a)
	copyIn(b)
	for _, w := range words {
		count += bits.OnesCount64(w)
	}
	return normalizeBitmap(&rowBitmap{base: lo, words: words, count: count})
}
