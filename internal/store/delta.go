package store

import (
	"math"
	"slices"
	"sort"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
)

// This file is the live-ingest side of the spatial index: a mutable
// delta index that absorbs appended rows as they arrive, and the
// background compaction that periodically folds the delta back into a
// fresh immutable generation.
//
// The base CSR index (index.go) is immutable by design — it is built
// against one generation of column storage and published atomically
// with it. Before deltas, every Append therefore landed in an unindexed
// linear tail that each probe re-walked until the next full rebuild:
// under steady ingest the read path degraded back toward the linear
// baseline. The delta index closes that gap without giving up the
// immutable-generation read model:
//
//   - geometry is shared with the base index (same bounds, same grid),
//     so a probe's cell range addresses base cells and delta buckets
//     with one computation;
//   - appended rows are binned into per-cell append-only buckets, with
//     running per-(column, cell) zone maps maintained in the same
//     critical section, so filtered probes prune delta cells exactly
//     like base cells;
//   - readers never lock the table: they take the delta's read lock,
//     and snapshot consistency falls out of row-id monotonicity — a
//     reader holding a generation with n rows ignores every delta row
//     id >= n, so rows appended after its snapshot are invisible to it.
//     Delta zone maps may cover rows past the reader's snapshot; that
//     only widens them, which makes pruning and bulk-passing strictly
//     more conservative, never wrong.
//
// Points appended outside the base grid's bounds clamp into edge cells,
// mirroring how probe rectangles clamp (both are monotonic in the
// coordinate), so a probe's clamped cell range always covers the
// clamped cells of every matching row; the per-row rectangle test keeps
// the answer exact.

// compactMinRows is the smallest delta (in rows) that can trigger an
// automatic compaction; below it the rebuild costs more than the tail
// it absorbs ever will.
const compactMinRows = 256

// deltaIndex accumulates rows appended after base was built. Guarded by
// its own RWMutex: writers (Append/AppendRows, under the table write
// lock) take the write lock per batch; probes take the read lock and
// never touch the table lock, so ingest and serving contend only here
// and only briefly.
type deltaIndex struct {
	mu    sync.RWMutex
	base  *gridGeom // immutable geometry donor; covers rows [0, base.n)
	ncols int
	rows  int // absorbed rows: ids [base.n, base.n+rows)
	// saturated stops absorption permanently when a row id cannot be
	// represented (or arrives out of order, which cannot happen under
	// the table lock but is cheap to guard); rows past the watermark
	// fall back to the caller's linear tail filter.
	saturated bool
	// buckets holds, per base-grid cell, the ascending row ids binned
	// there; allocated on first absorbed row. Ids index the table's
	// column generation directly — the append-only columns are the one
	// shared absorbed-row arena, so tables with several indexed (x, y)
	// pairs no longer duplicate coordinates inline in every index's
	// delta (the old deltaEntry carried 24 bytes per row per index).
	// The absorbed tail occupies the end of each column array, a region
	// small enough to stay cache-resident, and the batch kernels gather
	// from it a column at a time. When the base index has no grid (it
	// was built over zero rows), every row lands in extra.
	buckets [][]int32
	// extra holds rows with a non-finite coordinate (and every row when
	// there is no grid), ascending; filtered per probe like base extras.
	extra []int32
	// Running zone maps over the delta, laid out like the base's:
	// [col·cells + cell]. Only meaningful for cells with a non-empty
	// bucket.
	zmin, zmax []float64
	znan       []bool
}

func newDeltaIndex(base *gridGeom, ncols int) *deltaIndex {
	return &deltaIndex{base: base, ncols: ncols}
}

// coveredRows returns how many appended rows the delta has absorbed.
func (dx *deltaIndex) coveredRows() int {
	dx.mu.RLock()
	defer dx.mu.RUnlock()
	return dx.rows
}

// absorbRange bins rows [lo, hi) of cols into the delta. Callers hold
// the table write lock, so lo always equals the current watermark; the
// guard only trips on unrepresentable ids.
func (dx *deltaIndex) absorbRange(cols [][]float64, lo, hi int) {
	if hi <= lo {
		return
	}
	dx.mu.Lock()
	defer dx.mu.Unlock()
	cells := dx.base.nx * dx.base.ny
	for row := lo; row < hi; row++ {
		// row must stay strictly below MaxInt32: the watermark
		// baseN+rows is converted to an int32 limit by collect, so
		// absorbing id MaxInt32 itself would overflow it.
		if dx.saturated || row != dx.base.n+dx.rows || row >= math.MaxInt32 {
			dx.saturated = true
			return
		}
		x, y := cols[dx.base.xi][row], cols[dx.base.yi][row]
		if cells == 0 || !isFinite(x) || !isFinite(y) {
			dx.extra = append(dx.extra, int32(row))
			dx.rows++
			continue
		}
		if dx.buckets == nil {
			dx.buckets = make([][]int32, cells)
			dx.zmin = make([]float64, dx.ncols*cells)
			dx.zmax = make([]float64, dx.ncols*cells)
			dx.znan = make([]bool, dx.ncols*cells)
			for zi := range dx.zmin {
				dx.zmin[zi] = math.Inf(1)
				dx.zmax[zi] = math.Inf(-1)
			}
		}
		c := dx.base.cellIndex(x, y)
		dx.buckets[c] = append(dx.buckets[c], int32(row))
		for ci := 0; ci < dx.ncols; ci++ {
			v := cols[ci][row]
			zi := ci*cells + int(c)
			if math.IsNaN(v) {
				dx.znan[zi] = true
				continue
			}
			if v < dx.zmin[zi] {
				dx.zmin[zi] = v
			}
			if v > dx.zmax[zi] {
				dx.zmax[zi] = v
			}
		}
		dx.rows++
	}
}

// collect appends to ids the delta rows inside r that satisfy every
// predicate (skip[k] marks predicates whose zone checks the adaptive
// planner disabled), bounded by the caller's snapshot row count snapN:
// rows absorbed after the caller's snapshot are ignored. It returns the
// extended ids — the delta segment sorted ascending, so appending it
// after the (sorted, all-smaller) base ids keeps the whole result
// sorted — and the watermark up to which appended rows are covered;
// rows in [watermark, snapN) are the caller's to filter linearly.
func (dx *deltaIndex) collect(cols [][]float64, r geom.Rect, preds []Pred, pi []int, skip []bool, snapN int, st *ScanStats, ids []int, cn *canceler) ([]int, int) {
	dx.mu.RLock()
	defer dx.mu.RUnlock()
	covered := dx.base.n + dx.rows
	if covered > snapN {
		covered = snapN
	}
	if dx.rows == 0 || covered <= dx.base.n {
		return ids, covered
	}
	limit := int32(covered)
	start := len(ids)
	xs, ys := cols[dx.base.xi], cols[dx.base.yi]
	if dx.buckets != nil {
		// The same clamped cell range the base probe uses. No bounds-
		// intersection gate here: delta rows outside the base bounds
		// clamp into edge cells, and so do out-of-range rectangles, so
		// the clamped range always covers them.
		c0, r0 := dx.base.cellCoords(r.MinX, r.MinY)
		c1, r1 := dx.base.cellCoords(r.MaxX, r.MaxY)
		cells := dx.base.nx * dx.base.ny
		// Upper-bound the delta contribution in one cheap pass so
		// appending to the caller's (exactly base-bound-sized) buffer
		// cannot force a reallocation that copies the whole base result.
		var bound int
		for row := r0; row <= r1; row++ {
			base := row * dx.base.nx
			for c := c0; c <= c1; c++ {
				bound += len(dx.buckets[base+c])
			}
		}
		ids = slices.Grow(ids, bound+len(dx.extra))
		residual := make([]Pred, 0, len(preds))
		residualCols := make([]int, 0, len(preds))
		var sel []int32
		for row := r0; row <= r1; row++ {
			// One counter-gated poll per touched cell row, like the base
			// probe; partial ids are discarded by the entry point.
			if cn.stop() {
				return ids, covered
			}
			base := row * dx.base.nx
			// Geometric coverage, exactly as the base probe computes it:
			// cells strictly interior to the touched range whose combined
			// rectangle is contained in r skip the per-row rectangle
			// test. Strict interiority also keeps grid-edge cells out —
			// the only cells that can hold rows clamped in from outside
			// the bounds, which must always be tested per row.
			spanCovered := false
			if row > r0 && row < r1 && c0+1 <= c1-1 {
				span := geom.Rect{
					MinX: dx.base.bounds.MinX + float64(c0+1)*dx.base.cellW,
					MinY: dx.base.bounds.MinY + float64(row)*dx.base.cellH,
					MaxX: dx.base.bounds.MinX + float64(c1)*dx.base.cellW,
					MaxY: dx.base.bounds.MinY + float64(row+1)*dx.base.cellH,
				}
				spanCovered = r.ContainsRect(span)
			}
			for c := c0; c <= c1; c++ {
				b := dx.buckets[base+c]
				if len(b) == 0 || b[0] >= limit {
					continue
				}
				// Ids are ascending; cut the bucket to the caller's
				// snapshot once instead of re-checking the watermark on
				// every row.
				if b[len(b)-1] >= limit {
					b = b[:sort.Search(len(b), func(i int) bool { return b[i] >= limit })]
				}
				st.CellsTouched++
				pruned := false
				residual = residual[:0]
				residualCols = residualCols[:0]
				for k := range preds {
					if skip != nil && skip[k] {
						residual = append(residual, preds[k])
						residualCols = append(residualCols, pi[k])
						continue
					}
					p := preds[k]
					zi := pi[k]*cells + base + c
					if !dx.znan[zi] && (dx.zmax[zi] < p.Min || dx.zmin[zi] > p.Max) {
						pruned = true
						break
					}
					if !(dx.zmin[zi] >= p.Min && dx.zmax[zi] <= p.Max) {
						residual = append(residual, p)
						residualCols = append(residualCols, pi[k])
					}
				}
				if pruned {
					st.CellsPruned++
					continue
				}
				needRect := !(spanCovered && c > c0 && c < c1)
				if !needRect && len(residual) == 0 {
					st.CellsBulk++
					st.DeltaRows += len(b)
					ids = appendSel(ids, b)
					continue
				}
				if len(b) >= kernelMinRows && !forceScalarKernels {
					// Batched bucket: same kernel sequence as a base
					// cell, gathering from the shared column arena.
					if cap(sel) < len(b) {
						sel = make([]int32, len(b))
					}
					s := sel[:len(b)]
					var k int
					ri := 0
					if needRect {
						k = selRectGather(s, b, xs, ys, r)
					} else {
						k = selGather(s, b, cols[residualCols[0]], residual[0].Min, residual[0].Max)
						ri = 1
					}
					for ; ri < len(residual) && k > 0; ri++ {
						k = selRefine(s[:k], cols[residualCols[ri]], residual[ri].Min, residual[ri].Max)
					}
					st.RowsExamined += len(b)
					st.DeltaRows += len(b)
					st.BatchedRows += len(b)
					ids = appendSel(ids, s[:k])
					continue
				}
				for _, id := range b {
					st.RowsExamined++
					st.DeltaRows++
					if needRect && !inRect(xs[id], ys[id], r) {
						continue
					}
					if matchPreds(cols, residualCols, residual, int(id)) {
						ids = append(ids, int(id))
					}
				}
			}
		}
	}
	for _, id := range dx.extra {
		if id >= limit {
			break
		}
		st.RowsExamined++
		st.DeltaRows++
		if inRect(xs[id], ys[id], r) && matchPreds(cols, pi, preds, int(id)) {
			ids = append(ids, int(id))
		}
	}
	// Bucket runs are ascending but interleave across cells (and with
	// extras); sort just the delta segment — every base id is smaller.
	slices.Sort(ids[start:])
	return ids, covered
}

// ---- background compaction ----

// SetAutoCompact enables threshold-triggered background compaction:
// after an append, when any spatial index's uncompacted tail exceeds
// frac of its indexed rows (and at least a small absolute floor), a
// background goroutine rebuilds the table's indexes against the current
// generation and publishes them atomically — off the read path, which
// keeps serving from the old generation plus delta until the publish.
// frac <= 0 disables the trigger (the default); Compact can always be
// called explicitly.
func (t *Table) SetAutoCompact(frac float64) {
	t.autoCompact.Store(math.Float64bits(frac))
}

// maybeCompact fires one background compaction when the auto-compact
// threshold is crossed. At most one compaction runs at a time.
func (t *Table) maybeCompact() {
	frac := math.Float64frombits(t.autoCompact.Load())
	if frac <= 0 {
		return
	}
	d := t.snapshot()
	trigger := false
	// Tombstones are compaction pressure too: past the same threshold,
	// fire a reclaim so a sliding-window table does not accumulate dead
	// rows forever between explicit Compact calls.
	if dead := d.deadCount(); dead >= compactMinRows && float64(dead) >= frac*float64(d.n) {
		trigger = true
	}
	for _, ix := range d.indexes {
		tail := d.n - ix.rows()
		if tail >= compactMinRows && float64(tail) >= frac*float64(ix.rows()) {
			trigger = true
			break
		}
	}
	if !trigger || !t.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer t.compacting.Store(false)
		t.Compact()
	}()
}

// Compact folds every appended row into fresh immutable spatial indexes
// and publishes them as a new generation. The expensive part — the
// index builds — runs against a read snapshot with no table lock held;
// only the publish takes the write lock, where rows appended during the
// build are absorbed into the fresh indexes' (empty) deltas so no row
// is ever outside an index for longer than one publish. Readers observe
// either the old generation (base + delta) or the new one — never a
// mix. A BulkLoad or snapshot restore racing the build makes the built
// indexes obsolete; the publish detects the generation change and
// discards them. Compact is a no-op when every index already covers
// every row and nothing is tombstoned.
//
// Compact is also the retention sweeper: it first applies the table's
// TTL policy (SetTTL), then — when the snapshot carries tombstones —
// physically drops the dead rows: survivor columns are rewritten (in
// row order), the CSR grids and zone maps are rebuilt over exactly the
// survivors, and the result is published generation-atomically with an
// empty tombstone set and a bumped loadGen (row ids shift, so the
// reclaim is a content replacement, exactly like BulkLoad). A delete
// landing mid-rebuild aborts the publish — the ids it tombstoned
// describe the pre-reclaim layout — and the next compaction sweeps
// again.
func (t *Table) Compact() {
	t.compactMu.Lock()
	defer t.compactMu.Unlock()
	t.enforceTTL()
	d := t.snapshot()
	t.mu.RLock()
	pairs := append([][2]int(nil), t.indexPairs...)
	t.mu.RUnlock()
	deadCount := d.deadCount()
	need := deadCount > 0
	for _, ix := range d.indexes {
		if ix.rows() < d.n {
			need = true
			break
		}
	}
	if !need || (len(pairs) == 0 && deadCount == 0) {
		return
	}
	jt := obs.StartJob("compaction")
	defer jt.End()
	start := time.Now()
	if deadCount > 0 {
		t.compactReclaim(d, pairs, deadCount, start)
		return
	}
	mode := t.backendMode.Load()
	built := make(map[[2]int]spatialIndex, len(pairs))
	for _, p := range pairs {
		if ix := buildSpatialIndex(p[0], p[1], d.cols, d.n, mode); ix != nil {
			built[p] = ix
		}
	}
	t.mu.Lock()
	cur := t.data
	if cur.loadGen != d.loadGen {
		// The table was reloaded mid-build: the fresh contents came with
		// their own freshly built indexes, and ours describe dead data.
		t.mu.Unlock()
		return
	}
	indexes := make([]spatialIndex, 0, len(pairs))
	for _, p := range pairs {
		nw := built[p]
		old := cur.indexFor(p[0], p[1])
		if nw == nil || (old != nil && old.rows() >= nw.rows()) {
			// A concurrent IndexOn absorbed at least as much; keep it.
			if old != nil {
				indexes = append(indexes, old)
			}
			continue
		}
		// Rows appended while we were building are already in cur; bin
		// them into the fresh delta so the new generation starts fully
		// covered.
		nw.deltaIdx().absorbRange(cur.cols, nw.rows(), cur.n)
		indexes = append(indexes, nw)
	}
	t.data = &tableData{cols: cur.cols, n: cur.n, indexes: indexes, dead: cur.dead, loadGen: cur.loadGen}
	t.mu.Unlock()
	// Appended rows may have shifted a column's value distribution (an
	// uncorrelated column can become correlated, and vice versa); the
	// fresh zone maps deserve fresh evidence, and a compaction is the
	// natural probation point for a previously earned skip.
	t.resetZoneStat()
	t.counters.compactions.Add(1)
	t.counters.compactionNanos.Add(int64(time.Since(start)))
}

// compactReclaim is Compact's tombstone-draining path: it rewrites the
// columns to just the surviving rows of snapshot d, rebuilds every
// registered index over them, and publishes the result as a fresh
// content generation. The rewrite and index builds run off-lock; the
// publish aborts if the content was replaced OR any new delete landed
// (the tombstone bitmap is copy-on-write, so pointer equality is exactly
// "no delete since the snapshot" — appends preserve the pointer).
func (t *Table) compactReclaim(d *tableData, pairs [][2]int, deadCount int, start time.Time) {
	alive := rangeMinusBitmap(0, d.n, d.dead).Indices()
	nn := len(alive)
	newCols := make([][]float64, len(d.cols))
	for i, c := range d.cols {
		out := make([]float64, nn)
		gatherVals(out, alive, c)
		newCols[i] = out
	}
	mode := t.backendMode.Load()
	built := make([]spatialIndex, 0, len(pairs))
	for _, p := range pairs {
		if ix := buildSpatialIndex(p[0], p[1], newCols, nn, mode); ix != nil {
			built = append(built, ix)
		}
	}
	t.mu.Lock()
	cur := t.data
	if cur.loadGen != d.loadGen || cur.dead != d.dead {
		t.mu.Unlock()
		return
	}
	// Rows appended mid-build sit at cur.cols[i][d.n:cur.n]; carry them
	// over (their ids shift down by the dead rows below them — all dead
	// rows are < d.n) and absorb them into the fresh deltas so the new
	// generation starts fully covered.
	tail := cur.n - d.n
	if tail > 0 {
		for i := range newCols {
			newCols[i] = append(newCols[i], cur.cols[i][d.n:cur.n]...)
		}
	}
	for _, ix := range built {
		ix.deltaIdx().absorbRange(newCols, ix.rows(), nn+tail)
	}
	t.data = &tableData{cols: newCols, n: nn + tail, indexes: built, loadGen: cur.loadGen + 1}
	t.mu.Unlock()
	t.resetZoneStat()
	t.counters.reclaimedRows.Add(int64(deadCount))
	t.counters.compactions.Add(1)
	t.counters.compactionNanos.Add(int64(time.Since(start)))
}
