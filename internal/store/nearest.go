package store

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/obs"
)

// kNN: Table.Nearest answers "the k live rows nearest (x, y)" — the
// workload the R-tree backend unlocks. Over a treeIndex it is a
// best-first branch-and-bound descent ordered by squared mindist to the
// node/leaf MBRs; over the grid or an unindexed pair it degrades to the
// exact same answer by brute force. Either way the appended tail, the
// non-finite extras, tombstones, and residual predicates are handled
// identically, so the answer is always exactly the sort-by-distance
// order of the visible rows (ties broken by ascending row id).

// Neighbor is one kNN result row.
type Neighbor struct {
	// Row is the row id in the generation the query ran against.
	Row int
	// X, Y are the row's indexed-pair coordinates.
	X, Y float64
	// Dist is the Euclidean distance to the query point.
	Dist float64
}

// ErrBadNearest reports an invalid kNN request.
var ErrBadNearest = errors.New("store: invalid nearest query")

// Nearest returns the k live rows nearest to (x, y) in the (xCol, yCol)
// plane that satisfy every predicate, ascending by distance (ties by
// row id), along with scan statistics. Fewer than k rows come back when
// fewer match. Rows whose distance is NaN (a NaN coordinate) never
// match; ±Inf coordinates are comparable and can match at distance
// +Inf. The query point itself must be NaN-free.
func (t *Table) Nearest(xCol, yCol string, x, y float64, k int, preds []Pred) ([]Neighbor, ScanStats, error) {
	return t.nearest(nil, nil, xCol, yCol, x, y, k, preds)
}

// NearestCtx is Nearest with stage timing and cooperative cancellation:
// when ctx carries an obs.Trace the index descent (or brute-force
// sweep) is recorded as a probe span, and when ctx can be canceled the
// search polls it at frontier-pop and sweep-block boundaries and
// unwinds with ctx.Err().
func (t *Table) NearestCtx(ctx context.Context, xCol, yCol string, x, y float64, k int, preds []Pred) ([]Neighbor, ScanStats, error) {
	return t.nearest(obs.FromContext(ctx), newCanceler(ctx), xCol, yCol, x, y, k, preds)
}

func (t *Table) nearest(tr *obs.Trace, cn *canceler, xCol, yCol string, x, y float64, k int, preds []Pred) ([]Neighbor, ScanStats, error) {
	var st ScanStats
	if k <= 0 {
		return nil, st, fmt.Errorf("%w: k = %d", ErrBadNearest, k)
	}
	if math.IsNaN(x) || math.IsNaN(y) {
		return nil, st, fmt.Errorf("%w: NaN query point", ErrBadNearest)
	}
	xi, ok := t.colIdx[xCol]
	if !ok {
		return nil, st, fmt.Errorf("store: table %q column %q: %w", t.name, xCol, ErrNotFound)
	}
	yi, ok := t.colIdx[yCol]
	if !ok {
		return nil, st, fmt.Errorf("store: table %q column %q: %w", t.name, yCol, ErrNotFound)
	}
	pi := make([]int, len(preds))
	for i, p := range preds {
		ci, ok := t.colIdx[p.Column]
		if !ok {
			return nil, st, fmt.Errorf("store: table %q column %q: %w", t.name, p.Column, ErrNotFound)
		}
		pi[i] = ci
	}
	preds = normalizePreds(preds)
	d := t.snapshot()
	t.counters.nearestQueries.Add(1)
	h := knnHeap{k: k}
	xs, ys := d.cols[xi], d.cols[yi]
	sp := tr.StartSpan(obs.StageProbe)
	covered := 0
	if tix, isTree := d.indexFor(xi, yi).(*treeIndex); isTree && tix.n > 0 {
		st.IndexProbe = true
		tix.nearestInto(d.cols, x, y, &h, preds, pi, d.dead, &st, cn)
		covered = tix.n
	}
	// Everything the tree did not cover — the whole table on the grid /
	// unindexed path, the appended tail otherwise (delta rows included:
	// they are simply rows past the tree's build watermark) — is swept
	// brute force into the same heap, so the answer is exact under every
	// backend and mid-ingest.
	for row := covered; row < d.n; row++ {
		if row&(scanBatchRows-1) == 0 && cn.stop() {
			break
		}
		st.RowsExamined++
		if d.dead != nil && d.dead.contains(row) {
			continue
		}
		if !matchPreds(d.cols, pi, preds, row) {
			continue
		}
		dx, dy := xs[row]-x, ys[row]-y
		h.push(dx*dx+dy*dy, row)
	}
	sp.End()
	// A canceled search has an incomplete heap — not the k nearest, just
	// the k nearest seen so far. Return the context error, never a wrong
	// answer.
	if err := cn.cause(); err != nil {
		return nil, st, err
	}
	out := h.sorted()
	for i := range out {
		out[i].X = xs[out[i].Row]
		out[i].Y = ys[out[i].Row]
	}
	t.counters.batchedRows.Add(int64(st.BatchedRows))
	return out, st, nil
}

// knnHeap is a bounded max-heap of the k best candidates seen so far,
// keyed worst-first by (squared distance desc, row desc): the root is
// the candidate to beat. NaN distances are rejected at push.
type knnHeap struct {
	k  int
	d2 []float64
	id []int
}

func (h *knnHeap) full() bool { return len(h.d2) == h.k }

// worst returns the current k-th best squared distance, or +Inf while
// the heap is not yet full (everything is welcome).
func (h *knnHeap) worst() float64 {
	if len(h.d2) < h.k {
		return math.Inf(1)
	}
	return h.d2[0]
}

// worse reports whether candidate a is strictly worse than b under the
// (distance, row id) order.
func worse(d2a float64, ida int, d2b float64, idb int) bool {
	return d2a > d2b || (d2a == d2b && ida > idb)
}

func (h *knnHeap) push(d2 float64, row int) {
	if d2 != d2 { // NaN distance: the row never matches.
		return
	}
	if len(h.d2) < h.k {
		h.d2 = append(h.d2, d2)
		h.id = append(h.id, row)
		// Sift up.
		i := len(h.d2) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !worse(h.d2[i], h.id[i], h.d2[p], h.id[p]) {
				break
			}
			h.d2[i], h.d2[p] = h.d2[p], h.d2[i]
			h.id[i], h.id[p] = h.id[p], h.id[i]
			i = p
		}
		return
	}
	if !worse(h.d2[0], h.id[0], d2, row) {
		return // not better than the current worst
	}
	h.d2[0], h.id[0] = d2, row
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < len(h.d2) && worse(h.d2[l], h.id[l], h.d2[w], h.id[w]) {
			w = l
		}
		if r < len(h.d2) && worse(h.d2[r], h.id[r], h.d2[w], h.id[w]) {
			w = r
		}
		if w == i {
			return
		}
		h.d2[i], h.d2[w] = h.d2[w], h.d2[i]
		h.id[i], h.id[w] = h.id[w], h.id[i]
		i = w
	}
}

// sorted drains the heap into Neighbors ascending by (distance, row).
func (h *knnHeap) sorted() []Neighbor {
	out := make([]Neighbor, len(h.d2))
	for i := range out {
		out[i] = Neighbor{Row: h.id[i], Dist: math.Sqrt(h.d2[i])}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Row < out[b].Row
	})
	return out
}

// mindist2 returns the squared Euclidean distance from (x, y) to the
// nearest point of r — 0 inside, the axis shortfalls squared outside.
func mindist2(r geom.Rect, x, y float64) float64 {
	var dx, dy float64
	if x < r.MinX {
		dx = r.MinX - x
	} else if x > r.MaxX {
		dx = x - r.MaxX
	}
	if y < r.MinY {
		dy = r.MinY - y
	} else if y > r.MaxY {
		dy = y - r.MaxY
	}
	return dx*dx + dy*dy
}

// knnEntry is one best-first frontier element: a packed node or a leaf,
// ordered by the squared mindist of its MBR.
type knnEntry struct {
	d2   float64
	idx  int32
	leaf bool
}

// nearestInto runs the best-first branch-and-bound descent over the
// packed hierarchy, pushing every live, predicate-matching row it must
// examine into h. Subtrees whose mindist exceeds the current k-th best
// distance are pruned (descended on equality, so ties are never lost);
// leaf zone maps additionally prune leaves no row of which can satisfy
// the predicates. Non-finite extras are swept linearly — they have no
// MBR to bound.
func (ix *treeIndex) nearestInto(cols [][]float64, x, y float64, h *knnHeap, preds []Pred, pi []int, dead *rowBitmap, st *ScanStats, cn *canceler) {
	xs, ys := cols[ix.xi], cols[ix.yi]
	numLeaves := len(ix.leafMBR)
	if numLeaves > 0 {
		// frontier is a min-heap on d2 (manual, index-keyed).
		frontier := make([]knnEntry, 0, 64)
		push := func(e knnEntry) {
			frontier = append(frontier, e)
			i := len(frontier) - 1
			for i > 0 {
				p := (i - 1) / 2
				if frontier[i].d2 >= frontier[p].d2 {
					break
				}
				frontier[i], frontier[p] = frontier[p], frontier[i]
				i = p
			}
		}
		pop := func() knnEntry {
			e := frontier[0]
			last := len(frontier) - 1
			frontier[0] = frontier[last]
			frontier = frontier[:last]
			i := 0
			for {
				l, r := 2*i+1, 2*i+2
				s := i
				if l < last && frontier[l].d2 < frontier[s].d2 {
					s = l
				}
				if r < last && frontier[r].d2 < frontier[s].d2 {
					s = r
				}
				if s == i {
					break
				}
				frontier[i], frontier[s] = frontier[s], frontier[i]
				i = s
			}
			return e
		}
		root := int32(len(ix.nodes) - 1)
		push(knnEntry{d2: mindist2(ix.nodes[root].mbr, x, y), idx: root})
		for len(frontier) > 0 {
			// One counter-gated poll per frontier pop; a canceled descent
			// leaves the heap incomplete, and nearest() returns the
			// context error instead of its contents.
			if cn.stop() {
				return
			}
			e := pop()
			if h.full() && e.d2 > h.worst() {
				break // every remaining frontier entry is at least this far
			}
			if !e.leaf {
				nd := &ix.nodes[e.idx]
				for c := nd.lo; c < nd.hi; c++ {
					var mbr geom.Rect
					if nd.leafKids {
						mbr = ix.leafMBR[c]
					} else {
						mbr = ix.nodes[c].mbr
					}
					d2 := mindist2(mbr, x, y)
					if h.full() && d2 > h.worst() {
						continue
					}
					push(knnEntry{d2: d2, idx: c, leaf: nd.leafKids})
				}
				continue
			}
			// Leaf: zone maps can rule the whole run out before any row
			// is touched.
			st.CellsTouched++
			leafPruned := false
			for k := range preds {
				p := preds[k]
				zi := pi[k]*numLeaves + int(e.idx)
				if !ix.znan[zi] && (ix.zmax[zi] < p.Min || ix.zmin[zi] > p.Max) {
					leafPruned = true
					break
				}
			}
			if leafPruned {
				st.CellsPruned++
				continue
			}
			for _, id := range ix.rowID[ix.leafOff[e.idx]:ix.leafOff[e.idx+1]] {
				row := int(id)
				st.RowsExamined++
				if dead != nil && dead.contains(row) {
					continue
				}
				if !matchPreds(cols, pi, preds, row) {
					continue
				}
				dx, dy := xs[row]-x, ys[row]-y
				h.push(dx*dx+dy*dy, row)
			}
		}
	}
	for _, id := range ix.extra {
		row := int(id)
		st.RowsExamined++
		if dead != nil && dead.contains(row) {
			continue
		}
		if !matchPreds(cols, pi, preds, row) {
			continue
		}
		dx, dy := xs[row]-x, ys[row]-y
		h.push(dx*dx+dy*dy, row)
	}
}
