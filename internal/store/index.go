package store

import (
	"math"
	"slices"

	"repro/internal/geom"
)

// The spatial index is a uniform grid (adapted from internal/grid, which
// keeps per-cell point slices; here the layout is a compact CSR packing
// of row ids) binned over one (x, y) column pair. It is immutable: built
// against one generation of column storage and published atomically with
// it, so a reader's snapshot always pairs columns with the index that was
// built from exactly those columns.
const (
	// indexTargetRowsPerCell sizes the grid so an average cell holds
	// about this many rows: fine enough that a 1% viewport touches a
	// small fraction of the table, coarse enough that covered cells
	// dominate boundary cells.
	indexTargetRowsPerCell = 64
	// indexMaxDim caps the grid resolution (cells = dim²).
	indexMaxDim = 1024
)

// rectIndex is a grid-binned spatial index over the column pair (xi, yi)
// of one table generation. rowID packs the row ids of all cells in
// row-major cell order; cellOff[c] .. cellOff[c+1] delimit cell c's run,
// and ids are ascending within each run (the build is a stable counting
// sort over ascending rows).
type rectIndex struct {
	xi, yi       int
	bounds       geom.Rect
	nx, ny       int
	cellW, cellH float64
	cellOff      []int32
	rowID        []int32
	// extra holds rows (ascending) with a non-finite coordinate: NaN
	// compares false against every bound and so matches every range
	// predicate, and ±Inf defeats the cell arithmetic, so such rows
	// cannot be binned — they are filtered per probe like boundary
	// cells. Keeping them out of the grid preserves the index for the
	// finite bulk of a dirty dataset instead of refusing to index it.
	extra []int32
	n     int // rows indexed; rows >= n (post-build appends) are unindexed
}

// buildRectIndex indexes the n-row column pair. It returns a valid,
// empty-probing index for n == 0 (so later appends still take the tail
// path), and nil when the table is too large for the int32 row ids.
func buildRectIndex(xi, yi int, xs, ys []float64, n int) *rectIndex {
	if n > math.MaxInt32 {
		return nil
	}
	ix := &rectIndex{xi: xi, yi: yi, n: n, bounds: geom.EmptyRect()}
	if n == 0 {
		return ix
	}
	for i := 0; i < n; i++ {
		x, y := xs[i], ys[i]
		if !isFinite(x) || !isFinite(y) {
			ix.extra = append(ix.extra, int32(i))
			continue
		}
		ix.bounds = ix.bounds.UnionPoint(geom.Pt(x, y))
	}
	if len(ix.extra) == n {
		// Nothing finite to bin; every probe is an extras filter, which
		// is just a slower linear scan.
		return nil
	}
	if ix.bounds.IsEmpty() {
		// Unreachable (some row was finite), but a grid over an empty
		// extent must never be built.
		return nil
	}
	dim := int(math.Sqrt(float64(n) / indexTargetRowsPerCell))
	if dim < 1 {
		dim = 1
	}
	if dim > indexMaxDim {
		dim = indexMaxDim
	}
	ix.nx, ix.ny = dim, dim
	ix.cellW = ix.bounds.Width() / float64(dim)
	ix.cellH = ix.bounds.Height() / float64(dim)
	// Degenerate axes (all rows on a line) still need a positive step so
	// cellOf stays well-defined; same convention as grid.New.
	if ix.cellW == 0 || math.IsNaN(ix.cellW) {
		ix.cellW = 1
	}
	if ix.cellH == 0 || math.IsNaN(ix.cellH) {
		ix.cellH = 1
	}
	// Counting sort rows into cells: count, prefix-sum, place. Iterating
	// rows ascending keeps each cell's run ascending. Non-finite rows
	// (already collected into extra) are skipped.
	cells := dim * dim
	counts := make([]int32, cells+1)
	cellOf := make([]int32, n)
	for i := 0; i < n; i++ {
		x, y := xs[i], ys[i]
		if !isFinite(x) || !isFinite(y) {
			cellOf[i] = -1
			continue
		}
		c := ix.cellIndex(x, y)
		cellOf[i] = c
		counts[c+1]++
	}
	for c := 1; c <= cells; c++ {
		counts[c] += counts[c-1]
	}
	ix.cellOff = counts
	ix.rowID = make([]int32, n-len(ix.extra))
	cursor := make([]int32, cells)
	copy(cursor, counts[:cells])
	for i := 0; i < n; i++ {
		c := cellOf[i]
		if c < 0 {
			continue
		}
		ix.rowID[cursor[c]] = int32(i)
		cursor[c]++
	}
	return ix
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// cellCoords returns the (col, row) cell of (x, y), clamped into the
// grid like grid.CellOf. Clamping happens in the float domain BEFORE
// the int conversion: a coordinate far outside the bounds (query
// viewports arrive from the network; 1e300 or ±Inf are representable)
// would overflow the conversion — float→int of an out-of-range value
// yields MinInt64 on amd64 — and clamp to the wrong edge, inverting
// cell ranges.
func (ix *rectIndex) cellCoords(x, y float64) (int, int) {
	c := clampCell((x-ix.bounds.MinX)/ix.cellW, ix.nx)
	r := clampCell((y-ix.bounds.MinY)/ix.cellH, ix.ny)
	return c, r
}

// clampCell converts a cell-unit quotient to a cell index in [0, n).
// Negative and NaN quotients clamp to 0, quotients at or beyond n
// (including +Inf) to n-1; only in-range values reach the int
// conversion.
func clampCell(q float64, n int) int {
	if !(q > 0) {
		return 0
	}
	if q >= float64(n) {
		return n - 1
	}
	return int(q)
}

func (ix *rectIndex) cellIndex(x, y float64) int32 {
	c, r := ix.cellCoords(x, y)
	return int32(r*ix.nx + c)
}

// inRect mirrors the linear scan's predicate form exactly (inclusive
// bounds, NaN coordinates compare false on both sides and therefore
// match), so index probes and fallback scans agree row for row.
func inRect(x, y float64, r geom.Rect) bool {
	return !(x < r.MinX || x > r.MaxX || y < r.MinY || y > r.MaxY)
}

// collect returns the sorted ids of indexed rows inside r. Cells of one
// grid row are contiguous in the CSR packing, so the fully-covered
// interior of each touched row — every cell strictly inside the touched
// range whose combined rectangle is contained in r — is emitted as one
// range of the packed array with no per-point tests; only the boundary
// ring is filtered per point. The strictly-interior requirement (on top
// of the geometric containment check) leaves a one-cell margin that
// absorbs the float rounding slack between a point's binned cell and its
// true coordinates, keeping collect equivalent to the linear predicate
// scan.
func (ix *rectIndex) collect(xs, ys []float64, r geom.Rect) []int {
	if ix.n == 0 {
		return nil
	}
	var ids []int
	if r.Intersects(ix.bounds) {
		ids = ix.collectCells(xs, ys, r)
	}
	// Non-finite rows live outside the grid; filter them with the same
	// predicate form the linear scan uses (NaN matches everything, ±Inf
	// matches nothing finite).
	for _, id := range ix.extra {
		if inRect(xs[id], ys[id], r) {
			ids = append(ids, int(id))
		}
	}
	// Runs are ascending within a cell but interleave across cells (and
	// with extras); one sort restores global row order (ScanRect's
	// contract, and what the ScanRect ≡ Scan property test checks).
	slices.Sort(ids)
	return ids
}

// collectCells gathers the grid-binned rows inside r (unsorted across
// cells).
func (ix *rectIndex) collectCells(xs, ys []float64, r geom.Rect) []int {
	c0, r0 := ix.cellCoords(r.MinX, r.MinY)
	c1, r1 := ix.cellCoords(r.MaxX, r.MaxY)
	// Upper-bound the result size in one pass over the touched cell rows
	// so the ids buffer is allocated exactly once.
	var bound int32
	for row := r0; row <= r1; row++ {
		base := row * ix.nx
		bound += ix.cellOff[base+c1+1] - ix.cellOff[base+c0]
	}
	if bound == 0 {
		return nil
	}
	ids := make([]int, 0, bound)
	// filterCols appends the rows of cells (ca..cb, row) that pass the
	// per-point rectangle test.
	filterCols := func(row, ca, cb int) {
		base := row * ix.nx
		for _, id := range ix.rowID[ix.cellOff[base+ca]:ix.cellOff[base+cb+1]] {
			if inRect(xs[id], ys[id], r) {
				ids = append(ids, int(id))
			}
		}
	}
	for row := r0; row <= r1; row++ {
		ci0, ci1 := c0+1, c1-1 // strictly interior columns
		if row == r0 || row == r1 || ci0 > ci1 {
			filterCols(row, c0, c1)
			continue
		}
		span := geom.Rect{
			MinX: ix.bounds.MinX + float64(ci0)*ix.cellW,
			MinY: ix.bounds.MinY + float64(row)*ix.cellH,
			MaxX: ix.bounds.MinX + float64(ci1+1)*ix.cellW,
			MaxY: ix.bounds.MinY + float64(row+1)*ix.cellH,
		}
		if !r.ContainsRect(span) {
			filterCols(row, c0, c1)
			continue
		}
		filterCols(row, c0, c0)
		base := row * ix.nx
		for _, id := range ix.rowID[ix.cellOff[base+ci0]:ix.cellOff[base+ci1+1]] {
			ids = append(ids, int(id))
		}
		filterCols(row, c1, c1)
	}
	return ids
}

// coversAll reports whether r contains every indexed row trivially — the
// full-extent fast path: the caller can answer with a dense range and
// never touch per-row data. Non-finite rows sit outside the bounds, so
// their presence disables the shortcut.
func (ix *rectIndex) coversAll(r geom.Rect) bool {
	return ix.n > 0 && len(ix.extra) == 0 && r.ContainsRect(ix.bounds)
}

// stats accumulation for /metrics.
func (ix *rectIndex) cells() int {
	return ix.nx * ix.ny
}
