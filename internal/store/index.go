package store

import (
	"math"
	"runtime"
	"slices"
	"sync"

	"repro/internal/geom"
)

// The spatial index is a uniform grid (adapted from internal/grid, which
// keeps per-cell point slices; here the layout is a compact CSR packing
// of row ids) binned over one (x, y) column pair. It is immutable: built
// against one generation of column storage and published atomically with
// it, so a reader's snapshot always pairs columns with the index that was
// built from exactly those columns.
const (
	// indexTargetRowsPerCell sizes the grid so an average cell holds
	// about this many rows: fine enough that a 1% viewport touches a
	// small fraction of the table, coarse enough that covered cells
	// dominate boundary cells.
	indexTargetRowsPerCell = 64
	// indexMaxDim caps the grid resolution (cells = dim²).
	indexMaxDim = 1024
)

// spatialIndex is what the read path needs from a spatial index backend:
// a rect probe that emits row ids through the selection-vector kernels,
// zone-map pruning and bulk emission, a delta for post-build appends, and
// the identity/stats accessors the generation machinery and /metrics
// consume. Two implementations exist: rectIndex (the uniform CSR grid)
// and treeIndex (the packed STR R-tree, strtree.go). Implementations are
// immutable after construction except for their delta side structure,
// matching the generation-publish model.
type spatialIndex interface {
	// pair returns the (x, y) column ordinals the index is built over.
	pair() (xi, yi int)
	// rows returns how many rows the index covers; rows at or beyond it
	// take the table's unindexed tail path.
	rows() int
	// extent returns the finite bounding rectangle of the binned rows
	// (empty when nothing was binnable).
	extent() geom.Rect
	// extraCount returns how many indexed rows have a non-finite
	// coordinate (they are filtered per probe, outside the structure).
	extraCount() int
	// cells returns the pruning granularity — grid cells or tree leaves —
	// for the /metrics cell gauge.
	cells() int
	// backend names the implementation ("grid" or "rtree") for stats.
	backend() string
	// occ returns the cell-occupancy p99 and skew ratio (p99 over mean)
	// measured over the build-time grid binning — the statistics the
	// backend planner chose from.
	occ() (p99, skew float64)
	// coversAll reports whether r trivially contains every indexed row,
	// enabling the dense-range fast path.
	coversAll(r geom.Rect) bool
	// collect returns the sorted ids of indexed rows inside r that
	// satisfy every residual predicate; see rectIndex.collect for the
	// exact contract. cn (nil = never canceled) is polled at cell-row /
	// leaf boundaries; a canceled collect returns early with a partial
	// id set, which the caller discards once it sees the context error.
	collect(cols [][]float64, r geom.Rect, preds []Pred, pi []int, skip []bool, tally *zoneTally, st *ScanStats, cn *canceler) []int
	// deltaIdx returns the mutable delta absorbing post-build appends.
	deltaIdx() *deltaIndex
}

// gridGeom is the shared grid geometry both backends carry: the identity
// of the indexed pair, the covered row count, and the uniform binning
// the delta index uses to bucket appended rows. For the grid backend it
// is also the probe geometry; for the tree backend it exists purely so
// deltas (and their zone maps) work identically under either backend.
type gridGeom struct {
	xi, yi       int
	bounds       geom.Rect
	nx, ny       int
	cellW, cellH float64
	n            int // rows indexed; rows >= n (post-build appends) are unindexed
}

func (g *gridGeom) pair() (int, int)  { return g.xi, g.yi }
func (g *gridGeom) rows() int         { return g.n }
func (g *gridGeom) extent() geom.Rect { return g.bounds }

// sizeGrid stretches the uniform grid over bounds for n rows: dim² cells
// targeting indexTargetRowsPerCell rows each, with degenerate axes (all
// rows on a line) given a positive step so cell arithmetic stays
// well-defined; same convention as grid.New.
func (g *gridGeom) sizeGrid(n int) {
	dim := int(math.Sqrt(float64(n) / indexTargetRowsPerCell))
	if dim < 1 {
		dim = 1
	}
	if dim > indexMaxDim {
		dim = indexMaxDim
	}
	g.nx, g.ny = dim, dim
	g.cellW = g.bounds.Width() / float64(dim)
	g.cellH = g.bounds.Height() / float64(dim)
	if g.cellW == 0 || math.IsNaN(g.cellW) {
		g.cellW = 1
	}
	if g.cellH == 0 || math.IsNaN(g.cellH) {
		g.cellH = 1
	}
}

// rectIndex is a grid-binned spatial index over the column pair (xi, yi)
// of one table generation. rowID packs the row ids of all cells in
// row-major cell order; cellOff[c] .. cellOff[c+1] delimit cell c's run,
// and ids are ascending within each run (the build is a stable counting
// sort over ascending rows).
type rectIndex struct {
	gridGeom
	cellOff []int32
	rowID   []int32
	// extra holds rows (ascending) with a non-finite coordinate: NaN
	// compares false against every bound and so matches every range
	// predicate, and ±Inf defeats the cell arithmetic, so such rows
	// cannot be binned — they are filtered per probe like boundary
	// cells. Keeping them out of the grid preserves the index for the
	// finite bulk of a dirty dataset instead of refusing to index it.
	extra []int32

	// occP99 and occSkew are the build-time occupancy statistics the
	// backend planner consulted (p99 cell population, and its ratio to
	// the mean); exported through IndexStats.PerTable.
	occP99, occSkew float64

	// Zone maps: per (column, cell) min/max over the binned rows, laid
	// out flat as [col·cells + cell], built in the same pass (and
	// published in the same generation) as the CSR packing. They let a
	// probe with residual predicates prune whole cells (every row
	// provably fails) or bulk-emit them (every row provably passes)
	// without touching per-row data. znan records cells holding a NaN in
	// that column: NaN matches every range predicate, so such cells can
	// never be pruned by it — though they can still be bulk-emitted,
	// since the NaN rows pass trivially and the min/max (which exclude
	// NaN) bound every other row.
	zmin, zmax []float64
	znan       []bool

	// delta accumulates rows appended after this index was built (see
	// delta.go): a mutable, independently locked side structure sharing
	// the grid geometry. The rectIndex itself stays immutable; the delta
	// pointer is set once at construction.
	delta *deltaIndex
}

// buildRectIndex indexes the n-row (xi, yi) pair of cols, building zone
// maps over every column of the generation in the same pass. It returns
// a valid, empty-probing index for n == 0 (so later appends still take
// the tail path), and nil when the table is too large for the int32 row
// ids.
func buildRectIndex(xi, yi int, cols [][]float64, n int) *rectIndex {
	if n > math.MaxInt32 {
		return nil
	}
	xs, ys := cols[xi], cols[yi]
	ix := &rectIndex{gridGeom: gridGeom{xi: xi, yi: yi, n: n, bounds: geom.EmptyRect()}}
	ix.delta = newDeltaIndex(&ix.gridGeom, len(cols))
	if n == 0 {
		return ix
	}
	for i := 0; i < n; i++ {
		x, y := xs[i], ys[i]
		if !isFinite(x) || !isFinite(y) {
			ix.extra = append(ix.extra, int32(i))
			continue
		}
		ix.bounds = ix.bounds.UnionPoint(geom.Pt(x, y))
	}
	if len(ix.extra) == n {
		// Nothing finite to bin; every probe is an extras filter, which
		// is just a slower linear scan.
		return nil
	}
	if ix.bounds.IsEmpty() {
		// Unreachable (some row was finite), but a grid over an empty
		// extent must never be built.
		return nil
	}
	ix.sizeGrid(n)
	// Counting sort rows into cells: count, prefix-sum, place. Iterating
	// rows ascending keeps each cell's run ascending. Non-finite rows
	// (already collected into extra) are skipped.
	cells := ix.nx * ix.ny
	counts := make([]int32, cells+1)
	cellOf := make([]int32, n)
	for i := 0; i < n; i++ {
		x, y := xs[i], ys[i]
		if !isFinite(x) || !isFinite(y) {
			cellOf[i] = -1
			continue
		}
		c := ix.cellIndex(x, y)
		cellOf[i] = c
		counts[c+1]++
	}
	ix.occP99, ix.occSkew = occFromCounts(counts[1:], n-len(ix.extra))
	for c := 1; c <= cells; c++ {
		counts[c] += counts[c-1]
	}
	ix.cellOff = counts
	ix.rowID = make([]int32, n-len(ix.extra))
	cursor := make([]int32, cells)
	copy(cursor, counts[:cells])
	for i := 0; i < n; i++ {
		c := cellOf[i]
		if c < 0 {
			continue
		}
		ix.rowID[cursor[c]] = int32(i)
		cursor[c]++
	}
	// Zone maps for every column, so residual predicates on any column —
	// not just the indexed pair — can prune. Memory is ncols·cells·17
	// bytes ≈ 0.27·ncols bytes per row at the 64-rows/cell target.
	ncols := len(cols)
	ix.zmin = make([]float64, ncols*cells)
	ix.zmax = make([]float64, ncols*cells)
	ix.znan = make([]bool, ncols*cells)
	for zi := range ix.zmin {
		ix.zmin[zi] = math.Inf(1)
		ix.zmax[zi] = math.Inf(-1)
	}
	for ci, col := range cols {
		zbase := ci * cells
		for i := 0; i < n; i++ {
			c := cellOf[i]
			if c < 0 {
				continue
			}
			v := col[i]
			if math.IsNaN(v) {
				ix.znan[zbase+int(c)] = true
				continue
			}
			if v < ix.zmin[zbase+int(c)] {
				ix.zmin[zbase+int(c)] = v
			}
			if v > ix.zmax[zbase+int(c)] {
				ix.zmax[zbase+int(c)] = v
			}
		}
	}
	return ix
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// cellCoords returns the (col, row) cell of (x, y), clamped into the
// grid like grid.CellOf. Clamping happens in the float domain BEFORE
// the int conversion: a coordinate far outside the bounds (query
// viewports arrive from the network; 1e300 or ±Inf are representable)
// would overflow the conversion — float→int of an out-of-range value
// yields MinInt64 on amd64 — and clamp to the wrong edge, inverting
// cell ranges.
func (g *gridGeom) cellCoords(x, y float64) (int, int) {
	c := clampCell((x-g.bounds.MinX)/g.cellW, g.nx)
	r := clampCell((y-g.bounds.MinY)/g.cellH, g.ny)
	return c, r
}

// clampCell converts a cell-unit quotient to a cell index in [0, n).
// Negative and NaN quotients clamp to 0, quotients at or beyond n
// (including +Inf) to n-1; only in-range values reach the int
// conversion.
func clampCell(q float64, n int) int {
	if !(q > 0) {
		return 0
	}
	if q >= float64(n) {
		return n - 1
	}
	return int(q)
}

func (g *gridGeom) cellIndex(x, y float64) int32 {
	c, r := g.cellCoords(x, y)
	return int32(r*g.nx + c)
}

// inRect mirrors the linear scan's predicate form exactly (inclusive
// bounds, NaN coordinates compare false on both sides and therefore
// match), so index probes and fallback scans agree row for row.
func inRect(x, y float64, r geom.Rect) bool {
	return !(x < r.MinX || x > r.MaxX || y < r.MinY || y > r.MaxY)
}

// zoneTally is the per-predicate zone-consult record one probe
// accumulates for the adaptive planner: eval counts cells where the
// predicate's zone was consulted, decisive the consults that pruned the
// cell or settled the predicate as all-pass. Slices are indexed by
// predicate position, nil when the probe carries no predicates.
type zoneTally struct {
	eval, decisive []int64
}

// collect returns the sorted ids of indexed rows inside r that satisfy
// every residual predicate (preds[k] over column pi[k], bounds already
// NaN-normalized; skip[k] marks predicates whose zone checks the
// adaptive planner disabled). Cells of one grid row are contiguous in
// the CSR packing, so cells that are both geometrically covered
// (strictly inside the touched range, with the combined row span
// contained in r) and zone-covered (every predicate's zone proves all
// rows pass) are emitted as bulk runs with no per-point tests; the
// boundary ring and cells whose zones are inconclusive are filtered per
// point, evaluating only the predicates the zone could not settle.
// Cells whose zone proves no row can match are pruned without reading a
// single row. The strictly-interior requirement (on top of the
// geometric containment check) leaves a one-cell margin that absorbs
// the float rounding slack between a point's binned cell and its true
// coordinates, keeping collect equivalent to the linear predicate scan.
func (ix *rectIndex) collect(cols [][]float64, r geom.Rect, preds []Pred, pi []int, skip []bool, tally *zoneTally, st *ScanStats, cn *canceler) []int {
	if ix.n == 0 {
		return nil
	}
	var ids []int
	if r.Intersects(ix.bounds) {
		ids = ix.collectCells(cols, r, preds, pi, skip, tally, st, cn)
	}
	// Non-finite rows live outside the grid; filter them with the same
	// predicate form the linear scan uses (NaN matches everything, ±Inf
	// matches nothing finite). Zone maps do not cover them, so every
	// predicate is evaluated.
	xs, ys := cols[ix.xi], cols[ix.yi]
	for _, id := range ix.extra {
		st.RowsExamined++
		if inRect(xs[id], ys[id], r) && matchPreds(cols, pi, preds, int(id)) {
			ids = append(ids, int(id))
		}
	}
	// Runs are ascending within a cell but interleave across cells (and
	// with extras); one sort restores global row order (ScanRect's
	// contract, and what the ScanRect ≡ Scan property test checks).
	slices.Sort(ids)
	return ids
}

// matchPreds reports whether row passes every predicate (preds[k] over
// column pi[k]), with the linear scan's exact comparison form: a NaN
// value compares false on both sides and therefore matches.
func matchPreds(cols [][]float64, pi []int, preds []Pred, row int) bool {
	for k := range preds {
		v := cols[pi[k]][row]
		if v < preds[k].Min || v > preds[k].Max {
			return false
		}
	}
	return true
}

// collectCells gathers the grid-binned rows inside r passing preds
// (unsorted across cells), accumulating zone-map statistics into st and
// per-predicate consult tallies into tally. Probes whose touched cells
// bound at least parallelScanMinRows rows are sharded across CPUs by
// grid row (cells of one grid row are contiguous in the CSR packing, so
// shards are disjoint contiguous id runs); per-shard buffers are
// concatenated in cell order and per-shard stats merged, which keeps the
// parallel probe bit-identical to the serial one.
func (ix *rectIndex) collectCells(cols [][]float64, r geom.Rect, preds []Pred, pi []int, skip []bool, tally *zoneTally, st *ScanStats, cn *canceler) []int {
	c0, r0 := ix.cellCoords(r.MinX, r.MinY)
	c1, r1 := ix.cellCoords(r.MaxX, r.MaxY)
	// Upper-bound the result size in one pass over the touched cell rows
	// so the ids buffer is allocated at most once per shard.
	var bound int32
	for row := r0; row <= r1; row++ {
		base := row * ix.nx
		bound += ix.cellOff[base+c1+1] - ix.cellOff[base+c0]
	}
	st.CellsTouched += (r1 - r0 + 1) * (c1 - c0 + 1)
	if bound == 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if rows := r1 - r0 + 1; workers > rows {
		workers = rows
	}
	if int(bound) < parallelScanMinRows || workers <= 1 {
		st.ProbeShards++
		ids := make([]int, 0, bound)
		return ix.collectRows(cols, r, preds, pi, skip, r0, r1, c0, c1, r0, r1, tally, st, ids, cn)
	}
	// Partition the touched grid rows into contiguous shards balanced by
	// their bounded row counts (cell population is skewed, so equal row
	// ranges would not give equal work).
	type shard struct {
		rlo, rhi int
		bound    int32
		ids      []int
		st       ScanStats
		tally    zoneTally
	}
	shards := make([]shard, 0, workers)
	var acc int32
	rlo := r0
	for row := r0; row <= r1; row++ {
		base := row * ix.nx
		acc += ix.cellOff[base+c1+1] - ix.cellOff[base+c0]
		remainingRows := r1 - row
		if (acc >= bound/int32(workers) && len(shards) < workers-1 && remainingRows > 0) || row == r1 {
			shards = append(shards, shard{rlo: rlo, rhi: row, bound: acc})
			rlo = row + 1
			acc = 0
		}
	}
	var wg sync.WaitGroup
	for i := range shards {
		s := &shards[i]
		if len(preds) > 0 {
			s.tally.eval = make([]int64, len(preds))
			s.tally.decisive = make([]int64, len(preds))
		}
		wg.Add(1)
		// Probe-shard boundary: each shard forks the canceler (its tick
		// counter is unsynchronized) and polls it per grid row.
		go func(cn *canceler) {
			defer wg.Done()
			ids := make([]int, 0, s.bound)
			s.ids = ix.collectRows(cols, r, preds, pi, skip, s.rlo, s.rhi, c0, c1, r0, r1, &s.tally, &s.st, ids, cn)
		}(cn.fork())
	}
	wg.Wait()
	total := 0
	for i := range shards {
		s := &shards[i]
		total += len(s.ids)
		st.CellsPruned += s.st.CellsPruned
		st.CellsBulk += s.st.CellsBulk
		st.RowsExamined += s.st.RowsExamined
		st.BatchedRows += s.st.BatchedRows
		st.ProbeShards++
		for k := range preds {
			tally.eval[k] += s.tally.eval[k]
			tally.decisive[k] += s.tally.decisive[k]
		}
	}
	ids := make([]int, 0, total)
	for i := range shards {
		ids = append(ids, shards[i].ids...)
	}
	return ids
}

// collectRows is the per-shard body of collectCells: it gathers grid
// rows rlo..rhi of the touched cell range, where r0/r1/c0/c1 describe
// the full touched range (the strict-interior test for geometric span
// coverage is relative to the whole probe, not the shard).
func (ix *rectIndex) collectRows(cols [][]float64, r geom.Rect, preds []Pred, pi []int, skip []bool, rlo, rhi, c0, c1, r0, r1 int, tally *zoneTally, st *ScanStats, ids []int, cn *canceler) []int {
	xs, ys := cols[ix.xi], cols[ix.yi]
	cells := ix.nx * ix.ny
	// residual collects, per cell, the predicates the zone map could not
	// settle; the buffers (and the selection vector) are reused across
	// cells.
	residual := make([]Pred, 0, len(preds))
	residualCols := make([]int, 0, len(preds))
	var sel []int32
	for row := rlo; row <= rhi; row++ {
		// One counter-gated poll per touched grid row; a canceled probe
		// returns partial ids the entry point will discard.
		if cn.stop() {
			return ids
		}
		base := row * ix.nx
		// Geometric coverage of this grid row's strict interior: cells
		// c0+1..c1-1 emitted without the per-point rectangle test when
		// their combined rectangle is contained in r.
		spanCovered := false
		if row > r0 && row < r1 && c0+1 <= c1-1 {
			span := geom.Rect{
				MinX: ix.bounds.MinX + float64(c0+1)*ix.cellW,
				MinY: ix.bounds.MinY + float64(row)*ix.cellH,
				MaxX: ix.bounds.MinX + float64(c1)*ix.cellW,
				MaxY: ix.bounds.MinY + float64(row+1)*ix.cellH,
			}
			spanCovered = r.ContainsRect(span)
		}
		for c := c0; c <= c1; c++ {
			lo, hi := ix.cellOff[base+c], ix.cellOff[base+c+1]
			if lo == hi {
				continue
			}
			pruned := false
			residual = residual[:0]
			residualCols = residualCols[:0]
			for k := range preds {
				p := preds[k]
				// The adaptive planner proved this column's zones
				// useless here; evaluate the predicate per row without
				// loading its zone entries.
				if skip != nil && skip[k] {
					residual = append(residual, p)
					residualCols = append(residualCols, pi[k])
					continue
				}
				zi := pi[k]*cells + base + c
				tally.eval[k]++
				// Prune: every non-NaN row is outside [Min, Max], and no
				// NaN row (which would match anything) is present.
				if !ix.znan[zi] && (ix.zmax[zi] < p.Min || ix.zmin[zi] > p.Max) {
					tally.decisive[k]++
					pruned = true
					break
				}
				// All-pass: the cell's whole value range sits inside
				// [Min, Max] (NaN rows pass any range predicate, so they
				// do not disturb this). Anything else is inconclusive
				// and must be tested per row.
				if !(ix.zmin[zi] >= p.Min && ix.zmax[zi] <= p.Max) {
					residual = append(residual, p)
					residualCols = append(residualCols, pi[k])
				} else {
					tally.decisive[k]++
				}
			}
			if pruned {
				st.CellsPruned++
				continue
			}
			needRect := !(spanCovered && c > c0 && c < c1)
			run := ix.rowID[lo:hi]
			if !needRect && len(residual) == 0 {
				st.CellsBulk++
				ids = appendSel(ids, run)
				continue
			}
			if len(run) >= kernelMinRows && !forceScalarKernels {
				// Batched cell: seed a selection from the run — fused
				// rectangle test for the boundary ring, first residual
				// predicate for zone-inconclusive interior cells — then
				// refine in place with the remaining predicates.
				if cap(sel) < len(run) {
					sel = make([]int32, len(run))
				}
				s := sel[:len(run)]
				var k int
				ri := 0
				if needRect {
					k = selRectGather(s, run, xs, ys, r)
				} else {
					k = selGather(s, run, cols[residualCols[0]], residual[0].Min, residual[0].Max)
					ri = 1
				}
				for ; ri < len(residual) && k > 0; ri++ {
					k = selRefine(s[:k], cols[residualCols[ri]], residual[ri].Min, residual[ri].Max)
				}
				st.RowsExamined += len(run)
				st.BatchedRows += len(run)
				ids = appendSel(ids, s[:k])
				continue
			}
			if len(residual) == 1 {
				// The dominant filtered-probe case (one zone-
				// inconclusive predicate): hoist the column and bounds
				// out of the per-row loop.
				rc := cols[residualCols[0]]
				pmin, pmax := residual[0].Min, residual[0].Max
				for _, id := range ix.rowID[lo:hi] {
					st.RowsExamined++
					if needRect && !inRect(xs[id], ys[id], r) {
						continue
					}
					if v := rc[id]; v < pmin || v > pmax {
						continue
					}
					ids = append(ids, int(id))
				}
				continue
			}
			for _, id := range ix.rowID[lo:hi] {
				st.RowsExamined++
				if needRect && !inRect(xs[id], ys[id], r) {
					continue
				}
				if matchPreds(cols, residualCols, residual, int(id)) {
					ids = append(ids, int(id))
				}
			}
		}
	}
	return ids
}

// coversAll reports whether r contains every indexed row trivially — the
// full-extent fast path: the caller can answer with a dense range and
// never touch per-row data. Non-finite rows sit outside the bounds, so
// their presence disables the shortcut.
func (ix *rectIndex) coversAll(r geom.Rect) bool {
	return ix.n > 0 && len(ix.extra) == 0 && r.ContainsRect(ix.bounds)
}

// stats accumulation for /metrics.
func (ix *rectIndex) cells() int {
	return ix.nx * ix.ny
}

func (ix *rectIndex) extraCount() int         { return len(ix.extra) }
func (ix *rectIndex) backend() string         { return BackendGrid }
func (ix *rectIndex) occ() (float64, float64) { return ix.occP99, ix.occSkew }
func (ix *rectIndex) deltaIdx() *deltaIndex   { return ix.delta }
