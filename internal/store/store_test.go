package store

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/geom"
)

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("", "x"); err == nil {
		t.Error("empty name: want error")
	}
	if _, err := NewTable("t"); err == nil {
		t.Error("no columns: want error")
	}
	if _, err := NewTable("t", "x", "x"); err == nil {
		t.Error("duplicate column: want error")
	}
	if _, err := NewTable("t", "x", ""); err == nil {
		t.Error("empty column name: want error")
	}
}

func TestAppendAndColumn(t *testing.T) {
	tb, err := NewTable("pts", "x", "y", "alt")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(4, 5, 6); err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(1, 2); err == nil {
		t.Error("wrong arity: want error")
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	alt, err := tb.Column("alt")
	if err != nil {
		t.Fatal(err)
	}
	if alt[0] != 3 || alt[1] != 6 {
		t.Errorf("alt = %v", alt)
	}
	if _, err := tb.Column("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing column error = %v", err)
	}
	cols := tb.Columns()
	if len(cols) != 3 || cols[0] != "x" || cols[2] != "alt" {
		t.Errorf("Columns = %v", cols)
	}
}

func TestBulkLoad(t *testing.T) {
	tb, _ := NewTable("t", "x", "y")
	if err := tb.BulkLoad([]float64{1, 2, 3}, []float64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 3 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	if err := tb.BulkLoad([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("ragged columns: want error")
	}
	if err := tb.BulkLoad([]float64{1}); err == nil {
		t.Error("wrong column count: want error")
	}
	// BulkLoad replaces contents.
	if err := tb.BulkLoad([]float64{9}, []float64{9}); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1 {
		t.Errorf("NumRows after reload = %d", tb.NumRows())
	}
}

func TestScanPredicates(t *testing.T) {
	tb, _ := NewTable("t", "x", "y")
	if err := tb.BulkLoad(
		[]float64{0, 1, 2, 3, 4, 5},
		[]float64{5, 4, 3, 2, 1, 0},
	); err != nil {
		t.Fatal(err)
	}
	rows, err := tb.Scan([]Pred{{Column: "x", Min: 1, Max: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if ids := rows.Indices(); len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Errorf("rows = %v", ids)
	}
	// Conjunction.
	rows, err = tb.Scan([]Pred{
		{Column: "x", Min: 1, Max: 4},
		{Column: "y", Min: 2, Max: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ids := rows.Indices(); len(ids) != 2 || ids[0] != 2 || ids[1] != 3 {
		t.Errorf("conjunction rows = %v", ids)
	}
	// No predicates = all rows, as a dense range (no ids materialized).
	rows, err = tb.Scan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 6 {
		t.Errorf("all rows = %v", rows.Indices())
	}
	if start, end, ok := rows.AsRange(); !ok || start != 0 || end != 6 {
		t.Errorf("predicate-free scan = range [%d,%d) ok=%v, want dense [0,6)", start, end, ok)
	}
	// No matches is the empty RowSet, and the empty RowSet projects to
	// nothing (the old nil-means-all-rows ambiguity is gone).
	rows, err = tb.Scan([]Pred{{Column: "x", Min: 100, Max: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if !rows.IsEmpty() {
		t.Errorf("no-match scan = %v, want empty", rows.Indices())
	}
	pts, err := tb.Points("x", "y", rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 0 {
		t.Errorf("no-match projection returned %d points", len(pts))
	}
	if _, err := tb.Scan([]Pred{{Column: "zzz"}}); err == nil {
		t.Error("bad predicate column: want error")
	}
}

func TestPointsAndGather(t *testing.T) {
	tb, _ := NewTable("t", "x", "y", "v")
	if err := tb.BulkLoad([]float64{1, 2}, []float64{3, 4}, []float64{10, 20}); err != nil {
		t.Fatal(err)
	}
	pts, err := tb.Points("x", "y", All)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || !pts[1].Equal(geom.Pt(2, 4)) {
		t.Errorf("pts = %v", pts)
	}
	pts, err = tb.Points("x", "y", RowIndices([]int{1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || !pts[0].Equal(geom.Pt(2, 4)) {
		t.Errorf("subset pts = %v", pts)
	}
	if _, err := tb.Points("x", "y", RowIndices([]int{5})); err == nil {
		t.Error("row out of range: want error")
	}
	if _, err := tb.Points("x", "y", RowRange(0, 3)); err == nil {
		t.Error("dense range past the end: want error")
	}
	// RowIndices sorts, so Gather returns values in row order.
	vals, err := tb.Gather("v", RowIndices([]int{1, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 10 || vals[1] != 20 {
		t.Errorf("gather = %v", vals)
	}
	if _, err := tb.Gather("v", RowIndices([]int{-1})); err == nil {
		t.Error("negative row: want error")
	}
	vals, err = tb.Gather("v", RowRange(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0] != 20 {
		t.Errorf("dense gather = %v", vals)
	}
}

func TestStoreCatalog(t *testing.T) {
	s := New()
	if _, err := s.CreateTable("base", "x", "y"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("base", "x"); err == nil {
		t.Error("duplicate table: want error")
	}
	if _, err := s.Table("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing table error = %v", err)
	}
	for _, name := range []string{"s1", "s2", "s3"} {
		if _, err := s.CreateTable(name, "x", "y"); err != nil {
			t.Fatal(err)
		}
	}
	// Register out of size order; SamplesOf must sort ascending.
	for _, m := range []SampleMeta{
		{Table: "s2", Source: "base", Method: "vas", XCol: "x", YCol: "y", Size: 1000},
		{Table: "s1", Source: "base", Method: "vas", XCol: "x", YCol: "y", Size: 10},
		{Table: "s3", Source: "base", Method: "vas", XCol: "x", YCol: "y", Size: 100000},
	} {
		if err := s.RegisterSample(m); err != nil {
			t.Fatal(err)
		}
	}
	metas := s.SamplesOf("base")
	if len(metas) != 3 || metas[0].Size != 10 || metas[2].Size != 100000 {
		t.Errorf("SamplesOf = %+v", metas)
	}
	// Registration validation.
	if err := s.RegisterSample(SampleMeta{Table: "ghost", Source: "base", Size: 5}); err == nil {
		t.Error("missing sample table: want error")
	}
	if err := s.RegisterSample(SampleMeta{Table: "s1", Source: "ghost", Size: 5}); err == nil {
		t.Error("missing source: want error")
	}
	if err := s.RegisterSample(SampleMeta{Table: "s1", Source: "base", Size: 0}); err == nil {
		t.Error("zero size: want error")
	}
	names := s.TableNames()
	if len(names) != 4 || names[0] != "base" {
		t.Errorf("TableNames = %v", names)
	}
}

func TestDropTable(t *testing.T) {
	s := New()
	s.CreateTable("base", "x", "y")
	s.CreateTable("samp", "x", "y")
	s.RegisterSample(SampleMeta{Table: "samp", Source: "base", Method: "vas", Size: 10})
	// Dropping the sample table removes its catalog entry.
	if err := s.DropTable("samp"); err != nil {
		t.Fatal(err)
	}
	if got := s.SamplesOf("base"); len(got) != 0 {
		t.Errorf("sample meta survived drop: %+v", got)
	}
	if err := s.DropTable("samp"); err == nil {
		t.Error("double drop: want error")
	}
	// Dropping the source removes its sample list.
	s.CreateTable("samp2", "x", "y")
	s.RegisterSample(SampleMeta{Table: "samp2", Source: "base", Method: "vas", Size: 10})
	if err := s.DropTable("base"); err != nil {
		t.Fatal(err)
	}
	if got := s.SamplesOf("base"); len(got) != 0 {
		t.Error("source drop left sample metadata")
	}
}

func TestPublishSampleReplacesAtomically(t *testing.T) {
	s := New()
	base, _ := s.CreateTable("base", "x", "y")
	if err := base.BulkLoad([]float64{0, 10}, []float64{0, 10}); err != nil {
		t.Fatal(err)
	}
	meta := SampleMeta{Table: "s", Source: "base", Method: "vas", XCol: "x", YCol: "y", Size: 1}
	t1, _ := NewTable("s", "x", "y")
	t1.BulkLoad([]float64{1}, []float64{1})
	if err := s.PublishSample(t1, meta); err != nil {
		t.Fatal(err)
	}
	// Replace with a differently-shaped table under the same name: one
	// catalog entry, the new table served.
	t2, _ := NewTable("s", "x", "y", "density")
	t2.BulkLoad([]float64{2, 3}, []float64{2, 3}, []float64{1, 1})
	meta.Size = 2
	meta.HasDensity = true
	if err := s.PublishSample(t2, meta); err != nil {
		t.Fatal(err)
	}
	metas := s.SamplesOf("base")
	if len(metas) != 1 || metas[0].Size != 2 || !metas[0].HasDensity {
		t.Fatalf("catalog after replace = %+v", metas)
	}
	if got, _ := s.Table("s"); got != t2 {
		t.Error("lookup does not serve the replacement table")
	}
	// Validation.
	if err := s.PublishSample(nil, meta); err == nil {
		t.Error("nil table: want error")
	}
	if err := s.PublishSample(t2, SampleMeta{Table: "other", Source: "base", Size: 2}); err == nil {
		t.Error("name mismatch: want error")
	}
	if err := s.PublishSample(t2, SampleMeta{Table: "s", Source: "ghost", Size: 2}); err == nil {
		t.Error("missing source: want error")
	}
	if err := s.PublishSample(t2, meta); err == nil {
		t.Error("re-publishing the already-registered table: want error")
	}
	if err := s.PublishSample(t1, SampleMeta{Table: "s", Source: "base", Size: 0}); err == nil {
		t.Error("non-positive size: want error")
	}
}

func TestBounds(t *testing.T) {
	tb, _ := NewTable("t", "x", "y")
	if b, err := tb.Bounds("x", "y"); err != nil || !b.IsEmpty() {
		t.Errorf("empty table bounds = %v, err %v", b, err)
	}
	tb.BulkLoad([]float64{-2, 5, 1}, []float64{7, -3, 0})
	b, err := tb.Bounds("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	want := geom.Rect{MinX: -2, MinY: -3, MaxX: 5, MaxY: 7}
	if b != want {
		t.Errorf("bounds = %v, want %v", b, want)
	}
	if _, err := tb.Bounds("x", "zzz"); err == nil {
		t.Error("unknown column: want error")
	}
}

// TestTableScanVsBulkLoadRace locks down the snapshot semantics: scans
// racing reloads must observe either the old contents or the new, never a
// mix. Run with -race.
func TestTableScanVsBulkLoadRace(t *testing.T) {
	tb, _ := NewTable("t", "x", "y")
	load := func(v float64, n int) {
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = v
			ys[i] = v
		}
		if err := tb.BulkLoad(xs, ys); err != nil {
			t.Error(err)
		}
	}
	load(1, 500)

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() { // writer: alternate between two generations of data
		defer close(writerDone)
		for gen := 0; ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			if gen%2 == 0 {
				load(2, 300) // shrink
			} else {
				load(1, 500) // grow back
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() { // readers: every snapshot must be internally consistent
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				pts, err := tb.Points("x", "y", All)
				if err != nil {
					t.Error(err)
					return
				}
				if len(pts) != 300 && len(pts) != 500 {
					t.Errorf("torn read: %d points", len(pts))
					return
				}
				want := 1.0
				if len(pts) == 300 {
					want = 2.0
				}
				for _, p := range pts {
					if p.X != want || p.Y != want {
						t.Errorf("torn read: point %v in a %d-row generation", p, len(pts))
						return
					}
				}
				rows, err := tb.Scan([]Pred{{Column: "x", Min: 0, Max: 10}})
				if err != nil {
					t.Error(err)
					return
				}
				if rows.Len() != 300 && rows.Len() != 500 {
					t.Errorf("torn scan: %d rows", rows.Len())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-writerDone
}

func TestStoreConcurrentReads(t *testing.T) {
	s := New()
	tb, _ := s.CreateTable("base", "x", "y")
	tb.BulkLoad([]float64{1, 2, 3}, []float64{4, 5, 6})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := s.Table("base"); err != nil {
					t.Error(err)
					return
				}
				s.TableNames()
				s.SamplesOf("base")
			}
		}()
	}
	wg.Wait()
}
