package store

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/geom"
)

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("", "x"); err == nil {
		t.Error("empty name: want error")
	}
	if _, err := NewTable("t"); err == nil {
		t.Error("no columns: want error")
	}
	if _, err := NewTable("t", "x", "x"); err == nil {
		t.Error("duplicate column: want error")
	}
	if _, err := NewTable("t", "x", ""); err == nil {
		t.Error("empty column name: want error")
	}
}

func TestAppendAndColumn(t *testing.T) {
	tb, err := NewTable("pts", "x", "y", "alt")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(4, 5, 6); err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(1, 2); err == nil {
		t.Error("wrong arity: want error")
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	alt, err := tb.Column("alt")
	if err != nil {
		t.Fatal(err)
	}
	if alt[0] != 3 || alt[1] != 6 {
		t.Errorf("alt = %v", alt)
	}
	if _, err := tb.Column("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing column error = %v", err)
	}
	cols := tb.Columns()
	if len(cols) != 3 || cols[0] != "x" || cols[2] != "alt" {
		t.Errorf("Columns = %v", cols)
	}
}

func TestBulkLoad(t *testing.T) {
	tb, _ := NewTable("t", "x", "y")
	if err := tb.BulkLoad([]float64{1, 2, 3}, []float64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 3 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	if err := tb.BulkLoad([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("ragged columns: want error")
	}
	if err := tb.BulkLoad([]float64{1}); err == nil {
		t.Error("wrong column count: want error")
	}
	// BulkLoad replaces contents.
	if err := tb.BulkLoad([]float64{9}, []float64{9}); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1 {
		t.Errorf("NumRows after reload = %d", tb.NumRows())
	}
}

func TestScanPredicates(t *testing.T) {
	tb, _ := NewTable("t", "x", "y")
	if err := tb.BulkLoad(
		[]float64{0, 1, 2, 3, 4, 5},
		[]float64{5, 4, 3, 2, 1, 0},
	); err != nil {
		t.Fatal(err)
	}
	rows, err := tb.Scan([]Pred{{Column: "x", Min: 1, Max: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0] != 1 || rows[2] != 3 {
		t.Errorf("rows = %v", rows)
	}
	// Conjunction.
	rows, err = tb.Scan([]Pred{
		{Column: "x", Min: 1, Max: 4},
		{Column: "y", Min: 2, Max: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0] != 2 || rows[1] != 3 {
		t.Errorf("conjunction rows = %v", rows)
	}
	// No predicates = all rows.
	rows, err = tb.Scan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Errorf("all rows = %v", rows)
	}
	// No matches must be a non-nil empty slice: Points/Gather interpret
	// nil rows as "all rows", so a nil miss result would project the
	// whole table.
	rows, err = tb.Scan([]Pred{{Column: "x", Min: 100, Max: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if rows == nil || len(rows) != 0 {
		t.Errorf("no-match scan = %#v, want non-nil empty", rows)
	}
	pts, err := tb.Points("x", "y", rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 0 {
		t.Errorf("no-match projection returned %d points", len(pts))
	}
	if _, err := tb.Scan([]Pred{{Column: "zzz"}}); err == nil {
		t.Error("bad predicate column: want error")
	}
}

func TestPointsAndGather(t *testing.T) {
	tb, _ := NewTable("t", "x", "y", "v")
	if err := tb.BulkLoad([]float64{1, 2}, []float64{3, 4}, []float64{10, 20}); err != nil {
		t.Fatal(err)
	}
	pts, err := tb.Points("x", "y", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || !pts[1].Equal(geom.Pt(2, 4)) {
		t.Errorf("pts = %v", pts)
	}
	pts, err = tb.Points("x", "y", []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || !pts[0].Equal(geom.Pt(2, 4)) {
		t.Errorf("subset pts = %v", pts)
	}
	if _, err := tb.Points("x", "y", []int{5}); err == nil {
		t.Error("row out of range: want error")
	}
	vals, err := tb.Gather("v", []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 20 || vals[1] != 10 {
		t.Errorf("gather = %v", vals)
	}
	if _, err := tb.Gather("v", []int{-1}); err == nil {
		t.Error("negative row: want error")
	}
}

func TestStoreCatalog(t *testing.T) {
	s := New()
	if _, err := s.CreateTable("base", "x", "y"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("base", "x"); err == nil {
		t.Error("duplicate table: want error")
	}
	if _, err := s.Table("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing table error = %v", err)
	}
	for _, name := range []string{"s1", "s2", "s3"} {
		if _, err := s.CreateTable(name, "x", "y"); err != nil {
			t.Fatal(err)
		}
	}
	// Register out of size order; SamplesOf must sort ascending.
	for _, m := range []SampleMeta{
		{Table: "s2", Source: "base", Method: "vas", XCol: "x", YCol: "y", Size: 1000},
		{Table: "s1", Source: "base", Method: "vas", XCol: "x", YCol: "y", Size: 10},
		{Table: "s3", Source: "base", Method: "vas", XCol: "x", YCol: "y", Size: 100000},
	} {
		if err := s.RegisterSample(m); err != nil {
			t.Fatal(err)
		}
	}
	metas := s.SamplesOf("base")
	if len(metas) != 3 || metas[0].Size != 10 || metas[2].Size != 100000 {
		t.Errorf("SamplesOf = %+v", metas)
	}
	// Registration validation.
	if err := s.RegisterSample(SampleMeta{Table: "ghost", Source: "base", Size: 5}); err == nil {
		t.Error("missing sample table: want error")
	}
	if err := s.RegisterSample(SampleMeta{Table: "s1", Source: "ghost", Size: 5}); err == nil {
		t.Error("missing source: want error")
	}
	if err := s.RegisterSample(SampleMeta{Table: "s1", Source: "base", Size: 0}); err == nil {
		t.Error("zero size: want error")
	}
	names := s.TableNames()
	if len(names) != 4 || names[0] != "base" {
		t.Errorf("TableNames = %v", names)
	}
}

func TestDropTable(t *testing.T) {
	s := New()
	s.CreateTable("base", "x", "y")
	s.CreateTable("samp", "x", "y")
	s.RegisterSample(SampleMeta{Table: "samp", Source: "base", Method: "vas", Size: 10})
	// Dropping the sample table removes its catalog entry.
	if err := s.DropTable("samp"); err != nil {
		t.Fatal(err)
	}
	if got := s.SamplesOf("base"); len(got) != 0 {
		t.Errorf("sample meta survived drop: %+v", got)
	}
	if err := s.DropTable("samp"); err == nil {
		t.Error("double drop: want error")
	}
	// Dropping the source removes its sample list.
	s.CreateTable("samp2", "x", "y")
	s.RegisterSample(SampleMeta{Table: "samp2", Source: "base", Method: "vas", Size: 10})
	if err := s.DropTable("base"); err != nil {
		t.Fatal(err)
	}
	if got := s.SamplesOf("base"); len(got) != 0 {
		t.Error("source drop left sample metadata")
	}
}

func TestBounds(t *testing.T) {
	tb, _ := NewTable("t", "x", "y")
	if b, err := tb.Bounds("x", "y"); err != nil || !b.IsEmpty() {
		t.Errorf("empty table bounds = %v, err %v", b, err)
	}
	tb.BulkLoad([]float64{-2, 5, 1}, []float64{7, -3, 0})
	b, err := tb.Bounds("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	want := geom.Rect{MinX: -2, MinY: -3, MaxX: 5, MaxY: 7}
	if b != want {
		t.Errorf("bounds = %v, want %v", b, want)
	}
	if _, err := tb.Bounds("x", "zzz"); err == nil {
		t.Error("unknown column: want error")
	}
}

// TestTableScanVsBulkLoadRace locks down the snapshot semantics: scans
// racing reloads must observe either the old contents or the new, never a
// mix. Run with -race.
func TestTableScanVsBulkLoadRace(t *testing.T) {
	tb, _ := NewTable("t", "x", "y")
	load := func(v float64, n int) {
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = v
			ys[i] = v
		}
		if err := tb.BulkLoad(xs, ys); err != nil {
			t.Error(err)
		}
	}
	load(1, 500)

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() { // writer: alternate between two generations of data
		defer close(writerDone)
		for gen := 0; ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			if gen%2 == 0 {
				load(2, 300) // shrink
			} else {
				load(1, 500) // grow back
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() { // readers: every snapshot must be internally consistent
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				pts, err := tb.Points("x", "y", nil)
				if err != nil {
					t.Error(err)
					return
				}
				if len(pts) != 300 && len(pts) != 500 {
					t.Errorf("torn read: %d points", len(pts))
					return
				}
				want := 1.0
				if len(pts) == 300 {
					want = 2.0
				}
				for _, p := range pts {
					if p.X != want || p.Y != want {
						t.Errorf("torn read: point %v in a %d-row generation", p, len(pts))
						return
					}
				}
				rows, err := tb.Scan([]Pred{{Column: "x", Min: 0, Max: 10}})
				if err != nil {
					t.Error(err)
					return
				}
				if len(rows) != 300 && len(rows) != 500 {
					t.Errorf("torn scan: %d rows", len(rows))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-writerDone
}

func TestStoreConcurrentReads(t *testing.T) {
	s := New()
	tb, _ := s.CreateTable("base", "x", "y")
	tb.BulkLoad([]float64{1, 2, 3}, []float64{4, 5, 6})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := s.Table("base"); err != nil {
					t.Error(err)
					return
				}
				s.TableNames()
				s.SamplesOf("base")
			}
		}()
	}
	wg.Wait()
}
