package store

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// assertScanRectEquiv checks ScanRect against the linear predicate scan
// on one rectangle: same rows, same order. The zero Rect is the one
// deliberate divergence from the literal predicate translation — it
// means "no restriction", agreeing with Scan's empty predicate list.
func assertScanRectEquiv(t *testing.T, tb *Table, r geom.Rect, label string) {
	t.Helper()
	got, err := tb.ScanRect("x", "y", r)
	if err != nil {
		t.Fatalf("%s: ScanRect: %v", label, err)
	}
	preds := []Pred{
		{Column: "x", Min: r.MinX, Max: r.MaxX},
		{Column: "y", Min: r.MinY, Max: r.MaxY},
	}
	if r == (geom.Rect{}) {
		preds = nil
	}
	want, err := tb.Scan(preds)
	if err != nil {
		t.Fatalf("%s: Scan: %v", label, err)
	}
	g, w := got.Indices(), want.Indices()
	if len(g) != len(w) {
		t.Fatalf("%s over %v: ScanRect %d rows, linear %d rows", label, r, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s over %v: row %d: ScanRect %d, linear %d", label, r, i, g[i], w[i])
		}
	}
}

// randomPoints draws n points from a mix of a uniform cloud and a few
// tight clusters, so grid cells have very uneven occupancy.
func randomPoints(rng *rand.Rand, n int) ([]float64, []float64) {
	xs := make([]float64, n)
	ys := make([]float64, n)
	cx, cy := rng.Float64()*100, rng.Float64()*100
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			xs[i] = cx + rng.NormFloat64()
			ys[i] = cy + rng.NormFloat64()
		} else {
			xs[i] = rng.Float64() * 100
			ys[i] = rng.Float64() * 100
		}
	}
	return xs, ys
}

// TestScanRectMatchesLinearScan is the property test of the read-path
// refactor: on random tables and viewports — including degenerate,
// empty, boundary-aligned, and out-of-bounds rectangles — an index probe
// must return exactly the rows of the linear predicate scan, in the same
// order, for indexed and unindexed tables alike.
func TestScanRectMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(4000)
		if trial == 0 {
			n = 0 // empty table
		}
		xs, ys := randomPoints(rng, n)
		// Every third trial carries dirty rows: NaN/±Inf coordinates are
		// excluded from the grid and filtered per probe.
		if trial%3 == 1 {
			for i := 0; i < n/50+1 && i < n; i++ {
				j := rng.Intn(n)
				switch i % 3 {
				case 0:
					xs[j] = math.NaN()
				case 1:
					ys[j] = math.Inf(1)
				default:
					xs[j], ys[j] = math.Inf(-1), math.NaN()
				}
			}
		}
		tb, err := NewTable("t", "x", "y")
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.BulkLoad(xs, ys); err != nil {
			t.Fatal(err)
		}
		indexed := trial%2 == 0
		if indexed {
			if err := tb.IndexOn("x", "y"); err != nil {
				t.Fatal(err)
			}
		}
		label := "linear-fallback"
		if indexed {
			label = "indexed"
		}

		rects := []geom.Rect{
			{},                                   // zero Rect: "no restriction", every row incl. non-finite
			{MinX: 5, MinY: 5, MaxX: 4, MaxY: 4}, // empty (inverted)
			{MinX: -1e9, MinY: -1e9, MaxX: 1e9, MaxY: 1e9}, // covers everything
			{MinX: 200, MinY: 200, MaxX: 300, MaxY: 300},   // fully outside the data
			{MinX: -50, MinY: 20, MaxX: 30, MaxY: 400},     // partially outside
			// Extreme corners: network viewports can carry values whose
			// cell quotient overflows a float→int conversion; these must
			// neither panic nor drop rows (regression for the clampCell
			// overflow).
			{MinX: 50, MinY: 20, MaxX: 1e300, MaxY: 60},
			{MinX: 20, MinY: 50, MaxX: 60, MaxY: 1e300},
			{MinX: -1e300, MinY: -1e300, MaxX: 1e300, MaxY: 1e300},
			{MinX: math.Inf(-1), MinY: 30, MaxX: math.Inf(1), MaxY: 70},
			// NaN bounds exclude nothing under predicate semantics (every
			// comparison is false); ScanRect must treat them as unbounded.
			{MinX: math.NaN(), MinY: 30, MaxX: 60, MaxY: math.NaN()},
			{MinX: math.NaN(), MinY: math.NaN(), MaxX: math.NaN(), MaxY: math.NaN()},
		}
		if n > 0 {
			b, err := tb.Bounds("x", "y")
			if err != nil {
				t.Fatal(err)
			}
			rects = append(rects,
				b, // exactly the data extent
				geom.Rect{MinX: b.MinX, MinY: b.MinY, MaxX: b.MinX, MaxY: b.MaxY}, // degenerate vertical line on the extent edge
				geom.Rect{MinX: xs[0], MinY: ys[0], MaxX: xs[0], MaxY: ys[0]},     // degenerate point on a data point
			)
			// Random sub-viewports, plus rects whose corners are data
			// points — boundary rows sit exactly on the inclusive edge.
			for q := 0; q < 12; q++ {
				var r geom.Rect
				if q%3 == 0 {
					i, j := rng.Intn(n), rng.Intn(n)
					r = geom.NewRect(geom.Pt(xs[i], ys[i]), geom.Pt(xs[j], ys[j]))
				} else {
					r = geom.NewRect(
						geom.Pt(rng.Float64()*120-10, rng.Float64()*120-10),
						geom.Pt(rng.Float64()*120-10, rng.Float64()*120-10),
					)
				}
				rects = append(rects, r)
			}
		}
		for _, r := range rects {
			assertScanRectEquiv(t, tb, r, label)
		}

		// Rows appended after the index build take the unindexed tail
		// path and must still agree with the linear scan.
		if indexed && n > 0 {
			for i := 0; i < 50; i++ {
				if err := tb.Append(rng.Float64()*150-25, rng.Float64()*150-25); err != nil {
					t.Fatal(err)
				}
			}
			for _, r := range rects {
				assertScanRectEquiv(t, tb, r, label+"+appended-tail")
			}
			// A reload rebuilds the index against the new generation.
			xs2, ys2 := randomPoints(rng, 500)
			if err := tb.BulkLoad(xs2, ys2); err != nil {
				t.Fatal(err)
			}
			for _, r := range rects {
				assertScanRectEquiv(t, tb, r, label+"+reloaded")
			}
		}
	}
}

// assertFilteredEquiv checks ScanRectWhere against the linear predicate
// scan — Scan with the rectangle folded into the predicate list is the
// reference implementation, since the two are documented row-for-row
// equivalent. The result is additionally round-tripped through each
// RowSet representation (ids, bitmap, and the auto-chosen one) to pin
// that iteration order, length, and membership agree across all three.
func assertFilteredEquiv(t *testing.T, tb *Table, r geom.Rect, preds []Pred, label string) {
	t.Helper()
	got, st, err := tb.ScanRectWhere("x", "y", r, preds)
	if err != nil {
		t.Fatalf("%s: ScanRectWhere: %v", label, err)
	}
	var ref []Pred
	if r != (geom.Rect{}) {
		ref = append(ref,
			Pred{Column: "x", Min: r.MinX, Max: r.MaxX},
			Pred{Column: "y", Min: r.MinY, Max: r.MaxY},
		)
	}
	ref = append(ref, preds...)
	want, err := tb.Scan(ref)
	if err != nil {
		t.Fatalf("%s: Scan: %v", label, err)
	}
	g, w := got.Indices(), want.Indices()
	if len(g) != len(w) {
		t.Fatalf("%s over %v preds %v: ScanRectWhere %d rows, linear %d rows (stats %+v)",
			label, r, preds, len(g), len(w), st)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s over %v preds %v: row %d: ScanRectWhere %d, linear %d",
				label, r, preds, i, g[i], w[i])
		}
	}
	if st.CellsPruned > st.CellsTouched {
		t.Fatalf("%s: pruned %d of %d touched cells", label, st.CellsPruned, st.CellsTouched)
	}
	// Representation round-trip: the same row set spelled as explicit
	// ids, as a bitmap, and as whatever the chooser picked must agree on
	// every accessor.
	reps := []RowSet{got, RowIndices(append([]int(nil), w...))}
	if len(w) > 0 {
		reps = append(reps, RowSet{bm: bitmapFromSorted(w), end: -1})
	}
	for ri, rep := range reps {
		if rep.Len() != len(w) {
			t.Fatalf("%s rep %d: Len %d, want %d", label, ri, rep.Len(), len(w))
		}
		i := 0
		rep.ForEach(func(row int) {
			if i < len(w) && row != w[i] {
				t.Fatalf("%s rep %d: ForEach[%d] = %d, want %d", label, ri, i, row, w[i])
			}
			i++
		})
		if i != len(w) {
			t.Fatalf("%s rep %d: ForEach visited %d rows, want %d", label, ri, i, len(w))
		}
		if len(w) > 0 {
			if lo, _ := rep.Min(); lo != w[0] {
				t.Fatalf("%s rep %d: Min %d, want %d", label, ri, lo, w[0])
			}
			if hi, _ := rep.Max(); hi != w[len(w)-1] {
				t.Fatalf("%s rep %d: Max %d, want %d", label, ri, hi, w[len(w)-1])
			}
			if !rep.Contains(w[len(w)/2]) {
				t.Fatalf("%s rep %d: Contains(%d) = false", label, ri, w[len(w)/2])
			}
		}
	}
}

// TestScanRectFilteredMatchesLinearScan is the predicate-pushdown
// property test: on random 4-column tables — with NaN values injected
// into the filter columns as well as the coordinate pair — a filtered
// index probe must return exactly the rows of the linear predicate scan
// for random viewports × random predicate sets, across indexed and
// unindexed tables, appended tails, and all three RowSet
// representations.
func TestScanRectFilteredMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	randPred := func(col string, n int) Pred {
		switch rng.Intn(5) {
		case 0: // selective band
			lo := rng.Float64() * 100
			return Pred{Column: col, Min: lo, Max: lo + rng.Float64()*5}
		case 1: // wide band
			lo := rng.Float64()*100 - 20
			return Pred{Column: col, Min: lo, Max: lo + rng.Float64()*120}
		case 2: // half-open
			return Pred{Column: col, Min: rng.Float64() * 100, Max: math.Inf(1)}
		case 3: // NaN bound = unbounded on that side
			return Pred{Column: col, Min: math.NaN(), Max: rng.Float64() * 100}
		default: // empty (inverted): matches only NaN rows
			return Pred{Column: col, Min: 60, Max: 40}
		}
	}
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(3000)
		if trial == 0 {
			n = 0
		}
		xs, ys := randomPoints(rng, n)
		// Two attribute columns: a correlates with position (so zone
		// maps actually prune), b is independent noise.
		as := make([]float64, n)
		bs := make([]float64, n)
		for i := 0; i < n; i++ {
			as[i] = (xs[i]+ys[i])/2 + rng.NormFloat64()*3
			bs[i] = rng.Float64() * 100
		}
		// Dirty rows in every column on some trials.
		if trial%3 == 1 && n > 0 {
			for i := 0; i < n/40+1; i++ {
				switch j := rng.Intn(n); i % 4 {
				case 0:
					as[j] = math.NaN()
				case 1:
					bs[j] = math.NaN()
				case 2:
					as[j] = math.Inf(1 - 2*(j%2))
				default:
					xs[j] = math.NaN()
				}
			}
		}
		tb, err := NewTable("t", "x", "y", "a", "b")
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.BulkLoad(xs, ys, as, bs); err != nil {
			t.Fatal(err)
		}
		indexed := trial%2 == 0
		if indexed {
			if err := tb.IndexOn("x", "y"); err != nil {
				t.Fatal(err)
			}
		}
		label := "filtered-fallback"
		if indexed {
			label = "filtered-indexed"
		}
		rects := []geom.Rect{
			{}, // no viewport: pure attribute filtering over the grid
			{MinX: -1e9, MinY: -1e9, MaxX: 1e9, MaxY: 1e9},
			{MinX: 20, MinY: 20, MaxX: 70, MaxY: 70},
			{MinX: math.NaN(), MinY: 10, MaxX: 90, MaxY: math.NaN()},
		}
		for q := 0; q < 6; q++ {
			rects = append(rects, geom.NewRect(
				geom.Pt(rng.Float64()*120-10, rng.Float64()*120-10),
				geom.Pt(rng.Float64()*120-10, rng.Float64()*120-10),
			))
		}
		predSets := [][]Pred{
			nil,
			{randPred("a", n)},
			{randPred("a", n), randPred("b", n)},
			{randPred("a", n), randPred("b", n), randPred("x", n)},
			{{Column: "a", Min: math.NaN(), Max: math.NaN()}}, // fully unbounded
		}
		for _, r := range rects {
			for _, preds := range predSets {
				assertFilteredEquiv(t, tb, r, preds, label)
			}
		}
		// Appended tails are unindexed and must take the full-predicate
		// linear tail path.
		if indexed && n > 0 {
			for i := 0; i < 40; i++ {
				v := rng.Float64()*150 - 25
				if err := tb.Append(v, rng.Float64()*150-25, v+rng.NormFloat64(), rng.Float64()*100); err != nil {
					t.Fatal(err)
				}
			}
			for _, r := range rects {
				for _, preds := range predSets {
					assertFilteredEquiv(t, tb, r, preds, label+"+appended-tail")
				}
			}
		}
		// Unknown filter column errors.
		if _, _, err := tb.ScanRectWhere("x", "y", geom.Rect{MaxX: 1, MaxY: 1}, []Pred{{Column: "zzz"}}); err == nil {
			t.Fatal("unknown filter column: want error")
		}
	}
}

// TestZoneMapsPrune pins that zone maps actually prune: on a spatially
// correlated column, a selective filter must discard most touched cells
// without reading their rows, and the stats must say so.
func TestZoneMapsPrune(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 60_000
	xs := make([]float64, n)
	ys := make([]float64, n)
	ms := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ys[i] = rng.Float64() * 100
		ms[i] = xs[i] + ys[i] // perfectly correlated with position
	}
	tb, _ := NewTable("t", "x", "y", "m")
	if err := tb.BulkLoad(xs, ys, ms); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	// m in [0, 50] selects the lower-left triangle; cells in the upper
	// right half must be pruned without a row test.
	rows, st, err := tb.ScanRectWhere("x", "y", geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100},
		[]Pred{{Column: "m", Min: 0, Max: 50}})
	if err != nil {
		t.Fatal(err)
	}
	if !st.IndexProbe {
		t.Fatal("expected an index probe")
	}
	if st.CellsPruned == 0 || st.CellsPruned < st.CellsTouched/4 {
		t.Errorf("zone maps pruned %d of %d cells, want at least a quarter", st.CellsPruned, st.CellsTouched)
	}
	if st.CellsBulk == 0 {
		t.Errorf("no cell was bulk-emitted; deep-interior cells with m-range inside [0,50] should be")
	}
	if rows.IsEmpty() {
		t.Fatal("filter matched nothing")
	}
	// The same call without an index agrees (sanity anchor for the ratio).
	tb2, _ := NewTable("t2", "x", "y", "m")
	if err := tb2.BulkLoad(xs, ys, ms); err != nil {
		t.Fatal(err)
	}
	want, _, err := tb2.ScanRectWhere("x", "y", geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100},
		[]Pred{{Column: "m", Min: 0, Max: 50}})
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != want.Len() {
		t.Fatalf("indexed %d rows, fallback %d", rows.Len(), want.Len())
	}
}

// TestAllRowsConventionWithAppendedTail is the regression test for the
// Scan/ScanRect "all rows" agreement: with rows appended after the index
// build, Scan with an empty predicate list and ScanRect with the zero
// Rect must BOTH answer with the dense all-rows range — tail included —
// rather than one taking the indexed path (which would return ids and,
// before the fix, read the zero Rect as a point query at the origin).
func TestAllRowsConventionWithAppendedTail(t *testing.T) {
	tb, _ := NewTable("t", "x", "y")
	if err := tb.BulkLoad([]float64{0, 1, 2}, []float64{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	// Tail rows deliberately outside the indexed extent, plus one NaN.
	if err := tb.Append(500, -500); err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(math.NaN(), 3); err != nil {
		t.Fatal(err)
	}
	scan, err := tb.Scan(nil)
	if err != nil {
		t.Fatal(err)
	}
	rect, err := tb.ScanRect("x", "y", geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	for name, rows := range map[string]RowSet{"Scan(empty)": scan, "ScanRect(zero)": rect} {
		start, end, ok := rows.AsRange()
		if !ok || start != 0 || end != 5 {
			t.Errorf("%s = range[%d,%d) ok=%v, want the dense all-rows range [0,5) incl. the appended tail", name, start, end, ok)
		}
	}
	// The filtered spelling agrees too: zero Rect + no preds from
	// ScanRectWhere is the same fast path.
	where, _, err := tb.ScanRectWhere("x", "y", geom.Rect{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if start, end, ok := where.AsRange(); !ok || start != 0 || end != 5 {
		t.Errorf("ScanRectWhere(zero, nil) = range[%d,%d) ok=%v, want [0,5)", start, end, ok)
	}
}

func TestScanRectFullExtentIsDenseRange(t *testing.T) {
	tb, _ := NewTable("t", "x", "y")
	xs, ys := randomPoints(rand.New(rand.NewSource(3)), 1000)
	if err := tb.BulkLoad(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	b, err := tb.Bounds("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tb.ScanRect("x", "y", b)
	if err != nil {
		t.Fatal(err)
	}
	if start, end, ok := rows.AsRange(); !ok || start != 0 || end != 1000 {
		t.Errorf("extent probe = range[%d,%d) ok=%v, want dense [0,1000)", start, end, ok)
	}
}

// TestIndexOnRebuildAbsorbsAppends: re-calling IndexOn after appends
// rebuilds the index over the full table, restoring the dense-range
// full-extent answer (appended rows are otherwise a linear tail).
func TestIndexOnRebuildAbsorbsAppends(t *testing.T) {
	tb, _ := NewTable("t", "x", "y")
	if err := tb.BulkLoad([]float64{0, 1, 2}, []float64{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 10; i++ {
		if err := tb.Append(float64(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	big := geom.Rect{MinX: -1, MinY: -1, MaxX: 100, MaxY: 100}
	rows, err := tb.ScanRect("x", "y", big)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-rebuild the probe walks cells plus the appended tail; the
	// result happens to be the contiguous run [0, 10), which the
	// representation chooser collapses to a dense range.
	if rows.Len() != 10 {
		t.Fatalf("pre-rebuild probe found %d rows, want 10", rows.Len())
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	rows, err = tb.ScanRect("x", "y", big)
	if err != nil {
		t.Fatal(err)
	}
	if start, end, ok := rows.AsRange(); !ok || start != 0 || end != 10 {
		t.Errorf("post-rebuild probe = range[%d,%d) ok=%v, want dense [0,10)", start, end, ok)
	}
}

// TestScanRectNonFiniteCoordinates: NaN matches every range predicate in
// the linear scan and ±Inf defeats cell binning, so such rows are kept
// out of the grid (the index still serves the finite bulk) and filtered
// per probe; ScanRect must keep agreeing with Scan row for row.
func TestScanRectNonFiniteCoordinates(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	tb, _ := NewTable("t", "x", "y")
	if err := tb.BulkLoad(
		[]float64{0, 1, nan, 2, inf, 3},
		[]float64{0, 1, 2, nan, 3, -inf},
	); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	for _, r := range []geom.Rect{
		{MinX: 0.5, MinY: 0.5, MaxX: 2.5, MaxY: 2.5},
		{MinX: -10, MinY: -10, MaxX: 10, MaxY: 10},
		{},
	} {
		assertScanRectEquiv(t, tb, r, "non-finite")
	}
	// The NaN rows must be present in both paths (NaN compares false
	// against every bound, so range predicates never exclude it), and
	// dirty rows must not cost the finite bulk its index: the probe
	// counter, not the fallback counter, moves.
	rows, err := tb.ScanRect("x", "y", geom.Rect{MinX: 0.5, MinY: 0.5, MaxX: 2.5, MaxY: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if ids := rows.Indices(); len(ids) != 3 { // rows 1 (in rect), 2 and 3 (NaN)
		t.Errorf("non-finite viewport rows = %v, want [1 2 3]", ids)
	}
	if probes := tb.counters.indexProbes.Load(); probes == 0 {
		t.Error("dirty rows disabled the index entirely; want index probes with extras filtering")
	}

	// An all-non-finite table has nothing to bin: the pair stays
	// unindexed and ScanRect falls back.
	bad, _ := NewTable("bad", "x", "y")
	if err := bad.BulkLoad([]float64{nan, inf}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := bad.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	assertScanRectEquiv(t, bad, geom.Rect{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5}, "all-non-finite")
	if fallbacks := bad.counters.scanFallbacks.Load(); fallbacks == 0 {
		t.Error("all-non-finite table should scan via the fallback")
	}
}

// TestBoundsUnchangedByIndexing: Bounds must report the same extent
// whether it walks the columns or answers from the index — including
// ±Inf coordinates, which the index keeps out of its own extent.
func TestBoundsUnchangedByIndexing(t *testing.T) {
	tb, _ := NewTable("t", "x", "y")
	if err := tb.BulkLoad(
		[]float64{0, 1, math.Inf(1)},
		[]float64{0, 1, 5},
	); err != nil {
		t.Fatal(err)
	}
	before, err := tb.Bounds("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	after, err := tb.Bounds("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Errorf("Bounds changed across IndexOn: %v -> %v", before, after)
	}
	if !math.IsInf(after.MaxX, 1) || after.MaxY != 5 {
		t.Errorf("bounds = %v, want the Inf row folded in", after)
	}
}

func TestScanRectUnknownColumn(t *testing.T) {
	tb, _ := NewTable("t", "x", "y")
	if _, err := tb.ScanRect("x", "zzz", geom.Rect{MaxX: 1, MaxY: 1}); err == nil {
		t.Error("unknown column: want error")
	}
}

// TestFullExtentProjectionAllocations locks down the zero-allocation
// fast path: projecting every row through the All sentinel allocates
// only the output slice — no row ids are ever materialized.
func TestFullExtentProjectionAllocations(t *testing.T) {
	tb, _ := NewTable("t", "x", "y")
	xs, ys := randomPoints(rand.New(rand.NewSource(5)), 10_000)
	if err := tb.BulkLoad(xs, ys); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := tb.Points("x", "y", All); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("full-extent Points allocated %.0f objects per run, want 1 (the output slice)", allocs)
	}
}

// TestParallelScanMatchesSequential pushes a table past the parallel
// threshold so Scan takes the sharded path (on multi-core runners; a
// single-core box degrades to one shard) and checks it against the
// sequential kernel row for row.
func TestParallelScanMatchesSequential(t *testing.T) {
	n := parallelScanMinRows + parallelScanMinRows/2
	rng := rand.New(rand.NewSource(7))
	xs, ys := randomPoints(rng, n)
	tb, _ := NewTable("big", "x", "y")
	if err := tb.BulkLoad(xs, ys); err != nil {
		t.Fatal(err)
	}
	preds := []Pred{
		{Column: "x", Min: 20, Max: 60},
		{Column: "y", Min: 10, Max: 80},
	}
	got, err := tb.Scan(preds)
	if err != nil {
		t.Fatal(err)
	}
	d := tb.snapshot()
	want := scanRange([][]float64{d.cols[0], d.cols[1]}, preds, 0, d.n, nil, nil)
	g := got.Indices()
	if len(g) != len(want) {
		t.Fatalf("parallel scan %d rows, sequential %d", len(g), len(want))
	}
	for i := range g {
		if g[i] != want[i] {
			t.Fatalf("row %d: parallel %d, sequential %d", i, g[i], want[i])
		}
	}
	if len(g) == 0 {
		t.Fatal("test viewport matched nothing; widen it")
	}
}

func TestIndexStats(t *testing.T) {
	s := New()
	tb, err := s.CreateTable("base", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.BulkLoad([]float64{1, 2, 3}, []float64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if got := s.IndexStats(); got.Indexes != 0 || got.IndexedTables != 0 {
		t.Errorf("pre-index stats = %+v", got)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	probe := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	if _, err := tb.ScanRect("x", "y", probe); err != nil {
		t.Fatal(err)
	}
	// An unindexed pair falls back and is counted as such.
	if _, err := tb.ScanRect("y", "x", probe); err != nil {
		t.Fatal(err)
	}
	got := s.IndexStats()
	if got.IndexedTables != 1 || got.Indexes != 1 || got.IndexedRows != 3 {
		t.Errorf("stats = %+v", got)
	}
	if got.Probes != 1 || got.Fallbacks != 1 {
		t.Errorf("probes=%d fallbacks=%d, want 1 and 1", got.Probes, got.Fallbacks)
	}
	// Dropping the table must not decrease the usage totals: they are
	// exported as Prometheus counters, and a sample replacement drops and
	// recreates tables routinely.
	if err := s.DropTable("base"); err != nil {
		t.Fatal(err)
	}
	got = s.IndexStats()
	if got.Probes != 1 || got.Fallbacks != 1 {
		t.Errorf("post-drop probes=%d fallbacks=%d, want counters to survive the drop", got.Probes, got.Fallbacks)
	}
}
