package store

// Branch-free columnar batch kernels — the one home for every hot row
// loop on the read path (the proximity-function package formerly named
// internal/kernel now lives at internal/proximity).
//
// The scalar row loops this file replaces (matchPreds / scanRangeScalar)
// evaluate every predicate for one row before moving to the next: each
// comparison is a conditional branch whose outcome is data-dependent, so
// at mid selectivities the CPU mispredicts constantly, and every row
// pays the full interpretation overhead (slice headers, predicate
// loop) even when the first predicate already failed.
//
// The batch kernels invert the loop: one predicate is evaluated over a
// contiguous stride of one column at a time, writing survivors into a
// reusable selection vector ([]int32) with a compare-and-compact idiom
// that contains no data-dependent branch at all:
//
//	dst[k] = id
//	k += keep          // keep ∈ {0,1}, computed with SETcc, not a jump
//
// The comparison form is exactly the scalar one — a row matches when
// !(v < min || v > max), so NaN values (which compare false on both
// sides) match every range predicate, and NaN bounds have been folded to
// ±Inf by normalizePreds before any kernel runs. Later predicates refine
// the selection in place, touching only surviving rows, so the work per
// extra predicate shrinks with the running selectivity instead of being
// paid per row.
//
// Kernels never allocate: callers own the selection buffers and slice
// them to the stride. TestKernelZeroAlloc locks that down, and
// TestKernelMatchesScalar / FuzzKernelEquivalence pin the kernels to the
// scalar reference semantics over NaN/±Inf-laced columns.

import "repro/internal/geom"

const (
	// kernelMinRows is the stride below which the planner keeps the
	// scalar per-row loop: a handful of rows costs less to test inline
	// than to route through selection buffers.
	kernelMinRows = 16
	// scanBatchRows is the linear scan's block size: one selection
	// buffer of this many int32 ids (16 KiB) stays cache-resident while
	// every predicate column streams through it.
	scanBatchRows = 4096
)

// b2i converts a bool to 0/1; the compiler lowers it to a flag
// materialization (SETcc), not a branch, which is what keeps the
// compact loops below free of data-dependent jumps.
func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// selRange writes into dst the ids lo+i of the rows of col (a pre-cut
// window, id of col[i] being lo+i) whose value matches [min, max] under
// the scalar comparison form, and returns how many survived. dst must
// hold at least len(col) entries.
func selRange(dst []int32, col []float64, lo int32, min, max float64) int {
	k, i := 0, 0
	if useSelAsm && len(col) >= 8 {
		n4 := len(col) &^ 3
		k = selRangeAsm(dst, col[:n4], lo, min, max)
		i = n4
	}
	for ; i < len(col); i++ {
		v := col[i]
		dst[k] = lo + int32(i)
		k += int(b2i(!(v < min)) & b2i(!(v > max)))
	}
	return k
}

// selRectRange is selRange fused over both coordinate columns: one pass
// computes the full rectangle test for the linear fallback scan. xs and
// ys are parallel pre-cut windows; ids are lo+i.
func selRectRange(dst []int32, xs, ys []float64, lo int32, r geom.Rect) int {
	k := 0
	for i, x := range xs {
		y := ys[i]
		dst[k] = lo + int32(i)
		k += int(b2i(!(x < r.MinX)) & b2i(!(x > r.MaxX)) &
			b2i(!(y < r.MinY)) & b2i(!(y > r.MaxY)))
	}
	return k
}

// selGather seeds a selection from an id run (a CSR cell run or delta
// bucket): it writes into dst the ids whose col value matches and
// returns how many survived. dst must hold at least len(ids) entries;
// ids index col directly.
func selGather(dst []int32, ids []int32, col []float64, min, max float64) int {
	k, i := 0, 0
	if useSelAsm && len(ids) >= 8 {
		n4 := len(ids) &^ 3
		k = selGatherAsm(dst, ids[:n4], col, min, max)
		i = n4
	}
	for ; i < len(ids); i++ {
		id := ids[i]
		v := col[id]
		dst[k] = id
		k += int(b2i(!(v < min)) & b2i(!(v > max)))
	}
	return k
}

// selRectGather seeds a selection from an id run with the fused
// rectangle test — the boundary-ring kernel. dst must hold at least
// len(ids) entries; ids index xs and ys directly.
func selRectGather(dst []int32, ids []int32, xs, ys []float64, r geom.Rect) int {
	k, i := 0, 0
	if useSelAsm && len(ids) >= 8 {
		n4 := len(ids) &^ 3
		k = selRectGatherAsm(dst, ids[:n4], xs, ys, r)
		i = n4
	}
	for ; i < len(ids); i++ {
		id := ids[i]
		x, y := xs[id], ys[id]
		dst[k] = id
		k += int(b2i(!(x < r.MinX)) & b2i(!(x > r.MaxX)) &
			b2i(!(y < r.MinY)) & b2i(!(y > r.MaxY)))
	}
	return k
}

// selRefine compacts sel in place to the ids whose col value matches,
// returning the surviving count. Each refinement touches only rows the
// previous kernels kept. The asm gather body is aliasing-safe in place:
// its compacted store at sel[k] never reaches past ids it has already
// read, since k <= i throughout.
func selRefine(sel []int32, col []float64, min, max float64) int {
	k, i := 0, 0
	if useSelAsm && len(sel) >= 8 {
		n4 := len(sel) &^ 3
		k = selGatherAsm(sel, sel[:n4], col, min, max)
		i = n4
	}
	for ; i < len(sel); i++ {
		id := sel[i]
		v := col[id]
		sel[k] = id
		k += int(b2i(!(v < min)) & b2i(!(v > max)))
	}
	return k
}

// selRectRefine compacts sel in place with the fused rectangle test.
func selRectRefine(sel []int32, xs, ys []float64, r geom.Rect) int {
	k, i := 0, 0
	if useSelAsm && len(sel) >= 8 {
		n4 := len(sel) &^ 3
		k = selRectGatherAsm(sel, sel[:n4], xs, ys, r)
		i = n4
	}
	for ; i < len(sel); i++ {
		id := sel[i]
		x, y := xs[id], ys[id]
		sel[k] = id
		k += int(b2i(!(x < r.MinX)) & b2i(!(x > r.MaxX)) &
			b2i(!(y < r.MinY)) & b2i(!(y > r.MaxY)))
	}
	return k
}

// filterDeadInts is the tombstone-aware refine pass: it compacts ids in
// place to the rows not set in dead, with the same compare-and-compact
// idiom as the selection kernels (the keep increment is a flag
// materialization, not a data-dependent jump — dead rows are rare, but
// when a delete lands in a hot cell the mispredict cost would be paid
// per row). dead bitmaps are base-0 (orBitmapRows builds them that
// way), so the word lookup is a direct shift-index. ids past the word
// array are alive by construction. Callers own ids; a nil or empty
// dead set returns ids unchanged.
func filterDeadInts(ids []int, dead *rowBitmap) []int {
	if dead == nil || dead.count == 0 {
		return ids
	}
	words := dead.words
	limit := len(words) << 6
	k := 0
	for _, id := range ids {
		ids[k] = id
		if id >= limit {
			k++
			continue
		}
		k += int(1 - (words[id>>6] >> (uint(id) & 63) & 1))
	}
	return ids[:k]
}

// appendSel appends a selection to the accumulating []int id list.
func appendSel(out []int, sel []int32) []int {
	for _, id := range sel {
		out = append(out, int(id))
	}
	return out
}

// gatherPointsDense projects a dense row range into points: xs and ys
// are pre-cut to exactly the range, dst to its length.
func gatherPointsDense(dst []geom.Point, xs, ys []float64) {
	for i := range dst {
		dst[i] = geom.Pt(xs[i], ys[i])
	}
}

// gatherPoints projects an explicit sorted id list into points; dst must
// be pre-sized to len(ids).
func gatherPoints(dst []geom.Point, ids []int, xs, ys []float64) {
	for i, id := range ids {
		dst[i] = geom.Pt(xs[id], ys[id])
	}
}

// gatherVals projects one column at an explicit sorted id list; dst must
// be pre-sized to len(ids).
func gatherVals(dst []float64, ids []int, col []float64) {
	for i, id := range ids {
		dst[i] = col[id]
	}
}

// scanRangeScalar is the scalar reference kernel the batch layer is
// verified against (and the pre-batching implementation of the linear
// scan): it appends the rows of [lo, hi) matching every predicate to
// out, short-circuiting on the first failing predicate. cols is
// parallel to preds.
func scanRangeScalar(cols [][]float64, preds []Pred, lo, hi int, out []int) []int {
rows:
	for r := lo; r < hi; r++ {
		for i, p := range preds {
			v := cols[i][r]
			if v < p.Min || v > p.Max {
				continue rows
			}
		}
		out = append(out, r)
	}
	return out
}
