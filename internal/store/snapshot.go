package store

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// This file is the store side of catalog persistence (internal/snapshot
// owns the on-disk format): it exports a table's fully materialized
// generation — column storage plus every CSR grid index and its zone
// maps — and re-admits one without re-running any index build, so a
// server can cold-start from a snapshot file in the time it takes to
// read it. Because snapshot bytes arrive from disk (and, transitively,
// from anything that can write the snapshot directory),
// TableFromSnapshot treats its input as hostile: every structural
// invariant the probe machinery relies on (offset monotonicity, row-id
// ranges, zone-map extents) is verified before a Table exists, and a
// violation returns an error rather than publishing a table that could
// panic a scan.

// IndexSnapshot is the exported form of one CSR grid spatial index,
// mirroring rectIndex field for field.
type IndexSnapshot struct {
	// XCol, YCol are ordinals into the table's column list.
	XCol, YCol int
	// Bounds is the finite extent the grid is stretched over.
	Bounds geom.Rect
	// NX, NY are the grid dimensions; CellW, CellH the cell extents.
	NX, NY       int
	CellW, CellH float64
	// CellOff and RowID are the CSR packing: CellOff[c]..CellOff[c+1]
	// delimit cell c's ascending run of row ids in RowID.
	CellOff []int32
	RowID   []int32
	// Extra holds the ascending ids of rows with a non-finite coordinate.
	Extra []int32
	// NumRows is the number of rows the index covers (rows at or beyond
	// it take the table's unindexed tail path).
	NumRows int
	// ZMin, ZMax, ZNaN are the per-(column, cell) zone maps, laid out
	// flat as [col·cells + cell].
	ZMin, ZMax []float64
	ZNaN       []bool
}

// TreeIndexSnapshot is the exported form of one packed STR R-tree
// spatial index, mirroring treeIndex field for field with rectangles
// flattened to float64 quads (MinX, MinY, MaxX, MaxY per entry) so the
// on-disk codec stays an array-of-scalars format.
type TreeIndexSnapshot struct {
	// XCol, YCol are ordinals into the table's column list.
	XCol, YCol int
	// Bounds, NX, NY, CellW, CellH are the DELTA grid geometry — not
	// probe geometry; they let appended rows bucket identically to the
	// grid backend after a restore.
	Bounds       geom.Rect
	NX, NY       int
	CellW, CellH float64
	// RowID packs the finite rows in leaf order (ascending within each
	// leaf); LeafOff delimits leaf runs; LeafMBR holds one rectangle
	// quad per leaf.
	RowID   []int32
	LeafOff []int32
	LeafMBR []float64
	// Extra holds the ascending ids of rows with a non-finite coordinate.
	Extra []int32
	// NumRows is the number of rows the index covers.
	NumRows int
	// The packed node hierarchy, one entry per node (root last):
	// NodeMBR is a rectangle quad per node; children are
	// nodes[NodeLo:NodeHi] or leaves when NodeLeafKids; NodeLeafLo/Hi
	// give the contiguous leaf span the subtree covers.
	NodeMBR      []float64
	NodeLo       []int32
	NodeHi       []int32
	NodeLeafLo   []int32
	NodeLeafHi   []int32
	NodeLeafKids []bool
	// Per-(column, leaf) and per-(column, node) zone maps, flat as
	// [col·numLeaves + leaf] and [col·numNodes + node].
	ZMin, ZMax   []float64
	ZNaN         []bool
	NZMin, NZMax []float64
	NZNaN        []bool
	// OccP99, Skew are the build-time occupancy statistics the backend
	// planner consulted.
	OccP99, Skew float64
}

// TableSnapshot is the exported form of one table generation: the
// column schema and data plus every spatial index built from exactly
// those columns.
//
// The slices alias live generation storage when produced by
// SnapshotGeneration, and are retained by TableFromSnapshot — in both
// directions they must be treated as immutable after the call.
type TableSnapshot struct {
	Name    string
	Columns []string
	// Cols holds the column data, parallel to Columns, each of length
	// NumRows.
	Cols    [][]float64
	NumRows int
	Indexes []IndexSnapshot
	// TreeIndexes holds the R-tree-backed indexes (snapshot format v3;
	// empty in files written before the tree backend existed).
	TreeIndexes []TreeIndexSnapshot
	// Dead holds the ascending, duplicate-free ids of tombstoned rows —
	// deleted but not yet physically reclaimed at capture time. Empty
	// for snapshots from before the retention layer (and after every
	// reclaiming compaction).
	Dead []int32
}

// flattenRects packs rectangles into (MinX, MinY, MaxX, MaxY) quads.
func flattenRects(rs []geom.Rect) []float64 {
	out := make([]float64, 0, 4*len(rs))
	for _, r := range rs {
		out = append(out, r.MinX, r.MinY, r.MaxX, r.MaxY)
	}
	return out
}

func unflattenRect(q []float64) geom.Rect {
	return geom.Rect{MinX: q[0], MinY: q[1], MaxX: q[2], MaxY: q[3]}
}

// SnapshotGeneration exports the table's current generation. The
// returned snapshot shares the generation's immutable storage; callers
// must not mutate any slice it carries.
func (t *Table) SnapshotGeneration() TableSnapshot {
	d := t.snapshot()
	ts := TableSnapshot{
		Name:    t.name,
		Columns: t.Columns(),
		Cols:    make([][]float64, len(d.cols)),
		NumRows: d.n,
	}
	for i, c := range d.cols {
		ts.Cols[i] = c[:d.n]
	}
	if d.dead != nil && d.dead.count > 0 {
		ts.Dead = make([]int32, 0, d.dead.count)
		d.dead.forEach(func(r int) { ts.Dead = append(ts.Dead, int32(r)) })
	}
	for _, six := range d.indexes {
		switch ix := six.(type) {
		case *rectIndex:
			ts.Indexes = append(ts.Indexes, IndexSnapshot{
				XCol: ix.xi, YCol: ix.yi,
				Bounds: ix.bounds,
				NX:     ix.nx, NY: ix.ny,
				CellW: ix.cellW, CellH: ix.cellH,
				CellOff: ix.cellOff,
				RowID:   ix.rowID,
				Extra:   ix.extra,
				NumRows: ix.n,
				ZMin:    ix.zmin, ZMax: ix.zmax, ZNaN: ix.znan,
			})
		case *treeIndex:
			tis := TreeIndexSnapshot{
				XCol: ix.xi, YCol: ix.yi,
				Bounds: ix.bounds,
				NX:     ix.nx, NY: ix.ny,
				CellW: ix.cellW, CellH: ix.cellH,
				RowID:   ix.rowID,
				LeafOff: ix.leafOff,
				LeafMBR: flattenRects(ix.leafMBR),
				Extra:   ix.extra,
				NumRows: ix.n,
				ZMin:    ix.zmin, ZMax: ix.zmax, ZNaN: ix.znan,
				NZMin: ix.nzmin, NZMax: ix.nzmax, NZNaN: ix.nznan,
				OccP99: ix.occP99, Skew: ix.occSkew,
			}
			if nn := len(ix.nodes); nn > 0 {
				tis.NodeMBR = make([]float64, 0, 4*nn)
				tis.NodeLo = make([]int32, nn)
				tis.NodeHi = make([]int32, nn)
				tis.NodeLeafLo = make([]int32, nn)
				tis.NodeLeafHi = make([]int32, nn)
				tis.NodeLeafKids = make([]bool, nn)
				for i, nd := range ix.nodes {
					tis.NodeMBR = append(tis.NodeMBR, nd.mbr.MinX, nd.mbr.MinY, nd.mbr.MaxX, nd.mbr.MaxY)
					tis.NodeLo[i], tis.NodeHi[i] = nd.lo, nd.hi
					tis.NodeLeafLo[i], tis.NodeLeafHi[i] = nd.llo, nd.lhi
					tis.NodeLeafKids[i] = nd.leafKids
				}
			}
			ts.TreeIndexes = append(ts.TreeIndexes, tis)
		}
	}
	return ts
}

// maxSnapshotGridDim bounds the grid dimensions a snapshot may claim.
// The builder caps itself at indexMaxDim; admitting a little headroom
// keeps old binaries able to load snapshots from a future build with a
// raised cap, while still refusing the absurd dimensions a corrupt or
// hostile file could claim (NX·NY drives several allocations).
const maxSnapshotGridDim = 4 * indexMaxDim

// TableFromSnapshot validates snap and materializes it as a Table
// without rebuilding anything: the CSR packings and zone maps are
// installed as the published generation exactly as captured. The
// snapshot's slices are retained; the caller must not modify them
// afterwards. Every structural invariant the read path depends on is
// checked — a snapshot that fails any of them yields an error and no
// Table.
func TableFromSnapshot(snap TableSnapshot) (*Table, error) {
	t, err := NewTable(snap.Name, snap.Columns...)
	if err != nil {
		return nil, err
	}
	if snap.NumRows < 0 {
		return nil, fmt.Errorf("store: snapshot table %q: negative row count %d", snap.Name, snap.NumRows)
	}
	if len(snap.Cols) != len(snap.Columns) {
		return nil, fmt.Errorf("store: snapshot table %q: %d column slices for %d columns",
			snap.Name, len(snap.Cols), len(snap.Columns))
	}
	for i, c := range snap.Cols {
		if len(c) != snap.NumRows {
			return nil, fmt.Errorf("store: snapshot table %q: column %q has %d rows, expected %d",
				snap.Name, snap.Columns[i], len(c), snap.NumRows)
		}
	}
	d := &tableData{cols: snap.Cols, n: snap.NumRows}
	if len(snap.Dead) > 0 {
		prev := int32(-1)
		for _, id := range snap.Dead {
			if id <= prev {
				return nil, fmt.Errorf("store: snapshot table %q: tombstone ids not ascending (%d after %d)",
					snap.Name, id, prev)
			}
			if id < 0 || int(id) >= snap.NumRows {
				return nil, fmt.Errorf("store: snapshot table %q: tombstone id %d out of range [0,%d)",
					snap.Name, id, snap.NumRows)
			}
			prev = id
		}
		ids := make([]int, len(snap.Dead))
		for i, id := range snap.Dead {
			ids[i] = int(id)
		}
		// orBitmapRows keeps the bitmap base-0, the shape the read path's
		// refine kernel indexes directly.
		d.dead, _ = orBitmapRows(nil, ids)
	}
	seenPair := make(map[[2]int]bool, len(snap.Indexes)+len(snap.TreeIndexes))
	register := func(ix spatialIndex) error {
		xi, yi := ix.pair()
		pair := [2]int{xi, yi}
		if seenPair[pair] {
			return fmt.Errorf("store: snapshot table %q: duplicate index over columns (%d,%d)",
				snap.Name, xi, yi)
		}
		seenPair[pair] = true
		d.indexes = append(d.indexes, ix)
		// Register the pair so a later BulkLoad rebuilds it, exactly as
		// if IndexOn had been called.
		t.indexPairs = append(t.indexPairs, pair)
		return nil
	}
	for i, is := range snap.Indexes {
		ix, err := indexFromSnapshot(snap.Name, is, len(snap.Cols), snap.NumRows)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot table %q index %d: %w", snap.Name, i, err)
		}
		if err := register(ix); err != nil {
			return nil, err
		}
	}
	for i, is := range snap.TreeIndexes {
		ix, err := treeFromSnapshot(is, len(snap.Cols), snap.NumRows)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot table %q tree index %d: %w", snap.Name, i, err)
		}
		if err := register(ix); err != nil {
			return nil, err
		}
	}
	// A snapshot saved mid-ingest carries rows past its indexes'
	// coverage (the appended tail at save time, and any tail-log rows
	// replayed by the loader land the same way via Append). Absorb them
	// into the fresh deltas now so the restored table probes at indexed
	// speed from its first request, exactly like the live table it was
	// captured from.
	for _, ix := range d.indexes {
		ix.deltaIdx().absorbRange(d.cols, ix.rows(), d.n)
	}
	t.data = d
	return t, nil
}

// indexFromSnapshot validates one index snapshot against its table's
// column count and row count and converts it to a rectIndex.
func indexFromSnapshot(table string, is IndexSnapshot, ncols, tableRows int) (*rectIndex, error) {
	if is.XCol < 0 || is.XCol >= ncols || is.YCol < 0 || is.YCol >= ncols {
		return nil, fmt.Errorf("column pair (%d,%d) out of range for %d columns", is.XCol, is.YCol, ncols)
	}
	if is.NumRows < 0 || is.NumRows > tableRows {
		return nil, fmt.Errorf("covers %d rows of a %d-row table", is.NumRows, tableRows)
	}
	ix := &rectIndex{
		gridGeom: gridGeom{
			xi: is.XCol, yi: is.YCol,
			bounds: is.Bounds,
			nx:     is.NX, ny: is.NY,
			cellW: is.CellW, cellH: is.CellH,
			n: is.NumRows,
		},
		cellOff: is.CellOff,
		rowID:   is.RowID,
		extra:   is.Extra,
		zmin:    is.ZMin, zmax: is.ZMax, znan: is.ZNaN,
	}
	ix.delta = newDeltaIndex(&ix.gridGeom, ncols)
	if is.NumRows == 0 {
		// An empty index has no grid at all (buildRectIndex returns
		// before sizing one); any grid payload here is corruption.
		if is.NX != 0 || is.NY != 0 || len(is.CellOff) != 0 || len(is.RowID) != 0 ||
			len(is.Extra) != 0 || len(is.ZMin) != 0 || len(is.ZMax) != 0 || len(is.ZNaN) != 0 {
			return nil, errors.New("empty index carries grid data")
		}
		return ix, nil
	}
	if is.NX < 1 || is.NY < 1 || is.NX > maxSnapshotGridDim || is.NY > maxSnapshotGridDim {
		return nil, fmt.Errorf("grid %dx%d out of range [1,%d]", is.NX, is.NY, maxSnapshotGridDim)
	}
	if !(is.CellW > 0) || !(is.CellH > 0) || math.IsInf(is.CellW, 0) || math.IsInf(is.CellH, 0) {
		return nil, fmt.Errorf("cell extent %gx%g is not positive finite", is.CellW, is.CellH)
	}
	if !isFinite(is.Bounds.MinX) || !isFinite(is.Bounds.MinY) ||
		!isFinite(is.Bounds.MaxX) || !isFinite(is.Bounds.MaxY) || is.Bounds.IsEmpty() {
		return nil, fmt.Errorf("bounds %v are not a finite non-empty rectangle", is.Bounds)
	}
	cells := is.NX * is.NY
	if len(is.CellOff) != cells+1 {
		return nil, fmt.Errorf("%d cell offsets for %d cells", len(is.CellOff), cells)
	}
	if is.CellOff[0] != 0 {
		return nil, fmt.Errorf("cell offsets start at %d, not 0", is.CellOff[0])
	}
	for c := 1; c <= cells; c++ {
		if is.CellOff[c] < is.CellOff[c-1] {
			return nil, fmt.Errorf("cell offsets decrease at cell %d", c)
		}
	}
	if int(is.CellOff[cells]) != len(is.RowID) {
		return nil, fmt.Errorf("cell offsets cover %d rows, row-id packing has %d", is.CellOff[cells], len(is.RowID))
	}
	if len(is.RowID)+len(is.Extra) != is.NumRows {
		return nil, fmt.Errorf("%d binned + %d extra rows for a %d-row index",
			len(is.RowID), len(is.Extra), is.NumRows)
	}
	// Every indexed row must appear exactly once, either binned or in
	// the extras list, with ids ascending within each cell run (the
	// probe's sortedness and bounds guarantees both hang off this).
	seen := make([]bool, is.NumRows)
	for c := 0; c < cells; c++ {
		prev := int32(-1)
		for _, id := range is.RowID[is.CellOff[c]:is.CellOff[c+1]] {
			if id < 0 || int(id) >= is.NumRows {
				return nil, fmt.Errorf("row id %d out of range [0,%d)", id, is.NumRows)
			}
			if id <= prev {
				return nil, fmt.Errorf("cell %d row ids not ascending (%d after %d)", c, id, prev)
			}
			if seen[id] {
				return nil, fmt.Errorf("row id %d appears twice", id)
			}
			seen[id] = true
			prev = id
		}
	}
	prev := int32(-1)
	for _, id := range is.Extra {
		if id < 0 || int(id) >= is.NumRows {
			return nil, fmt.Errorf("extra row id %d out of range [0,%d)", id, is.NumRows)
		}
		if id <= prev {
			return nil, fmt.Errorf("extra row ids not ascending (%d after %d)", id, prev)
		}
		if seen[id] {
			return nil, fmt.Errorf("row id %d appears twice", id)
		}
		seen[id] = true
		prev = id
	}
	if len(is.RowID) == 0 {
		return nil, errors.New("index with no binned rows should not carry a grid")
	}
	if len(is.ZMin) != ncols*cells || len(is.ZMax) != ncols*cells || len(is.ZNaN) != ncols*cells {
		return nil, fmt.Errorf("zone maps sized %d/%d/%d for %d columns x %d cells",
			len(is.ZMin), len(is.ZMax), len(is.ZNaN), ncols, cells)
	}
	// The snapshot format predates the occupancy statistics; the CSR
	// offsets are the per-cell histogram, so rederive them exactly.
	counts := make([]int32, cells)
	for c := 0; c < cells; c++ {
		counts[c] = is.CellOff[c+1] - is.CellOff[c]
	}
	ix.occP99, ix.occSkew = occFromCounts(counts, len(is.RowID))
	return ix, nil
}

// treeFromSnapshot validates one R-tree index snapshot and converts it
// to a treeIndex. Structural invariants — everything the iterative
// descents and bulk-emit slicing index by — are verified; semantic
// values (MBR extents, zone-map contents, occupancy statistics) are
// trusted exactly as the grid's are.
func treeFromSnapshot(is TreeIndexSnapshot, ncols, tableRows int) (*treeIndex, error) {
	if is.XCol < 0 || is.XCol >= ncols || is.YCol < 0 || is.YCol >= ncols {
		return nil, fmt.Errorf("column pair (%d,%d) out of range for %d columns", is.XCol, is.YCol, ncols)
	}
	if is.NumRows < 0 || is.NumRows > tableRows {
		return nil, fmt.Errorf("covers %d rows of a %d-row table", is.NumRows, tableRows)
	}
	ix := &treeIndex{
		gridGeom: gridGeom{
			xi: is.XCol, yi: is.YCol,
			bounds: is.Bounds,
			nx:     is.NX, ny: is.NY,
			cellW: is.CellW, cellH: is.CellH,
			n: is.NumRows,
		},
		rowID:   is.RowID,
		leafOff: is.LeafOff,
		extra:   is.Extra,
		zmin:    is.ZMin, zmax: is.ZMax, znan: is.ZNaN,
		nzmin: is.NZMin, nzmax: is.NZMax, nznan: is.NZNaN,
		occP99: is.OccP99, occSkew: is.Skew,
	}
	ix.delta = newDeltaIndex(&ix.gridGeom, ncols)
	if is.NumRows == 0 {
		// An empty index has no payload at all (buildTreeIndex returns
		// before packing anything); anything here is corruption.
		if is.NX != 0 || is.NY != 0 || len(is.RowID) != 0 || len(is.LeafOff) != 0 ||
			len(is.LeafMBR) != 0 || len(is.Extra) != 0 || len(is.NodeMBR) != 0 ||
			len(is.ZMin) != 0 || len(is.ZMax) != 0 || len(is.ZNaN) != 0 ||
			len(is.NZMin) != 0 || len(is.NZMax) != 0 || len(is.NZNaN) != 0 {
			return nil, errors.New("empty index carries tree data")
		}
		return ix, nil
	}
	// Delta grid geometry: same admission rules as the grid backend's.
	if is.NX < 1 || is.NY < 1 || is.NX > maxSnapshotGridDim || is.NY > maxSnapshotGridDim {
		return nil, fmt.Errorf("delta grid %dx%d out of range [1,%d]", is.NX, is.NY, maxSnapshotGridDim)
	}
	if !(is.CellW > 0) || !(is.CellH > 0) || math.IsInf(is.CellW, 0) || math.IsInf(is.CellH, 0) {
		return nil, fmt.Errorf("cell extent %gx%g is not positive finite", is.CellW, is.CellH)
	}
	if !isFinite(is.Bounds.MinX) || !isFinite(is.Bounds.MinY) ||
		!isFinite(is.Bounds.MaxX) || !isFinite(is.Bounds.MaxY) || is.Bounds.IsEmpty() {
		return nil, fmt.Errorf("bounds %v are not a finite non-empty rectangle", is.Bounds)
	}
	binned := len(is.RowID)
	if binned+len(is.Extra) != is.NumRows {
		return nil, fmt.Errorf("%d packed + %d extra rows for a %d-row index",
			binned, len(is.Extra), is.NumRows)
	}
	if binned == 0 {
		return nil, errors.New("index with no packed rows should not carry a tree")
	}
	numLeaves := len(is.LeafOff) - 1
	if numLeaves < 1 {
		return nil, fmt.Errorf("%d leaf offsets cannot delimit any leaf", len(is.LeafOff))
	}
	if len(is.LeafMBR) != 4*numLeaves {
		return nil, fmt.Errorf("%d MBR scalars for %d leaves", len(is.LeafMBR), numLeaves)
	}
	if is.LeafOff[0] != 0 {
		return nil, fmt.Errorf("leaf offsets start at %d, not 0", is.LeafOff[0])
	}
	for l := 1; l <= numLeaves; l++ {
		// Strictly increasing: the builder never emits an empty leaf.
		if is.LeafOff[l] <= is.LeafOff[l-1] {
			return nil, fmt.Errorf("leaf offsets not increasing at leaf %d", l)
		}
	}
	if int(is.LeafOff[numLeaves]) != binned {
		return nil, fmt.Errorf("leaf offsets cover %d rows, row-id packing has %d", is.LeafOff[numLeaves], binned)
	}
	// Every indexed row appears exactly once, packed (ascending within
	// its leaf) or extra.
	seen := make([]bool, is.NumRows)
	for l := 0; l < numLeaves; l++ {
		prev := int32(-1)
		for _, id := range is.RowID[is.LeafOff[l]:is.LeafOff[l+1]] {
			if id < 0 || int(id) >= is.NumRows {
				return nil, fmt.Errorf("row id %d out of range [0,%d)", id, is.NumRows)
			}
			if id <= prev {
				return nil, fmt.Errorf("leaf %d row ids not ascending (%d after %d)", l, id, prev)
			}
			if seen[id] {
				return nil, fmt.Errorf("row id %d appears twice", id)
			}
			seen[id] = true
			prev = id
		}
	}
	prev := int32(-1)
	for _, id := range is.Extra {
		if id < 0 || int(id) >= is.NumRows {
			return nil, fmt.Errorf("extra row id %d out of range [0,%d)", id, is.NumRows)
		}
		if id <= prev {
			return nil, fmt.Errorf("extra row ids not ascending (%d after %d)", id, prev)
		}
		if seen[id] {
			return nil, fmt.Errorf("row id %d appears twice", id)
		}
		seen[id] = true
		prev = id
	}
	// Node hierarchy: the parallel arrays must agree, children must sit
	// at strictly lower indices (descent termination), child spans must
	// contiguously partition their parent's, and the root (last node)
	// must cover every leaf.
	numNodes := len(is.NodeLo)
	if numNodes < 1 {
		return nil, errors.New("tree has no nodes")
	}
	if len(is.NodeHi) != numNodes || len(is.NodeLeafLo) != numNodes ||
		len(is.NodeLeafHi) != numNodes || len(is.NodeLeafKids) != numNodes {
		return nil, fmt.Errorf("node arrays sized %d/%d/%d/%d for %d nodes",
			len(is.NodeHi), len(is.NodeLeafLo), len(is.NodeLeafHi), len(is.NodeLeafKids), numNodes)
	}
	if len(is.NodeMBR) != 4*numNodes {
		return nil, fmt.Errorf("%d MBR scalars for %d nodes", len(is.NodeMBR), numNodes)
	}
	ix.leafMBR = make([]geom.Rect, numLeaves)
	for l := range ix.leafMBR {
		ix.leafMBR[l] = unflattenRect(is.LeafMBR[4*l : 4*l+4])
	}
	ix.nodes = make([]treeNode, numNodes)
	for ni := 0; ni < numNodes; ni++ {
		nd := treeNode{
			mbr: unflattenRect(is.NodeMBR[4*ni : 4*ni+4]),
			lo:  is.NodeLo[ni], hi: is.NodeHi[ni],
			llo: is.NodeLeafLo[ni], lhi: is.NodeLeafHi[ni],
			leafKids: is.NodeLeafKids[ni],
		}
		if nd.leafKids {
			if nd.lo < 0 || nd.lo >= nd.hi || int(nd.hi) > numLeaves {
				return nil, fmt.Errorf("node %d leaf children [%d,%d) out of range [0,%d)", ni, nd.lo, nd.hi, numLeaves)
			}
			if nd.llo != nd.lo || nd.lhi != nd.hi {
				return nil, fmt.Errorf("node %d leaf span [%d,%d) disagrees with children [%d,%d)",
					ni, nd.llo, nd.lhi, nd.lo, nd.hi)
			}
		} else {
			if nd.lo < 0 || nd.lo >= nd.hi || int(nd.hi) > ni {
				return nil, fmt.Errorf("node %d children [%d,%d) not strictly below it", ni, nd.lo, nd.hi)
			}
			if nd.llo != ix.nodes[nd.lo].llo || nd.lhi != ix.nodes[nd.hi-1].lhi {
				return nil, fmt.Errorf("node %d leaf span [%d,%d) disagrees with its children's", ni, nd.llo, nd.lhi)
			}
			for c := int(nd.lo); c < int(nd.hi)-1; c++ {
				if ix.nodes[c].lhi != ix.nodes[c+1].llo {
					return nil, fmt.Errorf("node %d children do not partition its span contiguously at child %d", ni, c)
				}
			}
		}
		ix.nodes[ni] = nd
	}
	root := ix.nodes[numNodes-1]
	if root.llo != 0 || int(root.lhi) != numLeaves {
		return nil, fmt.Errorf("root spans leaves [%d,%d), want [0,%d)", root.llo, root.lhi, numLeaves)
	}
	if len(is.ZMin) != ncols*numLeaves || len(is.ZMax) != ncols*numLeaves || len(is.ZNaN) != ncols*numLeaves {
		return nil, fmt.Errorf("leaf zone maps sized %d/%d/%d for %d columns x %d leaves",
			len(is.ZMin), len(is.ZMax), len(is.ZNaN), ncols, numLeaves)
	}
	if len(is.NZMin) != ncols*numNodes || len(is.NZMax) != ncols*numNodes || len(is.NZNaN) != ncols*numNodes {
		return nil, fmt.Errorf("node zone maps sized %d/%d/%d for %d columns x %d nodes",
			len(is.NZMin), len(is.NZMax), len(is.NZNaN), ncols, numNodes)
	}
	return ix, nil
}

// SnapshotCatalog captures every table's current generation together
// with the complete sample lineage in one critical section, so a save
// concurrent with publishes can never observe a torn catalog — a
// lineage entry whose sample table is missing from the capture (which
// would make the snapshot unloadable: PublishCatalog rejects dangling
// metas). Tables are returned in name order, metas deduplicated by
// sample table. The per-table generations are immutable, so holding the
// store lock only guards membership, not data copies.
func (s *Store) SnapshotCatalog() ([]TableSnapshot, []SampleMeta) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	tables := make([]TableSnapshot, 0, len(names))
	var metas []SampleMeta
	seen := make(map[string]bool)
	for _, n := range names {
		tables = append(tables, s.tables[n].SnapshotGeneration())
		for _, m := range s.samples[n] {
			if !seen[m.Table] {
				seen[m.Table] = true
				metas = append(metas, m)
			}
		}
	}
	return tables, metas
}

// PublishIndexedTable registers a fully materialized table — built with
// BulkLoad/IndexOn or restored by TableFromSnapshot — as a base table,
// atomically replacing any existing table of the same name (and that
// table's sample registrations) in the same critical section.
func (s *Store) PublishIndexedTable(t *Table) error {
	if t == nil {
		return errors.New("store: publish: nil table")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.tables[t.name]; ok && existing == t {
		return fmt.Errorf("store: publish: table %q is already registered", t.name)
	}
	s.dropLocked(t.name)
	s.tables[t.name] = t
	return nil
}

// PublishCatalog atomically installs a set of fully materialized tables
// together with the sample lineage connecting them — the snapshot
// loader's landing step. Validation happens before any mutation, and
// the install itself cannot fail, so a bad batch changes nothing and a
// good batch becomes visible in one critical section: concurrent
// readers observe either the old catalog or the complete new one, never
// a partial load. Tables already in the store are replaced by
// same-named batch tables (dropping their stale sample registrations).
func (s *Store) PublishCatalog(tables []*Table, metas []SampleMeta) error {
	byName := make(map[string]*Table, len(tables))
	for _, t := range tables {
		if t == nil {
			return errors.New("store: publish catalog: nil table")
		}
		if _, dup := byName[t.name]; dup {
			return fmt.Errorf("store: publish catalog: duplicate table %q", t.name)
		}
		byName[t.name] = t
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range metas {
		if _, ok := byName[m.Table]; !ok {
			return fmt.Errorf("store: publish catalog: sample %q is not in the batch", m.Table)
		}
		if _, ok := byName[m.Source]; !ok {
			if _, ok := s.tables[m.Source]; !ok {
				return fmt.Errorf("store: publish catalog: sample %q: source table %q: %w",
					m.Table, m.Source, ErrNotFound)
			}
		}
		if m.Size <= 0 {
			return fmt.Errorf("store: publish catalog: sample %q has non-positive size %d", m.Table, m.Size)
		}
	}
	for _, t := range tables {
		if existing, ok := s.tables[t.name]; ok && existing == t {
			return fmt.Errorf("store: publish catalog: table %q is already registered", t.name)
		}
	}
	// Point of no return: everything below succeeds unconditionally.
	for _, t := range tables {
		s.dropLocked(t.name)
		s.tables[t.name] = t
	}
	for _, m := range metas {
		s.samples[m.Source] = append(s.samples[m.Source], m)
	}
	for src := range s.samples {
		sort.Slice(s.samples[src], func(a, b int) bool {
			return s.samples[src][a].Size < s.samples[src][b].Size
		})
	}
	return nil
}
