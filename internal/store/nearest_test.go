package store

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

// bruteNearest is the reference kNN: sort every visible matching row by
// (distance, row id) and take k. Shares no code with the heap or the
// tree descent.
func bruteNearest(tb *Table, x, y float64, k int, preds []Pred) []Neighbor {
	xs, _ := tb.Column("x")
	ys, _ := tb.Column("y")
	rows, err := tb.Scan(preds)
	if err != nil {
		panic(err)
	}
	var all []Neighbor
	rows.ForEach(func(r int) {
		dx, dy := xs[r]-x, ys[r]-y
		d2 := dx*dx + dy*dy
		if math.IsNaN(d2) {
			return
		}
		all = append(all, Neighbor{Row: r, X: xs[r], Y: ys[r], Dist: math.Sqrt(d2)})
	})
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dist != all[b].Dist {
			return all[a].Dist < all[b].Dist
		}
		return all[a].Row < all[b].Row
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// TestNearestMatchesBruteForce is the kNN property test: under every
// backend (grid, tree, auto, unindexed), with NaN and ±Inf coordinates,
// duplicate points (distance ties), k exceeding the live row count,
// tombstoned rows, and appended tails, Table.Nearest returns exactly
// the brute-force sort-by-distance answer.
func TestNearestMatchesBruteForce(t *testing.T) {
	backends := []string{"", BackendGrid, BackendRTree, BackendAuto}
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := rng.Intn(3000)
		xs := make([]float64, n)
		ys := make([]float64, n)
		ms := make([]float64, n)
		for i := range xs {
			switch rng.Intn(40) {
			case 0:
				xs[i] = math.NaN()
			case 1:
				ys[i] = math.Inf(1 - 2*rng.Intn(2))
				xs[i] = rng.Float64() * 100
			default:
				// Quantized coordinates make exact distance ties common.
				xs[i] = float64(rng.Intn(40))
				ys[i] = float64(rng.Intn(40))
			}
			ms[i] = float64(rng.Intn(50))
		}
		backend := backends[trial%len(backends)]
		tb, err := NewTable("t", "x", "y", "m")
		if err != nil {
			t.Fatal(err)
		}
		if backend != "" {
			if err := tb.SetIndexBackend(backend); err != nil {
				t.Fatal(err)
			}
		}
		if err := tb.BulkLoad(xs, ys, ms); err != nil {
			t.Fatal(err)
		}
		indexed := trial%5 != 4
		if indexed {
			if err := tb.IndexOn("x", "y"); err != nil {
				t.Fatal(err)
			}
		}
		// Appended tail past the index build watermark.
		for i := 0; i < rng.Intn(50); i++ {
			if err := tb.Append(float64(rng.Intn(40)), float64(rng.Intn(40)), float64(rng.Intn(50))); err != nil {
				t.Fatal(err)
			}
		}
		// Tombstones: kNN must never resurrect a deleted row.
		if n > 0 && trial%2 == 0 {
			if _, err := tb.DeleteRect("x", "y", geom.Rect{MinX: 5, MinY: 5, MaxX: 12, MaxY: 12}); err != nil {
				t.Fatal(err)
			}
		}
		queries := []struct{ x, y float64 }{
			{20, 20},
			{-5, 100},
			{0, 0},
			{rng.Float64()*60 - 10, rng.Float64()*60 - 10},
			{math.Inf(1), 0}, // ±Inf query points are legal; only NaN is not
		}
		predSets := [][]Pred{
			nil,
			{{Column: "m", Min: 10, Max: 30}},
			{{Column: "m", Min: 10, Max: 30}, {Column: "x", Min: 0, Max: 25}},
		}
		ks := []int{1, 3, 7, tb.NumRows() + 10}
		for _, q := range queries {
			for _, preds := range predSets {
				for _, k := range ks {
					got, st, err := tb.Nearest("x", "y", q.x, q.y, k, preds)
					if err != nil {
						t.Fatalf("trial %d backend %q: %v", trial, backend, err)
					}
					want := bruteNearest(tb, q.x, q.y, k, preds)
					if len(got) != len(want) {
						t.Fatalf("trial %d backend %q q=(%g,%g) k=%d preds=%v: %d results, brute force %d (stats %+v)",
							trial, backend, q.x, q.y, k, preds, len(got), len(want), st)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("trial %d backend %q q=(%g,%g) k=%d preds=%v: result %d: %+v, brute force %+v",
								trial, backend, q.x, q.y, k, preds, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestNearestValidation pins the error surface: non-positive k, a NaN
// query point, and unknown columns all reject without touching data.
func TestNearestValidation(t *testing.T) {
	tb, err := NewTable("t", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.BulkLoad([]float64{1, 2}, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tb.Nearest("x", "y", 0, 0, 0, nil); !errors.Is(err, ErrBadNearest) {
		t.Fatalf("k=0: err %v, want ErrBadNearest", err)
	}
	if _, _, err := tb.Nearest("x", "y", 0, 0, -3, nil); !errors.Is(err, ErrBadNearest) {
		t.Fatalf("k<0: err %v, want ErrBadNearest", err)
	}
	if _, _, err := tb.Nearest("x", "y", math.NaN(), 0, 1, nil); !errors.Is(err, ErrBadNearest) {
		t.Fatalf("NaN x: err %v, want ErrBadNearest", err)
	}
	if _, _, err := tb.Nearest("x", "y", 0, math.NaN(), 1, nil); !errors.Is(err, ErrBadNearest) {
		t.Fatalf("NaN y: err %v, want ErrBadNearest", err)
	}
	if _, _, err := tb.Nearest("z", "y", 0, 0, 1, nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown x column: err %v, want ErrNotFound", err)
	}
	if _, _, err := tb.Nearest("x", "y", 0, 0, 1, []Pred{{Column: "q"}}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown pred column: err %v, want ErrNotFound", err)
	}
	// kNN is exact over ±Inf rows: at an infinite query point the finite
	// rows sit at distance +Inf, which is still comparable.
	if ns, _, err := tb.Nearest("x", "y", math.Inf(1), 0, 1, nil); err != nil || len(ns) != 1 {
		t.Fatalf("Inf query point: %v, %d results", err, len(ns))
	}
}

// TestBackendEquivalenceOnSkew drives ScanRectWhere through the tree
// backend, the grid backend, and the no-index linear path over heavily
// clustered data and requires identical row sets and exact-count
// agreement on every probe — the "tree ≡ grid ≡ linear" property.
func TestBackendEquivalenceOnSkew(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		n := 30_000
		xs := make([]float64, n)
		ys := make([]float64, n)
		ms := make([]float64, n)
		// ~90% of rows in a tight Gaussian cluster, the rest uniform
		// background; a few NaN rows ride along.
		for i := range xs {
			if rng.Intn(10) == 0 {
				xs[i] = rng.Float64() * 1000
				ys[i] = rng.Float64() * 1000
			} else {
				xs[i] = 500 + rng.NormFloat64()*1.5
				ys[i] = 500 + rng.NormFloat64()*1.5
			}
			if rng.Intn(300) == 0 {
				xs[i] = math.NaN()
			}
			ms[i] = (xs[i] + ys[i]) / 2
		}
		mk := func(backend string, index bool) *Table {
			tb, err := NewTable("t", "x", "y", "m")
			if err != nil {
				t.Fatal(err)
			}
			if backend != "" {
				if err := tb.SetIndexBackend(backend); err != nil {
					t.Fatal(err)
				}
			}
			if err := tb.BulkLoad(xs, ys, ms); err != nil {
				t.Fatal(err)
			}
			if index {
				if err := tb.IndexOn("x", "y"); err != nil {
					t.Fatal(err)
				}
			}
			return tb
		}
		tree := mk(BackendRTree, true)
		grid := mk(BackendGrid, true)
		linear := mk("", false)
		if got := tree.snapshot().indexFor(0, 1).backend(); got != BackendRTree {
			t.Fatalf("tree table carries backend %q", got)
		}
		if got := grid.snapshot().indexFor(0, 1).backend(); got != BackendGrid {
			t.Fatalf("grid table carries backend %q", got)
		}
		for probe := 0; probe < 20; probe++ {
			var r geom.Rect
			if probe%3 == 0 {
				// Viewport clipping the cluster: the skew worst case.
				r = geom.Rect{MinX: 499, MinY: 499, MaxX: 500.5, MaxY: 500.5}
			} else {
				r = geom.NewRect(
					geom.Pt(rng.Float64()*1100-50, rng.Float64()*1100-50),
					geom.Pt(rng.Float64()*1100-50, rng.Float64()*1100-50),
				)
			}
			var preds []Pred
			if probe%2 == 1 {
				preds = []Pred{{Column: "m", Min: rng.Float64() * 600, Max: 400 + rng.Float64()*600}}
			}
			tr, _, err := tree.ScanRectWhere("x", "y", r, preds)
			if err != nil {
				t.Fatal(err)
			}
			gr, _, err := grid.ScanRectWhere("x", "y", r, preds)
			if err != nil {
				t.Fatal(err)
			}
			lr, _, err := linear.ScanRectWhere("x", "y", r, preds)
			if err != nil {
				t.Fatal(err)
			}
			ti, gi, li := tr.Indices(), gr.Indices(), lr.Indices()
			if len(ti) != len(gi) || len(ti) != len(li) {
				t.Fatalf("trial %d probe %d rect %v: tree %d, grid %d, linear %d rows",
					trial, probe, r, len(ti), len(gi), len(li))
			}
			for i := range ti {
				if ti[i] != gi[i] || ti[i] != li[i] {
					t.Fatalf("trial %d probe %d rect %v row %d: tree %d, grid %d, linear %d",
						trial, probe, r, i, ti[i], gi[i], li[i])
				}
			}
		}
	}
}

// TestAutoBackendSelection pins the planner policy: heavily clustered
// data selects the tree, uniform data keeps the grid, and explicit
// modes override the evidence in both directions.
func TestAutoBackendSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 50_000
	cxs := make([]float64, n)
	cys := make([]float64, n)
	uxs := make([]float64, n)
	uys := make([]float64, n)
	for i := 0; i < n; i++ {
		if i%10 == 0 {
			cxs[i], cys[i] = rng.Float64()*1000, rng.Float64()*1000
		} else {
			cxs[i], cys[i] = 500+rng.NormFloat64(), 500+rng.NormFloat64()
		}
		uxs[i], uys[i] = rng.Float64()*1000, rng.Float64()*1000
	}
	mk := func(mode string, xs, ys []float64) string {
		tb, err := NewTable("t", "x", "y")
		if err != nil {
			t.Fatal(err)
		}
		if mode != "" {
			if err := tb.SetIndexBackend(mode); err != nil {
				t.Fatal(err)
			}
		}
		if err := tb.BulkLoad(xs, ys); err != nil {
			t.Fatal(err)
		}
		if err := tb.IndexOn("x", "y"); err != nil {
			t.Fatal(err)
		}
		return tb.snapshot().indexFor(0, 1).backend()
	}
	if got := mk(BackendAuto, cxs, cys); got != BackendRTree {
		t.Errorf("auto on clustered data chose %q, want rtree", got)
	}
	if got := mk(BackendAuto, uxs, uys); got != BackendGrid {
		t.Errorf("auto on uniform data chose %q, want grid", got)
	}
	if got := mk(BackendGrid, cxs, cys); got != BackendGrid {
		t.Errorf("grid override on clustered data chose %q", got)
	}
	if got := mk(BackendRTree, uxs, uys); got != BackendRTree {
		t.Errorf("rtree override on uniform data chose %q", got)
	}
	if err := (&Table{}).SetIndexBackend("btree"); err == nil {
		t.Error("unknown backend mode accepted")
	}
}

// TestIndexOnFlipsBackend: SetIndexBackend + IndexOn genuinely rebuilds
// under the new policy (the skip-rebuild fast path must not pin the old
// backend), and kNN stays exact across the flip.
func TestIndexOnFlipsBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 10_000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = rng.Float64()*100, rng.Float64()*100
	}
	tb, err := NewTable("t", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.BulkLoad(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{BackendRTree, BackendGrid, BackendRTree, BackendAuto} {
		if err := tb.SetIndexBackend(mode); err != nil {
			t.Fatal(err)
		}
		if err := tb.IndexOn("x", "y"); err != nil {
			t.Fatal(err)
		}
		got := tb.snapshot().indexFor(0, 1).backend()
		if mode == BackendRTree && got != BackendRTree {
			t.Fatalf("after SetIndexBackend(rtree)+IndexOn: backend %q", got)
		}
		if mode == BackendGrid && got != BackendGrid {
			t.Fatalf("after SetIndexBackend(grid)+IndexOn: backend %q", got)
		}
		ns, _, err := tb.Nearest("x", "y", 50, 50, 9, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteNearest(tb, 50, 50, 9, nil)
		for i := range want {
			if ns[i] != want[i] {
				t.Fatalf("mode %s: kNN diverged at %d: %+v vs %+v", mode, i, ns[i], want[i])
			}
		}
	}
}
