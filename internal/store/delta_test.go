package store

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geom"
)

// deltaRects is the viewport battery the delta property tests probe
// with: unrestricted, inverted, in-bounds, out-of-bounds (appends land
// outside the base extent, so probes must find them through clamped
// edge cells), degenerate, and NaN/±Inf-cornered rectangles.
func deltaRects(rng *rand.Rand) []geom.Rect {
	rects := []geom.Rect{
		{},
		{MinX: 5, MinY: 5, MaxX: 4, MaxY: 4},
		{MinX: -1e9, MinY: -1e9, MaxX: 1e9, MaxY: 1e9},
		{MinX: 120, MinY: -40, MaxX: 260, MaxY: 50},  // right of the base extent
		{MinX: -80, MinY: -80, MaxX: -10, MaxY: 300}, // left of it
		{MinX: math.NaN(), MinY: 30, MaxX: 60, MaxY: math.NaN()},
		{MinX: math.Inf(-1), MinY: 20, MaxX: math.Inf(1), MaxY: 80},
	}
	for q := 0; q < 8; q++ {
		rects = append(rects, geom.NewRect(
			geom.Pt(rng.Float64()*240-60, rng.Float64()*240-60),
			geom.Pt(rng.Float64()*240-60, rng.Float64()*240-60),
		))
	}
	return rects
}

// TestDeltaProbeMatchesRebuild is the delta-index property test: over
// random append schedules — batches of varying size, dirty rows,
// interleaved compactions and IndexOn rebuilds — a probe served from
// base + delta must return exactly the rows that (a) a freshly built
// index over the same data and (b) the linear predicate scan return.
func TestDeltaProbeMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		n0 := rng.Intn(3000)
		if trial == 0 {
			n0 = 0 // delta over an empty-built index: the no-grid path
		}
		xs, ys := randomPoints(rng, n0)
		ms := make([]float64, n0)
		for i := range ms {
			ms[i] = (xs[i] + ys[i]) / 2
		}
		live, err := NewTable("live", "x", "y", "m")
		if err != nil {
			t.Fatal(err)
		}
		if err := live.BulkLoad(xs, ys, ms); err != nil {
			t.Fatal(err)
		}
		if err := live.IndexOn("x", "y"); err != nil {
			t.Fatal(err)
		}

		allX := append([]float64(nil), xs...)
		allY := append([]float64(nil), ys...)
		allM := append([]float64(nil), ms...)

		steps := 1 + rng.Intn(5)
		for step := 0; step < steps; step++ {
			// One append batch, with occasional non-finite coordinates
			// and values, landing partly outside the base extent.
			bn := 1 + rng.Intn(500)
			bx := make([]float64, bn)
			by := make([]float64, bn)
			bm := make([]float64, bn)
			for i := range bx {
				bx[i] = rng.Float64()*240 - 60
				by[i] = rng.Float64()*240 - 60
				bm[i] = (bx[i] + by[i]) / 2
				switch rng.Intn(40) {
				case 0:
					bx[i] = math.NaN()
				case 1:
					by[i] = math.Inf(1)
				case 2:
					bm[i] = math.NaN()
				}
			}
			if rng.Intn(2) == 0 {
				if err := live.AppendRows(bx, by, bm); err != nil {
					t.Fatal(err)
				}
			} else {
				for i := range bx {
					if err := live.Append(bx[i], by[i], bm[i]); err != nil {
						t.Fatal(err)
					}
				}
			}
			allX = append(allX, bx...)
			allY = append(allY, by...)
			allM = append(allM, bm...)

			switch rng.Intn(4) {
			case 0:
				live.Compact()
			case 1:
				if err := live.IndexOn("x", "y"); err != nil {
					t.Fatal(err)
				}
			}

			// Reference: the same data, bulk-loaded and fully indexed.
			rebuilt, err := NewTable("rebuilt", "x", "y", "m")
			if err != nil {
				t.Fatal(err)
			}
			if err := rebuilt.BulkLoad(allX, allY, allM); err != nil {
				t.Fatal(err)
			}
			if err := rebuilt.IndexOn("x", "y"); err != nil {
				t.Fatal(err)
			}

			predSets := [][]Pred{
				nil,
				{{Column: "m", Min: 20, Max: 90}},
				{{Column: "m", Min: math.NaN(), Max: 50}, {Column: "x", Min: -30, Max: math.Inf(1)}},
			}
			for _, r := range deltaRects(rng) {
				for _, preds := range predSets {
					got, _, err := live.ScanRectWhere("x", "y", r, preds)
					if err != nil {
						t.Fatal(err)
					}
					want, _, err := rebuilt.ScanRectWhere("x", "y", r, preds)
					if err != nil {
						t.Fatal(err)
					}
					gi, wi := got.Indices(), want.Indices()
					if len(gi) != len(wi) {
						t.Fatalf("trial %d step %d rect %v preds %v: delta probe %d rows, rebuilt %d",
							trial, step, r, preds, len(gi), len(wi))
					}
					for i := range gi {
						if gi[i] != wi[i] {
							t.Fatalf("trial %d step %d rect %v preds %v: row %d: delta %d, rebuilt %d",
								trial, step, r, preds, i, gi[i], wi[i])
						}
					}
					// And against the linear scan, the semantic ground
					// truth both index paths must reproduce.
					assertFilteredEquiv(t, live, r, preds, "delta-vs-linear")
				}
			}
		}
	}
}

// TestCompactAbsorbsDelta pins the compaction contract: after Compact,
// every row is covered by the published base index (tail and delta
// gauges drop to zero), results are unchanged, and the compaction
// counters advance.
func TestCompactAbsorbsDelta(t *testing.T) {
	s := New()
	tb, err := s.CreateTable("c", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := randomPoints(rand.New(rand.NewSource(5)), 4000)
	if err := tb.BulkLoad(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 700; i++ {
		if err := tb.Append(float64(i)*0.1, 50); err != nil {
			t.Fatal(err)
		}
	}
	st := s.IndexStats()
	if st.TailRows != 700 || st.DeltaRows != 700 {
		t.Fatalf("pre-compaction gauges: tail %d delta %d, want 700/700", st.TailRows, st.DeltaRows)
	}
	r := geom.Rect{MinX: 10, MinY: 10, MaxX: 70, MaxY: 70}
	before, _, err := tb.ScanRectWhere("x", "y", r, nil)
	if err != nil {
		t.Fatal(err)
	}
	tb.Compact()
	st = s.IndexStats()
	if st.TailRows != 0 || st.DeltaRows != 0 {
		t.Fatalf("post-compaction gauges: tail %d delta %d, want 0/0", st.TailRows, st.DeltaRows)
	}
	if st.Compactions != 1 || st.CompactionSeconds <= 0 {
		t.Fatalf("compaction counters: %d compactions, %g seconds", st.Compactions, st.CompactionSeconds)
	}
	after, _, err := tb.ScanRectWhere("x", "y", r, nil)
	if err != nil {
		t.Fatal(err)
	}
	bi, ai := before.Indices(), after.Indices()
	if len(bi) != len(ai) {
		t.Fatalf("compaction changed the answer: %d rows before, %d after", len(bi), len(ai))
	}
	for i := range bi {
		if bi[i] != ai[i] {
			t.Fatalf("row %d: %d before, %d after compaction", i, bi[i], ai[i])
		}
	}
	// Idempotent: nothing left to fold.
	tb.Compact()
	if got := s.IndexStats().Compactions; got != 1 {
		t.Fatalf("no-op compaction bumped the counter to %d", got)
	}
}

// TestAutoCompactTriggers verifies the threshold trigger: with
// SetAutoCompact, appending past the fraction fires a background
// compaction that folds the delta without any explicit call.
func TestAutoCompactTriggers(t *testing.T) {
	tb, err := NewTable("a", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := randomPoints(rand.New(rand.NewSource(6)), 3000)
	if err := tb.BulkLoad(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	tb.SetAutoCompact(0.1)
	// 3000 * 0.1 = 300 >= compactMinRows, so this crosses the line.
	for i := 0; i < 400; i++ {
		if err := tb.Append(float64(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		d := tb.snapshot()
		if len(d.indexes) == 1 && d.indexes[0].rows() == d.n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-compaction never fired: index covers %d of %d rows", d.indexes[0].rows(), d.n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestZoneSkipAdapts drives a filtered probe with an uncorrelated
// column until the adaptive planner disables its zone checks, and
// verifies a correlated column keeps them.
func TestZoneSkipAdapts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 200_000
	xs := make([]float64, n)
	ys := make([]float64, n)
	ms := make([]float64, n) // correlated with position
	us := make([]float64, n) // independent noise: zones can never prune
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ys[i] = rng.Float64() * 100
		ms[i] = (xs[i] + ys[i]) / 2
		us[i] = rng.Float64() * 100
	}
	tb, err := NewTable("z", "x", "y", "m", "u")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.BulkLoad(xs, ys, ms, us); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	uncorr := []Pred{{Column: "u", Min: 20, Max: 80}}
	var st ScanStats
	for i := 0; i < 60; i++ {
		if _, st, err = tb.ScanRectWhere("x", "y", geom.Rect{}, uncorr); err != nil {
			t.Fatal(err)
		}
		if st.ZonesSkipped > 0 {
			break
		}
	}
	if st.ZonesSkipped != 1 {
		t.Fatalf("uncorrelated column never triggered the zone skip (stats %+v)", st)
	}
	// With no viewport either, the whole probe degenerates and must
	// have fallen back to the linear scan.
	if st.IndexProbe {
		t.Fatalf("all-skipped pure attribute filter still probed the grid: %+v", st)
	}
	// Results must be identical either way.
	assertFilteredEquiv(t, tb, geom.Rect{}, uncorr, "zone-skip-fallback")
	// A viewport keeps the probe (geometry still prunes) while the
	// skipped predicate is evaluated per row.
	vp := geom.Rect{MinX: 40, MinY: 40, MaxX: 60, MaxY: 60}
	_, st2, err := tb.ScanRectWhere("x", "y", vp, uncorr)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.IndexProbe || st2.ZonesSkipped != 1 {
		t.Fatalf("viewport + skipped filter should stay an index probe: %+v", st2)
	}
	assertFilteredEquiv(t, tb, vp, uncorr, "zone-skip-probe")
	// The correlated column must still be pruning.
	_, st3, err := tb.ScanRectWhere("x", "y", vp, []Pred{{Column: "m", Min: 95, Max: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if st3.ZonesSkipped != 0 || st3.CellsPruned == 0 {
		t.Fatalf("correlated column lost its zones: %+v", st3)
	}
	if got := tb.counters.zoneSkips.Load(); got == 0 {
		t.Fatal("zone-skip counter never advanced")
	}
}

// TestDeltaServesOutOfBoundsAppends pins the clamping contract
// directly: rows appended outside the base grid's extent are found by
// probes whose rectangles are also outside it.
func TestDeltaServesOutOfBoundsAppends(t *testing.T) {
	tb, err := NewTable("o", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := randomPoints(rand.New(rand.NewSource(8)), 2000)
	if err := tb.BulkLoad(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(500, 500); err != nil { // far outside [0,100]²
		t.Fatal(err)
	}
	rows, st, err := tb.ScanRectWhere("x", "y", geom.Rect{MinX: 400, MinY: 400, MaxX: 600, MaxY: 600}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || !rows.Contains(2000) {
		t.Fatalf("out-of-bounds appended row not found: %v (stats %+v)", rows.Indices(), st)
	}
	if st.DeltaRows == 0 {
		t.Fatalf("row was not served from the delta: %+v", st)
	}
}
