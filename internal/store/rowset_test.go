package store

import (
	"testing"
)

func TestRowSetRepresentations(t *testing.T) {
	// Zero value: empty.
	var zero RowSet
	if !zero.IsEmpty() || zero.Len() != 0 {
		t.Errorf("zero RowSet: empty=%v len=%d", zero.IsEmpty(), zero.Len())
	}
	if _, _, ok := zero.AsRange(); !ok {
		t.Error("zero RowSet should be the empty dense range")
	}

	// Dense range.
	r := RowRange(2, 5)
	if r.Len() != 3 {
		t.Errorf("RowRange(2,5).Len = %d", r.Len())
	}
	if got := r.Indices(); len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Errorf("RowRange indices = %v", got)
	}
	if lo, _ := r.Min(); lo != 2 {
		t.Errorf("Min = %d", lo)
	}
	if hi, _ := r.Max(); hi != 4 {
		t.Errorf("Max = %d", hi)
	}
	// Normalization.
	if !RowRange(3, 1).IsEmpty() {
		t.Error("inverted range should be empty")
	}
	if s, _, _ := RowRange(-4, 2).AsRange(); s != 0 {
		t.Errorf("negative start clamped to %d, want 0", s)
	}

	// Explicit indices sort defensively.
	s := RowIndices([]int{4, 1, 3})
	if got := s.Indices(); got[0] != 1 || got[1] != 3 || got[2] != 4 {
		t.Errorf("RowIndices sorted = %v", got)
	}
	if _, _, ok := s.AsRange(); ok {
		t.Error("explicit indices must not report a dense range")
	}
	var sum int
	s.ForEach(func(row int) { sum += row })
	if sum != 8 {
		t.Errorf("ForEach sum = %d", sum)
	}

	// Empty input normalizes to the empty set.
	if !RowIndices(nil).IsEmpty() || !RowIndices([]int{}).IsEmpty() {
		t.Error("empty indices should be the empty set")
	}

	// The All sentinel.
	if !All.IsAll() || zero.IsAll() {
		t.Error("IsAll must single out the All sentinel")
	}
}

func TestRowSetIndicesCopies(t *testing.T) {
	ids := []int{1, 2, 3}
	s := RowIndices(ids)
	out := s.Indices()
	out[0] = 99
	if got := s.Indices(); got[0] != 1 {
		t.Errorf("Indices aliased internal storage: %v", got)
	}
}
