package store

import (
	"testing"
)

func TestRowSetRepresentations(t *testing.T) {
	// Zero value: empty.
	var zero RowSet
	if !zero.IsEmpty() || zero.Len() != 0 {
		t.Errorf("zero RowSet: empty=%v len=%d", zero.IsEmpty(), zero.Len())
	}
	if _, _, ok := zero.AsRange(); !ok {
		t.Error("zero RowSet should be the empty dense range")
	}

	// Dense range.
	r := RowRange(2, 5)
	if r.Len() != 3 {
		t.Errorf("RowRange(2,5).Len = %d", r.Len())
	}
	if got := r.Indices(); len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Errorf("RowRange indices = %v", got)
	}
	if lo, _ := r.Min(); lo != 2 {
		t.Errorf("Min = %d", lo)
	}
	if hi, _ := r.Max(); hi != 4 {
		t.Errorf("Max = %d", hi)
	}
	// Normalization.
	if !RowRange(3, 1).IsEmpty() {
		t.Error("inverted range should be empty")
	}
	if s, _, _ := RowRange(-4, 2).AsRange(); s != 0 {
		t.Errorf("negative start clamped to %d, want 0", s)
	}

	// Explicit indices sort defensively.
	s := RowIndices([]int{4, 1, 3})
	if got := s.Indices(); got[0] != 1 || got[1] != 3 || got[2] != 4 {
		t.Errorf("RowIndices sorted = %v", got)
	}
	if _, _, ok := s.AsRange(); ok {
		t.Error("explicit indices must not report a dense range")
	}
	var sum int
	s.ForEach(func(row int) { sum += row })
	if sum != 8 {
		t.Errorf("ForEach sum = %d", sum)
	}

	// Empty input normalizes to the empty set.
	if !RowIndices(nil).IsEmpty() || !RowIndices([]int{}).IsEmpty() {
		t.Error("empty indices should be the empty set")
	}

	// The All sentinel.
	if !All.IsAll() || zero.IsAll() {
		t.Error("IsAll must single out the All sentinel")
	}
}

func TestRowSetRepresentationChooser(t *testing.T) {
	// Contiguous runs collapse to the dense range.
	s := rowSetFromSorted([]int{5, 6, 7, 8})
	if start, end, ok := s.AsRange(); !ok || start != 5 || end != 9 {
		t.Errorf("contiguous run = range[%d,%d) ok=%v, want [5,9)", start, end, ok)
	}
	// Dense-but-gappy results above the size floor become bitmaps.
	ids := make([]int, 0, 500)
	for i := 0; i < 1000; i += 2 {
		ids = append(ids, i)
	}
	s = rowSetFromSorted(ids)
	if s.bm == nil {
		t.Fatalf("every-other-row result should pick the bitmap (ids=%v...)", s.Indices()[:4])
	}
	if s.Len() != 500 {
		t.Errorf("bitmap Len = %d, want 500", s.Len())
	}
	if got := s.Indices(); got[0] != 0 || got[499] != 998 || got[250] != 500 {
		t.Errorf("bitmap indices = [%d ... %d]", got[0], got[499])
	}
	if s.Contains(499) || !s.Contains(498) {
		t.Error("bitmap membership wrong around 498/499")
	}
	if lo, _ := s.Min(); lo != 0 {
		t.Errorf("bitmap Min = %d", lo)
	}
	if hi, _ := s.Max(); hi != 998 {
		t.Errorf("bitmap Max = %d", hi)
	}
	if _, _, ok := s.AsRange(); ok {
		t.Error("bitmap must not report a dense range")
	}
	// Sparse results keep the id list.
	s = rowSetFromSorted([]int{1, 100_000, 3_000_000})
	if s.bm != nil || s.ids == nil {
		t.Error("sparse result should keep the explicit id list")
	}
	// Small results never pay for a bitmap even when dense in span.
	s = rowSetFromSorted([]int{1, 3, 5})
	if s.bm != nil {
		t.Error("3-row result should not build a bitmap")
	}
}

func TestRowSetAlgebra(t *testing.T) {
	evens := make([]int, 0, 300)
	byThree := make([]int, 0, 200)
	for i := 0; i < 600; i += 2 {
		evens = append(evens, i)
	}
	for i := 0; i < 600; i += 3 {
		byThree = append(byThree, i)
	}
	a := rowSetFromSorted(evens)   // bitmap
	b := rowSetFromSorted(byThree) // bitmap
	if a.bm == nil || b.bm == nil {
		t.Fatal("test premise: both operands should be bitmaps")
	}
	got := a.Intersect(b).Indices()
	if len(got) != 100 {
		t.Fatalf("evens ∩ multiples-of-3 = %d rows, want 100 (multiples of 6)", len(got))
	}
	for i, r := range got {
		if r != i*6 {
			t.Fatalf("intersection[%d] = %d, want %d", i, r, i*6)
		}
	}
	union := a.Union(b)
	if union.Len() != 300+200-100 {
		t.Fatalf("union Len = %d, want 400", union.Len())
	}

	// Range × range.
	r1, r2 := RowRange(0, 100), RowRange(50, 200)
	if s, e, ok := r1.Intersect(r2).AsRange(); !ok || s != 50 || e != 100 {
		t.Errorf("range ∩ range = [%d,%d) ok=%v", s, e, ok)
	}
	if s, e, ok := r1.Union(r2).AsRange(); !ok || s != 0 || e != 200 {
		t.Errorf("range ∪ range = [%d,%d) ok=%v", s, e, ok)
	}
	// Disjoint ranges cannot merge.
	u := RowRange(0, 10).Union(RowRange(20, 30))
	if u.Len() != 20 || u.Contains(15) {
		t.Errorf("disjoint union Len=%d Contains(15)=%v", u.Len(), u.Contains(15))
	}

	// All is the identity for ∩ and absorbs ∪.
	ids := RowIndices([]int{3, 9})
	if got := All.Intersect(ids); got.Len() != 2 || !got.Contains(9) {
		t.Errorf("All ∩ ids = %v", got.Indices())
	}
	if got := ids.Intersect(All); got.Len() != 2 {
		t.Errorf("ids ∩ All = %v", got.Indices())
	}
	if !ids.Union(All).IsAll() || !All.Union(ids).IsAll() {
		t.Error("union with All must be All")
	}

	// Empty is the identity for ∪ and absorbs ∩.
	if !ids.Intersect(RowSet{}).IsEmpty() || !(RowSet{}).Intersect(ids).IsEmpty() {
		t.Error("intersection with empty must be empty")
	}
	if got := ids.Union(RowSet{}); got.Len() != 2 {
		t.Errorf("ids ∪ empty = %v", got.Indices())
	}

	// Mixed representations: bitmap ∩ range narrows to the overlap.
	if got := a.Intersect(RowRange(100, 110)).Indices(); len(got) != 5 || got[0] != 100 {
		t.Errorf("bitmap ∩ range = %v", got)
	}
	// A range covering the other operand absorbs the union.
	if s, e, ok := RowRange(0, 1000).Union(ids).AsRange(); !ok || s != 0 || e != 1000 {
		t.Errorf("covering-range union = [%d,%d) ok=%v", s, e, ok)
	}
	// Algebra results normalize: intersecting two overlapping ranges of
	// bitmaps that leave a contiguous run must come back dense.
	c := rowSetFromSorted(evens)
	if got := c.Intersect(RowRange(100, 101)); got.Len() != 1 {
		t.Errorf("singleton intersect = %v", got.Indices())
	}
	// A large range with a nearby outlier unions through the word-wise
	// path (no 100k-id materialization of the range).
	u = RowRange(0, 100_000).Union(RowIndices([]int{200_000}))
	if u.Len() != 100_001 || !u.Contains(99_999) || !u.Contains(200_000) || u.Contains(150_000) {
		t.Errorf("range∪outlier: len=%d contains(99999,200000,150000)=%v,%v,%v",
			u.Len(), u.Contains(99_999), u.Contains(200_000), u.Contains(150_000))
	}
	// A faraway outlier makes the combined span too sparse for a bitmap;
	// the fallback merge must still be exact.
	u = RowRange(0, 10).Union(RowIndices([]int{1 << 30}))
	if u.Len() != 11 || !u.Contains(9) || !u.Contains(1<<30) {
		t.Errorf("sparse range∪outlier: len=%d", u.Len())
	}
}

func TestRowSetIndicesCopies(t *testing.T) {
	ids := []int{1, 2, 3}
	s := RowIndices(ids)
	out := s.Indices()
	out[0] = 99
	if got := s.Indices(); got[0] != 1 {
		t.Errorf("Indices aliased internal storage: %v", got)
	}
}
