package store

import (
	"sort"
	"testing"
)

// decodeFuzzSet turns fuzzer bytes into a RowSet in a fuzzer-chosen
// representation plus the reference model. Bytes are gap-encoded (each
// byte advances the cursor by 1–32), so any input decodes to a valid
// sorted, duplicate-free id set. rep selects the representation: 0 lets
// the chooser pick, 1 forces the explicit id list, 2 forces the bitmap,
// 3 is the All sentinel (model == nil means the universal set).
func decodeFuzzSet(data []byte, rep byte) (RowSet, map[int]bool) {
	if rep%4 == 3 {
		return All, nil
	}
	model := make(map[int]bool, len(data))
	ids := make([]int, 0, len(data))
	cur := -1
	for _, b := range data {
		cur += int(b%32) + 1
		ids = append(ids, cur)
		model[cur] = true
	}
	switch rep % 4 {
	case 1:
		return RowIndices(ids), model
	case 2:
		if len(ids) == 0 {
			return RowSet{}, model
		}
		return RowSet{bm: bitmapFromSorted(ids), end: -1}, model
	default:
		return rowSetFromSorted(ids), model
	}
}

// checkSetAgainstModel verifies every RowSet accessor against the model
// set (nil model = All).
func checkSetAgainstModel(t *testing.T, label string, got RowSet, model map[int]bool) {
	t.Helper()
	if model == nil {
		if !got.IsAll() {
			t.Fatalf("%s: want the All sentinel, got %d rows", label, got.Len())
		}
		return
	}
	if got.IsAll() {
		t.Fatalf("%s: got All, want %d rows", label, len(model))
	}
	if got.Len() != len(model) {
		t.Fatalf("%s: Len %d, want %d", label, got.Len(), len(model))
	}
	want := make([]int, 0, len(model))
	for r := range model {
		want = append(want, r)
	}
	sort.Ints(want)
	i := 0
	prev := -1
	got.ForEach(func(r int) {
		if i < len(want) && r != want[i] {
			t.Fatalf("%s: ForEach[%d] = %d, want %d", label, i, r, want[i])
		}
		if r <= prev {
			t.Fatalf("%s: ForEach not strictly ascending: %d after %d", label, r, prev)
		}
		prev = r
		i++
	})
	if i != len(want) {
		t.Fatalf("%s: ForEach visited %d rows, want %d", label, i, len(want))
	}
	ids := got.Indices()
	if len(ids) != len(want) {
		t.Fatalf("%s: Indices len %d, want %d", label, len(ids), len(want))
	}
	for k, r := range ids {
		if r != want[k] {
			t.Fatalf("%s: Indices[%d] = %d, want %d", label, k, r, want[k])
		}
	}
	if len(want) > 0 {
		if lo, ok := got.Min(); !ok || lo != want[0] {
			t.Fatalf("%s: Min = %d ok=%v, want %d", label, lo, ok, want[0])
		}
		if hi, ok := got.Max(); !ok || hi != want[len(want)-1] {
			t.Fatalf("%s: Max = %d ok=%v, want %d", label, hi, ok, want[len(want)-1])
		}
		for _, probe := range []int{want[0], want[len(want)/2], want[len(want)-1]} {
			if !got.Contains(probe) {
				t.Fatalf("%s: Contains(%d) = false, want true", label, probe)
			}
		}
	} else if !got.IsEmpty() {
		t.Fatalf("%s: want empty", label)
	}
	for _, probe := range []int{-1, -5} {
		if got.Contains(probe) {
			t.Fatalf("%s: Contains(%d) = true for a negative row", label, probe)
		}
	}
	if hi, ok := got.Max(); ok {
		for _, probe := range []int{hi + 1, hi + 63, hi + 64} {
			if model[probe] != got.Contains(probe) {
				t.Fatalf("%s: Contains(%d) = %v past Max", label, probe, got.Contains(probe))
			}
		}
	}
}

// FuzzRowSetAlgebra drives Intersect and Union over every representation
// pairing (auto-chosen, forced ids, forced bitmap, All) against a
// map[int]bool reference model, then re-validates every accessor of the
// results. Run the smoke with:
//
//	go test -run '^$' -fuzz FuzzRowSetAlgebra -fuzztime 10s ./internal/store
func FuzzRowSetAlgebra(f *testing.F) {
	f.Add([]byte{}, []byte{}, byte(0))
	f.Add([]byte{1, 1, 1, 1}, []byte{2, 2}, byte(0))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, []byte{1, 3, 5}, byte(6))
	f.Add([]byte{31, 31, 31}, []byte{0, 31, 0, 31}, byte(9))
	f.Add([]byte{5, 9, 22, 1, 1, 1}, []byte{}, byte(3)) // a=All via rep bits
	f.Add([]byte{7}, []byte{7}, byte(15))               // All × All
	f.Add([]byte{1, 2, 4, 8, 16, 32, 64, 128}, []byte{255, 255}, byte(2))
	f.Fuzz(func(t *testing.T, aRaw, bRaw []byte, mode byte) {
		// Bound the decoded universe so a pathological input can't chew
		// through gigabytes of model map.
		if len(aRaw) > 1<<12 || len(bRaw) > 1<<12 {
			t.Skip("input too large")
		}
		a, ma := decodeFuzzSet(aRaw, mode&3)
		b, mb := decodeFuzzSet(bRaw, (mode>>2)&3)
		checkSetAgainstModel(t, "a", a, ma)
		checkSetAgainstModel(t, "b", b, mb)

		var mi, mu map[int]bool // nil = All
		switch {
		case ma == nil && mb == nil:
		case ma == nil:
			mi, mu = mb, nil
		case mb == nil:
			mi, mu = ma, nil
		default:
			mi = make(map[int]bool)
			mu = make(map[int]bool, len(ma)+len(mb))
			for r := range ma {
				if mb[r] {
					mi[r] = true
				}
				mu[r] = true
			}
			for r := range mb {
				mu[r] = true
			}
		}
		checkSetAgainstModel(t, "a∩b", a.Intersect(b), mi)
		checkSetAgainstModel(t, "b∩a", b.Intersect(a), mi)
		checkSetAgainstModel(t, "a∪b", a.Union(b), mu)
		checkSetAgainstModel(t, "b∪a", b.Union(a), mu)
		// Idempotence and identities on the fuzzed operand.
		checkSetAgainstModel(t, "a∩a", a.Intersect(a), ma)
		checkSetAgainstModel(t, "a∪a", a.Union(a), ma)
		checkSetAgainstModel(t, "a∩∅", a.Intersect(RowSet{}), map[int]bool{})
		checkSetAgainstModel(t, "a∪∅", a.Union(RowSet{}), ma)
		checkSetAgainstModel(t, "a∩All", a.Intersect(All), ma)
		checkSetAgainstModel(t, "a∪All", a.Union(All), nil)
	})
}
