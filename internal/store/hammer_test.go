package store

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
)

// TestFilteredScanHammer hammers one table with concurrent Append
// (absorbed into delta buckets), IndexOn rebuilds, background-style
// Compact calls, store-level DropTable/CreateTable churn, and filtered
// ScanRectWhere readers. It extends the PR 1 scan-vs-reload pattern to
// the predicate-pushdown and delta-compaction paths and asserts, under
// -race, snapshot consistency: a reader can never panic, never sees a
// row twice or out of order, never sees rows outside its snapshot
// generation, never receives a row that fails its predicates — and
// never MISSES a published matching row: every row that existed before
// the scan started and satisfies viewport + predicates must be in the
// result, no matter how many compactions published mid-scan.
//
// The validation leans on the generation contract: rows are append-only
// while this test runs, so any row id a scan returns must be < NumRows
// observed AFTER the scan, every row id < NumRows observed BEFORE the
// scan is in whatever snapshot the scan used, and the first-n-rows
// prefix of every column is immutable — a Column snapshot taken after
// the scan therefore holds exactly the values the scan evaluated.
//
// Since PR 7 every reader here also exercises the batch selection
// kernels (and, above parallelScanMinRows, the sharded probe): the
// NaN-laced appends keep the kernels' NaN-matches semantics under
// concurrent load, complementing the single-threaded equivalence
// tests in kernel_test.go.
func TestFilteredScanHammer(t *testing.T) {
	st := New()
	tb, err := st.CreateTable("h", "x", "y", "m")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	n0 := 4000
	xs := make([]float64, n0)
	ys := make([]float64, n0)
	ms := make([]float64, n0)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ys[i] = rng.Float64() * 100
		ms[i] = (xs[i] + ys[i]) / 2
	}
	if err := tb.BulkLoad(xs, ys, ms); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(300 * time.Millisecond)
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	// Appender: grows the table one row at a time (some rows NaN).
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for time.Now().Before(deadline) {
			x := rng.Float64() * 100
			if rng.Intn(50) == 0 {
				x = nan()
			}
			y := rng.Float64() * 100
			if err := tb.Append(x, y, (x+y)/2); err != nil {
				report(err)
				return
			}
		}
	}()

	// Indexer: absorbs the appended tail back into the grid.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			if err := tb.IndexOn("x", "y"); err != nil {
				report(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Backend churner: flips the index backend policy under the live
	// appends, compactions, and scans, forcing grid→tree→auto rebuilds
	// to publish mid-flight. Readers must stay exact across every flip.
	wg.Add(1)
	go func() {
		defer wg.Done()
		modes := []string{BackendRTree, BackendGrid, BackendAuto}
		for i := 0; time.Now().Before(deadline); i++ {
			if err := tb.SetIndexBackend(modes[i%len(modes)]); err != nil {
				report(err)
				return
			}
			if err := tb.IndexOn("x", "y"); err != nil {
				report(err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// kNN reader: structural assertions under churn — results ascending
	// by (distance, row), within the snapshot, matching the predicate.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(55))
		for time.Now().Before(deadline) {
			preds := []Pred{{Column: "m", Min: 20, Max: 80}}
			ns, _, err := tb.Nearest("x", "y", rng.Float64()*100, rng.Float64()*100, 12, preds)
			if err != nil {
				report(err)
				return
			}
			nAfter := tb.NumRows()
			mc, err := tb.Column("m")
			if err != nil {
				report(err)
				return
			}
			for i, nb := range ns {
				if nb.Row < 0 || nb.Row >= nAfter {
					t.Errorf("kNN row %d outside snapshot (n %d)", nb.Row, nAfter)
					return
				}
				if i > 0 && (ns[i-1].Dist > nb.Dist || (ns[i-1].Dist == nb.Dist && ns[i-1].Row >= nb.Row)) {
					t.Errorf("kNN results out of order at %d: %+v then %+v", i, ns[i-1], nb)
					return
				}
				if mc[nb.Row] < 20 || mc[nb.Row] > 80 {
					t.Errorf("kNN row %d m=%g fails predicate", nb.Row, mc[nb.Row])
					return
				}
			}
		}
	}()

	// Compactor: folds the delta into fresh generations while scans and
	// appends are in flight — the background-compaction publish racing
	// the read path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			tb.Compact()
			time.Sleep(time.Millisecond)
		}
	}()

	// Catalog churn: drop and recreate the table name in the store, the
	// way sample replacement does. Readers keep their handle to the
	// original table, which stays fully usable after the drop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			if err := st.DropTable("h"); err != nil {
				report(err)
				return
			}
			if _, err := st.CreateTable("h", "x", "y", "m"); err != nil {
				report(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Filtered scanners.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				lo := rng.Float64() * 80
				vp := geom.Rect{MinX: lo, MinY: lo, MaxX: lo + 30, MaxY: lo + 30}
				preds := []Pred{{Column: "m", Min: lo, Max: lo + 20}}
				if rng.Intn(4) == 0 {
					vp = geom.Rect{} // pure attribute filter over the grid
				}
				nBefore := tb.NumRows()
				rows, _, err := tb.ScanRectWhere("x", "y", vp, preds)
				if err != nil {
					report(err)
					return
				}
				// The snapshot generation bound: every returned row must
				// exist in a generation no newer than "now".
				nAfter := tb.NumRows()
				xc, err := tb.Column("x")
				if err != nil {
					report(err)
					return
				}
				yc, _ := tb.Column("y")
				mc, _ := tb.Column("m")
				prev := -1
				bad := false
				rows.ForEach(func(r int) {
					if bad {
						return
					}
					if r <= prev || r < 0 || r >= nAfter || r >= len(xc) {
						t.Errorf("row %d out of order or outside the snapshot (prev %d, n %d)", r, prev, nAfter)
						bad = true
						return
					}
					prev = r
					if vp != (geom.Rect{}) && !inRect(xc[r], yc[r], vp) {
						t.Errorf("row %d (%g,%g) outside viewport %v", r, xc[r], yc[r], vp)
						bad = true
						return
					}
					if mc[r] < preds[0].Min || mc[r] > preds[0].Max {
						t.Errorf("row %d m=%g fails predicate [%g,%g]", r, mc[r], preds[0].Min, preds[0].Max)
						bad = true
					}
				})
				if bad {
					return
				}
				// Completeness: every row published before the scan
				// started that satisfies viewport + predicate must be
				// in the result — a compaction or rebuild publishing
				// mid-scan may neither hide a row nor double it (the
				// r <= prev check above catches duplicates).
				for r := 0; r < nBefore; r++ {
					inVp := vp == (geom.Rect{}) || inRect(xc[r], yc[r], vp)
					match := inVp && !(mc[r] < preds[0].Min || mc[r] > preds[0].Max)
					if match && !rows.Contains(r) {
						t.Errorf("published row %d (%g,%g m=%g) missing from scan (nBefore %d)",
							r, xc[r], yc[r], mc[r], nBefore)
						return
					}
				}
			}
		}(int64(100 + w))
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Errorf("hammer goroutine failed: %v", err)
	}
}

func nan() float64 { var z float64; return z / z }

// TestDeleteHammer races DeleteWhere against Append, IndexOn, and the
// reclaiming Compact path. Physical reclaim rebases row ids, so unlike
// TestFilteredScanHammer the column prefix is NOT immutable here and no
// value-level completeness check is possible; the quiescent equivalence
// lives in TestDeleteEquivalenceProperty. What must hold under -race at
// all times: no panic, no error from any path, and every scan returns a
// strictly ascending duplicate-free row set within its snapshot.
func TestDeleteHammer(t *testing.T) {
	tb, err := NewTable("h", "x", "y", "m")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	n0 := 4000
	xs := make([]float64, n0)
	ys := make([]float64, n0)
	ms := make([]float64, n0)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ys[i] = rng.Float64() * 100
		ms[i] = float64(i % 100)
	}
	if err := tb.BulkLoad(xs, ys, ms); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(300 * time.Millisecond)
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	// Appender keeps the table growing so deletes always find prey.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		for time.Now().Before(deadline) {
			x := rng.Float64() * 100
			if rng.Intn(50) == 0 {
				x = nan()
			}
			if err := tb.Append(x, rng.Float64()*100, float64(rng.Intn(100))); err != nil {
				report(err)
				return
			}
		}
	}()

	// Deleters: rectangle and predicate tombstoning, occasionally the
	// optimistic-retry worst case of two racing delete-alls.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				var err error
				switch rng.Intn(3) {
				case 0:
					lo := rng.Float64() * 90
					_, err = tb.DeleteRect("x", "y", geom.Rect{MinX: lo, MinY: lo, MaxX: lo + 5, MaxY: lo + 5})
				default:
					m := float64(rng.Intn(100))
					_, err = tb.DeleteWhere([]Pred{{Column: "m", Min: m, Max: m}})
				}
				if err != nil {
					report(err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(int64(200 + w))
	}

	// Indexer and reclaiming compactor, racing the tombstone writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			if err := tb.IndexOn("x", "y"); err != nil {
				report(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			tb.Compact()
			time.Sleep(time.Millisecond)
		}
	}()

	// Readers: structural assertions only (see the doc comment).
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				lo := rng.Float64() * 80
				vp := geom.Rect{MinX: lo, MinY: lo, MaxX: lo + 30, MaxY: lo + 30}
				var rects []geom.Rect
				if rng.Intn(2) == 0 {
					rects = []geom.Rect{vp, {MinX: lo + 40, MinY: lo + 40, MaxX: lo + 60, MaxY: lo + 60}}
				} else {
					rects = []geom.Rect{vp}
				}
				rows, _, err := tb.ScanRects("x", "y", rects, []Pred{{Column: "m", Min: 10, Max: 90}})
				if err != nil {
					report(err)
					return
				}
				// A reclaim publishing mid-loop SHRINKS NumRows, so the
				// scan's ids cannot be bounded by a later NumRows read —
				// only order and non-negativity are stable claims.
				prev := -1
				bad := false
				rows.ForEach(func(r int) {
					if bad {
						return
					}
					if r <= prev || r < 0 {
						t.Errorf("row %d out of order or negative (prev %d)", r, prev)
						bad = true
						return
					}
					prev = r
				})
				if bad {
					return
				}
				if live := tb.LiveRows(); live < 0 {
					t.Errorf("LiveRows went negative: %d", live)
					return
				}
			}
		}(int64(300 + w))
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Errorf("delete hammer goroutine failed: %v", err)
	}
}
