package store

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geom"
)

// newCancelTable builds a 1M-row table with a spatial index and a
// filter column — the zoomout shape of the cancellation acceptance
// criterion: a rect covering everything plus a residual predicate, so
// the scan has real work at every boundary the canceler polls.
func newCancelTable(t testing.TB) *Table {
	t.Helper()
	st := New()
	tb, err := st.CreateTable("big", "x", "y", "m")
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 20
	rng := rand.New(rand.NewSource(17))
	xs := make([]float64, n)
	ys := make([]float64, n)
	ms := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
		ys[i] = rng.Float64() * 1000
		ms[i] = rng.Float64()
	}
	if err := tb.BulkLoad(xs, ys, ms); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	return tb
}

var cancelZoomout = geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}

var cancelPreds = []Pred{{Column: "m", Min: 0.25, Max: 0.75}}

// TestScanCancellationPrompt: a context canceled before the call makes
// every Ctx entry point return context.Canceled well under the 50ms
// acceptance bound instead of finishing the 1M-row scan, and no partial
// result escapes.
func TestScanCancellationPrompt(t *testing.T) {
	tb := newCancelTable(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	calls := []struct {
		name string
		run  func() (int, error)
	}{
		{"ScanRectWhereCtx", func() (int, error) {
			rs, _, err := tb.ScanRectWhereCtx(ctx, "x", "y", cancelZoomout, cancelPreds)
			return rs.Len(), err
		}},
		{"ScanRectsCtx", func() (int, error) {
			rs, _, err := tb.ScanRectsCtx(ctx, "x", "y", []geom.Rect{cancelZoomout, cancelZoomout}, cancelPreds)
			return rs.Len(), err
		}},
		{"NearestCtx", func() (int, error) {
			nb, _, err := tb.NearestCtx(ctx, "x", "y", 500, 500, 10, cancelPreds)
			return len(nb), err
		}},
	}
	for _, c := range calls {
		start := time.Now()
		n, err := c.run()
		elapsed := time.Since(start)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s with canceled ctx: err = %v, want context.Canceled", c.name, err)
		}
		if n != 0 {
			t.Fatalf("%s returned %d rows alongside the cancellation", c.name, n)
		}
		if elapsed > cancelLatencyBound {
			t.Fatalf("%s took %s to notice the canceled ctx, want < %s", c.name, elapsed, cancelLatencyBound)
		}
	}
}

// TestScanDeadlinePropagation: an expired deadline surfaces as
// context.DeadlineExceeded (the taxonomy the HTTP layer maps to 503),
// through the same polls.
func TestScanDeadlinePropagation(t *testing.T) {
	tb := newCancelTable(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, _, err := tb.ScanRectWhereCtx(ctx, "x", "y", cancelZoomout, cancelPreds)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want context.DeadlineExceeded", err)
	}
	_, _, err = tb.NearestCtx(ctx, "x", "y", 500, 500, 10, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline kNN: err = %v, want context.DeadlineExceeded", err)
	}
}

// TestScanMidFlightCancellation cancels while the scan is running and
// requires the return within the acceptance bound, measured from the
// cancel. If the scan happens to win the race outright its (complete)
// result is fine — the test only rejects a cancellation that is
// acknowledged slowly.
func TestScanMidFlightCancellation(t *testing.T) {
	tb := newCancelTable(t)
	ctx, cancel := context.WithCancel(context.Background())
	type res struct {
		err error
	}
	done := make(chan res, 1)
	go func() {
		// Many rects multiply the work so the cancel reliably lands
		// mid-flight.
		rects := make([]geom.Rect, 64)
		for i := range rects {
			rects[i] = cancelZoomout
		}
		_, _, err := tb.ScanRectsCtx(ctx, "x", "y", rects, cancelPreds)
		done <- res{err}
	}()
	time.Sleep(2 * time.Millisecond)
	start := time.Now()
	cancel()
	r := <-done
	elapsed := time.Since(start)
	if r.err != nil && !errors.Is(r.err, context.Canceled) {
		t.Fatalf("mid-flight cancel: err = %v", r.err)
	}
	if elapsed > cancelLatencyBound {
		t.Fatalf("scan acknowledged cancellation after %s, want < %s", elapsed, cancelLatencyBound)
	}
}

// TestBackgroundContextUnchanged: a context that cannot be canceled
// takes the nil-canceler path and returns exactly what the context-free
// entry points do.
func TestBackgroundContextUnchanged(t *testing.T) {
	tb := newCancelTable(t)
	// Warm lazily-built zone maps so both measured scans see the same
	// pruning state.
	if _, _, err := tb.ScanRectWhere("x", "y", cancelZoomout, cancelPreds); err != nil {
		t.Fatal(err)
	}
	want, wantSt, err := tb.ScanRectWhere("x", "y", cancelZoomout, cancelPreds)
	if err != nil {
		t.Fatal(err)
	}
	got, gotSt, err := tb.ScanRectWhereCtx(context.Background(), "x", "y", cancelZoomout, cancelPreds)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() || gotSt != wantSt {
		t.Fatalf("Background ctx diverged: %d rows %+v vs %d rows %+v",
			got.Len(), gotSt, want.Len(), wantSt)
	}
}
