package store

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/geom"
)

// Backend selection: every index-build point (BulkLoad, IndexOn,
// Compact) routes through buildSpatialIndex, which picks the concrete
// spatialIndex implementation per table. The uniform CSR grid is ideal
// for dense uniform scatter — O(1) cell addressing, contiguous runs,
// trivially parallel probes — but degrades badly under skew: when most
// rows land in a few cells, a small viewport still sweeps those giant
// cells row by row. The packed STR R-tree (strtree.go) adapts its leaf
// extents to the data instead, so a clustered table probes in
// O(result + log n) regardless of how the mass is distributed.
//
// The planner's evidence is the grid-cell occupancy histogram measured
// at build time: occSkew — the ratio of the row-weighted 99th-percentile
// cell population to the mean (see occFromCounts) — is ~1 for uniform
// scatter and grows without bound as mass concentrates. Above
// treeSkewThreshold the grid's worst-case cells dominate probe cost and
// the tree wins; below it the grid's cheaper addressing does.
// SetIndexBackend overrides the choice per table (the vasserve
// -index-backend flag sets it fleet-wide).

// Backend name strings, as exported through IndexStats and /metrics.
const (
	BackendAuto  = "auto"
	BackendGrid  = "grid"
	BackendRTree = "rtree"
)

// Internal backend-mode codes held in Table.backendMode.
const (
	backendAuto int32 = iota
	backendGrid
	backendRTree
)

// treeSkewThreshold is the occupancy skew (p99 cell population over
// mean) above which auto mode picks the R-tree backend. At the 64
// rows/cell grid target, 8× means the busiest percentile of cells holds
// hundreds of rows each — a viewport clipping one of them examines more
// rows than an entire uniform probe would.
const treeSkewThreshold = 8.0

// SetIndexBackend sets the table's index backend policy: "auto" (the
// default — choose per build from the occupancy statistics), "grid", or
// "rtree". The policy applies to subsequent index builds (BulkLoad,
// IndexOn, Compact); call IndexOn again to rebuild an existing index
// under the new policy.
func (t *Table) SetIndexBackend(mode string) error {
	m, err := parseBackendMode(mode)
	if err != nil {
		return err
	}
	t.backendMode.Store(m)
	return nil
}

// IndexBackend returns the table's current backend policy string.
func (t *Table) IndexBackend() string {
	switch t.backendMode.Load() {
	case backendGrid:
		return BackendGrid
	case backendRTree:
		return BackendRTree
	}
	return BackendAuto
}

func parseBackendMode(mode string) (int32, error) {
	switch mode {
	case BackendAuto, "":
		return backendAuto, nil
	case BackendGrid:
		return backendGrid, nil
	case BackendRTree:
		return backendRTree, nil
	}
	return 0, fmt.Errorf("store: unknown index backend %q (want auto, grid, or rtree)", mode)
}

// backendSatisfies reports whether an existing index's backend complies
// with the table's policy — the IndexOn fast path may only skip a
// rebuild when it does.
func backendSatisfies(mode int32, backend string) bool {
	switch mode {
	case backendGrid:
		return backend == BackendGrid
	case backendRTree:
		return backend == BackendRTree
	}
	return true
}

// buildSpatialIndex builds the backend the policy selects over the
// (xi, yi) pair. In auto mode the choice comes from a grid-occupancy
// counting pass over the data. It returns nil (a true nil interface,
// never a typed-nil pointer) when the pair is unindexable — too many
// rows for int32 ids, or nothing finite to bin.
func buildSpatialIndex(xi, yi int, cols [][]float64, n int, mode int32) spatialIndex {
	m := mode
	if m == backendAuto {
		m = backendGrid
		if _, skew, ok := occupancyStats(xi, yi, cols, n); ok && skew >= treeSkewThreshold {
			m = backendRTree
		}
	}
	if m == backendRTree {
		if tix := buildTreeIndex(xi, yi, cols, n); tix != nil {
			return tix
		}
		return nil
	}
	if ix := buildRectIndex(xi, yi, cols, n); ix != nil {
		return ix
	}
	return nil
}

// occupancyStats measures the grid-cell occupancy distribution the
// uniform grid would have over the (xi, yi) pair: one bounds pass, one
// counting pass over the same grid sizing buildRectIndex uses. ok is
// false when there is nothing finite to measure.
func occupancyStats(xi, yi int, cols [][]float64, n int) (p99, skew float64, ok bool) {
	if n == 0 || n > math.MaxInt32 {
		return 0, 0, false
	}
	xs, ys := cols[xi], cols[yi]
	g := gridGeom{bounds: geom.EmptyRect()}
	binned := 0
	for i := 0; i < n; i++ {
		x, y := xs[i], ys[i]
		if !isFinite(x) || !isFinite(y) {
			continue
		}
		g.bounds = g.bounds.UnionPoint(geom.Pt(x, y))
		binned++
	}
	if binned == 0 || g.bounds.IsEmpty() {
		return 0, 0, false
	}
	g.sizeGrid(n)
	counts := make([]int32, g.nx*g.ny)
	for i := 0; i < n; i++ {
		x, y := xs[i], ys[i]
		if !isFinite(x) || !isFinite(y) {
			continue
		}
		counts[g.cellIndex(x, y)]++
	}
	p99, skew = occFromCounts(counts, binned)
	return p99, skew, true
}

// occFromCounts reduces a per-cell population histogram to the planner's
// two numbers: the ROW-weighted 99th-percentile occupancy — the
// population of the cell the 99th-percentile row lives in, walking
// cells in ascending-population order — and its ratio to the mean
// population. Row weighting is what makes the statistic sensitive to
// concentration: a cell-weighted percentile never sees one ultra-hot
// cell among hundreds of sparse ones (99% of CELLS stay sparse), while
// by rows that cell is where nearly every row lives. The grid sizes
// itself at ~64 rows/cell, so the mean is ~64 by construction and skew
// reads as "how many grid cells' worth of rows share the dense cells":
// ~1 for uniform scatter, hundreds under heavy clustering.
func occFromCounts(counts []int32, binned int) (p99, skew float64) {
	if len(counts) == 0 || binned == 0 {
		return 0, 0
	}
	sorted := make([]int32, len(counts))
	copy(sorted, counts)
	slices.Sort(sorted)
	target := (99*binned + 99) / 100 // rank of the 99th-percentile row
	cum := 0
	for _, c := range sorted {
		cum += int(c)
		if cum >= target {
			p99 = float64(c)
			break
		}
	}
	mean := float64(binned) / float64(len(counts))
	if mean > 0 {
		skew = p99 / mean
	}
	return p99, skew
}
