//go:build !race

package store

import "time"

// cancelLatencyBound is the acceptance bound on how quickly a scan
// acknowledges cancellation: 50ms on the 1M-row zoomout shape.
const cancelLatencyBound = 50 * time.Millisecond
