package store

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geom"
)

func TestDeleteWhereBasics(t *testing.T) {
	tb, err := NewTable("t", "x", "y", "m")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tb.Append(float64(i), float64(i), float64(i%10)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := tb.DeleteWhere([]Pred{{Column: "m", Min: 3, Max: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("deleted %d rows, want 20", n)
	}
	if tb.NumRows() != 100 {
		t.Errorf("NumRows = %d, want 100 (tombstones are logical)", tb.NumRows())
	}
	if tb.LiveRows() != 80 {
		t.Errorf("LiveRows = %d, want 80", tb.LiveRows())
	}
	rs, err := tb.Scan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 80 {
		t.Errorf("Scan(nil) = %d rows, want 80", rs.Len())
	}
	m, _ := tb.Column("m")
	rs.ForEach(func(r int) {
		if m[r] >= 3 && m[r] <= 4 {
			t.Fatalf("row %d (m=%g) survived its delete", r, m[r])
		}
	})
	// Tombstoning the same rows again is a no-op.
	if n, err = tb.DeleteWhere([]Pred{{Column: "m", Min: 3, Max: 4}}); err != nil || n != 0 {
		t.Errorf("repeat delete = (%d, %v), want (0, nil)", n, err)
	}
	if _, err := tb.DeleteWhere([]Pred{{Column: "ghost", Min: 0, Max: 1}}); err == nil {
		t.Error("unknown column: want error")
	}
	// Empty predicate list deletes every surviving row.
	if n, err = tb.DeleteWhere(nil); err != nil || n != 80 {
		t.Fatalf("delete-all = (%d, %v), want (80, nil)", n, err)
	}
	if tb.LiveRows() != 0 {
		t.Errorf("LiveRows after delete-all = %d", tb.LiveRows())
	}
	if rs, _ := tb.Scan(nil); !rs.IsEmpty() {
		t.Errorf("Scan after delete-all returned %d rows", rs.Len())
	}
	if b, err := tb.Bounds("x", "y"); err != nil || !b.IsEmpty() {
		t.Errorf("Bounds over fully deleted table = %v, %v; want empty", b, err)
	}
}

func TestDeleteRect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs, ys := randomPoints(rng, 5000)
	tb, _ := NewTable("t", "x", "y")
	if err := tb.BulkLoad(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	r := geom.Rect{MinX: 20, MinY: 20, MaxX: 60, MaxY: 60}
	want := 0
	for i := range xs {
		if !(xs[i] < r.MinX || xs[i] > r.MaxX || ys[i] < r.MinY || ys[i] > r.MaxY) {
			want++
		}
	}
	n, err := tb.DeleteRect("x", "y", r)
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("DeleteRect deleted %d rows, brute force says %d", n, want)
	}
	// The index probe and the linear scan agree on the survivors.
	for _, probe := range []geom.Rect{
		{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100},
		{MinX: 10, MinY: 10, MaxX: 40, MaxY: 40},
		{},
	} {
		assertScanRectEquiv(t, tb, probe, "after DeleteRect")
	}
	rs, err := tb.ScanRect("x", "y", r)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.IsEmpty() {
		t.Errorf("deleted rectangle still returns %d rows", rs.Len())
	}
	if _, err := tb.DeleteRect("x", "ghost", r); err == nil {
		t.Error("unknown column: want error")
	}
	// The zero Rect follows scan conventions: no restriction.
	live := tb.LiveRows()
	if n, err = tb.DeleteRect("x", "y", geom.Rect{}); err != nil || n != live {
		t.Errorf("zero-Rect delete = (%d, %v), want (%d, nil)", n, err, live)
	}
}

func TestDeleteExcludedFromPointsAndGather(t *testing.T) {
	tb, _ := NewTable("t", "x", "y")
	for i := 0; i < 10; i++ {
		tb.Append(float64(i), float64(10+i))
	}
	if _, err := tb.DeleteWhere([]Pred{{Column: "x", Min: 3, Max: 5}}); err != nil {
		t.Fatal(err)
	}
	pts, err := tb.Points("x", "y", All)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 7 {
		t.Fatalf("Points(All) = %d points, want 7", len(pts))
	}
	for _, p := range pts {
		if p.X >= 3 && p.X <= 5 {
			t.Errorf("deleted point %v served", p)
		}
	}
	vals, err := tb.Gather("y", All)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 7 {
		t.Fatalf("Gather(All) = %d values, want 7", len(vals))
	}
	// An explicit row set is filtered too (Points after a racing delete).
	pts, err = tb.Points("x", "y", RowRange(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 7 {
		t.Errorf("Points(RowRange) = %d points, want 7", len(pts))
	}
	// Bounds shrink to the survivors.
	if _, err := tb.DeleteWhere([]Pred{{Column: "x", Min: 8, Max: math.Inf(1)}}); err != nil {
		t.Fatal(err)
	}
	b, err := tb.Bounds("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if b.MaxX != 7 || b.MinX != 0 {
		t.Errorf("Bounds after delete = %v, want x in [0,7]", b)
	}
}

func TestDeleteNaNRows(t *testing.T) {
	tb, _ := NewTable("t", "x", "y")
	tb.Append(nan(), 1)
	tb.Append(1, nan())
	tb.Append(math.Inf(1), 2)
	// NaN values match every range predicate, so a bounded delete on x
	// takes the NaN-x row; the Inf row is outside [0, 2].
	n, err := tb.DeleteWhere([]Pred{{Column: "x", Min: 0, Max: 2}})
	if err != nil || n != 2 {
		t.Fatalf("delete = (%d, %v), want (2, nil)", n, err)
	}
	if tb.LiveRows() != 1 {
		t.Errorf("LiveRows = %d, want 1 (the +Inf row)", tb.LiveRows())
	}
	vals, _ := tb.Gather("x", All)
	if len(vals) != 1 || !math.IsInf(vals[0], 1) {
		t.Errorf("survivor = %v, want [+Inf]", vals)
	}
}

func TestTTLCompaction(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	defer func(orig func() time.Time) { timeNow = orig }(timeNow)
	timeNow = func() time.Time { return now }

	tb, _ := NewTable("t", "x", "y", "ts")
	age := func(d time.Duration) float64 { return float64(now.Add(-d).Unix()) }
	tb.Append(1, 1, age(2*time.Hour))
	tb.Append(2, 2, age(time.Hour)) // exactly at the cutoff: expired
	tb.Append(3, 3, age(30*time.Minute))
	tb.Append(4, 4, age(time.Minute))

	if err := tb.SetTTL("ghost", time.Hour); err == nil {
		t.Error("unknown TTL column: want error")
	}
	if _, _, ok := tb.TTL(); ok {
		t.Error("TTL reported before any policy was set")
	}
	if err := tb.SetTTL("ts", time.Hour); err != nil {
		t.Fatal(err)
	}
	if col, maxAge, ok := tb.TTL(); !ok || col != "ts" || maxAge != time.Hour {
		t.Errorf("TTL() = (%q, %v, %t)", col, maxAge, ok)
	}

	tb.Compact() // enforces the policy, then reclaims
	if tb.LiveRows() != 2 {
		t.Fatalf("LiveRows after first sweep = %d, want 2", tb.LiveRows())
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows after reclaim = %d, want 2 (dead rows dropped)", tb.NumRows())
	}

	// The clock advances; the next compaction expires the next row.
	now = now.Add(30 * time.Minute)
	tb.Compact()
	if tb.LiveRows() != 1 {
		t.Fatalf("LiveRows after second sweep = %d, want 1", tb.LiveRows())
	}
	vals, _ := tb.Gather("x", All)
	if len(vals) != 1 || vals[0] != 4 {
		t.Errorf("survivor x = %v, want [4]", vals)
	}

	// Clearing the policy stops the sweeps.
	if err := tb.SetTTL("ts", 0); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := tb.TTL(); ok {
		t.Error("TTL still reported after clearing")
	}
	now = now.Add(24 * time.Hour)
	tb.Compact()
	if tb.LiveRows() != 1 {
		t.Errorf("cleared policy still swept: LiveRows = %d", tb.LiveRows())
	}

	// NaN timestamps age out immediately (NaN matches every range).
	tb.Append(9, 9, nan())
	tb.SetTTL("ts", time.Hour)
	tb.Compact()
	vals, _ = tb.Gather("x", All)
	for _, v := range vals {
		if v == 9 {
			t.Error("NaN-timestamp row survived the TTL sweep")
		}
	}
}

// TestCompactReclaimEquivalence pins the tentpole invariant: after a
// reclaiming compaction, the table is indistinguishable from a fresh
// build over just the survivors — same values in the same order, same
// scan results, and the physical row count has shrunk to the live one.
func TestCompactReclaimEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 20_000
	xs, ys := randomPoints(rng, n)
	ms := make([]float64, n)
	for i := range ms {
		ms[i] = float64(i % 100)
	}

	tb, _ := NewTable("t", "x", "y", "m")
	if err := tb.BulkLoad(xs, ys, ms); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	deleted, err := tb.DeleteWhere([]Pred{{Column: "m", Min: 0, Max: 29}})
	if err != nil {
		t.Fatal(err)
	}

	// Reference: build a fresh table over exactly the survivors.
	var sx, sy, sm []float64
	for i := range ms {
		if ms[i] >= 30 {
			sx = append(sx, xs[i])
			sy = append(sy, ys[i])
			sm = append(sm, ms[i])
		}
	}
	ref, _ := NewTable("ref", "x", "y", "m")
	if err := ref.BulkLoad(sx, sy, sm); err != nil {
		t.Fatal(err)
	}
	if err := ref.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}

	// Appends after the delete must survive the reclaim.
	if err := tb.AppendRows([]float64{-1, -2}, []float64{-1, -2}, []float64{50, 51}); err != nil {
		t.Fatal(err)
	}
	ref.AppendRows([]float64{-1, -2}, []float64{-1, -2}, []float64{50, 51})

	tb.Compact()
	if tb.NumRows() != n-deleted+2 {
		t.Fatalf("NumRows after reclaim = %d, want %d", tb.NumRows(), n-deleted+2)
	}
	if tb.NumRows() != tb.LiveRows() {
		t.Errorf("NumRows %d != LiveRows %d after reclaim", tb.NumRows(), tb.LiveRows())
	}
	if got := tb.counters.reclaimedRows.Load(); got != int64(deleted) {
		t.Errorf("reclaimedRows counter = %d, want %d", got, deleted)
	}
	if got := tb.counters.deletedRows.Load(); got != int64(deleted) {
		t.Errorf("deletedRows counter = %d, want %d", got, deleted)
	}

	// Column-for-column identical to the fresh build (reclaim preserves
	// survivor order).
	for _, col := range []string{"x", "y", "m"} {
		got, _ := tb.Column(col)
		want, _ := ref.Column(col)
		if len(got) != len(want) {
			t.Fatalf("column %q: %d rows vs reference %d", col, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
				t.Fatalf("column %q row %d: %g vs reference %g", col, i, got[i], want[i])
			}
		}
	}

	// Probes agree with the fresh build, values and order.
	for i := 0; i < 20; i++ {
		lo := rng.Float64() * 80
		r := geom.Rect{MinX: lo, MinY: lo, MaxX: lo + 25, MaxY: lo + 25}
		preds := []Pred{{Column: "m", Min: 30, Max: 70}}
		gotRS, _, err := tb.ScanRectWhere("x", "y", r, preds)
		if err != nil {
			t.Fatal(err)
		}
		wantRS, _, err := ref.ScanRectWhere("x", "y", r, preds)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := tb.Points("x", "y", gotRS)
		want, _ := ref.Points("x", "y", wantRS)
		if len(got) != len(want) {
			t.Fatalf("probe %v: %d points vs reference %d", r, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("probe %v point %d: %v vs reference %v", r, j, got[j], want[j])
			}
		}
	}
}

func TestScanRectsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	xs, ys := randomPoints(rng, 10_000)
	tb, _ := NewTable("t", "x", "y")
	if err := tb.BulkLoad(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}

	assertUnion := func(rects []geom.Rect, preds []Pred, label string) {
		t.Helper()
		got, stats, err := tb.ScanRects("x", "y", rects, preds)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		want := RowSet{}
		shards := 0
		for _, r := range rects {
			rs, st, err := tb.ScanRectWhere("x", "y", r, preds)
			if err != nil {
				t.Fatalf("%s: single-rect probe: %v", label, err)
			}
			want = want.Union(rs)
			shards += st.ProbeShards
		}
		g, w := got.Indices(), want.Indices()
		if len(g) != len(w) {
			t.Fatalf("%s: union %d rows, per-rect union %d", label, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("%s: row %d: %d vs %d", label, i, g[i], w[i])
			}
			if i > 0 && g[i] <= g[i-1] {
				t.Fatalf("%s: union not strictly ascending at %d", label, i)
			}
		}
		if !stats.IndexProbe {
			t.Errorf("%s: union lost the index-probe flag", label)
		}
		if stats.ProbeShards != shards {
			t.Errorf("%s: ProbeShards = %d, per-rect sum %d", label, stats.ProbeShards, shards)
		}
	}

	disjoint := []geom.Rect{
		{MinX: 0, MinY: 0, MaxX: 30, MaxY: 30},
		{MinX: 60, MinY: 60, MaxX: 100, MaxY: 100},
	}
	assertUnion(disjoint, nil, "disjoint")
	overlapping := []geom.Rect{
		{MinX: 10, MinY: 10, MaxX: 50, MaxY: 50},
		{MinX: 30, MinY: 30, MaxX: 70, MaxY: 70},
	}
	assertUnion(overlapping, nil, "overlapping")
	assertUnion(overlapping, []Pred{{Column: "x", Min: 20, Max: 60}}, "overlapping+filter")

	// Disjoint-union row count is the sum of the parts.
	rs1, _, _ := tb.ScanRectWhere("x", "y", disjoint[0], nil)
	rs2, _, _ := tb.ScanRectWhere("x", "y", disjoint[1], nil)
	u, _, err := tb.ScanRects("x", "y", disjoint, nil)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != rs1.Len()+rs2.Len() {
		t.Errorf("disjoint union = %d rows, want %d + %d", u.Len(), rs1.Len(), rs2.Len())
	}

	// Deletes apply inside every rectangle of the union.
	if _, err := tb.DeleteRect("x", "y", disjoint[0]); err != nil {
		t.Fatal(err)
	}
	u, _, _ = tb.ScanRects("x", "y", disjoint, nil)
	if u.Len() != rs2.Len() {
		t.Errorf("union after deleting rect 0 = %d rows, want %d", u.Len(), rs2.Len())
	}

	// No rectangles means the full extent.
	all, _, err := tb.ScanRects("x", "y", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != tb.LiveRows() {
		t.Errorf("empty rects = %d rows, want all %d live", all.Len(), tb.LiveRows())
	}
	if _, _, err := tb.ScanRects("x", "ghost", disjoint, nil); err == nil {
		t.Error("unknown column: want error")
	}
}

func TestRowSetSubtract(t *testing.T) {
	mk := func(ids ...int) RowSet { return rowSetFromSorted(ids) }
	brute := func(s, d RowSet) []int {
		var out []int
		s.ForEach(func(r int) {
			if !d.Contains(r) {
				out = append(out, r)
			}
		})
		return out
	}
	check := func(s, d RowSet, label string) {
		t.Helper()
		got := s.Subtract(d).Indices()
		want := brute(s, d)
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: row %d: %d vs %d", label, i, got[i], want[i])
			}
		}
	}

	// Sentinel algebra.
	if !mk(1, 2, 3).Subtract(All).IsEmpty() {
		t.Error("s - All should be empty")
	}
	if !All.Subtract(RowSet{}).IsAll() {
		t.Error("All - empty should stay All")
	}
	if !(RowSet{}).Subtract(mk(1)).IsEmpty() {
		t.Error("empty - s should stay empty")
	}

	check(RowRange(10, 50), RowRange(20, 30), "range minus middle range")
	check(RowRange(10, 50), RowRange(0, 10), "range minus disjoint-left range")
	check(RowRange(10, 50), RowRange(50, 90), "range minus disjoint-right range")
	check(RowRange(10, 50), RowRange(0, 100), "range minus covering range")
	check(mk(1, 5, 9, 64, 65, 200), mk(5, 65), "ids minus ids")
	check(mk(1, 5, 9), mk(100, 200), "ids minus disjoint ids")
	check(RowRange(0, 300), mk(0, 64, 128, 299), "range minus sparse ids")

	rng := rand.New(rand.NewSource(5))
	randSet := func() RowSet {
		switch rng.Intn(3) {
		case 0:
			lo := rng.Intn(500)
			return RowRange(lo, lo+rng.Intn(500)+1)
		default:
			n := rng.Intn(200)
			seen := map[int]bool{}
			var ids []int
			for len(ids) < n {
				v := rng.Intn(1000)
				if !seen[v] {
					seen[v] = true
					ids = append(ids, v)
				}
			}
			sortInts(ids)
			return rowSetFromSorted(ids)
		}
	}
	for i := 0; i < 200; i++ {
		check(randSet(), randSet(), "random")
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func TestSnapshotCarriesTombstones(t *testing.T) {
	tb := buildSnapshotTable(t, 2000, 7)
	if _, err := tb.DeleteWhere([]Pred{{Column: "x", Min: 0, Max: 25}}); err != nil {
		t.Fatal(err)
	}
	snap := tb.SnapshotGeneration()
	if len(snap.Dead) == 0 {
		t.Fatal("snapshot of a tombstoned table has no Dead ids")
	}
	for i := 1; i < len(snap.Dead); i++ {
		if snap.Dead[i] <= snap.Dead[i-1] {
			t.Fatal("Dead ids not strictly ascending")
		}
	}
	restored, err := TableFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.LiveRows() != tb.LiveRows() {
		t.Fatalf("restored LiveRows = %d, want %d", restored.LiveRows(), tb.LiveRows())
	}
	gotRS, _ := restored.Scan(nil)
	wantRS, _ := tb.Scan(nil)
	got, _ := restored.Points("x", "y", gotRS)
	want, _ := tb.Points("x", "y", wantRS)
	if len(got) != len(want) {
		t.Fatalf("restored scan = %d points, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("restored point %d: %v vs %v", i, got[i], want[i])
		}
	}

	// Corrupt Dead lists are rejected, not installed.
	for _, tc := range []struct {
		name string
		dead []int32
	}{
		{"descending", []int32{5, 3}},
		{"duplicate", []int32{5, 5}},
		{"negative", []int32{-1}},
		{"out of range", []int32{int32(snap.NumRows)}},
	} {
		bad := snap
		bad.Dead = tc.dead
		if _, err := TableFromSnapshot(bad); err == nil {
			t.Errorf("%s Dead list: want error", tc.name)
		}
	}

	// A reclaimed table snapshots with no tombstone section at all.
	tb.Compact()
	if snap := tb.SnapshotGeneration(); len(snap.Dead) != 0 {
		t.Errorf("post-reclaim snapshot still carries %d Dead ids", len(snap.Dead))
	}
}

// TestDeleteEquivalenceProperty is the PR's property test: for random
// delete schedules — including NaN/Inf rows — interleaved with appends,
// the tombstoned table answers every probe exactly like a fresh table
// built from only the surviving rows.
func TestDeleteEquivalenceProperty(t *testing.T) {
	matches := func(v float64, p Pred) bool {
		min, max := p.Min, p.Max
		if math.IsNaN(min) {
			min = math.Inf(-1)
		}
		if math.IsNaN(max) {
			max = math.Inf(1)
		}
		return !(v < min || v > max)
	}
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		tb, _ := NewTable("t", "x", "y", "m")

		var xs, ys, ms []float64
		var dead []bool
		appendBatch := func(n int) {
			bx := make([]float64, n)
			by := make([]float64, n)
			bm := make([]float64, n)
			for i := 0; i < n; i++ {
				switch rng.Intn(20) {
				case 0:
					bx[i], by[i] = nan(), rng.Float64()*100
				case 1:
					bx[i], by[i] = math.Inf(1), math.Inf(-1)
				default:
					bx[i], by[i] = rng.Float64()*100, rng.Float64()*100
				}
				bm[i] = float64(rng.Intn(50))
			}
			if err := tb.AppendRows(bx, by, bm); err != nil {
				t.Fatal(err)
			}
			xs = append(xs, bx...)
			ys = append(ys, by...)
			ms = append(ms, bm...)
			dead = append(dead, make([]bool, n)...)
		}

		appendBatch(500 + rng.Intn(500))
		if rng.Intn(2) == 0 {
			if err := tb.IndexOn("x", "y"); err != nil {
				t.Fatal(err)
			}
		}

		// A random schedule of deletes, appends, compactions.
		for step := 0; step < 12; step++ {
			switch rng.Intn(4) {
			case 0:
				appendBatch(rng.Intn(300))
			case 1:
				tb.Compact()
			default:
				var preds []Pred
				for _, c := range []string{"x", "y", "m"} {
					if rng.Intn(2) == 0 {
						continue
					}
					lo := rng.Float64()*100 - 10
					preds = append(preds, Pred{Column: c, Min: lo, Max: lo + rng.Float64()*40})
				}
				if len(preds) == 0 {
					preds = []Pred{{Column: "m", Min: 0, Max: float64(rng.Intn(10))}}
				}
				want := 0
				cols := map[string][]float64{"x": xs, "y": ys, "m": ms}
				for i := range dead {
					if dead[i] {
						continue
					}
					hit := true
					for _, p := range preds {
						if !matches(cols[p.Column][i], p) {
							hit = false
							break
						}
					}
					if hit {
						dead[i] = true
						want++
					}
				}
				got, err := tb.DeleteWhere(preds)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("trial %d step %d: deleted %d rows, model says %d", trial, step, got, want)
				}
			}
		}

		// Reference: filter-then-rebuild.
		var sx, sy, sm []float64
		for i := range dead {
			if !dead[i] {
				sx = append(sx, xs[i])
				sy = append(sy, ys[i])
				sm = append(sm, ms[i])
			}
		}
		if tb.LiveRows() != len(sx) {
			t.Fatalf("trial %d: LiveRows = %d, model says %d", trial, tb.LiveRows(), len(sx))
		}
		ref, _ := NewTable("ref", "x", "y", "m")
		if len(sx) > 0 {
			if err := ref.BulkLoad(sx, sy, sm); err != nil {
				t.Fatal(err)
			}
			if err := ref.IndexOn("x", "y"); err != nil {
				t.Fatal(err)
			}
		}

		// delete-then-probe ≡ filter-then-rebuild, by VALUES (survivor
		// order is preserved by both tombstoning and reclaim).
		for probe := 0; probe < 8; probe++ {
			var r geom.Rect
			if probe > 0 {
				lo := rng.Float64() * 80
				r = geom.Rect{MinX: lo, MinY: lo, MaxX: lo + 30, MaxY: lo + 30}
			}
			var preds []Pred
			if probe%2 == 1 {
				preds = []Pred{{Column: "m", Min: 5, Max: 35}}
			}
			gotRS, _, err := tb.ScanRectWhere("x", "y", r, preds)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tb.Points("x", "y", gotRS)
			if err != nil {
				t.Fatal(err)
			}
			var want []geom.Point
			if len(sx) > 0 {
				wantRS, _, err := ref.ScanRectWhere("x", "y", r, preds)
				if err != nil {
					t.Fatal(err)
				}
				want, err = ref.Points("x", "y", wantRS)
				if err != nil {
					t.Fatal(err)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d probe %d: %d points, reference %d", trial, probe, len(got), len(want))
			}
			for i := range got {
				same := got[i] == want[i] ||
					(math.IsNaN(got[i].X) && math.IsNaN(want[i].X) && got[i].Y == want[i].Y) ||
					(math.IsNaN(got[i].Y) && math.IsNaN(want[i].Y) && got[i].X == want[i].X)
				if !same {
					t.Fatalf("trial %d probe %d point %d: %v vs reference %v", trial, probe, i, got[i], want[i])
				}
			}
		}
	}
}
