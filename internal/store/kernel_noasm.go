//go:build !amd64

package store

import "repro/internal/geom"

// Non-amd64 builds run the pure-Go kernel loops; the constant lets the
// compiler elide the asm dispatch branches entirely.
const useSelAsm = false

func selRangeAsm(dst []int32, col []float64, lo int32, min, max float64) int {
	panic("store: selRangeAsm without amd64")
}

func selGatherAsm(dst []int32, ids []int32, col []float64, min, max float64) int {
	panic("store: selGatherAsm without amd64")
}

func selRectGatherAsm(dst []int32, ids []int32, xs, ys []float64, r geom.Rect) int {
	panic("store: selRectGatherAsm without amd64")
}
