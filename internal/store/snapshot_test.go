package store

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
)

// buildSnapshotTable makes a 3-column indexed table with NaN rows (the
// extras path) and an appended unindexed tail.
func buildSnapshotTable(t *testing.T, n int, seed int64) *Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tb, err := NewTable("snaptest", "x", "y", "v")
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	vs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
		ys[i] = rng.NormFloat64() * 10
		vs[i] = rng.Float64() * 100
		if i%97 == 0 {
			xs[i] = math.NaN() // extras path
		}
		if i%131 == 0 {
			vs[i] = math.NaN() // zone-map NaN flags
		}
	}
	if err := tb.BulkLoad(xs, ys, vs); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	// Appended tail: rows past the index's coverage.
	for i := 0; i < 17; i++ {
		if err := tb.Append(rng.NormFloat64()*10, rng.NormFloat64()*10, rng.Float64()*100); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestTableSnapshotRoundTrip(t *testing.T) {
	orig := buildSnapshotTable(t, 5000, 1)
	snap := orig.SnapshotGeneration()
	if snap.NumRows != orig.NumRows() {
		t.Fatalf("snapshot rows %d != table rows %d", snap.NumRows, orig.NumRows())
	}
	if len(snap.Indexes) != 1 {
		t.Fatalf("expected 1 index, got %d", len(snap.Indexes))
	}
	if snap.Indexes[0].NumRows >= snap.NumRows {
		t.Fatal("appended tail was absorbed into the index snapshot")
	}

	restored, err := TableFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	rects := []geom.Rect{
		{}, // all rows
		{MinX: -5, MinY: -5, MaxX: 5, MaxY: 5},
		{MinX: -100, MinY: -100, MaxX: 100, MaxY: 100},
		{MinX: 3, MinY: -2, MaxX: 3.5, MaxY: 0},
	}
	predSets := [][]Pred{
		nil,
		{{Column: "v", Min: 25, Max: 75}},
		{{Column: "v", Min: math.NaN(), Max: 50}, {Column: "x", Min: 0, Max: math.Inf(1)}},
	}
	for _, r := range rects {
		for _, preds := range predSets {
			want, wantSt, err := orig.ScanRectWhere("x", "y", r, preds)
			if err != nil {
				t.Fatal(err)
			}
			got, gotSt, err := restored.ScanRectWhere("x", "y", r, preds)
			if err != nil {
				t.Fatal(err)
			}
			wi, gi := want.Indices(), got.Indices()
			if len(wi) != len(gi) {
				t.Fatalf("rect %v preds %v: %d rows vs %d", r, preds, len(wi), len(gi))
			}
			for i := range wi {
				if wi[i] != gi[i] {
					t.Fatalf("rect %v preds %v: row %d: %d vs %d", r, preds, i, wi[i], gi[i])
				}
			}
			if wantSt.IndexProbe != gotSt.IndexProbe || wantSt.CellsTouched != gotSt.CellsTouched ||
				wantSt.CellsPruned != gotSt.CellsPruned {
				t.Fatalf("rect %v preds %v: scan stats diverge: %+v vs %+v", r, preds, wantSt, gotSt)
			}
		}
	}
	// The restored pair must stay registered: a BulkLoad rebuilds it.
	if err := restored.BulkLoad([]float64{1}, []float64{2}, []float64{3}); err != nil {
		t.Fatal(err)
	}
	if d := restored.snapshot(); len(d.indexes) != 1 {
		t.Fatalf("index pair not re-registered after restore: %d indexes post-BulkLoad", len(d.indexes))
	}
}

// TestTableFromSnapshotRejectsCorruption mutates a valid snapshot one
// field at a time; every mutant must be rejected with an error, never
// accepted or panicking.
func TestTableFromSnapshotRejectsCorruption(t *testing.T) {
	base := func() TableSnapshot {
		return buildSnapshotTable(t, 2000, 2).SnapshotGeneration()
	}
	// Deep-copy the index slices a mutant touches so mutations cannot
	// leak into the (aliased) generation of a later base() table.
	cases := []struct {
		name   string
		mutate func(*TableSnapshot)
	}{
		{"short column", func(s *TableSnapshot) {
			s.Cols[2] = s.Cols[2][:len(s.Cols[2])-1]
		}},
		{"column count mismatch", func(s *TableSnapshot) {
			s.Cols = s.Cols[:2]
		}},
		{"negative rows", func(s *TableSnapshot) { s.NumRows = -1 }},
		{"index column out of range", func(s *TableSnapshot) {
			s.Indexes[0].XCol = 99
		}},
		{"index covers too many rows", func(s *TableSnapshot) {
			s.Indexes[0].NumRows = s.NumRows + 1
		}},
		{"grid dim zero", func(s *TableSnapshot) { s.Indexes[0].NX = 0 }},
		{"grid dim absurd", func(s *TableSnapshot) { s.Indexes[0].NX = 1 << 20 }},
		{"cell width zero", func(s *TableSnapshot) { s.Indexes[0].CellW = 0 }},
		{"cell width NaN", func(s *TableSnapshot) { s.Indexes[0].CellW = math.NaN() }},
		{"bounds NaN", func(s *TableSnapshot) { s.Indexes[0].Bounds.MinX = math.NaN() }},
		{"offsets truncated", func(s *TableSnapshot) {
			s.Indexes[0].CellOff = s.Indexes[0].CellOff[:len(s.Indexes[0].CellOff)-1]
		}},
		{"offsets decreasing", func(s *TableSnapshot) {
			off := append([]int32(nil), s.Indexes[0].CellOff...)
			off[len(off)/2] = off[len(off)/2-1] - 1
			s.Indexes[0].CellOff = off
		}},
		{"offsets nonzero start", func(s *TableSnapshot) {
			off := append([]int32(nil), s.Indexes[0].CellOff...)
			off[0] = 1
			s.Indexes[0].CellOff = off
		}},
		{"row id out of range", func(s *TableSnapshot) {
			ids := append([]int32(nil), s.Indexes[0].RowID...)
			ids[0] = int32(s.Indexes[0].NumRows)
			s.Indexes[0].RowID = ids
		}},
		{"row id negative", func(s *TableSnapshot) {
			ids := append([]int32(nil), s.Indexes[0].RowID...)
			ids[0] = -1
			s.Indexes[0].RowID = ids
		}},
		{"row id duplicated", func(s *TableSnapshot) {
			ids := append([]int32(nil), s.Indexes[0].RowID...)
			ids[len(ids)-1] = ids[0]
			s.Indexes[0].RowID = ids
		}},
		{"extra out of range", func(s *TableSnapshot) {
			ex := append([]int32(nil), s.Indexes[0].Extra...)
			ex[0] = int32(s.Indexes[0].NumRows)
			s.Indexes[0].Extra = ex
		}},
		{"extra not ascending", func(s *TableSnapshot) {
			ex := append([]int32(nil), s.Indexes[0].Extra...)
			ex[len(ex)-1] = ex[0]
			s.Indexes[0].Extra = ex
		}},
		{"row count imbalance", func(s *TableSnapshot) {
			s.Indexes[0].RowID = s.Indexes[0].RowID[:len(s.Indexes[0].RowID)-1]
		}},
		{"zone maps truncated", func(s *TableSnapshot) {
			s.Indexes[0].ZMin = s.Indexes[0].ZMin[:len(s.Indexes[0].ZMin)-1]
		}},
		{"duplicate index pair", func(s *TableSnapshot) {
			s.Indexes = append(s.Indexes, s.Indexes[0])
		}},
		{"empty index with grid", func(s *TableSnapshot) {
			s.Indexes[0].NumRows = 0
		}},
		{"empty name", func(s *TableSnapshot) { s.Name = "" }},
		{"duplicate column", func(s *TableSnapshot) { s.Columns[1] = s.Columns[0] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap := base()
			tc.mutate(&snap)
			tb, err := TableFromSnapshot(snap)
			if err == nil {
				t.Fatalf("corrupt snapshot (%s) was accepted: %v", tc.name, tb.Name())
			}
		})
	}
}

func TestPublishIndexedTableReplaces(t *testing.T) {
	s := New()
	t1 := buildSnapshotTable(t, 500, 3)
	if err := s.PublishIndexedTable(t1); err != nil {
		t.Fatal(err)
	}
	if err := s.PublishIndexedTable(t1); err == nil {
		t.Fatal("re-publishing the same table pointer should fail")
	}
	t2, err := TableFromSnapshot(t1.SnapshotGeneration())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PublishIndexedTable(t2); err != nil {
		t.Fatal(err)
	}
	got, err := s.Table("snaptest")
	if err != nil {
		t.Fatal(err)
	}
	if got != t2 {
		t.Fatal("publish did not replace the previous table")
	}
}

func TestPublishCatalogAtomicity(t *testing.T) {
	s := New()
	// Pre-existing content that a failed publish must not disturb.
	pre, err := NewTable("base", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if err := pre.BulkLoad([]float64{1, 2}, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("keep", "x", "y"); err != nil {
		t.Fatal(err)
	}

	sample, err := NewTable("base_vas_2", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if err := sample.BulkLoad([]float64{1}, []float64{3}); err != nil {
		t.Fatal(err)
	}

	// Bad batch: the meta references a sample table missing from it.
	err = s.PublishCatalog([]*Table{pre}, []SampleMeta{{
		Table: "missing", Source: "base", Method: "vas", XCol: "x", YCol: "y", Size: 1,
	}})
	if err == nil {
		t.Fatal("batch with a dangling sample meta was accepted")
	}
	if _, err := s.Table("base"); err == nil {
		t.Fatal("failed publish leaked a table into the store")
	}

	// Bad batch: sample source neither in the batch nor the store.
	err = s.PublishCatalog([]*Table{sample}, []SampleMeta{{
		Table: "base_vas_2", Source: "nowhere", Method: "vas", XCol: "x", YCol: "y", Size: 1,
	}})
	if err == nil {
		t.Fatal("batch with an unknown source was accepted")
	}

	// Good batch lands completely.
	err = s.PublishCatalog([]*Table{pre, sample}, []SampleMeta{{
		Table: "base_vas_2", Source: "base", Method: "vas", XCol: "x", YCol: "y", Size: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Table("base"); err != nil {
		t.Fatal("base table missing after publish")
	}
	metas := s.SamplesOf("base")
	if len(metas) != 1 || metas[0].Table != "base_vas_2" {
		t.Fatalf("sample lineage not registered: %+v", metas)
	}
	names := s.TableNames()
	if want := "base base_vas_2 keep"; strings.Join(names, " ") != want {
		t.Fatalf("tables = %v, want %q", names, want)
	}
}
