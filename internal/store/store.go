// Package store implements the RDBMS substrate of the Fig. 3 architecture:
// an in-memory column store holding the base tables and the pre-generated
// sample tables that VAS maintains ("the sample(s) can be maintained by the
// same RDBMS", §II-B). It supports typed float64 columns, append and bulk
// load, predicate scans over column ranges, and a catalog that records
// sample lineage (source table, method, size) so the query layer can pick
// the right sample for a latency budget.
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/geom"
)

// ErrNotFound is returned when a table or column does not exist.
var ErrNotFound = errors.New("store: not found")

// Table is a named collection of equal-length float64 columns.
//
// A Table is safe for concurrent use. Readers (NumRows, Column, Scan,
// Points, Gather) operate on a consistent snapshot taken under a read
// lock; writers (Append, BulkLoad) publish under the write lock, and
// BulkLoad installs freshly allocated column storage rather than reusing
// the old backing arrays, so each individual call observes either the old
// contents or the new — never a mix. Consistency is per call, not per
// call sequence: row indices returned by Scan refer to the generation
// they were computed against, and a Points or Gather call issued after an
// intervening BulkLoad resolves them against the new generation — a
// shrink surfaces as out-of-range errors, while a same-size reload
// silently projects new rows. Callers that reload tables while serving
// reads must not carry row indices across the reload; the serving layer
// avoids this wholesale by registering fresh sample tables instead of
// reloading live ones.
type Table struct {
	name    string
	colName []string
	colIdx  map[string]int

	mu   sync.RWMutex
	cols [][]float64
	n    int
}

// NewTable creates a table with the given column names. It returns an
// error when names are empty or duplicated.
func NewTable(name string, columns ...string) (*Table, error) {
	if name == "" {
		return nil, errors.New("store: table name must be non-empty")
	}
	if len(columns) == 0 {
		return nil, fmt.Errorf("store: table %q needs at least one column", name)
	}
	t := &Table{
		name:    name,
		colName: append([]string(nil), columns...),
		colIdx:  make(map[string]int, len(columns)),
		cols:    make([][]float64, len(columns)),
	}
	for i, c := range columns {
		if c == "" {
			return nil, fmt.Errorf("store: table %q column %d has empty name", name, i)
		}
		if _, dup := t.colIdx[c]; dup {
			return nil, fmt.Errorf("store: table %q has duplicate column %q", name, c)
		}
		t.colIdx[c] = i
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns the column names in declaration order.
func (t *Table) Columns() []string { return append([]string(nil), t.colName...) }

// NumRows returns the row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.n
}

// snapshot returns the current column slice headers and row count. The
// headers are immutable views: BulkLoad swaps in fresh backing arrays and
// Append only writes past the snapshot's length, so the first n rows of
// each returned column never change after the snapshot is taken.
func (t *Table) snapshot() ([][]float64, int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cols := make([][]float64, len(t.cols))
	copy(cols, t.cols)
	return cols, t.n
}

// Append adds one row; values must match the column count.
func (t *Table) Append(values ...float64) error {
	if len(values) != len(t.colName) {
		return fmt.Errorf("store: table %q: %d values for %d columns", t.name, len(values), len(t.colName))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, v := range values {
		t.cols[i] = append(t.cols[i], v)
	}
	t.n++
	return nil
}

// BulkLoad replaces the table contents with the given parallel column
// slices (copied into fresh storage, so concurrent readers keep their old
// snapshot). Column order must match the schema.
func (t *Table) BulkLoad(cols ...[]float64) error {
	if len(cols) != len(t.colName) {
		return fmt.Errorf("store: table %q: %d columns for %d-column schema", t.name, len(cols), len(t.colName))
	}
	n := -1
	for i, c := range cols {
		if n == -1 {
			n = len(c)
		} else if len(c) != n {
			return fmt.Errorf("store: table %q: column %q has %d rows, expected %d", t.name, t.colName[i], len(c), n)
		}
	}
	fresh := make([][]float64, len(cols))
	for i, c := range cols {
		fresh[i] = append(make([]float64, 0, len(c)), c...)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cols = fresh
	t.n = n
	return nil
}

// Column returns a read-only snapshot view of the named column: the
// returned slice is never mutated by later writes to the table.
func (t *Table) Column(name string) ([]float64, error) {
	i, ok := t.colIdx[name]
	if !ok {
		return nil, fmt.Errorf("store: table %q column %q: %w", t.name, name, ErrNotFound)
	}
	cols, n := t.snapshot()
	return cols[i][:n], nil
}

// Pred is a conjunctive range predicate over columns: for each named
// column, the row value must be within [Min, Max]. This is the predicate
// shape visualization tools emit — axis ranges of the current viewport.
type Pred struct {
	Column   string
	Min, Max float64
}

// Scan returns the indices of rows satisfying all predicates, evaluated
// against one consistent snapshot of the table. A nil or empty predicate
// list selects every row.
func (t *Table) Scan(preds []Pred) ([]int, error) {
	idx := make([]int, len(preds))
	for i, p := range preds {
		ci, ok := t.colIdx[p.Column]
		if !ok {
			return nil, fmt.Errorf("store: table %q column %q: %w", t.name, p.Column, ErrNotFound)
		}
		idx[i] = ci
	}
	snap, n := t.snapshot()
	cols := make([][]float64, len(preds))
	for i, ci := range idx {
		cols[i] = snap[ci]
	}
	// Never return a nil slice: Points and Gather give nil rows the
	// distinct meaning "all rows", so an empty match must stay empty.
	out := []int{}
rows:
	for r := 0; r < n; r++ {
		for i, p := range preds {
			v := cols[i][r]
			if v < p.Min || v > p.Max {
				continue rows
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// Points projects two columns into geometry points for the given row set
// (nil rows = all rows), reading one consistent snapshot.
func (t *Table) Points(xCol, yCol string, rows []int) ([]geom.Point, error) {
	xi, ok := t.colIdx[xCol]
	if !ok {
		return nil, fmt.Errorf("store: table %q column %q: %w", t.name, xCol, ErrNotFound)
	}
	yi, ok := t.colIdx[yCol]
	if !ok {
		return nil, fmt.Errorf("store: table %q column %q: %w", t.name, yCol, ErrNotFound)
	}
	snap, n := t.snapshot()
	xs, ys := snap[xi], snap[yi]
	if rows == nil {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(xs[i], ys[i])
		}
		return pts, nil
	}
	pts := make([]geom.Point, len(rows))
	for i, r := range rows {
		if r < 0 || r >= n {
			return nil, fmt.Errorf("store: table %q: row %d out of range [0,%d)", t.name, r, n)
		}
		pts[i] = geom.Pt(xs[r], ys[r])
	}
	return pts, nil
}

// Bounds returns the bounding rectangle of the (xCol, yCol) projection of
// the whole table, computed over one consistent snapshot. It is empty for
// a table with no rows.
func (t *Table) Bounds(xCol, yCol string) (geom.Rect, error) {
	xi, ok := t.colIdx[xCol]
	if !ok {
		return geom.Rect{}, fmt.Errorf("store: table %q column %q: %w", t.name, xCol, ErrNotFound)
	}
	yi, ok := t.colIdx[yCol]
	if !ok {
		return geom.Rect{}, fmt.Errorf("store: table %q column %q: %w", t.name, yCol, ErrNotFound)
	}
	snap, n := t.snapshot()
	xs, ys := snap[xi], snap[yi]
	b := geom.EmptyRect()
	for i := 0; i < n; i++ {
		b = b.UnionPoint(geom.Pt(xs[i], ys[i]))
	}
	return b, nil
}

// Gather returns the values of one column at the given rows.
func (t *Table) Gather(col string, rows []int) ([]float64, error) {
	c, err := t.Column(col)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(rows))
	for i, r := range rows {
		if r < 0 || r >= len(c) {
			return nil, fmt.Errorf("store: table %q: row %d out of range [0,%d)", t.name, r, len(c))
		}
		out[i] = c[r]
	}
	return out, nil
}

// SampleMeta records the lineage of a sample table in the catalog.
type SampleMeta struct {
	// Table is the sample table's name.
	Table string
	// Source is the base table the sample was drawn from.
	Source string
	// Method is the sampling method ("vas", "uniform", ...).
	Method string
	// XCol, YCol are the indexed column pair the sample was built on.
	XCol, YCol string
	// Size is the number of sample rows.
	Size int
	// HasDensity reports whether the sample carries a §V count column.
	HasDensity bool
}

// Store is a catalog of base tables and sample tables. Safe for concurrent
// use.
type Store struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	samples map[string][]SampleMeta // source table -> its samples
}

// New returns an empty store.
func New() *Store {
	return &Store{
		tables:  make(map[string]*Table),
		samples: make(map[string][]SampleMeta),
	}
}

// CreateTable registers a new table. It fails when the name is taken.
func (s *Store) CreateTable(name string, columns ...string) (*Table, error) {
	t, err := NewTable(name, columns...)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.tables[name]; exists {
		return nil, fmt.Errorf("store: table %q already exists", name)
	}
	s.tables[name] = t
	return t, nil
}

// Table looks up a table by name.
func (s *Store) Table(name string) (*Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("store: table %q: %w", name, ErrNotFound)
	}
	return t, nil
}

// DropTable removes a table and any sample metadata pointing at it.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; !ok {
		return fmt.Errorf("store: table %q: %w", name, ErrNotFound)
	}
	delete(s.tables, name)
	delete(s.samples, name)
	for src, metas := range s.samples {
		kept := metas[:0]
		for _, m := range metas {
			if m.Table != name {
				kept = append(kept, m)
			}
		}
		s.samples[src] = kept
	}
	return nil
}

// TableNames returns all table names sorted.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisterSample attaches sample metadata to its source table. The sample
// table itself must already exist in the store.
func (s *Store) RegisterSample(meta SampleMeta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[meta.Table]; !ok {
		return fmt.Errorf("store: sample table %q: %w", meta.Table, ErrNotFound)
	}
	if _, ok := s.tables[meta.Source]; !ok {
		return fmt.Errorf("store: source table %q: %w", meta.Source, ErrNotFound)
	}
	if meta.Size <= 0 {
		return fmt.Errorf("store: sample %q has non-positive size %d", meta.Table, meta.Size)
	}
	s.samples[meta.Source] = append(s.samples[meta.Source], meta)
	sort.Slice(s.samples[meta.Source], func(a, b int) bool {
		return s.samples[meta.Source][a].Size < s.samples[meta.Source][b].Size
	})
	return nil
}

// SamplesOf returns the registered samples of a source table, ascending by
// size.
func (s *Store) SamplesOf(source string) []SampleMeta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]SampleMeta(nil), s.samples[source]...)
}
