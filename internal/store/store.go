// Package store implements the RDBMS substrate of the Fig. 3 architecture:
// an in-memory column store holding the base tables and the pre-generated
// sample tables that VAS maintains ("the sample(s) can be maintained by the
// same RDBMS", §II-B). It supports typed float64 columns, append and bulk
// load, predicate scans over column ranges, and a catalog that records
// sample lineage (source table, method, size) so the query layer can pick
// the right sample for a latency budget.
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/geom"
)

// ErrNotFound is returned when a table or column does not exist.
var ErrNotFound = errors.New("store: not found")

// Table is a named collection of equal-length float64 columns.
type Table struct {
	name    string
	colName []string
	colIdx  map[string]int
	cols    [][]float64
	n       int
}

// NewTable creates a table with the given column names. It returns an
// error when names are empty or duplicated.
func NewTable(name string, columns ...string) (*Table, error) {
	if name == "" {
		return nil, errors.New("store: table name must be non-empty")
	}
	if len(columns) == 0 {
		return nil, fmt.Errorf("store: table %q needs at least one column", name)
	}
	t := &Table{
		name:    name,
		colName: append([]string(nil), columns...),
		colIdx:  make(map[string]int, len(columns)),
		cols:    make([][]float64, len(columns)),
	}
	for i, c := range columns {
		if c == "" {
			return nil, fmt.Errorf("store: table %q column %d has empty name", name, i)
		}
		if _, dup := t.colIdx[c]; dup {
			return nil, fmt.Errorf("store: table %q has duplicate column %q", name, c)
		}
		t.colIdx[c] = i
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns the column names in declaration order.
func (t *Table) Columns() []string { return append([]string(nil), t.colName...) }

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.n }

// Append adds one row; values must match the column count.
func (t *Table) Append(values ...float64) error {
	if len(values) != len(t.cols) {
		return fmt.Errorf("store: table %q: %d values for %d columns", t.name, len(values), len(t.cols))
	}
	for i, v := range values {
		t.cols[i] = append(t.cols[i], v)
	}
	t.n++
	return nil
}

// BulkLoad replaces the table contents with the given parallel column
// slices (copied). Column order must match the schema.
func (t *Table) BulkLoad(cols ...[]float64) error {
	if len(cols) != len(t.cols) {
		return fmt.Errorf("store: table %q: %d columns for %d-column schema", t.name, len(cols), len(t.cols))
	}
	n := -1
	for i, c := range cols {
		if n == -1 {
			n = len(c)
		} else if len(c) != n {
			return fmt.Errorf("store: table %q: column %q has %d rows, expected %d", t.name, t.colName[i], len(c), n)
		}
	}
	for i, c := range cols {
		t.cols[i] = append(t.cols[i][:0], c...)
	}
	t.n = n
	return nil
}

// Column returns a read-only view of the named column.
func (t *Table) Column(name string) ([]float64, error) {
	i, ok := t.colIdx[name]
	if !ok {
		return nil, fmt.Errorf("store: table %q column %q: %w", t.name, name, ErrNotFound)
	}
	return t.cols[i], nil
}

// Pred is a conjunctive range predicate over columns: for each named
// column, the row value must be within [Min, Max]. This is the predicate
// shape visualization tools emit — axis ranges of the current viewport.
type Pred struct {
	Column   string
	Min, Max float64
}

// Scan returns the indices of rows satisfying all predicates. A nil or
// empty predicate list selects every row.
func (t *Table) Scan(preds []Pred) ([]int, error) {
	cols := make([][]float64, len(preds))
	for i, p := range preds {
		c, err := t.Column(p.Column)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	var out []int
rows:
	for r := 0; r < t.n; r++ {
		for i, p := range preds {
			v := cols[i][r]
			if v < p.Min || v > p.Max {
				continue rows
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// Points projects two columns into geometry points for the given row set
// (nil rows = all rows).
func (t *Table) Points(xCol, yCol string, rows []int) ([]geom.Point, error) {
	xs, err := t.Column(xCol)
	if err != nil {
		return nil, err
	}
	ys, err := t.Column(yCol)
	if err != nil {
		return nil, err
	}
	if rows == nil {
		pts := make([]geom.Point, t.n)
		for i := range pts {
			pts[i] = geom.Pt(xs[i], ys[i])
		}
		return pts, nil
	}
	pts := make([]geom.Point, len(rows))
	for i, r := range rows {
		if r < 0 || r >= t.n {
			return nil, fmt.Errorf("store: table %q: row %d out of range [0,%d)", t.name, r, t.n)
		}
		pts[i] = geom.Pt(xs[r], ys[r])
	}
	return pts, nil
}

// Gather returns the values of one column at the given rows.
func (t *Table) Gather(col string, rows []int) ([]float64, error) {
	c, err := t.Column(col)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(rows))
	for i, r := range rows {
		if r < 0 || r >= t.n {
			return nil, fmt.Errorf("store: table %q: row %d out of range [0,%d)", t.name, r, t.n)
		}
		out[i] = c[r]
	}
	return out, nil
}

// SampleMeta records the lineage of a sample table in the catalog.
type SampleMeta struct {
	// Table is the sample table's name.
	Table string
	// Source is the base table the sample was drawn from.
	Source string
	// Method is the sampling method ("vas", "uniform", ...).
	Method string
	// XCol, YCol are the indexed column pair the sample was built on.
	XCol, YCol string
	// Size is the number of sample rows.
	Size int
	// HasDensity reports whether the sample carries a §V count column.
	HasDensity bool
}

// Store is a catalog of base tables and sample tables. Safe for concurrent
// use.
type Store struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	samples map[string][]SampleMeta // source table -> its samples
}

// New returns an empty store.
func New() *Store {
	return &Store{
		tables:  make(map[string]*Table),
		samples: make(map[string][]SampleMeta),
	}
}

// CreateTable registers a new table. It fails when the name is taken.
func (s *Store) CreateTable(name string, columns ...string) (*Table, error) {
	t, err := NewTable(name, columns...)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.tables[name]; exists {
		return nil, fmt.Errorf("store: table %q already exists", name)
	}
	s.tables[name] = t
	return t, nil
}

// Table looks up a table by name.
func (s *Store) Table(name string) (*Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("store: table %q: %w", name, ErrNotFound)
	}
	return t, nil
}

// DropTable removes a table and any sample metadata pointing at it.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; !ok {
		return fmt.Errorf("store: table %q: %w", name, ErrNotFound)
	}
	delete(s.tables, name)
	delete(s.samples, name)
	for src, metas := range s.samples {
		kept := metas[:0]
		for _, m := range metas {
			if m.Table != name {
				kept = append(kept, m)
			}
		}
		s.samples[src] = kept
	}
	return nil
}

// TableNames returns all table names sorted.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisterSample attaches sample metadata to its source table. The sample
// table itself must already exist in the store.
func (s *Store) RegisterSample(meta SampleMeta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[meta.Table]; !ok {
		return fmt.Errorf("store: sample table %q: %w", meta.Table, ErrNotFound)
	}
	if _, ok := s.tables[meta.Source]; !ok {
		return fmt.Errorf("store: source table %q: %w", meta.Source, ErrNotFound)
	}
	if meta.Size <= 0 {
		return fmt.Errorf("store: sample %q has non-positive size %d", meta.Table, meta.Size)
	}
	s.samples[meta.Source] = append(s.samples[meta.Source], meta)
	sort.Slice(s.samples[meta.Source], func(a, b int) bool {
		return s.samples[meta.Source][a].Size < s.samples[meta.Source][b].Size
	})
	return nil
}

// SamplesOf returns the registered samples of a source table, ascending by
// size.
func (s *Store) SamplesOf(source string) []SampleMeta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]SampleMeta(nil), s.samples[source]...)
}
