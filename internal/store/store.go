// Package store implements the RDBMS substrate of the Fig. 3 architecture:
// an in-memory column store holding the base tables and the pre-generated
// sample tables that VAS maintains ("the sample(s) can be maintained by the
// same RDBMS", §II-B). It supports typed float64 columns, append and bulk
// load, predicate scans over column ranges, grid-binned spatial indexes
// over (x, y) column pairs answering viewport queries as index probes
// (ScanRect), and a catalog that records sample lineage (source table,
// method, size) so the query layer can pick the right sample for a latency
// budget. Scans produce RowSets — dense ranges or sorted index lists —
// that the projection operators (Points, Gather) consume without ever
// materializing per-row ids on the full-extent fast path.
package store

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
)

// ErrNotFound is returned when a table or column does not exist.
var ErrNotFound = errors.New("store: not found")

// Table is a named collection of equal-length float64 columns, optionally
// carrying grid spatial indexes over (x, y) column pairs (IndexOn).
//
// A Table is safe for concurrent use. All state a reader touches —
// column storage, row count, and spatial indexes — lives in one
// immutable generation struct published under the write lock, so every
// read operates on a consistent snapshot: an index can never be paired
// with columns it was not built from. BulkLoad installs freshly
// allocated column storage and freshly built indexes rather than reusing
// the old backing arrays, so each individual call observes either the
// old contents or the new — never a mix. Consistency is per call, not
// per call sequence: row indices returned by Scan refer to the
// generation they were computed against, and a Points or Gather call
// issued after an intervening BulkLoad resolves them against the new
// generation — a shrink surfaces as out-of-range errors, while a
// same-size reload silently projects new rows. Callers that reload
// tables while serving reads must not carry row indices across the
// reload; the serving layer invalidates cached artifacts on reload
// instead.
type Table struct {
	name    string
	colName []string
	colIdx  map[string]int

	mu         sync.RWMutex
	data       *tableData
	indexPairs [][2]int // registered index column pairs; rebuilt by BulkLoad

	counters *tableCounters

	// zoneStat is the per-column zone-map usefulness record feeding the
	// adaptive planner: when a column's zones have been consulted many
	// times and almost never pruned or settled a cell, later probes skip
	// its zone checks (and a pure attribute filter falls back to the
	// sharded linear scan) instead of paying for them on every cell.
	zoneStat []zoneColStat

	// backendMode holds the index backend policy code (backendAuto /
	// backendGrid / backendRTree) consulted at every index-build point;
	// see backend.go.
	backendMode atomic.Int32

	// autoCompact holds the float64 bits of the auto-compaction
	// threshold fraction (0 = disabled); compacting gates the single
	// background compaction goroutine; compactMu serializes Compact
	// bodies (manual and automatic).
	autoCompact atomic.Uint64
	compacting  atomic.Bool
	compactMu   sync.Mutex

	// ttlMu guards the retention policy (SetTTL); Compact enforces it.
	ttlMu  sync.Mutex
	ttlCol int // timestamp column ordinal; -1 when no policy
	ttlAge time.Duration
}

// zoneColStat accumulates, for one column, how often its per-cell zone
// maps were consulted by filtered probes and how often the consult was
// decisive (pruned the cell or settled the predicate as all-pass).
type zoneColStat struct {
	evaluated atomic.Int64
	decisive  atomic.Int64
}

const (
	// zoneAdaptMinCells is how many zone consults a column must
	// accumulate before the adaptive skip may engage.
	zoneAdaptMinCells = 4096
	// zoneAdaptDecisiveDiv defines "useless": fewer than 1 decisive
	// consult per this many is noise, not pruning.
	zoneAdaptDecisiveDiv = 64
)

// tableCounters is a table's read-path usage block, for /metrics. It is
// allocated separately from the Table so a Store can retain it past
// DropTable: increments from scans still in flight on the dropped table
// keep landing in the retained block, which keeps the store aggregates
// monotonic (they are exported as Prometheus _total series).
type tableCounters struct {
	indexProbes   atomic.Int64 // ScanRect answered from a spatial index
	scanFallbacks atomic.Int64 // ScanRect fell back to a linear scan

	// Zone-map counters, accumulated by ScanRectWhere calls that carried
	// at least one residual predicate.
	filteredProbes   atomic.Int64 // filtered probes answered from an index
	zoneCellsTouched atomic.Int64 // cells considered by filtered probes
	zoneCellsPruned  atomic.Int64 // cells discarded wholesale by zone maps
	zoneSkips        atomic.Int64 // predicates whose zone checks were skipped

	// Batch-kernel counters.
	batchedRows atomic.Int64 // rows evaluated through selection-vector kernels
	probeShards atomic.Int64 // index-probe shards run (1 per serial probe)

	// Ingest counters.
	compactions     atomic.Int64 // delta-into-generation compactions published
	compactionNanos atomic.Int64 // wall time spent building + publishing them

	// Retention counters.
	deletedRows   atomic.Int64 // rows tombstoned by DeleteRect/DeleteWhere/TTL
	reclaimedRows atomic.Int64 // tombstoned rows physically dropped by compaction

	// kNN counters.
	nearestQueries atomic.Int64 // Nearest calls served (any backend)
}

// tableData is one immutable generation of a table: column storage, row
// count, and the spatial indexes built from exactly these columns. A new
// generation is published (under the table write lock) for every write;
// readers grab the pointer once and never see a torn state.
type tableData struct {
	cols    [][]float64
	n       int
	indexes []spatialIndex
	// dead is the generation's tombstone set: rows < n whose bit is set
	// are deleted and invisible to every read. Like everything else in
	// the generation it is immutable — DeleteWhere publishes a fresh
	// bitmap (copy-on-write via orBitmapRows, always base-0) — so a
	// reader's columns, indexes, and tombstones are one consistent
	// snapshot with no extra locking. nil means no deletions. Compaction
	// physically drops the dead rows and publishes dead=nil with a
	// bumped loadGen (row ids shift when survivors are rewritten).
	dead *rowBitmap
	// loadGen counts content replacements (BulkLoad, snapshot restore,
	// reclaiming compaction); Append, IndexOn, and non-reclaiming
	// Compact preserve it. A background compaction uses it to detect
	// that the columns it built against were replaced mid-build, in
	// which case its indexes describe dead data and must not be
	// published.
	loadGen uint64
}

// deadCount returns the number of tombstoned rows in this generation.
func (d *tableData) deadCount() int {
	if d.dead == nil {
		return 0
	}
	return d.dead.count
}

// indexFor returns this generation's index over the column pair, or nil.
func (d *tableData) indexFor(xi, yi int) spatialIndex {
	for _, ix := range d.indexes {
		if x, y := ix.pair(); x == xi && y == yi {
			return ix
		}
	}
	return nil
}

// NewTable creates a table with the given column names. It returns an
// error when names are empty or duplicated.
func NewTable(name string, columns ...string) (*Table, error) {
	if name == "" {
		return nil, errors.New("store: table name must be non-empty")
	}
	if len(columns) == 0 {
		return nil, fmt.Errorf("store: table %q needs at least one column", name)
	}
	t := &Table{
		name:     name,
		colName:  append([]string(nil), columns...),
		colIdx:   make(map[string]int, len(columns)),
		data:     &tableData{cols: make([][]float64, len(columns))},
		counters: &tableCounters{},
		zoneStat: make([]zoneColStat, len(columns)),
		ttlCol:   -1,
	}
	for i, c := range columns {
		if c == "" {
			return nil, fmt.Errorf("store: table %q column %d has empty name", name, i)
		}
		if _, dup := t.colIdx[c]; dup {
			return nil, fmt.Errorf("store: table %q has duplicate column %q", name, c)
		}
		t.colIdx[c] = i
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns the column names in declaration order.
func (t *Table) Columns() []string { return append([]string(nil), t.colName...) }

// NumRows returns the row count, tombstoned rows included — the
// high-water mark row ids are addressed against. Use LiveRows for the
// count a scan can actually return.
func (t *Table) NumRows() int {
	return t.snapshot().n
}

// LiveRows returns the number of rows visible to reads: the row count
// minus the tombstoned set of the same snapshot.
func (t *Table) LiveRows() int {
	d := t.snapshot()
	return d.n - d.deadCount()
}

// snapshot returns the current generation. The returned struct and
// everything it references are immutable: writers publish fresh
// generations instead of mutating, and Append only writes past the
// generation's row count, so the first n rows of each column never
// change after the snapshot is taken.
func (t *Table) snapshot() *tableData {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.data
}

// Append adds one row; values must match the column count. The row is
// absorbed into every spatial index's delta in the same critical
// section it becomes visible in, so scans keep answering at indexed
// speed under ingest (rows appended before the delta machinery existed
// — or past its id capacity — take the linear tail path until the next
// compaction or rebuild). When auto-compaction is enabled
// (SetAutoCompact), crossing the delta threshold fires a background
// merge into a fresh immutable generation.
func (t *Table) Append(values ...float64) error {
	if len(values) != len(t.colName) {
		return fmt.Errorf("store: table %q: %d values for %d columns", t.name, len(values), len(t.colName))
	}
	t.mu.Lock()
	d := t.data
	cols := make([][]float64, len(d.cols))
	for i, v := range values {
		cols[i] = append(d.cols[i], v)
	}
	for _, ix := range d.indexes {
		if dx := ix.deltaIdx(); dx != nil {
			dx.absorbRange(cols, d.n, d.n+1)
		}
	}
	t.data = &tableData{cols: cols, n: d.n + 1, indexes: d.indexes, dead: d.dead, loadGen: d.loadGen}
	t.mu.Unlock()
	t.maybeCompact()
	return nil
}

// AppendRows adds a batch of rows given as parallel column slices (the
// ingest endpoint's shape): one lock acquisition, one generation
// publish, and one delta absorption pass for the whole batch. Column
// order must match the schema and all slices must have equal length.
func (t *Table) AppendRows(cols ...[]float64) error {
	if len(cols) != len(t.colName) {
		return fmt.Errorf("store: table %q: %d columns for %d-column schema", t.name, len(cols), len(t.colName))
	}
	n := len(cols[0])
	for i, c := range cols {
		if len(c) != n {
			return fmt.Errorf("store: table %q: column %q has %d rows, expected %d", t.name, t.colName[i], len(c), n)
		}
	}
	if n == 0 {
		return nil
	}
	t.mu.Lock()
	d := t.data
	fresh := make([][]float64, len(d.cols))
	for i := range fresh {
		fresh[i] = append(d.cols[i], cols[i]...)
	}
	for _, ix := range d.indexes {
		if dx := ix.deltaIdx(); dx != nil {
			dx.absorbRange(fresh, d.n, d.n+n)
		}
	}
	t.data = &tableData{cols: fresh, n: d.n + n, indexes: d.indexes, dead: d.dead, loadGen: d.loadGen}
	t.mu.Unlock()
	t.maybeCompact()
	return nil
}

// BulkLoad replaces the table contents with the given parallel column
// slices (copied into fresh storage, so concurrent readers keep their old
// snapshot) and rebuilds every registered spatial index against the new
// contents before publishing, keeping index and columns snapshot-
// consistent. Column order must match the schema.
func (t *Table) BulkLoad(cols ...[]float64) error {
	if len(cols) != len(t.colName) {
		return fmt.Errorf("store: table %q: %d columns for %d-column schema", t.name, len(cols), len(t.colName))
	}
	n := -1
	for i, c := range cols {
		if n == -1 {
			n = len(c)
		} else if len(c) != n {
			return fmt.Errorf("store: table %q: column %q has %d rows, expected %d", t.name, t.colName[i], len(c), n)
		}
	}
	fresh := make([][]float64, len(cols))
	for i, c := range cols {
		fresh[i] = append(make([]float64, 0, len(c)), c...)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var indexes []spatialIndex
	mode := t.backendMode.Load()
	for _, p := range t.indexPairs {
		if ix := buildSpatialIndex(p[0], p[1], fresh, n, mode); ix != nil {
			indexes = append(indexes, ix)
		}
	}
	t.data = &tableData{cols: fresh, n: n, indexes: indexes, loadGen: t.data.loadGen + 1}
	// New contents, new value distribution: the adaptive zone-skip
	// verdicts earned against the old data no longer apply, and a
	// frozen skip could permanently disable pruning that the new data
	// would reward. Start the evidence over.
	t.resetZoneStat()
	return nil
}

// resetZoneStat zeroes the adaptive zone-consult record so skip
// decisions are re-earned against current data.
func (t *Table) resetZoneStat() {
	for i := range t.zoneStat {
		t.zoneStat[i].evaluated.Store(0)
		t.zoneStat[i].decisive.Store(0)
	}
}

// IndexOn registers a grid spatial index over the (xCol, yCol) pair and
// builds it against the current contents. The pair stays registered:
// every later BulkLoad rebuilds the index against the fresh columns
// before publishing them. Calling IndexOn again for the same pair
// rebuilds it in place — the way to re-absorb rows accumulated through
// Append into the indexed set.
//
// The build runs under the table's write lock — IndexOn is a publish-
// time operation (bulk load, sample registration), not a serving-path
// one.
func (t *Table) IndexOn(xCol, yCol string) error {
	xi, ok := t.colIdx[xCol]
	if !ok {
		return fmt.Errorf("store: table %q column %q: %w", t.name, xCol, ErrNotFound)
	}
	yi, ok := t.colIdx[yCol]
	if !ok {
		return fmt.Errorf("store: table %q column %q: %w", t.name, yCol, ErrNotFound)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pair := [2]int{xi, yi}
	registered := false
	for _, p := range t.indexPairs {
		if p == pair {
			registered = true
			break
		}
	}
	if !registered {
		t.indexPairs = append(t.indexPairs, pair)
	}
	d := t.data
	mode := t.backendMode.Load()
	// Already covering the current generation (the common reload path:
	// BulkLoad just rebuilt every registered pair) with a backend the
	// current policy accepts — nothing to do.
	if registered {
		if old := d.indexFor(xi, yi); old != nil && old.rows() == d.n && backendSatisfies(mode, old.backend()) {
			return nil
		}
	}
	indexes := make([]spatialIndex, 0, len(d.indexes)+1)
	for _, old := range d.indexes {
		if ox, oy := old.pair(); ox != xi || oy != yi {
			indexes = append(indexes, old)
		}
	}
	if ix := buildSpatialIndex(xi, yi, d.cols, d.n, mode); ix != nil {
		indexes = append(indexes, ix)
	}
	t.data = &tableData{cols: d.cols, n: d.n, indexes: indexes, dead: d.dead, loadGen: d.loadGen}
	return nil
}

// Column returns a read-only snapshot view of the named column: the
// returned slice is never mutated by later writes to the table.
func (t *Table) Column(name string) ([]float64, error) {
	i, ok := t.colIdx[name]
	if !ok {
		return nil, fmt.Errorf("store: table %q column %q: %w", t.name, name, ErrNotFound)
	}
	d := t.snapshot()
	return d.cols[i][:d.n], nil
}

// Pred is a conjunctive range predicate over columns: for each named
// column, the row value must be within [Min, Max]. This is the predicate
// shape visualization tools emit — axis ranges of the current viewport.
type Pred struct {
	Column   string
	Min, Max float64
}

// parallelScanMinRows is the table size above which linear predicate
// scans shard across CPUs. Below it the goroutine fan-out costs more
// than it saves.
const parallelScanMinRows = 1 << 16

// Scan returns the rows satisfying all predicates, evaluated against one
// consistent snapshot of the table. A nil or empty predicate list
// selects every row (as a dense range, without materializing ids).
// Large tables are scanned in parallel shards, one goroutine per CPU,
// concatenated in shard order so the result stays sorted.
func (t *Table) Scan(preds []Pred) (RowSet, error) {
	idx := make([]int, len(preds))
	for i, p := range preds {
		ci, ok := t.colIdx[p.Column]
		if !ok {
			return RowSet{}, fmt.Errorf("store: table %q column %q: %w", t.name, p.Column, ErrNotFound)
		}
		idx[i] = ci
	}
	d := t.snapshot()
	if len(preds) == 0 {
		return rangeMinusBitmap(0, d.n, d.dead), nil
	}
	cols := make([][]float64, len(preds))
	for i, ci := range idx {
		cols[i] = d.cols[ci]
	}
	return rowSetFromSorted(filterDeadInts(scanShards(cols, preds, d.n, nil), d.dead)), nil
}

// ScanStats describes how one ScanRect/ScanRectWhere call was answered,
// for the query layer's pruning report and the /metrics counters. Cell
// counts are zero on the fallback (linear) path and on the all-rows and
// full-extent fast paths, which never touch cells at all.
type ScanStats struct {
	// IndexProbe is true when a grid spatial index answered the call.
	IndexProbe bool
	// CellsTouched counts grid cells the rectangle overlapped.
	CellsTouched int
	// CellsPruned counts cells discarded wholesale because a zone map
	// proved no row in them can satisfy the residual predicates.
	CellsPruned int
	// CellsBulk counts cells whose rows were emitted without any
	// per-row test (geometrically covered and zone-covered).
	CellsBulk int
	// RowsExamined counts rows tested individually (boundary ring,
	// zone-inconclusive cells, extras, delta buckets, and any appended
	// tail the delta does not cover).
	RowsExamined int
	// DeltaRows counts the rows examined out of delta buckets — the
	// appended-but-not-yet-compacted set the probe reached through the
	// grid instead of a linear tail walk.
	DeltaRows int
	// ZonesSkipped counts predicates whose zone checks the adaptive
	// planner skipped because that column's zones had proven useless.
	ZonesSkipped int
	// BatchedRows counts the rows (out of RowsExamined) whose rectangle
	// and predicate tests ran through the selection-vector batch
	// kernels rather than the scalar per-row loops.
	BatchedRows int
	// ProbeShards counts the index-probe shards this scan ran: 1 for a
	// serial probe, more when the touched cell range was large enough
	// for collectCells to fan out across CPUs. Zero off the probe path.
	ProbeShards int
}

// unboundedRect matches every row: each comparison against ±Inf bounds
// is vacuous, including for rows with NaN or ±Inf coordinates.
var unboundedRect = geom.Rect{
	MinX: math.Inf(-1), MinY: math.Inf(-1),
	MaxX: math.Inf(1), MaxY: math.Inf(1),
}

// ScanRect returns the rows whose (xCol, yCol) projection lies inside r
// (boundary inclusive, like Scan's range predicates). It is
// ScanRectWhere with no residual predicates; see there for the rectangle
// conventions.
func (t *Table) ScanRect(xCol, yCol string, r geom.Rect) (RowSet, error) {
	rows, _, err := t.ScanRectWhere(xCol, yCol, r, nil)
	return rows, err
}

// ScanRectWhere returns the rows whose (xCol, yCol) projection lies
// inside r (boundary inclusive) AND that satisfy every residual
// predicate, evaluated against one consistent snapshot. When the pair
// has a spatial index the answer is an index probe: per-cell zone maps
// prune cells no row of which can match and bulk-emit cells every row of
// which must match, so residual predicates are evaluated per row only on
// boundary cells, zone-inconclusive cells, non-finite extras, and the
// appended tail. Without an index it degrades to the sharded linear
// scan with the rectangle folded into the predicate list.
//
// Rectangle conventions, shared with Scan:
//
//   - The zero Rect means "no viewport restriction" — the same all-rows
//     answer (a dense range over the snapshot, appended tail included)
//     that Scan returns for an empty predicate list. A degenerate point
//     query at the origin is spelled {MinX: 0, MinY: 0, MaxX: 0, MaxY:
//     math.Copysign(0, -1)} — any rectangle with at least one non-zero
//     bit — or more naturally via Scan predicates.
//   - NaN bounds (in r or in a predicate) never exclude anything: every
//     comparison against NaN is false, exactly how Scan's predicates
//     treat it, so they fold to the matching infinity.
//   - Rows with NaN coordinates or NaN predicate-column values compare
//     false against every bound and therefore match, exactly as in
//     Scan. ScanRectWhere is row-for-row equivalent to Scan with the
//     corresponding range predicates.
func (t *Table) ScanRectWhere(xCol, yCol string, r geom.Rect, preds []Pred) (RowSet, ScanStats, error) {
	return t.scanRectWhere(nil, nil, xCol, yCol, r, preds)
}

// ScanRectWhereCtx is ScanRectWhere with stage timing and cooperative
// cancellation: when ctx carries an obs.Trace, the index/delta probe
// and the per-row residual work are recorded as probe and residual
// spans, and when ctx can be canceled the scan polls it at kernel-block
// and probe-shard boundaries (counter-gated, see canceler) and unwinds
// with ctx.Err(). With neither a trace nor a cancelable context it is
// byte-for-byte ScanRectWhere — the nil-trace, nil-canceler paths
// neither allocate nor read the clock.
func (t *Table) ScanRectWhereCtx(ctx context.Context, xCol, yCol string, r geom.Rect, preds []Pred) (RowSet, ScanStats, error) {
	return t.scanRectWhere(obs.FromContext(ctx), newCanceler(ctx), xCol, yCol, r, preds)
}

// ScanRects is the OR-of-viewports query mode: it returns the rows
// whose (xCol, yCol) projection lies inside ANY of the rectangles and
// that satisfy every residual predicate — the RowSet.Union of the
// per-rect probes. Each rectangle follows ScanRectWhere's conventions
// (zero Rect = no restriction, NaN bounds fold to ±Inf), so one zero
// rectangle absorbs the whole union. An empty rects slice degenerates
// to the single unrestricted viewport. Stats are summed across probes.
//
// Each probe reads its own snapshot: under concurrent ingest the union
// may straddle generations, exactly like two back-to-back ScanRectWhere
// calls would. Rows landing in several rectangles are returned once.
func (t *Table) ScanRects(xCol, yCol string, rects []geom.Rect, preds []Pred) (RowSet, ScanStats, error) {
	return t.scanRects(nil, nil, xCol, yCol, rects, preds)
}

// ScanRectsCtx is ScanRects with stage timing and cooperative
// cancellation, like ScanRectWhereCtx; cancellation is additionally
// checked between rectangles.
func (t *Table) ScanRectsCtx(ctx context.Context, xCol, yCol string, rects []geom.Rect, preds []Pred) (RowSet, ScanStats, error) {
	return t.scanRects(obs.FromContext(ctx), newCanceler(ctx), xCol, yCol, rects, preds)
}

func (t *Table) scanRects(tr *obs.Trace, cn *canceler, xCol, yCol string, rects []geom.Rect, preds []Pred) (RowSet, ScanStats, error) {
	if len(rects) == 0 {
		return t.scanRectWhere(tr, cn, xCol, yCol, geom.Rect{}, preds)
	}
	var union RowSet
	var total ScanStats
	for i, r := range rects {
		// Per-rect boundary: an unconditional poll — rect counts are
		// small, and each rect below can be an entire probe.
		if err := cn.cause(); err != nil {
			return RowSet{}, total, err
		}
		rows, st, err := t.scanRectWhere(tr, cn, xCol, yCol, r, preds)
		if err != nil {
			return RowSet{}, total, err
		}
		total.IndexProbe = total.IndexProbe || st.IndexProbe
		total.CellsTouched += st.CellsTouched
		total.CellsPruned += st.CellsPruned
		total.CellsBulk += st.CellsBulk
		total.RowsExamined += st.RowsExamined
		total.DeltaRows += st.DeltaRows
		total.ZonesSkipped += st.ZonesSkipped
		total.BatchedRows += st.BatchedRows
		total.ProbeShards += st.ProbeShards
		if i == 0 {
			union = rows
		} else {
			union = union.Union(rows)
		}
	}
	return union, total, nil
}

func (t *Table) scanRectWhere(tr *obs.Trace, cn *canceler, xCol, yCol string, r geom.Rect, preds []Pred) (RowSet, ScanStats, error) {
	var st ScanStats
	xi, ok := t.colIdx[xCol]
	if !ok {
		return RowSet{}, st, fmt.Errorf("store: table %q column %q: %w", t.name, xCol, ErrNotFound)
	}
	yi, ok := t.colIdx[yCol]
	if !ok {
		return RowSet{}, st, fmt.Errorf("store: table %q column %q: %w", t.name, yCol, ErrNotFound)
	}
	pi := make([]int, len(preds))
	for i, p := range preds {
		ci, ok := t.colIdx[p.Column]
		if !ok {
			return RowSet{}, st, fmt.Errorf("store: table %q column %q: %w", t.name, p.Column, ErrNotFound)
		}
		pi[i] = ci
	}
	// The zero Rect selects everything (see the conventions above).
	if r == (geom.Rect{}) {
		r = unboundedRect
	}
	// Fold NaN bounds to the matching infinity so the geometric
	// machinery (Intersects, cell clamping, zone comparisons) sees the
	// same "unbounded" meaning the predicate comparisons give them.
	if math.IsNaN(r.MinX) {
		r.MinX = math.Inf(-1)
	}
	if math.IsNaN(r.MinY) {
		r.MinY = math.Inf(-1)
	}
	if math.IsNaN(r.MaxX) {
		r.MaxX = math.Inf(1)
	}
	if math.IsNaN(r.MaxY) {
		r.MaxY = math.Inf(1)
	}
	preds = normalizePreds(preds)
	d := t.snapshot()
	// All-rows fast path: an unbounded rectangle with no predicates
	// matches every live row — NaN/±Inf coordinates and the appended
	// tail included — as a dense range (minus the tombstone set),
	// agreeing with Scan(nil).
	if len(preds) == 0 && r == unboundedRect {
		return rangeMinusBitmap(0, d.n, d.dead), st, nil
	}
	ix := d.indexFor(xi, yi)
	// Adaptive zone planning: columns whose zone maps have consulted
	// thousands of cells without ever pruning or settling one (an
	// uncorrelated filter column) stop paying the zone checks.
	var skip []bool
	if ix != nil && len(preds) > 0 {
		skip = t.zoneSkipFor(pi)
		if skip != nil {
			for _, s := range skip {
				if s {
					st.ZonesSkipped++
				}
			}
			t.counters.zoneSkips.Add(int64(st.ZonesSkipped))
		}
	}
	// With no viewport restriction and every predicate's zones useless,
	// the probe would walk the entire grid cell by cell only to evaluate
	// the predicates per row — the sharded linear scan does the same
	// work with none of the cell overhead.
	if ix == nil || (r == unboundedRect && st.ZonesSkipped == len(preds) && len(preds) > 0) {
		t.counters.scanFallbacks.Add(1)
		cols := make([][]float64, 0, 2+len(preds))
		all := make([]Pred, 0, 2+len(preds))
		// An unbounded axis is a vacuous predicate (±Inf bounds match
		// every value, NaN included) — dropping it saves the scan a full
		// column pass.
		if r.MinX != math.Inf(-1) || r.MaxX != math.Inf(1) {
			cols = append(cols, d.cols[xi])
			all = append(all, Pred{Column: xCol, Min: r.MinX, Max: r.MaxX})
		}
		if r.MinY != math.Inf(-1) || r.MaxY != math.Inf(1) {
			cols = append(cols, d.cols[yi])
			all = append(all, Pred{Column: yCol, Min: r.MinY, Max: r.MaxY})
		}
		for i, p := range preds {
			cols = append(cols, d.cols[pi[i]])
			all = append(all, p)
		}
		sp := tr.StartSpan(obs.StageResidual)
		rs := rowSetFromSorted(filterDeadInts(scanShards(cols, all, d.n, cn), d.dead))
		sp.End()
		if err := cn.cause(); err != nil {
			return RowSet{}, st, err
		}
		if !forceScalarKernels && d.n >= kernelMinRows {
			st.BatchedRows = d.n
			t.counters.batchedRows.Add(int64(d.n))
		}
		return rs, st, nil
	}
	st.IndexProbe = true
	t.counters.indexProbes.Add(1)
	if len(preds) == 0 && ix.rows() == d.n && ix.coversAll(r) {
		return rangeMinusBitmap(0, d.n, d.dead), st, nil
	}
	var tally zoneTally
	if len(preds) > 0 {
		tally.eval = make([]int64, len(preds))
		tally.decisive = make([]int64, len(preds))
	}
	sp := tr.StartSpan(obs.StageProbe)
	ids := ix.collect(d.cols, r, preds, pi, skip, &tally, &st, cn)
	// Rows appended after the index was built: the delta holds them
	// binned under the same grid, so the probe reaches them through
	// cells (zone-pruned like base cells) instead of walking the tail.
	// All delta ids exceed every base id, so the result stays sorted.
	covered := ix.rows()
	if dx := ix.deltaIdx(); dx != nil {
		ids, covered = dx.collect(d.cols, r, preds, pi, skip, d.n, &st, ids, cn)
	}
	sp.End()
	// A canceled probe returned a partial id set; discard it and unwind
	// with the context's error before any more work is attributed.
	if err := cn.cause(); err != nil {
		return RowSet{}, st, err
	}
	// Anything past the delta watermark (pre-delta generations, id
	// overflow) is filtered linearly with the full predicate list.
	sp = tr.StartSpan(obs.StageResidual)
	xs, ys := d.cols[xi], d.cols[yi]
	canceled := false
	for row := covered; row < d.n; row++ {
		if row&(scanBatchRows-1) == 0 && cn.stop() {
			canceled = true
			break
		}
		st.RowsExamined++
		if inRect(xs[row], ys[row], r) && matchPreds(d.cols, pi, preds, row) {
			ids = append(ids, row)
		}
	}
	sp.End()
	if canceled {
		return RowSet{}, st, cn.cause()
	}
	t.counters.batchedRows.Add(int64(st.BatchedRows))
	t.counters.probeShards.Add(int64(st.ProbeShards))
	if len(preds) > 0 {
		t.counters.filteredProbes.Add(1)
		t.counters.zoneCellsTouched.Add(int64(st.CellsTouched))
		t.counters.zoneCellsPruned.Add(int64(st.CellsPruned))
		for k := range preds {
			if skip != nil && skip[k] {
				continue
			}
			t.zoneStat[pi[k]].evaluated.Add(tally.eval[k])
			t.zoneStat[pi[k]].decisive.Add(tally.decisive[k])
		}
	}
	// Materializing the RowSet is O(result); attribute it to the probe
	// that produced the ids. The tombstone refine pass runs once here
	// over the final id list — base cells, delta buckets, and linear
	// tail all flow through it, so the batch kernels above never test
	// liveness per row.
	sp = tr.StartSpan(obs.StageProbe)
	rs := rowSetFromSorted(filterDeadInts(ids, d.dead))
	sp.End()
	return rs, st, nil
}

// zoneSkipFor returns, per predicate, whether its column's zone checks
// should be skipped, or nil when none should. Skipping engages only
// after zoneAdaptMinCells consults with a decisive rate below
// 1/zoneAdaptDecisiveDiv.
func (t *Table) zoneSkipFor(pi []int) []bool {
	var skip []bool
	for k, ci := range pi {
		s := &t.zoneStat[ci]
		ev := s.evaluated.Load()
		if ev >= zoneAdaptMinCells && s.decisive.Load() < ev/zoneAdaptDecisiveDiv {
			if skip == nil {
				skip = make([]bool, len(pi))
			}
			skip[k] = true
		}
	}
	return skip
}

// normalizePreds folds NaN predicate bounds to the matching infinity
// (both mean "unbounded" under the comparison semantics), copying the
// slice only when a fold is needed.
func normalizePreds(preds []Pred) []Pred {
	for i, p := range preds {
		if !math.IsNaN(p.Min) && !math.IsNaN(p.Max) {
			continue
		}
		out := append([]Pred(nil), preds...)
		for j := i; j < len(out); j++ {
			if math.IsNaN(out[j].Min) {
				out[j].Min = math.Inf(-1)
			}
			if math.IsNaN(out[j].Max) {
				out[j].Max = math.Inf(1)
			}
		}
		return out
	}
	return preds
}

// scanShards evaluates preds over rows [0, n), splitting the row space
// across CPUs when the table is large. Shards are concatenated in order,
// so the returned ids are sorted ascending.
func scanShards(cols [][]float64, preds []Pred, n int, cn *canceler) []int {
	workers := runtime.GOMAXPROCS(0)
	if maxShards := n / (parallelScanMinRows / 4); workers > maxShards {
		workers = maxShards
	}
	if n < parallelScanMinRows || workers <= 1 {
		return scanRange(cols, preds, 0, n, nil, cn)
	}
	parts := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		// Each shard forks the canceler: the tick counter is
		// unsynchronized, while the underlying context is shared — all
		// shards observe the same cancellation.
		go func(w, lo, hi int, cn *canceler) {
			defer wg.Done()
			parts[w] = scanRange(cols, preds, lo, hi, nil, cn)
		}(w, lo, hi, cn.fork())
	}
	wg.Wait()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	out := make([]int, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// forceScalarKernels routes every scan through the scalar reference
// loops instead of the batch kernels. It exists for the kernel-vs-scalar
// benchmark variants and is only flipped by single-threaded test setup,
// never concurrently with scans.
var forceScalarKernels bool

// scanRange is the sequential scan kernel: it appends the rows of
// [lo, hi) matching every predicate to out. Large ranges run through
// the selection-vector batch kernels block by block — the first
// predicate seeds a selection from a contiguous column stride, later
// predicates refine it in place — while tiny ranges and id spaces past
// the int32 selection domain keep the scalar per-row loop.
func scanRange(cols [][]float64, preds []Pred, lo, hi int, out []int, cn *canceler) []int {
	if len(preds) == 0 {
		for r := lo; r < hi; r++ {
			out = append(out, r)
		}
		return out
	}
	if forceScalarKernels || hi-lo < kernelMinRows || hi > math.MaxInt32 {
		if cn == nil {
			return scanRangeScalar(cols, preds, lo, hi, out)
		}
		// Chunk the scalar loop at the same block size as the kernels so
		// cancellation latency does not depend on which path ran.
		for b := lo; b < hi; b += scanBatchRows {
			if cn.stop() {
				return out
			}
			out = scanRangeScalar(cols, preds, b, min(b+scanBatchRows, hi), out)
		}
		return out
	}
	// Two selection buffers, ping-ponged between passes: refining into
	// the other buffer (selGather) instead of compacting in place keeps
	// the survivor stores from aliasing the ids the same pass is about
	// to load.
	var selA, selB [scanBatchRows]int32
	for b := lo; b < hi; b += scanBatchRows {
		// Kernel-block boundary: one counter-gated poll per 4096-row
		// block; a canceled scan returns its partial ids, which the
		// entry point discards when it sees the context error.
		if cn.stop() {
			return out
		}
		e := min(b+scanBatchRows, hi)
		src, dst := selA[:], selB[:]
		k := selRange(src, cols[0][b:e], int32(b), preds[0].Min, preds[0].Max)
		for i := 1; i < len(preds) && k > 0; i++ {
			k = selGather(dst, src[:k], cols[i], preds[i].Min, preds[i].Max)
			src, dst = dst, src
		}
		out = appendSel(out, src[:k])
	}
	return out
}

// Points projects two columns into geometry points for the given row
// set, reading one consistent snapshot. A dense RowSet walks the column
// arrays directly — the full-extent path never materializes row ids.
func (t *Table) Points(xCol, yCol string, rows RowSet) ([]geom.Point, error) {
	xi, ok := t.colIdx[xCol]
	if !ok {
		return nil, fmt.Errorf("store: table %q column %q: %w", t.name, xCol, ErrNotFound)
	}
	yi, ok := t.colIdx[yCol]
	if !ok {
		return nil, fmt.Errorf("store: table %q column %q: %w", t.name, yCol, ErrNotFound)
	}
	d := t.snapshot()
	xs, ys := d.cols[xi], d.cols[yi]
	if rows.all {
		rows = RowRange(0, d.n)
	}
	// Tombstoned rows are invisible to projections too: subtract this
	// snapshot's dead set (a no-op without deletions). Idempotent for
	// row sets a scan already filtered.
	rows = rows.subtractBitmap(d.dead)
	if start, end, ok := rows.AsRange(); ok {
		if end > d.n {
			return nil, fmt.Errorf("store: table %q: row range [%d,%d) out of range [0,%d)", t.name, start, end, d.n)
		}
		pts := make([]geom.Point, end-start)
		gatherPointsDense(pts, xs[start:end], ys[start:end])
		return pts, nil
	}
	if err := checkRowBounds(t.name, rows, d.n); err != nil {
		return nil, err
	}
	if rows.bm != nil {
		pts := make([]geom.Point, 0, rows.Len())
		rows.bm.forEach(func(r int) { pts = append(pts, geom.Pt(xs[r], ys[r])) })
		return pts, nil
	}
	pts := make([]geom.Point, len(rows.ids))
	gatherPoints(pts, rows.ids, xs, ys)
	return pts, nil
}

// Gather returns the values of one column at the given rows, reading
// one consistent snapshot (columns and tombstones together).
func (t *Table) Gather(col string, rows RowSet) ([]float64, error) {
	i, ok := t.colIdx[col]
	if !ok {
		return nil, fmt.Errorf("store: table %q column %q: %w", t.name, col, ErrNotFound)
	}
	d := t.snapshot()
	c := d.cols[i][:d.n]
	if rows.all {
		rows = RowRange(0, len(c))
	}
	rows = rows.subtractBitmap(d.dead)
	if start, end, ok := rows.AsRange(); ok {
		if end > len(c) {
			return nil, fmt.Errorf("store: table %q: row range [%d,%d) out of range [0,%d)", t.name, start, end, len(c))
		}
		out := make([]float64, end-start)
		copy(out, c[start:end])
		return out, nil
	}
	if err := checkRowBounds(t.name, rows, len(c)); err != nil {
		return nil, err
	}
	if rows.bm != nil {
		out := make([]float64, 0, rows.Len())
		rows.bm.forEach(func(r int) { out = append(out, c[r]) })
		return out, nil
	}
	out := make([]float64, len(rows.ids))
	gatherVals(out, rows.ids, c)
	return out, nil
}

// checkRowBounds validates an explicit RowSet against a row count in
// O(1): the ids are sorted, so checking the extremes covers every row.
func checkRowBounds(table string, rows RowSet, n int) error {
	lo, ok := rows.Min()
	if !ok {
		return nil
	}
	hi, _ := rows.Max()
	if lo < 0 || hi >= n {
		return fmt.Errorf("store: table %q: row %d out of range [0,%d)", table, pickOutOfRange(lo, hi, n), n)
	}
	return nil
}

func pickOutOfRange(lo, hi, n int) int {
	if lo < 0 {
		return lo
	}
	return hi
}

// Bounds returns the bounding rectangle of the (xCol, yCol) projection of
// the whole table, computed over one consistent snapshot. When the pair
// is indexed and the index covers every row, the answer is the index's
// precomputed extent (O(1)). It is empty for a table with no rows.
func (t *Table) Bounds(xCol, yCol string) (geom.Rect, error) {
	xi, ok := t.colIdx[xCol]
	if !ok {
		return geom.Rect{}, fmt.Errorf("store: table %q column %q: %w", t.name, xCol, ErrNotFound)
	}
	yi, ok := t.colIdx[yCol]
	if !ok {
		return geom.Rect{}, fmt.Errorf("store: table %q column %q: %w", t.name, yCol, ErrNotFound)
	}
	d := t.snapshot()
	// The index extent excludes non-finite rows (they are unbinnable)
	// and includes tombstoned rows, so the fast path only applies when
	// there are neither — the linear path below folds ±Inf coordinates
	// into the extent like UnionPoint always has, and skips dead rows
	// so a delete can shrink the served extent.
	if ix := d.indexFor(xi, yi); ix != nil && ix.rows() == d.n && ix.extraCount() == 0 && d.deadCount() == 0 {
		return ix.extent(), nil
	}
	xs, ys := d.cols[xi], d.cols[yi]
	b := geom.EmptyRect()
	for i := 0; i < d.n; i++ {
		if d.dead != nil && d.dead.contains(i) {
			continue
		}
		b = b.UnionPoint(geom.Pt(xs[i], ys[i]))
	}
	return b, nil
}

// SampleMeta records the lineage of a sample table in the catalog.
type SampleMeta struct {
	// Table is the sample table's name.
	Table string
	// Source is the base table the sample was drawn from.
	Source string
	// Method is the sampling method ("vas", "uniform", ...).
	Method string
	// XCol, YCol are the indexed column pair the sample was built on.
	XCol, YCol string
	// Size is the number of sample rows.
	Size int
	// HasDensity reports whether the sample carries a §V count column.
	HasDensity bool
}

// Store is a catalog of base tables and sample tables. Safe for concurrent
// use.
type Store struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	samples map[string][]SampleMeta // source table -> its samples

	// retired holds the counter blocks of dropped tables (16 bytes per
	// drop — negligible even for long-lived servers replacing samples
	// continuously). Retaining the live block, rather than folding a
	// snapshot of its value, means increments from scans racing the drop
	// still land in the totals: the Probes/Fallbacks aggregates can
	// never decrease across /metrics scrapes.
	retired []*tableCounters
}

// New returns an empty store.
func New() *Store {
	return &Store{
		tables:  make(map[string]*Table),
		samples: make(map[string][]SampleMeta),
	}
}

// CreateTable registers a new table. It fails when the name is taken.
func (s *Store) CreateTable(name string, columns ...string) (*Table, error) {
	t, err := NewTable(name, columns...)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.tables[name]; exists {
		return nil, fmt.Errorf("store: table %q already exists", name)
	}
	s.tables[name] = t
	return t, nil
}

// Table looks up a table by name.
func (s *Store) Table(name string) (*Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("store: table %q: %w", name, ErrNotFound)
	}
	return t, nil
}

// DropTable removes a table and any sample metadata pointing at it. The
// table's read-path counter block is retained so the aggregate stats
// stay monotonic.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; !ok {
		return fmt.Errorf("store: table %q: %w", name, ErrNotFound)
	}
	s.dropLocked(name)
	return nil
}

// dropLocked removes a table and every catalog reference to it. Caller
// holds s.mu.
func (s *Store) dropLocked(name string) {
	t, ok := s.tables[name]
	if !ok {
		return
	}
	s.retired = append(s.retired, t.counters)
	delete(s.tables, name)
	delete(s.samples, name)
	for src, metas := range s.samples {
		kept := metas[:0]
		for _, m := range metas {
			if m.Table != name {
				kept = append(kept, m)
			}
		}
		s.samples[src] = kept
	}
}

// PublishSample atomically installs a fully built sample table together
// with its catalog registration. Any previous table of the same name
// (and its catalog entries) is removed in the same critical section the
// replacement becomes visible in, so concurrent readers always observe
// a complete catalog — never the gap a drop-then-recreate sequence
// would open, where a query racing the rebuild finds no sample at all.
// Build the table (BulkLoad, IndexOn) before publishing; it must not be
// registered in the store yet.
func (s *Store) PublishSample(t *Table, meta SampleMeta) error {
	if t == nil {
		return errors.New("store: publish: nil table")
	}
	if t.name != meta.Table {
		return fmt.Errorf("store: publish: table %q does not match meta table %q", t.name, meta.Table)
	}
	if meta.Size <= 0 {
		return fmt.Errorf("store: sample %q has non-positive size %d", meta.Table, meta.Size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[meta.Source]; !ok {
		return fmt.Errorf("store: source table %q: %w", meta.Source, ErrNotFound)
	}
	if existing, ok := s.tables[meta.Table]; ok && existing == t {
		return fmt.Errorf("store: publish: table %q is already registered", meta.Table)
	}
	s.dropLocked(meta.Table)
	s.tables[meta.Table] = t
	s.samples[meta.Source] = append(s.samples[meta.Source], meta)
	sort.Slice(s.samples[meta.Source], func(a, b int) bool {
		return s.samples[meta.Source][a].Size < s.samples[meta.Source][b].Size
	})
	return nil
}

// TableNames returns all table names sorted.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisterSample attaches sample metadata to its source table. The sample
// table itself must already exist in the store.
func (s *Store) RegisterSample(meta SampleMeta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[meta.Table]; !ok {
		return fmt.Errorf("store: sample table %q: %w", meta.Table, ErrNotFound)
	}
	if _, ok := s.tables[meta.Source]; !ok {
		return fmt.Errorf("store: source table %q: %w", meta.Source, ErrNotFound)
	}
	if meta.Size <= 0 {
		return fmt.Errorf("store: sample %q has non-positive size %d", meta.Table, meta.Size)
	}
	s.samples[meta.Source] = append(s.samples[meta.Source], meta)
	sort.Slice(s.samples[meta.Source], func(a, b int) bool {
		return s.samples[meta.Source][a].Size < s.samples[meta.Source][b].Size
	})
	return nil
}

// SamplesOf returns the registered samples of a source table, ascending by
// size.
func (s *Store) SamplesOf(source string) []SampleMeta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]SampleMeta(nil), s.samples[source]...)
}

// IndexStats aggregates spatial-index state and read-path usage across
// every table in the store, for the /metrics endpoint.
type IndexStats struct {
	// IndexedTables counts tables carrying at least one spatial index.
	IndexedTables int
	// Indexes counts spatial indexes across all tables.
	Indexes int
	// IndexedRows sums the rows covered by those indexes.
	IndexedRows int64
	// Cells sums the grid cells across all indexes.
	Cells int64
	// Probes counts ScanRect calls answered from a spatial index,
	// including by since-dropped tables (monotonic).
	Probes int64
	// Fallbacks counts ScanRect calls that fell back to a linear scan,
	// including by since-dropped tables (monotonic).
	Fallbacks int64
	// FilteredProbes counts index probes that carried at least one
	// residual predicate (monotonic, survives drops).
	FilteredProbes int64
	// ZoneCellsTouched and ZoneCellsPruned count, across filtered
	// probes, the grid cells considered and the cells discarded
	// wholesale by zone maps (monotonic, survive drops). Their ratio is
	// the zone-map prune rate.
	ZoneCellsTouched int64
	ZoneCellsPruned  int64
	// ZoneSkips counts predicates whose zone checks the adaptive
	// planner skipped (monotonic, survives drops).
	ZoneSkips int64
	// BatchedRows counts rows evaluated by the selection-vector batch
	// kernels rather than the scalar row loop (monotonic, survives
	// drops); against RowsExamined-style totals it gives the batched
	// fraction of the read path.
	BatchedRows int64
	// ProbeShards counts the shards collectCells fanned index probes
	// out to (one per serial probe; >1 per probe when the touched cell
	// rows crossed the parallel threshold). Monotonic, survives drops.
	ProbeShards int64
	// DeltaRows and TailRows are point-in-time gauges summed over every
	// live table: rows absorbed into delta indexes since the last
	// compaction, and rows not covered by a base index at all (the two
	// agree unless a delta saturated) — the ingest pressure operators
	// watch before it turns into latency.
	DeltaRows int64
	TailRows  int64
	// Compactions counts published delta-into-generation merges;
	// CompactionSeconds is the wall time they spent building off the
	// read path (both monotonic, survive drops).
	Compactions       int64
	CompactionSeconds float64
	// TombstonedRows is a point-in-time gauge: rows across every live
	// table that are deleted but not yet physically reclaimed by
	// compaction.
	TombstonedRows int64
	// DeletedRows counts rows ever tombstoned (DeleteRect, DeleteWhere,
	// TTL enforcement); ReclaimedRows counts tombstoned rows physically
	// dropped by compaction rewrites. Both monotonic, survive drops.
	// DeletedRows − ReclaimedRows ≥ TombstonedRows (dropped tables take
	// their pending tombstones with them).
	DeletedRows   int64
	ReclaimedRows int64
	// NearestQueries counts Table.Nearest calls served, any backend
	// (monotonic, survives drops).
	NearestQueries int64
	// PerTable breaks the ingest gauges down by live table, name-sorted,
	// for tables carrying at least one spatial index.
	PerTable []TableIngestStats
}

// TableIngestStats is one table's ingest-pressure gauge set.
type TableIngestStats struct {
	// Table is the table name.
	Table string
	// Rows is the table's current row count.
	Rows int64
	// TailRows is the largest per-index count of rows not covered by
	// the base index (appended since its build).
	TailRows int64
	// DeltaRows is the largest per-index count of appended rows the
	// delta has absorbed; it trails TailRows only when a delta
	// saturated.
	DeltaRows int64
	// LiveRows and DeadRows split Rows into the visible set and the
	// tombstoned-awaiting-reclaim set.
	LiveRows int64
	DeadRows int64
	// Backend names the spatial index implementation serving the table
	// ("grid" or "rtree"; the first index's, when several are present).
	Backend string
	// CellOccupancyP99 is the row-weighted 99th-percentile grid-cell
	// population measured at build time (the population of the cell the
	// 99th-percentile row lives in), and SkewRatio its ratio to the mean
	// cell population — the evidence the backend planner chose from (~1
	// for uniform scatter, large under clustering).
	CellOccupancyP99 float64
	SkewRatio        float64
}

// IndexStats returns a point-in-time aggregate over all tables.
func (s *Store) IndexStats() IndexStats {
	// One consistent membership snapshot: a table is in exactly one of
	// the two lists, so nothing is double-counted or missed.
	s.mu.RLock()
	tables := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tables = append(tables, t)
	}
	retired := append([]*tableCounters(nil), s.retired...)
	s.mu.RUnlock()
	var st IndexStats
	for _, t := range tables {
		d := t.snapshot()
		if len(d.indexes) > 0 {
			st.IndexedTables++
		}
		var tailRows, deltaRows int64
		for _, ix := range d.indexes {
			st.Indexes++
			st.IndexedRows += int64(ix.rows())
			st.Cells += int64(ix.cells())
			if tail := int64(d.n - ix.rows()); tail > tailRows {
				tailRows = tail
			}
			if dx := ix.deltaIdx(); dx != nil {
				absorbed := int64(dx.coveredRows())
				if beyond := int64(d.n - ix.rows()); absorbed > beyond {
					// Absorbed rows past this reader's snapshot.
					absorbed = beyond
				}
				if absorbed > deltaRows {
					deltaRows = absorbed
				}
			}
		}
		dead := int64(d.deadCount())
		st.TombstonedRows += dead
		if len(d.indexes) > 0 {
			st.TailRows += tailRows
			st.DeltaRows += deltaRows
			p99, skew := d.indexes[0].occ()
			st.PerTable = append(st.PerTable, TableIngestStats{
				Table: t.name, Rows: int64(d.n), TailRows: tailRows, DeltaRows: deltaRows,
				LiveRows: int64(d.n) - dead, DeadRows: dead,
				Backend: d.indexes[0].backend(), CellOccupancyP99: p99, SkewRatio: skew,
			})
		}
		st.addCounters(t.counters)
	}
	for _, c := range retired {
		st.addCounters(c)
	}
	sort.Slice(st.PerTable, func(a, b int) bool { return st.PerTable[a].Table < st.PerTable[b].Table })
	return st
}

func (st *IndexStats) addCounters(c *tableCounters) {
	st.Probes += c.indexProbes.Load()
	st.Fallbacks += c.scanFallbacks.Load()
	st.FilteredProbes += c.filteredProbes.Load()
	st.ZoneCellsTouched += c.zoneCellsTouched.Load()
	st.ZoneCellsPruned += c.zoneCellsPruned.Load()
	st.ZoneSkips += c.zoneSkips.Load()
	st.BatchedRows += c.batchedRows.Load()
	st.ProbeShards += c.probeShards.Load()
	st.Compactions += c.compactions.Load()
	st.CompactionSeconds += float64(c.compactionNanos.Load()) / 1e9
	st.DeletedRows += c.deletedRows.Load()
	st.ReclaimedRows += c.reclaimedRows.Load()
	st.NearestQueries += c.nearestQueries.Load()
}
