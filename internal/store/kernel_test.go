package store

import (
	"encoding/binary"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/geom"
)

// scalarSelect is the row-at-a-time oracle: the exact comparison form of
// matchPreds/scanRangeScalar applied to one column window.
func scalarSelect(col []float64, lo int32, min, max float64) []int32 {
	var want []int32
	for i, v := range col {
		if !(v < min || v > max) {
			want = append(want, lo+int32(i))
		}
	}
	return want
}

func scalarRectSelect(xs, ys []float64, lo int32, r geom.Rect) []int32 {
	var want []int32
	for i := range xs {
		if inRect(xs[i], ys[i], r) {
			want = append(want, lo+int32(i))
		}
	}
	return want
}

// lace returns n random values in [0, span), with a fraction of NaN and
// ±Inf rows mixed in — the dirty-data shape the scalar semantics are
// defined over.
func lace(rng *rand.Rand, n int, span float64) []float64 {
	col := make([]float64, n)
	for i := range col {
		switch rng.Intn(20) {
		case 0:
			col[i] = math.NaN()
		case 1:
			col[i] = math.Inf(1)
		case 2:
			col[i] = math.Inf(-1)
		default:
			col[i] = rng.Float64() * span
		}
	}
	return col
}

// TestKernelMatchesScalar is the kernel ≡ scalar property test: every
// selection kernel must agree with the row-at-a-time oracle over random
// NaN/±Inf-laced columns at selectivities from 0% to 100%, unaligned
// window starts, and empty batches.
func TestKernelMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// [min, max] windows hitting ~0%, ~1%, ~50%, 100%, and inverted.
	bounds := [][2]float64{
		{2000, 3000},        // 0%
		{500, 510},          // ~1%
		{250, 750},          // ~50%
		{-1e308, 1e308},     // 100% of finite rows
		{700, 300},          // inverted: only NaN rows match
		{math.Inf(-1), 400}, // half-open
	}
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300) // includes empty and sub-kernelMinRows batches
		lo := int32(rng.Intn(97))
		col := lace(rng, n, 1000)
		col2 := lace(rng, n, 1000)
		b := bounds[trial%len(bounds)]
		dst := make([]int32, n+1)

		got := dst[:selRange(dst, col, lo, b[0], b[1])]
		want := scalarSelect(col, lo, b[0], b[1])
		if !equalSel(got, want) {
			t.Fatalf("trial %d: selRange(n=%d, [%g,%g]) = %v, scalar %v", trial, n, b[0], b[1], got, want)
		}

		// Refine the survivors with a second predicate, in place. Refine
		// kernels index the column by absolute id, so pad col2 out to the
		// id space.
		col2Abs := append(make([]float64, lo), col2...)
		n2 := selRefine(got, col2Abs, 200, 600)
		var want2 []int32
		for _, id := range want {
			if v := col2Abs[id]; !(v < 200 || v > 600) {
				want2 = append(want2, id)
			}
		}
		if !equalSel(got[:n2], want2) {
			t.Fatalf("trial %d: selRefine = %v, scalar %v", trial, got[:n2], want2)
		}

		// Fused rect kernels against the shared inRect form. col/col2
		// double as coordinate columns here.
		r := geom.Rect{MinX: 100, MinY: 200, MaxX: 800, MaxY: 900}
		gotR := dst[:selRectRange(dst, col, col2, lo, r)]
		wantR := scalarRectSelect(col, col2, lo, r)
		if !equalSel(gotR, wantR) {
			t.Fatalf("trial %d: selRectRange = %v, scalar %v", trial, gotR, wantR)
		}
	}
}

// TestKernelGatherMatchesScalar covers the id-run seeded kernels
// (selGather / selRectGather / selRectRefine) — the cell-run and
// boundary-ring forms — including runs that index into the middle of a
// larger column.
func TestKernelGatherMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		n := 50 + rng.Intn(300)
		xs := lace(rng, n, 1000)
		ys := lace(rng, n, 1000)
		m := lace(rng, n, 1000)
		// A sparse ascending id run, like a CSR cell run.
		var ids []int32
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				ids = append(ids, int32(i))
			}
		}
		dst := make([]int32, len(ids)+1)
		k := selGather(dst, ids, m, 300, 700)
		var want []int32
		for _, id := range ids {
			if v := m[id]; !(v < 300 || v > 700) {
				want = append(want, id)
			}
		}
		if !equalSel(dst[:k], want) {
			t.Fatalf("trial %d: selGather = %v, scalar %v", trial, dst[:k], want)
		}

		r := geom.Rect{MinX: 50, MinY: 100, MaxX: 900, MaxY: 600}
		k = selRectGather(dst, ids, xs, ys, r)
		want = want[:0]
		for _, id := range ids {
			if inRect(xs[id], ys[id], r) {
				want = append(want, id)
			}
		}
		if !equalSel(dst[:k], want) {
			t.Fatalf("trial %d: selRectGather = %v, scalar %v", trial, dst[:k], want)
		}
		k2 := selRectRefine(dst[:k], xs, ys, geom.Rect{MinX: 100, MinY: 150, MaxX: 700, MaxY: 500})
		var want2 []int32
		for _, id := range want {
			if inRect(xs[id], ys[id], geom.Rect{MinX: 100, MinY: 150, MaxX: 700, MaxY: 500}) {
				want2 = append(want2, id)
			}
		}
		if !equalSel(dst[:k2], want2) {
			t.Fatalf("trial %d: selRectRefine = %v, scalar %v", trial, dst[:k2], want2)
		}
	}
}

// TestScanRangeMatchesScalar pins the batched linear-scan kernel to the
// scalar reference over multi-predicate scans, unaligned [lo, hi)
// windows (including windows that straddle batch boundaries), and empty
// ranges.
func TestScanRangeMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 3*scanBatchRows + 137
	cols := [][]float64{lace(rng, n, 1000), lace(rng, n, 1000), lace(rng, n, 1000)}
	preds := []Pred{
		{Column: "a", Min: 100, Max: 900},
		{Column: "b", Min: 250, Max: 750},
		{Column: "c", Min: 400, Max: 600},
	}
	windows := [][2]int{
		{0, n}, {0, 0}, {5, 5}, {3, 17}, // empty and tiny (scalar path)
		{scanBatchRows - 3, scanBatchRows + 3},
		{117, 2*scanBatchRows + 31},
		{n - 1, n},
	}
	for _, w := range windows {
		for np := 0; np <= len(preds); np++ {
			got := scanRange(cols[:max(np, 1)], preds[:np], w[0], w[1], nil, nil)
			var want []int
			if np == 0 {
				for r := w[0]; r < w[1]; r++ {
					want = append(want, r)
				}
			} else {
				want = scanRangeScalar(cols[:np], preds[:np], w[0], w[1], nil)
			}
			if len(got) != len(want) {
				t.Fatalf("window %v preds=%d: batched %d rows, scalar %d", w, np, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("window %v preds=%d row %d: batched %d, scalar %d", w, np, i, got[i], want[i])
				}
			}
		}
	}
}

// TestScanBatchedMatchesScalarEndToEnd runs whole filtered scans (index
// probe + delta + extras) twice — once through the batch kernels, once
// with forceScalarKernels — over a dirty table and requires identical
// row sets. This is the macro form of the kernel ≡ scalar property.
func TestScanBatchedMatchesScalarEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	const n = 20_000
	xs := lace(rng, n, 1000)
	ys := lace(rng, n, 1000)
	ms := lace(rng, n, 1000)
	cs := lace(rng, n, 1000)
	tb, err := NewTable("t", "x", "y", "m", "c")
	if err != nil {
		t.Fatal(err)
	}
	const split = 15_000
	if err := tb.AppendRows(xs[:split], ys[:split], ms[:split], cs[:split]); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	// The tail lands in the delta, so bucket kernels run too.
	if err := tb.AppendRows(xs[split:], ys[split:], ms[split:], cs[split:]); err != nil {
		t.Fatal(err)
	}
	rects := []geom.Rect{
		{MinX: 100, MinY: 100, MaxX: 900, MaxY: 900},
		{MinX: 480, MinY: 480, MaxX: 520, MaxY: 520},
		{},
	}
	predSets := [][]Pred{
		nil,
		{{Column: "m", Min: 200, Max: 800}},
		{{Column: "m", Min: 200, Max: 800}, {Column: "c", Min: 100, Max: 600}},
	}
	for _, r := range rects {
		for _, preds := range predSets {
			batch, _, err := tb.ScanRectWhere("x", "y", r, preds)
			if err != nil {
				t.Fatal(err)
			}
			forceScalarKernels = true
			scalar, _, err := tb.ScanRectWhere("x", "y", r, preds)
			forceScalarKernels = false
			if err != nil {
				t.Fatal(err)
			}
			bIdx, sIdx := batch.Indices(), scalar.Indices()
			if len(bIdx) != len(sIdx) {
				t.Fatalf("rect %v preds %v: batch %d rows, scalar %d", r, preds, len(bIdx), len(sIdx))
			}
			for i := range bIdx {
				if bIdx[i] != sIdx[i] {
					t.Fatalf("rect %v preds %v: row %d diverges (batch %d, scalar %d)", r, preds, i, bIdx[i], sIdx[i])
				}
			}
		}
	}
}

// TestParallelProbeMatchesSerial forces a multi-worker index probe (the
// box may have one CPU, so GOMAXPROCS is raised explicitly) and checks
// it returns exactly the serial result, with the shard count surfaced
// in ScanStats.
func TestParallelProbeMatchesSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(17))
	// Enough rows that a near-full viewport bounds > parallelScanMinRows.
	const n = 3 * parallelScanMinRows / 2
	tb, err := NewTable("t", "x", "y", "m")
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	ms := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
		ys[i] = rng.Float64() * 1000
		ms[i] = rng.Float64() * 1000
	}
	if err := tb.AppendRows(xs, ys, ms); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	r := geom.Rect{MinX: 10, MinY: 10, MaxX: 990, MaxY: 990}
	preds := []Pred{{Column: "m", Min: 100, Max: 900}}
	par, pst, err := tb.ScanRectWhere("x", "y", r, preds)
	if err != nil {
		t.Fatal(err)
	}
	if pst.ProbeShards <= 1 {
		t.Fatalf("ProbeShards = %d, want > 1 under GOMAXPROCS=4 with %d bounded rows", pst.ProbeShards, n)
	}
	runtime.GOMAXPROCS(1)
	ser, sst, err := tb.ScanRectWhere("x", "y", r, preds)
	if err != nil {
		t.Fatal(err)
	}
	if sst.ProbeShards != 1 {
		t.Fatalf("serial ProbeShards = %d, want 1", sst.ProbeShards)
	}
	pIdx, sIdx := par.Indices(), ser.Indices()
	if len(pIdx) != len(sIdx) {
		t.Fatalf("parallel probe %d rows, serial %d", len(pIdx), len(sIdx))
	}
	for i := range pIdx {
		if pIdx[i] != sIdx[i] {
			t.Fatalf("row %d: parallel %d, serial %d", i, pIdx[i], sIdx[i])
		}
	}
	if pst.RowsExamined != sst.RowsExamined || pst.CellsPruned != sst.CellsPruned || pst.BatchedRows != sst.BatchedRows {
		t.Fatalf("shard-merged stats diverge from serial: parallel %+v, serial %+v", pst, sst)
	}
}

func equalSel(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzKernelEquivalence drives the selection kernels with arbitrary
// bit patterns — every float64, including NaN payloads, ±Inf,
// denormals — and cross-checks them against the scalar oracle. The
// checked-in corpus (testdata/fuzz) makes the interesting shapes part
// of the repo's tier-1 test run.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add([]byte{}, math.NaN(), 0.0, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, 0.25, 0.75, uint8(3))
	f.Add(binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.NaN())), -1.0, 1.0, uint8(255))
	f.Add(binary.LittleEndian.AppendUint64(
		binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.Inf(1))),
		math.Float64bits(math.Inf(-1))), math.Inf(-1), math.Inf(1), uint8(16))
	f.Fuzz(func(t *testing.T, raw []byte, min, max float64, loByte uint8) {
		n := len(raw) / 8
		if n > 1<<12 {
			n = 1 << 12
		}
		col := make([]float64, n)
		for i := range col {
			col[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
		lo := int32(loByte)
		dst := make([]int32, n+1)
		got := dst[:selRange(dst, col, lo, min, max)]
		want := scalarSelect(col, lo, min, max)
		if !equalSel(got, want) {
			t.Fatalf("selRange(%v, [%g,%g]) = %v, scalar %v", col, min, max, got, want)
		}
		// The same column as both coordinates exercises the fused kernel
		// with correlated NaN patterns.
		r := geom.Rect{MinX: min, MinY: min, MaxX: max, MaxY: max}
		gotR := dst[:selRectRange(dst, col, col, lo, r)]
		wantR := scalarRectSelect(col, col, lo, r)
		if !equalSel(gotR, wantR) {
			t.Fatalf("selRectRange(%v, %v) = %v, scalar %v", col, r, gotR, wantR)
		}
		// Refine the full id set through the gather kernel.
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(i)
		}
		k := selGather(dst, ids, col, min, max)
		var wantG []int32
		for _, id := range ids {
			if v := col[id]; !(v < min || v > max) {
				wantG = append(wantG, id)
			}
		}
		if !equalSel(dst[:k], wantG) {
			t.Fatalf("selGather = %v, scalar %v", dst[:k], wantG)
		}
	})
}

// TestKernelZeroAlloc is the allocation-freedom guard the CI check
// leans on: every kernel inner loop must run without allocating, given
// caller-owned buffers. A kernel that starts allocating shows up here
// as a hard failure, not as a silent throughput cliff.
func TestKernelZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := scanBatchRows
	xs := lace(rng, n, 1000)
	ys := lace(rng, n, 1000)
	dst := make([]int32, n)
	ids := make([]int32, n/2)
	for i := range ids {
		ids[i] = int32(i * 2)
	}
	out := make([]int, 0, n)
	pts := make([]geom.Point, n/2)
	vals := make([]float64, n/2)
	outIdx := make([]int, n/2)
	for i := range outIdx {
		outIdx[i] = i * 2
	}
	r := geom.Rect{MinX: 100, MinY: 100, MaxX: 900, MaxY: 900}
	cases := map[string]func(){
		"selRange":      func() { selRange(dst, xs, 0, 200, 800) },
		"selRectRange":  func() { selRectRange(dst, xs, ys, 0, r) },
		"selGather":     func() { selGather(dst, ids, xs, 200, 800) },
		"selRectGather": func() { selRectGather(dst, ids, xs, ys, r) },
		"selRefine": func() {
			k := selGather(dst, ids, xs, -1e308, 1e308)
			selRefine(dst[:k], ys, 200, 800)
		},
		"selRectRefine": func() {
			k := selGather(dst, ids, xs, -1e308, 1e308)
			selRectRefine(dst[:k], xs, ys, r)
		},
		"appendSel": func() { appendSel(out, ids) },
		"gatherPointsDense": func() {
			gatherPointsDense(pts, xs[:len(pts)], ys[:len(pts)])
		},
		"gatherPoints": func() { gatherPoints(pts, outIdx, xs, ys) },
		"gatherVals":   func() { gatherVals(vals, outIdx, xs) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(50, fn); allocs != 0 {
			t.Errorf("%s allocated %.0f objects per run, want 0", name, allocs)
		}
	}
}

// BenchmarkKernelSelect isolates the kernel-vs-scalar gap on the
// residual-heavy shape (3 predicates, ~50% selectivity each, data the
// zone maps cannot settle): the microbenchmark behind the macro numbers
// in BenchmarkScanRectFiltered/residual.
func BenchmarkKernelSelect(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	n := 1 << 16
	a := make([]float64, n)
	c := make([]float64, n)
	d := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64() * 1000
		c[i] = rng.Float64() * 1000
		d[i] = rng.Float64() * 1000
	}
	cols := [][]float64{a, c, d}
	preds := []Pred{
		{Column: "a", Min: 200, Max: 700},
		{Column: "c", Min: 100, Max: 600},
		{Column: "d", Min: 300, Max: 800},
	}
	b.Run("batch", func(b *testing.B) {
		out := make([]int, 0, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = scanRange(cols, preds, 0, n, out[:0], nil)
		}
		if len(out) == 0 {
			b.Fatal("no rows selected")
		}
	})
	b.Run("scalar", func(b *testing.B) {
		out := make([]int, 0, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = scanRangeScalar(cols, preds, 0, n, out[:0])
		}
		if len(out) == 0 {
			b.Fatal("no rows selected")
		}
	})
}
