//go:build race

package store

import "time"

// Race-detector builds run the kernels an order of magnitude slower;
// the poll cadence is the same, so the bound scales rather than the
// checks thinning out.
const cancelLatencyBound = 500 * time.Millisecond
