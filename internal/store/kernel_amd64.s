// AVX2 bodies for the selection kernels (see kernel.go for semantics,
// kernel_amd64.go for dispatch). Both kernels process groups of four
// float64 lanes: two VCMPPD $0x15 (NLT, unordered-quiet) compares —
// !(v < min) and !(max < v), each true for NaN, exactly the scalar
// comparison form — are ANDed into a lane mask, and survivors' int32
// ids are compacted with a 16-entry PSHUFB shuffle table indexed by
// VMOVMSKPD. Stores write a full 16-byte group at dst[k] (lanes past
// the survivors are overwritten by later groups or left past the
// returned k), which is why callers guarantee len(dst) >= len(col) and
// the wrappers route the <4-lane tail through the scalar loop.

#include "textflag.h"

DATA ·selIota32+0x00(SB)/8, $0x0000000100000000 // {0, 1}
DATA ·selIota32+0x08(SB)/8, $0x0000000300000002 // {2, 3}
GLOBL ·selIota32(SB), RODATA|NOPTR, $16

DATA ·selFour32+0x00(SB)/8, $0x0000000400000004
DATA ·selFour32+0x08(SB)/8, $0x0000000400000004
GLOBL ·selFour32(SB), RODATA|NOPTR, $16

// selPermLUT[mask] is the PSHUFB control compacting the set lanes'
// int32 ids to the front; 0x80 bytes zero the rest.
DATA ·selPermLUT+0x00(SB)/8, $0x8080808080808080
DATA ·selPermLUT+0x08(SB)/8, $0x8080808080808080
DATA ·selPermLUT+0x10(SB)/8, $0x8080808003020100
DATA ·selPermLUT+0x18(SB)/8, $0x8080808080808080
DATA ·selPermLUT+0x20(SB)/8, $0x8080808007060504
DATA ·selPermLUT+0x28(SB)/8, $0x8080808080808080
DATA ·selPermLUT+0x30(SB)/8, $0x0706050403020100
DATA ·selPermLUT+0x38(SB)/8, $0x8080808080808080
DATA ·selPermLUT+0x40(SB)/8, $0x808080800b0a0908
DATA ·selPermLUT+0x48(SB)/8, $0x8080808080808080
DATA ·selPermLUT+0x50(SB)/8, $0x0b0a090803020100
DATA ·selPermLUT+0x58(SB)/8, $0x8080808080808080
DATA ·selPermLUT+0x60(SB)/8, $0x0b0a090807060504
DATA ·selPermLUT+0x68(SB)/8, $0x8080808080808080
DATA ·selPermLUT+0x70(SB)/8, $0x0706050403020100
DATA ·selPermLUT+0x78(SB)/8, $0x808080800b0a0908
DATA ·selPermLUT+0x80(SB)/8, $0x808080800f0e0d0c
DATA ·selPermLUT+0x88(SB)/8, $0x8080808080808080
DATA ·selPermLUT+0x90(SB)/8, $0x0f0e0d0c03020100
DATA ·selPermLUT+0x98(SB)/8, $0x8080808080808080
DATA ·selPermLUT+0xa0(SB)/8, $0x0f0e0d0c07060504
DATA ·selPermLUT+0xa8(SB)/8, $0x8080808080808080
DATA ·selPermLUT+0xb0(SB)/8, $0x0706050403020100
DATA ·selPermLUT+0xb8(SB)/8, $0x808080800f0e0d0c
DATA ·selPermLUT+0xc0(SB)/8, $0x0f0e0d0c0b0a0908
DATA ·selPermLUT+0xc8(SB)/8, $0x8080808080808080
DATA ·selPermLUT+0xd0(SB)/8, $0x0b0a090803020100
DATA ·selPermLUT+0xd8(SB)/8, $0x808080800f0e0d0c
DATA ·selPermLUT+0xe0(SB)/8, $0x0b0a090807060504
DATA ·selPermLUT+0xe8(SB)/8, $0x808080800f0e0d0c
DATA ·selPermLUT+0xf0(SB)/8, $0x0706050403020100
DATA ·selPermLUT+0xf8(SB)/8, $0x0f0e0d0c0b0a0908
GLOBL ·selPermLUT(SB), RODATA|NOPTR, $256

// func selRangeAsm(dst []int32, col []float64, lo int32, min, max float64) int
// len(col) is a multiple of 4; len(dst) >= len(col).
TEXT ·selRangeAsm(SB), NOSPLIT, $0-80
	MOVQ dst_base+0(FP), DI
	MOVQ col_base+24(FP), SI
	MOVQ col_len+32(FP), CX
	VBROADCASTSD min+56(FP), Y0
	VBROADCASTSD max+64(FP), Y1
	MOVL lo+48(FP), AX
	MOVD AX, X2
	VPBROADCASTD X2, X2
	VPADDD ·selIota32(SB), X2, X2 // ids = {lo..lo+3}
	VMOVDQU ·selFour32(SB), X3
	LEAQ ·selPermLUT(SB), R12
	XORQ R8, R8                   // k: survivors written
	XORQ R9, R9                   // i: lanes consumed
	JMP  tail

loop:
	VMOVUPD (SI)(R9*8), Y4
	VCMPPD  $0x15, Y0, Y4, Y5 // !(v < min), NaN -> true
	VCMPPD  $0x15, Y4, Y1, Y6 // !(max < v), NaN -> true
	VANDPD  Y6, Y5, Y5
	VMOVMSKPD Y5, R10
	MOVQ    R10, R11
	SHLQ    $4, R11
	VMOVDQU (R12)(R11*1), X7
	VPSHUFB X7, X2, X8
	VMOVDQU X8, (DI)(R8*4)
	POPCNTQ R10, R10
	ADDQ    R10, R8
	VPADDD  X3, X2, X2
	ADDQ    $4, R9

tail:
	CMPQ R9, CX
	JLT  loop
	MOVQ R8, ret+72(FP)
	VZEROUPPER
	RET

// func selGatherAsm(dst []int32, ids []int32, col []float64, min, max float64) int
// len(ids) is a multiple of 4; len(dst) >= len(ids); every id indexes col.
TEXT ·selGatherAsm(SB), NOSPLIT, $0-96
	MOVQ dst_base+0(FP), DI
	MOVQ ids_base+24(FP), BX
	MOVQ ids_len+32(FP), CX
	MOVQ col_base+48(FP), SI
	VBROADCASTSD min+72(FP), Y0
	VBROADCASTSD max+80(FP), Y1
	LEAQ ·selPermLUT(SB), R12
	XORQ R8, R8 // k
	XORQ R9, R9 // i
	JMP  gtail

gloop:
	VMOVDQU    (BX)(R9*4), X2  // 4 int32 ids
	VPMOVSXDQ  X2, Y4          // widen to int64 lanes
	VPCMPEQD   Y5, Y5, Y5      // gather mask: all lanes
	VXORPD     Y6, Y6, Y6
	VGATHERQPD Y5, (SI)(Y4*8), Y6
	VCMPPD     $0x15, Y0, Y6, Y5
	VCMPPD     $0x15, Y6, Y1, Y7
	VANDPD     Y7, Y5, Y5
	VMOVMSKPD  Y5, R10
	MOVQ       R10, R11
	SHLQ       $4, R11
	VMOVDQU    (R12)(R11*1), X7
	VPSHUFB    X7, X2, X8
	VMOVDQU    X8, (DI)(R8*4)
	POPCNTQ    R10, R10
	ADDQ       R10, R8
	ADDQ       $4, R9

gtail:
	CMPQ R9, CX
	JLT  gloop
	MOVQ R8, ret+88(FP)
	VZEROUPPER
	RET

// func selRectGatherAsm(dst []int32, ids []int32, xs, ys []float64, r geom.Rect) int
// len(ids) is a multiple of 4; len(dst) >= len(ids); every id indexes
// xs and ys. Safe when dst aliases ids (in-place refine): the 16-byte
// store at dst[k] only covers ids already consumed, since k <= i.
TEXT ·selRectGatherAsm(SB), NOSPLIT, $0-136
	MOVQ dst_base+0(FP), DI
	MOVQ ids_base+24(FP), BX
	MOVQ ids_len+32(FP), CX
	MOVQ xs_base+48(FP), SI
	MOVQ ys_base+72(FP), DX
	VBROADCASTSD r_MinX+96(FP), Y0
	VBROADCASTSD r_MinY+104(FP), Y1
	VBROADCASTSD r_MaxX+112(FP), Y2
	VBROADCASTSD r_MaxY+120(FP), Y3
	LEAQ ·selPermLUT(SB), R12
	XORQ R8, R8 // k
	XORQ R9, R9 // i
	JMP  rtail

rloop:
	VMOVDQU    (BX)(R9*4), X8  // 4 int32 ids
	VPMOVSXDQ  X8, Y9
	VPCMPEQD   Y10, Y10, Y10
	VXORPD     Y11, Y11, Y11
	VGATHERQPD Y10, (SI)(Y9*8), Y11 // x values
	VPCMPEQD   Y10, Y10, Y10
	VXORPD     Y12, Y12, Y12
	VGATHERQPD Y10, (DX)(Y9*8), Y12 // y values
	VCMPPD     $0x15, Y0, Y11, Y13  // !(x < minX)
	VCMPPD     $0x15, Y11, Y2, Y10  // !(maxX < x)
	VANDPD     Y10, Y13, Y13
	VCMPPD     $0x15, Y1, Y12, Y10  // !(y < minY)
	VANDPD     Y10, Y13, Y13
	VCMPPD     $0x15, Y12, Y3, Y10  // !(maxY < y)
	VANDPD     Y10, Y13, Y13
	VMOVMSKPD  Y13, R10
	MOVQ       R10, R11
	SHLQ       $4, R11
	VMOVDQU    (R12)(R11*1), X7
	VPSHUFB    X7, X8, X8
	VMOVDQU    X8, (DI)(R8*4)
	POPCNTQ    R10, R10
	ADDQ       R10, R8
	ADDQ       $4, R9

rtail:
	CMPQ R9, CX
	JLT  rloop
	MOVQ R8, ret+128(FP)
	VZEROUPPER
	RET

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
