//go:build amd64

package store

import "repro/internal/geom"

// Assembly bodies in kernel_amd64.s. Both require len to be a multiple
// of four and len(dst) >= len(input): each 4-lane group writes a full
// 16-byte store at dst[k], so the destination must absorb the overstore
// even when fewer than four lanes survive.

func selRangeAsm(dst []int32, col []float64, lo int32, min, max float64) int

func selGatherAsm(dst []int32, ids []int32, col []float64, min, max float64) int

func selRectGatherAsm(dst []int32, ids []int32, xs, ys []float64, r geom.Rect) int

func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbvAsm() (eax, edx uint32)

// useSelAsm gates the AVX2 kernel bodies. The selection kernels need
// AVX2 (VPSHUFB on ids, VGATHERQPD) plus POPCNT, and the OS must have
// enabled YMM state saving (OSXSAVE + XCR0 bits 1|2).
var useSelAsm = detectAVX2()

func detectAVX2() bool {
	_, _, ecx, _ := cpuidAsm(1, 0)
	const osxsave, avx, popcnt = 1 << 27, 1 << 28, 1 << 23
	if ecx&osxsave == 0 || ecx&avx == 0 || ecx&popcnt == 0 {
		return false
	}
	if eax, _ := xgetbvAsm(); eax&6 != 6 {
		return false
	}
	_, ebx, _, _ := cpuidAsm(7, 0)
	const avx2 = 1 << 5
	return ebx&avx2 != 0
}
