package store

import (
	"math"
	"slices"
	"sort"

	"repro/internal/geom"
)

// treeIndex is the packed STR R-tree backend: an immutable bulk-loaded
// R-tree (Sort-Tile-Recursive, Leutenegger 1997) over one (x, y) column
// pair, filling the same spatialIndex contract as the CSR grid. Where
// the grid carves space into uniform cells, the tree carves the DATA
// into equal-population leaves whose bounding rectangles adapt to the
// distribution — under heavy skew a viewport touches O(result/leafSize)
// leaves instead of sweeping the handful of giant grid cells the mass
// collapsed into.
//
// Layout mirrors the grid's CSR idiom: rowID packs every finite row in
// leaf order (ascending within each leaf, so the selection-vector
// kernels see the same shape as a grid cell run), leafOff delimits leaf
// runs, and per-leaf zone maps prune or bulk-pass residual predicates
// exactly like per-cell ones. On top of that the packed node hierarchy
// adds what the grid cannot offer: per-NODE MBRs and zone maps, so a
// whole subtree — a contiguous rowID run, thanks to the leaf-ordered
// packing — can be pruned or bulk-emitted in one step, and best-first
// kNN descent (nearest.go) has mindist bounds to order by.
//
// The embedded gridGeom is NOT probe geometry — it exists so the delta
// index (delta.go) buckets appended rows identically under either
// backend, keeping ingest behavior backend-independent.
type treeIndex struct {
	gridGeom
	// rowID packs the finite rows in leaf order; leaf l's run is
	// rowID[leafOff[l]:leafOff[l+1]], ascending within the run.
	rowID   []int32
	leafOff []int32
	leafMBR []geom.Rect
	// nodes is the packed hierarchy, bottom-up with the root LAST; a
	// node's children (lower nodes, or leaves at level 0) sit at
	// strictly lower indices, so iterative descent terminates.
	nodes []treeNode
	// extra holds rows (ascending) with a non-finite coordinate,
	// filtered per probe exactly like the grid's extras.
	extra []int32

	// occP99 and occSkew are the build-time grid-occupancy statistics
	// (measured on the delta grid) the backend planner consulted.
	occP99, occSkew float64

	// Per-(column, leaf) zone maps, flat as [col·numLeaves + leaf], with
	// the grid's exact semantics (znan marks a NaN present — unprunable
	// but still bulk-passable).
	zmin, zmax []float64
	znan       []bool
	// Per-(column, node) zone maps, flat as [col·numNodes + node],
	// aggregated bottom-up from the leaf maps: they let one consult
	// settle an entire subtree.
	nzmin, nzmax []float64
	nznan        []bool

	delta *deltaIndex
}

// treeNode is one packed internal node. Children are nodes[lo:hi], or
// leaves [lo,hi) when leafKids. llo/lhi give the contiguous leaf span
// the subtree covers: its rows are exactly
// rowID[leafOff[llo]:leafOff[lhi]] — one run, bulk-emittable.
type treeNode struct {
	mbr      geom.Rect
	lo, hi   int32
	llo, lhi int32
	leafKids bool
}

const (
	// treeLeafSize is the tree's leaf capacity: 64 rows matches the
	// grid's per-cell target, so zone maps have comparable granularity
	// under either backend and a leaf run clears kernelMinRows.
	treeLeafSize = 64
	// treeFanout is the packed internal-node fanout.
	treeFanout = 16
)

// buildTreeIndex builds the STR R-tree backend over the n-row (xi, yi)
// pair of cols, with zone maps over every column. Nil conditions match
// buildRectIndex: too many rows for int32 ids, or nothing finite to
// pack. n == 0 yields a valid empty index so later appends take the
// tail path.
func buildTreeIndex(xi, yi int, cols [][]float64, n int) *treeIndex {
	if n > math.MaxInt32 {
		return nil
	}
	xs, ys := cols[xi], cols[yi]
	ix := &treeIndex{gridGeom: gridGeom{xi: xi, yi: yi, n: n, bounds: geom.EmptyRect()}}
	ix.delta = newDeltaIndex(&ix.gridGeom, len(cols))
	if n == 0 {
		return ix
	}
	for i := 0; i < n; i++ {
		x, y := xs[i], ys[i]
		if !isFinite(x) || !isFinite(y) {
			ix.extra = append(ix.extra, int32(i))
			continue
		}
		ix.bounds = ix.bounds.UnionPoint(geom.Pt(x, y))
	}
	if len(ix.extra) == n || ix.bounds.IsEmpty() {
		return nil
	}
	// Delta grid geometry + occupancy statistics: the same uniform
	// binning the grid backend would use, so appended rows bucket
	// identically and the planner's skew evidence is backend-neutral.
	ix.sizeGrid(n)
	binned := n - len(ix.extra)
	counts := make([]int32, ix.nx*ix.ny)
	for i := 0; i < n; i++ {
		x, y := xs[i], ys[i]
		if !isFinite(x) || !isFinite(y) {
			continue
		}
		counts[ix.cellIndex(x, y)]++
	}
	ix.occP99, ix.occSkew = occFromCounts(counts, binned)

	// STR packing: sort finite rows by x (ties y, then id for
	// determinism), slice into ceil(sqrt(numLeaves)) vertical strips of
	// whole leaves, sort each strip by y (ties x, then id); chunking the
	// result into runs of treeLeafSize yields spatially tight leaves for
	// any distribution.
	ord := make([]int32, 0, binned)
	for i := 0; i < n; i++ {
		if isFinite(xs[i]) && isFinite(ys[i]) {
			ord = append(ord, int32(i))
		}
	}
	sort.Slice(ord, func(a, b int) bool {
		ia, ib := ord[a], ord[b]
		if xs[ia] != xs[ib] {
			return xs[ia] < xs[ib]
		}
		if ys[ia] != ys[ib] {
			return ys[ia] < ys[ib]
		}
		return ia < ib
	})
	numLeaves := (binned + treeLeafSize - 1) / treeLeafSize
	strips := int(math.Ceil(math.Sqrt(float64(numLeaves))))
	if strips < 1 {
		strips = 1
	}
	stripRows := ((numLeaves + strips - 1) / strips) * treeLeafSize
	for lo := 0; lo < binned; lo += stripRows {
		hi := min(lo+stripRows, binned)
		strip := ord[lo:hi]
		sort.Slice(strip, func(a, b int) bool {
			ia, ib := strip[a], strip[b]
			if ys[ia] != ys[ib] {
				return ys[ia] < ys[ib]
			}
			if xs[ia] != xs[ib] {
				return xs[ia] < xs[ib]
			}
			return ia < ib
		})
	}
	// Chunk into leaves. Within a leaf the run is re-sorted ascending by
	// row id — leaf membership is what carries the spatial locality, and
	// ascending runs give the kernels (and the snapshot validator) the
	// same shape as grid cell runs.
	ix.rowID = ord
	ix.leafOff = make([]int32, numLeaves+1)
	ix.leafMBR = make([]geom.Rect, numLeaves)
	for l := 0; l < numLeaves; l++ {
		lo := l * treeLeafSize
		hi := min(lo+treeLeafSize, binned)
		ix.leafOff[l] = int32(lo)
		run := ix.rowID[lo:hi]
		slices.Sort(run)
		mbr := geom.EmptyRect()
		for _, id := range run {
			mbr = mbr.UnionPoint(geom.Pt(xs[id], ys[id]))
		}
		ix.leafMBR[l] = mbr
	}
	ix.leafOff[numLeaves] = int32(binned)

	// Per-leaf zone maps over every column of the generation.
	ncols := len(cols)
	ix.zmin = make([]float64, ncols*numLeaves)
	ix.zmax = make([]float64, ncols*numLeaves)
	ix.znan = make([]bool, ncols*numLeaves)
	for zi := range ix.zmin {
		ix.zmin[zi] = math.Inf(1)
		ix.zmax[zi] = math.Inf(-1)
	}
	for ci, col := range cols {
		zbase := ci * numLeaves
		for l := 0; l < numLeaves; l++ {
			zi := zbase + l
			for _, id := range ix.rowID[ix.leafOff[l]:ix.leafOff[l+1]] {
				v := col[id]
				if math.IsNaN(v) {
					ix.znan[zi] = true
					continue
				}
				if v < ix.zmin[zi] {
					ix.zmin[zi] = v
				}
				if v > ix.zmax[zi] {
					ix.zmax[zi] = v
				}
			}
		}
	}

	ix.packNodes(ncols)
	return ix
}

// packNodes builds the internal hierarchy bottom-up — level 0 groups
// runs of treeFanout leaves, each later level groups the previous
// level's nodes, until one root remains (stored last) — and aggregates
// the per-node zone maps from the level below in the same passes.
func (ix *treeIndex) packNodes(ncols int) {
	numLeaves := len(ix.leafMBR)
	for l := 0; l < numLeaves; l += treeFanout {
		hi := min(l+treeFanout, numLeaves)
		mbr := geom.EmptyRect()
		for _, m := range ix.leafMBR[l:hi] {
			mbr = mbr.Union(m)
		}
		ix.nodes = append(ix.nodes, treeNode{
			mbr: mbr, lo: int32(l), hi: int32(hi),
			llo: int32(l), lhi: int32(hi), leafKids: true,
		})
	}
	levelLo := 0
	for len(ix.nodes)-levelLo > 1 {
		levelHi := len(ix.nodes)
		for l := levelLo; l < levelHi; l += treeFanout {
			hi := min(l+treeFanout, levelHi)
			mbr := geom.EmptyRect()
			for _, c := range ix.nodes[l:hi] {
				mbr = mbr.Union(c.mbr)
			}
			ix.nodes = append(ix.nodes, treeNode{
				mbr: mbr, lo: int32(l), hi: int32(hi),
				llo: ix.nodes[l].llo, lhi: ix.nodes[hi-1].lhi,
			})
		}
		levelLo = levelHi
	}
	numNodes := len(ix.nodes)
	ix.nzmin = make([]float64, ncols*numNodes)
	ix.nzmax = make([]float64, ncols*numNodes)
	ix.nznan = make([]bool, ncols*numNodes)
	for ci := 0; ci < ncols; ci++ {
		nbase := ci * numNodes
		lbase := ci * numLeaves
		for ni := 0; ni < numNodes; ni++ {
			nd := &ix.nodes[ni]
			lo, hi := int(nd.lo), int(nd.hi)
			zmin, zmax, znan := math.Inf(1), math.Inf(-1), false
			for c := lo; c < hi; c++ {
				var cmin, cmax float64
				var cnan bool
				if nd.leafKids {
					cmin, cmax, cnan = ix.zmin[lbase+c], ix.zmax[lbase+c], ix.znan[lbase+c]
				} else {
					cmin, cmax, cnan = ix.nzmin[nbase+c], ix.nzmax[nbase+c], ix.nznan[nbase+c]
				}
				if cmin < zmin {
					zmin = cmin
				}
				if cmax > zmax {
					zmax = cmax
				}
				znan = znan || cnan
			}
			ix.nzmin[nbase+ni] = zmin
			ix.nzmax[nbase+ni] = zmax
			ix.nznan[nbase+ni] = znan
		}
	}
}

// ---- spatialIndex contract ----

func (ix *treeIndex) extraCount() int         { return len(ix.extra) }
func (ix *treeIndex) backend() string         { return BackendRTree }
func (ix *treeIndex) occ() (float64, float64) { return ix.occP99, ix.occSkew }
func (ix *treeIndex) deltaIdx() *deltaIndex   { return ix.delta }

// cells reports the pruning granularity — the leaf count — for the
// /metrics cell gauge.
func (ix *treeIndex) cells() int { return len(ix.leafMBR) }

// coversAll matches the grid's fast-path contract: every indexed row is
// trivially inside r. Leaf MBRs are exact bounds of their member
// points, so containment of the root extent is sufficient.
func (ix *treeIndex) coversAll(r geom.Rect) bool {
	return ix.n > 0 && len(ix.extra) == 0 && r.ContainsRect(ix.bounds)
}

// collect returns the sorted ids of indexed rows inside r that satisfy
// every residual predicate — rectIndex.collect's exact contract, served
// by best-effort subtree pruning instead of a cell sweep. Because leaf
// and node MBRs are exact (computed from the member coordinates, unlike
// the grid's nominal cell rectangles), r.ContainsRect(mbr) directly
// proves every member row passes the rectangle test — no strict-interior
// margin is needed.
func (ix *treeIndex) collect(cols [][]float64, r geom.Rect, preds []Pred, pi []int, skip []bool, tally *zoneTally, st *ScanStats, cn *canceler) []int {
	if ix.n == 0 {
		return nil
	}
	var ids []int
	if r.Intersects(ix.bounds) {
		ids = ix.collectTree(cols, r, preds, pi, skip, tally, st, cn)
	}
	xs, ys := cols[ix.xi], cols[ix.yi]
	for _, id := range ix.extra {
		st.RowsExamined++
		if inRect(xs[id], ys[id], r) && matchPreds(cols, pi, preds, int(id)) {
			ids = append(ids, int(id))
		}
	}
	slices.Sort(ids)
	return ids
}

// collectTree walks the packed hierarchy iteratively (children sit at
// strictly lower indices than their parent). At every node the MBR and
// the node zone maps can prune the whole subtree or — when r contains
// the MBR and every predicate zone-settles as all-pass — bulk-emit its
// entire contiguous rowID run. Leaves that survive are processed
// exactly like grid cells: zone prune / all-pass per leaf, then the
// selection-vector kernels over the run.
func (ix *treeIndex) collectTree(cols [][]float64, r geom.Rect, preds []Pred, pi []int, skip []bool, tally *zoneTally, st *ScanStats, cn *canceler) []int {
	st.ProbeShards++
	xs, ys := cols[ix.xi], cols[ix.yi]
	numLeaves := len(ix.leafMBR)
	numNodes := len(ix.nodes)
	var ids []int
	residual := make([]Pred, 0, len(preds))
	residualCols := make([]int, 0, len(preds))
	var sel []int32
	stack := make([]int32, 0, 64)
	stack = append(stack, int32(numNodes-1))
	for len(stack) > 0 {
		// One counter-gated poll per popped node; a canceled descent
		// returns partial ids the entry point will discard.
		if cn.stop() {
			return ids
		}
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &ix.nodes[ni]
		if !nd.mbr.Intersects(r) {
			continue
		}
		// Node-level zone consult: one lookup can prune or settle the
		// whole subtree's run.
		pruned := false
		settled := true
		for k := range preds {
			if skip != nil && skip[k] {
				settled = false
				continue
			}
			p := preds[k]
			zi := pi[k]*numNodes + int(ni)
			tally.eval[k]++
			if !ix.nznan[zi] && (ix.nzmax[zi] < p.Min || ix.nzmin[zi] > p.Max) {
				tally.decisive[k]++
				pruned = true
				break
			}
			if ix.nzmin[zi] >= p.Min && ix.nzmax[zi] <= p.Max {
				tally.decisive[k]++
			} else {
				settled = false
			}
		}
		if pruned {
			// Touched-then-pruned, mirroring the grid's accounting where
			// every candidate cell counts as touched.
			st.CellsTouched += int(nd.lhi - nd.llo)
			st.CellsPruned += int(nd.lhi - nd.llo)
			continue
		}
		if settled && r.ContainsRect(nd.mbr) {
			// Whole subtree passes: its rows are one contiguous run.
			lo, hi := ix.leafOff[nd.llo], ix.leafOff[nd.lhi]
			st.CellsTouched += int(nd.lhi - nd.llo)
			st.CellsBulk += int(nd.lhi - nd.llo)
			ids = appendSel(ids, ix.rowID[lo:hi])
			continue
		}
		if !nd.leafKids {
			for c := nd.lo; c < nd.hi; c++ {
				stack = append(stack, c)
			}
			continue
		}
		for c := nd.lo; c < nd.hi; c++ {
			mbr := ix.leafMBR[c]
			if !mbr.Intersects(r) {
				continue
			}
			st.CellsTouched++
			pruned := false
			residual = residual[:0]
			residualCols = residualCols[:0]
			for k := range preds {
				p := preds[k]
				if skip != nil && skip[k] {
					residual = append(residual, p)
					residualCols = append(residualCols, pi[k])
					continue
				}
				zi := pi[k]*numLeaves + int(c)
				tally.eval[k]++
				if !ix.znan[zi] && (ix.zmax[zi] < p.Min || ix.zmin[zi] > p.Max) {
					tally.decisive[k]++
					pruned = true
					break
				}
				if !(ix.zmin[zi] >= p.Min && ix.zmax[zi] <= p.Max) {
					residual = append(residual, p)
					residualCols = append(residualCols, pi[k])
				} else {
					tally.decisive[k]++
				}
			}
			if pruned {
				st.CellsPruned++
				continue
			}
			needRect := !r.ContainsRect(mbr)
			run := ix.rowID[ix.leafOff[c]:ix.leafOff[c+1]]
			if !needRect && len(residual) == 0 {
				st.CellsBulk++
				ids = appendSel(ids, run)
				continue
			}
			if len(run) >= kernelMinRows && !forceScalarKernels {
				if cap(sel) < len(run) {
					sel = make([]int32, len(run))
				}
				s := sel[:len(run)]
				var k int
				ri := 0
				if needRect {
					k = selRectGather(s, run, xs, ys, r)
				} else {
					k = selGather(s, run, cols[residualCols[0]], residual[0].Min, residual[0].Max)
					ri = 1
				}
				for ; ri < len(residual) && k > 0; ri++ {
					k = selRefine(s[:k], cols[residualCols[ri]], residual[ri].Min, residual[ri].Max)
				}
				st.RowsExamined += len(run)
				st.BatchedRows += len(run)
				ids = appendSel(ids, s[:k])
				continue
			}
			if len(residual) == 1 {
				rc := cols[residualCols[0]]
				pmin, pmax := residual[0].Min, residual[0].Max
				for _, id := range run {
					st.RowsExamined++
					if needRect && !inRect(xs[id], ys[id], r) {
						continue
					}
					if v := rc[id]; v < pmin || v > pmax {
						continue
					}
					ids = append(ids, int(id))
				}
				continue
			}
			for _, id := range run {
				st.RowsExamined++
				if needRect && !inRect(xs[id], ys[id], r) {
					continue
				}
				if matchPreds(cols, residualCols, residual, int(id)) {
					ids = append(ids, int(id))
				}
			}
		}
	}
	return ids
}
