package store

// The retention layer: tombstone deletes and per-table TTL policies.
//
// A delete never rewrites storage on the serving path. It scans for the
// matching rows against one snapshot, then publishes a fresh generation
// whose tombstone bitmap has those rows set — columns, row count, and
// indexes all shared with the previous generation. Every read subtracts
// the snapshot's tombstones (rowset.go, kernel.go), so a delete is
// visible atomically with the generation publish. The physical work —
// dropping dead rows, rewriting columns, CSR grids, and zone maps —
// happens later, in Compact (delta.go), off the read path.

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
)

// timeNow is the retention clock, a variable so TTL tests can pin it.
var timeNow = time.Now

// deleteMaxRetries bounds how often a delete retries after losing a
// race with a content replacement (BulkLoad, snapshot restore, or a
// reclaiming compaction) between its scan and its publish.
const deleteMaxRetries = 16

// DeleteRect tombstones every row whose (xCol, yCol) projection lies
// inside r, following ScanRectWhere's rectangle conventions — the zero
// Rect means "no restriction" and therefore deletes every row; NaN
// bounds fold to ±Inf; rows with NaN coordinates match every bound. It
// returns the number of rows newly deleted (rows already tombstoned
// are not recounted).
//
// The delete covers the rows visible when it ran: a row appended
// concurrently with the call may or may not be examined, exactly as a
// scan racing an append may or may not see the new row.
func (t *Table) DeleteRect(xCol, yCol string, r geom.Rect) (int, error) {
	if _, ok := t.colIdx[xCol]; !ok {
		return 0, fmt.Errorf("store: table %q column %q: %w", t.name, xCol, ErrNotFound)
	}
	if _, ok := t.colIdx[yCol]; !ok {
		return 0, fmt.Errorf("store: table %q column %q: %w", t.name, yCol, ErrNotFound)
	}
	if r == (geom.Rect{}) {
		r = unboundedRect
	}
	return t.DeleteWhere([]Pred{
		{Column: xCol, Min: r.MinX, Max: r.MaxX},
		{Column: yCol, Min: r.MinY, Max: r.MaxY},
	})
}

// DeleteWhere tombstones every row satisfying all predicates (Scan's
// conjunctive range semantics: NaN bounds fold to ±Inf, NaN values
// match every range) and returns the number of rows newly deleted. An
// empty predicate list deletes every row.
func (t *Table) DeleteWhere(preds []Pred) (int, error) {
	pi := make([]int, len(preds))
	for i, p := range preds {
		ci, ok := t.colIdx[p.Column]
		if !ok {
			return 0, fmt.Errorf("store: table %q column %q: %w", t.name, p.Column, ErrNotFound)
		}
		pi[i] = ci
	}
	preds = normalizePreds(preds)
	for attempt := 0; ; attempt++ {
		d := t.snapshot()
		if d.n == 0 {
			return 0, nil
		}
		var ids []int
		if len(preds) == 0 {
			ids = make([]int, d.n)
			for i := range ids {
				ids[i] = i
			}
		} else {
			cols := make([][]float64, len(preds))
			for i, ci := range pi {
				cols[i] = d.cols[ci]
			}
			ids = scanShards(cols, preds, d.n, nil)
		}
		ids = filterDeadInts(ids, d.dead)
		if len(ids) == 0 {
			return 0, nil
		}
		t.mu.Lock()
		cur := t.data
		if cur.loadGen != d.loadGen {
			// The content the scan matched against was replaced
			// mid-flight; the ids describe dead data. Rescan.
			t.mu.Unlock()
			if attempt >= deleteMaxRetries {
				return 0, fmt.Errorf("store: table %q: delete lost %d publish races, giving up", t.name, attempt+1)
			}
			continue
		}
		// Appends since the scan only added rows past d.n — the matched
		// prefix is immutable, so the ids are still valid. Concurrent
		// deletes may have tombstoned some of them already; orBitmapRows
		// counts only the newly-set bits.
		dead, added := orBitmapRows(cur.dead, ids)
		if added == 0 {
			t.mu.Unlock()
			return 0, nil
		}
		t.data = &tableData{cols: cur.cols, n: cur.n, indexes: cur.indexes, dead: dead, loadGen: cur.loadGen}
		t.mu.Unlock()
		t.counters.deletedRows.Add(int64(added))
		t.maybeCompact()
		return added, nil
	}
}

// SetTTL installs the table's retention policy: rows whose value in the
// timestamp column (float64 Unix seconds) is at least maxAge old get
// tombstoned by the next compaction — Compact enforces the policy
// before it merges deltas and reclaims dead rows, so background
// compaction doubles as the retention sweeper. A non-positive maxAge
// clears the policy. NaN timestamps match the cutoff range like every
// range predicate and therefore age out immediately.
func (t *Table) SetTTL(col string, maxAge time.Duration) error {
	if _, ok := t.colIdx[col]; !ok {
		return fmt.Errorf("store: table %q column %q: %w", t.name, col, ErrNotFound)
	}
	t.ttlMu.Lock()
	defer t.ttlMu.Unlock()
	if maxAge <= 0 {
		t.ttlCol = -1
		t.ttlAge = 0
		return nil
	}
	t.ttlCol = t.colIdx[col]
	t.ttlAge = maxAge
	return nil
}

// TTL reports the current retention policy; ok is false when none is
// set.
func (t *Table) TTL() (col string, maxAge time.Duration, ok bool) {
	t.ttlMu.Lock()
	defer t.ttlMu.Unlock()
	if t.ttlCol < 0 {
		return "", 0, false
	}
	return t.colName[t.ttlCol], t.ttlAge, true
}

// enforceTTL tombstones the rows the retention policy has expired.
// Called by Compact; a no-op without a policy.
func (t *Table) enforceTTL() {
	t.ttlMu.Lock()
	col, age := t.ttlCol, t.ttlAge
	t.ttlMu.Unlock()
	if col < 0 || age <= 0 {
		return
	}
	cutoff := float64(timeNow().Add(-age).Unix())
	// Losing a publish race here is fine — the next compaction sweeps
	// again — so the retry-exhausted error is deliberately dropped.
	_, _ = t.DeleteWhere([]Pred{{Column: t.colName[col], Min: math.Inf(-1), Max: cutoff}})
}
