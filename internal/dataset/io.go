package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/binio"
	"repro/internal/geom"
)

// This file provides dataset persistence: a CSV text format (x,y[,value]
// with an optional header) for interchange with external tools, and a
// compact little-endian binary format for fast reloads of large generated
// datasets.

// WriteCSV writes d as CSV with header "x,y[,value]".
func WriteCSV(w io.Writer, d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	hasValues := d.Values != nil
	header := []string{"x", "y"}
	if hasValues {
		header = append(header, "value")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	rec := make([]string, len(header))
	for i, p := range d.Points {
		rec[0] = strconv.FormatFloat(p.X, 'g', -1, 64)
		rec[1] = strconv.FormatFloat(p.Y, 'g', -1, 64)
		if hasValues {
			rec[2] = strconv.FormatFloat(d.Values[i], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset from CSV. The first row may be a header (any
// row whose first field does not parse as a float is skipped when it is
// row 0). Rows must have 2 or 3 fields; a third field populates Values.
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	d := &Dataset{Name: name}
	row := 0
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv row %d: %w", row, err)
		}
		row++
		if len(rec) < 2 {
			return nil, fmt.Errorf("dataset: csv row %d has %d fields, need >= 2", row, len(rec))
		}
		x, errX := strconv.ParseFloat(rec[0], 64)
		y, errY := strconv.ParseFloat(rec[1], 64)
		if errX != nil || errY != nil {
			if row == 1 {
				continue // header
			}
			return nil, fmt.Errorf("dataset: csv row %d: bad coordinates %q,%q", row, rec[0], rec[1])
		}
		d.Points = append(d.Points, geom.Pt(x, y))
		if len(rec) >= 3 && rec[2] != "" {
			v, err := strconv.ParseFloat(rec[2], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv row %d: bad value %q", row, rec[2])
			}
			d.Values = append(d.Values, v)
		}
	}
	if d.Values != nil && len(d.Values) != len(d.Points) {
		return nil, fmt.Errorf("dataset: csv mixes rows with and without values (%d values, %d points)", len(d.Values), len(d.Points))
	}
	return d, d.Validate()
}

// Binary format:
//
//	magic "VASD" | uint32 version | uint32 flags | uint64 n |
//	n × (float64 x, float64 y) | [n × float64 value when flags&1]
//
// Everything little-endian.
const (
	binaryMagic   = "VASD"
	binaryVersion = 1
	flagHasValues = 1
)

// WriteBinary writes d in the compact binary format (via the shared
// binio codec — the same primitives the catalog snapshot format uses).
func WriteBinary(w io.Writer, d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	bw := binio.NewWriter(w)
	bw.Raw([]byte(binaryMagic))
	var flags uint32
	if d.Values != nil {
		flags |= flagHasValues
	}
	bw.U32(binaryVersion)
	bw.U32(flags)
	bw.U64(uint64(len(d.Points)))
	for _, p := range d.Points {
		bw.F64(p.X)
		bw.F64(p.Y)
	}
	for _, v := range d.Values {
		bw.F64(v)
	}
	return bw.Flush()
}

// ReadBinary parses the compact binary format from a stream of unknown
// size; the header row count is capped but a hostile header can still
// demand a large allocation. Prefer ReadBinarySized (what LoadFile
// uses) when the input's size is known.
func ReadBinary(r io.Reader, name string) (*Dataset, error) {
	return ReadBinarySized(r, name, -1)
}

// ReadBinarySized parses the compact binary format from an input known
// to hold size bytes: a header that claims more points than the bytes
// behind it can supply is rejected before anything is allocated. A
// negative size means unknown.
func ReadBinarySized(r io.Reader, name string, size int64) (*Dataset, error) {
	br := binio.NewReader(r, size)
	magic := make([]byte, 4)
	br.Raw(magic)
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	version := br.U32()
	flags := br.U32()
	n := br.U64()
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("dataset: unsupported version %d", version)
	}
	const maxPoints = 1 << 31 // refuse absurd headers rather than OOM
	if n > maxPoints {
		return nil, fmt.Errorf("dataset: header claims %d points, limit %d", n, maxPoints)
	}
	// With a known size, reject a header whose claimed rows cannot fit
	// in the bytes behind it before allocating for them.
	if rem := br.Remaining(); rem >= 0 {
		need := int64(n) * 16
		if flags&flagHasValues != 0 {
			need += int64(n) * 8
		}
		if need > rem {
			return nil, fmt.Errorf("dataset: header claims %d points (%d bytes), %d bytes remain", n, need, rem)
		}
	}
	d := &Dataset{Name: name, Points: make([]geom.Point, n)}
	for i := range d.Points {
		d.Points[i] = geom.Pt(br.F64(), br.F64())
		if err := br.Err(); err != nil {
			return nil, fmt.Errorf("dataset: point %d: %w", i, err)
		}
	}
	if flags&flagHasValues != 0 {
		d.Values = make([]float64, n)
		for i := range d.Values {
			d.Values[i] = br.F64()
			if err := br.Err(); err != nil {
				return nil, fmt.Errorf("dataset: value %d: %w", i, err)
			}
		}
	}
	return d, d.Validate()
}

// SaveFile writes d to path, choosing the format from the extension
// (".csv" → CSV, anything else → binary).
func SaveFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if hasCSVExt(path) {
		if err := WriteCSV(f, d); err != nil {
			return err
		}
	} else if err := WriteBinary(f, d); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset from path, choosing the format from the
// extension. The file size bounds the binary decoder's allocations.
func LoadFile(path, name string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if hasCSVExt(path) {
		return ReadCSV(f, name)
	}
	size := int64(-1)
	if st, err := f.Stat(); err == nil {
		size = st.Size()
	}
	return ReadBinarySized(f, name, size)
}

func hasCSVExt(path string) bool {
	return len(path) >= 4 && path[len(path)-4:] == ".csv"
}
