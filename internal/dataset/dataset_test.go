package dataset

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestGeolifeLikeBasics(t *testing.T) {
	d := GeolifeLike(GeolifeOptions{N: 10_000, Seed: 1})
	if d.Len() != 10_000 {
		t.Fatalf("Len = %d", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Values) != d.Len() {
		t.Fatalf("values length %d", len(d.Values))
	}
	if d.Name != "geolife-like" {
		t.Errorf("Name = %q", d.Name)
	}
}

func TestGeolifeLikeDeterministic(t *testing.T) {
	a := GeolifeLike(GeolifeOptions{N: 2000, Seed: 7})
	b := GeolifeLike(GeolifeOptions{N: 2000, Seed: 7})
	for i := range a.Points {
		if !a.Points[i].Equal(b.Points[i]) || a.Values[i] != b.Values[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := GeolifeLike(GeolifeOptions{N: 2000, Seed: 8})
	if a.Points[0].Equal(c.Points[0]) && a.Points[1].Equal(c.Points[1]) {
		t.Error("different seeds produced identical prefixes (suspicious)")
	}
}

// TestGeolifeLikeSkew checks the property the reproduction depends on: the
// bounding box is huge (travel points) while almost all mass concentrates
// near Beijing — the regime where stratified sampling degenerates.
func TestGeolifeLikeSkew(t *testing.T) {
	d := GeolifeLike(GeolifeOptions{N: 50_000, Seed: 2})
	bounds := d.Bounds()
	if bounds.Width() < 15 || bounds.Height() < 8 {
		t.Errorf("extent too small for the travel-point blow-up: %v", bounds)
	}
	core := geom.RectAround(geom.Pt(beijingLon, beijingLat), 3)
	inCore := 0
	for _, p := range d.Points {
		if core.Contains(p) {
			inCore++
		}
	}
	frac := float64(inCore) / float64(d.Len())
	if frac < 0.9 {
		t.Errorf("only %.3f of the mass near Beijing, want >= 0.9", frac)
	}
	// But not everything: the far points must exist.
	if inCore == d.Len() {
		t.Error("no travel points generated")
	}
}

func TestGeolifeLikeAltitudeSignal(t *testing.T) {
	// Altitude must correlate with distance from the centre so the
	// regression user task has signal.
	d := GeolifeLike(GeolifeOptions{N: 20_000, Seed: 3})
	c := geom.Pt(beijingLon, beijingLat)
	var nearSum, nearN, farSum, farN float64
	for i, p := range d.Points {
		dist := p.Dist(c)
		switch {
		case dist < 0.5:
			nearSum += d.Values[i]
			nearN++
		case dist > 3:
			farSum += d.Values[i]
			farN++
		}
	}
	if nearN == 0 || farN == 0 {
		t.Fatal("degenerate distance strata")
	}
	if farSum/farN <= nearSum/nearN {
		t.Errorf("altitude does not rise with distance: near %v, far %v", nearSum/nearN, farSum/farN)
	}
}

func TestGeolifeLikePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for N=0")
		}
	}()
	GeolifeLike(GeolifeOptions{N: 0})
}

func TestSPLOM(t *testing.T) {
	s := NewSPLOM(SPLOMOptions{N: 5000, Seed: 4})
	if s.N() != 5000 {
		t.Fatalf("N = %d", s.N())
	}
	if len(s.Cols) != SPLOMColumns {
		t.Fatalf("columns = %d", len(s.Cols))
	}
	d := s.XY(0, 1)
	if d.Len() != 5000 {
		t.Fatal("projection length")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Single Gaussian: mean near 0, no heavy outliers beyond ~6 sigma.
	var sum float64
	for _, p := range d.Points {
		sum += p.X
	}
	mean := sum / float64(d.Len())
	if math.Abs(mean) > 2 {
		t.Errorf("column mean %v far from 0", mean)
	}
}

func TestSPLOMXYPanics(t *testing.T) {
	s := NewSPLOM(SPLOMOptions{N: 10, Seed: 5})
	defer func() {
		if recover() == nil {
			t.Error("want panic for out-of-range column")
		}
	}()
	s.XY(0, 9)
}

func TestClusters(t *testing.T) {
	d := Clusters("two", 10_000, 6, []ClusterSpec{
		{Center: geom.Pt(-5, 0), SigmaX: 1, SigmaY: 1, Weight: 3},
		{Center: geom.Pt(5, 0), SigmaX: 1, SigmaY: 1, Weight: 1},
	})
	if d.Len() != 10_000 {
		t.Fatalf("Len = %d", d.Len())
	}
	var left int
	for _, p := range d.Points {
		if p.X < 0 {
			left++
		}
	}
	frac := float64(left) / float64(d.Len())
	if math.Abs(frac-0.75) > 0.03 {
		t.Errorf("weight-3 cluster holds %.3f of mass, want 0.75±0.03", frac)
	}
}

func TestClustersCorrelation(t *testing.T) {
	d := Clusters("rho", 20_000, 7, []ClusterSpec{
		{Center: geom.Pt(0, 0), SigmaX: 1, SigmaY: 1, Rho: 0.9, Weight: 1},
	})
	// Sample correlation should be near 0.9.
	var sx, sy, sxy, sxx, syy float64
	n := float64(d.Len())
	for _, p := range d.Points {
		sx += p.X
		sy += p.Y
	}
	mx, my := sx/n, sy/n
	for _, p := range d.Points {
		dx, dy := p.X-mx, p.Y-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	rho := sxy / math.Sqrt(sxx*syy)
	if math.Abs(rho-0.9) > 0.03 {
		t.Errorf("sample correlation %v, want 0.9±0.03", rho)
	}
}

func TestClusterStudyDatasets(t *testing.T) {
	sets := ClusterStudyDatasets(3000, 8)
	if len(sets) != 4 {
		t.Fatalf("got %d datasets", len(sets))
	}
	wantK := []int{2, 2, 1, 1}
	for i, s := range sets {
		if s.TrueClusters != wantK[i] {
			t.Errorf("dataset %d: true clusters %d, want %d", i, s.TrueClusters, wantK[i])
		}
		if s.Len() != 3000 {
			t.Errorf("dataset %d: %d points", i, s.Len())
		}
		if err := s.Validate(); err != nil {
			t.Errorf("dataset %d: %v", i, err)
		}
	}
	// The separated two-Gaussian dataset must actually be bimodal in x.
	sep := sets[0]
	var left, right int
	for _, p := range sep.Points {
		if p.X < 0 {
			left++
		} else {
			right++
		}
	}
	if left == 0 || right == 0 {
		t.Error("separated dataset is not bimodal")
	}
}

func TestValidateCatchesBadData(t *testing.T) {
	d := &Dataset{Name: "bad", Points: []geom.Point{geom.Pt(math.NaN(), 0)}}
	if err := d.Validate(); err == nil {
		t.Error("NaN point: want error")
	}
	d2 := &Dataset{Name: "bad2", Points: []geom.Point{geom.Pt(0, 0)}, Values: []float64{1, 2}}
	if err := d2.Validate(); err == nil {
		t.Error("values length mismatch: want error")
	}
}
