package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/geom"
)

func sampleDataset() *Dataset {
	return &Dataset{
		Name:   "test",
		Points: []geom.Point{geom.Pt(1.5, -2.25), geom.Pt(0, 0), geom.Pt(1e-9, 1e9)},
		Values: []float64{10, -3.5, 0},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "test")
	if err != nil {
		t.Fatal(err)
	}
	assertEqualDatasets(t, d, got)
}

func TestCSVRoundTripNoValues(t *testing.T) {
	d := &Dataset{Name: "nv", Points: []geom.Point{geom.Pt(1, 2), geom.Pt(3, 4)}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "x,y\n") {
		t.Errorf("header = %q", buf.String()[:10])
	}
	got, err := ReadCSV(&buf, "nv")
	if err != nil {
		t.Fatal(err)
	}
	if got.Values != nil {
		t.Error("values should be nil")
	}
	assertEqualDatasets(t, d, got)
}

func TestReadCSVWithoutHeader(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("1,2\n3,4\n"), "raw")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || !got.Points[0].Equal(geom.Pt(1, 2)) {
		t.Errorf("parsed %v", got.Points)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields":      "1\n",
		"bad coords mid-file": "1,2\nx,y\n",
		"bad value":           "1,2,z\n",
		"mixed values":        "1,2,3\n4,5\n",
	}
	for name, input := range cases {
		if _, err := ReadCSV(strings.NewReader(input), "bad"); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	// A header row is only forgiven on row 1.
	if _, err := ReadCSV(strings.NewReader("x,y\n1,2\n"), "hdr"); err != nil {
		t.Errorf("header row rejected: %v", err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf, "test")
	if err != nil {
		t.Fatal(err)
	}
	assertEqualDatasets(t, d, got)
}

func TestBinaryRoundTripNoValues(t *testing.T) {
	d := &Dataset{Name: "nv", Points: []geom.Point{geom.Pt(-1, 7)}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf, "nv")
	if err != nil {
		t.Fatal(err)
	}
	if got.Values != nil {
		t.Error("values should be nil")
	}
	assertEqualDatasets(t, d, got)
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOTMAGIC........"), "g"); err == nil {
		t.Error("bad magic: want error")
	}
	if _, err := ReadBinary(strings.NewReader("VA"), "g"); err == nil {
		t.Error("truncated magic: want error")
	}
	// Truncated body.
	d := sampleDataset()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadBinary(bytes.NewReader(trunc), "t"); err == nil {
		t.Error("truncated body: want error")
	}
}

func TestBinaryRejectsHugeHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("VASD")
	buf.Write([]byte{1, 0, 0, 0}) // version 1
	buf.Write([]byte{0, 0, 0, 0}) // flags
	// n = 2^40
	buf.Write([]byte{0, 0, 0, 0, 0, 1, 0, 0})
	if _, err := ReadBinary(&buf, "huge"); err == nil {
		t.Error("absurd point count: want error")
	}
}

// TestSizedReadRejectsOverclaimingHeader: with a known input size, a
// header claiming more points than the bytes behind it can hold must be
// rejected before the points are allocated — even when the claim is
// under the absolute maxPoints cap.
func TestSizedReadRejectsOverclaimingHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("VASD")
	buf.Write([]byte{1, 0, 0, 0})              // version 1
	buf.Write([]byte{0, 0, 0, 0})              // flags
	buf.Write([]byte{0, 0, 0, 64, 0, 0, 0, 0}) // n = 2^30, under maxPoints
	data := buf.Bytes()
	if _, err := ReadBinarySized(bytes.NewReader(data), "hostile", int64(len(data))); err == nil {
		t.Error("over-claiming header with known size: want error")
	}
	// The same bytes through LoadFile (which stats the file) must also
	// be rejected up front.
	path := filepath.Join(t.TempDir(), "hostile.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path, "hostile"); err == nil {
		t.Error("over-claiming header via LoadFile: want error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	d := sampleDataset()
	for _, name := range []string{"d.csv", "d.bin"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, d); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadFile(path, "roundtrip")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertEqualDatasets(t, d, got)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.csv"), "x"); err == nil {
		t.Error("missing file: want error")
	}
}

func assertEqualDatasets(t *testing.T, want, got *Dataset) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("length %d, want %d", got.Len(), want.Len())
	}
	for i := range want.Points {
		if !got.Points[i].Equal(want.Points[i]) {
			t.Fatalf("point %d: %v != %v", i, got.Points[i], want.Points[i])
		}
	}
	if (got.Values == nil) != (want.Values == nil) {
		t.Fatalf("values presence mismatch")
	}
	for i := range want.Values {
		if got.Values[i] != want.Values[i] {
			t.Fatalf("value %d: %v != %v", i, got.Values[i], want.Values[i])
		}
	}
}
