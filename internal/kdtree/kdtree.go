// Package kdtree implements a static 2D k-d tree (Bentley 1975), the data
// structure the paper prescribes for the density-embedding second pass
// (§V): after VAS selects the sample, a k-d tree over the K sampled points
// answers nearest-neighbour queries for each of the N dataset points in
// O(log K), so the whole pass is O(N log K).
//
// The tree is built once from a point slice and is immutable afterwards,
// which makes it trivially safe for concurrent reads.
package kdtree

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// Tree is an immutable 2D k-d tree. Construct with Build.
type Tree struct {
	// Nodes are stored in a flat slice; node i has children at indices
	// stored in left/right. -1 marks a missing child.
	pts   []geom.Point
	ids   []int
	left  []int32
	right []int32
	root  int32
}

// Build constructs a balanced k-d tree over pts. The returned tree keeps
// its own copy of the points. ids[i] is the payload returned for pts[i];
// pass nil to use the index itself.
func Build(pts []geom.Point, ids []int) *Tree {
	n := len(pts)
	t := &Tree{
		pts:   make([]geom.Point, n),
		ids:   make([]int, n),
		left:  make([]int32, n),
		right: make([]int32, n),
		root:  -1,
	}
	copy(t.pts, pts)
	if ids != nil {
		if len(ids) != n {
			panic("kdtree: ids length must match pts length")
		}
		copy(t.ids, ids)
	} else {
		for i := range t.ids {
			t.ids[i] = i
		}
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	t.root = t.build(idx, 0)
	return t
}

// build recursively partitions idx around the median along the split axis
// and returns the subtree root's index into the flat arrays.
func (t *Tree) build(idx []int32, depth int) int32 {
	if len(idx) == 0 {
		return -1
	}
	axis := depth % 2
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := t.pts[idx[a]], t.pts[idx[b]]
		if axis == 0 {
			if pa.X != pb.X {
				return pa.X < pb.X
			}
			return pa.Y < pb.Y
		}
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		return pa.X < pb.X
	})
	mid := len(idx) / 2
	node := idx[mid]
	t.left[node] = t.build(idx[:mid], depth+1)
	t.right[node] = t.build(idx[mid+1:], depth+1)
	return node
}

// Len returns the number of stored points.
func (t *Tree) Len() int { return len(t.pts) }

// Nearest returns the payload id and point of the stored point nearest to
// q, along with the distance. ok is false for an empty tree.
func (t *Tree) Nearest(q geom.Point) (id int, p geom.Point, dist float64, ok bool) {
	if t.root < 0 {
		return 0, geom.Point{}, 0, false
	}
	best := int32(-1)
	bestD2 := math.Inf(1)
	t.nearest(t.root, q, 0, &best, &bestD2)
	return t.ids[best], t.pts[best], math.Sqrt(bestD2), true
}

func (t *Tree) nearest(node int32, q geom.Point, depth int, best *int32, bestD2 *float64) {
	if node < 0 {
		return
	}
	p := t.pts[node]
	if d2 := p.Dist2(q); d2 < *bestD2 {
		*bestD2 = d2
		*best = node
	}
	axis := depth % 2
	var diff float64
	if axis == 0 {
		diff = q.X - p.X
	} else {
		diff = q.Y - p.Y
	}
	near, far := t.left[node], t.right[node]
	if diff > 0 {
		near, far = far, near
	}
	t.nearest(near, q, depth+1, best, bestD2)
	if diff*diff < *bestD2 {
		t.nearest(far, q, depth+1, best, bestD2)
	}
}

// KNearest returns up to k stored items nearest to q in increasing distance
// order.
func (t *Tree) KNearest(q geom.Point, k int) []Neighbor {
	if k <= 0 || t.root < 0 {
		return nil
	}
	h := &maxHeap{}
	t.knearest(t.root, q, 0, k, h)
	out := make([]Neighbor, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		nb := h.pop()
		nb.Dist = math.Sqrt(nb.Dist)
		out[i] = nb
	}
	return out
}

// Neighbor is one kNN result.
type Neighbor struct {
	ID   int
	P    geom.Point
	Dist float64
}

// maxHeap keeps the k closest candidates with the farthest on top. Dist
// holds squared distance during the search.
type maxHeap struct{ a []Neighbor }

func (h *maxHeap) Len() int { return len(h.a) }
func (h *maxHeap) push(n Neighbor) {
	h.a = append(h.a, n)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.a[parent].Dist >= h.a[i].Dist {
			break
		}
		h.a[parent], h.a[i] = h.a[i], h.a[parent]
		i = parent
	}
}
func (h *maxHeap) pop() Neighbor {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h.a) && h.a[l].Dist > h.a[largest].Dist {
			largest = l
		}
		if r < len(h.a) && h.a[r].Dist > h.a[largest].Dist {
			largest = r
		}
		if largest == i {
			break
		}
		h.a[i], h.a[largest] = h.a[largest], h.a[i]
		i = largest
	}
	return top
}
func (h *maxHeap) top() Neighbor { return h.a[0] }

func (t *Tree) knearest(node int32, q geom.Point, depth, k int, h *maxHeap) {
	if node < 0 {
		return
	}
	p := t.pts[node]
	d2 := p.Dist2(q)
	if h.Len() < k {
		h.push(Neighbor{ID: t.ids[node], P: p, Dist: d2})
	} else if d2 < h.top().Dist {
		h.pop()
		h.push(Neighbor{ID: t.ids[node], P: p, Dist: d2})
	}
	axis := depth % 2
	var diff float64
	if axis == 0 {
		diff = q.X - p.X
	} else {
		diff = q.Y - p.Y
	}
	near, far := t.left[node], t.right[node]
	if diff > 0 {
		near, far = far, near
	}
	t.knearest(near, q, depth+1, k, h)
	if h.Len() < k || diff*diff < h.top().Dist {
		t.knearest(far, q, depth+1, k, h)
	}
}

// InRange appends to dst the items whose points fall inside r and returns
// the extended slice.
func (t *Tree) InRange(r geom.Rect, dst []Neighbor) []Neighbor {
	return t.inRange(t.root, r, 0, dst)
}

func (t *Tree) inRange(node int32, r geom.Rect, depth int, dst []Neighbor) []Neighbor {
	if node < 0 {
		return dst
	}
	p := t.pts[node]
	if r.Contains(p) {
		dst = append(dst, Neighbor{ID: t.ids[node], P: p})
	}
	axis := depth % 2
	var v, lo, hi float64
	if axis == 0 {
		v, lo, hi = p.X, r.MinX, r.MaxX
	} else {
		v, lo, hi = p.Y, r.MinY, r.MaxY
	}
	if lo <= v {
		dst = t.inRange(t.left[node], r, depth+1, dst)
	}
	if hi >= v {
		dst = t.inRange(t.right[node], r, depth+1, dst)
	}
	return dst
}
