package snapshot

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/store"
)

// fuzzSeeds are the hand-picked decoder inputs: a valid snapshot, the
// interesting mutants of it, and the trivial degenerate inputs. They
// are both f.Add seeds and the source of the checked-in corpus under
// testdata/fuzz (regenerate with WRITE_FUZZ_CORPUS=1 go test -run
// TestWriteFuzzCorpus ./internal/snapshot).
func fuzzSeeds(t testing.TB) [][]byte {
	valid := validSnapshotBytes(t)
	truncated := valid[:len(valid)*3/5]
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x10
	skewed := append([]byte(nil), valid...)
	skewed[4] = FormatVersion + 1 // future format version
	downgraded := append([]byte(nil), valid...)
	downgraded[4] = 1 // v1 header on a tombstone-bearing v2 body: rejected
	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'Z'
	hostileLen := append([]byte(nil), valid...)
	for i := 16; i < 24; i++ {
		hostileLen[i] = 0xFF
	}
	tree, _ := validTreeSnapshotBytes(t)
	treeTruncated := tree[:len(tree)*3/5]
	treeFlipped := append([]byte(nil), tree...)
	treeFlipped[len(treeFlipped)/2] ^= 0x10
	treeDowngraded := append([]byte(nil), tree...)
	treeDowngraded[4] = 2 // v2 header on a tree-bearing v3 body: rejected
	return [][]byte{
		valid,
		truncated,
		flipped,
		skewed,
		downgraded,
		badMagic,
		hostileLen,
		[]byte(Magic),
		nil,
		tree,
		treeTruncated,
		treeFlipped,
		treeDowngraded,
	}
}

// FuzzSnapshotDecode drives the whole cold-start decode path with
// arbitrary bytes: framing (Read) plus semantic validation
// (store.TableFromSnapshot) plus the atomic batch publish. The
// invariant is absence of panics and of partial state: any input either
// yields a fully valid catalog or an error.
func FuzzSnapshotDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cat, err := Read(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			if cat != nil {
				t.Fatal("decode returned both a catalog and an error")
			}
			return
		}
		// Structurally decoded: semantic validation must either accept
		// a table or reject it with an error — never panic.
		tables := make([]*store.Table, 0, len(cat.Tables))
		for _, ts := range cat.Tables {
			tb, err := store.TableFromSnapshot(ts)
			if err != nil {
				continue
			}
			tables = append(tables, tb)
		}
		st := store.New()
		_ = st.PublishCatalog(tables, cat.Samples)
		// A catalog that decoded cleanly must re-encode cleanly (the
		// save path after a load-modify cycle).
		if err := Write(new(bytes.Buffer), cat); err != nil {
			t.Fatalf("re-encode of a decoded catalog failed: %v", err)
		}
	})
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus. Guarded
// by an env var so normal test runs (and CI) never rewrite testdata.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSnapshotDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A handful of random mutants of the valid snapshot widen the
	// starting surface beyond the hand-picked cases.
	rng := rand.New(rand.NewSource(1))
	valid := validSnapshotBytes(t)
	for i := 0; i < 4; i++ {
		mutant := append([]byte(nil), valid...)
		for j := 0; j < 1+rng.Intn(8); j++ {
			mutant[rng.Intn(len(mutant))] ^= byte(1 << rng.Intn(8))
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(mutant)))
		name := filepath.Join(dir, fmt.Sprintf("mutant-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
