package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/store"
)

// downgrade re-stamps a freshly written snapshot as an older format
// version: it patches the header version and strips the v4 epoch field
// from the end of the catalog section (the first section Write emits),
// recomputing the section's length and CRC, so the bytes are exactly
// what an older build would have produced.
func downgrade(t *testing.T, data []byte, version byte) []byte {
	t.Helper()
	out := append([]byte(nil), data...)
	out[4] = version
	const secOff = 12 // magic + version + section count
	plen := binary.LittleEndian.Uint64(out[secOff+4 : secOff+12])
	if plen < 8 {
		t.Fatalf("catalog section only %d bytes", plen)
	}
	payload := out[secOff+12 : secOff+12+int(plen)-8]
	rest := out[secOff+12+int(plen)+4:]
	binary.LittleEndian.PutUint64(out[secOff+4:secOff+12], plen-8)
	head := out[:secOff+12+int(plen)-8]
	head = binary.LittleEndian.AppendUint32(head, crc32.ChecksumIEEE(payload))
	return append(head, rest...)
}

// randomStore builds a store of 1-3 random multi-column tables: NaN and
// ±Inf coordinates (the index extras path), NaN values in filter
// columns (zone-map NaN flags), appended tails past the index build,
// and one unindexed table, plus sample lineage between them.
func randomStore(t testing.TB, rng *rand.Rand) (*store.Store, []string) {
	t.Helper()
	st := store.New()
	ntables := 1 + rng.Intn(3)
	var names []string
	colPool := []string{"x", "y", "v", "w", "t"}
	for ti := 0; ti < ntables; ti++ {
		name := string(rune('a'+ti)) + "_tbl"
		ncols := 2 + rng.Intn(3)
		cols := colPool[:ncols]
		tb, err := st.CreateTable(name, cols...)
		if err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(4000)
		data := make([][]float64, ncols)
		for c := range data {
			data[c] = make([]float64, n)
			for i := range data[c] {
				switch rng.Intn(50) {
				case 0:
					data[c][i] = math.NaN()
				case 1:
					data[c][i] = math.Inf(1 - 2*rng.Intn(2))
				default:
					data[c][i] = rng.NormFloat64() * 20
				}
			}
		}
		if err := tb.BulkLoad(data...); err != nil {
			t.Fatal(err)
		}
		if ti != 1 { // leave one table unindexed when there are several
			if rng.Intn(2) == 0 {
				// Exercise the R-tree backend's snapshot path too.
				if err := tb.SetIndexBackend(store.BackendRTree); err != nil {
					t.Fatal(err)
				}
			}
			if err := tb.IndexOn("x", "y"); err != nil {
				t.Fatal(err)
			}
		}
		// Appended tail: rows the index does not cover.
		tail := rng.Intn(30)
		row := make([]float64, ncols)
		for i := 0; i < tail; i++ {
			for c := range row {
				row[c] = rng.NormFloat64() * 20
			}
			if err := tb.Append(row...); err != nil {
				t.Fatal(err)
			}
		}
		// Tombstones (sometimes): snapshots routinely carry a Dead
		// section, and NaN-x rows match any range so extras die too.
		if rng.Intn(2) == 0 {
			if _, err := tb.DeleteWhere([]store.Pred{{Column: "x", Min: -10, Max: float64(rng.Intn(20))}}); err != nil {
				t.Fatal(err)
			}
		}
		names = append(names, name)
	}
	// Sample lineage: a small indexed sample of the first table.
	first, err := st.Table(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if first.NumRows() > 10 {
		xs, _ := first.Column("x")
		ys, _ := first.Column("y")
		k := 5 + rng.Intn(5)
		sx := append([]float64(nil), xs[:k]...)
		sy := append([]float64(nil), ys[:k]...)
		sample, err := store.NewTable(names[0]+"_vas", "x", "y")
		if err != nil {
			t.Fatal(err)
		}
		if err := sample.BulkLoad(sx, sy); err != nil {
			t.Fatal(err)
		}
		if err := sample.IndexOn("x", "y"); err != nil {
			t.Fatal(err)
		}
		if err := st.PublishSample(sample, store.SampleMeta{
			Table: names[0] + "_vas", Source: names[0], Method: "vas",
			XCol: "x", YCol: "y", Size: k,
		}); err != nil {
			t.Fatal(err)
		}
		names = append(names, names[0]+"_vas")
	}
	return st, names
}

// snapshotStore captures every table of st into a snapshot catalog.
func snapshotStore(t testing.TB, st *store.Store, prov []Provenance) *Catalog {
	t.Helper()
	cat := &Catalog{Provenance: prov}
	cat.Tables, cat.Samples = st.SnapshotCatalog()
	return cat
}

// restoreStore loads a decoded snapshot into a fresh store the way the
// serving layer does: validate every table, then publish atomically.
func restoreStore(t testing.TB, cat *Catalog) *store.Store {
	t.Helper()
	tables := make([]*store.Table, 0, len(cat.Tables))
	for _, ts := range cat.Tables {
		tb, err := store.TableFromSnapshot(ts)
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, tb)
	}
	fresh := store.New()
	if err := fresh.PublishCatalog(tables, cat.Samples); err != nil {
		t.Fatal(err)
	}
	return fresh
}

// TestSnapshotRoundTripProperty is the subsystem's property test: a
// random multi-column catalog (NaN/±Inf coords, appended tails, extras,
// sample lineage) survives Save→Load into a fresh store with identical
// Scan / ScanRectWhere results and identical index shape.
func TestSnapshotRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		orig, names := randomStore(t, rng)
		path := filepath.Join(dir, "cat.snap")
		if err := Save(path, snapshotStore(t, orig, nil)); err != nil {
			t.Fatalf("trial %d: save: %v", trial, err)
		}
		loaded, err := Load(path)
		if err != nil {
			t.Fatalf("trial %d: load: %v", trial, err)
		}
		fresh := restoreStore(t, loaded)

		oStats, fStats := orig.IndexStats(), fresh.IndexStats()
		if oStats.Indexes != fStats.Indexes || oStats.Cells != fStats.Cells ||
			oStats.IndexedRows != fStats.IndexedRows || oStats.IndexedTables != fStats.IndexedTables {
			t.Fatalf("trial %d: index stats diverge: %+v vs %+v", trial, oStats, fStats)
		}

		for _, name := range names {
			ot, err := orig.Table(name)
			if err != nil {
				t.Fatal(err)
			}
			ft, err := fresh.Table(name)
			if err != nil {
				t.Fatalf("trial %d: table %q missing after restore: %v", trial, name, err)
			}
			if ot.NumRows() != ft.NumRows() {
				t.Fatalf("trial %d: table %q rows %d vs %d", trial, name, ot.NumRows(), ft.NumRows())
			}
			if ot.LiveRows() != ft.LiveRows() {
				t.Fatalf("trial %d: table %q live rows %d vs %d", trial, name, ot.LiveRows(), ft.LiveRows())
			}
			for probe := 0; probe < 8; probe++ {
				r := geom.Rect{
					MinX: rng.NormFloat64() * 25, MinY: rng.NormFloat64() * 25,
					MaxX: rng.NormFloat64() * 25, MaxY: rng.NormFloat64() * 25,
				}
				if r.MinX > r.MaxX {
					r.MinX, r.MaxX = r.MaxX, r.MinX
				}
				if r.MinY > r.MaxY {
					r.MinY, r.MaxY = r.MaxY, r.MinY
				}
				var preds []store.Pred
				if probe%2 == 1 {
					cols := ot.Columns()
					preds = append(preds, store.Pred{
						Column: cols[rng.Intn(len(cols))],
						Min:    rng.NormFloat64() * 20, Max: rng.NormFloat64() * 20,
					})
				}
				want, wantSt, err := ot.ScanRectWhere("x", "y", r, preds)
				if err != nil {
					t.Fatal(err)
				}
				got, gotSt, err := ft.ScanRectWhere("x", "y", r, preds)
				if err != nil {
					t.Fatal(err)
				}
				if !equalInts(want.Indices(), got.Indices()) {
					t.Fatalf("trial %d table %q rect %v preds %v: results diverge", trial, name, r, preds)
				}
				if wantSt != gotSt {
					t.Fatalf("trial %d table %q: scan stats diverge: %+v vs %+v", trial, name, wantSt, gotSt)
				}
				sWant, err := ot.Scan(preds)
				if err != nil {
					t.Fatal(err)
				}
				sGot, err := ft.Scan(preds)
				if err != nil {
					t.Fatal(err)
				}
				if !equalInts(sWant.Indices(), sGot.Indices()) {
					t.Fatalf("trial %d table %q preds %v: Scan diverges", trial, name, preds)
				}
			}
		}
		// Sample lineage survived.
		if got, want := len(fresh.SamplesOf(names[0])), len(orig.SamplesOf(names[0])); got != want {
			t.Fatalf("trial %d: %d samples after restore, want %d", trial, got, want)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validSnapshotBytes encodes a small but fully featured catalog: an
// indexed 3-column table with NaN rows and a tail, plus a sample with
// lineage. Deliberately tiny (~200 rows) so the corruption sweeps and
// the fuzzer get high throughput per exec.
func validSnapshotBytes(t testing.TB) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	st := store.New()
	tb, err := st.CreateTable("a_tbl", "x", "y", "v")
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	xs, ys, vs := make([]float64, n), make([]float64, n), make([]float64, n)
	for i := range xs {
		xs[i], ys[i], vs[i] = rng.NormFloat64()*20, rng.NormFloat64()*20, rng.Float64()*100
		if i%41 == 0 {
			xs[i] = math.NaN()
		}
	}
	if err := tb.BulkLoad(xs, ys, vs); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	sample, err := store.NewTable("a_tbl_vas", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if err := sample.BulkLoad(xs[:7:7], ys[:7:7]); err != nil {
		t.Fatal(err)
	}
	if err := sample.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	if err := st.PublishSample(sample, store.SampleMeta{
		Table: "a_tbl_vas", Source: "a_tbl", Method: "vas", XCol: "x", YCol: "y", Size: 7,
	}); err != nil {
		t.Fatal(err)
	}
	// Tombstones put a Dead section in the file, so the corruption
	// sweeps and the fuzzer exercise the v2 tombstone decode path too.
	if _, err := tb.DeleteWhere([]store.Pred{{Column: "v", Min: 40, Max: 60}}); err != nil {
		t.Fatal(err)
	}
	cat := snapshotStore(t, st, []Provenance{{
		Table: "a_tbl", SourceHash: 0xfeedbeef, Rows: 123, Build: "sizes=5 density=false",
	}})
	var buf bytes.Buffer
	if err := Write(&buf, cat); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// validTreeSnapshotBytes is validSnapshotBytes with the base table
// forced onto the R-tree backend, so the file carries a v3 tree-index
// section. Returns the bytes and the store they encode.
func validTreeSnapshotBytes(t testing.TB) ([]byte, *store.Store) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	st := store.New()
	tb, err := st.CreateTable("a_tbl", "x", "y", "v")
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	xs, ys, vs := make([]float64, n), make([]float64, n), make([]float64, n)
	for i := range xs {
		// Heavily clustered so a tree is the natural backend; a few NaN
		// rows keep the extras path in the file.
		xs[i], ys[i], vs[i] = rng.NormFloat64()*0.5, rng.NormFloat64()*0.5, rng.Float64()*100
		if i%10 == 0 {
			xs[i], ys[i] = rng.Float64()*200-100, rng.Float64()*200-100
		}
		if i%41 == 0 {
			xs[i] = math.NaN()
		}
	}
	if err := tb.BulkLoad(xs, ys, vs); err != nil {
		t.Fatal(err)
	}
	if err := tb.SetIndexBackend(store.BackendRTree); err != nil {
		t.Fatal(err)
	}
	if err := tb.IndexOn("x", "y"); err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.DeleteWhere([]store.Pred{{Column: "v", Min: 40, Max: 45}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, snapshotStore(t, st, nil)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), st
}

// TestFormatV3TreeCompat pins the version gate for tree-index sections:
// a v3 file with a tree-backed table round-trips (same scans, same kNN
// answers, backend preserved), a grid-only catalog stamped v2 still
// loads, and a tree section stamped v2 is corruption, not data.
func TestFormatV3TreeCompat(t *testing.T) {
	t.Run("tree round trip", func(t *testing.T) {
		data, orig := validTreeSnapshotBytes(t)
		cat, err := Read(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatalf("tree snapshot rejected: %v", err)
		}
		fresh := restoreStore(t, cat)
		fStats := fresh.IndexStats()
		if len(fStats.PerTable) != 1 || fStats.PerTable[0].Backend != store.BackendRTree {
			t.Fatalf("restored backend: %+v", fStats.PerTable)
		}
		ot, _ := orig.Table("a_tbl")
		ft, err := fresh.Table("a_tbl")
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		for probe := 0; probe < 20; probe++ {
			r := geom.NewRect(
				geom.Pt(rng.NormFloat64()*30, rng.NormFloat64()*30),
				geom.Pt(rng.NormFloat64()*30, rng.NormFloat64()*30),
			)
			var preds []store.Pred
			if probe%2 == 1 {
				preds = append(preds, store.Pred{Column: "v", Min: 10, Max: 70})
			}
			want, wantSt, err := ot.ScanRectWhere("x", "y", r, preds)
			if err != nil {
				t.Fatal(err)
			}
			got, gotSt, err := ft.ScanRectWhere("x", "y", r, preds)
			if err != nil {
				t.Fatal(err)
			}
			if !equalInts(want.Indices(), got.Indices()) || wantSt != gotSt {
				t.Fatalf("probe %d: scans diverge after restore (%+v vs %+v)", probe, wantSt, gotSt)
			}
		}
		// kNN must answer identically at the same query points.
		for probe := 0; probe < 20; probe++ {
			x, y := rng.NormFloat64()*10, rng.NormFloat64()*10
			wn, _, err := ot.Nearest("x", "y", x, y, 7, nil)
			if err != nil {
				t.Fatal(err)
			}
			gn, _, err := ft.Nearest("x", "y", x, y, 7, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(wn) != len(gn) {
				t.Fatalf("kNN at (%g,%g): %d vs %d results", x, y, len(wn), len(gn))
			}
			for i := range wn {
				if wn[i] != gn[i] {
					t.Fatalf("kNN at (%g,%g) result %d: %+v vs %+v", x, y, i, wn[i], gn[i])
				}
			}
		}
	})
	t.Run("grid-only catalog stamped v2 loads", func(t *testing.T) {
		st := store.New()
		tb, err := st.CreateTable("a_tbl", "x", "y")
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.BulkLoad([]float64{1, 2, 3}, []float64{4, 5, 6}); err != nil {
			t.Fatal(err)
		}
		if err := tb.IndexOn("x", "y"); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, snapshotStore(t, st, nil)); err != nil {
			t.Fatal(err)
		}
		data := downgrade(t, buf.Bytes(), 2)
		if _, err := Read(bytes.NewReader(data), int64(len(data))); err != nil {
			t.Fatalf("v2 grid snapshot rejected: %v", err)
		}
	})
	t.Run("tree section in v2 rejected", func(t *testing.T) {
		data, _ := validTreeSnapshotBytes(t)
		data = downgrade(t, data, 2)
		if _, err := Read(bytes.NewReader(data), int64(len(data))); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("tree-bearing v2 file loaded: err %v, want ErrCorrupt", err)
		}
	})
}

// TestDecodeRejectsTreeCorruption repeats the corruption treatment on a
// tree-bearing v3 file: truncations at every boundary region and
// single-bit flips anywhere must error — never panic, never publish.
func TestDecodeRejectsTreeCorruption(t *testing.T) {
	valid, _ := validTreeSnapshotBytes(t)
	if _, err := Read(bytes.NewReader(valid), int64(len(valid))); err != nil {
		t.Fatalf("valid tree snapshot rejected: %v", err)
	}
	t.Run("truncated", func(t *testing.T) {
		for cut := 0; cut < len(valid); cut += 1 + cut/7 {
			data := valid[:cut]
			cat, err := Read(bytes.NewReader(data), int64(len(data)))
			if err == nil {
				t.Fatalf("truncation at %d/%d bytes was accepted (%d tables)", cut, len(valid), len(cat.Tables))
			}
		}
	})
	t.Run("bit flips", func(t *testing.T) {
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 400; trial++ {
			data := append([]byte(nil), valid...)
			pos := rng.Intn(len(data))
			data[pos] ^= 1 << rng.Intn(8)
			cat, err := Read(bytes.NewReader(data), int64(len(data)))
			if err == nil {
				t.Fatalf("bit flip at byte %d was accepted (%d tables)", pos, len(cat.Tables))
			}
		}
	})
	// Structurally intact but semantically hostile: flip bits in the
	// decoded tree arrays and require TableFromSnapshot to reject or
	// survive them — the fuzz invariant, pinned on the real payload.
	t.Run("mutated tree structure", func(t *testing.T) {
		rng := rand.New(rand.NewSource(13))
		for trial := 0; trial < 200; trial++ {
			cat, err := Read(bytes.NewReader(valid), int64(len(valid)))
			if err != nil {
				t.Fatal(err)
			}
			for i := range cat.Tables {
				for j := range cat.Tables[i].TreeIndexes {
					ix := &cat.Tables[i].TreeIndexes[j]
					switch rng.Intn(6) {
					case 0:
						if len(ix.RowID) > 0 {
							ix.RowID[rng.Intn(len(ix.RowID))] = int32(rng.Intn(1 << 20))
						}
					case 1:
						if len(ix.LeafOff) > 0 {
							ix.LeafOff[rng.Intn(len(ix.LeafOff))] += int32(rng.Intn(64)) - 32
						}
					case 2:
						if len(ix.NodeLo) > 0 {
							k := rng.Intn(len(ix.NodeLo))
							ix.NodeLo[k] = int32(rng.Intn(1 << 16))
							ix.NodeHi[k] = int32(rng.Intn(1 << 16))
						}
					case 3:
						if len(ix.NodeLeafLo) > 0 {
							k := rng.Intn(len(ix.NodeLeafLo))
							ix.NodeLeafLo[k] = int32(rng.Intn(1 << 16))
							ix.NodeLeafHi[k] = int32(rng.Intn(1 << 16))
						}
					case 4:
						if len(ix.NodeLeafKids) > 0 {
							k := rng.Intn(len(ix.NodeLeafKids))
							ix.NodeLeafKids[k] = !ix.NodeLeafKids[k]
						}
					case 5:
						ix.NumRows += rng.Intn(40) - 20
					}
				}
				// Must reject or produce a well-formed table; the scan
				// below panics (failing the test) if validation let a
				// descent-breaking structure through.
				tb, err := store.TableFromSnapshot(cat.Tables[i])
				if err != nil {
					continue
				}
				if _, _, err := tb.ScanRectWhere("x", "y", geom.Rect{MinX: -5, MinY: -5, MaxX: 5, MaxY: 5}, nil); err != nil {
					t.Fatal(err)
				}
				if _, _, err := tb.Nearest("x", "y", 0, 0, 3, nil); err != nil {
					t.Fatal(err)
				}
			}
		}
	})
}

// TestFormatV1Compat: a v1 file is a v2 file without tombstone
// sections. Write always emits the current version, so both directions
// are pinned by patching the (unchecksummed) header version byte.
func TestFormatV1Compat(t *testing.T) {
	t.Run("v1 without tombstones loads", func(t *testing.T) {
		st := store.New()
		tb, err := st.CreateTable("a_tbl", "x", "y")
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.BulkLoad([]float64{1, 2, 3}, []float64{4, 5, 6}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, snapshotStore(t, st, nil)); err != nil {
			t.Fatal(err)
		}
		data := downgrade(t, buf.Bytes(), 1)
		cat, err := Read(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatalf("v1 snapshot rejected: %v", err)
		}
		fresh := restoreStore(t, cat)
		ft, err := fresh.Table("a_tbl")
		if err != nil {
			t.Fatal(err)
		}
		if ft.NumRows() != 3 || ft.LiveRows() != 3 {
			t.Fatalf("restored v1 table has %d/%d rows", ft.NumRows(), ft.LiveRows())
		}
	})
	t.Run("tombstone section in v1 rejected", func(t *testing.T) {
		data := downgrade(t, validSnapshotBytes(t), 1) // has tombstones
		if _, err := Read(bytes.NewReader(data), int64(len(data))); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("tombstone-bearing v1 file loaded: err %v, want ErrCorrupt", err)
		}
	})
}

// TestSnapshotTombstoneRoundTrip is the pinned (non-property) case: a
// deleted slice stays deleted across Save→Load, and the restored table
// serves exactly the survivors.
func TestSnapshotTombstoneRoundTrip(t *testing.T) {
	data := validSnapshotBytes(t)
	cat, err := Read(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	fresh := restoreStore(t, cat)
	ft, err := fresh.Table("a_tbl")
	if err != nil {
		t.Fatal(err)
	}
	if ft.LiveRows() >= ft.NumRows() {
		t.Fatalf("restored table lost its tombstones: %d live of %d", ft.LiveRows(), ft.NumRows())
	}
	rs, err := ft.Scan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != ft.LiveRows() {
		t.Fatalf("Scan returned %d rows, LiveRows says %d", rs.Len(), ft.LiveRows())
	}
	vs, err := ft.Column("v")
	if err != nil {
		t.Fatal(err)
	}
	rs.ForEach(func(r int) {
		if vs[r] >= 40 && vs[r] <= 60 {
			t.Fatalf("deleted row %d (v=%g) served after restore", r, vs[r])
		}
	})
}

func TestProvenanceRoundTrip(t *testing.T) {
	data := validSnapshotBytes(t)
	cat, err := Read(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Provenance) != 1 {
		t.Fatalf("%d provenance records", len(cat.Provenance))
	}
	p := cat.Provenance[0]
	if p.Table != "a_tbl" || p.SourceHash != 0xfeedbeef || p.Rows != 123 || p.Build != "sizes=5 density=false" {
		t.Fatalf("provenance diverged: %+v", p)
	}
}

// TestDecodeRejectsCorruption: bad magic, version skew, truncations at
// every boundary region, and single-bit flips anywhere in the file must
// all error — never panic, never return a catalog.
func TestDecodeRejectsCorruption(t *testing.T) {
	valid := validSnapshotBytes(t)
	if _, err := Read(bytes.NewReader(valid), int64(len(valid))); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	t.Run("bad magic", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		data[0] = 'X'
		if _, err := Read(bytes.NewReader(data), int64(len(data))); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("version skew", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		data[4] = 99 // version field, little-endian low byte
		_, err := Read(bytes.NewReader(data), int64(len(data)))
		if !errors.Is(err, ErrVersionSkew) {
			t.Fatalf("err = %v, want ErrVersionSkew", err)
		}
	})
	t.Run("empty file", func(t *testing.T) {
		if _, err := Read(bytes.NewReader(nil), 0); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for cut := 0; cut < len(valid); cut += 1 + cut/7 {
			data := valid[:cut]
			cat, err := Read(bytes.NewReader(data), int64(len(data)))
			if err == nil {
				t.Fatalf("truncation at %d/%d bytes was accepted (%d tables)", cut, len(valid), len(cat.Tables))
			}
		}
	})
	t.Run("bit flips", func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 400; trial++ {
			data := append([]byte(nil), valid...)
			pos := rng.Intn(len(data))
			data[pos] ^= 1 << rng.Intn(8)
			cat, err := Read(bytes.NewReader(data), int64(len(data)))
			if err == nil {
				// The only header field a flip may legally survive in is
				// one that CRC does not cover AND that is still
				// structurally valid — there is none: magic, version,
				// and section framing are all validated, payloads are
				// checksummed.
				t.Fatalf("bit flip at byte %d was accepted (%d tables)", pos, len(cat.Tables))
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		data := append(append([]byte(nil), valid...), 0xAB)
		if _, err := Read(bytes.NewReader(data), int64(len(data))); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("hostile section length", func(t *testing.T) {
		// Rewrite the first section's length to claim far more bytes
		// than the file holds; must fail fast without allocating it.
		data := append([]byte(nil), valid...)
		for i := 16; i < 24 && i < len(data); i++ { // section payload length field
			data[i] = 0xFF
		}
		if _, err := Read(bytes.NewReader(data), int64(len(data))); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cat.snap")
	rng := rand.New(rand.NewSource(5))
	st, _ := randomStore(t, rng)
	if err := Save(path, snapshotStore(t, st, nil)); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second save; no temp files may remain.
	if err := Save(path, snapshotStore(t, st, nil)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "cat.snap" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want just cat.snap", names)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
}

func TestHashColumns(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3}
	if HashColumns(a) != HashColumns(b) {
		t.Fatal("equal columns hash differently")
	}
	if HashColumns(a) == HashColumns(a[:2]) {
		t.Fatal("prefix collision")
	}
	if HashColumns([]float64{1, 2, 3}) == HashColumns([]float64{1, 2, 4}) {
		t.Fatal("value change not detected")
	}
	// Length folding keeps column-boundary shifts distinct.
	if HashColumns([]float64{1, 2}, []float64{3}) == HashColumns([]float64{1}, []float64{2, 3}) {
		t.Fatal("column boundary shift not detected")
	}
	if HashColumns([]float64{math.NaN()}) != HashColumns([]float64{math.NaN()}) {
		t.Fatal("NaN hashing is unstable")
	}
}
