package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"repro/internal/binio"
)

// The tail log is the incremental half of catalog persistence: while
// catalog.snap captures a full serving catalog, the tail log records
// the mutations since that capture — appended row batches and delete
// predicates — so live ingest never forces a wholesale re-save. Each
// mutation lands as one self-framed, CRC-checked record appended to the
// log; a restart loads the base snapshot (indexes restored verbatim)
// and replays the tail in order through the store's delta-index append
// path and tombstone delete path — no sample build, no index rebuild.
// A full re-save folds the tail into the base and deletes the log.
//
// Layout (little-endian), append-only:
//
//	header: magic "VTLG" | uint32 format version | uint64 base epoch (v3+)
//	record: uint64 payload length | payload | uint32 CRC32(payload)
//	v2+ payload: uint32 kind | body
//	  kind 0 (append): table name | uint32 ncols | uint64 rows | ncols × F64s
//	  kind 1 (delete): table name | uint32 npreds | npreds × (col | F64 min | F64 max)
//
// v1 payloads are kind-0 bodies without the kind prefix (the format
// predates deletes); v2 added the kind prefix but no epoch. LoadTail
// still reads both, and the first append to a legacy log rewrites it in
// place at the current version (temp + rename) before the new record
// lands, so one file never mixes frame layouts.
//
// The v3 base epoch pairs the log with the snapshot it extends: a full
// save stamps the snapshot with a fresh epoch and then deletes the tail
// it folded in. If the process dies between those two steps, the
// leftover tail's epoch is older than the snapshot's, and the loader
// discards it instead of replaying rows the base already contains.
//
// Delete records carry the PREDICATE, not the matched row ids: row ids
// shift when a reclaiming compaction rewrites the survivors, but
// replaying the same predicate stream against the same snapshot + append
// stream reproduces the same visible rows regardless of when (or
// whether) compactions ran in the original process.
//
// Crash semantics: a record is written with one Write call after the
// previous records are already durable in the file's byte order, so the
// only torn state a crash can leave is an incomplete final record.
// LoadTail detects that (fewer bytes than the frame claims) and drops
// the partial batch silently — the in-memory rows it described died
// with the process that was appending them. A complete frame whose CRC
// does not match is real corruption and fails the load.

const (
	// TailMagic identifies a snapshot tail log.
	TailMagic = "VTLG"
	// TailFormatVersion is bumped on incompatible record layout changes.
	// v2 prefixed every payload with a record kind to make room for
	// delete records; v3 added the base epoch to the header.
	TailFormatVersion = 3
	// minTailFormatVersion is the oldest version LoadTail still reads.
	minTailFormatVersion = 1

	tailHeaderLen   = 8  // magic + version (v1/v2)
	tailHeaderLenV3 = 16 // magic + version + base epoch
	tailFrameLen    = 12

	// Record kinds (v2 payload prefix).
	tailKindAppend = 0
	tailKindDelete = 1
)

// TailPred is one conjunctive range predicate of a delete record,
// mirroring store.Pred without importing its semantics here.
type TailPred struct {
	Col      string
	Min, Max float64
}

// TailRecord is one replayable mutation.
type TailRecord struct {
	// Table names the table the mutation applies to.
	Table string
	// Cols holds an append batch as parallel column slices in the
	// table's schema order; nil for delete records.
	Cols [][]float64
	// Delete marks a delete record; Preds holds its conjunctive range
	// predicates (empty means "delete every row").
	Delete bool
	Preds  []TailPred
}

// AppendTail appends one batch record to the tail log at path, creating
// the log (with its header, stamped with the catalog's save epoch) when
// absent and upgrading a legacy log in place. Columns must be non-empty
// and of equal length. The whole record is issued as a single write on
// an O_APPEND descriptor, so concurrent readers of the file never
// observe a frame boundary inside it.
func AppendTail(path, table string, cols [][]float64, epoch uint64) error {
	if table == "" {
		return errors.New("snapshot: tail append: empty table name")
	}
	if len(cols) == 0 {
		return errors.New("snapshot: tail append: no columns")
	}
	rows := len(cols[0])
	for i, c := range cols {
		if len(c) != rows {
			return fmt.Errorf("snapshot: tail append: column %d has %d rows, column 0 has %d", i, len(c), rows)
		}
	}
	if rows == 0 {
		return nil
	}
	payload, err := encodeTailAppend(table, cols)
	if err != nil {
		return fmt.Errorf("snapshot: tail append: %w", err)
	}
	return appendTailPayload(path, payload, epoch)
}

// AppendTailDelete appends one delete record to the tail log at path:
// the predicate (not the matched rows) is logged, so replay reproduces
// the delete against whatever state the preceding records rebuilt. An
// empty predicate list is the delete-everything record.
func AppendTailDelete(path, table string, preds []TailPred, epoch uint64) error {
	if table == "" {
		return errors.New("snapshot: tail append: empty table name")
	}
	payload, err := encodeTailDelete(table, preds)
	if err != nil {
		return fmt.Errorf("snapshot: tail append: %w", err)
	}
	return appendTailPayload(path, payload, epoch)
}

func encodeTailDelete(table string, preds []TailPred) ([]byte, error) {
	var payload bytes.Buffer
	pw := binio.NewWriter(&payload)
	pw.U32(tailKindDelete)
	pw.String(table)
	pw.U32(uint32(len(preds)))
	for _, p := range preds {
		pw.String(p.Col)
		pw.F64(p.Min)
		pw.F64(p.Max)
	}
	if err := pw.Flush(); err != nil {
		return nil, err
	}
	return payload.Bytes(), nil
}

func encodeTailAppend(table string, cols [][]float64) ([]byte, error) {
	var payload bytes.Buffer
	pw := binio.NewWriter(&payload)
	pw.U32(tailKindAppend)
	pw.String(table)
	pw.U32(uint32(len(cols)))
	pw.U64(uint64(len(cols[0])))
	for _, c := range cols {
		pw.F64s(c)
	}
	if err := pw.Flush(); err != nil {
		return nil, err
	}
	return payload.Bytes(), nil
}

// appendTailPayload frames payload and appends it to the log, writing
// the header first when the log is new (or its header write was torn)
// and promoting a legacy v1/v2 log to the current version before
// anything lands in it. A v3 log whose epoch differs from the
// catalog's was written against a different base — its records are
// either already folded into the snapshot we serve or unreachable from
// it — so it is truncated and restarted rather than appended to.
func appendTailPayload(path string, payload []byte, epoch uint64) error {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("snapshot: tail append: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("snapshot: tail append: %w", err)
	}
	size := st.Size()
	if size >= tailHeaderLen {
		var hdr [tailHeaderLenV3]byte
		if _, err := f.ReadAt(hdr[:min(size, tailHeaderLenV3)], 0); err != nil {
			return fmt.Errorf("snapshot: tail append: %w", err)
		}
		if string(hdr[:4]) != TailMagic {
			return corrupt("tail log: bad magic %q", hdr[:4])
		}
		switch v := binary.LittleEndian.Uint32(hdr[4:8]); v {
		case TailFormatVersion:
			switch {
			case size < tailHeaderLenV3:
				// A torn header write: the epoch never landed, so nothing
				// after it can be valid. Start over.
				if err := f.Truncate(0); err != nil {
					return fmt.Errorf("snapshot: tail append: %w", err)
				}
				size = 0
			case binary.LittleEndian.Uint64(hdr[8:16]) != epoch:
				// A stale log from another save generation (e.g. the crash
				// window between writing a snapshot and removing the tail it
				// folded in). Its records must never replay against the
				// current base; restart the log for this epoch.
				if err := f.Truncate(0); err != nil {
					return fmt.Errorf("snapshot: tail append: %w", err)
				}
				size = 0
			}
		case 1, 2:
			// A log written by an older build: re-frame it at the current
			// version in place (temp + rename, same crash guarantee as
			// Save) and append to the promoted file.
			if err := f.Close(); err != nil {
				return fmt.Errorf("snapshot: tail append: %w", err)
			}
			if err := promoteTail(path, epoch); err != nil {
				return fmt.Errorf("snapshot: tail append: promote v%d log: %w", v, err)
			}
			if f, err = fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
				return fmt.Errorf("snapshot: tail append: %w", err)
			}
			if st, err = f.Stat(); err != nil {
				return fmt.Errorf("snapshot: tail append: %w", err)
			}
			size = st.Size()
		default:
			return fmt.Errorf("%w: tail log is format v%d, this build writes v%d", ErrVersionSkew, v, TailFormatVersion)
		}
	} else if size > 0 {
		// A torn header write; nothing after it can be valid. Start over.
		if err := f.Truncate(0); err != nil {
			return fmt.Errorf("snapshot: tail append: %w", err)
		}
		size = 0
	}
	buf := make([]byte, 0, tailHeaderLenV3+tailFrameLen+len(payload))
	if size == 0 {
		buf = append(buf, TailMagic...)
		buf = binary.LittleEndian.AppendUint32(buf, TailFormatVersion)
		buf = binary.LittleEndian.AppendUint64(buf, epoch)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	if _, err := f.Write(buf); err != nil {
		// Best effort: cut any partially written frame back off. A torn
		// FINAL record is tolerated by LoadTail, but if a later append
		// succeeded after it the tear would sit mid-file and condemn
		// the whole log; callers additionally stop appending after an
		// error (the catalog marks the log degraded until the next full
		// save), so a failed truncate still cannot be built upon.
		_ = f.Truncate(size)
		return fmt.Errorf("snapshot: tail append: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("snapshot: tail append: %w", err)
	}
	return f.Close()
}

// promoteTail rewrites the legacy v1/v2 log at path at the current
// version with the given base epoch, atomically.
func promoteTail(path string, epoch uint64) error {
	recs, _, err := LoadTail(path)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, ".tail-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func() {
		f.Close()
		fsys.Remove(tmp)
	}
	buf := make([]byte, 0, tailHeaderLenV3)
	buf = append(buf, TailMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, TailFormatVersion)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	if _, err := f.Write(buf); err != nil {
		cleanup()
		return err
	}
	for _, rec := range recs {
		var payload []byte
		if rec.Delete {
			payload, err = encodeTailDelete(rec.Table, rec.Preds)
		} else {
			payload, err = encodeTailAppend(rec.Table, rec.Cols)
		}
		if err != nil {
			cleanup()
			return err
		}
		frame := make([]byte, 0, tailFrameLen+len(payload))
		frame = binary.LittleEndian.AppendUint64(frame, uint64(len(payload)))
		frame = append(frame, payload...)
		frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
		if _, err := f.Write(frame); err != nil {
			cleanup()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Chmod(tmp, 0o644); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return nil
}

// LoadTail reads every complete record of the tail log at path and the
// base epoch the log was written against (zero for legacy v1/v2 logs).
// A missing file is an empty tail (nil, 0, nil). An incomplete final
// record — the expected remnant of a crash mid-append — is dropped
// silently; checksum mismatches, bad framing, and version skew return
// an error (ErrCorrupt / ErrVersionSkew) so the caller can fall back to
// a full rebuild instead of serving a half-trusted tail. v1 logs (all
// records are appends) load transparently.
func LoadTail(path string) ([]TailRecord, uint64, error) {
	raw, err := fsys.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	if len(raw) < tailHeaderLen {
		// Too short to even hold the header: a torn first write.
		return nil, 0, nil
	}
	if string(raw[:4]) != TailMagic {
		return nil, 0, corrupt("tail log: bad magic %q", raw[:4])
	}
	version := binary.LittleEndian.Uint32(raw[4:8])
	if version < minTailFormatVersion || version > TailFormatVersion {
		return nil, 0, fmt.Errorf("%w: tail log is format v%d, this build reads v%d–v%d",
			ErrVersionSkew, version, minTailFormatVersion, TailFormatVersion)
	}
	var epoch uint64
	off := tailHeaderLen
	if version >= 3 {
		if len(raw) < tailHeaderLenV3 {
			// The epoch half of the header never landed: a torn first
			// write, nothing after it can be valid.
			return nil, 0, nil
		}
		epoch = binary.LittleEndian.Uint64(raw[8:16])
		off = tailHeaderLenV3
	}
	var recs []TailRecord
	for ri := 0; off < len(raw); ri++ {
		if len(raw)-off < 8 {
			break // torn final frame header
		}
		plen := binary.LittleEndian.Uint64(raw[off : off+8])
		if plen > uint64(math.MaxInt64) || int64(plen) > int64(len(raw)-off-tailFrameLen) {
			break // frame claims more bytes than exist: torn final record
		}
		payload := raw[off+8 : off+8+int(plen)]
		sum := binary.LittleEndian.Uint32(raw[off+8+int(plen) : off+tailFrameLen+int(plen)])
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, 0, corrupt("tail log record %d checksum mismatch", ri)
		}
		rec, err := decodeTailRecord(payload, ri, version)
		if err != nil {
			return nil, 0, err
		}
		recs = append(recs, rec)
		off += tailFrameLen + int(plen)
	}
	return recs, epoch, nil
}

func decodeTailRecord(payload []byte, ri int, version uint32) (TailRecord, error) {
	var rec TailRecord
	pr := binio.NewReader(bytes.NewReader(payload), int64(len(payload)))
	kind := uint32(tailKindAppend)
	if version >= 2 {
		kind = pr.U32()
	}
	switch kind {
	case tailKindAppend:
		rec.Table = pr.String(maxNameLen)
		ncols := pr.U32()
		rows := pr.U64()
		if err := pr.Err(); err != nil {
			return rec, corrupt("tail log record %d: %v", ri, err)
		}
		if ncols == 0 || ncols > maxColumns {
			return rec, corrupt("tail log record %d claims %d columns", ri, ncols)
		}
		if rows > math.MaxInt32 {
			return rec, corrupt("tail log record %d claims %d rows", ri, rows)
		}
		for i := uint32(0); i < ncols; i++ {
			col := pr.F64s()
			if pr.Err() != nil {
				break
			}
			if uint64(len(col)) != rows {
				return rec, corrupt("tail log record %d column %d has %d rows, header says %d", ri, i, len(col), rows)
			}
			rec.Cols = append(rec.Cols, col)
		}
	case tailKindDelete:
		rec.Delete = true
		rec.Table = pr.String(maxNameLen)
		npreds := pr.U32()
		if err := pr.Err(); err != nil {
			return rec, corrupt("tail log record %d: %v", ri, err)
		}
		if npreds > maxColumns {
			return rec, corrupt("tail log record %d claims %d predicates", ri, npreds)
		}
		for i := uint32(0); i < npreds && pr.Err() == nil; i++ {
			var p TailPred
			p.Col = pr.String(maxNameLen)
			p.Min = pr.F64()
			p.Max = pr.F64()
			if pr.Err() == nil {
				rec.Preds = append(rec.Preds, p)
			}
		}
	default:
		return rec, corrupt("tail log record %d has unknown kind %d", ri, kind)
	}
	if err := pr.Err(); err != nil {
		return rec, corrupt("tail log record %d: %v", ri, err)
	}
	if pr.Remaining() != 0 {
		return rec, corrupt("tail log record %d has %d trailing bytes", ri, pr.Remaining())
	}
	return rec, nil
}

// RemoveTail deletes the tail log at path; a missing log is fine (the
// caller just folded it into a full snapshot, or never wrote one).
func RemoveTail(path string) error {
	if err := fsys.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
