package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"repro/internal/binio"
)

// The tail log is the incremental half of catalog persistence: while
// catalog.snap captures a full serving catalog, the tail log records
// the row batches appended since that capture, so live ingest never
// forces a wholesale re-save. Each Append lands as one self-framed,
// CRC-checked record appended to the log; a restart loads the base
// snapshot (indexes restored verbatim) and replays the tail through the
// store's delta-index append path — no sample build, no index rebuild.
// A full re-save folds the tail into the base and deletes the log.
//
// Layout (little-endian), append-only:
//
//	header: magic "VTLG" | uint32 format version
//	record: uint64 payload length | payload | uint32 CRC32(payload)
//	payload: table name | uint32 ncols | uint64 rows | ncols × F64s
//
// Crash semantics: a record is written with one Write call after the
// previous records are already durable in the file's byte order, so the
// only torn state a crash can leave is an incomplete final record.
// LoadTail detects that (fewer bytes than the frame claims) and drops
// the partial batch silently — the in-memory rows it described died
// with the process that was appending them. A complete frame whose CRC
// does not match is real corruption and fails the load.

const (
	// TailMagic identifies a snapshot tail log.
	TailMagic = "VTLG"
	// TailFormatVersion is bumped on incompatible record layout changes.
	TailFormatVersion = 1

	tailHeaderLen = 8 // magic + version
	tailFrameLen  = 12
)

// TailRecord is one replayable append batch.
type TailRecord struct {
	// Table names the table the batch was appended to.
	Table string
	// Cols holds the appended rows as parallel column slices in the
	// table's schema order.
	Cols [][]float64
}

// AppendTail appends one batch record to the tail log at path, creating
// the log (with its header) when absent. Columns must be non-empty and
// of equal length. The whole record is issued as a single write on an
// O_APPEND descriptor, so concurrent readers of the file never observe
// a frame boundary inside it.
func AppendTail(path, table string, cols [][]float64) error {
	if table == "" {
		return errors.New("snapshot: tail append: empty table name")
	}
	if len(cols) == 0 {
		return errors.New("snapshot: tail append: no columns")
	}
	rows := len(cols[0])
	for i, c := range cols {
		if len(c) != rows {
			return fmt.Errorf("snapshot: tail append: column %d has %d rows, column 0 has %d", i, len(c), rows)
		}
	}
	if rows == 0 {
		return nil
	}
	var payload bytes.Buffer
	pw := binio.NewWriter(&payload)
	pw.String(table)
	pw.U32(uint32(len(cols)))
	pw.U64(uint64(rows))
	for _, c := range cols {
		pw.F64s(c)
	}
	if err := pw.Flush(); err != nil {
		return fmt.Errorf("snapshot: tail append: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("snapshot: tail append: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("snapshot: tail append: %w", err)
	}
	buf := make([]byte, 0, tailHeaderLen+tailFrameLen+payload.Len())
	if st.Size() == 0 {
		buf = append(buf, TailMagic...)
		buf = binary.LittleEndian.AppendUint32(buf, TailFormatVersion)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(payload.Len()))
	buf = append(buf, payload.Bytes()...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := f.Write(buf); err != nil {
		// Best effort: cut any partially written frame back off. A torn
		// FINAL record is tolerated by LoadTail, but if a later append
		// succeeded after it the tear would sit mid-file and condemn
		// the whole log; callers additionally stop appending after an
		// error (the catalog marks the log degraded until the next full
		// save), so a failed truncate still cannot be built upon.
		_ = f.Truncate(st.Size())
		return fmt.Errorf("snapshot: tail append: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("snapshot: tail append: %w", err)
	}
	return f.Close()
}

// LoadTail reads every complete record of the tail log at path. A
// missing file is an empty tail (nil, nil). An incomplete final record
// — the expected remnant of a crash mid-append — is dropped silently;
// checksum mismatches, bad framing, and version skew return an error
// (ErrCorrupt / ErrVersionSkew) so the caller can fall back to a full
// rebuild instead of serving a half-trusted tail.
func LoadTail(path string) ([]TailRecord, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	if len(raw) < tailHeaderLen {
		// Too short to even hold the header: a torn first write.
		return nil, nil
	}
	if string(raw[:4]) != TailMagic {
		return nil, corrupt("tail log: bad magic %q", raw[:4])
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != TailFormatVersion {
		return nil, fmt.Errorf("%w: tail log is format v%d, this build reads v%d", ErrVersionSkew, v, TailFormatVersion)
	}
	var recs []TailRecord
	off := tailHeaderLen
	for ri := 0; off < len(raw); ri++ {
		if len(raw)-off < 8 {
			break // torn final frame header
		}
		plen := binary.LittleEndian.Uint64(raw[off : off+8])
		if plen > uint64(math.MaxInt64) || int64(plen) > int64(len(raw)-off-tailFrameLen) {
			break // frame claims more bytes than exist: torn final record
		}
		payload := raw[off+8 : off+8+int(plen)]
		sum := binary.LittleEndian.Uint32(raw[off+8+int(plen) : off+tailFrameLen+int(plen)])
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, corrupt("tail log record %d checksum mismatch", ri)
		}
		rec, err := decodeTailRecord(payload, ri)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
		off += tailFrameLen + int(plen)
	}
	return recs, nil
}

func decodeTailRecord(payload []byte, ri int) (TailRecord, error) {
	var rec TailRecord
	pr := binio.NewReader(bytes.NewReader(payload), int64(len(payload)))
	rec.Table = pr.String(maxNameLen)
	ncols := pr.U32()
	rows := pr.U64()
	if err := pr.Err(); err != nil {
		return rec, corrupt("tail log record %d: %v", ri, err)
	}
	if ncols == 0 || ncols > maxColumns {
		return rec, corrupt("tail log record %d claims %d columns", ri, ncols)
	}
	if rows > math.MaxInt32 {
		return rec, corrupt("tail log record %d claims %d rows", ri, rows)
	}
	for i := uint32(0); i < ncols; i++ {
		col := pr.F64s()
		if pr.Err() != nil {
			break
		}
		if uint64(len(col)) != rows {
			return rec, corrupt("tail log record %d column %d has %d rows, header says %d", ri, i, len(col), rows)
		}
		rec.Cols = append(rec.Cols, col)
	}
	if err := pr.Err(); err != nil {
		return rec, corrupt("tail log record %d: %v", ri, err)
	}
	if pr.Remaining() != 0 {
		return rec, corrupt("tail log record %d has %d trailing bytes", ri, pr.Remaining())
	}
	return rec, nil
}

// RemoveTail deletes the tail log at path; a missing log is fine (the
// caller just folded it into a full snapshot, or never wrote one).
func RemoveTail(path string) error {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
