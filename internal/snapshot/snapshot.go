// Package snapshot defines the on-disk catalog snapshot format: a
// versioned, checksummed, little-endian binary encoding of everything a
// serving store holds — each table's column schema and data, the
// published generation's CSR grid indexes with their per-cell zone
// maps, the sample lineage connecting sample tables to their sources,
// and dataset provenance (source hash, row count, build options) so a
// loader can tell a fresh snapshot from a stale one and rebuild instead
// of silently serving outdated samples.
//
// Layout (everything little-endian):
//
//	header:  magic "VCAT" | uint32 format version | uint32 section count
//	section: uint32 kind | uint64 payload length | payload | uint32 CRC32(payload)
//
// Section kinds: 1 = catalog metadata (sample lineage + provenance),
// 2 = one table, 3 = one table's tombstone set (v2+), 4 = one table's
// R-tree indexes (v3+). Payloads are encoded with internal/binio (the same
// codec the dataset files use). Every section carries its own IEEE
// CRC32, so a flipped bit anywhere is detected before any of the
// section's content is trusted; length prefixes are validated against
// the bytes actually remaining, so a truncated or hostile file can
// never force a large allocation. Save writes to a temp file in the
// destination directory and renames it into place, so a crash mid-write
// leaves either the old snapshot or none — never a torn one.
//
// Decoding here is purely structural (framing, checksums, bounds);
// semantic validation of the index payloads — offset monotonicity, row
// id ranges, zone-map sizing — happens in store.TableFromSnapshot,
// which refuses to materialize a table that violates any invariant the
// probe machinery relies on. A loader must run both before publishing
// anything.
package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"

	"repro/internal/binio"
	"repro/internal/fault"
	"repro/internal/store"
)

// fsys is the filesystem every snapshot and tail-log operation goes
// through. Production uses the zero-overhead passthrough; tests swap in
// a fault.Injector via SetFS to script errors, torn writes, and crash
// points at any file-op site.
var fsys fault.FS = fault.OS{}

// SetFS replaces the package's filesystem and returns a restore
// function. It is a test seam: callers are expected to run serially
// (the torture suite does) — there is no synchronization against
// in-flight saves.
func SetFS(f fault.FS) (restore func()) {
	old := fsys
	fsys = f
	return func() { fsys = old }
}

const (
	// Magic identifies a catalog snapshot file.
	Magic = "VCAT"
	// FormatVersion is bumped on any incompatible layout change; the
	// decoder refuses other versions rather than misparsing them.
	// v2 added tombstone sections (kind 3); v3 added tree-index sections
	// (kind 4) for R-tree-backed tables; v4 appended the save epoch to
	// the catalog section, pairing each snapshot with the tail log
	// written against it. Every pre-existing section is byte-identical
	// across versions, so the decoder still accepts v1–v3 files — old
	// snapshots load with an empty tombstone set, grid indexes only,
	// and epoch zero (the "unpaired" legacy value).
	FormatVersion = 4
	// minFormatVersion is the oldest version Read still accepts.
	minFormatVersion = 1

	sectionCatalog   = 1
	sectionTable     = 2
	sectionTombstone = 3
	sectionTree      = 4

	// Structural caps: generous for any real catalog, small enough that
	// a hostile header cannot direct absurd loops or allocations (sizes
	// are additionally bounded by the actual file size via binio).
	maxSections = 1 << 20
	maxNameLen  = 1 << 12
	maxColumns  = 1 << 12
	maxIndexes  = 1 << 8
	maxEntries  = 1 << 20 // samples / provenance records per catalog
)

// ErrCorrupt wraps every decode failure caused by the file's content
// (as opposed to I/O errors reaching it).
var ErrCorrupt = errors.New("snapshot: corrupt or invalid snapshot")

// Provenance records where one base table's data came from and how its
// samples were built, so a loader can detect staleness: a snapshot is
// fresh exactly when the hash, row count, and build spec of the data it
// would otherwise rebuild match what the snapshot captured.
type Provenance struct {
	// Table is the base table this record describes.
	Table string
	// SourceHash is HashColumns over the table's column data at save
	// time.
	SourceHash uint64
	// Rows is the base table's row count.
	Rows int64
	// Build is the canonical build-options spec (sample sizes, density,
	// passes, variant, kernel) the catalog's samples were built with.
	Build string
}

// Catalog is the in-memory form of one snapshot file: fully
// materialized table generations plus the lineage and provenance
// metadata.
type Catalog struct {
	Tables     []store.TableSnapshot
	Samples    []store.SampleMeta
	Provenance []Provenance
	// Epoch is the save generation this snapshot captured: incremented
	// on every full save, stamped into the tail log written against the
	// saved base. On load, a tail whose epoch predates the snapshot's is
	// a leftover the save already folded in (the crash window between
	// writing the snapshot and removing the tail) and must be discarded,
	// not replayed — replay would duplicate its rows. Zero means a
	// pre-v4 file with no pairing information; such tails replay
	// unconditionally, as they always have.
	Epoch uint64
}

// HashColumns fingerprints column data for provenance: FNV-1a folded
// word-wise over the IEEE-754 bits of every value (word-wise rather
// than byte-wise keeps hashing a 1M-row table in the low milliseconds;
// this is a staleness check, not a cryptographic commitment).
func HashColumns(cols ...[]float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, col := range cols {
		h ^= uint64(len(col))
		h *= prime64
		for _, v := range col {
			h ^= math.Float64bits(v)
			h *= prime64
		}
	}
	return h
}

// Write encodes c to w in the snapshot format.
func Write(w io.Writer, c *Catalog) error {
	bw := binio.NewWriter(w)
	bw.Raw([]byte(Magic))
	bw.U32(FormatVersion)
	ntomb, ntree := 0, 0
	for _, ts := range c.Tables {
		if len(ts.Dead) > 0 {
			ntomb++
		}
		if len(ts.TreeIndexes) > 0 {
			ntree++
		}
	}
	bw.U32(uint32(1 + len(c.Tables) + ntomb + ntree))
	var payload bytes.Buffer
	var encErr error

	encodeSection := func(kind uint32, encode func(*binio.Writer)) {
		if encErr != nil {
			return
		}
		payload.Reset()
		pw := binio.NewWriter(&payload)
		encode(pw)
		if encErr = pw.Flush(); encErr != nil {
			return
		}
		bw.U32(kind)
		bw.U64(uint64(payload.Len()))
		bw.Raw(payload.Bytes())
		bw.U32(crc32.ChecksumIEEE(payload.Bytes()))
	}

	encodeSection(sectionCatalog, func(pw *binio.Writer) {
		pw.U32(uint32(len(c.Samples)))
		for _, m := range c.Samples {
			pw.String(m.Table)
			pw.String(m.Source)
			pw.String(m.Method)
			pw.String(m.XCol)
			pw.String(m.YCol)
			pw.U64(uint64(m.Size))
			var flags uint32
			if m.HasDensity {
				flags |= 1
			}
			pw.U32(flags)
		}
		pw.U32(uint32(len(c.Provenance)))
		for _, p := range c.Provenance {
			pw.String(p.Table)
			pw.U64(p.SourceHash)
			pw.U64(uint64(p.Rows))
			pw.String(p.Build)
		}
		// v4: the save epoch, appended so v1–v3 decoding is unchanged.
		pw.U64(c.Epoch)
	})
	for _, ts := range c.Tables {
		encodeSection(sectionTable, func(pw *binio.Writer) {
			pw.String(ts.Name)
			pw.U32(uint32(len(ts.Columns)))
			for _, col := range ts.Columns {
				pw.String(col)
			}
			pw.U64(uint64(ts.NumRows))
			for _, col := range ts.Cols {
				pw.F64s(col)
			}
			pw.U32(uint32(len(ts.Indexes)))
			for _, ix := range ts.Indexes {
				pw.U32(uint32(ix.XCol))
				pw.U32(uint32(ix.YCol))
				pw.F64(ix.Bounds.MinX)
				pw.F64(ix.Bounds.MinY)
				pw.F64(ix.Bounds.MaxX)
				pw.F64(ix.Bounds.MaxY)
				pw.U32(uint32(ix.NX))
				pw.U32(uint32(ix.NY))
				pw.F64(ix.CellW)
				pw.F64(ix.CellH)
				pw.U64(uint64(ix.NumRows))
				pw.I32s(ix.CellOff)
				pw.I32s(ix.RowID)
				pw.I32s(ix.Extra)
				pw.F64s(ix.ZMin)
				pw.F64s(ix.ZMax)
				pw.Bools(ix.ZNaN)
			}
		})
		// Tree indexes ride in their own section (like tombstones below)
		// so the table encoding stays byte-identical to v1: a catalog of
		// grid-backed tables round-trips to the same table bytes it
		// always has.
		if len(ts.TreeIndexes) > 0 {
			encodeSection(sectionTree, func(pw *binio.Writer) {
				pw.String(ts.Name)
				pw.U32(uint32(len(ts.TreeIndexes)))
				for _, ix := range ts.TreeIndexes {
					pw.U32(uint32(ix.XCol))
					pw.U32(uint32(ix.YCol))
					pw.F64(ix.Bounds.MinX)
					pw.F64(ix.Bounds.MinY)
					pw.F64(ix.Bounds.MaxX)
					pw.F64(ix.Bounds.MaxY)
					pw.U32(uint32(ix.NX))
					pw.U32(uint32(ix.NY))
					pw.F64(ix.CellW)
					pw.F64(ix.CellH)
					pw.U64(uint64(ix.NumRows))
					pw.F64(ix.OccP99)
					pw.F64(ix.Skew)
					pw.I32s(ix.RowID)
					pw.I32s(ix.LeafOff)
					pw.F64s(ix.LeafMBR)
					pw.I32s(ix.Extra)
					pw.F64s(ix.NodeMBR)
					pw.I32s(ix.NodeLo)
					pw.I32s(ix.NodeHi)
					pw.I32s(ix.NodeLeafLo)
					pw.I32s(ix.NodeLeafHi)
					pw.Bools(ix.NodeLeafKids)
					pw.F64s(ix.ZMin)
					pw.F64s(ix.ZMax)
					pw.Bools(ix.ZNaN)
					pw.F64s(ix.NZMin)
					pw.F64s(ix.NZMax)
					pw.Bools(ix.NZNaN)
				}
			})
		}
		// Tombstones ride in their own section (rather than inside the
		// table payload) so the table encoding stays byte-identical to
		// v1: a catalog with no pending deletions round-trips to the
		// same table bytes it always has.
		if len(ts.Dead) > 0 {
			encodeSection(sectionTombstone, func(pw *binio.Writer) {
				pw.String(ts.Name)
				pw.I32s(ts.Dead)
			})
		}
	}
	if encErr != nil {
		return encErr
	}
	return bw.Flush()
}

// Read decodes a snapshot from r, which must supply exactly size bytes.
// Any structural problem — bad magic, version skew, checksum mismatch,
// truncation, over-claimed lengths, trailing bytes — returns an error
// wrapping ErrCorrupt (except version skew, which wraps
// ErrVersionSkew); no partially decoded catalog is ever returned. The
// caller must still pass each table through store.TableFromSnapshot for
// semantic validation before serving it.
func Read(r io.Reader, size int64) (*Catalog, error) {
	br := binio.NewReader(r, size)
	magic := make([]byte, len(Magic))
	br.Raw(magic)
	if err := br.Err(); err != nil {
		return nil, corrupt("reading magic: %v", err)
	}
	if string(magic) != Magic {
		return nil, corrupt("bad magic %q", magic)
	}
	version := br.U32()
	nsections := br.U32()
	if err := br.Err(); err != nil {
		return nil, corrupt("reading header: %v", err)
	}
	if version < minFormatVersion || version > FormatVersion {
		return nil, fmt.Errorf("%w: file is format v%d, this build reads v%d–v%d",
			ErrVersionSkew, version, minFormatVersion, FormatVersion)
	}
	if nsections < 1 || nsections > maxSections {
		return nil, corrupt("section count %d out of range [1,%d]", nsections, maxSections)
	}
	cat := &Catalog{}
	sawCatalog := false
	// Tombstone and tree-index sections reference their table by name;
	// collect them and attach after every section is read, so a file
	// that orders them before their table still loads.
	tombstones := make(map[string][]int32)
	trees := make(map[string][]store.TreeIndexSnapshot)
	for si := uint32(0); si < nsections; si++ {
		kind := br.U32()
		plen := br.U64()
		if err := br.Err(); err != nil {
			return nil, corrupt("section %d header: %v", si, err)
		}
		// +4 for the trailing CRC that must still follow the payload.
		if plen > math.MaxInt64-4 || int64(plen)+4 > br.Remaining() {
			return nil, corrupt("section %d claims %d payload bytes, %d remain", si, plen, br.Remaining())
		}
		payload := make([]byte, plen)
		br.Raw(payload)
		sum := br.U32()
		if err := br.Err(); err != nil {
			return nil, corrupt("section %d: %v", si, err)
		}
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return nil, corrupt("section %d checksum mismatch: %08x != %08x", si, got, sum)
		}
		pr := binio.NewReader(bytes.NewReader(payload), int64(len(payload)))
		switch kind {
		case sectionCatalog:
			if sawCatalog {
				return nil, corrupt("duplicate catalog section")
			}
			sawCatalog = true
			if err := decodeCatalogSection(pr, cat, version); err != nil {
				return nil, err
			}
		case sectionTable:
			ts, err := decodeTableSection(pr)
			if err != nil {
				return nil, err
			}
			cat.Tables = append(cat.Tables, ts)
		case sectionTombstone:
			if version < 2 {
				return nil, corrupt("section %d: tombstone section in a v%d file", si, version)
			}
			name := pr.String(maxNameLen)
			dead := pr.I32s()
			if err := pr.Err(); err != nil {
				return nil, corrupt("tombstone section %d: %v", si, err)
			}
			if _, dup := tombstones[name]; dup {
				return nil, corrupt("duplicate tombstone section for table %q", name)
			}
			tombstones[name] = dead
		case sectionTree:
			if version < 3 {
				return nil, corrupt("section %d: tree-index section in a v%d file", si, version)
			}
			name, tixs, err := decodeTreeSection(pr, si)
			if err != nil {
				return nil, err
			}
			if _, dup := trees[name]; dup {
				return nil, corrupt("duplicate tree-index section for table %q", name)
			}
			trees[name] = tixs
		default:
			return nil, corrupt("section %d has unknown kind %d", si, kind)
		}
		if pr.Remaining() != 0 {
			return nil, corrupt("section %d has %d trailing bytes", si, pr.Remaining())
		}
	}
	if !sawCatalog {
		return nil, corrupt("no catalog section")
	}
	if br.Remaining() != 0 {
		return nil, corrupt("%d trailing bytes after the last section", br.Remaining())
	}
	for name, dead := range tombstones {
		attached := false
		for i := range cat.Tables {
			if cat.Tables[i].Name == name {
				cat.Tables[i].Dead = dead
				attached = true
				break
			}
		}
		if !attached {
			return nil, corrupt("tombstone section for unknown table %q", name)
		}
	}
	for name, tixs := range trees {
		attached := false
		for i := range cat.Tables {
			if cat.Tables[i].Name == name {
				cat.Tables[i].TreeIndexes = tixs
				attached = true
				break
			}
		}
		if !attached {
			return nil, corrupt("tree-index section for unknown table %q", name)
		}
	}
	return cat, nil
}

// ErrVersionSkew is wrapped by Read when the file's format version is
// not the one this build encodes — the cue to rebuild and re-save
// rather than report corruption.
var ErrVersionSkew = errors.New("snapshot: format version skew")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

func decodeCatalogSection(pr *binio.Reader, cat *Catalog, version uint32) error {
	nsamples := pr.U32()
	if pr.Err() == nil && nsamples > maxEntries {
		return corrupt("catalog claims %d samples, limit %d", nsamples, maxEntries)
	}
	for i := uint32(0); i < nsamples && pr.Err() == nil; i++ {
		var m store.SampleMeta
		m.Table = pr.String(maxNameLen)
		m.Source = pr.String(maxNameLen)
		m.Method = pr.String(maxNameLen)
		m.XCol = pr.String(maxNameLen)
		m.YCol = pr.String(maxNameLen)
		size := pr.U64()
		flags := pr.U32()
		if pr.Err() != nil {
			break
		}
		if size > math.MaxInt32 {
			return corrupt("sample %q claims size %d", m.Table, size)
		}
		m.Size = int(size)
		m.HasDensity = flags&1 != 0
		cat.Samples = append(cat.Samples, m)
	}
	nprov := pr.U32()
	if pr.Err() == nil && nprov > maxEntries {
		return corrupt("catalog claims %d provenance records, limit %d", nprov, maxEntries)
	}
	for i := uint32(0); i < nprov && pr.Err() == nil; i++ {
		var p Provenance
		p.Table = pr.String(maxNameLen)
		p.SourceHash = pr.U64()
		rows := pr.U64()
		p.Build = pr.String(1 << 16)
		if pr.Err() != nil {
			break
		}
		if rows > math.MaxInt64 {
			return corrupt("provenance %q claims %d rows", p.Table, rows)
		}
		p.Rows = int64(rows)
		cat.Provenance = append(cat.Provenance, p)
	}
	if version >= 4 {
		cat.Epoch = pr.U64()
	}
	if err := pr.Err(); err != nil {
		return corrupt("catalog section: %v", err)
	}
	return nil
}

func decodeTableSection(pr *binio.Reader) (store.TableSnapshot, error) {
	var ts store.TableSnapshot
	ts.Name = pr.String(maxNameLen)
	ncols := pr.U32()
	if pr.Err() == nil && ncols > maxColumns {
		return ts, corrupt("table %q claims %d columns, limit %d", ts.Name, ncols, maxColumns)
	}
	for i := uint32(0); i < ncols && pr.Err() == nil; i++ {
		ts.Columns = append(ts.Columns, pr.String(maxNameLen))
	}
	nrows := pr.U64()
	if pr.Err() == nil && nrows > math.MaxInt32 {
		return ts, corrupt("table %q claims %d rows", ts.Name, nrows)
	}
	ts.NumRows = int(nrows)
	for i := uint32(0); i < ncols && pr.Err() == nil; i++ {
		col := pr.F64s()
		if pr.Err() != nil {
			break
		}
		if len(col) != ts.NumRows {
			return ts, corrupt("table %q column %d has %d rows, header says %d", ts.Name, i, len(col), ts.NumRows)
		}
		ts.Cols = append(ts.Cols, col)
	}
	nindexes := pr.U32()
	if pr.Err() == nil && nindexes > maxIndexes {
		return ts, corrupt("table %q claims %d indexes, limit %d", ts.Name, nindexes, maxIndexes)
	}
	for i := uint32(0); i < nindexes && pr.Err() == nil; i++ {
		var ix store.IndexSnapshot
		ix.XCol = int(int32(pr.U32()))
		ix.YCol = int(int32(pr.U32()))
		ix.Bounds.MinX = pr.F64()
		ix.Bounds.MinY = pr.F64()
		ix.Bounds.MaxX = pr.F64()
		ix.Bounds.MaxY = pr.F64()
		ix.NX = int(int32(pr.U32()))
		ix.NY = int(int32(pr.U32()))
		ix.CellW = pr.F64()
		ix.CellH = pr.F64()
		n := pr.U64()
		if pr.Err() != nil {
			break
		}
		if n > math.MaxInt32 {
			return ts, corrupt("table %q index %d claims %d rows", ts.Name, i, n)
		}
		ix.NumRows = int(n)
		ix.CellOff = pr.I32s()
		ix.RowID = pr.I32s()
		ix.Extra = pr.I32s()
		ix.ZMin = pr.F64s()
		ix.ZMax = pr.F64s()
		ix.ZNaN = pr.Bools()
		if pr.Err() != nil {
			break
		}
		ts.Indexes = append(ts.Indexes, ix)
	}
	if err := pr.Err(); err != nil {
		return ts, corrupt("table %q section: %v", ts.Name, err)
	}
	return ts, nil
}

func decodeTreeSection(pr *binio.Reader, si uint32) (string, []store.TreeIndexSnapshot, error) {
	name := pr.String(maxNameLen)
	ntree := pr.U32()
	if pr.Err() == nil && ntree > maxIndexes {
		return name, nil, corrupt("table %q claims %d tree indexes, limit %d", name, ntree, maxIndexes)
	}
	var tixs []store.TreeIndexSnapshot
	for i := uint32(0); i < ntree && pr.Err() == nil; i++ {
		var ix store.TreeIndexSnapshot
		ix.XCol = int(int32(pr.U32()))
		ix.YCol = int(int32(pr.U32()))
		ix.Bounds.MinX = pr.F64()
		ix.Bounds.MinY = pr.F64()
		ix.Bounds.MaxX = pr.F64()
		ix.Bounds.MaxY = pr.F64()
		ix.NX = int(int32(pr.U32()))
		ix.NY = int(int32(pr.U32()))
		ix.CellW = pr.F64()
		ix.CellH = pr.F64()
		n := pr.U64()
		if pr.Err() != nil {
			break
		}
		if n > math.MaxInt32 {
			return name, nil, corrupt("table %q tree index %d claims %d rows", name, i, n)
		}
		ix.NumRows = int(n)
		ix.OccP99 = pr.F64()
		ix.Skew = pr.F64()
		ix.RowID = pr.I32s()
		ix.LeafOff = pr.I32s()
		ix.LeafMBR = pr.F64s()
		ix.Extra = pr.I32s()
		ix.NodeMBR = pr.F64s()
		ix.NodeLo = pr.I32s()
		ix.NodeHi = pr.I32s()
		ix.NodeLeafLo = pr.I32s()
		ix.NodeLeafHi = pr.I32s()
		ix.NodeLeafKids = pr.Bools()
		ix.ZMin = pr.F64s()
		ix.ZMax = pr.F64s()
		ix.ZNaN = pr.Bools()
		ix.NZMin = pr.F64s()
		ix.NZMax = pr.F64s()
		ix.NZNaN = pr.Bools()
		if pr.Err() != nil {
			break
		}
		tixs = append(tixs, ix)
	}
	if err := pr.Err(); err != nil {
		return name, nil, corrupt("tree-index section %d (table %q): %v", si, name, err)
	}
	return name, tixs, nil
}

// Save atomically writes c to path: the bytes go to a temp file in the
// same directory, are synced, and the temp file is renamed over path.
// A crash at any point leaves the previous snapshot (or no file) in
// place — never a torn one.
func Save(path string, c *Catalog) error {
	dir := filepath.Dir(path)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("snapshot: create directory: %w", err)
	}
	f, err := fsys.CreateTemp(dir, ".snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("snapshot: create temp file: %w", err)
	}
	tmp := f.Name()
	cleanup := func() {
		f.Close()
		fsys.Remove(tmp)
	}
	if err := Write(f, c); err != nil {
		cleanup()
		return fmt.Errorf("snapshot: write: %w", err)
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("snapshot: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("snapshot: close: %w", err)
	}
	// CreateTemp makes the file 0600; a snapshot is a serving artifact
	// (the next process may run as a different user), not a secret.
	if err := fsys.Chmod(tmp, 0o644); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("snapshot: chmod: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("snapshot: rename into place: %w", err)
	}
	return nil
}

// Load reads the snapshot at path. The file's size bounds every
// allocation the decoder makes.
func Load(path string) (*Catalog, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	cat, err := Read(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("snapshot %s: %w", path, err)
	}
	return cat, nil
}
